"""Physical constants and unit conversions (CODATA 2018).

All internal quantities are in Hartree atomic units unless stated
otherwise: energies in hartree, lengths in bohr, masses in electron
masses (except atomic masses, tabulated in unified amu and converted
explicitly where needed).
"""

from __future__ import annotations

# --- length ---------------------------------------------------------------
BOHR_TO_ANGSTROM: float = 0.529177210903
ANGSTROM_TO_BOHR: float = 1.0 / BOHR_TO_ANGSTROM

# --- energy ---------------------------------------------------------------
HARTREE_TO_EV: float = 27.211386245988
HARTREE_TO_KCALMOL: float = 627.5094740631
HARTREE_TO_CM1: float = 219474.63136320  # hartree -> wavenumber (cm^-1)

# --- mass -----------------------------------------------------------------
AMU_TO_AU: float = 1822.888486209  # unified amu -> electron masses

# --- misc -----------------------------------------------------------------
SPEED_OF_LIGHT_AU: float = 137.035999084  # 1/alpha
FINE_STRUCTURE: float = 1.0 / SPEED_OF_LIGHT_AU

#: conversion factor: sqrt(hartree / (bohr^2 * amu)) -> cm^-1.
#: For a mass-weighted Hessian in hartree/(bohr^2 amu), the angular
#: eigenfrequency omega = sqrt(lambda) and the wavenumber is
#: ``sqrt(lambda) * HESSIAN_TO_CM1``.
HESSIAN_TO_CM1: float = HARTREE_TO_CM1 / (AMU_TO_AU ** 0.5)

# Atomic numbers for the elements used by the biological systems here.
ELEMENT_NUMBERS: dict[str, int] = {
    "H": 1, "He": 2, "Li": 3, "Be": 4, "B": 5, "C": 6, "N": 7, "O": 8,
    "F": 9, "Ne": 10, "Na": 11, "Mg": 12, "Al": 13, "Si": 14, "P": 15,
    "S": 16, "Cl": 17, "Ar": 18, "K": 19, "Ca": 20, "Fe": 26, "Zn": 30,
}

ELEMENT_SYMBOLS: dict[int, str] = {v: k for k, v in ELEMENT_NUMBERS.items()}

#: Standard atomic weights (amu), most-abundant-isotope-weighted.
ATOMIC_MASSES: dict[str, float] = {
    "H": 1.00782503207, "He": 4.002602, "Li": 6.94, "Be": 9.0121831,
    "B": 10.81, "C": 12.0, "N": 14.0030740048, "O": 15.9949146196,
    "F": 18.998403163, "Ne": 20.1797, "Na": 22.98976928, "Mg": 24.305,
    "Al": 26.9815385, "Si": 28.085, "P": 30.973761998, "S": 31.97207100,
    "Cl": 34.96885268, "Ar": 39.948, "K": 39.0983, "Ca": 40.078,
    "Fe": 55.845, "Zn": 65.38,
}

#: Covalent radii in angstrom (Cordero et al. 2008), used for bond
#: perception and hydrogen capping.
COVALENT_RADII: dict[str, float] = {
    "H": 0.31, "He": 0.28, "Li": 1.28, "Be": 0.96, "B": 0.84, "C": 0.76,
    "N": 0.71, "O": 0.66, "F": 0.57, "Ne": 0.58, "Na": 1.66, "Mg": 1.41,
    "Al": 1.21, "Si": 1.11, "P": 1.07, "S": 1.05, "Cl": 1.02, "Ar": 1.06,
    "K": 2.03, "Ca": 1.76, "Fe": 1.32, "Zn": 1.22,
}


def mass_of(symbol: str) -> float:
    """Return the atomic mass (amu) of an element symbol.

    Raises ``KeyError`` with a helpful message for unknown elements.
    """
    try:
        return ATOMIC_MASSES[symbol]
    except KeyError:
        raise KeyError(
            f"no tabulated mass for element {symbol!r}; "
            f"known: {sorted(ATOMIC_MASSES)}"
        ) from None


def number_of(symbol: str) -> int:
    """Return the atomic number of an element symbol."""
    try:
        return ELEMENT_NUMBERS[symbol]
    except KeyError:
        raise KeyError(
            f"unknown element symbol {symbol!r}; known: {sorted(ELEMENT_NUMBERS)}"
        ) from None
