"""Terminal renderer for exported traces.

``python -m repro obs view FILE`` prints a per-phase summary table
(aggregated by span name) and a text flamegraph (aggregated by span
path), for either exporter format. The same functions back the test
suite's round-trip assertions, so the viewer can never drift from the
exporters.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.export import load_trace
from repro.obs.tracer import SpanRecord

__all__ = ["phase_summary", "phase_totals", "flamegraph", "render"]


def phase_totals(records) -> dict[str, tuple[float, int]]:
    """``name -> (total seconds, calls)`` over all processes."""
    totals: dict[str, tuple[float, int]] = {}
    for r in records:
        secs, calls = totals.get(r.name, (0.0, 0))
        totals[r.name] = (secs + r.dur, calls + 1)
    return totals


def phase_summary(records) -> str:
    """Per-phase table sorted by total time (the ``Timer.report``
    shape, derived from spans instead of timer sections)."""
    totals = phase_totals(records)
    if not totals:
        return "(empty trace)"
    width = max(len("span"), max(len(n) for n in totals))
    lines = [
        f"{'span':<{width}} {'total(s)':>10} {'calls':>7} {'mean(s)':>10}"
    ]
    for name in sorted(totals, key=lambda n: -totals[n][0]):
        secs, calls = totals[name]
        lines.append(
            f"{name:<{width}} {secs:>10.4f} {calls:>7d} "
            f"{secs / calls:>10.6f}"
        )
    return "\n".join(lines)


def _aggregate_paths(records) -> dict[str, tuple[float, int]]:
    agg: dict[str, tuple[float, int]] = {}
    for r in records:
        secs, calls = agg.get(r.path, (0.0, 0))
        agg[r.path] = (secs + r.dur, calls + 1)
    return agg


def flamegraph(records, width: int = 40) -> str:
    """Text flamegraph: the span-path tree with per-path totals and
    bars scaled to the largest root."""
    agg = _aggregate_paths(records)
    if not agg:
        return "(empty trace)"
    children: dict[str, list[str]] = {}
    roots: list[str] = []
    for path in agg:
        head, sep, _ = path.rpartition("/")
        if sep and head in agg:
            children.setdefault(head, []).append(path)
        else:
            roots.append(path)
    scale = max(agg[p][0] for p in roots)
    scale = scale if scale > 0 else 1.0
    name_w = max(
        2 * p.count("/") + len(p.rsplit("/", 1)[-1]) for p in agg
    )
    name_w = max(name_w, len("span"))
    lines = [f"{'span':<{name_w}} {'total(s)':>10} {'calls':>7}  "]

    def emit(path: str, depth: int) -> None:
        secs, calls = agg[path]
        name = path.rsplit("/", 1)[-1]
        bar = "█" * max(1, int(round(width * secs / scale)))
        lines.append(
            f"{'  ' * depth + name:<{name_w}} {secs:>10.4f} {calls:>7d}  "
            f"{bar}"
        )
        for child in sorted(children.get(path, ()),
                            key=lambda p: -agg[p][0]):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda p: -agg[p][0]):
        emit(root, 0)
    return "\n".join(lines)


def render(path: str | Path, width: int = 40) -> str:
    """Full ``obs view`` output for one exported trace file."""
    records: list[SpanRecord] = load_trace(path)
    n_pids = len({r.pid for r in records})
    header = (
        f"{Path(path).name}: {len(records)} spans across "
        f"{n_pids} process(es)"
    )
    return "\n".join([
        header,
        "",
        "== per-phase summary ==",
        phase_summary(records),
        "",
        "== flamegraph (aggregated by span path) ==",
        flamegraph(records, width=width),
    ])
