"""Span-based tracing for the QF-RAMAN pipeline.

A :class:`Tracer` records nested, attributed spans::

    with tracer.span("scf", natoms=3, nbf=7) as sp:
        ...
        sp.set(niter=12, converged=True)

Instrumented code never holds a tracer — it calls :func:`get_tracer`,
which returns the installed :class:`Tracer` or the process-wide
:class:`NullTracer` singleton. The null tracer's ``span()`` returns a
shared no-op context manager, so disabled tracing costs one method
call and one ``with`` frame — there are no ``if traced:`` branches in
instrumented code, and results are bit-identical either way.

Cross-process collection: executor workers inherit ``QF_TRACE`` (set
by :func:`enable_tracing`), install a fresh local tracer around each
task via :func:`telemetry_shipment`, and ship the finished records
(plus the counter delta) back inside the task result. The parent's
executor merges shipments with :meth:`Tracer.adopt`, which re-roots
the worker span paths under the parent's active span so the merged
trace reads as one tree.

Timestamps are ``time.perf_counter()`` values: on Linux that is
``CLOCK_MONOTONIC``, shared by every process on the machine, so spans
from pool workers land on the same timeline as the parent's.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_requested",
    "TelemetryShipment",
    "telemetry_shipment",
    "TRACE_ENV",
]

#: environment variable that tells (fork-inherited) worker processes
#: to capture spans locally and ship them back with their results
TRACE_ENV = "QF_TRACE"


def tracing_requested() -> bool:
    """True when the ``QF_TRACE`` environment flag is set."""
    return os.environ.get(TRACE_ENV, "") not in ("", "0")


@dataclass
class SpanRecord:
    """One finished span.

    ``ts`` is the monotonic start time in seconds, ``dur`` the elapsed
    seconds; ``path`` is the slash-joined ancestry
    (``"run/fragment_response/fragment/scf"``), which is what the
    viewer's flamegraph aggregates on.
    """

    name: str
    path: str
    ts: float
    dur: float
    pid: int
    tid: int
    attrs: dict = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return self.path.count("/")

    @property
    def parent(self) -> str | None:
        head, sep, _ = self.path.rpartition("/")
        return head if sep else None

    def as_dict(self) -> dict:
        return {
            "name": self.name, "path": self.path, "ts": self.ts,
            "dur": self.dur, "pid": self.pid, "tid": self.tid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SpanRecord":
        return cls(
            name=d["name"], path=d["path"], ts=float(d["ts"]),
            dur=float(d["dur"]), pid=int(d["pid"]), tid=int(d["tid"]),
            attrs=dict(d.get("attrs") or {}),
        )


class _SpanHandle:
    """Mutable attribute sink yielded by :meth:`Tracer.span`."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: dict):
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (iteration counts…)."""
        self.attrs.update(attrs)


class _NullSpan:
    """Shared do-nothing span: context manager + attribute sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects :class:`SpanRecord` objects with per-thread nesting."""

    enabled = True

    def __init__(self):
        self.records: list[SpanRecord] = []
        self.origin_pid = os.getpid()
        self._stacks = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    def current_path(self) -> str:
        """Slash path of the calling thread's open spans ('' at root)."""
        return "/".join(self._stack())

    @contextmanager
    def span(self, name: str, **attrs):
        """Record one span around the ``with`` body; yields a handle
        whose ``set(**attrs)`` adds attributes before the span closes."""
        stack = self._stack()
        stack.append(name)
        path = "/".join(stack)
        handle = _SpanHandle(dict(attrs))
        ts = time.perf_counter()
        try:
            yield handle
        finally:
            dur = time.perf_counter() - ts
            stack.pop()
            self.records.append(SpanRecord(
                name=name, path=path, ts=ts, dur=dur,
                pid=os.getpid(), tid=threading.get_ident(),
                attrs=handle.attrs,
            ))

    def adopt(self, shipped: list[dict]) -> None:
        """Merge records shipped from a worker process, re-rooting
        their paths under the calling thread's active span so the
        combined trace forms one tree."""
        if not shipped:
            return
        prefix = self.current_path()
        for raw in shipped:
            rec = SpanRecord.from_dict(raw)
            if prefix:
                rec.path = f"{prefix}/{rec.path}"
            self.records.append(rec)

    def export(self) -> list[dict]:
        """All records as plain dicts (JSONL/Chrome exporter input)."""
        return [r.as_dict() for r in self.records]


class NullTracer:
    """The disabled tracer: every call is a constant-time no-op."""

    enabled = False
    origin_pid = -1
    records: list[SpanRecord] = []

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current_path(self) -> str:
        return ""

    def adopt(self, shipped: list[dict]) -> None:
        pass

    def export(self) -> list[dict]:
        return []


NULL_TRACER = NullTracer()
_current: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code reports into (never None)."""
    return _current


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` (None -> the null tracer); returns the
    previous one so callers can restore it."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Scoped :func:`set_tracer`."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def enable_tracing() -> Tracer:
    """Install a fresh :class:`Tracer` *and* set ``QF_TRACE`` so pool
    workers (which inherit the environment) capture their spans too.
    Returns the installed tracer."""
    os.environ[TRACE_ENV] = "1"
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    """Restore the null tracer and clear ``QF_TRACE``."""
    os.environ.pop(TRACE_ENV, None)
    set_tracer(NULL_TRACER)


@dataclass
class TelemetryShipment:
    """Telemetry produced by one task, mutated in place at shipment
    close so a result object built inside the ``with`` block sees the
    final contents when it is pickled back to the parent."""

    spans: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)


@contextmanager
def telemetry_shipment():
    """Capture the spans and counter increments of one task for
    cross-process shipping.

    If the ambient tracer is live *in this process* the spans flow into
    it directly and ``shipment.spans`` stays empty; otherwise (a pool
    worker whose fork-inherited tracer belongs to the parent, with
    ``QF_TRACE`` set) a fresh local tracer captures the block and its
    serialized records fill the shipment on exit. The counter delta is
    always recorded; the parent merges it only for results coming from
    another pid, so nothing is double-counted.
    """
    from repro.obs.counters import counters

    snap = counters().snapshot()
    shipment = TelemetryShipment()
    ambient = get_tracer()
    local: Tracer | None = None
    previous: Tracer | NullTracer | None = None
    ambient_is_live = ambient.enabled and ambient.origin_pid == os.getpid()
    if tracing_requested() and not ambient_is_live:
        local = Tracer()
        previous = set_tracer(local)
    try:
        yield shipment
    finally:
        if local is not None:
            set_tracer(previous)
            shipment.spans.extend(local.export())
        shipment.counters.update(counters().delta_since(snap))
