"""Trace and metrics exporters.

Three on-disk formats, chosen by file suffix in the CLI:

``.jsonl``
    One JSON object per span record — the lossless event log the
    viewer round-trips (:func:`spans_to_jsonl` / :func:`load_jsonl`).
``.json``
    Chrome trace-event format (the ``{"traceEvents": [...]}`` object
    form) with one complete (``"ph": "X"``) event per span — load it
    at https://ui.perfetto.dev or ``chrome://tracing``. Each process
    of the run gets its own track (pid), mirroring the paper's
    per-worker execution timelines (Fig. 4).
``.prom``
    Prometheus text exposition: every counter as a
    ``qf_<name>_total`` gauge plus per-span aggregate
    ``qf_span_seconds_total`` / ``qf_span_calls_total`` series.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.counters import Counters
from repro.obs.tracer import SpanRecord

__all__ = [
    "spans_to_jsonl",
    "load_jsonl",
    "chrome_trace",
    "load_chrome",
    "write_trace",
    "load_trace",
    "prometheus_metrics",
    "write_metrics",
    "derive_throughput",
]


def _as_records(records) -> list[SpanRecord]:
    return [
        r if isinstance(r, SpanRecord) else SpanRecord.from_dict(r)
        for r in records
    ]


# -- JSONL event log --------------------------------------------------------


def spans_to_jsonl(records, path: str | Path) -> Path:
    """Write one JSON object per span; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for rec in _as_records(records):
            fh.write(json.dumps(rec.as_dict(), sort_keys=True) + "\n")
    return path


def load_jsonl(path: str | Path) -> list[SpanRecord]:
    """Inverse of :func:`spans_to_jsonl`."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
    return records


# -- Chrome trace-event JSON ------------------------------------------------


def chrome_trace(records, counters: Counters | dict | None = None) -> dict:
    """Trace-event object form: complete events + process metadata.

    Timestamps are microseconds relative to the earliest span, so the
    Perfetto timeline starts at zero. Span attributes (and the
    ancestry path) travel in ``args``; counters, when given, ride in
    the top-level ``otherData`` section.
    """
    recs = _as_records(records)
    t0 = min((r.ts for r in recs), default=0.0)
    events: list[dict] = []
    seen_pids: set[int] = set()
    for r in recs:
        if r.pid not in seen_pids:
            seen_pids.add(r.pid)
            events.append({
                "ph": "M", "name": "process_name", "pid": r.pid, "tid": 0,
                "args": {"name": f"qf-raman pid {r.pid}"},
            })
        events.append({
            "name": r.name,
            "cat": "qf",
            "ph": "X",
            "ts": (r.ts - t0) * 1.0e6,
            "dur": r.dur * 1.0e6,
            "pid": r.pid,
            "tid": r.tid,
            "args": {**r.attrs, "path": r.path},
        })
    out = {"traceEvents": events, "displayTimeUnit": "ms"}
    if counters is not None:
        cdict = counters.as_dict() if isinstance(counters, Counters) \
            else dict(counters)
        out["otherData"] = {"counters": cdict}
    return out


def load_chrome(path: str | Path) -> list[SpanRecord]:
    """Rebuild span records from a Chrome trace file (viewer input)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    events = data["traceEvents"] if isinstance(data, dict) else data
    records = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args") or {})
        path_str = args.pop("path", ev["name"])
        records.append(SpanRecord(
            name=ev["name"], path=path_str,
            ts=float(ev["ts"]) * 1.0e-6, dur=float(ev["dur"]) * 1.0e-6,
            pid=int(ev.get("pid", 0)), tid=int(ev.get("tid", 0)),
            attrs=args,
        ))
    return records


# -- suffix-dispatched convenience ------------------------------------------


def write_trace(records, path: str | Path,
                counters: Counters | dict | None = None) -> Path:
    """Write ``records`` in the format implied by the suffix:
    ``.jsonl`` -> event log, anything else -> Chrome trace JSON."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return spans_to_jsonl(records, path)
    path.write_text(
        json.dumps(chrome_trace(records, counters=counters)) + "\n",
        encoding="utf-8",
    )
    return path


def load_trace(path: str | Path) -> list[SpanRecord]:
    """Load either exporter format (sniffs the first byte)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return load_jsonl(path)
    head = path.read_text(encoding="utf-8").lstrip()[:1]
    if head == "{" or head == "[":
        try:
            return load_chrome(path)
        except (KeyError, json.JSONDecodeError):
            return load_jsonl(path)
    return load_jsonl(path)


# -- Prometheus text metrics ------------------------------------------------


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


def prometheus_metrics(counters: Counters | dict | None = None,
                       records=None,
                       timer=None) -> str:
    """Prometheus text exposition of counters, span aggregates, and
    (optionally) :class:`~repro.utils.timing.Timer` section totals."""
    lines: list[str] = []
    if counters is not None:
        cdict = counters.as_dict() if isinstance(counters, Counters) \
            else dict(counters)
        lines.append("# HELP qf_counter unified QF-RAMAN event counters")
        lines.append("# TYPE qf_counter counter")
        for name, value in sorted(cdict.items()):
            lines.append(f"qf_{_prom_name(name)}_total {value}")
    if records:
        totals: dict[str, list[float]] = {}
        for r in _as_records(records):
            agg = totals.setdefault(r.name, [0.0, 0.0])
            agg[0] += r.dur
            agg[1] += 1.0
        lines.append("# HELP qf_span_seconds_total summed span wall time")
        lines.append("# TYPE qf_span_seconds_total counter")
        for name, (secs, _n) in sorted(totals.items()):
            lines.append(
                f'qf_span_seconds_total{{span="{name}"}} {secs:.6f}')
        lines.append("# HELP qf_span_calls_total span entry count")
        lines.append("# TYPE qf_span_calls_total counter")
        for name, (_secs, n) in sorted(totals.items()):
            lines.append(f'qf_span_calls_total{{span="{name}"}} {int(n)}')
    if timer is not None:
        lines.append("# HELP qf_timer_seconds_total Timer section totals")
        lines.append("# TYPE qf_timer_seconds_total counter")
        for name in sorted(timer.totals):
            lines.append(
                f'qf_timer_seconds_total{{section="{name}"}} '
                f"{timer.totals[name]:.6f}")
    return "\n".join(lines) + "\n"


def write_metrics(path: str | Path, counters=None, records=None,
                  timer=None) -> Path:
    path = Path(path)
    path.write_text(
        prometheus_metrics(counters=counters, records=records, timer=timer),
        encoding="utf-8",
    )
    return path


# -- ThroughputReport derivation --------------------------------------------


def derive_throughput(records, max_workers: int = 1,
                      backend: str = "trace"):
    """Reconstruct a :class:`~repro.pipeline.executor.ThroughputReport`
    from a trace — the executor's report is a projection of the span
    stream, which tests assert so the two never drift apart.

    Per-task rows come from the ``fragment`` spans; the run wall is
    the enclosing ``fragment_response`` span when present, else the
    extent of the fragment spans.
    """
    from repro.pipeline.executor import ThroughputReport

    recs = _as_records(records)
    frags = [r for r in recs if r.name == "fragment"]
    walls = [r for r in recs if r.name == "fragment_response"]
    if walls:
        wall_s = sum(r.dur for r in walls)
    elif frags:
        wall_s = max(r.ts + r.dur for r in frags) - min(r.ts for r in frags)
    else:
        wall_s = 0.0
    busy_s = sum(r.dur for r in frags)
    n = len(frags)
    denom = max(wall_s, 1e-12) * max(max_workers, 1)
    return ThroughputReport(
        backend=backend,
        max_workers=max_workers,
        n_tasks=n,
        wall_s=wall_s,
        fragments_per_s=n / max(wall_s, 1e-12),
        worker_utilization=min(1.0, busy_s / denom),
        tasks=[
            {"label": r.attrs.get("label", r.name),
             "natoms": r.attrs.get("natoms", 0),
             "wall_s": r.dur, "worker": r.pid}
            for r in frags
        ],
    )
