"""Unified run telemetry: span tracing, counters, exporters, manifests.

The measurement backbone of the stack (ROADMAP: every perf PR cites
its numbers from here). Four pieces:

- :mod:`repro.obs.tracer` — nested, attributed spans with per-worker
  capture and merge-at-join; zero-cost :class:`NullTracer` when off.
- :mod:`repro.obs.counters` — one registry for the formerly ad-hoc
  counts (ERIs evaluated/screened, SCF/CPHF iterations, DIIS resets,
  cache hits/misses, rigid-dedupe rotations).
- :mod:`repro.obs.export` — JSONL event log, Chrome trace-event JSON
  (Perfetto-loadable), Prometheus text metrics, and a
  ``ThroughputReport`` derivation from the span stream.
- :mod:`repro.obs.manifest` — the :class:`RunManifest` provenance
  record written alongside results.

Span names and counter names are a stable contract; see
``docs/observability.md``.
"""

from repro.obs.counters import Counters, counters, reset_counters
from repro.obs.export import (
    chrome_trace,
    derive_throughput,
    load_jsonl,
    load_trace,
    prometheus_metrics,
    spans_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.manifest import RunManifest, collect_manifest, git_revision
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    telemetry_shipment,
    tracing_requested,
    use_tracer,
)
from repro.obs.view import flamegraph, phase_summary, phase_totals, render

__all__ = [
    "Counters",
    "counters",
    "reset_counters",
    "chrome_trace",
    "derive_throughput",
    "load_jsonl",
    "load_trace",
    "prometheus_metrics",
    "spans_to_jsonl",
    "write_metrics",
    "write_trace",
    "RunManifest",
    "collect_manifest",
    "git_revision",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "set_tracer",
    "telemetry_shipment",
    "tracing_requested",
    "use_tracer",
    "flamegraph",
    "phase_summary",
    "phase_totals",
    "render",
]
