"""Exportable run manifests.

A :class:`RunManifest` is the provenance record written alongside a
run's results: what was computed (config, seeds), with what (package
versions, git SHA), and what happened (counters, per-phase walls,
throughput). Production runs at paper scale burn node-years — a result
file whose exact producing configuration cannot be reconstructed is a
result that must be recomputed.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.obs.counters import Counters, counters as global_counters

__all__ = ["RunManifest", "collect_manifest", "git_revision"]

MANIFEST_SCHEMA = 1


def git_revision(cwd: str | Path | None = None) -> str | None:
    """HEAD SHA of the repository containing ``cwd`` (None if not a
    checkout or git is unavailable)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _package_versions() -> dict[str, str]:
    versions = {
        "python": platform.python_version(),
    }
    for mod in ("numpy", "scipy"):
        try:
            versions[mod] = __import__(mod).__version__
        except ImportError:  # pragma: no cover - both ship in the image
            versions[mod] = "unavailable"
    try:
        from repro import __version__ as repro_version
        versions["repro"] = repro_version
    except ImportError:  # pragma: no cover
        versions["repro"] = "unavailable"
    return versions


@dataclass
class RunManifest:
    """Everything needed to reproduce and audit one run."""

    command: str
    config: dict = field(default_factory=dict)
    seeds: dict = field(default_factory=dict)
    versions: dict = field(default_factory=dict)
    git_sha: str | None = None
    platform: str = ""
    created_unix: float = 0.0
    counters: dict = field(default_factory=dict)
    phase_wall_s: dict = field(default_factory=dict)
    throughput: dict | None = None
    extras: dict = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA

    def as_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True,
                          default=str)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        data = json.loads(text)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def collect_manifest(
    command: str,
    config: dict | None = None,
    seeds: dict | None = None,
    timer=None,
    throughput=None,
    counter_registry: Counters | None = None,
    extras: dict | None = None,
) -> RunManifest:
    """Build a :class:`RunManifest` from the live process state.

    ``timer`` contributes ``phase_wall_s``; ``throughput`` (a
    :class:`~repro.pipeline.executor.ThroughputReport`) is embedded as
    its dict form with the per-task rows dropped (they belong in the
    trace, not the manifest).
    """
    reg = counter_registry if counter_registry is not None \
        else global_counters()
    tp = None
    if throughput is not None:
        tp = throughput.as_dict()
        tp.pop("tasks", None)
    return RunManifest(
        command=command,
        config=dict(config or {}),
        seeds=dict(seeds or {}),
        versions=_package_versions(),
        git_sha=git_revision(),
        platform=f"{platform.system()}-{platform.machine()}"
                 f"-py{sys.version_info.major}.{sys.version_info.minor}",
        created_unix=time.time(),
        counters=reg.as_dict(),
        phase_wall_s=dict(timer.totals) if timer is not None else {},
        throughput=tp,
        extras=dict(extras or {}),
    )
