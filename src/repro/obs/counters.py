"""Unified event counters for the QF-RAMAN stack.

One registry replaces the ad-hoc counts scattered through the code
(Schwarz ``screen_stats``, SCF iteration tallies, cache hit/miss
attributes, rigid-dedupe rotation counts). Producers call
``counters().inc(name)``; consumers read ``counters().as_dict()`` or
export through :mod:`repro.obs.export`.

The registry is *process-local*: worker processes accumulate into
their own copy (inherited at fork) and ship the per-task delta back to
the parent inside the task result (see
:func:`repro.obs.tracer.telemetry_shipment`), where the executor merges
it. Counter names are dotted, lowercase, and part of the stable
contract documented in ``docs/observability.md``.

Counting is always on — an integer add per *aggregated* event (never
per matrix element) is far below measurement noise, which is why there
is no null-counters object mirroring the
:class:`~repro.obs.tracer.NullTracer`.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["Counters", "counters", "reset_counters"]


class Counters:
    """Named monotonically increasing integer counters."""

    __slots__ = ("_counts",)

    def __init__(self):
        self._counts: dict[str, int] = defaultdict(int)

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` (default 1) to counter ``name``."""
        self._counts[name] += int(n)

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """Name-sorted plain-dict snapshot."""
        return dict(sorted(self._counts.items()))

    def snapshot(self) -> dict[str, int]:
        """Cheap copy for later :meth:`delta_since` comparison."""
        return dict(self._counts)

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        """Increments accumulated since ``snapshot`` (zero deltas
        omitted) — the payload a worker ships back to its parent."""
        return {
            name: value - snapshot.get(name, 0)
            for name, value in self._counts.items()
            if value != snapshot.get(name, 0)
        }

    def merge(self, other: "Counters | dict[str, int]") -> "Counters":
        """Add another registry (or a shipped delta dict) into this one."""
        items = other.items() if isinstance(other, dict) else \
            other._counts.items()
        for name, value in items:
            self._counts[name] += int(value)
        return self

    def reset(self) -> None:
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"


_GLOBAL = Counters()


def counters() -> Counters:
    """The process-wide registry every producer reports into."""
    return _GLOBAL


def reset_counters() -> None:
    """Clear the process-wide registry (tests and fresh CLI runs)."""
    _GLOBAL.reset()
