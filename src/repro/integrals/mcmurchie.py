"""Scalar McMurchie–Davidson integrals (reference implementation).

Implements the Hermite-Gaussian expansion of cartesian Gaussian
products (E coefficients), the Boys function, the Hermite Coulomb
repulsion tensor (R), and from those the standard one- and two-electron
integrals over *primitive* and *contracted* functions.

This module favors clarity over speed; the vectorized engine in
:mod:`repro.integrals.engine` is validated against it.

References: McMurchie & Davidson, J. Comput. Phys. 26, 218 (1978);
Helgaker, Jørgensen, Olsen, "Molecular Electronic-Structure Theory".
"""

from __future__ import annotations

import math
import os

import numpy as np
from scipy.special import gammainc, gamma as gamma_fn

from repro.basis.gaussian import Shell
from repro.obs.counters import counters


# ---------------------------------------------------------------------------
# bounded recursion memos
# ---------------------------------------------------------------------------

MEMO_ENV = "QF_MEMO_SIZE"
_MEMO_DEFAULT = 4096

#: module-aggregate memo statistics; shipped to :mod:`repro.obs`
#: counters by :func:`flush_memo_stats` at shell granularity (never per
#: primitive — the audit must not cost what it measures)
_MEMO_STATS = {"hits": 0, "misses": 0, "evictions": 0, "peak": 0}
_MEMO_PEAK_SHIPPED = 0


def memo_bound() -> int:
    """Per-memo entry bound: ``QF_MEMO_SIZE`` env override, default 4096."""
    raw = os.environ.get(MEMO_ENV, "")
    if not raw:
        return _MEMO_DEFAULT
    try:
        bound = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{MEMO_ENV} must be a positive integer, got {raw!r}"
        ) from exc
    if bound < 1:
        raise ValueError(f"{MEMO_ENV} must be >= 1, got {bound}")
    return bound


class BoundedMemo(dict):
    """LRU-bounded dict for the E/R recursion memos.

    The memos are already scoped to a single primitive evaluation (keys
    are small integer tuples, so a handful of entries each), but a
    pathological angular momentum or a buggy caller could still grow one
    without limit; this bound makes that impossible and auditable. On a
    hit the entry is refreshed (true LRU); when full, the least recently
    used entry is evicted. Hits/misses/evictions/peak-size aggregate
    into module stats, surfaced as ``mcmurchie.memo_*`` counters.
    """

    __slots__ = ("maxsize",)

    def __init__(self, maxsize: int | None = None):
        super().__init__()
        self.maxsize = memo_bound() if maxsize is None else maxsize

    def get(self, key, default=None):
        try:
            val = super().pop(key)
        except KeyError:
            _MEMO_STATS["misses"] += 1
            return default
        # re-insert: dict preserves insertion order, so the newest entry
        # moves to the back and front-of-dict is always the LRU victim
        super().__setitem__(key, val)
        _MEMO_STATS["hits"] += 1
        return val

    def __setitem__(self, key, val):
        if key not in self and len(self) >= self.maxsize:
            del self[next(iter(self))]
            _MEMO_STATS["evictions"] += 1
        super().__setitem__(key, val)
        if len(self) > _MEMO_STATS["peak"]:
            _MEMO_STATS["peak"] = len(self)


def memo_stats() -> dict[str, int]:
    """Snapshot of the module-aggregate memo statistics."""
    return dict(_MEMO_STATS)


def reset_memo_stats() -> None:
    """Zero the aggregate memo statistics (tests/benchmarks)."""
    global _MEMO_PEAK_SHIPPED
    for key in _MEMO_STATS:
        _MEMO_STATS[key] = 0
    _MEMO_PEAK_SHIPPED = 0


def flush_memo_stats() -> None:
    """Ship aggregate memo stats into the :mod:`repro.obs` registry.

    ``mcmurchie.memo_hits`` / ``memo_misses`` / ``memo_evictions`` are
    monotonic totals; ``mcmurchie.memo_peak_entries`` tracks the largest
    single memo seen (shipped as increments so the inc-only registry
    converges to the max). Called from the contracted-shell drivers, so
    steady-state cost is one dict read per shell block.
    """
    global _MEMO_PEAK_SHIPPED
    reg = counters()
    for name in ("hits", "misses", "evictions"):
        val = _MEMO_STATS[name]
        if val:
            reg.inc(f"mcmurchie.memo_{name}", val)
            _MEMO_STATS[name] = 0
    if _MEMO_STATS["peak"] > _MEMO_PEAK_SHIPPED:
        reg.inc("mcmurchie.memo_peak_entries",
                _MEMO_STATS["peak"] - _MEMO_PEAK_SHIPPED)
        _MEMO_PEAK_SHIPPED = _MEMO_STATS["peak"]


# ---------------------------------------------------------------------------
# Boys function
# ---------------------------------------------------------------------------

def boys(n: int, t: float) -> float:
    """Boys function F_n(t) = ∫_0^1 u^{2n} exp(-t u²) du."""
    if t < 1e-12:
        return 1.0 / (2 * n + 1)
    # F_n(t) = Γ(n+1/2) γ*(n+1/2, t) / (2 t^{n+1/2}) with regularized lower γ
    return gamma_fn(n + 0.5) * gammainc(n + 0.5, t) / (2.0 * t ** (n + 0.5))


# ---------------------------------------------------------------------------
# Hermite expansion coefficients
# ---------------------------------------------------------------------------

def _e_memo(i: int, j: int, t: int, qx: float, a: float, b: float,
            memo: dict) -> float:
    # memo keys on (i, j, t) only — (qx, a, b) are fixed per evaluation,
    # so the dict lives exactly as long as one primitive integral and
    # never accumulates float-keyed entries across geometries (the old
    # module-wide lru_cache had near-zero hit rates across geometries
    # but grew without bound over a long pipeline run)
    if t < 0 or t > i + j:
        return 0.0
    key = (i, j, t)
    val = memo.get(key)
    if val is not None:
        return val
    p = a + b
    q = a * b / p
    if i == j == t == 0:
        val = math.exp(-q * qx * qx)
    elif j == 0:
        val = (
            _e_memo(i - 1, j, t - 1, qx, a, b, memo) / (2 * p)
            - q * qx / a * _e_memo(i - 1, j, t, qx, a, b, memo)
            + (t + 1) * _e_memo(i - 1, j, t + 1, qx, a, b, memo)
        )
    else:
        val = (
            _e_memo(i, j - 1, t - 1, qx, a, b, memo) / (2 * p)
            + q * qx / b * _e_memo(i, j - 1, t, qx, a, b, memo)
            + (t + 1) * _e_memo(i, j - 1, t + 1, qx, a, b, memo)
        )
    memo[key] = val
    return val


def _e_cached(i: int, j: int, t: int, qx: float, a: float, b: float) -> float:
    """Single E coefficient with a fresh per-call memo (compat shim)."""
    return _e_memo(i, j, t, qx, a, b, BoundedMemo())


def hermite_e(i: int, j: int, t: int, qx: float, a: float, b: float,
              memo: dict | None = None) -> float:
    """Hermite expansion coefficient E_t^{ij} for a 1D Gaussian product.

    ``qx`` is the center separation A_x - B_x, ``a``/``b`` the exponents.
    ``memo`` (optional) shares recursion work across calls with the
    same (qx, a, b) — callers evaluating many t values pass one dict.
    """
    return _e_memo(i, j, t, qx, a, b, BoundedMemo() if memo is None else memo)


# ---------------------------------------------------------------------------
# Hermite Coulomb tensor
# ---------------------------------------------------------------------------

def _r_memo(t: int, u: int, v: int, n: int, p: float,
            x: float, y: float, z: float, memo: dict) -> float:
    # memo keys on (t, u, v, n) only — (p, x, y, z) are fixed per
    # evaluation (same bounded-lifetime scheme as _e_memo)
    if t < 0 or u < 0 or v < 0:
        return 0.0
    key = (t, u, v, n)
    val = memo.get(key)
    if val is not None:
        return val
    if t == u == v == 0:
        r2 = x * x + y * y + z * z
        val = (-2.0 * p) ** n * boys(n, p * r2)
    elif t > 0:
        val = (t - 1) * _r_memo(t - 2, u, v, n + 1, p, x, y, z, memo) + x * _r_memo(
            t - 1, u, v, n + 1, p, x, y, z, memo
        )
    elif u > 0:
        val = (u - 1) * _r_memo(t, u - 2, v, n + 1, p, x, y, z, memo) + y * _r_memo(
            t, u - 1, v, n + 1, p, x, y, z, memo
        )
    else:
        val = (v - 1) * _r_memo(t, u, v - 2, n + 1, p, x, y, z, memo) + z * _r_memo(
            t, u, v - 1, n + 1, p, x, y, z, memo
        )
    memo[key] = val
    return val


def _r_cached(t: int, u: int, v: int, n: int, p: float,
              x: float, y: float, z: float) -> float:
    """Single R entry with a fresh per-call memo (compat shim)."""
    return _r_memo(t, u, v, n, p, x, y, z, BoundedMemo())


def hermite_r(t: int, u: int, v: int, p: float, pq: np.ndarray,
              memo: dict | None = None) -> float:
    """Hermite Coulomb auxiliary R_{tuv}^{0}(p, PQ).

    ``memo`` (optional) shares the downward recursion across calls with
    the same (p, PQ) — callers sweeping t/u/v pass one dict.
    """
    return _r_memo(t, u, v, 0, p, float(pq[0]), float(pq[1]), float(pq[2]),
                   BoundedMemo() if memo is None else memo)


def clear_caches() -> None:
    """Compatibility no-op.

    Memoization is now scoped to a single primitive-integral evaluation
    (plain dicts keyed on small integer indices), so nothing persists at
    module level and there is no cache left to clear.
    """


# ---------------------------------------------------------------------------
# primitive integrals
# ---------------------------------------------------------------------------

def overlap_prim(a, lmn1, ra, b, lmn2, rb) -> float:
    """Overlap of two unnormalized primitive cartesian Gaussians."""
    p = a + b
    out = (math.pi / p) ** 1.5
    for d in range(3):
        out *= hermite_e(lmn1[d], lmn2[d], 0, ra[d] - rb[d], a, b)
    return out


def kinetic_prim(a, lmn1, ra, b, lmn2, rb) -> float:
    """Kinetic-energy integral of two primitives (via overlap shifts)."""
    i, j, k = lmn2
    term0 = b * (2 * (i + j + k) + 3) * overlap_prim(a, lmn1, ra, b, lmn2, rb)
    term1 = -2.0 * b ** 2 * (
        overlap_prim(a, lmn1, ra, b, (i + 2, j, k), rb)
        + overlap_prim(a, lmn1, ra, b, (i, j + 2, k), rb)
        + overlap_prim(a, lmn1, ra, b, (i, j, k + 2), rb)
    )
    term2 = -0.5 * (
        i * (i - 1) * overlap_prim(a, lmn1, ra, b, (i - 2, j, k), rb)
        + j * (j - 1) * overlap_prim(a, lmn1, ra, b, (i, j - 2, k), rb)
        + k * (k - 1) * overlap_prim(a, lmn1, ra, b, (i, j, k - 2), rb)
    )
    return term0 + term1 + term2


def nuclear_prim(a, lmn1, ra, b, lmn2, rb, rc) -> float:
    """Nuclear-attraction integral of two primitives for a nucleus at rc."""
    p = a + b
    cp = (a * np.asarray(ra) + b * np.asarray(rb)) / p
    pc = cp - np.asarray(rc)
    ex_memo, ey_memo, ez_memo, r_memo = (
        BoundedMemo(), BoundedMemo(), BoundedMemo(), BoundedMemo())
    px, py, pz = float(pc[0]), float(pc[1]), float(pc[2])
    out = 0.0
    for t in range(lmn1[0] + lmn2[0] + 1):
        ex = _e_memo(lmn1[0], lmn2[0], t, ra[0] - rb[0], a, b, ex_memo)
        if ex == 0.0:  # qf: exact-zero — Hermite E is analytically zero
            continue
        for u in range(lmn1[1] + lmn2[1] + 1):
            ey = _e_memo(lmn1[1], lmn2[1], u, ra[1] - rb[1], a, b, ey_memo)
            if ey == 0.0:  # qf: exact-zero
                continue
            for v in range(lmn1[2] + lmn2[2] + 1):
                ez = _e_memo(lmn1[2], lmn2[2], v, ra[2] - rb[2], a, b, ez_memo)
                if ez == 0.0:  # qf: exact-zero
                    continue
                out += ex * ey * ez * _r_memo(
                    t, u, v, 0, p, px, py, pz, r_memo
                )
    return 2.0 * math.pi / p * out


def eri_prim(a, lmn1, ra, b, lmn2, rb, c, lmn3, rc, d, lmn4, rd) -> float:
    """Two-electron repulsion integral (ab|cd) over primitives."""
    p = a + b
    q = c + d
    alpha = p * q / (p + q)
    rp = (a * np.asarray(ra) + b * np.asarray(rb)) / p
    rq = (c * np.asarray(rc) + d * np.asarray(rd)) / q
    pq = rp - rq
    # one memo per 1D E series and one for the shared R recursion: all
    # calls below share (exponents, separations), so keys are pure ints
    e1m = (BoundedMemo(), BoundedMemo(), BoundedMemo())
    e2m = (BoundedMemo(), BoundedMemo(), BoundedMemo())
    r_memo: dict = BoundedMemo()
    qx, qy, qz = float(pq[0]), float(pq[1]), float(pq[2])
    out = 0.0
    for t in range(lmn1[0] + lmn2[0] + 1):
        e1x = _e_memo(lmn1[0], lmn2[0], t, ra[0] - rb[0], a, b, e1m[0])
        if e1x == 0.0:  # qf: exact-zero — Hermite E is analytically zero
            continue
        for u in range(lmn1[1] + lmn2[1] + 1):
            e1y = _e_memo(lmn1[1], lmn2[1], u, ra[1] - rb[1], a, b, e1m[1])
            if e1y == 0.0:  # qf: exact-zero
                continue
            for v in range(lmn1[2] + lmn2[2] + 1):
                e1z = _e_memo(lmn1[2], lmn2[2], v, ra[2] - rb[2], a, b, e1m[2])
                if e1z == 0.0:  # qf: exact-zero
                    continue
                for tt in range(lmn3[0] + lmn4[0] + 1):
                    e2x = _e_memo(lmn3[0], lmn4[0], tt, rc[0] - rd[0], c, d, e2m[0])
                    if e2x == 0.0:  # qf: exact-zero
                        continue
                    for uu in range(lmn3[1] + lmn4[1] + 1):
                        e2y = _e_memo(lmn3[1], lmn4[1], uu, rc[1] - rd[1], c, d, e2m[1])
                        if e2y == 0.0:  # qf: exact-zero
                            continue
                        for vv in range(lmn3[2] + lmn4[2] + 1):
                            e2z = _e_memo(
                                lmn3[2], lmn4[2], vv, rc[2] - rd[2], c, d, e2m[2]
                            )
                            if e2z == 0.0:  # qf: exact-zero
                                continue
                            sign = (-1.0) ** (tt + uu + vv)
                            out += (
                                e1x * e1y * e1z * e2x * e2y * e2z * sign
                                * _r_memo(
                                    t + tt, u + uu, v + vv, 0, alpha,
                                    qx, qy, qz, r_memo,
                                )
                            )
    return out * 2.0 * math.pi ** 2.5 / (p * q * math.sqrt(p + q))


def dipole_prim(a, lmn1, ra, b, lmn2, rb, direction: int, origin) -> float:
    """Dipole integral <a| (r - origin)_dir |b> over primitives."""
    p = a + b
    cp = (a * np.asarray(ra) + b * np.asarray(rb)) / p
    out = 1.0
    for d in range(3):
        if d == direction:
            # x_C = x_P + (P - C): E^1 term picks the Hermite x moment
            e1 = hermite_e(lmn1[d], lmn2[d], 1, ra[d] - rb[d], a, b)
            e0 = hermite_e(lmn1[d], lmn2[d], 0, ra[d] - rb[d], a, b)
            out *= e1 + (cp[d] - origin[d]) * e0
        else:
            out *= hermite_e(lmn1[d], lmn2[d], 0, ra[d] - rb[d], a, b)
    return out * (math.pi / p) ** 1.5


# ---------------------------------------------------------------------------
# contracted shell integrals (generic driver)
# ---------------------------------------------------------------------------

def _contract_pair(sha: Shell, shb: Shell, prim_fn) -> np.ndarray:
    """Contract a primitive integral function over a shell pair.

    ``prim_fn(a, lmn1, ra, b, lmn2, rb) -> float``; returns an array of
    shape (nfuncs_a, nfuncs_b).
    """
    out = np.zeros((sha.nfuncs, shb.nfuncs))
    for ia, lmn1 in enumerate(sha.components):
        for ib, lmn2 in enumerate(shb.components):
            val = 0.0
            for ca, aa in zip(sha.coefs, sha.exps):  # qf: shell-loop — scalar reference driver
                for cb, ab in zip(shb.coefs, shb.exps):  # qf: shell-loop — scalar reference driver
                    val += ca * cb * prim_fn(aa, lmn1, sha.center, ab, lmn2, shb.center)
            out[ia, ib] = val
    flush_memo_stats()
    return out


def overlap_shell(sha: Shell, shb: Shell) -> np.ndarray:
    return _contract_pair(sha, shb, overlap_prim)


def kinetic_shell(sha: Shell, shb: Shell) -> np.ndarray:
    return _contract_pair(sha, shb, kinetic_prim)


def nuclear_shell(sha: Shell, shb: Shell, charges, coords) -> np.ndarray:
    def fn(a, lmn1, ra, b, lmn2, rb):
        val = 0.0
        for z, rc in zip(charges, coords):
            val -= z * nuclear_prim(a, lmn1, ra, b, lmn2, rb, rc)
        return val

    return _contract_pair(sha, shb, fn)


def dipole_shell(sha: Shell, shb: Shell, direction: int, origin) -> np.ndarray:
    def fn(a, lmn1, ra, b, lmn2, rb):
        return dipole_prim(a, lmn1, ra, b, lmn2, rb, direction, origin)

    return _contract_pair(sha, shb, fn)


def eri_shell(sha: Shell, shb: Shell, shc: Shell, shd: Shell) -> np.ndarray:
    """Contracted ERI block of shape (na, nb, nc, nd)."""
    out = np.zeros((sha.nfuncs, shb.nfuncs, shc.nfuncs, shd.nfuncs))
    for ia, l1 in enumerate(sha.components):
        for ib, l2 in enumerate(shb.components):
            for ic, l3 in enumerate(shc.components):
                for id_, l4 in enumerate(shd.components):
                    val = 0.0
                    for ca, aa in zip(sha.coefs, sha.exps):  # qf: shell-loop — scalar reference driver
                        for cb, ab in zip(shb.coefs, shb.exps):  # qf: shell-loop — scalar reference driver
                            for cc, ac in zip(shc.coefs, shc.exps):  # qf: shell-loop — scalar reference driver
                                for cd, ad in zip(shd.coefs, shd.exps):  # qf: shell-loop — scalar reference driver
                                    val += (
                                        ca * cb * cc * cd
                                        * eri_prim(
                                            aa, l1, sha.center, ab, l2, shb.center,
                                            ac, l3, shc.center, ad, l4, shd.center,
                                        )
                                    )
                    out[ia, ib, ic, id_] = val
    flush_memo_stats()
    return out
