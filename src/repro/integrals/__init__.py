"""Molecular integrals over contracted cartesian Gaussians.

Two implementations of the McMurchie–Davidson scheme:

* :mod:`repro.integrals.mcmurchie` — scalar reference, memoized
  recursions, any angular momentum. Used for validation and as the
  fallback for rare integral classes.
* :mod:`repro.integrals.engine` — vectorized engine used by the SCF and
  DFPT code: one-electron matrices, Schwarz-screened ERI tensor, dipole
  integrals, and first-derivative integrals for analytic gradients.

Both produce identical numbers (tested against each other and against
literature SCF energies).
"""

from repro.integrals.engine import IntegralEngine

__all__ = ["IntegralEngine"]
