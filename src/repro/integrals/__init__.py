"""Molecular integrals over contracted cartesian Gaussians.

Two implementations of the McMurchie–Davidson scheme:

* :mod:`repro.integrals.mcmurchie` — scalar reference, memoized
  recursions, any angular momentum. Used for validation and as the
  fallback for rare integral classes.
* :mod:`repro.integrals.engine` — vectorized engine used by the SCF and
  DFPT code: one-electron matrices, Schwarz-screened ERI tensor, dipole
  integrals, and first-derivative integrals for analytic gradients.

Schwarz screening uses the Cauchy–Schwarz bound
``|(ab|cd)| <= sqrt((ab|ab)) * sqrt((cd|cd))`` to skip shell-pair-block
combinations whose bound falls below ``IntegralEngine.schwarz_cutoff``;
skipped integrals are set to zero, so every ERI element is exact or
bounded in magnitude by the cutoff. The engine default is 0 (screening
off); :class:`repro.scf.rhf.RHF` enables it at 1e-12, far below SCF
convergence noise. Counters in ``IntegralEngine.screen_stats`` record
how many pair-block combinations were evaluated vs. screened.

Both implementations produce identical numbers (tested against each
other and against literature SCF energies).
"""

from repro.integrals.engine import IntegralEngine

__all__ = ["IntegralEngine"]
