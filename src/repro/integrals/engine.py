"""Vectorized McMurchie–Davidson integral engine.

The SCF/DFPT workloads need, per (displaced) fragment geometry:

* one-electron matrices S, T, V (+ per-nucleus V for gradients),
* dipole matrices (electric-field DFPT perturbation),
* either the exact ERI tensor (small systems) or density-fitting
  2-/3-center Coulomb integrals,
* first-derivative ("skeleton") versions of all of the above for
  analytic gradients.

Everything is batched over *shell-pair classes*: all shell pairs with
the same angular momenta (and contraction depth) are processed with one
set of numpy array operations, so the Python-level loop count is the
number of classes, not the number of integrals. This is the same
"pack similar work together" idea as the paper's elastic batching of
same-shape GEMMs (§V-C), applied at the integral level.

Validation: every public method is tested against the scalar reference
in :mod:`repro.integrals.mcmurchie` and against finite differences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.special import gammainc, gammaln

from repro.basis.gaussian import BasisSet, Shell
from repro.integrals.batched import (
    build_pair_blocks_batched,
    kernels_mode,
    scatter_eri_deriv,
    scatter_ordered,
    scatter_pairs_2c,
    scatter_pairs_aux,
    scatter_symmetric,
)
from repro.obs.counters import counters
from repro.obs.tracer import get_tracer


# ---------------------------------------------------------------------------
# cartesian components, generic l
# ---------------------------------------------------------------------------

@lru_cache(maxsize=None)
def components(l: int) -> tuple[tuple[int, int, int], ...]:
    """Cartesian components of angular momentum ``l``.

    Ordering: lexicographically descending in (i, j) — reproduces the
    conventional (x, y, z) order for p and (xx, xy, xz, yy, yz, zz) for d.
    """
    out = []
    for i in range(l, -1, -1):
        for j in range(l - i, -1, -1):
            out.append((i, j, l - i - j))
    return tuple(out)


# ---------------------------------------------------------------------------
# Boys function, vectorized
# ---------------------------------------------------------------------------

def boys_vec(nmax: int, t: np.ndarray) -> np.ndarray:
    """F_n(t) for n = 0..nmax over an array of t. Shape (len(t), nmax+1).

    F_nmax is evaluated through the regularized incomplete gamma
    function; lower orders follow from stable downward recursion
    F_{n-1}(t) = (2 t F_n(t) + e^{-t}) / (2n - 1).
    """
    t = np.asarray(t, dtype=float).ravel()
    out = np.empty((t.size, nmax + 1))
    small = t < 1e-13
    ts = np.where(small, 1.0, t)  # placeholder to avoid 0-division
    n = nmax
    # F_n(t) = Γ(n+1/2) P(n+1/2, t) / (2 t^{n+1/2})
    log_pref = gammaln(n + 0.5) - (n + 0.5) * np.log(ts)
    fn = np.exp(log_pref) * gammainc(n + 0.5, ts) / 2.0
    fn = np.where(small, 1.0 / (2 * n + 1), fn)
    out[:, n] = fn
    if nmax > 0:
        emt = np.exp(-t)
        for m in range(nmax, 0, -1):
            out[:, m - 1] = (2.0 * t * out[:, m] + emt) / (2 * m - 1)
        # downward recursion is exact at t=0 too: F_{m-1}(0)=1/(2m-1)
    return out


# ---------------------------------------------------------------------------
# Hermite expansion coefficients, vectorized over an array of pairs
# ---------------------------------------------------------------------------

def e_coeffs_1d(la: int, lb: int, a: np.ndarray, b: np.ndarray,
                qx: np.ndarray) -> np.ndarray:
    """Hermite E coefficients for one cartesian direction.

    Returns shape ``(n, la+1, lb+1, la+lb+1)``; entry ``[.., i, j, t]``
    is E_t^{ij}(qx; a, b). Recursion identical to the scalar reference
    but with every step an array operation over the n pairs.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    qx = np.asarray(qx, dtype=float).ravel()
    n = a.size
    p = a + b
    q = a * b / p
    e = np.zeros((n, la + 1, lb + 1, la + lb + 1))
    e[:, 0, 0, 0] = np.exp(-q * qx * qx)
    inv2p = 1.0 / (2.0 * p)
    # raise i with j = 0.  q/a == b/p (avoids 0/0 for zero-exponent
    # dummy partners used by the density-fitting 2/3-center integrals)
    qq_a = (b / p) * qx
    for i in range(1, la + 1):
        for t in range(i + 1):
            val = -qq_a * e[:, i - 1, 0, t]
            if t > 0:
                val = val + inv2p * e[:, i - 1, 0, t - 1]
            if t + 1 <= i - 1:
                val = val + (t + 1) * e[:, i - 1, 0, t + 1]
            e[:, i, 0, t] = val
    # raise j for all i (q/b == a/p)
    qq_b = (a / p) * qx
    for j in range(1, lb + 1):
        for i in range(la + 1):
            for t in range(i + j + 1):
                val = qq_b * e[:, i, j - 1, t]
                if t > 0:
                    val = val + inv2p * e[:, i, j - 1, t - 1]
                if t + 1 <= i + j - 1:
                    val = val + (t + 1) * e[:, i, j - 1, t + 1]
                e[:, i, j, t] = val
    return e


def hermite_combos(lmax_total: int, tmax: int, umax: int, vmax: int
                   ) -> list[tuple[int, int, int]]:
    """Valid Hermite index triples (t, u, v) with per-dim and total bounds."""
    out = []
    for t in range(tmax + 1):
        for u in range(umax + 1):
            for v in range(vmax + 1):
                if t + u + v <= lmax_total:
                    out.append((t, u, v))
    return out


def hermite_coulomb_vec(tmax: int, umax: int, vmax: int,
                        p: np.ndarray, pq: np.ndarray) -> np.ndarray:
    """Hermite Coulomb tensor R_{tuv} over an array of charge pairs.

    Parameters
    ----------
    tmax, umax, vmax:
        Per-dimension maxima; only entries with ``t+u+v <= tmax+?``
        bounded by ``L = max total`` are populated (others stay zero).
    p:
        Combined exponents, shape (n,).
    pq:
        Center separations P-Q, shape (n, 3).

    Returns shape ``(n, tmax+1, umax+1, vmax+1)``.
    """
    p = np.asarray(p, dtype=float).ravel()
    pq = np.asarray(pq, dtype=float).reshape(-1, 3)
    n = p.size
    L = tmax + umax + vmax
    t_arg = p * np.einsum("ij,ij->i", pq, pq)
    f = boys_vec(L, t_arg)  # (n, L+1)
    # R^m_{000} = (-2p)^m F_m
    m2p = -2.0 * p
    levels: dict[tuple[int, int, int], np.ndarray] = {}
    # store R^m for each (t,u,v) as we build up total order; keep the m
    # dimension explicitly: rm[(t,u,v)] has shape (n, L - (t+u+v) + 1)
    rm: dict[tuple[int, int, int], np.ndarray] = {}
    base = np.empty((n, L + 1))
    acc = np.ones(n)
    for m in range(L + 1):
        base[:, m] = acc * f[:, m]
        acc = acc * m2p
    rm[(0, 0, 0)] = base
    x, y, z = pq[:, 0], pq[:, 1], pq[:, 2]
    for total in range(1, L + 1):
        for t in range(min(total, tmax) + 1):
            for u in range(min(total - t, umax) + 1):
                v = total - t - u
                if v < 0 or v > vmax:
                    continue
                nm = L - total + 1
                if t > 0:
                    prev = rm[(t - 1, u, v)]
                    val = x[:, None] * prev[:, 1: nm + 1]
                    if t > 1:
                        val = val + (t - 1) * rm[(t - 2, u, v)][:, 1: nm + 1]
                elif u > 0:
                    prev = rm[(t, u - 1, v)]
                    val = y[:, None] * prev[:, 1: nm + 1]
                    if u > 1:
                        val = val + (u - 1) * rm[(t, u - 2, v)][:, 1: nm + 1]
                else:
                    prev = rm[(t, u, v - 1)]
                    val = z[:, None] * prev[:, 1: nm + 1]
                    if v > 1:
                        val = val + (v - 1) * rm[(t, u, v - 2)][:, 1: nm + 1]
                rm[(t, u, v)] = val
    out = np.zeros((n, tmax + 1, umax + 1, vmax + 1))
    for (t, u, v), arr in rm.items():
        if t <= tmax and u <= umax and v <= vmax:
            out[:, t, u, v] = arr[:, 0]
    return out


# ---------------------------------------------------------------------------
# shell-pair blocks
# ---------------------------------------------------------------------------

@dataclass
class PairBlock:
    """All shell pairs of one (la, lb, Ka, Kb) class, primitive-flattened.

    Primitive arrays have length ``npair * K2`` (pair-major). E tensors
    are built on demand by :meth:`e_tensors`.
    """

    la: int
    lb: int
    k2: int
    ishell: np.ndarray          # (npair,)
    jshell: np.ndarray          # (npair,)
    off_a: np.ndarray           # (npair,) function offsets
    off_b: np.ndarray
    atom_a: np.ndarray          # (npair,) atom owning the bra-a shell
    atom_b: np.ndarray
    a: np.ndarray               # (npair*k2,) exponents
    b: np.ndarray
    cc: np.ndarray              # (npair*k2,) coefficient products
    ab_vec: np.ndarray          # (npair, 3) A - B
    centers_a: np.ndarray       # (npair, 3)
    p: np.ndarray               # (npair*k2,) a + b
    pc: np.ndarray              # (npair*k2, 3) product centers P

    @property
    def npair(self) -> int:
        return self.ishell.size

    @property
    def nprim(self) -> int:
        return self.a.size

    def e_tensors(self, da: int = 0, db: int = 0) -> list[np.ndarray]:
        """E coefficient tensors for the three dimensions, each of shape
        ``(nprim, la+da+1, lb+db+1, la+da+lb+db+1)``."""
        qx = np.repeat(self.ab_vec, self.k2, axis=0)
        return [
            e_coeffs_1d(self.la + da, self.lb + db, self.a, self.b, qx[:, d])
            for d in range(3)
        ]

    def subset(self, idx: np.ndarray) -> "PairBlock":
        """View of this block restricted to the pairs in ``idx``.

        Used by Schwarz screening to evaluate only surviving pairs.
        """
        k2 = self.k2

        def prim(arr: np.ndarray) -> np.ndarray:
            shaped = arr.reshape(self.npair, k2, *arr.shape[1:])
            return shaped[idx].reshape(idx.size * k2, *arr.shape[1:])

        return PairBlock(
            la=self.la, lb=self.lb, k2=k2,
            ishell=self.ishell[idx], jshell=self.jshell[idx],
            off_a=self.off_a[idx], off_b=self.off_b[idx],
            atom_a=self.atom_a[idx], atom_b=self.atom_b[idx],
            a=prim(self.a), b=prim(self.b), cc=prim(self.cc),
            ab_vec=self.ab_vec[idx], centers_a=self.centers_a[idx],
            p=prim(self.p), pc=prim(self.pc),
        )


def build_pair_blocks(
    shells: list[Shell],
    offsets: list[int],
    pairs: list[tuple[int, int]] | None = None,
    canonicalize: bool = True,
    screen: float = 1.0e-12,
) -> list[PairBlock]:
    """Group shell pairs into angular/contraction classes.

    ``pairs`` defaults to all i <= j pairs. With ``canonicalize`` the
    pair is swapped so la >= lb (fewer classes); derivative builders
    pass ordered pairs with ``canonicalize=False`` because the bra slot
    is meaningful there. Pairs whose largest primitive Gaussian-product
    prefactor exp(-q |AB|^2) falls below ``screen`` are dropped — for
    spatially extended fragments this prunes the quadratic pair count
    to near-linear.
    """
    if pairs is None:
        ns = len(shells)
        pairs = [(i, j) for i in range(ns) for j in range(i, ns)]
    if screen > 0.0:
        kept = []
        for (i, j) in pairs:  # qf: shell-loop — O(npair) screening prepass, not the kernel
            si, sj = shells[i], shells[j]
            d2 = float(np.sum((si.center - sj.center) ** 2))
            if d2 == 0.0:  # qf: exact-zero — same-center shell pair
                kept.append((i, j))
                continue
            amin, bmin = float(si.exps.min()), float(sj.exps.min())
            q = amin * bmin / (amin + bmin)
            if math.exp(-q * d2) >= screen:
                kept.append((i, j))
        pairs = kept
    groups: dict[tuple[int, int, int, int], list[tuple[int, int]]] = {}
    for (i, j) in pairs:  # qf: shell-loop — class grouping prepass, not the kernel
        si, sj = shells[i], shells[j]
        if canonicalize and si.l < sj.l:
            i, j = j, i
            si, sj = sj, si
        key = (si.l, sj.l, len(si.exps), len(sj.exps))
        groups.setdefault(key, []).append((i, j))
    blocks: list[PairBlock] = []
    for (la, lb, ka, kb), plist in sorted(groups.items()):
        npair = len(plist)
        k2 = ka * kb
        ish = np.array([p[0] for p in plist])
        jsh = np.array([p[1] for p in plist])
        off_a = np.array([offsets[i] for i in ish])
        off_b = np.array([offsets[j] for j in jsh])
        atom_a = np.array([shells[i].atom_index for i in ish])
        atom_b = np.array([shells[j].atom_index for j in jsh])
        a = np.empty((npair, k2))
        b = np.empty((npair, k2))
        cc = np.empty((npair, k2))
        ab_vec = np.empty((npair, 3))
        centers_a = np.empty((npair, 3))
        pc = np.empty((npair, k2, 3))
        for r, (i, j) in enumerate(plist):  # qf: shell-loop — one-time pair-block pack (cached per engine)
            si, sj = shells[i], shells[j]
            ea, eb = np.meshgrid(si.exps, sj.exps, indexing="ij")
            ca, cb = np.meshgrid(si.coefs, sj.coefs, indexing="ij")
            a[r] = ea.ravel()
            b[r] = eb.ravel()
            cc[r] = (ca * cb).ravel()
            ab_vec[r] = si.center - sj.center
            centers_a[r] = si.center
            psum = a[r] + b[r]
            pc[r] = (
                a[r][:, None] * si.center[None, :]
                + b[r][:, None] * sj.center[None, :]
            ) / psum[:, None]
        blocks.append(
            PairBlock(
                la=la, lb=lb, k2=k2,
                ishell=ish, jshell=jsh, off_a=off_a, off_b=off_b,
                atom_a=atom_a, atom_b=atom_b,
                a=a.ravel(), b=b.ravel(), cc=cc.ravel(),
                ab_vec=ab_vec, centers_a=centers_a,
                p=(a + b).ravel(), pc=pc.reshape(-1, 3),
            )
        )
    return blocks


def _e3_components(
    ex: list[np.ndarray],
    la: int,
    lb: int,
    combos: list[tuple[int, int, int]],
    sign: bool = False,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Collapse per-dimension E tensors into the product tensor.

    Returns shape ``(nprim, ncomp_a * ncomp_b, ncombos)`` where entry
    ``[.., (ca, cb), k]`` is ``Ex[ia,jb,t] Ey[..] Ez[..]`` for combo
    ``combos[k] = (t, u, v)``; multiplied by ``(-1)^{t+u+v}`` when
    ``sign`` and by ``weights`` (e.g. contraction coefficients) if given.
    """
    comps_a = components(la)
    comps_b = components(lb)
    nprim = ex[0].shape[0]
    out = np.zeros((nprim, len(comps_a) * len(comps_b), len(combos)))
    for ia, (ax, ay, az) in enumerate(comps_a):
        for ib, (bx, by, bz) in enumerate(comps_b):
            col = ia * len(comps_b) + ib
            for k, (t, u, v) in enumerate(combos):
                if t > ax + bx or u > ay + by or v > az + bz:
                    continue
                val = ex[0][:, ax, bx, t] * ex[1][:, ay, by, u] * ex[2][:, az, bz, v]
                if sign and (t + u + v) % 2 == 1:
                    val = -val
                out[:, col, k] = val
    if weights is not None:
        out *= weights[:, None, None]
    return out


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------

class IntegralEngine:
    """Integral driver for one basis set over one geometry.

    Parameters
    ----------
    basis:
        The orbital basis.
    charges, coords:
        Nuclear charges and positions (bohr) for nuclear attraction.
    schwarz_cutoff:
        Schwarz screening threshold for two-electron integrals. A
        (bra-pair, ket-pair) combination is skipped when the bound
        ``sqrt((ab|ab)) * sqrt((cd|cd))`` — a rigorous Cauchy–Schwarz
        upper bound on every |(ab|cd)| in the combination — falls below
        this value; skipped entries are exact zeros in the output, so
        the absolute ERI error per element is at most the cutoff.
        ``0`` disables screening (every combination evaluated).
        Counters in :attr:`screen_stats` record evaluated vs skipped
        pair combinations.
    """

    def __init__(self, basis: BasisSet, charges: np.ndarray, coords: np.ndarray,
                 schwarz_cutoff: float = 0.0, kernels: str | None = None):
        self.basis = basis
        self.charges = np.asarray(charges, dtype=float).ravel()
        self.coords = np.asarray(coords, dtype=float).reshape(-1, 3)
        self.nbf = basis.nbf
        #: "scalar" | "batched" — resolved from the argument or QF_KERNELS
        #: (docs/performance.md); both modes are bit-identical, batched
        #: replaces the per-pair python loops with packed array kernels
        self.kernels = kernels_mode(kernels)
        counters().inc(f"kernels.engines_{self.kernels}")
        self.blocks = self._build_blocks(basis.shells, basis.offsets)
        self.schwarz_cutoff = float(schwarz_cutoff)
        #: pair-combination counters: "evaluated" + "screened" = "total"
        self.screen_stats = {
            "pair_combinations_total": 0,
            "pair_combinations_evaluated": 0,
            "pair_combinations_screened": 0,
        }
        self._schwarz_self: list[np.ndarray] | None = None

    def _build_blocks(self, shells, offsets, pairs=None, canonicalize=True):
        """Pair blocks through the mode-selected builder (same output)."""
        if self.kernels == "batched":
            return build_pair_blocks_batched(
                shells, offsets, pairs, canonicalize=canonicalize
            )
        return build_pair_blocks(
            shells, offsets, pairs, canonicalize=canonicalize
        )

    # -- Schwarz screening ---------------------------------------------------

    def schwarz_bounds(self, blocks: list[PairBlock]) -> list[np.ndarray]:
        """Per-block Schwarz bound vectors ``Q_r = sqrt(max (ab|ab)_r)``.

        One entry per shell pair of each block: the maximum over the
        pair's function components of the diagonal Coulomb interaction
        — the quantity whose product bounds any cross interaction.
        """
        return [self._schwarz_block(blk) for blk in blocks]

    def _bounds_self(self) -> list[np.ndarray]:
        """Cached Schwarz bounds of the engine's own pair blocks."""
        if self._schwarz_self is None:
            self._schwarz_self = self.schwarz_bounds(self.blocks)
        return self._schwarz_self

    def _schwarz_block(self, blk: PairBlock,
                       element_budget: int = 200_000) -> np.ndarray:
        """Diagonal (ab|ab) bound vector of one pair block, vectorized.

        For every pair the k2 x k2 primitive cross products within the
        same pair are contracted — the diagonal of
        :meth:`coulomb_block` without the O(npair^2) off-diagonals.
        """
        la, lb = blk.la, blk.lb
        l_half = la + lb
        combos = hermite_combos(l_half, l_half, l_half, l_half)
        nk = len(combos)
        e3b = _e3_components(blk.e_tensors(), la, lb, combos, weights=blk.cc)
        e3k = _e3_components(
            blk.e_tensors(), la, lb, combos, sign=True, weights=blk.cc
        )
        npair, k2 = blk.npair, blk.k2
        nab = e3b.shape[1]
        e3b = e3b.reshape(npair, k2, nab, nk)
        e3k = e3k.reshape(npair, k2, nab, nk)
        p = blk.p.reshape(npair, k2)
        pc = blk.pc.reshape(npair, k2, 3)
        ltot = 2 * l_half
        ti = np.empty((nk, nk), dtype=int)
        ui = np.empty_like(ti)
        vi = np.empty_like(ti)
        for i, (t, u, v) in enumerate(combos):
            for j, (tt, uu, vv) in enumerate(combos):
                ti[i, j] = min(t + tt, ltot)
                ui[i, j] = min(u + uu, ltot)
                vi[i, j] = min(v + vv, ltot)
        out = np.empty(npair)
        chunk = max(1, element_budget // max(1, k2 * k2 * nk))
        for start in range(0, npair, chunk):  # qf: shell-loop — chunked over the element budget; body vectorized
            stop = min(start + chunk, npair)
            ps = p[start:stop]
            pcs = pc[start:stop]
            pb = ps[:, :, None]
            pk = ps[:, None, :]
            alpha = pb * pk / (pb + pk)
            pref = 2.0 * math.pi ** 2.5 / (pb * pk * np.sqrt(pb + pk))
            pq = pcs[:, :, None, :] - pcs[:, None, :, :]
            r = hermite_coulomb_vec(
                ltot, ltot, ltot, alpha.ravel(), pq.reshape(-1, 3)
            ).reshape(stop - start, k2, k2, ltot + 1, ltot + 1, ltot + 1)
            rsel = r[:, :, :, ti, ui, vi]            # (n, k2, k2, nk, nk)
            rsel *= pref[..., None, None]
            vals = np.einsum(
                "rixm,rijmn,rjyn->rxy",
                e3b[start:stop], rsel, e3k[start:stop], optimize=True,
            )
            diag = np.einsum("rxx->rx", vals)
            out[start:stop] = diag.max(axis=1)
        return np.sqrt(np.maximum(out, 0.0))

    # -- one-electron -------------------------------------------------------

    def overlap(self) -> np.ndarray:
        s = np.zeros((self.nbf, self.nbf))
        for blk in self.blocks:
            ex = blk.e_tensors()
            vals = self._overlap_block(blk, ex)
            self._scatter(s, blk, vals)
        return s

    def _overlap_block(self, blk: PairBlock, ex: list[np.ndarray]) -> np.ndarray:
        """(npair, na, nb) overlap values from E tensors."""
        comps_a = components(blk.la)
        comps_b = components(blk.lb)
        pref = (math.pi / blk.p) ** 1.5 * blk.cc
        out = np.empty((blk.npair, len(comps_a), len(comps_b)))
        for ia, (ax, ay, az) in enumerate(comps_a):
            for ib, (bx, by, bz) in enumerate(comps_b):
                prim = (
                    ex[0][:, ax, bx, 0] * ex[1][:, ay, by, 0] * ex[2][:, az, bz, 0]
                ) * pref
                out[:, ia, ib] = prim.reshape(blk.npair, blk.k2).sum(axis=1)
        self._record_class_gemm(
            blk.npair, len(comps_a) * len(comps_b), 1, blk.k2
        )
        return out

    def kinetic(self) -> np.ndarray:
        t = np.zeros((self.nbf, self.nbf))
        for blk in self.blocks:
            ex = blk.e_tensors(db=2)
            comps_a = components(blk.la)
            comps_b = components(blk.lb)
            pref = (math.pi / blk.p) ** 1.5 * blk.cc
            vals = np.empty((blk.npair, len(comps_a), len(comps_b)))

            def s00(axs, bxs):
                return (
                    ex[0][:, axs[0], bxs[0], 0]
                    * ex[1][:, axs[1], bxs[1], 0]
                    * ex[2][:, axs[2], bxs[2], 0]
                )

            for ia, ca in enumerate(comps_a):
                for ib, cb in enumerate(comps_b):
                    i, j, k = cb
                    term = blk.b * (2 * (i + j + k) + 3) * s00(ca, cb)
                    for d, inc in enumerate(((2, 0, 0), (0, 2, 0), (0, 0, 2))):
                        cb2 = (cb[0] + inc[0], cb[1] + inc[1], cb[2] + inc[2])
                        term = term - 2.0 * blk.b ** 2 * s00(ca, cb2)
                        if cb[d] >= 2:
                            cbm = (cb[0] - inc[0], cb[1] - inc[1], cb[2] - inc[2])
                            term = term - 0.5 * cb[d] * (cb[d] - 1) * s00(ca, cbm)
                    prim = term * pref
                    vals[:, ia, ib] = prim.reshape(blk.npair, blk.k2).sum(axis=1)
            self._record_class_gemm(
                blk.npair, len(comps_a) * len(comps_b), 1, blk.k2
            )
            self._scatter(t, blk, vals)
        return t

    def nuclear(self, per_atom: bool = False) -> np.ndarray:
        """Nuclear attraction V (negative). With ``per_atom``, returns
        shape (natoms, nbf, nbf): the contribution of each nucleus
        (needed for Hellmann–Feynman gradient terms)."""
        natm = self.charges.size
        v = np.zeros((natm, self.nbf, self.nbf)) if per_atom else np.zeros(
            (self.nbf, self.nbf)
        )
        for blk in self.blocks:
            ex = blk.e_tensors()
            vals = self._nuclear_block(blk, ex, per_atom)
            if per_atom:
                for c in range(natm):
                    self._scatter(v[c], blk, vals[c])
            else:
                self._scatter(v, blk, vals)
        return v

    def _nuclear_block(self, blk: PairBlock, ex: list[np.ndarray],
                       per_atom: bool):
        l_tot = blk.la + blk.lb
        combos = hermite_combos(l_tot, l_tot, l_tot, l_tot)
        e3 = _e3_components(ex, blk.la, blk.lb, combos, weights=blk.cc)
        # R over prim x nucleus
        natm = self.charges.size
        nprim = blk.nprim
        pc = blk.pc[:, None, :] - self.coords[None, :, :]
        p_rep = np.repeat(blk.p, natm)
        r = hermite_coulomb_vec(l_tot, l_tot, l_tot, p_rep, pc.reshape(-1, 3))
        r = r.reshape(nprim, natm, *r.shape[1:])
        rsel = np.stack([r[:, :, t, u, v] for (t, u, v) in combos], axis=-1)
        # prim-level value per nucleus: -(2 pi / p) * z_C * sum_k e3 * R
        pref = 2.0 * math.pi / blk.p
        contrib = np.einsum("nck,nak->nac", e3, rsel)  # (nprim, natm, ncomp)
        self._record_class_gemm(nprim, natm, e3.shape[1], len(combos))
        contrib *= pref[:, None, None]
        contrib = contrib.reshape(blk.npair, blk.k2, natm, -1).sum(axis=1)
        na = len(components(blk.la))
        nb = len(components(blk.lb))
        if per_atom:
            out = np.empty((natm, blk.npair, na, nb))
            for c in range(natm):
                out[c] = (-self.charges[c]) * contrib[:, c, :].reshape(
                    blk.npair, na, nb
                )
            return out
        total = -(contrib * self.charges[None, :, None]).sum(axis=1)
        return total.reshape(blk.npair, na, nb)

    def dipole(self, origin=(0.0, 0.0, 0.0)) -> np.ndarray:
        """Dipole moment integrals <mu| r_d - origin_d |nu>, shape (3, nbf, nbf)."""
        origin = np.asarray(origin, dtype=float).reshape(3)
        out = np.zeros((3, self.nbf, self.nbf))
        for blk in self.blocks:
            ex = blk.e_tensors()
            comps_a = components(blk.la)
            comps_b = components(blk.lb)
            pref = (math.pi / blk.p) ** 1.5 * blk.cc
            for d in range(3):
                vals = np.empty((blk.npair, len(comps_a), len(comps_b)))
                shift = blk.pc[:, d] - origin[d]
                for ia, ca in enumerate(comps_a):
                    for ib, cb in enumerate(comps_b):
                        e_parts = []
                        for dim in range(3):
                            e0 = ex[dim][:, ca[dim], cb[dim], 0]
                            if dim == d:
                                # moment: E^1 + (P_d - C_d) E^0
                                lmax = ca[dim] + cb[dim]
                                e1 = (
                                    ex[dim][:, ca[dim], cb[dim], 1]
                                    if lmax >= 1
                                    else np.zeros_like(e0)
                                )
                                e_parts.append(e1 + shift * e0)
                            else:
                                e_parts.append(e0)
                        prim = e_parts[0] * e_parts[1] * e_parts[2] * pref
                        vals[:, ia, ib] = prim.reshape(blk.npair, blk.k2).sum(axis=1)
                self._record_class_gemm(
                    blk.npair, len(comps_a) * len(comps_b), 1, blk.k2
                )
                self._scatter(out[d], blk, vals)
        return out

    # -- scatter helpers ----------------------------------------------------

    def _scatter(self, target: np.ndarray, blk: PairBlock, vals: np.ndarray) -> None:
        """Place (npair, na, nb) values into a symmetric matrix."""
        if self.kernels == "batched":
            scatter_symmetric(target, blk, vals)
            return
        na = vals.shape[1]
        nb = vals.shape[2]
        for r in range(blk.npair):  # qf: shell-loop — chunked over the element budget; body vectorized
            oa, ob = blk.off_a[r], blk.off_b[r]
            target[oa: oa + na, ob: ob + nb] = vals[r]
            if oa != ob:
                target[ob: ob + nb, oa: oa + na] = vals[r].T

    def _record_class_gemm(self, batch: int, m: int, n: int, k: int) -> None:
        """Account one class contraction through the batched-GEMM seam."""
        if self.kernels == "batched":
            # deferred: repro.kernels pulls in the DFPT worker stack,
            # which imports the SCF layer, which imports this module
            from repro.kernels.batched import kernel_seam

            kernel_seam().record_contraction(batch, m, n, k)

    # -- two-electron: generic Coulomb interaction of two pair sets ---------

    def coulomb_block(self, bra: PairBlock, ket: PairBlock,
                      q_bra: np.ndarray | None = None,
                      q_ket: np.ndarray | None = None) -> np.ndarray:
        """Contracted Coulomb interaction (bra_ab | ket_cd).

        Returns shape ``(npair_bra, na, nb, npair_ket, nc, nd)``.
        Used both for the exact ERI (bra and ket are orbital pair
        blocks) and for density fitting (ket pairs are aux/dummy).

        When Schwarz bound vectors ``q_bra``/``q_ket`` (from
        :meth:`schwarz_bounds`) are supplied and
        :attr:`schwarz_cutoff` is positive, pairs whose best possible
        bound product stays below the cutoff are skipped; their output
        entries are exact zeros bounded by the cutoff.
        """
        na, nb_ = len(components(bra.la)), len(components(bra.lb))
        nc, nd = len(components(ket.la)), len(components(ket.lb))
        cut = self.schwarz_cutoff
        if cut > 0.0 and q_bra is not None and q_ket is not None:
            stats = self.screen_stats
            n_total = bra.npair * ket.npair
            stats["pair_combinations_total"] += n_total
            keep_b = np.nonzero(q_bra * q_ket.max(initial=0.0) >= cut)[0]
            keep_k = np.nonzero(q_ket * q_bra.max(initial=0.0) >= cut)[0]
            n_eval = keep_b.size * keep_k.size
            stats["pair_combinations_evaluated"] += n_eval
            stats["pair_combinations_screened"] += n_total - n_eval
            # mirror the per-engine stats into the run-wide registry
            reg = counters()
            reg.inc("eri.pair_combinations_total", n_total)
            reg.inc("eri.pair_combinations_evaluated", n_eval)
            reg.inc("eri.pair_combinations_screened", n_total - n_eval)
            if n_eval == 0:
                return np.zeros((bra.npair, na, nb_, ket.npair, nc, nd))
            if keep_b.size < bra.npair or keep_k.size < ket.npair:
                # recursive call without bounds: evaluates the survivors
                # and touches no counters
                sub = self.coulomb_block(bra.subset(keep_b),
                                         ket.subset(keep_k))
                out = np.zeros((bra.npair, na, nb_, ket.npair, nc, nd))
                out[np.ix_(keep_b, np.arange(na), np.arange(nb_), keep_k)] = sub
                return out
        la, lb = bra.la, bra.lb
        lbra = la + lb
        combos_b = hermite_combos(lbra, lbra, lbra, lbra)
        e3b = _e3_components(bra.e_tensors(), la, lb, combos_b, weights=bra.cc)
        out = self._coulomb_core(bra, ket, e3b[None, :, :, :], combos_b, lbra)[0]
        return out.reshape(bra.npair, na, nb_, ket.npair, nc, nd)

    def coulomb_block_deriv(self, bra: PairBlock, ket: PairBlock) -> np.ndarray:
        """Bra-a-center derivative of the Coulomb interaction.

        Returns shape ``(3, npair_bra, na, nb, npair_ket, nc, nd)`` —
        one slab per derivative direction.
        """
        la, lb = bra.la, bra.lb
        lbra = la + lb + 1
        combos_b = hermite_combos(lbra, lbra, lbra, lbra)
        exb = bra.e_tensors(da=1)
        e3d = _e3_deriv_components(exb, bra.a, la, lb, combos_b, weights=bra.cc)
        out = self._coulomb_core(bra, ket, e3d, combos_b, lbra)
        na, nb_ = len(components(la)), len(components(lb))
        nc, nd = len(components(ket.la)), len(components(ket.lb))
        return out.reshape(3, bra.npair, na, nb_, ket.npair, nc, nd)

    def _coulomb_core(
        self,
        bra: PairBlock,
        ket: PairBlock,
        e3b: np.ndarray,
        combos_b: list[tuple[int, int, int]],
        lbra: int,
        element_budget: int = 400_000,
    ) -> np.ndarray:
        """Shared Coulomb contraction over stacked bra E3 variants.

        ``e3b`` has shape (nvariants, nprim_bra, nab, ncombos_b). Both
        sides are chunked so the cross R tensor stays within the
        element budget (times the Hermite component count).
        """
        lket = ket.la + ket.lb
        combos_k = hermite_combos(lket, lket, lket, lket)
        e3k = _e3_components(
            ket.e_tensors(), ket.la, ket.lb, combos_k, sign=True, weights=ket.cc
        )
        nvar = e3b.shape[0]
        nab = e3b.shape[2]
        ncd = e3k.shape[1]
        ltot = lbra + lket
        # gather index tables: combined Hermite index per (kb, kk)
        ti = np.empty((len(combos_b), len(combos_k)), dtype=int)
        ui = np.empty_like(ti)
        vi = np.empty_like(ti)
        for i, (t, u, v) in enumerate(combos_b):
            for j, (tt, uu, vv) in enumerate(combos_k):
                ti[i, j] = min(t + tt, ltot)
                ui[i, j] = min(u + uu, ltot)
                vi[i, j] = min(v + vv, ltot)
                # entries with t+u+v sums beyond ltot point at zero-filled
                # slots of the R tensor, so no masking is needed
        out = np.zeros((nvar, bra.npair, nab, ket.npair, ncd))
        bchunk = max(1, element_budget // max(1, ket.nprim))
        bchunk = max(bra.k2, (bchunk // bra.k2) * bra.k2)
        npairs_per_chunk = max(1, bchunk // bra.k2)
        for start in range(0, bra.npair, npairs_per_chunk):  # qf: shell-loop — scalar reference scatter
            stop = min(start + npairs_per_chunk, bra.npair)
            bs = slice(start * bra.k2, stop * bra.k2)
            nbp = (stop - start) * bra.k2
            pb = bra.p[bs]
            pk = ket.p
            alpha = pb[:, None] * pk[None, :] / (pb[:, None] + pk[None, :])
            pref = 2.0 * math.pi ** 2.5 / (
                pb[:, None] * pk[None, :] * np.sqrt(pb[:, None] + pk[None, :])
            )
            pq = bra.pc[bs][:, None, :] - ket.pc[None, :, :]
            r = hermite_coulomb_vec(
                ltot, ltot, ltot, alpha.ravel(), pq.reshape(-1, 3)
            ).reshape(nbp, ket.nprim, ltot + 1, ltot + 1, ltot + 1)
            rsel = r[:, :, ti, ui, vi]  # (nbp, nkp, ncb, nck)
            rsel *= pref[:, :, None, None]
            # vals[var, bp, ab, kp, cd]
            vals = np.einsum(
                "xpak,pqkm,qcm->xpaqc", e3b[:, bs], rsel, e3k, optimize=True
            )
            # account the einsum as its two-GEMM decomposition: one
            # batched GEMM over bra primitives, one over ket primitives
            ncb = len(combos_b)
            nck = len(combos_k)
            self._record_class_gemm(nbp, nvar * nab, ket.nprim * nck, ncb)
            self._record_class_gemm(ket.nprim, nvar * nbp * nab, ncd, nck)
            vals = vals.reshape(
                nvar, stop - start, bra.k2, nab, ket.npair, ket.k2, ncd
            ).sum(axis=(2, 5))
            out[:, start:stop] = vals
        return out

    def eri(self) -> np.ndarray:
        """Exact ERI tensor (chemists' notation (ab|cd)), full nbf^4.

        Intended for small systems (tests, tiny fragments); production
        fragment SCF uses density fitting. With a positive
        :attr:`schwarz_cutoff`, shell-pair combinations bounded below
        the cutoff are skipped (their entries are exact zeros).
        """
        nbf = self.nbf
        with get_tracer().span("integrals.eri", nbf=nbf):
            out = np.zeros((nbf, nbf, nbf, nbf))
            bounds = (
                self._bounds_self() if self.schwarz_cutoff > 0.0
                else [None] * len(self.blocks)
            )
            for bi, bra in enumerate(self.blocks):
                for ki, ket in enumerate(self.blocks):
                    if ki < bi:
                        continue
                    vals = self.coulomb_block(bra, ket, q_bra=bounds[bi],
                                              q_ket=bounds[ki])
                    self._scatter_eri(out, bra, ket, vals)
        return out

    def _scatter_eri(self, out, bra: PairBlock, ket: PairBlock, vals) -> None:
        # Deliberately scalar in BOTH kernel modes: the 8-fold symmetry
        # images overlap whenever a pair repeats across the bra/ket block
        # combination (e.g. the bra==ket diagonal), and the result relies
        # on this loop's last-write-wins order. numpy fancy assignment
        # leaves the duplicate-index write order undefined, so a flat-plan
        # scatter here could silently differ between numpy builds.
        na, nb = vals.shape[1], vals.shape[2]
        nc, nd = vals.shape[4], vals.shape[5]
        for rb in range(bra.npair):  # qf: shell-loop — overlapping-image scatter needs ordered writes
            oa, ob = bra.off_a[rb], bra.off_b[rb]
            for rk in range(ket.npair):  # qf: shell-loop — overlapping-image scatter needs ordered writes
                oc, od = ket.off_a[rk], ket.off_b[rk]
                blockv = vals[rb, :, :, rk, :, :]
                for (i0, j0, v4) in (
                    (oa, ob, blockv),
                    (ob, oa, blockv.transpose(1, 0, 2, 3)),
                ):
                    for (k0, l0, v2) in (
                        (oc, od, v4),
                        (od, oc, v4.transpose(0, 1, 3, 2)),
                    ):
                        out[i0: i0 + v2.shape[0], j0: j0 + v2.shape[1],
                            k0: k0 + v2.shape[2], l0: l0 + v2.shape[3]] = v2
                        out[k0: k0 + v2.shape[2], l0: l0 + v2.shape[3],
                            i0: i0 + v2.shape[0], j0: j0 + v2.shape[1]] = (
                            v2.transpose(2, 3, 0, 1)
                        )


# ---------------------------------------------------------------------------
# dummy-paired blocks for density fitting (single functions as "pairs")
# ---------------------------------------------------------------------------

def single_shell_blocks(shells: list[Shell], offsets: list[int]) -> list[PairBlock]:
    """PairBlocks of (shell, zero-exponent dummy) pairs.

    A single contracted function phi_P can be treated as the Gaussian
    product phi_P * 1 where 1 = exp(-0 r^2) on the same center: all the
    pair machinery (E coefficients, Coulomb interaction) then yields
    2- and 3-center integrals for free.
    """
    groups: dict[tuple[int, int], list[int]] = {}
    for idx, sh in enumerate(shells):  # qf: shell-loop — class grouping prepass, not the kernel
        groups.setdefault((sh.l, len(sh.exps)), []).append(idx)
    blocks: list[PairBlock] = []
    for (l, k), idxs in sorted(groups.items()):
        n = len(idxs)
        a = np.empty((n, k))
        cc = np.empty((n, k))
        centers = np.empty((n, 3))
        off = np.empty(n, dtype=int)
        atom = np.empty(n, dtype=int)
        for r, i in enumerate(idxs):
            sh = shells[i]
            a[r] = sh.exps
            cc[r] = sh.coefs
            centers[r] = sh.center
            off[r] = offsets[i]
            atom[r] = sh.atom_index
        pc = np.repeat(centers, k, axis=0)
        blocks.append(
            PairBlock(
                la=l, lb=0, k2=k,
                ishell=np.array(idxs), jshell=np.array(idxs),
                off_a=off, off_b=np.zeros(n, dtype=int),
                atom_a=atom, atom_b=atom,
                a=a.ravel(), b=np.zeros(n * k), cc=cc.ravel(),
                ab_vec=np.zeros((n, 3)), centers_a=centers,
                p=a.ravel().copy(), pc=pc,
            )
        )
    return blocks


def _e3_deriv_components(
    ex: list[np.ndarray],
    exps_a: np.ndarray,
    la: int,
    lb: int,
    combos: list[tuple[int, int, int]],
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Bra-center derivative E3 tensors.

    ``ex`` must be built with ``da=1`` (index room for la+1). Uses
    dE(i,j,t)/dAx = 2a E(i+1,j,t) - i E(i-1,j,t) in the derivative
    dimension, plain E elsewhere. Returns shape
    ``(3, nprim, ncomp_a*ncomp_b, ncombos)``.
    """
    comps_a = components(la)
    comps_b = components(lb)
    nprim = ex[0].shape[0]
    out = np.zeros((3, nprim, len(comps_a) * len(comps_b), len(combos)))
    for ia, ca in enumerate(comps_a):
        for ib, cb in enumerate(comps_b):
            col = ia * len(comps_b) + ib
            # per-dimension plain and derivative 1D coefficient vectors
            for k, (t, u, v) in enumerate(combos):
                tuv = (t, u, v)
                for d in range(3):
                    # derivative acts on dimension d
                    parts = []
                    ok = True
                    for dim in range(3):
                        i_a, i_b, herm = ca[dim], cb[dim], tuv[dim]
                        if dim == d:
                            if herm > i_a + i_b + 1:
                                ok = False
                                break
                            val = 2.0 * exps_a * ex[dim][:, i_a + 1, i_b, herm]
                            if i_a > 0:
                                val = val - i_a * ex[dim][:, i_a - 1, i_b, herm]
                        else:
                            if herm > i_a + i_b:
                                ok = False
                                break
                            val = ex[dim][:, i_a, i_b, herm]
                        parts.append(val)
                    if not ok:
                        continue
                    out[d, :, col, k] = parts[0] * parts[1] * parts[2]
    if weights is not None:
        out *= weights[None, :, None, None]
    return out


# ---------------------------------------------------------------------------
# derivative one-electron integrals (bra-slot convention)
# ---------------------------------------------------------------------------
#
# All derivative builders return arrays D[x, mu, nu, ...] where the
# entry is the derivative of the integral with bra function mu and ket
# function nu with respect to the *center of mu's shell* ("bra slot").
# The derivative with respect to the ket center follows from symmetry:
# d(mu nu)/dB = D[x, nu, mu] for symmetric operators (S, T, V, and the
# 3-center bra pair). Gradient assembly in repro.dfpt.gradient sums the
# slots belonging to each atom.

def _ordered_blocks(engine: "IntegralEngine") -> list[PairBlock]:
    ns = len(engine.basis.shells)
    pairs = [(i, j) for i in range(ns) for j in range(ns)]
    return engine._build_blocks(
        engine.basis.shells, engine.basis.offsets, pairs, canonicalize=False
    )


class _DerivMixin:
    """Derivative integrals, mixed into IntegralEngine."""

    def _ordered(self) -> list[PairBlock]:
        if not hasattr(self, "_ordered_cache"):
            self._ordered_cache = _ordered_blocks(self)
        return self._ordered_cache

    def overlap_deriv(self) -> np.ndarray:
        """dS[x, mu, nu] = dS_{mu nu}/d(bra center), shape (3, nbf, nbf)."""
        out = np.zeros((3, self.nbf, self.nbf))
        for blk in self._ordered():
            ex = blk.e_tensors(da=1)
            comps_a = components(blk.la)
            comps_b = components(blk.lb)
            pref = (math.pi / blk.p) ** 1.5 * blk.cc
            for d in range(3):
                vals = np.empty((blk.npair, len(comps_a), len(comps_b)))
                for ia, ca in enumerate(comps_a):
                    for ib, cb in enumerate(comps_b):
                        parts = []
                        for dim in range(3):
                            if dim == d:
                                v = 2.0 * blk.a * ex[dim][:, ca[dim] + 1, cb[dim], 0]
                                if ca[dim] > 0:
                                    v = v - ca[dim] * ex[dim][:, ca[dim] - 1, cb[dim], 0]
                            else:
                                v = ex[dim][:, ca[dim], cb[dim], 0]
                            parts.append(v)
                        prim = parts[0] * parts[1] * parts[2] * pref
                        vals[:, ia, ib] = prim.reshape(blk.npair, blk.k2).sum(axis=1)
                self._scatter_ordered(out[d], blk, vals)
        return out

    def kinetic_deriv(self) -> np.ndarray:
        """dT[x, mu, nu] under the bra-slot convention."""
        out = np.zeros((3, self.nbf, self.nbf))
        for blk in self._ordered():
            ex = blk.e_tensors(da=1, db=2)
            comps_a = components(blk.la)
            comps_b = components(blk.lb)
            pref = (math.pi / blk.p) ** 1.5 * blk.cc

            def ds00(axs, bxs, d):
                parts = []
                for dim in range(3):
                    if dim == d:
                        v = 2.0 * blk.a * ex[dim][:, axs[dim] + 1, bxs[dim], 0]
                        if axs[dim] > 0:
                            v = v - axs[dim] * ex[dim][:, axs[dim] - 1, bxs[dim], 0]
                    else:
                        v = ex[dim][:, axs[dim], bxs[dim], 0]
                    parts.append(v)
                return parts[0] * parts[1] * parts[2]

            for d in range(3):
                vals = np.empty((blk.npair, len(comps_a), len(comps_b)))
                for ia, ca in enumerate(comps_a):
                    for ib, cb in enumerate(comps_b):
                        i, j, k = cb
                        term = blk.b * (2 * (i + j + k) + 3) * ds00(ca, cb, d)
                        for dd, inc in enumerate(((2, 0, 0), (0, 2, 0), (0, 0, 2))):
                            cb2 = (cb[0] + inc[0], cb[1] + inc[1], cb[2] + inc[2])
                            term = term - 2.0 * blk.b ** 2 * ds00(ca, cb2, d)
                            if cb[dd] >= 2:
                                cbm = (
                                    cb[0] - inc[0], cb[1] - inc[1], cb[2] - inc[2]
                                )
                                term = term - 0.5 * cb[dd] * (cb[dd] - 1) * ds00(
                                    ca, cbm, d
                                )
                        prim = term * pref
                        vals[:, ia, ib] = prim.reshape(blk.npair, blk.k2).sum(axis=1)
                self._scatter_ordered(out[d], blk, vals)
        return out

    def nuclear_deriv(self) -> tuple[np.ndarray, np.ndarray]:
        """Nuclear-attraction derivatives.

        Returns ``(dv_bra, dv_nuc)``:

        * ``dv_bra[x, mu, nu]`` — bra-slot derivative summed over nuclei,
        * ``dv_nuc[x, C, mu, nu]`` — Hellmann–Feynman derivative with
          respect to nucleus C's position (operator-center derivative,
          obtained from the raised-index Hermite Coulomb tensor).
        """
        natm = self.charges.size
        dv_bra = np.zeros((3, self.nbf, self.nbf))
        dv_nuc = np.zeros((3, natm, self.nbf, self.nbf))
        for blk in self._ordered():
            la, lb = blk.la, blk.lb
            l_tot = la + lb + 1
            combos = hermite_combos(l_tot, l_tot, l_tot, l_tot)
            ex = blk.e_tensors(da=1)
            e3d = _e3_deriv_components(ex, blk.a, la, lb, combos, weights=blk.cc)
            combos0 = [c for c in combos if sum(c) <= la + lb]
            e3p = _e3_components(
                [e[:, : la + 1] for e in ex], la, lb, combos0, weights=blk.cc
            )
            nprim = blk.nprim
            pc = blk.pc[:, None, :] - self.coords[None, :, :]
            p_rep = np.repeat(blk.p, natm)
            # one extra index for both the bra-derivative (l_tot) and the
            # operator derivative (raised index on the plain combos)
            r = hermite_coulomb_vec(l_tot, l_tot, l_tot, p_rep, pc.reshape(-1, 3))
            r = r.reshape(nprim, natm, l_tot + 1, l_tot + 1, l_tot + 1)
            pref = 2.0 * math.pi / blk.p
            na = len(components(la))
            nb = len(components(lb))

            # bra-slot derivative
            rsel = np.stack([r[:, :, t, u, v] for (t, u, v) in combos], axis=-1)
            for d in range(3):
                contrib = np.einsum("nck,nak->nac", e3d[d], rsel) * pref[:, None, None]
                contrib = contrib.reshape(blk.npair, blk.k2, natm, -1).sum(axis=1)
                total = -(contrib * self.charges[None, :, None]).sum(axis=1)
                self._scatter_ordered(dv_bra[d], blk, total.reshape(blk.npair, na, nb))

            # Hellmann-Feynman: d/dCx R_tuv(P - C) = -(-R_{t+1,u,v}) = R with
            # raised index and opposite sign of the P-derivative
            for d in range(3):
                raised = []
                for (t, u, v) in combos0:
                    idx = [t, u, v]
                    idx[d] += 1
                    raised.append(r[:, :, idx[0], idx[1], idx[2]])
                rr = np.stack(raised, axis=-1)
                contrib = np.einsum("nck,nak->nac", e3p, rr) * pref[:, None, None]
                contrib = contrib.reshape(blk.npair, blk.k2, natm, -1).sum(axis=1)
                for c in range(natm):
                    # V = -Z (ab|C); d/dC = -Z * (+R_{raised}) ... sign: the
                    # R tensor is built on (P - C), so d/dCx = -d/d(PC)_x,
                    # and d/d(PC)_x R_tuv = R_{t+1,u,v}. Hence total sign +Z.
                    vals = self.charges[c] * contrib[:, c, :].reshape(
                        blk.npair, na, nb
                    )
                    self._scatter_ordered(dv_nuc[d, c], blk, vals)
        return dv_bra, dv_nuc

    def _scatter_ordered(self, target: np.ndarray, blk: PairBlock,
                         vals: np.ndarray) -> None:
        """Scatter ordered-pair values (no symmetrization)."""
        if self.kernels == "batched":
            scatter_ordered(target, blk, vals)
            return
        na = vals.shape[1]
        nb = vals.shape[2]
        for r in range(blk.npair):  # qf: shell-loop — scalar reference scatter
            oa, ob = blk.off_a[r], blk.off_b[r]
            target[oa: oa + na, ob: ob + nb] = vals[r]


# graft the mixin onto IntegralEngine (kept separate for readability)
for _name in ("_ordered", "overlap_deriv", "kinetic_deriv", "nuclear_deriv",
              "_scatter_ordered"):
    setattr(IntegralEngine, _name, getattr(_DerivMixin, _name))


# ---------------------------------------------------------------------------
# density-fitting derivative integrals
# ---------------------------------------------------------------------------

def _df_deriv_methods():
    """Extra IntegralEngine methods for DF gradient integrals."""

    def three_center_deriv(self, aux_blocks: list[PairBlock], naux: int
                           ) -> np.ndarray:
        """d(ab|P)/d(center of a), shape (3, nbf, nbf, naux).

        Covers *all ordered* orbital pairs, so the ket-orbital slot
        derivative is the [x, nu, mu, P] entry, and the aux-center
        derivative follows from translational invariance:
        d/dP = -(d/dA + d/dB).
        """
        out = np.zeros((3, self.nbf, self.nbf, naux))
        for bra in self._ordered():
            na = len(components(bra.la))
            nb = len(components(bra.lb))
            for ket in aux_blocks:
                nc = len(components(ket.la))
                vals = self.coulomb_block_deriv(bra, ket)
                # vals: (3, npb, na, nb, npk, nc, 1)
                for rb in range(bra.npair):  # qf: shell-loop — scalar reference scatter
                    oa, ob = bra.off_a[rb], bra.off_b[rb]
                    for rk in range(ket.npair):  # qf: shell-loop — scalar reference scatter
                        oc = ket.off_a[rk]
                        out[:, oa: oa + na, ob: ob + nb, oc: oc + nc] = vals[
                            :, rb, :, :, rk, :, 0
                        ]
        return out

    def two_center_deriv(self, aux_blocks: list[PairBlock], naux: int
                         ) -> np.ndarray:
        """d(P|Q)/d(center of P), shape (3, naux, naux), all ordered (P, Q)."""
        out = np.zeros((3, naux, naux))
        for bra in aux_blocks:
            na = len(components(bra.la))
            for ket in aux_blocks:
                nc = len(components(ket.la))
                vals = self.coulomb_block_deriv(bra, ket)
                if self.kernels == "batched":
                    for d in range(3):
                        scatter_pairs_2c(out[d], bra, ket,
                                         vals[d, :, :, 0, :, :, 0])
                    continue
                for rb in range(bra.npair):  # qf: shell-loop — scalar reference scatter
                    oa = bra.off_a[rb]
                    for rk in range(ket.npair):  # qf: shell-loop — scalar reference scatter
                        oc = ket.off_a[rk]
                        out[:, oa: oa + na, oc: oc + nc] = vals[:, rb, :, 0, rk, :, 0]
        return out

    def eri_deriv(self) -> np.ndarray:
        """dA-slot derivative of the exact ERI tensor.

        Shape (3, nbf, nbf, nbf, nbf): entry [x, mu, nu, lm, sg] is
        d(mu nu|lm sg)/d(center of mu). Ordered bra pairs, canonical
        (symmetrized) ket pairs. Small systems only (nbf^4 memory).
        """
        out = np.zeros((3, self.nbf, self.nbf, self.nbf, self.nbf))
        for bra in self._ordered():
            na = len(components(bra.la))
            nb = len(components(bra.lb))
            for ket in self.blocks:
                nc = len(components(ket.la))
                nd = len(components(ket.lb))
                vals = self.coulomb_block_deriv(bra, ket)
                if self.kernels == "batched":
                    for d in range(3):
                        scatter_eri_deriv(out[d], bra, ket, vals[d])
                    continue
                for rb in range(bra.npair):  # qf: shell-loop — scalar reference scatter
                    oa, ob = bra.off_a[rb], bra.off_b[rb]
                    for rk in range(ket.npair):  # qf: shell-loop — scalar reference scatter
                        oc, od = ket.off_a[rk], ket.off_b[rk]
                        v = vals[:, rb, :, :, rk, :, :]
                        out[:, oa: oa + na, ob: ob + nb,
                            oc: oc + nc, od: od + nd] = v
                        if oc != od:
                            out[:, oa: oa + na, ob: ob + nb,
                                od: od + nd, oc: oc + nc] = v.transpose(
                                0, 1, 2, 4, 3
                            )
        return out

    return three_center_deriv, two_center_deriv, eri_deriv


(_tcd, _twd, _erd) = _df_deriv_methods()
IntegralEngine.three_center_deriv = _tcd
IntegralEngine.two_center_deriv = _twd
IntegralEngine.eri_deriv = _erd


def _e3_deriv_components_b(
    ex: list[np.ndarray],
    exps_b: np.ndarray,
    la: int,
    lb: int,
    combos: list[tuple[int, int, int]],
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Ket-center derivative E3 tensors (dE/dBx = 2b E(i,j+1,t) - j E(i,j-1,t)).

    ``ex`` must be built with ``db=1``. Shape (3, nprim, nab, ncombos).
    """
    comps_a = components(la)
    comps_b = components(lb)
    nprim = ex[0].shape[0]
    out = np.zeros((3, nprim, len(comps_a) * len(comps_b), len(combos)))
    for ia, ca in enumerate(comps_a):
        for ib, cb in enumerate(comps_b):
            col = ia * len(comps_b) + ib
            for k, (t, u, v) in enumerate(combos):
                tuv = (t, u, v)
                for d in range(3):
                    parts = []
                    ok = True
                    for dim in range(3):
                        i_a, i_b, herm = ca[dim], cb[dim], tuv[dim]
                        if dim == d:
                            if herm > i_a + i_b + 1:
                                ok = False
                                break
                            val = 2.0 * exps_b * ex[dim][:, i_a, i_b + 1, herm]
                            if i_b > 0:
                                val = val - i_b * ex[dim][:, i_a, i_b - 1, herm]
                        else:
                            if herm > i_a + i_b:
                                ok = False
                                break
                            val = ex[dim][:, i_a, i_b, herm]
                        parts.append(val)
                    if not ok:
                        continue
                    out[d, :, col, k] = parts[0] * parts[1] * parts[2]
    if weights is not None:
        out *= weights[None, :, None, None]
    return out


def _coulomb_block_deriv_ab(self, bra: PairBlock, ket: PairBlock) -> np.ndarray:
    """Both bra-slot derivatives in one pass (shared R tensor).

    Returns (6, npb, na, nb, npk, nc, nd): slabs 0-2 are d/dA{x,y,z},
    slabs 3-5 are d/dB{x,y,z}. Roughly half the cost of two separate
    ordered-pair derivative builds because the Hermite Coulomb tensor —
    the dominant term — is computed once.
    """
    la, lb = bra.la, bra.lb
    lbra = la + lb + 1
    combos_b = hermite_combos(lbra, lbra, lbra, lbra)
    exb = bra.e_tensors(da=1, db=1)
    e3a = _e3_deriv_components(exb, bra.a, la, lb, combos_b, weights=bra.cc)
    e3bv = _e3_deriv_components_b(exb, bra.b, la, lb, combos_b, weights=bra.cc)
    stack = np.concatenate([e3a, e3bv], axis=0)
    out = self._coulomb_core(bra, ket, stack, combos_b, lbra)
    na, nb_ = len(components(la)), len(components(lb))
    nc, nd = len(components(ket.la)), len(components(ket.lb))
    return out.reshape(6, bra.npair, na, nb_, ket.npair, nc, nd)


def _three_center_deriv_fast(self, aux_blocks: list[PairBlock], naux: int
                             ) -> np.ndarray:
    """d(ab|P)/d(center of a) over all ordered (a, b) from canonical pairs.

    Equivalent to the ordered-pair build but ~2x faster: canonical
    (i <= j) pairs with fused dA/dB variants; the [nu, mu] entries come
    from the dB slabs transposed.
    """
    out = np.zeros((3, self.nbf, self.nbf, naux))
    for bra in self.blocks:
        na = len(components(bra.la))
        nb = len(components(bra.lb))
        for ket in aux_blocks:
            nc = len(components(ket.la))
            vals = self._coulomb_block_deriv_ab(bra, ket)
            if self.kernels == "batched":
                for d in range(3):
                    scatter_pairs_aux(out[d], bra, ket,
                                      vals[d, :, :, :, :, :, 0],
                                      vals_t=vals[3 + d, :, :, :, :, :, 0])
                continue
            for rb in range(bra.npair):  # qf: shell-loop — scalar reference scatter
                oa, ob = bra.off_a[rb], bra.off_b[rb]
                for rk in range(ket.npair):  # qf: shell-loop — scalar reference scatter
                    oc = ket.off_a[rk]
                    da = vals[0:3, rb, :, :, rk, :, 0]
                    out[:, oa: oa + na, ob: ob + nb, oc: oc + nc] = da
                    if oa != ob:
                        db = vals[3:6, rb, :, :, rk, :, 0]
                        out[:, ob: ob + nb, oa: oa + na, oc: oc + nc] = (
                            db.transpose(0, 2, 1, 3)
                        )
    return out


IntegralEngine._coulomb_block_deriv_ab = _coulomb_block_deriv_ab
IntegralEngine.three_center_deriv = _three_center_deriv_fast
