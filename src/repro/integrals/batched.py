"""Batched shell-pair kernel layer (``QF_KERNELS=batched``).

The vectorized engine in :mod:`repro.integrals.engine` already
evaluates each angular-momentum class with one einsum, but three
python-level loops over *pairs* survived: pair-block construction
(``for r, (i, j) in enumerate(plist)``), the scatter of per-pair value
blocks into matrices, and the (rb, rk) scatter loops of the
density-fitting / derivative builders. For the small fragments QF
decomposition produces (a water monomer has 5 shells and 15 pairs but
is rebuilt for every one of its ~20 displaced SCFs), that python
overhead — not FLOPs — dominates the integral wall time, which is why
the process backend lost to serial in
``benchmarks/output/bench_parallel_pipeline.json``.

This module supplies the batched replacements:

* :func:`build_pair_blocks_batched` — the whole pair list is screened,
  canonicalized, classed, and packed into contiguous pair-major
  primitive arrays with numpy gathers; the per-pair python loop is
  gone. The arrays are **bit-identical** to the scalar builder's
  (every element undergoes the same scalar arithmetic, just in array
  form), which is what lets the ``QF_KERNELS`` toggle promise
  bit-identical spectra.
* :func:`scatter_symmetric` / :func:`scatter_ordered` /
  :func:`scatter_pairs_aux` — precomputed flat-index scatter plans
  (cached per block) replacing the per-pair assignment loops. Only
  scatters whose write sets are duplicate-free are vectorized; the
  8-fold ERI image scatter keeps its sequential loop because its
  overlapping writes rely on last-write-wins ordering (see
  ``IntegralEngine._scatter_eri``).
* :func:`kernels_mode` — the ``QF_KERNELS`` toggle (``batched`` is the
  default; ``scalar`` selects the reference loops).

Class contractions are accounted through the
:func:`repro.kernels.batched.kernel_seam` executor (useful vs
stride-padded FLOPs, mirrored into ``kernels.*`` obs counters); see
docs/performance.md for the layout and the counter glossary.
"""

from __future__ import annotations

import os

import numpy as np

from repro.basis.gaussian import Shell
from repro.obs.counters import counters

__all__ = [
    "KERNELS_ENV",
    "kernels_mode",
    "build_pair_blocks_batched",
    "scatter_symmetric",
    "scatter_ordered",
    "scatter_pairs_aux",
]

KERNELS_ENV = "QF_KERNELS"
_MODES = ("scalar", "batched")


def kernels_mode(override: str | None = None) -> str:
    """Resolve the integral-kernel mode: ``scalar`` or ``batched``.

    ``override`` (e.g. an ``IntegralEngine(kernels=...)`` argument)
    wins over the ``QF_KERNELS`` environment variable; the default is
    ``batched``. Workers inherit the environment, so one setting
    governs a whole pool run.
    """
    mode = override or os.environ.get(KERNELS_ENV, "") or "batched"
    mode = mode.lower()
    if mode not in _MODES:
        raise ValueError(
            f"unknown integral kernel mode {mode!r} "
            f"(QF_KERNELS expects one of {_MODES})"
        )
    return mode


# ---------------------------------------------------------------------------
# vectorized pair-block construction
# ---------------------------------------------------------------------------

def _shell_tables(shells: list[Shell]):
    """Per-shell gather tables: one O(nshells) pass, reused for every pair.

    Contraction depths vary per shell, so exponent/coefficient rows are
    padded to the largest depth; the padding is never read because each
    class gathers exactly its own ``(ka, kb)`` columns.
    """
    ns = len(shells)
    kmax = max((len(sh.exps) for sh in shells), default=1)
    ls = np.empty(ns, dtype=np.int64)
    ks = np.empty(ns, dtype=np.int64)
    atom = np.empty(ns, dtype=np.int64)
    centers = np.empty((ns, 3))
    exps = np.zeros((ns, kmax))
    coefs = np.zeros((ns, kmax))
    emin = np.empty(ns)
    for idx, sh in enumerate(shells):  # qf: shell-loop — O(nshells) table build, not per-pair
        k = len(sh.exps)
        ls[idx] = sh.l
        ks[idx] = k
        atom[idx] = sh.atom_index
        centers[idx] = sh.center
        exps[idx, :k] = sh.exps
        coefs[idx, :k] = sh.coefs
        emin[idx] = float(sh.exps.min())
    return ls, ks, atom, centers, exps, coefs, emin


def build_pair_blocks_batched(
    shells: list[Shell],
    offsets: list[int],
    pairs: list[tuple[int, int]] | None = None,
    canonicalize: bool = True,
    screen: float = 1.0e-12,
):
    """Vectorized drop-in for :func:`repro.integrals.engine.build_pair_blocks`.

    Produces the same :class:`~repro.integrals.engine.PairBlock` list —
    same class order (sorted keys), same within-class pair order
    (original pair order), bit-identical primitive arrays — without a
    python loop over pairs. The returned blocks are the contiguous,
    pair-major "stride-padded primitive-pair arrays" of the batched
    GEMM layout: within a class every pair contributes exactly
    ``ka * kb`` consecutive primitive slots, so a class evaluates as
    one stacked array operation.
    """
    from repro.integrals.engine import PairBlock  # deferred: avoid cycle

    ls, ks, atom, centers, exps, coefs, emin = _shell_tables(shells)
    ns = len(shells)
    if pairs is None:
        ii, jj = np.triu_indices(ns)
    else:
        if len(pairs) == 0:
            return []
        parr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        ii, jj = parr[:, 0].copy(), parr[:, 1].copy()
    if ii.size == 0:
        return []

    if screen > 0.0:
        diff = centers[ii] - centers[jj]
        d2 = np.sum(diff * diff, axis=1)
        amin = emin[ii]
        bmin = emin[jj]
        q = amin * bmin / (amin + bmin)
        keep = np.exp(-q * d2) >= screen
        ii, jj = ii[keep], jj[keep]
        if ii.size == 0:
            return []

    if canonicalize:
        swap = ls[ii] < ls[jj]
        ii2 = np.where(swap, jj, ii)
        jj2 = np.where(swap, ii, jj)
        ii, jj = ii2, jj2

    # class key (la, lb, ka, kb) encoded into one sortable integer;
    # field widths are generous (l < 64, K < 4096)
    key = ((ls[ii] * 64 + ls[jj]) * 4096 + ks[ii]) * 4096 + ks[jj]
    offsets_arr = np.asarray(offsets, dtype=np.int64)
    blocks = []
    for kval in np.unique(key):
        sel = np.nonzero(key == kval)[0]  # preserves original pair order
        ish = ii[sel]
        jsh = jj[sel]
        la = int(ls[ish[0]])
        lb = int(ls[jsh[0]])
        ka = int(ks[ish[0]])
        kb = int(ks[jsh[0]])
        npair = sel.size
        k2 = ka * kb
        ea = exps[ish, :ka]                     # (npair, ka)
        eb = exps[jsh, :kb]                     # (npair, kb)
        a = np.broadcast_to(ea[:, :, None], (npair, ka, kb)).reshape(npair, k2)
        b = np.broadcast_to(eb[:, None, :], (npair, ka, kb)).reshape(npair, k2)
        cc = (coefs[ish, :ka][:, :, None]
              * coefs[jsh, :kb][:, None, :]).reshape(npair, k2)
        ctr_a = centers[ish]
        ctr_b = centers[jsh]
        psum = a + b
        # product centers, same elementwise arithmetic as the scalar
        # builder: (a*A + b*B) / p per primitive pair
        pc = (a[:, :, None] * ctr_a[:, None, :]
              + b[:, :, None] * ctr_b[:, None, :]) / psum[:, :, None]
        blocks.append(
            PairBlock(
                la=la, lb=lb, k2=k2,
                ishell=ish, jshell=jsh,
                off_a=offsets_arr[ish], off_b=offsets_arr[jsh],
                atom_a=atom[ish], atom_b=atom[jsh],
                a=np.ascontiguousarray(a).ravel(),
                b=np.ascontiguousarray(b).ravel(),
                cc=cc.ravel(),
                ab_vec=ctr_a - ctr_b, centers_a=ctr_a,
                p=psum.ravel(), pc=pc.reshape(-1, 3),
            )
        )
    counters().inc("kernels.pair_blocks_built", len(blocks))
    counters().inc("kernels.pairs_packed", int(ii.size))
    return blocks


# ---------------------------------------------------------------------------
# scatter plans
# ---------------------------------------------------------------------------
#
# A scatter plan is the flat-index image of one block's (npair, na, nb)
# value tensor in an (nbf, nbf) target. Plans depend only on the block
# and the target width, so they are computed once and stashed on the
# block (PairBlock is a plain dataclass; the cache dies with the block).

def _plan_symmetric(blk, na: int, nb: int, nbf: int):
    cache = getattr(blk, "_scatter_plans", None)
    if cache is None:
        cache = blk._scatter_plans = {}
    plan = cache.get(("sym", na, nb, nbf))
    if plan is None:
        rows = blk.off_a[:, None] + np.arange(na)[None, :]      # (npair, na)
        cols = blk.off_b[:, None] + np.arange(nb)[None, :]      # (npair, nb)
        flat = rows[:, :, None] * nbf + cols[:, None, :]        # (npair, na, nb)
        off_diag = blk.off_a != blk.off_b
        # image axes ordered (nb, na) to line up with vals.T elementwise
        flat_t = (cols[off_diag][:, :, None] * nbf
                  + rows[off_diag][:, None, :])                 # (nod, nb, na)
        plan = (flat.ravel(), off_diag, flat_t.ravel())
        cache[("sym", na, nb, nbf)] = plan
    return plan


def scatter_symmetric(target: np.ndarray, blk, vals: np.ndarray) -> None:
    """Vectorized symmetric scatter: ``vals[r]`` at ``(off_a, off_b)``
    plus the transpose image for off-diagonal pairs.

    Write sets are disjoint (each unordered shell pair appears once in
    a canonical block; diagonal pairs are masked out of the transpose
    image exactly like the scalar loop), so the assignment order cannot
    matter and the result is bit-identical to the loop.
    """
    na, nb = vals.shape[1], vals.shape[2]
    flat, off_diag, flat_t = _plan_symmetric(blk, na, nb, target.shape[1])
    out = target.reshape(-1)
    out[flat] = vals.ravel()
    if flat_t.size:
        out[flat_t] = vals[off_diag].transpose(0, 2, 1).ravel()


def scatter_ordered(target: np.ndarray, blk, vals: np.ndarray) -> None:
    """Vectorized ordered-pair scatter (no symmetrization image)."""
    na, nb = vals.shape[1], vals.shape[2]
    flat, _, _ = _plan_symmetric(blk, na, nb, target.shape[1])
    target.reshape(-1)[flat] = vals.ravel()


def _plan_aux(bra, ket, na: int, nb: int, nc: int, naux: int, nbf: int):
    cache = getattr(bra, "_scatter_plans", None)
    if cache is None:
        cache = bra._scatter_plans = {}
    key = ("aux", id(ket), na, nb, nc, naux, nbf)
    plan = cache.get(key)
    if plan is None:
        rows = bra.off_a[:, None] + np.arange(na)[None, :]      # (npb, na)
        cols = bra.off_b[:, None] + np.arange(nb)[None, :]      # (npb, nb)
        aux = ket.off_a[:, None] + np.arange(nc)[None, :]       # (npk, nc)
        # flat index into (nbf, nbf, naux): ((row*nbf)+col)*naux + aux
        pair_flat = (rows[:, :, None] * nbf + cols[:, None, :]) * naux
        flat = (pair_flat[:, :, :, None, None]
                + aux[None, None, None, :, :])   # (npb, na, nb, npk, nc)
        off_diag = bra.off_a != bra.off_b
        # image axes ordered (nb, na) to line up with the transposed vals
        pair_flat_t = (cols[off_diag][:, :, None] * nbf
                       + rows[off_diag][:, None, :]) * naux
        flat_t = (pair_flat_t[:, :, :, None, None]
                  + aux[None, None, None, :, :])    # (nod, nb, na, npk, nc)
        plan = (flat.ravel(), off_diag, flat_t.ravel())
        cache[key] = plan
    return plan


def scatter_pairs_aux(target: np.ndarray, bra, ket, vals: np.ndarray,
                      vals_t: np.ndarray | None = None) -> None:
    """Scatter 3-center values (npb, na, nb, npk, nc) into (nbf, nbf, naux).

    Replaces the (rb, rk) python loops of the density-fitting 3-center
    build and the DF derivative builders. The bra transpose image
    (masked to off-diagonal pairs, matching the scalar loop) is taken
    from ``vals_t`` when given — the derivative builders write the
    d/dB slab there — and from ``vals`` itself otherwise. All writes
    are to distinct elements, so assignment order cannot matter.
    """
    na, nb, nc = vals.shape[1], vals.shape[2], vals.shape[4]
    flat, off_diag, flat_t = _plan_aux(
        bra, ket, na, nb, nc, target.shape[2], target.shape[1]
    )
    out = target.reshape(-1)
    out[flat] = vals.ravel()
    if flat_t.size:
        src = vals if vals_t is None else vals_t
        # (nod, na, nb, npk, nc) -> transpose the bra function axes
        out[flat_t] = src[off_diag].transpose(0, 2, 1, 3, 4).ravel()


def scatter_pairs_2c(target: np.ndarray, bra, ket,
                     vals: np.ndarray) -> None:
    """Scatter (npb, na, npk, nc) aux-pair values into (naux, naux).

    Used by the DF 2-center derivative builder, which iterates all
    *ordered* (bra, ket) aux block combinations — no transpose image,
    every write distinct.
    """
    na, nc = vals.shape[1], vals.shape[3]
    naux = target.shape[1]
    cache = getattr(bra, "_scatter_plans", None)
    if cache is None:
        cache = bra._scatter_plans = {}
    key = ("2c", id(ket), na, nc, naux)
    flat = cache.get(key)
    if flat is None:
        rows = bra.off_a[:, None] + np.arange(na)[None, :]      # (npb, na)
        cols = ket.off_a[:, None] + np.arange(nc)[None, :]      # (npk, nc)
        flat = (rows[:, :, None, None] * naux
                + cols[None, None, :, :]).ravel()
        cache[key] = flat
    target.reshape(-1)[flat] = vals.ravel()


def scatter_eri_deriv(target: np.ndarray, bra, ket,
                      vals: np.ndarray) -> None:
    """Scatter (npb, na, nb, npk, nc, nd) derivative ERI values.

    ``target`` is one (nbf, nbf, nbf, nbf) derivative slab; bra pairs
    are ordered (no bra image), ket pairs canonical, so the only image
    is the ket swap — masked to off-diagonal ket pairs exactly like
    the scalar loop. Write sets are disjoint.
    """
    na, nb = vals.shape[1], vals.shape[2]
    nc, nd = vals.shape[4], vals.shape[5]
    nbf = target.shape[0]
    cache = getattr(bra, "_scatter_plans", None)
    if cache is None:
        cache = bra._scatter_plans = {}
    key = ("erid", id(ket), na, nb, nc, nd, nbf)
    plan = cache.get(key)
    if plan is None:
        rows = bra.off_a[:, None] + np.arange(na)[None, :]      # (npb, na)
        cols = bra.off_b[:, None] + np.arange(nb)[None, :]      # (npb, nb)
        kidx = ket.off_a[:, None] + np.arange(nc)[None, :]      # (npk, nc)
        lidx = ket.off_b[:, None] + np.arange(nd)[None, :]      # (npk, nd)
        pair_flat = (rows[:, :, None] * nbf + cols[:, None, :])  # (npb, na, nb)
        ket_flat = kidx[:, :, None] * nbf + lidx[:, None, :]     # (npk, nc, nd)
        flat = (pair_flat[:, :, :, None, None, None] * (nbf * nbf)
                + ket_flat[None, None, None, :, :, :])
        off_diag = ket.off_a != ket.off_b
        # image axes ordered (nd, nc) to line up with the transposed vals
        ket_flat_t = (lidx[off_diag][:, :, None] * nbf
                      + kidx[off_diag][:, None, :])              # (nod, nd, nc)
        flat_t = (pair_flat[:, :, :, None, None, None] * (nbf * nbf)
                  + ket_flat_t[None, None, None, :, :, :])
        plan = (flat.ravel(), off_diag, flat_t.ravel())
        cache[key] = plan
    flat, off_diag, flat_t = plan
    out = target.reshape(-1)
    out[flat] = vals.ravel()
    if flat_t.size:
        out[flat_t] = vals[:, :, :, off_diag].transpose(
            0, 1, 2, 3, 5, 4
        ).ravel()
