"""Solvation: embed a solute in an explicit water box.

The paper solvates the spike protein in an explicit water box
(101,299,008 total atoms). :func:`solvate` reproduces the construction:
tile water at liquid density over the solute's bounding box plus a
margin, then delete waters that clash with solute atoms.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.atoms import Geometry
from repro.geometry.neighbor import CellList
from repro.geometry.water import (
    WATER_NUMBER_DENSITY,
    random_rotation,
    water_molecule,
)


def solvate(
    solute: Geometry,
    margin: float = 6.0,
    clash_distance: float = 2.4,
    density: float = WATER_NUMBER_DENSITY,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> list[Geometry]:
    """Return the retained water molecules around ``solute``.

    Parameters
    ----------
    solute:
        The protein geometry (coords in bohr, as always).
    margin:
        Water shell thickness beyond the solute bounding box, angstrom.
    clash_distance:
        Waters with any atom within this distance (angstrom) of a solute
        atom are removed.
    rng:
        Explicit random generator; overrides ``seed``. Passing the
        caller's generator keeps a multi-stage build (protein → box →
        solvation) on one reproducible stream.

    Returns
    -------
    A list of single-molecule water geometries (each one QF fragment)
    in the solute's frame.
    """
    if margin < 0 or clash_distance <= 0:
        raise ValueError("margin must be >= 0 and clash_distance > 0")
    if rng is None:
        rng = np.random.default_rng(seed)
    solute_ang = solute.coords_angstrom()
    lo = solute_ang.min(axis=0) - margin
    hi = solute_ang.max(axis=0) + margin
    box = hi - lo

    spacing = (1.0 / density) ** (1.0 / 3.0)
    counts = np.maximum(1, np.floor(box / spacing).astype(int))
    jitter = 0.25

    solute_cells = CellList(solute_ang, cell_size=max(clash_distance, 2.0))
    clash2 = clash_distance * clash_distance

    kept: list[Geometry] = []
    for ix in range(counts[0]):
        for iy in range(counts[1]):
            for iz in range(counts[2]):
                center = (
                    lo
                    + (np.array([ix, iy, iz], dtype=float) + 0.5) * spacing
                    + rng.uniform(-jitter, jitter, size=3)
                )
                w = water_molecule(center=center, rotation=random_rotation(rng))
                wa = w.coords_angstrom()
                clash = False
                for p in wa:
                    for idx in solute_cells.neighbors_of_point(p):
                        d = solute_ang[idx] - p
                        if float(d @ d) < clash2:
                            clash = True
                            break
                    if clash:
                        break
                if not clash:
                    kept.append(w)
    return kept
