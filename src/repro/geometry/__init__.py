"""Molecular geometry substrate.

Provides the :class:`~repro.geometry.atoms.Geometry` container used across
the whole library, cell-list neighbor search for the distance-threshold
(λ) pair enumeration, generators for water molecules / boxes, and a
synthetic polypeptide builder standing in for the SARS-CoV-2 spike
structure (see DESIGN.md, substitutions table).
"""

from repro.geometry.atoms import Atom, Geometry
from repro.geometry.neighbor import CellList, min_distance, pairs_within
from repro.geometry.water import water_molecule, water_dimer, water_box
from repro.geometry.protein import (
    RESIDUE_TEMPLATES,
    build_polypeptide,
    spike_like_protein,
)
from repro.geometry.solvate import solvate

__all__ = [
    "Atom",
    "Geometry",
    "CellList",
    "min_distance",
    "pairs_within",
    "water_molecule",
    "water_dimer",
    "water_box",
    "RESIDUE_TEMPLATES",
    "build_polypeptide",
    "spike_like_protein",
    "solvate",
]
