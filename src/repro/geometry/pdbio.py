"""Minimal PDB-format I/O.

Only the subset needed here: ATOM/HETATM records with residue
bookkeeping, so built structures can be inspected in standard viewers
and small structures can be round-tripped in tests.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.geometry.atoms import Geometry


def write_pdb(geometry: Geometry, path: str | Path) -> None:
    """Write a geometry as PDB ATOM records (coordinates in angstrom)."""
    lines = []
    coords = geometry.coords_angstrom()
    for i, sym in enumerate(geometry.symbols):
        label = geometry.labels[i] if geometry.labels else {}
        res_name = str(label.get("residue_name", "UNK"))[:3]
        res_idx = int(label.get("residue_index", 0)) + 1
        name = str(label.get("name", sym))[:4]
        x, y, z = coords[i]
        lines.append(
            f"ATOM  {i + 1:>5d} {name:<4s} {res_name:<3s} A{res_idx:>4d}    "
            f"{x:8.3f}{y:8.3f}{z:8.3f}  1.00  0.00          {sym:>2s}"
        )
    lines.append("END")
    Path(path).write_text("\n".join(lines) + "\n")


def read_pdb(path: str | Path) -> Geometry:
    """Read ATOM/HETATM records back into a :class:`Geometry`."""
    symbols: list[str] = []
    coords: list[list[float]] = []
    labels: list[dict] = []
    for line in Path(path).read_text().splitlines():
        if not (line.startswith("ATOM") or line.startswith("HETATM")):
            continue
        name = line[12:16].strip()
        res_name = line[17:20].strip()
        res_idx = int(line[22:26]) - 1
        x = float(line[30:38])
        y = float(line[38:46])
        z = float(line[46:54])
        element = line[76:78].strip() or name[0]
        symbols.append(element)
        coords.append([x, y, z])
        labels.append(
            {
                "kind": "protein",
                "residue_index": res_idx,
                "residue_name": res_name,
                "name": name,
            }
        )
    if not symbols:
        raise ValueError(f"no ATOM records in {path}")
    return Geometry.from_angstrom(symbols, np.array(coords), labels=labels)
