"""Synthetic polypeptide builder (stand-in for the spike structure).

Two levels of fidelity:

* :func:`build_polypeptide` — all-atom, chemically valid geometry built
  from internal coordinates (NeRF). Used for everything that goes
  through the QM engine (fragment SCF/DFPT, the Fig. 12 gas-phase
  spectrum at reduced scale).
* :func:`spike_like_protein` — a large compact structure with realistic
  residue composition and spatial contacts, built by placing rigid
  residue templates along a serpentine space-filling path. Used for the
  full-scale *bookkeeping and scheduling* workloads (fragment-size
  distribution, generalized-concap enumeration, load-balance /
  scaling simulations) where only sizes and distances matter.

Residue templates use neutral protonation states so every fragment is a
closed-shell even-electron system suitable for restricted SCF.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.atoms import Geometry
from repro.geometry.zmatrix import place_atom

# ---------------------------------------------------------------------------
# residue templates: side-chain recipes in internal coordinates
# ---------------------------------------------------------------------------

#: recipe entry: (atom_name, element, ref_a, ref_b, ref_c, bond Å, angle °, dihedral °)
Recipe = tuple[str, str, str, str, str, float, float, float]


# Rotamer dihedrals below were selected by an automated clash scan
# (tests/geometry/test_protein.py asserts every homo-/hetero-peptide
# stays clash-free); side chains use common gauche/trans rotamers.
RESIDUE_TEMPLATES: dict[str, list[Recipe]] = {
    "GLY": [
        ("HA2", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("HA3", "H", "N", "C", "CA", 1.09, 109.0, -119.0),
    ],
    "ALA": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB1", "H", "N", "CA", "CB", 1.09, 109.5, 60.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, -180.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, -60.0),
    ],
    "SER": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, -65.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, 55.0),
        ("OG", "O", "N", "CA", "CB", 1.42, 110.0, 175.0),
        ("HG", "H", "CA", "CB", "OG", 0.96, 108.5, -180.0),
    ],
    "CYS": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, -175.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, -55.0),
        ("SG", "S", "N", "CA", "CB", 1.81, 113.0, 65.0),
        ("HG", "H", "CA", "CB", "SG", 1.34, 96.0, -180.0),
    ],
    "VAL": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB", "H", "N", "CA", "CB", 1.09, 108.0, 55.0),
        ("CG1", "C", "N", "CA", "CB", 1.53, 110.5, 175.0),
        ("HG11", "H", "CA", "CB", "CG1", 1.09, 109.5, 60.0),
        ("HG12", "H", "CA", "CB", "CG1", 1.09, 109.5, -180.0),
        ("HG13", "H", "CA", "CB", "CG1", 1.09, 109.5, -60.0),
        ("CG2", "C", "N", "CA", "CB", 1.53, 110.5, -65.0),
        ("HG21", "H", "CA", "CB", "CG2", 1.09, 109.5, 60.0),
        ("HG22", "H", "CA", "CB", "CG2", 1.09, 109.5, -180.0),
        ("HG23", "H", "CA", "CB", "CG2", 1.09, 109.5, -60.0),
    ],
    "THR": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB", "H", "N", "CA", "CB", 1.09, 108.0, 65.0),
        ("OG1", "O", "N", "CA", "CB", 1.42, 109.5, -175.0),
        ("HG1", "H", "CA", "CB", "OG1", 0.96, 108.5, -180.0),
        ("CG2", "C", "N", "CA", "CB", 1.53, 110.5, -55.0),
        ("HG21", "H", "CA", "CB", "CG2", 1.09, 109.5, 60.0),
        ("HG22", "H", "CA", "CB", "CG2", 1.09, 109.5, -180.0),
        ("HG23", "H", "CA", "CB", "CG2", 1.09, 109.5, -60.0),
    ],
    "LEU": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, 60.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, -180.0),
        ("CG", "C", "N", "CA", "CB", 1.53, 116.0, -60.0),
        ("HG", "H", "CA", "CB", "CG", 1.09, 108.0, 60.0),
        ("CD1", "C", "CA", "CB", "CG", 1.53, 110.5, -180.0),
        ("HD11", "H", "CB", "CG", "CD1", 1.09, 109.5, 60.0),
        ("HD12", "H", "CB", "CG", "CD1", 1.09, 109.5, -180.0),
        ("HD13", "H", "CB", "CG", "CD1", 1.09, 109.5, -60.0),
        ("CD2", "C", "CA", "CB", "CG", 1.53, 110.5, -60.0),
        ("HD21", "H", "CB", "CG", "CD2", 1.09, 109.5, 60.0),
        ("HD22", "H", "CB", "CG", "CD2", 1.09, 109.5, -180.0),
        ("HD23", "H", "CB", "CG", "CD2", 1.09, 109.5, -60.0),
    ],
    "ASN": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, -175.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, -55.0),
        ("CG", "C", "N", "CA", "CB", 1.52, 112.6, 65.0),
        ("OD1", "O", "CA", "CB", "CG", 1.23, 120.8, -180.0),
        ("ND2", "N", "CA", "CB", "CG", 1.33, 116.4, 0.0),
        ("HD21", "H", "CB", "CG", "ND2", 1.01, 120.0, 0.0),
        ("HD22", "H", "CB", "CG", "ND2", 1.01, 120.0, -180.0),
    ],
    # neutral (protonated) aspartic acid keeps fragments closed-shell
    "ASP": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, -65.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, 55.0),
        ("CG", "C", "N", "CA", "CB", 1.52, 112.6, 175.0),
        ("OD1", "O", "CA", "CB", "CG", 1.21, 120.8, 175.0),
        ("OD2", "O", "CA", "CB", "CG", 1.36, 113.0, -5.0),
        ("HD2", "H", "CB", "CG", "OD2", 0.97, 106.0, -180.0),
    ],
    # neutral lysine (amine, not ammonium)
    "LYS": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("CG", "C", "N", "CA", "CB", 1.53, 111.0, -60.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, 60.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, -180.0),
        ("CD", "C", "CA", "CB", "CG", 1.53, 111.0, -180.0),
        ("HG2", "H", "CA", "CB", "CG", 1.09, 109.5, -60.0),
        ("HG3", "H", "CA", "CB", "CG", 1.09, 109.5, 60.0),
        ("CE", "C", "CB", "CG", "CD", 1.53, 111.0, -180.0),
        ("HD2", "H", "CB", "CG", "CD", 1.09, 109.5, -60.0),
        ("HD3", "H", "CB", "CG", "CD", 1.09, 109.5, 60.0),
        ("NZ", "N", "CG", "CD", "CE", 1.47, 111.0, -180.0),
        ("HE2", "H", "CG", "CD", "CE", 1.09, 109.5, -60.0),
        ("HE3", "H", "CG", "CD", "CE", 1.09, 109.5, 60.0),
        ("HZ1", "H", "CD", "CE", "NZ", 1.01, 109.5, 60.0),
        ("HZ2", "H", "CD", "CE", "NZ", 1.01, 109.5, -60.0),
    ],
    "PHE": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, 60.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, -180.0),
        ("CG", "C", "N", "CA", "CB", 1.51, 114.0, -60.0),
        ("CD1", "C", "CA", "CB", "CG", 1.39, 120.0, 90.0),
        ("CD2", "C", "CA", "CB", "CG", 1.39, 120.0, -90.0),
        ("CE1", "C", "CB", "CG", "CD1", 1.39, 120.0, -180.0),
        ("HD1", "H", "CB", "CG", "CD1", 1.08, 120.0, 0.0),
        ("CE2", "C", "CB", "CG", "CD2", 1.39, 120.0, -180.0),
        ("HD2", "H", "CB", "CG", "CD2", 1.08, 120.0, 0.0),
        ("CZ", "C", "CG", "CD1", "CE1", 1.39, 120.0, 0.0),
        ("HE1", "H", "CG", "CD1", "CE1", 1.08, 120.0, -180.0),
        ("HE2", "H", "CG", "CD2", "CE2", 1.08, 120.0, -180.0),
        ("HZ", "H", "CD1", "CE1", "CZ", 1.08, 120.0, -180.0),
    ],
    # tyrosine: the Phe ring plus the para-hydroxyl
    "TYR": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, 55.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, 175.0),
        ("CG", "C", "N", "CA", "CB", 1.51, 114.0, -65.0),
        ("CD1", "C", "CA", "CB", "CG", 1.39, 120.0, 90.0),
        ("CD2", "C", "CA", "CB", "CG", 1.39, 120.0, -90.0),
        ("CE1", "C", "CB", "CG", "CD1", 1.39, 120.0, -180.0),
        ("HD1", "H", "CB", "CG", "CD1", 1.08, 120.0, 0.0),
        ("CE2", "C", "CB", "CG", "CD2", 1.39, 120.0, -180.0),
        ("HD2", "H", "CB", "CG", "CD2", 1.08, 120.0, 0.0),
        ("CZ", "C", "CG", "CD1", "CE1", 1.39, 120.0, 0.0),
        ("HE1", "H", "CG", "CD1", "CE1", 1.08, 120.0, -180.0),
        ("HE2", "H", "CG", "CD2", "CE2", 1.08, 120.0, -180.0),
        ("OH", "O", "CD1", "CE1", "CZ", 1.36, 120.0, -180.0),
        ("HH", "H", "CE1", "CZ", "OH", 0.97, 110.0, 0.0),
    ],
    # methionine (thioether side chain)
    "MET": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, 55.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, 175.0),
        ("CG", "C", "N", "CA", "CB", 1.53, 114.0, -65.0),
        ("HG2", "H", "CA", "CB", "CG", 1.09, 109.5, -65.0),
        ("HG3", "H", "CA", "CB", "CG", 1.09, 109.5, 55.0),
        ("SD", "S", "CA", "CB", "CG", 1.81, 112.7, 175.0),
        ("CE", "C", "CB", "CG", "SD", 1.79, 100.2, 120.0),
        ("HE1", "H", "CG", "SD", "CE", 1.09, 109.5, 60.0),
        ("HE2", "H", "CG", "SD", "CE", 1.09, 109.5, -180.0),
        ("HE3", "H", "CG", "SD", "CE", 1.09, 109.5, -60.0),
    ],
    "GLN": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, 55.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, 175.0),
        ("CG", "C", "N", "CA", "CB", 1.53, 114.0, -65.0),
        ("HG2", "H", "CA", "CB", "CG", 1.09, 109.5, -65.0),
        ("HG3", "H", "CA", "CB", "CG", 1.09, 109.5, 55.0),
        ("CD", "C", "CA", "CB", "CG", 1.52, 112.6, 175.0),
        ("OE1", "O", "CB", "CG", "CD", 1.23, 120.8, 120.0),
        ("NE2", "N", "CB", "CG", "CD", 1.33, 116.4, -60.0),
        ("HE21", "H", "CG", "CD", "NE2", 1.01, 120.0, 0.0),
        ("HE22", "H", "CG", "CD", "NE2", 1.01, 120.0, -180.0),
    ],
    # neutral (protonated) glutamic acid
    "GLU": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB2", "H", "N", "CA", "CB", 1.09, 109.5, -65.0),
        ("HB3", "H", "N", "CA", "CB", 1.09, 109.5, 55.0),
        ("CG", "C", "N", "CA", "CB", 1.53, 114.0, 175.0),
        ("HG2", "H", "CA", "CB", "CG", 1.09, 109.5, -65.0),
        ("HG3", "H", "CA", "CB", "CG", 1.09, 109.5, 55.0),
        ("CD", "C", "CA", "CB", "CG", 1.52, 112.6, 175.0),
        ("OE1", "O", "CB", "CG", "CD", 1.21, 120.8, 65.0),
        ("OE2", "O", "CB", "CG", "CD", 1.36, 113.0, -115.0),
        ("HE2", "H", "CG", "CD", "OE2", 0.97, 106.0, -180.0),
    ],
    "ILE": [
        ("HA", "H", "N", "C", "CA", 1.09, 109.0, 119.0),
        ("CB", "C", "N", "C", "CA", 1.53, 110.5, -119.0),
        ("HB", "H", "N", "CA", "CB", 1.09, 108.0, 55.0),
        ("CG1", "C", "N", "CA", "CB", 1.53, 110.5, 175.0),
        ("HG12", "H", "CA", "CB", "CG1", 1.09, 109.5, -65.0),
        ("HG13", "H", "CA", "CB", "CG1", 1.09, 109.5, 55.0),
        ("CG2", "C", "N", "CA", "CB", 1.53, 110.5, -65.0),
        ("HG21", "H", "CA", "CB", "CG2", 1.09, 109.5, 60.0),
        ("HG22", "H", "CA", "CB", "CG2", 1.09, 109.5, -180.0),
        ("HG23", "H", "CA", "CB", "CG2", 1.09, 109.5, -60.0),
        ("CD1", "C", "CA", "CB", "CG1", 1.53, 110.5, 175.0),
        ("HD11", "H", "CB", "CG1", "CD1", 1.09, 109.5, 60.0),
        ("HD12", "H", "CB", "CG1", "CD1", 1.09, 109.5, -180.0),
        ("HD13", "H", "CB", "CG1", "CD1", 1.09, 109.5, -60.0),
    ],
}

#: atoms per residue (backbone N,H,CA,C,O = 5 plus the recipe), for
#: bookkeeping without building geometry.
def residue_atom_count(name: str) -> int:
    return 5 + len(RESIDUE_TEMPLATES[name])


# approximate composition of the SARS-CoV-2 spike among the residue types
# we model (renormalized from UniProt P0DTC2 residue frequencies).
SPIKE_COMPOSITION: dict[str, float] = {
    "GLY": 0.065, "ALA": 0.062, "SER": 0.078, "CYS": 0.031, "VAL": 0.076,
    "THR": 0.075, "LEU": 0.084, "ASN": 0.069, "ASP": 0.049, "LYS": 0.048,
    "PHE": 0.061, "TYR": 0.043, "MET": 0.011, "GLN": 0.049, "GLU": 0.038,
    "ILE": 0.060,
}


# ---------------------------------------------------------------------------
# all-atom builder
# ---------------------------------------------------------------------------

# backbone internal coordinates (Engh-Huber-like)
_BB = {
    "C-N": 1.329, "N-CA": 1.458, "CA-C": 1.525, "C-O": 1.231, "N-H": 1.010,
    "CA-C-N": 116.2, "C-N-CA": 121.7, "N-CA-C": 111.2, "CA-C-O": 120.8,
    "C-N-H": 119.0,
}


@dataclass
class BuiltResidue:
    """Bookkeeping for one residue of a built polypeptide."""

    index: int
    name: str
    atom_indices: list[int]
    atom_names: list[str]

    def named(self, atom_name: str) -> int:
        """Global index of atom ``atom_name`` in this residue."""
        return self.atom_indices[self.atom_names.index(atom_name)]


def build_polypeptide(
    sequence: list[str],
    phi: float = -140.0,
    psi: float = 135.0,
    omega: float = 180.0,
) -> tuple[Geometry, list[BuiltResidue]]:
    """Build an all-atom polypeptide with NH2/COOH termini.

    Parameters
    ----------
    sequence:
        Residue names from :data:`RESIDUE_TEMPLATES`.
    phi, psi, omega:
        Backbone dihedrals in degrees (defaults: extended beta strand,
        which is clash-free for arbitrary sequences).

    Returns
    -------
    (geometry, residues):
        The full geometry (labels carry residue index/name/atom name)
        and per-residue index bookkeeping for the fragmenter.
    """
    for name in sequence:
        if name not in RESIDUE_TEMPLATES:
            raise KeyError(f"unsupported residue {name!r}")
    if not sequence:
        raise ValueError("empty sequence")

    symbols: list[str] = []
    coords: list[np.ndarray] = []
    labels: list[dict] = []
    residues: list[BuiltResidue] = []

    def add(res_idx: int, res_name: str, atom_name: str, element: str, pos) -> int:
        symbols.append(element)
        coords.append(np.asarray(pos, dtype=float))
        labels.append(
            {
                "kind": "protein",
                "residue_index": res_idx,
                "residue_name": res_name,
                "name": atom_name,
            }
        )
        return len(symbols) - 1

    pos: dict[str, np.ndarray] = {}  # named atoms of current residue
    prev: dict[str, np.ndarray] = {}  # named atoms of previous residue

    for i, res_name in enumerate(sequence):
        atom_names: list[str] = []
        atom_indices: list[int] = []

        def put(atom_name: str, element: str, p) -> None:
            idx = add(i, res_name, atom_name, element, p)
            pos[atom_name] = np.asarray(p, dtype=float)
            atom_names.append(atom_name)
            atom_indices.append(idx)

        if i == 0:
            # seed the chain: N at origin, CA along +x, C in the xy-plane
            n = np.zeros(3)
            ca = np.array([_BB["N-CA"], 0.0, 0.0])
            theta = math.radians(180.0 - _BB["N-CA-C"])
            c = ca + _BB["CA-C"] * np.array([math.cos(theta), math.sin(theta), 0.0])
            put("N", "N", n)
            put("CA", "C", ca)
            put("C", "C", c)
            # NH2 terminus: two hydrogens on N
            h1 = place_atom(pos["C"], pos["CA"], pos["N"], _BB["N-H"], 109.5, 60.0)
            h2 = place_atom(pos["C"], pos["CA"], pos["N"], _BB["N-H"], 109.5, 300.0)
            put("H", "H", h1)
            put("H2", "H", h2)
        else:
            n = place_atom(prev["N"], prev["CA"], prev["C"], _BB["C-N"], _BB["CA-C-N"], psi)
            put("N", "N", n)
            ca = place_atom(prev["CA"], prev["C"], pos["N"], _BB["N-CA"], _BB["C-N-CA"], omega)
            put("CA", "C", ca)
            c = place_atom(prev["C"], pos["N"], pos["CA"], _BB["CA-C"], _BB["N-CA-C"], phi)
            put("C", "C", c)
            h = place_atom(prev["CA"], prev["C"], pos["N"], _BB["N-H"], _BB["C-N-H"], 0.0)
            put("H", "H", h)

        # carbonyl oxygen: trans to the next amide nitrogen (dihedral psi+180)
        o = place_atom(pos["N"], pos["CA"], pos["C"], _BB["C-O"], _BB["CA-C-O"], psi + 180.0)
        put("O", "O", o)

        for (atom_name, element, ra, rb, rc, bond, angle, dihedral) in RESIDUE_TEMPLATES[res_name]:
            p = place_atom(pos[ra], pos[rb], pos[rc], bond, angle, dihedral)
            put(atom_name, element, p)

        if i == len(sequence) - 1:
            # COOH terminus: hydroxyl O + H on the final carbonyl carbon
            oxt = place_atom(pos["N"], pos["CA"], pos["C"], 1.34, 111.0, psi)
            put("OXT", "O", oxt)
            hxt = place_atom(pos["CA"], pos["C"], pos["OXT"], 0.97, 106.0, 180.0)
            put("HXT", "H", hxt)

        residues.append(BuiltResidue(i, res_name, atom_indices, atom_names))
        prev = {k: pos[k] for k in ("N", "CA", "C")}
        pos = {}

    geom = Geometry.from_angstrom(symbols, np.array(coords), labels=labels)
    return geom, residues


# ---------------------------------------------------------------------------
# large-scale structure (bookkeeping fidelity)
# ---------------------------------------------------------------------------

def sample_sequence(n_residues: int, seed: int = 0,
                    composition: dict[str, float] | None = None) -> list[str]:
    """Sample a residue sequence from a composition distribution."""
    comp = composition or SPIKE_COMPOSITION
    names = sorted(comp)
    probs = np.array([comp[n] for n in names], dtype=float)
    probs /= probs.sum()
    rng = np.random.default_rng(seed)
    return [names[k] for k in rng.choice(len(names), size=n_residues, p=probs)]


def spike_like_protein(
    n_residues: int = 3180,
    seed: int = 0,
    ca_spacing: float = 3.8,
    row_spacing: float = 4.9,
    layer_spacing: float = 5.1,
) -> tuple[Geometry, list[BuiltResidue]]:
    """A compact globular stand-in for the spike protein.

    Residues follow a serpentine path through a cube (rows along ±x,
    stacked in y, layered in z), so sequentially distant residues make
    spatial contacts — reproducing the generalized-concap statistics of
    a folded protein. Each residue contributes a rigid, randomly
    oriented copy of its all-atom template centered on its CA site.

    The geometry is *not* intended for QM (side chains may clash across
    strands); it feeds the fragment-size distribution and λ-threshold
    pair enumeration only.
    """
    sequence = sample_sequence(n_residues, seed=seed)
    rng = np.random.default_rng(seed + 1)

    per_row = max(2, int(round(n_residues ** (1.0 / 3.0))))
    symbols: list[str] = []
    coords: list[np.ndarray] = []
    labels: list[dict] = []
    residues: list[BuiltResidue] = []

    # pre-build one template geometry per residue type (single residue
    # with termini stripped conceptually irrelevant here — we keep all
    # template atoms and center on CA)
    template_cache: dict[str, tuple[list[str], np.ndarray, list[str]]] = {}
    for name in set(sequence):
        geom, res = build_polypeptide([name])
        # drop terminal cap atoms to keep in-chain atom counts
        keep = [
            k
            for k, nm in enumerate(res[0].atom_names)
            if nm not in ("H2", "OXT", "HXT")
        ]
        sub = geom.subset([res[0].atom_indices[k] for k in keep])
        ca_local = sub.coords_angstrom()[[res[0].atom_names[k] for k in keep].index("CA")]
        template_cache[name] = (
            list(sub.symbols),
            sub.coords_angstrom() - ca_local,
            [res[0].atom_names[k] for k in keep],
        )

    from repro.geometry.water import random_rotation

    for i, res_name in enumerate(sequence):
        layer, rem = divmod(i, per_row * per_row)
        row, col = divmod(rem, per_row)
        x = col if row % 2 == 0 else per_row - 1 - col  # serpentine
        center = np.array(
            [x * ca_spacing, row * row_spacing, layer * layer_spacing], dtype=float
        )
        syms, local, names = template_cache[res_name]
        rot = random_rotation(rng)
        placed = local @ rot.T + center
        start = len(symbols)
        for k, s in enumerate(syms):
            symbols.append(s)
            coords.append(placed[k])
            labels.append(
                {
                    "kind": "protein",
                    "residue_index": i,
                    "residue_name": res_name,
                    "name": names[k],
                }
            )
        residues.append(
            BuiltResidue(i, res_name, list(range(start, len(symbols))), list(names))
        )

    geom = Geometry.from_angstrom(symbols, np.array(coords), labels=labels)
    return geom, residues
