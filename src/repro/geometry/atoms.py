"""Atom and Geometry containers.

A :class:`Geometry` is the unit passed to the QM engine: an array of
element symbols plus coordinates. Coordinates are stored in **bohr**
internally; constructors accept angstrom via ``from_angstrom`` because
structural biology data is conventionally in angstrom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import (
    ANGSTROM_TO_BOHR,
    BOHR_TO_ANGSTROM,
    mass_of,
    number_of,
)


@dataclass(frozen=True)
class Atom:
    """A single atom: element symbol + position (bohr)."""

    symbol: str
    position: tuple[float, float, float]

    @property
    def number(self) -> int:
        return number_of(self.symbol)

    @property
    def mass(self) -> float:
        return mass_of(self.symbol)


@dataclass
class Geometry:
    """A molecular geometry.

    Parameters
    ----------
    symbols:
        Element symbols, length ``natoms``.
    coords:
        ``(natoms, 3)`` array in bohr.
    charge:
        Total molecular charge.
    labels:
        Optional per-atom metadata (e.g. residue index, atom name) used
        by the fragmenter. Stored as an arbitrary list aligned to atoms.
    """

    symbols: list[str]
    coords: np.ndarray
    charge: int = 0
    labels: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=float).reshape(-1, 3)
        if len(self.symbols) != self.coords.shape[0]:
            raise ValueError(
                f"symbol/coord length mismatch: {len(self.symbols)} vs "
                f"{self.coords.shape[0]}"
            )
        if self.labels and len(self.labels) != len(self.symbols):
            raise ValueError("labels must align with atoms")

    # --- constructors ------------------------------------------------------

    @classmethod
    def from_angstrom(
        cls,
        symbols: list[str],
        coords_angstrom,
        charge: int = 0,
        labels: list[dict] | None = None,
    ) -> "Geometry":
        coords = np.asarray(coords_angstrom, dtype=float) * ANGSTROM_TO_BOHR
        return cls(list(symbols), coords, charge=charge, labels=labels or [])

    @classmethod
    def from_atoms(cls, atoms: list[Atom], charge: int = 0) -> "Geometry":
        return cls(
            [a.symbol for a in atoms],
            np.array([a.position for a in atoms], dtype=float),
            charge=charge,
        )

    # --- basic properties ---------------------------------------------------

    @property
    def natoms(self) -> int:
        return len(self.symbols)

    @property
    def numbers(self) -> np.ndarray:
        return np.array([number_of(s) for s in self.symbols], dtype=int)

    @property
    def masses(self) -> np.ndarray:
        """Atomic masses in amu."""
        return np.array([mass_of(s) for s in self.symbols], dtype=float)

    @property
    def nelectrons(self) -> int:
        return int(self.numbers.sum()) - self.charge

    def coords_angstrom(self) -> np.ndarray:
        return self.coords * BOHR_TO_ANGSTROM

    # --- manipulation --------------------------------------------------------

    def displaced(self, atom: int, axis: int, delta: float) -> "Geometry":
        """Return a copy with atom ``atom`` moved by ``delta`` bohr along
        cartesian ``axis`` (0, 1, 2). Used by the DFPT displacement loop."""
        if not (0 <= atom < self.natoms):
            raise IndexError(f"atom index {atom} out of range")
        if axis not in (0, 1, 2):
            raise IndexError(f"axis must be 0, 1 or 2, got {axis}")
        coords = self.coords.copy()
        coords[atom, axis] += delta
        return Geometry(list(self.symbols), coords, self.charge, list(self.labels))

    def translated(self, shift) -> "Geometry":
        shift = np.asarray(shift, dtype=float).reshape(3)
        return Geometry(
            list(self.symbols), self.coords + shift, self.charge, list(self.labels)
        )

    def subset(self, indices) -> "Geometry":
        """Extract a sub-geometry by atom indices, preserving labels."""
        indices = list(indices)
        labels = [self.labels[i] for i in indices] if self.labels else []
        return Geometry(
            [self.symbols[i] for i in indices],
            self.coords[indices],
            charge=0,
            labels=labels,
        )

    def merged(self, other: "Geometry") -> "Geometry":
        """Concatenate two geometries (charges add, labels concatenate)."""
        labels: list[dict] = []
        if self.labels or other.labels:
            labels = (self.labels or [{} for _ in self.symbols]) + (
                other.labels or [{} for _ in other.symbols]
            )
        return Geometry(
            list(self.symbols) + list(other.symbols),
            np.vstack([self.coords, other.coords]),
            charge=self.charge + other.charge,
            labels=labels,
        )

    # --- physics helpers ------------------------------------------------------

    def nuclear_repulsion(self) -> float:
        """Nuclear-nuclear repulsion energy in hartree."""
        z = self.numbers.astype(float)
        e = 0.0
        for i in range(self.natoms):
            d = np.linalg.norm(self.coords[i + 1:] - self.coords[i], axis=1)
            if np.any(d < 1e-10):
                raise ValueError("coincident nuclei in geometry")
            e += float(np.sum(z[i] * z[i + 1:] / d))
        return e

    def center_of_mass(self) -> np.ndarray:
        m = self.masses
        return (m[:, None] * self.coords).sum(axis=0) / m.sum()

    def distance(self, i: int, j: int) -> float:
        return float(np.linalg.norm(self.coords[i] - self.coords[j]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Geometry(natoms={self.natoms}, charge={self.charge})"
