"""Cell-list neighbor search.

The QF decomposition needs, for a λ distance threshold (4 Å in the
paper), all pairs of *fragments* whose minimal inter-atomic distance is
within λ — for 100 M atoms this is only tractable with spatial hashing.
We implement a classic cell list over fragment atom sets: each atom is
binned into a cube of side λ, and only the 27 neighboring cells are
searched for partners.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np


def min_distance(coords_a: np.ndarray, coords_b: np.ndarray) -> float:
    """Minimal pairwise distance between two coordinate sets (brute force)."""
    a = np.asarray(coords_a, dtype=float).reshape(-1, 3)
    b = np.asarray(coords_b, dtype=float).reshape(-1, 3)
    d2 = np.sum((a[:, None, :] - b[None, :, :]) ** 2, axis=-1)
    return float(np.sqrt(d2.min()))


class CellList:
    """Spatial hash of points on a cubic grid of side ``cell_size``.

    Points are assigned integer cell coordinates; queries enumerate the
    27-cell neighborhood, so any pair within ``cell_size`` is guaranteed
    to be found (pairs slightly beyond may also be returned and must be
    distance-filtered by the caller, which :func:`pairs_within` does).
    """

    def __init__(self, coords: np.ndarray, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.coords = np.asarray(coords, dtype=float).reshape(-1, 3)
        self.cell_size = float(cell_size)
        self._cells: dict[tuple[int, int, int], list[int]] = defaultdict(list)
        keys = np.floor(self.coords / self.cell_size).astype(np.int64)
        for idx, key in enumerate(map(tuple, keys)):
            self._cells[key].append(idx)

    def __len__(self) -> int:
        return self.coords.shape[0]

    def neighbors_of_point(self, point: np.ndarray) -> list[int]:
        """Indices of stored points in the 27-cell neighborhood of ``point``."""
        point = np.asarray(point, dtype=float).reshape(3)
        base = tuple(np.floor(point / self.cell_size).astype(np.int64))
        out: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    key = (base[0] + dx, base[1] + dy, base[2] + dz)
                    bucket = self._cells.get(key)
                    if bucket:
                        out.extend(bucket)
        return out

    def pairs(self) -> Iterable[tuple[int, int]]:
        """Yield candidate point pairs (i < j) from neighboring cells.

        Distances are NOT checked here; callers filter.
        """
        offsets = [
            (dx, dy, dz)
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            for dz in (-1, 0, 1)
        ]
        # Only scan "forward" half of the offsets to avoid double counting
        # between distinct cells; same cell handled separately.
        forward = [o for o in offsets if o > (0, 0, 0)]
        for key, bucket in self._cells.items():
            # intra-cell pairs
            for ii in range(len(bucket)):
                for jj in range(ii + 1, len(bucket)):
                    yield (bucket[ii], bucket[jj])
            # inter-cell pairs with forward neighbors
            for off in forward:
                nk = (key[0] + off[0], key[1] + off[1], key[2] + off[2])
                other = self._cells.get(nk)
                if other:
                    for i in bucket:
                        for j in other:
                            yield (min(i, j), max(i, j))


def pairs_within(
    group_coords: Sequence[np.ndarray],
    threshold: float,
) -> list[tuple[int, int]]:
    """All group pairs (i < j) whose minimal inter-atomic distance ≤ threshold.

    Parameters
    ----------
    group_coords:
        A sequence of ``(n_i, 3)`` coordinate arrays, one per group
        (fragment). Units must match ``threshold``.
    threshold:
        The λ distance threshold.

    Notes
    -----
    Implementation: build a cell list over *all atoms* tagged with their
    group id, enumerate candidate atom pairs from neighboring cells, and
    keep group pairs with at least one atom pair within threshold. This
    is O(atoms) for liquids at fixed density, matching what the paper's
    master process must do when enumerating the 128 M water-water
    concaps.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    sizes = [np.asarray(c).reshape(-1, 3).shape[0] for c in group_coords]
    if any(s == 0 for s in sizes):
        raise ValueError("empty group in pairs_within")
    all_coords = np.vstack([np.asarray(c, dtype=float).reshape(-1, 3) for c in group_coords])
    owner = np.repeat(np.arange(len(group_coords)), sizes)

    cl = CellList(all_coords, cell_size=threshold)
    found: set[tuple[int, int]] = set()
    thr2 = threshold * threshold
    for i, j in cl.pairs():
        gi, gj = int(owner[i]), int(owner[j])
        if gi == gj:
            continue
        key = (gi, gj) if gi < gj else (gj, gi)
        if key in found:
            continue
        d = all_coords[i] - all_coords[j]
        if float(d @ d) <= thr2:
            found.add(key)
    return sorted(found)


def count_pairs_within(
    group_coords: Sequence[np.ndarray],
    threshold: float,
) -> int:
    """Count of λ-threshold group pairs (see :func:`pairs_within`)."""
    return len(pairs_within(group_coords, threshold))
