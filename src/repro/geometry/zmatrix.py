"""Internal-coordinate atom placement (NeRF).

The polypeptide builder constructs all-atom geometry from bond lengths,
angles, and dihedrals using the Natural Extension Reference Frame
algorithm: given three placed atoms a, b, c, a new atom d bonded to c
is positioned by (|cd|, angle(b,c,d), dihedral(a,b,c,d)).
"""

from __future__ import annotations

import math

import numpy as np


def place_atom(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    bond: float,
    angle_deg: float,
    dihedral_deg: float,
) -> np.ndarray:
    """Position atom d from reference atoms a-b-c.

    Parameters
    ----------
    a, b, c:
        Reference positions (any consistent length unit).
    bond:
        Distance |c-d| in the same unit.
    angle_deg:
        Angle b-c-d in degrees.
    dihedral_deg:
        Dihedral a-b-c-d in degrees (right-handed, IUPAC sign).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    theta = math.radians(angle_deg)
    phi = math.radians(dihedral_deg)

    bc = c - b
    bc_n = bc / np.linalg.norm(bc)
    ab = b - a
    n = np.cross(ab, bc_n)
    norm_n = np.linalg.norm(n)
    if norm_n < 1e-12:
        raise ValueError("collinear reference atoms in place_atom")
    n /= norm_n
    m = np.cross(n, bc_n)

    d_local = np.array(
        [
            -bond * math.cos(theta),
            bond * math.sin(theta) * math.cos(phi),
            bond * math.sin(theta) * math.sin(phi),
        ]
    )
    rot = np.column_stack([bc_n, m, n])
    return c + rot @ d_local


def dihedral_angle(p0, p1, p2, p3) -> float:
    """Dihedral angle p0-p1-p2-p3 in degrees (IUPAC sign convention;
    inverse of :func:`place_atom`). 0 = cis/eclipsed, ±180 = trans."""
    p0, p1, p2, p3 = (np.asarray(p, dtype=float) for p in (p0, p1, p2, p3))
    b0 = p0 - p1
    b1 = p2 - p1
    b2 = p3 - p2
    b1n = b1 / np.linalg.norm(b1)
    v = b0 - (b0 @ b1n) * b1n
    w = b2 - (b2 @ b1n) * b1n
    x = v @ w
    y = np.cross(b1n, v) @ w
    return math.degrees(math.atan2(y, x))


def bond_angle(p0, p1, p2) -> float:
    """Angle p0-p1-p2 in degrees."""
    p0, p1, p2 = (np.asarray(p, dtype=float) for p in (p0, p1, p2))
    u = p0 - p1
    v = p2 - p1
    cosang = (u @ v) / (np.linalg.norm(u) * np.linalg.norm(v))
    return math.degrees(math.acos(max(-1.0, min(1.0, cosang))))
