"""Water geometry generators.

The paper's evaluation uses three aqueous workloads: isolated water
fragments (each water molecule is a QF fragment), the "water dimer"
scaling system with uniform 6-atom fragments, and the 101,250,000-atom
pure-water box. We generate water molecules with the gas-phase
experimental geometry and boxes at liquid density on a jittered cubic
lattice (jitter avoids pathological symmetric pair distances while the
lattice guarantees no core overlaps).
"""

from __future__ import annotations

import math

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR
from repro.geometry.atoms import Geometry

#: experimental gas-phase water geometry
OH_BOND_ANGSTROM = 0.9572
HOH_ANGLE_DEG = 104.52

#: liquid water number density (molecules per cubic angstrom) at 298 K
WATER_NUMBER_DENSITY = 0.03334


def water_molecule(center=(0.0, 0.0, 0.0), rotation: np.ndarray | None = None) -> Geometry:
    """A single H2O at ``center`` (angstrom), optionally rotated.

    Returns a 3-atom :class:`Geometry` (coords in bohr) with atoms
    ordered O, H, H and labels marking the molecule as a water fragment.
    """
    half = math.radians(HOH_ANGLE_DEG) / 2.0
    local = np.array(
        [
            [0.0, 0.0, 0.0],
            [OH_BOND_ANGSTROM * math.sin(half), 0.0, OH_BOND_ANGSTROM * math.cos(half)],
            [-OH_BOND_ANGSTROM * math.sin(half), 0.0, OH_BOND_ANGSTROM * math.cos(half)],
        ]
    )
    if rotation is not None:
        rotation = np.asarray(rotation, dtype=float).reshape(3, 3)
        local = local @ rotation.T
    coords = local + np.asarray(center, dtype=float).reshape(3)
    labels = [{"kind": "water", "name": n} for n in ("O", "H1", "H2")]
    return Geometry.from_angstrom(["O", "H", "H"], coords, labels=labels)


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """A uniformly random 3x3 rotation matrix (QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def water_dimer(separation_angstrom: float = 2.9) -> Geometry:
    """A hydrogen-bonded water dimer (the paper's uniform 6-atom fragment).

    Donor O-H axis aligned with the O···O axis (+z), acceptor hydrogens
    pointing away — the near-linear hydrogen-bond motif, which binds at
    every level of theory used here. ``separation_angstrom`` is the O-O
    distance (experimental ≈ 2.98 Å).
    """
    half = math.radians(HOH_ANGLE_DEG) / 2.0
    # rotate the donor about y by -half so H1 points along +z
    ry = np.array(
        [
            [math.cos(half), 0.0, -math.sin(half)],
            [0.0, 1.0, 0.0],
            [math.sin(half), 0.0, math.cos(half)],
        ]
    )
    donor = water_molecule(rotation=ry)
    acceptor = water_molecule(center=(0.0, 0.0, separation_angstrom))
    return donor.merged(acceptor)


def water_box(
    n_molecules: int,
    density: float = WATER_NUMBER_DENSITY,
    jitter: float = 0.25,
    seed: int = 0,
) -> list[Geometry]:
    """Generate ``n_molecules`` waters in a cube at the given density.

    Molecules sit on a cubic lattice with random orientations and
    positional jitter (angstrom). Returns a list of single-molecule
    geometries — each water is its own QF fragment, matching the paper.
    """
    if n_molecules <= 0:
        raise ValueError("n_molecules must be positive")
    rng = np.random.default_rng(seed)
    spacing = (1.0 / density) ** (1.0 / 3.0)
    side_cells = int(math.ceil(n_molecules ** (1.0 / 3.0)))
    waters: list[Geometry] = []
    for ix in range(side_cells):
        for iy in range(side_cells):
            for iz in range(side_cells):
                if len(waters) >= n_molecules:
                    return waters
                center = (
                    np.array([ix, iy, iz], dtype=float) * spacing
                    + rng.uniform(-jitter, jitter, size=3)
                )
                waters.append(
                    water_molecule(center=center, rotation=random_rotation(rng))
                )
    return waters


def water_box_stats(n_molecules: int, threshold_angstrom: float = 4.0,
                    density: float = WATER_NUMBER_DENSITY) -> dict:
    """Closed-form bookkeeping for a water box too large to materialize.

    For a homogeneous liquid, the expected number of neighbors of one
    molecule within ``r`` of its oxygen is ``rho * 4/3 pi r_eff^3`` where
    ``r_eff`` extends the center threshold by the molecular extent
    (minimal *atom-atom* distance ≤ λ reaches centers ~λ + 2·r_OH apart).
    This is how we report pair counts for the 101,250,000-atom box
    without building it (DESIGN.md, substitutions).
    """
    r_eff = threshold_angstrom + 2.0 * OH_BOND_ANGSTROM
    neighbors = density * (4.0 / 3.0) * math.pi * r_eff ** 3
    expected_pairs = 0.5 * n_molecules * neighbors
    return {
        "n_molecules": n_molecules,
        "n_atoms": 3 * n_molecules,
        "box_side_angstrom": (n_molecules / density) ** (1.0 / 3.0),
        "expected_ww_pairs": expected_pairs,
        "pairs_per_molecule": neighbors,
    }
