"""Geometry optimization with analytic gradients.

Vibrational analysis by finite differences is only meaningful at a
stationary point (otherwise rotations contaminate the spectrum as
spurious imaginary modes), so every fragment is relaxed before the
displacement loop. BFGS over the flattened cartesian coordinates with
the analytic RHF gradient; scipy's implementation handles the line
search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.dfpt.gradient import gradient
from repro.geometry.atoms import Geometry
from repro.scf.rhf import RHF


@dataclass
class OptimizationResult:
    geometry: Geometry
    energy: float
    grad_max: float
    niter: int
    converged: bool


def optimize_geometry(
    geometry: Geometry,
    basis_name: str = "sto-3g",
    eri_mode: str = "auto",
    gtol: float = 3.0e-4,
    max_iter: int = 200,
) -> OptimizationResult:
    """Relax ``geometry`` to an RHF minimum; returns the final state.

    ``gtol`` is the max-abs gradient threshold in hartree/bohr (3e-4 is
    tight enough that FD Hessians show no spurious imaginary modes
    above ~50 cm^-1).
    """
    symbols = list(geometry.symbols)
    charge = geometry.charge
    labels = list(geometry.labels)
    last_density = {"p": None}
    neval = {"n": 0}

    def make(coords_flat: np.ndarray) -> Geometry:
        return Geometry(symbols, coords_flat.reshape(-1, 3), charge, labels)

    def fun(coords_flat: np.ndarray):
        geom = make(coords_flat)
        scf = RHF(geom, basis_name=basis_name, eri_mode=eri_mode).run(
            guess_density=last_density["p"]
        )
        if not scf.converged:
            scf = RHF(geom, basis_name=basis_name, eri_mode=eri_mode).run()
        last_density["p"] = scf.density
        neval["n"] += 1
        g = gradient(scf)
        return scf.energy, g.ravel()

    res = scipy.optimize.minimize(
        fun,
        geometry.coords.ravel(),
        jac=True,
        method="BFGS",
        options={"gtol": gtol, "maxiter": max_iter, "norm": np.inf},
    )
    final = make(res.x)
    return OptimizationResult(
        geometry=final,
        energy=float(res.fun),
        grad_max=float(np.abs(res.jac).max()),
        niter=neval["n"],
        converged=bool(res.success) or float(np.abs(res.jac).max()) < 10 * gtol,
    )
