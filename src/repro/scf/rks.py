"""Restricted Kohn-Sham (LDA) on the Becke grid.

The DFT mode of the fragment engine. The Fock build follows the
paper's worker phases literally: density on the real-space grid,
Coulomb through density fitting (the Poisson role), exchange-
correlation potential integrated back into the Hamiltonian. The
corresponding response path (CPKS with the LDA kernel) lives in
:mod:`repro.dfpt.cphf`, which dispatches on the ``xc`` extras set here.

Scope note (DESIGN.md): RKS provides energies, densities, and
polarizabilities; analytic RKS gradients (grid-weight derivatives) are
out of scope, so the spectra pipeline uses RHF.
"""

from __future__ import annotations

import numpy as np

from repro.devtools.contracts import (
    ContractViolation,
    check_array,
    sanitize_enabled,
)
from repro.geometry.atoms import Geometry
from repro.obs.counters import counters
from repro.scf.grid import build_grid, density_on_grid, evaluate_basis
from repro.scf.rhf import RHF
from repro.scf.xc import lda_kernel, lda_xc


class RKS(RHF):
    """LDA (Slater + VWN5) Kohn-Sham SCF."""

    def __init__(
        self,
        geometry: Geometry,
        radial_points: int = 50,
        angular_order: int = 26,
        **kwargs,
    ):
        kwargs.setdefault("eri_mode", "df")
        super().__init__(geometry, **kwargs)
        self.grid = build_grid(
            geometry, radial_points=radial_points, angular_order=angular_order
        )
        self.chi = evaluate_basis(self.basis, self.grid.points)
        self._exc_last = 0.0
        self._vxc_trace_last = 0.0

    # -- Fock / energy ---------------------------------------------------------

    def _fock(self, h, density, c_occ=None):
        if self.eri_mode == "exact":
            j = np.einsum("abcd,cd->ab", self._eri, density)
        else:
            j = self._df.coulomb(density)
        counters().inc("xc.fock_builds")
        counters().inc("xc.grid_points", self.grid.weights.size)
        rho = density_on_grid(self.chi, density)
        e_dens, v = lda_xc(rho)
        wv = self.grid.weights * v
        vxc = (self.chi * wv[:, None]).T @ self.chi
        self._exc_last = float(np.sum(self.grid.weights * e_dens))
        self._vxc_trace_last = float(np.sum(density * vxc))
        return h + j + vxc

    def _energy(self, density, h, f, e_nuc) -> float:
        # E = sum P h + 1/2 sum P J + Exc; with F = h + J + Vxc:
        # 1/2 P (h + F) = P h + 1/2 P J + 1/2 P Vxc, so correct by
        # Exc - 1/2 tr(P Vxc).
        base = 0.5 * float(np.sum(density * (h + f)))
        return base + self._exc_last - 0.5 * self._vxc_trace_last + e_nuc

    def run(self, guess_density=None):
        result = super().run(guess_density=guess_density)
        rho = density_on_grid(self.chi, result.density)
        if sanitize_enabled():
            # a negative or NaN grid density poisons the LDA kernel and
            # therefore every CPKS response built on this state
            ctx = f"rks natoms={self.geometry.natoms} grid={rho.size}"
            check_array("rho_grid", rho, context=ctx)
            if float(rho.min()) < -1.0e-10:
                raise ContractViolation(
                    f"grid density has negative values "
                    f"(min {float(rho.min()):.3e})",
                    name="rho_grid", rule="nonnegative", context=ctx,
                )
        result.extras["xc"] = {
            "name": "lda",
            "grid": self.grid,
            "chi": self.chi,
            "rho": rho,
            "fxc": lda_kernel(rho),
            "exc": self._exc_last,
        }
        return result
