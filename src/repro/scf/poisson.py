"""FFT Poisson solver on a uniform box grid.

The third phase of the paper's DFPT worker cycle solves the Poisson
equation for the electrostatic response potential v(1)_es from the
response density n(1)(r). On a uniform grid with zero-padding (to
suppress periodic images), nabla^2 v = -4 pi n is solved spectrally:
v_k = 4 pi n_k / |k|^2.

This is the real substrate behind the "poisson" phase of the Table I
kernel benchmark; accuracy is validated against the analytic potential
of a Gaussian charge (erf(sqrt(a) r)/r) in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class UniformGrid:
    """A cubic uniform grid: origin + n^3 points with spacing h (bohr)."""

    origin: np.ndarray
    n: int
    h: float

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.n, self.n, self.n)

    def axes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        ax = self.origin[0] + self.h * np.arange(self.n)
        ay = self.origin[1] + self.h * np.arange(self.n)
        az = self.origin[2] + self.h * np.arange(self.n)
        return ax, ay, az

    def points(self) -> np.ndarray:
        ax, ay, az = self.axes()
        g = np.stack(np.meshgrid(ax, ay, az, indexing="ij"), axis=-1)
        return g.reshape(-1, 3)

    @property
    def volume_element(self) -> float:
        return self.h ** 3


def grid_for_geometry(coords_bohr: np.ndarray, n: int = 64,
                      margin: float = 6.0) -> UniformGrid:
    """A cube covering the coordinates plus ``margin`` bohr."""
    coords = np.asarray(coords_bohr, dtype=float).reshape(-1, 3)
    lo = coords.min(axis=0) - margin
    hi = coords.max(axis=0) + margin
    side = float((hi - lo).max())
    h = side / (n - 1)
    center = 0.5 * (lo + hi)
    origin = center - 0.5 * side
    return UniformGrid(origin=origin, n=n, h=h)


#: average of 1/|r| over a unit cube centered at the origin — the
#: standard self-cell value for the discretized Coulomb kernel
_SELF_CELL = 2.3800774


def solve_poisson(density: np.ndarray, h: float, pad_factor: int = 2
                  ) -> np.ndarray:
    """Solve nabla^2 v = -4 pi n with free (open) boundary conditions.

    Hockney's method: zero-pad the density to ``pad_factor * n`` and
    convolve with the free-space Coulomb kernel G(r) = 1/|r| sampled on
    the padded grid with minimum-image distances (the self cell uses
    the analytic cube average of 1/r). Because the source occupies at
    most half the padded box in every dimension, the circular
    convolution equals the free-space one exactly — no periodic-image
    or zero-mean-gauge artifacts, unlike a bare 4 pi / k^2 solve.
    """
    density = np.asarray(density, dtype=float)
    n = density.shape[0]
    if density.shape != (n, n, n):
        raise ValueError("density must be a cube")
    if pad_factor < 2:
        raise ValueError("pad_factor must be >= 2 for an exact convolution")
    npad = pad_factor * n
    work = np.zeros((npad, npad, npad))
    work[:n, :n, :n] = density

    # minimum-image radial distances on the padded periodic grid
    idx = np.fft.fftfreq(npad, d=1.0 / npad)  # 0, 1, ..., -1 pattern
    x = idx * h
    r2 = x[:, None, None] ** 2 + x[None, :, None] ** 2 + x[None, None, :] ** 2
    with np.errstate(divide="ignore"):
        green = 1.0 / np.sqrt(r2)
    green[0, 0, 0] = _SELF_CELL / h
    v = np.fft.irfftn(
        np.fft.rfftn(work) * np.fft.rfftn(green),
        s=(npad, npad, npad), axes=(0, 1, 2),
    ) * h ** 3
    return v[:n, :n, :n]


def gaussian_density(grid: UniformGrid, center, alpha: float, charge: float = 1.0
                     ) -> np.ndarray:
    """Normalized Gaussian charge density on the grid (test workload)."""
    pts = grid.points()
    r2 = np.sum((pts - np.asarray(center)[None, :]) ** 2, axis=1)
    rho = charge * (alpha / np.pi) ** 1.5 * np.exp(-alpha * r2)
    return rho.reshape(grid.shape)


def gaussian_potential_exact(grid: UniformGrid, center, alpha: float,
                             charge: float = 1.0) -> np.ndarray:
    """Analytic potential of the Gaussian charge: q erf(sqrt(a) r)/r."""
    from scipy.special import erf

    pts = grid.points()
    r = np.sqrt(np.sum((pts - np.asarray(center)[None, :]) ** 2, axis=1))
    small = r < 1e-10
    rs = np.where(small, 1.0, r)
    v = charge * erf(np.sqrt(alpha) * rs) / rs
    v = np.where(small, charge * 2.0 * np.sqrt(alpha / np.pi), v)
    return v.reshape(grid.shape)
