"""LDA exchange-correlation (Slater exchange + VWN5 correlation).

The DFT mode of the fragment engine (the paper uses PBE in FHI-aims;
LDA keeps the grid machinery identical while avoiding density-gradient
plumbing — DESIGN.md documents the substitution). Functional values
and potentials are evaluated pointwise on the Becke grid.
"""

from __future__ import annotations

import numpy as np

#: Slater exchange constant Cx = (3/4)(3/pi)^{1/3}
_CX = 0.7385587663820224

# VWN5 parametrization (paramagnetic)
_VWN_A = 0.0310907
_VWN_B = 3.72744
_VWN_C = 12.9352
_VWN_X0 = -0.10498


def slater_exchange(rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(energy density e_x(rho), potential v_x(rho)) for the spin-
    compensated LDA exchange: e_x = -Cx rho^{4/3}, v_x = -(4/3)Cx rho^{1/3}."""
    rho = np.clip(np.asarray(rho, dtype=float), 0.0, None)
    r13 = rho ** (1.0 / 3.0)
    e = -_CX * rho * r13
    v = -(4.0 / 3.0) * _CX * r13
    return e, v


def _vwn_xfun(x: float | np.ndarray) -> np.ndarray:
    return x ** 2 + _VWN_B * x + _VWN_C


def vwn_correlation(rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(energy density, potential) of VWN5 correlation (closed shell).

    eps_c(r_s) with x = sqrt(r_s); v_c = eps_c - (r_s/3) d eps_c/d r_s.
    """
    rho = np.clip(np.asarray(rho, dtype=float), 1e-300, None)
    rs = (3.0 / (4.0 * np.pi * rho)) ** (1.0 / 3.0)
    x = np.sqrt(rs)
    xf = _vwn_xfun(x)
    x0f = _vwn_xfun(_VWN_X0)
    q = np.sqrt(4.0 * _VWN_C - _VWN_B ** 2)
    atan_term = np.arctan(q / (2.0 * x + _VWN_B))
    eps = _VWN_A * (
        np.log(x ** 2 / xf)
        + 2.0 * _VWN_B / q * atan_term
        - _VWN_B * _VWN_X0 / x0f * (
            np.log((x - _VWN_X0) ** 2 / xf)
            + 2.0 * (_VWN_B + 2.0 * _VWN_X0) / q * atan_term
        )
    )
    # d eps / d x
    deps_dx = _VWN_A * (
        2.0 / x
        - (2.0 * x + _VWN_B) / xf
        - 4.0 * _VWN_B / (q ** 2 + (2.0 * x + _VWN_B) ** 2)
        - _VWN_B * _VWN_X0 / x0f * (
            2.0 / (x - _VWN_X0)
            - (2.0 * x + _VWN_B) / xf
            - 4.0 * (_VWN_B + 2.0 * _VWN_X0)
            / (q ** 2 + (2.0 * x + _VWN_B) ** 2)
        )
    )
    # v_c = eps - (rs/3) deps/drs;  deps/drs = deps_dx / (2 x)
    v = eps - (rs / 3.0) * deps_dx / (2.0 * x)
    e = eps * rho
    zero = rho < 1e-12
    e = np.where(zero, 0.0, e)
    v = np.where(zero, 0.0, v)
    return e, v


def lda_xc(rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Combined Slater + VWN5: (energy density array, potential array)."""
    ex, vx = slater_exchange(rho)
    ec, vc = vwn_correlation(rho)
    return ex + ec, vx + vc


def lda_kernel(rho: np.ndarray) -> np.ndarray:
    """f_xc = d v_xc / d rho, the LDA response kernel used by CPKS.

    Computed by tight central differences of the potential — exact
    enough (1e-9 relative) for the coupled-perturbed iterations while
    keeping the code one obvious formula.
    """
    rho = np.clip(np.asarray(rho, dtype=float), 1e-12, None)
    h = 1e-6 * np.maximum(rho, 1e-6)
    _, vp = lda_xc(rho + h)
    _, vm = lda_xc(rho - h)
    return (vp - vm) / (2.0 * h)
