"""Restricted Hartree–Fock.

The per-fragment, per-displacement ground-state solver of the QF-RAMAN
worker (the paper's FHI-aims DFT step; see DESIGN.md substitutions).
Supports exact four-index ERIs (small systems / validation) and
density-fitted Coulomb/exchange (production fragments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.basis.gaussian import BasisSet, build_basis
from repro.devtools.contracts import check_array, sanitize_enabled
from repro.geometry.atoms import Geometry
from repro.integrals.engine import IntegralEngine
from repro.obs.counters import counters
from repro.obs.tracer import get_tracer
from repro.scf.df import DensityFitting, auto_aux_basis
from repro.scf.diis import DIIS


@dataclass
class SCFResult:
    """Converged SCF state (everything downstream steps need)."""

    energy: float
    energy_nuc: float
    mo_coeff: np.ndarray
    mo_energy: np.ndarray
    density: np.ndarray
    fock: np.ndarray
    overlap: np.ndarray
    hcore: np.ndarray
    nocc: int
    converged: bool
    niter: int
    geometry: Geometry = None
    basis: BasisSet = None
    engine: IntegralEngine = None
    df: DensityFitting | None = None
    eri: np.ndarray | None = None
    extras: dict = field(default_factory=dict)

    @property
    def c_occ(self) -> np.ndarray:
        return self.mo_coeff[:, : self.nocc]

    @property
    def c_virt(self) -> np.ndarray:
        return self.mo_coeff[:, self.nocc:]


def orthogonalizer(s: np.ndarray, threshold: float = 1e-8) -> np.ndarray:
    """Symmetric (Löwdin) orthogonalizer S^{-1/2} with linear-dependence
    screening: eigenvectors below ``threshold`` are projected out."""
    evals, evecs = np.linalg.eigh(s)
    keep = evals > threshold
    return evecs[:, keep] / np.sqrt(evals[keep])


class RHF:
    """Restricted Hartree–Fock driver.

    Parameters
    ----------
    geometry:
        Closed-shell molecular geometry (even electron count).
    basis_name:
        Orbital basis registry name.
    eri_mode:
        ``"exact"``, ``"df"``, or ``"auto"`` (exact below
        ``exact_nbf_limit`` basis functions, DF above).
    schwarz_cutoff:
        Schwarz screening threshold for the two-electron integrals
        (see :class:`~repro.integrals.engine.IntegralEngine`). The
        default 1e-12 is far below SCF convergence noise; pass 0 to
        disable screening entirely.
    """

    def __init__(
        self,
        geometry: Geometry,
        basis_name: str = "sto-3g",
        eri_mode: str = "auto",
        exact_nbf_limit: int = 30,
        conv_tol: float = 1e-9,
        conv_tol_diis: float = 1e-7,
        max_iter: int = 120,
        field_vector: np.ndarray | None = None,
        schwarz_cutoff: float = 1.0e-12,
    ):
        if geometry.nelectrons % 2 != 0:
            raise ValueError(
                f"RHF needs an even electron count, got {geometry.nelectrons}"
            )
        if eri_mode not in ("exact", "df", "auto"):
            raise ValueError(f"unknown eri_mode {eri_mode!r}")
        self.geometry = geometry
        self.basis = build_basis(geometry, basis_name)
        self.engine = IntegralEngine(
            self.basis, geometry.numbers.astype(float), geometry.coords,
            schwarz_cutoff=schwarz_cutoff,
        )
        if eri_mode == "auto":
            eri_mode = "exact" if self.basis.nbf <= exact_nbf_limit else "df"
        self.eri_mode = eri_mode
        self.conv_tol = conv_tol
        self.conv_tol_diis = conv_tol_diis
        self.max_iter = max_iter
        self.nocc = geometry.nelectrons // 2
        #: uniform external electric field (adds -F.r to the core
        #: Hamiltonian); used by finite-field polarizability validation
        self.field_vector = field_vector

        self._df: DensityFitting | None = None
        self._eri: np.ndarray | None = None

    # -- integral preparation --------------------------------------------------

    def _prepare(self):
        s = self.engine.overlap()
        h = self.engine.kinetic() + self.engine.nuclear()
        if self.field_vector is not None:
            dip = self.engine.dipole()
            # H' = +F·r per electron (E_field = -mu·F with mu = -r)
            h = h + np.einsum("x,xab->ab", np.asarray(self.field_vector), dip)
        if self.eri_mode == "exact":
            self._eri = self.engine.eri()
        else:
            aux = auto_aux_basis(self.geometry, self.basis)
            self._df = DensityFitting(self.engine, aux)
        return s, h

    def _energy(self, density, h, f, e_nuc) -> float:
        """Total energy functional; RKS overrides (XC is not linear in P)."""
        return 0.5 * float(np.sum(density * (h + f))) + e_nuc

    def _fock(self, h, density, c_occ=None):
        """Fock matrix for a density; uses the occupied-orbital exchange
        build when ``c_occ`` is available (cheaper for DF)."""
        if self.eri_mode == "exact":
            j = np.einsum("abcd,cd->ab", self._eri, density)
            k = np.einsum("acbd,cd->ab", self._eri, density)
        else:
            j = self._df.coulomb(density)
            if c_occ is not None:
                k = self._df.exchange(c_occ)
            else:
                k = self._df.exchange_density(density)
        return h + j - 0.5 * k

    # -- driver ------------------------------------------------------------------

    def run(self, guess_density: np.ndarray | None = None) -> SCFResult:
        """Run the SCF to convergence; returns an :class:`SCFResult`.

        ``guess_density`` (e.g. the converged density of an undisplaced
        geometry) substantially cuts iteration counts in the DFPT
        displacement loop.
        """
        with get_tracer().span(
            "scf", natoms=self.geometry.natoms, nbf=self.basis.nbf,
            mode=self.eri_mode, seeded=guess_density is not None,
        ) as sp:
            result = self._solve(guess_density)
            sp.set(niter=result.niter, converged=result.converged)
        counters().inc("scf.runs")
        counters().inc("scf.iterations", result.niter)
        if not result.converged:
            counters().inc("scf.unconverged")
        return result

    def _solve(self, guess_density: np.ndarray | None = None) -> SCFResult:
        s, h = self._prepare()
        x = orthogonalizer(s)
        e_nuc = self.geometry.nuclear_repulsion()

        def diag(f):
            fp = x.T @ f @ x
            evals, evecs = np.linalg.eigh(fp)
            c = x @ evecs
            return evals, c

        if guess_density is None:
            # generalized Wolfsberg-Helmholz guess: much closer to the
            # converged density than bare core-H for molecules
            hd = np.diag(h)
            gwh = 0.875 * s * (hd[:, None] + hd[None, :])
            np.fill_diagonal(gwh, hd)
            mo_e, c = diag(gwh)
            density = 2.0 * c[:, : self.nocc] @ c[:, : self.nocc].T
            c_occ = c[:, : self.nocc]
        else:
            density = np.asarray(guess_density, dtype=float)
            c = None
            c_occ = None  # first Fock falls back to density-based exchange

        diis = DIIS()
        energy = 0.0
        converged = False
        it = 0
        for it in range(1, self.max_iter + 1):
            f = self._fock(h, density, c_occ)
            e_new = self._energy(density, h, f, e_nuc)
            err = diis.push(f, density, s)
            f_use = diis.extrapolate() if diis.nvec >= 2 else f
            mo_e, c = diag(f_use)
            c_occ = c[:, : self.nocc]
            density_new = 2.0 * c_occ @ c_occ.T
            de = abs(e_new - energy)
            energy = e_new
            density = density_new
            if de < self.conv_tol and err < self.conv_tol_diis and it > 1:
                converged = True
                break

        c_occ = c[:, : self.nocc]
        f = self._fock(h, density, c_occ)
        energy = self._energy(density, h, f, e_nuc)
        return self._pack_result(
            energy, e_nuc, c, mo_e, density, f, s, h, converged, it
        )

    def _pack_result(self, energy, e_nuc, c, mo_e, density, f, s, h,
                     converged, it) -> SCFResult:
        if sanitize_enabled():
            # the invariants every downstream consumer (gradient, CPHF,
            # DFPT displacement loop) silently assumes of an SCF state
            nbf = s.shape[0]
            ctx = (f"scf natoms={self.geometry.natoms} nbf={nbf} "
                   f"mode={self.eri_mode}")
            check_array("overlap", s, symmetric=True, shape=(nbf, nbf),
                        context=ctx)
            check_array("fock", f, symmetric=True, shape=(nbf, nbf),
                        context=ctx)
            check_array("density", density, symmetric=True,
                        shape=(nbf, nbf), context=ctx)
            check_array("mo_energy", mo_e, context=ctx)
        return SCFResult(
            energy=energy,
            energy_nuc=e_nuc,
            mo_coeff=c,
            mo_energy=mo_e,
            density=density,
            fock=f,
            overlap=s,
            hcore=h,
            nocc=self.nocc,
            converged=converged,
            niter=it,
            geometry=self.geometry,
            basis=self.basis,
            engine=self.engine,
            df=self._df,
            eri=self._eri,
        )

