"""Self-consistent field engine.

Restricted Hartree–Fock with DIIS convergence acceleration over the
exact ERI tensor (small fragments) or density-fitted Coulomb/exchange
builds (the production path for QF fragments), plus a restricted
Kohn–Sham (LDA) mode using the real-space grid machinery in
:mod:`repro.scf.grid` / :mod:`repro.scf.xc`.
"""

from repro.scf.rhf import RHF, SCFResult
from repro.scf.df import DensityFitting, auto_aux_basis

__all__ = ["RHF", "SCFResult", "DensityFitting", "auto_aux_basis"]
