"""Density fitting (resolution of the identity) for Coulomb/exchange.

Exact four-index ERIs scale as nbf^4 in time and memory; fragment SCF
in the QF pipeline instead expands orbital products in an atom-centered
auxiliary basis:

    (ab|cd) ~= sum_PQ (ab|P) [V^-1]_PQ (Q|cd),   V_PQ = (P|Q)

The auxiliary set is generated automatically from the orbital basis
("AutoAux"-style even-tempered series spanning the Gaussian-product
exponent range, with angular momenta up to 2*l_max of the element).
This keeps the per-displacement integral cost cubic, which is what
makes the 6N-displacement DFPT loop affordable — the same motivation
as the paper's per-fragment kernel optimizations (§V-D).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.linalg

from repro.basis.gaussian import BasisSet, make_shell
from repro.geometry.atoms import Geometry
from repro.integrals.batched import scatter_pairs_aux
from repro.integrals.engine import IntegralEngine, single_shell_blocks


def _even_tempered(lo: float, hi: float, beta: float) -> list[float]:
    """Geometric exponent series covering [lo, hi] with ratio beta."""
    if lo > hi:
        lo, hi = hi, lo
    n = max(1, int(math.ceil(math.log(hi / lo) / math.log(beta))) + 1)
    if n == 1:
        return [math.sqrt(lo * hi)]
    ratio = (hi / lo) ** (1.0 / (n - 1))
    return [lo * ratio ** k for k in range(n)]


#: per-l scaling of the fitted exponent window: high-l products are
#: dominated by valence-valence overlaps, so the window shrinks.
#: (beta=4.0 with these windows gives ~1-2 mHa absolute DF error on the
#: molecules in the test suite at naux ~ 4x nbf; frequencies, which are
#: curvature differences on a consistent surface, agree with exact-ERI
#: results to a few cm^-1 — validated in tests/dfpt/test_hessian.py.)
_L_WINDOW = {0: (1.0, 1.0), 1: (1.0, 0.15), 2: (1.0, 0.04), 3: (1.0, 0.02)}

#: per-l even-tempered ratio: d-fits tolerate a sparser series, which
#: matters because each d shell costs six functions.
_L_BETA = {0: 1.0, 1: 1.0, 2: 2.2, 3: 2.2}


def auto_aux_basis(
    geometry: Geometry,
    orbital_basis: BasisSet,
    beta: float = 4.0,
) -> BasisSet:
    """Generate an even-tempered auxiliary basis for ``geometry``.

    For each atom, the candidate exponent window is the range of
    Gaussian-product exponents (sums of orbital primitive exponent
    pairs on that atom); one even-tempered series is laid per auxiliary
    angular momentum 0..2*lmax.
    """
    # collect orbital exponents per atom
    by_atom: dict[int, tuple[list[float], int]] = {}
    for sh in orbital_basis.shells:
        exps, lmax = by_atom.get(sh.atom_index, ([], 0))
        exps = exps + list(sh.exps)
        by_atom[sh.atom_index] = (exps, max(lmax, sh.l))
    aux_shells = []
    for atom_index in sorted(by_atom):
        exps, lmax = by_atom[atom_index]
        emin, emax = 2.0 * min(exps), 2.0 * max(exps)
        center = geometry.coords[atom_index]
        for l_aux in range(0, 2 * lmax + 1):
            f_lo, f_hi = _L_WINDOW.get(l_aux, (1.0, 0.02))
            lo = emin * f_lo
            hi = max(lo * 1.001, emax * f_hi)
            beta_l = beta * _L_BETA.get(l_aux, 2.0)
            for alpha in _even_tempered(lo, hi, beta_l):
                aux_shells.append(
                    make_shell(l_aux, center, [alpha], [1.0], atom_index)
                )
    return BasisSet(aux_shells)


class DensityFitting:
    """DF tensors for one geometry/basis pair.

    Attributes
    ----------
    j3c:
        Three-center integrals (ab|P), shape (nbf, nbf, naux).
    v2c:
        Two-center Coulomb metric (P|Q), shape (naux, naux).
    b:
        Cholesky-whitened three-center tensor: (ab|cd) ~= b_ab . b_cd.
    """

    def __init__(self, engine: IntegralEngine, aux: BasisSet):
        self.engine = engine
        self.aux = aux
        self.naux = aux.nbf
        self.aux_blocks = single_shell_blocks(aux.shells, aux.offsets)
        self.j3c = self._build_3c()
        self.v2c = self._build_2c()
        # whiten: V = L L^T, b = j3c L^{-T}
        jitter = 0.0
        for _ in range(6):
            try:
                chol = scipy.linalg.cholesky(
                    self.v2c + jitter * np.eye(self.naux), lower=True
                )
                break
            except scipy.linalg.LinAlgError:
                jitter = max(jitter * 10.0, 1e-10)
        else:  # pragma: no cover - pathological aux basis
            raise RuntimeError("DF metric not positive definite")
        nbf = engine.nbf
        flat = self.j3c.reshape(nbf * nbf, self.naux)
        self.b = scipy.linalg.solve_triangular(
            chol, flat.T, lower=True
        ).T.reshape(nbf, nbf, self.naux)

    # -- integral builds ------------------------------------------------------

    def _build_3c(self) -> np.ndarray:
        nbf = self.engine.nbf
        out = np.zeros((nbf, nbf, self.naux))
        # Schwarz screening of (ab|P): bound sqrt((ab|ab)) sqrt((P|P)).
        # Orbital pairs with negligible pair density never touch any
        # auxiliary function, which is where production fragments spend
        # their integral time.
        screened = self.engine.schwarz_cutoff > 0.0
        q_orb = self.engine._bounds_self() if screened else None
        q_aux = self.engine.schwarz_bounds(self.aux_blocks) if screened else None
        for bi, bra in enumerate(self.engine.blocks):
            for ki, ket in enumerate(self.aux_blocks):
                vals = self.engine.coulomb_block(
                    bra, ket,
                    q_bra=q_orb[bi] if screened else None,
                    q_ket=q_aux[ki] if screened else None,
                )
                # vals: (npb, na, nb, npk, nc, 1)
                na, nb = vals.shape[1], vals.shape[2]
                nc = vals.shape[4]
                if self.engine.kernels == "batched":
                    scatter_pairs_aux(out, bra, ket, vals[:, :, :, :, :, 0])
                    continue
                for rb in range(bra.npair):  # qf: shell-loop — scalar reference scatter
                    oa, ob = bra.off_a[rb], bra.off_b[rb]
                    for rk in range(ket.npair):
                        oc = ket.off_a[rk]
                        blockv = vals[rb, :, :, rk, :, 0]
                        out[oa: oa + na, ob: ob + nb, oc: oc + nc] = blockv
                        if oa != ob:
                            out[ob: ob + nb, oa: oa + na, oc: oc + nc] = (
                                blockv.transpose(1, 0, 2)
                            )
        return out

    def _build_2c(self) -> np.ndarray:
        # Deliberately scalar in both kernel modes: on the bra==ket
        # diagonal both (rb, rk) and (rk, rb) write the same (P, Q) and
        # (Q, P) entries, so the result depends on this loop's
        # last-write-wins order — a vectorized fancy-index scatter would
        # leave the duplicate order undefined.
        out = np.zeros((self.naux, self.naux))
        for i, bra in enumerate(self.aux_blocks):
            for j, ket in enumerate(self.aux_blocks):
                if j < i:
                    continue
                vals = self.engine.coulomb_block(bra, ket)
                na = vals.shape[1]
                nc = vals.shape[4]
                for rb in range(bra.npair):  # qf: shell-loop — overlapping-image scatter needs ordered writes
                    oa = bra.off_a[rb]
                    for rk in range(ket.npair):
                        oc = ket.off_a[rk]
                        blockv = vals[rb, :, 0, rk, :, 0]
                        out[oa: oa + na, oc: oc + nc] = blockv
                        out[oc: oc + nc, oa: oa + na] = blockv.T
        return out

    # -- Fock builds ----------------------------------------------------------

    def coulomb(self, density: np.ndarray) -> np.ndarray:
        """Coulomb matrix J_ab = sum_cd P_cd (ab|cd)_DF."""
        nbf = density.shape[0]
        gamma = self.b.reshape(nbf * nbf, self.naux).T @ density.ravel()
        return (self.b.reshape(nbf * nbf, self.naux) @ gamma).reshape(nbf, nbf)

    def exchange(self, c_occ: np.ndarray) -> np.ndarray:
        """Exchange matrix K_ab = sum_cd P_cd (ac|bd)_DF for the density
        P = 2 C_occ C_occ^T (the factor 2 is included here).

        BLAS-backed: t_{a,iP} = sum_b b_{abP} C_bi, K = 2 t t^T.
        """
        nbf = self.b.shape[0]
        nocc = c_occ.shape[1]
        # (a, P, b) @ (b, i) -> (a, P, i)
        t = (self.b.transpose(0, 2, 1).reshape(nbf * self.naux, nbf) @ c_occ)
        t = t.reshape(nbf, self.naux * nocc)
        return 2.0 * t @ t.T

    def exchange_density(self, density: np.ndarray) -> np.ndarray:
        """Exchange from a (possibly non-idempotent) density matrix.

        Needed by CPHF, where the perturbed density is not a simple
        occupied-orbital outer product. O(nbf^3 naux) — use
        :meth:`exchange` when occupied orbitals are available.
        """
        nbf = self.b.shape[0]
        # t_{aP,d} = sum_c b_{acP} P_cd
        t = (self.b.transpose(0, 2, 1).reshape(nbf * self.naux, nbf) @ density)
        t = t.reshape(nbf, self.naux, nbf)
        bt = self.b.transpose(0, 2, 1)  # (b, P, d)
        return np.tensordot(t, bt, axes=([1, 2], [1, 2]))

    def eri_approx(self) -> np.ndarray:
        """Materialize the DF-approximated (ab|cd) tensor (tests only)."""
        return np.einsum("abP,cdP->abcd", self.b, self.b)
