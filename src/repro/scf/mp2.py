"""MP2 correlation energy (exact-ERI and RI/density-fitted).

The fragment-method lineage the paper builds on includes correlated
fragment calculations — its reference [28] is the 146,592-atom
FMO-MP2 run on Summit. Per-fragment MP2 drops straight into the QF
machinery here: closed-shell canonical MP2 with

    E2 = sum_iajb (ia|jb) [ 2 (ia|jb) - (ib|ja) ] / (e_i+e_j-e_a-e_b)

using either the exact ERI tensor (small pieces) or the DF B tensor —
(ia|jb) = sum_P B_iaP B_jbP — which is the production path, identical
in structure to RI-MP2 in large-scale codes.
"""

from __future__ import annotations

import numpy as np

from repro.scf.rhf import SCFResult


def mp2_energy(scf: SCFResult) -> float:
    """Closed-shell MP2 correlation energy for a converged SCF state."""
    if not scf.converged:
        raise ValueError("MP2 requires a converged SCF reference")
    nocc = scf.nocc
    c_o = scf.mo_coeff[:, :nocc]
    c_v = scf.mo_coeff[:, nocc:]
    e_o = scf.mo_energy[:nocc]
    e_v = scf.mo_energy[nocc:]
    nvirt = c_v.shape[1]
    if nvirt == 0:
        return 0.0

    if scf.eri is not None:
        # (ia|jb): transform the exact AO tensor
        ovov = np.einsum(
            "pqrs,pi,qa,rj,sb->iajb",
            scf.eri, c_o, c_v, c_o, c_v, optimize=True,
        )
    else:
        # RI route: B_iaP = C_o^T b C_v per auxiliary index
        b = scf.df.b
        naux = b.shape[2]
        nbf = b.shape[0]
        # (nbf,nbf,P) -> (i,a,P)
        half = np.tensordot(c_o, b, axes=(0, 0))          # (i, nbf, P)
        b_ia = np.tensordot(half, c_v, axes=(1, 0))       # (i, P, a) -> fix
        b_ia = b_ia.transpose(0, 2, 1)                    # (i, a, P)
        ovov = np.einsum("iaP,jbP->iajb", b_ia, b_ia, optimize=True)

    denom = (
        e_o[:, None, None, None]
        + e_o[None, None, :, None]
        - e_v[None, :, None, None]
        - e_v[None, None, None, :]
    )
    t = ovov / denom
    e2 = float(np.sum(t * (2.0 * ovov - ovov.transpose(0, 3, 2, 1))))
    return e2


def mp2_total_energy(scf: SCFResult) -> float:
    """HF + MP2 total energy."""
    return scf.energy + mp2_energy(scf)
