"""Real-space molecular integration grids and basis evaluation.

The paper's DFPT worker integrates the response density n(1)(r) on a
real-space grid and builds the response Hamiltonian H(1) by quadrature
(FHI-aims is an all-electron real-space code). This module provides

* atom-centered Becke-partitioned grids: Gauss-Chebyshev radial shells
  times small Lebedev angular sets,
* vectorized evaluation of basis-function values (and gradients) on
  arbitrary point batches — the chi / grad-chi matrices consumed by the
  Table I kernels in :mod:`repro.kernels`,
* density / response-density evaluation n(r) = sum_mn P_mn chi_m chi_n.

Grid accuracy is validated in tests by integrating SCF densities
(→ electron count) and Gaussian overlaps against analytic values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.basis.gaussian import BasisSet
from repro.geometry.atoms import Geometry
from repro.integrals.engine import components

# ---------------------------------------------------------------------------
# Lebedev angular sets (orders 6, 26, 38): octahedral point groups with
# exact weights; enough for the valence densities used here.
# ---------------------------------------------------------------------------


def _oct_vertices() -> np.ndarray:
    return np.array(
        [[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0], [0, 0, 1], [0, 0, -1]],
        dtype=float,
    )


def _oct_face_centers() -> np.ndarray:
    s = 1.0 / math.sqrt(3.0)
    pts = []
    for sx in (1, -1):
        for sy in (1, -1):
            for sz in (1, -1):
                pts.append([sx * s, sy * s, sz * s])
    return np.array(pts)


def _oct_edge_centers() -> np.ndarray:
    s = 1.0 / math.sqrt(2.0)
    pts = []
    for (i, j) in ((0, 1), (0, 2), (1, 2)):
        for si in (1, -1):
            for sj in (1, -1):
                p = [0.0, 0.0, 0.0]
                p[i] = si * s
                p[j] = sj * s
                pts.append(p)
    return np.array(pts)


def lebedev(order: int) -> tuple[np.ndarray, np.ndarray]:
    """Angular quadrature points/weights on the unit sphere.

    order 6: vertices only (exact to l=3); order 26: vertices + edges +
    faces (exact to l=7); order 38 adds accuracy for gradients.
    """
    if order <= 6:
        pts = _oct_vertices()
        wts = np.full(6, 1.0 / 6.0)
    elif order <= 26:
        v, e, f = _oct_vertices(), _oct_edge_centers(), _oct_face_centers()
        pts = np.vstack([v, e, f])
        wts = np.concatenate(
            [
                np.full(6, 1.0 / 21.0),
                np.full(12, 4.0 / 105.0),
                np.full(8, 27.0 / 840.0),
            ]
        )
    else:
        # 38-point set: vertices + faces + 24 points of the (p, q, 0) orbit
        v, f = _oct_vertices(), _oct_face_centers()
        p = 0.4597008433809831
        q = math.sqrt(1.0 - p * p)
        orbit = []
        for (a, b) in ((p, q), (q, p)):
            for sa in (1, -1):
                for sb in (1, -1):
                    orbit.extend(
                        [[sa * a, sb * b, 0.0], [sa * a, 0.0, sb * b],
                         [0.0, sa * a, sb * b]]
                    )
        pts = np.vstack([v, f, np.array(orbit)])
        # exact weights for the 38-point rule
        wts = np.concatenate(
            [np.full(6, 0.009523809523809525),
             np.full(8, 0.03214285714285714),
             np.full(24, 0.02857142857142857)]
        )
    return pts, wts / wts.sum()


def gauss_chebyshev_radial(n: int, scale: float = 1.0
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Radial points/weights on (0, inf) (Becke's mapping of
    Gauss-Chebyshev-2): r = scale (1+x)/(1-x)."""
    i = np.arange(1, n + 1)
    x = np.cos(i * np.pi / (n + 1))
    w = np.pi / (n + 1) * np.sin(i * np.pi / (n + 1)) ** 2
    r = scale * (1.0 + x) / (1.0 - x)
    # dr/dx = 2 scale / (1-x)^2; chebyshev weight function 1/sqrt(1-x^2)
    dr = 2.0 * scale / (1.0 - x) ** 2
    wr = w * dr / np.sqrt(1.0 - x ** 2)
    return r, wr


#: Bragg-Slater-ish radii (bohr) for Becke partitioning and radial scales
_RADIAL_SCALE = {"H": 1.0, "He": 0.6, "C": 1.3, "N": 1.2, "O": 1.1, "S": 1.9}


@dataclass
class MolecularGrid:
    """Becke-partitioned atom-centered quadrature."""

    points: np.ndarray    # (npts, 3), bohr
    weights: np.ndarray   # (npts,), includes partition weights

    @property
    def npoints(self) -> int:
        return self.points.shape[0]


def _becke_partition(points: np.ndarray, coords: np.ndarray, owner: np.ndarray
                     ) -> np.ndarray:
    """Becke's fuzzy Voronoi weights (3 softening iterations)."""
    natm = coords.shape[0]
    if natm == 1:
        return np.ones(points.shape[0])
    dist = np.linalg.norm(points[:, None, :] - coords[None, :, :], axis=2)
    rij = np.linalg.norm(coords[:, None, :] - coords[None, :, :], axis=2)
    cell = np.ones((points.shape[0], natm))
    for i in range(natm):
        for j in range(natm):
            if i == j:
                continue
            mu = (dist[:, i] - dist[:, j]) / rij[i, j]
            f = mu
            for _ in range(3):
                f = 1.5 * f - 0.5 * f ** 3
            cell[:, i] *= 0.5 * (1.0 - f)
    total = cell.sum(axis=1)
    total[total == 0.0] = 1.0  # qf: exact-zero — guard exact 0/0 cells
    return cell[np.arange(points.shape[0]), owner] / total


def build_grid(
    geometry: Geometry,
    radial_points: int = 40,
    angular_order: int = 26,
) -> MolecularGrid:
    """Atom-centered Becke grid for a geometry."""
    ang_pts, ang_wts = lebedev(angular_order)
    all_pts = []
    all_wts = []
    owner = []
    for ia, sym in enumerate(geometry.symbols):
        scale = _RADIAL_SCALE.get(sym, 1.3)
        r, wr = gauss_chebyshev_radial(radial_points, scale)
        pts = (
            geometry.coords[ia][None, None, :]
            + r[:, None, None] * ang_pts[None, :, :]
        ).reshape(-1, 3)
        wts = (wr[:, None] * ang_wts[None, :] * (r ** 2)[:, None] * 4 * np.pi
               ).reshape(-1)
        all_pts.append(pts)
        all_wts.append(wts)
        owner.extend([ia] * pts.shape[0])
    points = np.vstack(all_pts)
    weights = np.concatenate(all_wts)
    part = _becke_partition(points, geometry.coords, np.array(owner))
    return MolecularGrid(points=points, weights=weights * part)


# ---------------------------------------------------------------------------
# basis evaluation on points
# ---------------------------------------------------------------------------

def evaluate_basis(
    basis: BasisSet,
    points: np.ndarray,
    derivative: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """chi(r) values — and cartesian gradients when requested.

    Returns ``chi`` of shape (npts, nbf), plus ``dchi`` of shape
    (3, npts, nbf) when ``derivative`` is set. These are exactly the
    matrices entering the paper's n(1)(r) and H(1) kernels.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 3)
    npts = points.shape[0]
    chi = np.zeros((npts, basis.nbf))
    dchi = np.zeros((3, npts, basis.nbf)) if derivative else None
    for sh, off in zip(basis.shells, basis.offsets):
        rel = points - sh.center[None, :]
        r2 = np.einsum("pi,pi->p", rel, rel)
        radial = np.zeros(npts)
        dradial = np.zeros(npts)  # d(radial)/d(r^2)
        for c, a in zip(sh.coefs, sh.exps):
            g = c * np.exp(-a * r2)
            radial += g
            dradial -= a * g
        for k, (i, j, l) in enumerate(components(sh.l)):
            poly = rel[:, 0] ** i * rel[:, 1] ** j * rel[:, 2] ** l
            chi[:, off + k] = poly * radial
            if derivative:
                for d, (di, dj, dl) in enumerate(((1, 0, 0), (0, 1, 0), (0, 0, 1))):
                    # d/dx [poly * radial] = poly' radial + poly * 2x dradial
                    e = (i, j, l)[d]
                    dpoly = 0.0
                    if e > 0:
                        dpoly = (
                            e
                            * rel[:, 0] ** (i - di)
                            * rel[:, 1] ** (j - dj)
                            * rel[:, 2] ** (l - dl)
                        )
                    dchi[d, :, off + k] = (
                        dpoly * radial + poly * 2.0 * rel[:, d] * dradial
                    )
    if derivative:
        return chi, dchi
    return chi


def density_on_grid(chi: np.ndarray, density_matrix: np.ndarray) -> np.ndarray:
    """n(r_p) = sum_mn P_mn chi_m(r_p) chi_n(r_p) (one GEMM + rowsum)."""
    return np.einsum("pm,pm->p", chi @ density_matrix, chi)
