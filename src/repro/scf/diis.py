"""DIIS (direct inversion in the iterative subspace) for SCF.

Pulay's commutator-DIIS: the error vector of a Fock matrix F for
density P with overlap S is e = FPS - SPF (zero at convergence); the
extrapolated Fock matrix minimizes the norm of the linear combination
of stored error vectors under the constraint that coefficients sum to 1.
"""

from __future__ import annotations

import numpy as np

from repro.obs.counters import counters


class DIIS:
    """Fock-matrix extrapolation with a bounded history."""

    def __init__(self, max_vectors: int = 8):
        if max_vectors < 2:
            raise ValueError("DIIS needs at least 2 vectors")
        self.max_vectors = max_vectors
        self._focks: list[np.ndarray] = []
        self._errors: list[np.ndarray] = []

    @property
    def nvec(self) -> int:
        return len(self._focks)

    def push(self, fock: np.ndarray, density: np.ndarray, overlap: np.ndarray) -> float:
        """Store a Fock matrix; returns the max-abs DIIS error."""
        err = fock @ density @ overlap - overlap @ density @ fock
        self._focks.append(fock.copy())
        self._errors.append(err)
        if len(self._focks) > self.max_vectors:
            self._focks.pop(0)
            self._errors.pop(0)
        return float(np.abs(err).max())

    def extrapolate(self) -> np.ndarray:
        """Return the DIIS-extrapolated Fock matrix."""
        n = len(self._focks)
        if n == 0:
            raise RuntimeError("no Fock matrices stored")
        if n == 1:
            return self._focks[0]
        b = np.empty((n + 1, n + 1))
        b[-1, :] = -1.0
        b[:, -1] = -1.0
        b[-1, -1] = 0.0
        for i in range(n):
            for j in range(i, n):
                v = float(np.vdot(self._errors[i], self._errors[j]))
                b[i, j] = v
                b[j, i] = v
        rhs = np.zeros(n + 1)
        rhs[-1] = -1.0
        try:
            coeff = np.linalg.solve(b, rhs)[:n]
        except np.linalg.LinAlgError:
            # singular subspace: drop oldest vector and retry
            counters().inc("scf.diis_resets")
            self._focks.pop(0)
            self._errors.pop(0)
            return self.extrapolate()
        out = np.zeros_like(self._focks[0])
        for c, f in zip(coeff, self._focks):
            out += c * f
        return out

    def reset(self) -> None:
        self._focks.clear()
        self._errors.clear()
