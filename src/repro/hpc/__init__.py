"""Simulated extreme-scale HPC substrate.

We do not have ORISE (24,000 GPUs) or the new Sunway (96,000
SW26010-pro nodes); per DESIGN.md the scaling results are reproduced by
running the paper's *actual scheduling algorithms* — the three-level
master/leader/worker hierarchy (§V-A), the system-size-sensitive load
balancer (§V-B) and the elastic offload model (§V-C) — inside a
discrete-event simulator with per-fragment costs calibrated both from
the paper's reported ratios and from measured timings of our own QM
kernels.

The load-balance variance (Fig. 8), strong/weak scaling (Fig. 10/11),
and FP64 throughput estimates (Table I) are emergent properties of the
algorithm + workload distribution, not of the silicon, which is what
makes this substitution faithful.
"""

from repro.hpc.machine import MachineSpec, ORISE, SUNWAY
from repro.hpc.costmodel import FragmentCostModel, paper_calibrated_cost_model
from repro.hpc.des import Simulator
from repro.hpc.balancer import (
    FixedPackPolicy,
    RoundRobinPolicy,
    SystemSizeSensitivePolicy,
)
from repro.hpc.scheduler import SchedulerReport, simulate_qf_run

__all__ = [
    "MachineSpec",
    "ORISE",
    "SUNWAY",
    "FragmentCostModel",
    "paper_calibrated_cost_model",
    "Simulator",
    "FixedPackPolicy",
    "RoundRobinPolicy",
    "SystemSizeSensitivePolicy",
    "SchedulerReport",
    "simulate_qf_run",
]
