"""Scaling-study metrics over scheduler reports.

The quantities the paper's evaluation reports, as small reusable
functions: strong-scaling efficiency (Fig. 10), weak-scaling efficiency
(Fig. 11), load-variation envelopes (Fig. 8), and FLOP-rate projection
(Table I).
"""

from __future__ import annotations

import numpy as np

from repro.hpc.scheduler import SchedulerReport


def strong_scaling_efficiency(base: SchedulerReport, other: SchedulerReport
                              ) -> float:
    """Parallel efficiency of ``other`` relative to the base run (%):
    E = T_base * n_base / (T * n) * 100."""
    if base.n_fragments != other.n_fragments:
        raise ValueError("strong scaling requires a fixed workload")
    return float(
        100.0 * base.makespan * base.n_nodes / (other.makespan * other.n_nodes)
    )


def weak_scaling_efficiency(base: SchedulerReport, other: SchedulerReport
                            ) -> float:
    """Throughput-based weak-scaling efficiency (%):
    E = (tput / tput_base) / (n / n_base) * 100."""
    scale = other.n_nodes / base.n_nodes
    return float(100.0 * (other.throughput / base.throughput) / scale)


def variation_envelope(reports: list[SchedulerReport]
                       ) -> list[tuple[int, float, float]]:
    """Fig. 8 rows: (nodes, min %, max %) per report."""
    out = []
    for rep in reports:
        lo, hi = rep.time_variation()
        out.append((rep.n_nodes, lo, hi))
    return out


def efficiency_curve(reports: list[SchedulerReport]
                     ) -> list[tuple[int, float]]:
    """Strong-scaling curve vs the smallest-node report."""
    if not reports:
        return []
    base = min(reports, key=lambda r: r.n_nodes)
    return [
        (rep.n_nodes, strong_scaling_efficiency(base, rep))
        for rep in sorted(reports, key=lambda r: r.n_nodes)
    ]


def projected_pflops(
    rate_tflops_by_size: dict[int, float],
    size_distribution: np.ndarray,
    n_accelerators: int,
) -> float:
    """Distribution-weighted full-system rate (the Table I projection).

    ``rate_tflops_by_size`` maps representative fragment sizes to
    per-accelerator rates; each workload fragment contributes the rate
    of its nearest representative.
    """
    sizes = np.asarray(sorted(rate_tflops_by_size))
    rates = np.array([rate_tflops_by_size[int(s)] for s in sizes])
    dist = np.asarray(size_distribution, dtype=float)
    idx = np.abs(dist[:, None] - sizes[None, :]).argmin(axis=1)
    mean_rate = float(rates[idx].mean())
    return mean_rate * n_accelerators / 1000.0
