"""Execution tracing for scheduler runs.

Records per-leader task intervals during a simulation and renders them
as a text Gantt chart — the visual the paper's Fig. 4(c/e) sketches.
Tracing hooks keep the scheduler core clean: a :class:`TraceRecorder`
is passed in through ``SchedulerReport.extras`` consumers or used
standalone on small runs for documentation and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TaskInterval:
    leader: int
    start: float
    end: float
    n_fragments: int
    reissue: bool = False


@dataclass
class TraceRecorder:
    """Collects task execution intervals."""

    intervals: list[TaskInterval] = field(default_factory=list)

    def record(self, leader: int, start: float, end: float,
               n_fragments: int, reissue: bool = False) -> None:
        if end < start:
            raise ValueError("interval ends before it starts")
        self.intervals.append(
            TaskInterval(leader, start, end, n_fragments, reissue)
        )

    def makespan(self) -> float:
        return max((iv.end for iv in self.intervals), default=0.0)

    def utilization(self, n_leaders: int) -> float:
        """Busy time / (leaders x makespan)."""
        total = sum(iv.end - iv.start for iv in self.intervals)
        span = self.makespan()
        if span <= 0:
            return 0.0
        return total / (n_leaders * span)

    def to_spans(self) -> list:
        """The intervals as :class:`repro.obs.tracer.SpanRecord` objects
        (one synthetic "pid" per machine, leaders as threads), so the
        scheduler trace feeds the same exporters as the pipeline trace
        — ``repro.obs.export.write_trace(recorder.to_spans(), path)``
        produces a Perfetto-loadable file."""
        from repro.obs.tracer import SpanRecord

        return [
            SpanRecord(
                name="reissue" if iv.reissue else "task",
                path=f"leader-{iv.leader}/task",
                ts=iv.start,
                dur=iv.end - iv.start,
                pid=0,
                tid=iv.leader,
                attrs={"n_fragments": iv.n_fragments,
                       "reissue": iv.reissue},
            )
            for iv in self.intervals
        ]

    def gantt(self, n_leaders: int, width: int = 72) -> str:
        """Text Gantt chart: one row per leader, '#' executing, '.' idle,
        'R' a re-issued (speculative) task."""
        span = self.makespan()
        if span <= 0:
            return "(empty trace)"
        rows = []
        for leader in range(n_leaders):
            line = [" "] * width
            for iv in self.intervals:
                if iv.leader != leader:
                    continue
                a = int(iv.start / span * (width - 1))
                b = max(a + 1, int(np.ceil(iv.end / span * (width - 1))))
                ch = "R" if iv.reissue else "#"
                for k in range(a, min(b, width)):
                    line[k] = ch
            rows.append(f"L{leader:<3d} |" + "".join(line) + "|")
        rows.append(f"      0{'':{width - 12}}t={span:.2f}s")
        return "\n".join(rows)


def traced_simulation(machine, n_nodes, fragment_sizes, cost_model,
                      **kwargs):
    """Run :func:`repro.hpc.scheduler.simulate_qf_run` with a
    :class:`TraceRecorder` attached; returns ``(report, recorder)``.

    The scheduler records every real task execution interval as it
    completes — including speculative reissues in fault-tolerant mode —
    so the Gantt chart shows actual occupancy, not a reconstruction.
    Small runs only; tracing every task at paper scale would dominate
    memory.
    """
    from repro.hpc.scheduler import simulate_qf_run

    recorder = TraceRecorder()
    report = simulate_qf_run(machine, n_nodes, fragment_sizes, cost_model,
                             trace=recorder, **kwargs)
    return report, recorder
