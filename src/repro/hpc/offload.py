"""Elastic workload offloading model (paper §V-C, Fig. 5).

We have no accelerator hardware, so offload *decisions and throughput*
are modeled with the machine constants of :mod:`repro.hpc.machine`
while the batching mechanics (stride-32 padding, shape grouping, ≥64
packing) run for real in :mod:`repro.kernels.batched`. The model
captures the three effects that make scattered small GEMMs unprofitable
to offload one-by-one and profitable in batches:

* fixed kernel-launch overhead per offloaded workload,
* host<->device transfer time (PCIe on ORISE; zero on Sunway, whose
  accelerating cores share the host address space — §V-F),
* size-dependent achievable fraction of FP64 peak (small matrices
  cannot saturate the pipelines; batching restores utilization).

The achievable-fraction curve is calibrated so the per-accelerator
rates of Table I come out in the reported ranges for the reported
fragment sizes; the *relative* speedups of Fig. 9 then follow from
counted FLOPs, not tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hpc.machine import MachineSpec

#: sustained host-core FP64 rate for the CPU-side baseline (GFLOP/s);
#: one x86 core with AVX2 FMA sustains ~10-20 on DGEMM-ish kernels.
HOST_CORE_GFLOPS = 14.0


@dataclass(frozen=True)
class OffloadModel:
    """Accelerator execution model for batched GEMM workloads."""

    machine: MachineSpec
    #: fraction of FP64 peak approached by large batched GEMMs
    max_efficiency: float = 0.62
    #: matrix dimension at which half the max efficiency is reached
    half_dim: float = 56.0
    #: batch count at which batching reaches full effect
    half_batch: float = 12.0

    @classmethod
    def for_machine(cls, machine: MachineSpec) -> "OffloadModel":
        """Calibrated model: constants chosen so batch-64 rates across
        the spike fragment-size range land in Table I's per-accelerator
        windows (ORISE 1.11-3.93 TFLOPS, Sunway 2.10-4.87 TFLOPS)."""
        if machine.name == "ORISE":
            return cls(machine, max_efficiency=0.75, half_dim=110.0)
        if machine.name == "Sunway":
            return cls(machine, max_efficiency=0.40, half_dim=55.0)
        return cls(machine)

    def efficiency(self, dim: int, batch: int = 1) -> float:
        """Achievable fraction of peak for a batch of dim^3-ish GEMMs."""
        size_term = dim / (dim + self.half_dim)
        batch_term = batch / (batch + self.half_batch)
        return self.max_efficiency * size_term * (0.25 + 0.75 * batch_term)

    def gemm_time(self, m: int, n: int, k: int, batch: int = 1,
                  bytes_moved: int | None = None) -> float:
        """Seconds to execute ``batch`` GEMMs of (m,k)x(k,n) on one
        accelerator, including launch and transfer.

        The default traffic model reflects §V-F aggregated transfers
        for the DFPT kernels: inputs (basis values, P(1)) are resident
        on the device across the whole batch and partial results
        accumulate there, so one result-sized block moves per workload.
        Pass ``bytes_moved`` explicitly for other traffic patterns.
        """
        flops = 2.0 * m * n * k * batch
        dim = (m * n * k) ** (1.0 / 3.0)
        rate = self.machine.accel_peak_tflops * 1e12 * self.efficiency(
            int(dim), batch
        )
        t = self.machine.offload_launch_overhead_s + flops / rate
        if self.machine.offload_transfer_gbps > 0:
            if bytes_moved is None:
                if batch == 1:
                    # a lone scattered GEMM must ship its inputs too
                    bytes_moved = 8 * (m * k + k * n + m * n)
                else:
                    bytes_moved = 8 * m * n
            t += bytes_moved / (self.machine.offload_transfer_gbps * 1e9)
        return t

    def host_time(self, flops: float) -> float:
        """Seconds for the same FLOPs on one host core."""
        return flops / (HOST_CORE_GFLOPS * 1e9)

    def profitable(self, m: int, n: int, k: int, batch: int) -> bool:
        """Is offloading this batch faster than host execution?"""
        flops = 2.0 * m * n * k * batch
        return self.gemm_time(m, n, k, batch) < self.host_time(flops)

    def achieved_tflops(self, m: int, n: int, k: int, batch: int) -> float:
        """Useful-FLOP rate of the offloaded batch (the Table I metric)."""
        flops = 2.0 * m * n * k * batch
        return flops / self.gemm_time(m, n, k, batch) / 1e12


def dfpt_cycle_speedups(
    model: OffloadModel,
    kernel_flops: dict[str, int],
    gemm_dim: int,
    n_gemms: int,
    sym_reduction: dict[str, float],
    gemm_time_fraction: float = 0.85,
    grid_batch: int = 3072,
) -> dict[str, float]:
    """Fig. 9 decomposition for one fragment.

    Time model: a baseline cycle spends ``gemm_time_fraction`` of its
    wall time in scattered GEMMs (85% for a medium fragment, §IV-B)
    and the remainder in CPU-friendly work. Symmetry-aware strength
    reduction divides the GEMM FLOPs by the *measured* per-phase
    factors in ``sym_reduction`` (weighted by ``kernel_flops``); the
    CPU-friendly part also benefits (fewer intermediates to stage)
    with the same weighted factor capped at 2. Elastic offloading then
    executes the reduced GEMM work as stride-32 batches of
    ``(gemm_dim, gemm_dim, grid_batch)`` products on the accelerator,
    overlapped with the CPU-side remainder (Fig. 5's split into a
    CPU-loop and an offloading-loop).

    Returns baseline-relative speedups ``sym`` and ``sym+offload``.
    """
    total = float(sum(kernel_flops.values()))
    if total <= 0:
        raise ValueError("empty kernel flops")
    # flop-weighted symmetry factor over the GEMM-heavy phases
    f_sym = total / sum(
        fl / sym_reduction.get(phase, 1.0) for phase, fl in kernel_flops.items()
    )
    # absolute host times: the GEMM part is total/host_rate; the full
    # baseline cycle follows from the GEMM time fraction
    t_gemm = model.host_time(total)
    t_base = t_gemm / gemm_time_fraction
    t_cpu = t_base - t_gemm
    # strength reduction: GEMM flops by f_sym; CPU-side staging work
    # shrinks with the eliminated intermediates (capped at 2x)
    t_sym = t_gemm / f_sym + t_cpu / min(2.0, f_sym)

    # offload: reduced GEMM work ships as stride-32 batches of 64; the
    # accelerator rate follows from the fragment's characteristic GEMM
    # shape, applied to the *counted* (reduced) FLOPs so host and
    # device times are measured on the same workload
    n_reduced = max(1, int(n_gemms / f_sym))
    n_batches = max(1, (n_reduced + 63) // 64)
    per_batch = min(64, n_reduced)
    eff_dim = (gemm_dim * gemm_dim * grid_batch) ** (1.0 / 3.0)
    rate = model.machine.accel_peak_tflops * 1e12 * model.efficiency(
        int(eff_dim), per_batch
    )
    t_accel = n_batches * model.machine.offload_launch_overhead_s + (
        total / f_sym
    ) / rate
    if model.machine.offload_transfer_gbps > 0:
        t_accel += (
            8.0 * n_reduced * gemm_dim * gemm_dim
            / (model.machine.offload_transfer_gbps * 1e9)
        )
    t_cpu_opt = t_cpu / min(2.0, f_sym)
    if model.machine.offload_transfer_gbps > 0:
        # discrete device (ORISE): the CPU loop and the offload loop
        # synchronize at strip boundaries — serial composition
        t_off = t_cpu_opt + t_accel
    else:
        # unified memory with asynchronous movement (Sunway §V-F):
        # CPU-side work overlaps the accelerated GEMMs
        t_off = max(t_cpu_opt, t_accel)
    return {
        "sym": t_base / t_sym,
        "sym+offload": t_base / t_off,
        "t_base": t_base,
        "t_sym": t_sym,
        "t_offload": t_off,
        "t_accel": t_accel,
    }
