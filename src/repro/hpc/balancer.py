"""Task-packing policies for the master process (paper §V-B, Fig. 4).

The master keeps the un-processed fragments sorted by size
(descending) and forms each task lazily at assignment time, so the
granularity adapts to the remaining workload:

* while plenty of work remains, the per-task cost target
  ``remaining / (waves * n_leaders)`` is large — big fragments go out
  alone (they already exceed the target) and medium fragments are
  packed together to avoid master round-trips;
* towards the end the target shrinks with the remaining pool, so the
  last tasks degrade gracefully to single small fragments that top up
  lightly-loaded leaders — exactly Fig. 4(c).

Baselines for the ablation benches: fixed-count packing and static
round-robin pre-partitioning (no dynamic master at all).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class FragmentPool:
    """Sorted (descending-cost) fragment pool with O(1) slice takes."""

    def __init__(self, sizes: np.ndarray, costs: np.ndarray):
        sizes = np.asarray(sizes)
        costs = np.asarray(costs, dtype=float)
        if sizes.shape != costs.shape:
            raise ValueError("sizes/costs mismatch")
        order = np.argsort(costs)[::-1]
        self.sizes = sizes[order]
        self.costs = costs[order]
        self.cum = np.concatenate([[0.0], np.cumsum(self.costs)])
        self.idx = 0

    @property
    def total_cost(self) -> float:
        return float(self.cum[-1])

    def remaining_cost(self) -> float:
        return float(self.cum[-1] - self.cum[self.idx])

    def remaining_count(self) -> int:
        return self.costs.size - self.idx

    def empty(self) -> bool:
        return self.idx >= self.costs.size

    def take(self, count: int) -> tuple[np.ndarray, np.ndarray, float]:
        """Remove the ``count`` largest remaining fragments.

        Returns (sizes, costs, total_cost) of the taken slice.
        """
        count = min(count, self.remaining_count())
        if count <= 0:
            raise ValueError("take from empty pool")
        sl = slice(self.idx, self.idx + count)
        cost = float(self.cum[sl.stop] - self.cum[sl.start])
        self.idx += count
        return self.sizes[sl], self.costs[sl], cost


@dataclass
class SystemSizeSensitivePolicy:
    """The paper's adaptive packing (Fig. 4b).

    ``waves`` is the average number of future tasks per leader the
    policy aims to keep available (more waves → finer tasks → better
    balance, more master traffic). ``max_pack`` caps fragments per task
    so a single message stays bounded.
    """

    waves: float = 4.0
    max_pack: int = 256

    def next_count(self, pool: FragmentPool, n_leaders: int) -> int:
        remaining = pool.remaining_cost()
        target = remaining / (self.waves * max(1, n_leaders))
        # the largest remaining fragment always ships; pack more while
        # under target
        idx = pool.idx
        cum = pool.cum
        # binary search the largest k with cum[idx+k] - cum[idx] <= target
        hi = min(pool.remaining_count(), self.max_pack)
        take = int(
            np.searchsorted(cum[idx + 1: idx + hi + 1] - cum[idx], target,
                            side="right")
        )
        return max(1, take)


@dataclass
class FixedPackPolicy:
    """Naive baseline: always pack exactly ``count`` fragments."""

    count: int = 8

    def next_count(self, pool: FragmentPool, n_leaders: int) -> int:
        return max(1, min(self.count, pool.remaining_count()))


@dataclass
class RoundRobinPolicy:
    """Marker policy: static round-robin pre-partitioning.

    The scheduler recognizes this policy and skips the dynamic master
    entirely — fragment i goes to leader i % n_leaders up front. The
    worst baseline for heterogeneous sizes; the Fig. 8 ablation bench
    quantifies by how much.
    """
