"""Master / leader / worker scheduler simulation (paper §V-A/B, Fig. 3-4).

Runs the actual signal protocol in virtual time:

* every leader announces availability (``leader-available``);
* the master — a single serialized server with per-signal service time
  — pops fragments from the sorted pool through the packing policy and
  ships one task per available leader (one-way message latency both
  directions);
* a leader executes its task: each fragment's 6n+1 displacement jobs
  are statically split over the node's worker processes (Fig. 3), so a
  fragment occupies the leader for ceil(jobs/workers) job rounds;
* with prefetch enabled (Fig. 4d/e) the leader re-queues for its next
  task as soon as the current one *starts*, hiding the master round
  trip; without it the request goes out at completion and the leader
  idles for the round trip.

Per-node speed jitter and per-fragment execution noise make the
Fig. 8 time-variation statistics non-trivial; all randomness is seeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hpc.balancer import (
    FragmentPool,
    RoundRobinPolicy,
    SystemSizeSensitivePolicy,
)
from repro.hpc.costmodel import FragmentCostModel
from repro.hpc.des import Simulator
from repro.hpc.machine import MachineSpec


@dataclass
class SchedulerReport:
    """Outcome of one simulated QF run."""

    machine: str
    n_nodes: int
    n_fragments: int
    makespan: float                   # virtual seconds, setup excluded
    busy_times: np.ndarray            # per-leader total execute time
    finish_times: np.ndarray          # per-leader last completion
    tasks_assigned: np.ndarray        # per-leader task count
    events: int
    extras: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Fragments per (virtual) second."""
        return self.n_fragments / self.makespan

    def time_variation(self) -> tuple[float, float]:
        """(min%, max%) deviation of per-leader execution time from the
        mean — the Fig. 8 statistic."""
        mean = float(self.busy_times.mean())
        lo = float(self.busy_times.min() / mean - 1.0) * 100.0
        hi = float(self.busy_times.max() / mean - 1.0) * 100.0
        return lo, hi


def simulate_qf_run(
    machine: MachineSpec,
    n_nodes: int,
    fragment_sizes: np.ndarray,
    cost_model: FragmentCostModel | None = None,
    policy=None,
    prefetch: bool = True,
    job_noise: float = 0.01,
    seed: int = 0,
    rng: np.random.Generator | None = None,
    speedup: float = 1.0,
    leader_costs: np.ndarray | None = None,
    straggler_prob: float = 0.0,
    straggler_factor: float = 20.0,
    timeout_factor: float = 6.0,
    trace=None,
) -> SchedulerReport:
    """Simulate one QF-RAMAN production run.

    Parameters
    ----------
    fragment_sizes:
        Atom count of every fragment (the workload).
    policy:
        Packing policy (default: the paper's size-sensitive policy).
        :class:`RoundRobinPolicy` switches to static pre-partitioning.
    prefetch:
        Task prefetching (Fig. 4d); the paper disables this for the
        water-dimer runs of Fig. 8 to showcase its effect.
    speedup:
        Uniform per-job speed factor — used by the step-by-step
        optimization benches (symmetry reduction / offloading change
        per-fragment speed, not scheduling).
    leader_costs:
        Optional precomputed per-fragment leader wall times (overrides
        ``cost_model``; lets mixed workloads combine several models).
    rng:
        Explicit random generator; overrides ``seed``. Lets ensemble
        studies (Fig. 8 variance bands) drive many simulations off one
        reproducible stream.
    straggler_prob:
        Fault-tolerance model (paper §V-B: "fragments processed for a
        long time but not yet completed are marked un-processed again").
        Each task independently stalls with this probability, running
        ``straggler_factor``x slower; the master detects tasks exceeding
        ``timeout_factor`` times their expected duration and re-issues
        the work to another leader (first completion wins).
    trace:
        Optional :class:`repro.hpc.tracing.TraceRecorder`: every task
        execution interval (including speculative reissues) is recorded
        as it completes. Small runs only — tracing every task at paper
        scale would dominate memory.
    """
    if n_nodes > machine.total_nodes:
        raise ValueError(f"{machine.name}: {n_nodes} > {machine.total_nodes} nodes")
    policy = policy or SystemSizeSensitivePolicy()
    if rng is None:
        rng = np.random.default_rng(seed)
    sizes = np.asarray(fragment_sizes)
    workers = machine.workers_per_leader
    if leader_costs is None:
        if cost_model is None:
            raise ValueError("need cost_model or leader_costs")
        leader_costs = cost_model.leader_time(sizes, workers)
    leader_costs = np.asarray(leader_costs, dtype=float) / speedup

    # per-node speed factors (manufacturing/thermal variation)
    node_speed = rng.lognormal(mean=0.0, sigma=machine.node_speed_jitter,
                               size=n_nodes)

    busy = np.zeros(n_nodes)
    finish = np.zeros(n_nodes)
    ntasks = np.zeros(n_nodes, dtype=int)

    if isinstance(policy, RoundRobinPolicy):
        # static pre-partition: no master, no messages
        order = np.argsort(leader_costs)[::-1]
        for rank, f in enumerate(order):
            leader = rank % n_nodes
            noise = rng.lognormal(0.0, job_noise)
            dt = leader_costs[f] * node_speed[leader] * noise
            if trace is not None:
                # statically partitioned leaders run their share back
                # to back, so intervals stack at the current busy mark
                trace.record(leader, float(busy[leader]),
                             float(busy[leader] + dt), 1)
            busy[leader] += dt
            ntasks[leader] += 1
        finish = busy.copy()
        return SchedulerReport(
            machine=machine.name, n_nodes=n_nodes, n_fragments=sizes.size,
            makespan=float(busy.max()), busy_times=busy, finish_times=finish,
            tasks_assigned=ntasks, events=0,
        )

    pool = FragmentPool(sizes, leader_costs)
    sim = Simulator()
    master_busy_until = 0.0
    outstanding = 0          # unique tasks assigned but not yet completed
    leader_free = np.zeros(n_nodes)  # when each leader finishes queued work
    next_tid = 0
    task_done: set[int] = set()
    idle_leaders: list[int] = []              # leaders parked on empty pool
    reissues = 0
    work_done_at = 0.0   # when the last unique task FIRST completed:
    # a reissued task's original (straggling) copy may still be running
    # past this point, but the production result exists — that zombie
    # time counts as node busy time, not as application makespan

    def issue(leader: int, tid: int, tcosts: np.ndarray, fresh: bool) -> None:
        """Assign a task (fresh from the pool or a reissue) to a leader."""
        nonlocal outstanding, reissues
        if fresh:
            outstanding += 1
        else:
            reissues += 1
        noise = rng.lognormal(0.0, job_noise, size=tcosts.size)
        duration = float((tcosts * noise).sum()) * node_speed[leader]
        expected = float(tcosts.sum())
        if straggler_prob > 0.0 and rng.random() < straggler_prob:
            duration *= straggler_factor

        def deliver():
            # a leader executes tasks strictly in sequence; a prefetched
            # task waits until the current one finishes (Fig. 4d)
            start_exec = max(sim.now, leader_free[leader])
            end = start_exec + duration
            leader_free[leader] = end
            if prefetch:
                # request the next task the moment this one starts, so
                # the master round trip overlaps the execution
                sim.schedule(
                    (start_exec - sim.now) + machine.comm_latency_s,
                    lambda: master_signal(leader),
                )
            if straggler_prob > 0.0:
                # the master watches for tasks not completed within a
                # multiple of their expected time *since assignment* —
                # this also covers tasks trapped in the queue behind a
                # straggling leader. A task merely waiting behind
                # ordinary work may occasionally be re-executed
                # speculatively; first completion wins, so that only
                # costs duplicate cycles, never correctness.
                sim.schedule(
                    timeout_factor * max(expected, 1e-9),
                    lambda: timeout_check(tid, tcosts),
                )

            def complete():
                nonlocal outstanding, work_done_at
                busy[leader] += duration
                finish[leader] = max(finish[leader], sim.now)
                ntasks[leader] += 1
                if trace is not None:
                    trace.record(leader, start_exec, sim.now,
                                 tcosts.size, reissue=not fresh)
                first = tid not in task_done
                task_done.add(tid)
                if first:
                    outstanding -= 1
                    work_done_at = max(work_done_at, sim.now)
                if not prefetch:
                    sim.schedule(machine.comm_latency_s,
                                 lambda: master_signal(leader))
                elif straggler_prob > 0.0:
                    # in fault-tolerant mode completions also re-park
                    # the leader so pending reissues can find it
                    sim.schedule(machine.comm_latency_s,
                                 lambda: master_signal(leader))

            sim.schedule(end - sim.now, complete)

        sim.schedule(
            max(0.0, (master_busy_until + machine.comm_latency_s) - sim.now),
            deliver,
        )

    def timeout_check(tid: int, tcosts: np.ndarray) -> None:
        if tid in task_done:
            return
        # re-queue the work on a parked leader that is genuinely free
        # (a prefetching leader may have parked while still executing —
        # possibly the very leader that is straggling); if none, poll
        # again — retrying is cheap in virtual time and guarantees the
        # reissue happens even after the final ordinary completion
        for k, leader in enumerate(idle_leaders):
            if leader_free[leader] <= sim.now:
                idle_leaders.pop(k)
                issue(leader, tid, tcosts, fresh=False)
                return
        sim.schedule(
            max(1e-6, 0.25 * float(tcosts.sum())),
            lambda: timeout_check(tid, tcosts),
        )

    def master_signal(leader: int) -> None:
        """leader-available arrives at the master; reply with a task."""
        nonlocal master_busy_until, next_tid
        start = max(sim.now, master_busy_until)
        master_busy_until = start + machine.master_service_s
        if pool.empty():
            if straggler_prob > 0.0 and leader not in idle_leaders:
                idle_leaders.append(leader)
            return
        count = policy.next_count(pool, n_nodes)
        _tsizes, tcosts, _tcost = pool.take(count)
        tid = next_tid
        next_tid += 1
        issue(leader, tid, tcosts, fresh=True)

    for leader in range(n_nodes):
        # initial availability announcements
        sim.schedule(machine.comm_latency_s,
                     lambda l=leader: master_signal(l))

    sim.run()
    if not pool.empty() or outstanding != 0:
        raise RuntimeError("simulation ended with unprocessed work")
    return SchedulerReport(
        machine=machine.name, n_nodes=n_nodes, n_fragments=sizes.size,
        makespan=float(work_done_at), busy_times=busy, finish_times=finish,
        tasks_assigned=ntasks, events=sim.events_processed,
        extras={"reissues": reissues},
    )
