"""Minimal discrete-event simulation engine.

A binary-heap event queue with a virtual clock. Entities schedule
callbacks at future times; ties break in scheduling order so runs are
fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Virtual-time event loop."""

    def __init__(self):
        self._queue: list[_Event] = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> _Event:
        """Schedule ``fn`` to run ``delay`` seconds from now (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ev = _Event(self.now + delay, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    def cancel(self, event: _Event) -> None:
        event.cancelled = True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Process events until the queue drains (or limits hit)."""
        while self._queue:
            if max_events is not None and self.events_processed >= max_events:
                raise RuntimeError(
                    f"event budget exhausted ({max_events}); likely a livelock"
                )
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if until is not None and ev.time > until:
                heapq.heappush(self._queue, ev)
                return
            self.now = ev.time
            self.events_processed += 1
            ev.fn()

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
