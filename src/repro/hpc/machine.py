"""Machine models for the two target supercomputers (paper §VI-B).

Peak FP64 rates are back-derived from Table I (reported PFLOPS and the
quoted percentage of peak):

* ORISE: 85.27 PFLOPS at 53.8 % of peak over 24,000 GPUs →
  ~6.6 TFLOPS FP64 peak per GPU (4 GPUs per 32-core x86 node).
* New Sunway: 399.90 PFLOPS at 29.5 % over 96,000 nodes →
  ~14.1 TFLOPS FP64 peak per SW26010-pro node (390 cores: 6 MPE + 384
  CPE).

Process layout mirrors the paper's counts: ORISE runs 32 processes per
node (750 nodes → 24,000 processes), Sunway 6 per node (12,000 nodes →
72,000 processes, one per core group). One process per node acts as
the leader; the rest are its workers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one platform for the scheduler simulation."""

    name: str
    total_nodes: int
    processes_per_node: int
    accelerators_per_node: int
    accel_peak_tflops: float        # FP64 peak per accelerator
    comm_latency_s: float           # one-way leader<->master message latency
    master_service_s: float         # master handling time per signal
    node_speed_jitter: float        # relative sigma of per-node speed
    offload_launch_overhead_s: float  # per accelerator kernel launch
    offload_transfer_gbps: float    # host<->accelerator bandwidth

    @property
    def workers_per_leader(self) -> int:
        return self.processes_per_node - 1

    def peak_pflops(self, nodes: int) -> float:
        return (
            nodes
            * self.accelerators_per_node
            * self.accel_peak_tflops
            / 1000.0
        )

    def with_nodes(self, nodes: int) -> "MachineSpec":
        if nodes > self.total_nodes:
            raise ValueError(
                f"{self.name} has {self.total_nodes} nodes, requested {nodes}"
            )
        return replace(self, total_nodes=nodes)


#: HIP-GPU machine: 4 GPUs per 32-core node, InfiniBand.
ORISE = MachineSpec(
    name="ORISE",
    total_nodes=6000,
    processes_per_node=32,
    accelerators_per_node=4,
    accel_peak_tflops=6.605,
    comm_latency_s=3.0e-6,
    master_service_s=8.0e-6,
    node_speed_jitter=0.012,
    offload_launch_overhead_s=12.0e-6,
    offload_transfer_gbps=16.0,   # PCIe gen3 x16 effective
)

#: New-generation Sunway: SW26010-pro, 6 core groups per node, shared
#: memory between host and accelerator cores (no PCIe transfers).
SUNWAY = MachineSpec(
    name="Sunway",
    total_nodes=96000,
    processes_per_node=6,
    accelerators_per_node=1,
    accel_peak_tflops=14.12,
    comm_latency_s=2.0e-6,
    master_service_s=6.0e-6,
    node_speed_jitter=0.004,
    offload_launch_overhead_s=2.0e-6,
    offload_transfer_gbps=0.0,    # unified memory: no transfer cost
)


def master_saturation_nodes(
    machine: MachineSpec,
    mean_task_seconds: float,
    signals_per_task: float = 2.0,
) -> float:
    """Node count at which the single master process saturates.

    Each in-flight task costs the master ~``signals_per_task`` serialized
    signal-handling slots (availability + assignment bookkeeping). With
    every leader continuously busy, the signal arrival rate is
    ``n_nodes * signals_per_task / mean_task_seconds``; the master
    sustains ``1 / master_service_s``. Beyond the returned node count the
    master queue grows and strong scaling collapses — the analytic form
    of the efficiency droop the Fig. 10 simulations show, and the reason
    the paper's packing policy enlarges tasks when many remain.
    """
    if mean_task_seconds <= 0:
        raise ValueError("mean_task_seconds must be positive")
    rate_capacity = 1.0 / machine.master_service_s
    per_node_rate = signals_per_task / mean_task_seconds
    return rate_capacity / per_node_rate
