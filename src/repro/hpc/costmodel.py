"""Per-fragment cost models for the scheduler simulation.

The paper reports two anchor facts about fragment cost versus size
(§IV-B, §VII):

* 9-atom vs 35-atom protein fragments differ by 5.4x in execution time,
* 9-atom vs 68-atom fragments differ by 19x.

A fragment of n atoms expands into 6n+1 displacement jobs whose
per-job cost is dominated by an SCF-like kernel — linear + cubic in n.
Fitting  t_frag(n) ∝ a*n + c*n^3  to the two anchor ratios gives
a = 0.1081, c = 3.77e-5 (normalized to t(9) = 1), which reproduces
both: t(35)/t(9) = 5.40 and t(68)/t(9) = 19.2.

Absolute scale is set from the Fig. 11 weak-scaling throughputs
(protein: 93.2 fragments/s over 750 ORISE nodes → 8.05 node-seconds
per average fragment). A :class:`MeasuredCostModel` alternative fits
the same functional form to timings of this repository's own QM
kernels, so simulations can be driven by real measured costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: the linear+cubic fit to the paper's anchor ratios, t(9) = 1
_A = 0.1081
_C = 3.77e-5


def _shape(n: np.ndarray | float) -> np.ndarray | float:
    return _A * n + _C * n ** 3


@dataclass(frozen=True)
class FragmentCostModel:
    """t_fragment(natoms) in node-seconds, with per-job decomposition.

    ``scale`` multiplies the normalized shape function. ``job_overhead``
    is the size-independent part of one displacement job (dominates for
    tiny fragments; calibrated so water dimers hit the paper's 2,406
    fragments/s on 750 nodes).
    """

    scale: float
    job_overhead: float = 0.0

    def fragment_time(self, natoms) -> np.ndarray | float:
        """Total single-worker compute time for all 6n+1 jobs."""
        n = np.asarray(natoms, dtype=float)
        jobs = 6.0 * n + 1.0
        out = self.scale * _shape(n) + self.job_overhead * jobs
        return float(out) if out.ndim == 0 else out

    def job_time(self, natoms) -> np.ndarray | float:
        """Cost of one displacement job (fragment time / job count)."""
        n = np.asarray(natoms, dtype=float)
        jobs = 6.0 * n + 1.0
        out = (self.scale * _shape(n)) / jobs + self.job_overhead
        return float(out) if out.ndim == 0 else out

    def leader_time(self, natoms, workers: int) -> np.ndarray | float:
        """Wall time for one fragment on a leader with ``workers``
        workers: displacement jobs are statically partitioned, so the
        fragment takes ceil(jobs/workers) job rounds."""
        n = np.asarray(natoms, dtype=float)
        jobs = 6.0 * n + 1.0
        rounds = np.ceil(jobs / workers)
        out = rounds * self.job_time(n)
        return float(out) if out.ndim == 0 else out


#: Fig. 11 anchors: (workload, machine) → mean leader-wall seconds per
#: fragment, derived as n_nodes / throughput. The water-dimer and
#: protein workloads carry different absolute scales (a 6-atom water
#: dimer has 2 heavy atoms; a 22-atom protein fragment has ~11 — cost
#: follows basis size, not atom count), so each workload is anchored
#: separately and the linear+cubic shape interpolates *within* a
#: workload family.
PAPER_ANCHORS: dict[tuple[str, str], tuple[float, float]] = {
    # (workload, machine): (reference atom count, leader-seconds/fragment)
    ("protein", "ORISE"): (22.0, 750.0 / 93.2),
    ("water_dimer", "ORISE"): (6.0, 750.0 / 2406.3),
    # Sunway mixed runs: 12,000 nodes at 1,661.3 fragments/s → 7.224
    # node-seconds per average fragment; split onto the two families
    # with the same protein:water cost ratio as on ORISE.
    ("protein", "Sunway"): (22.0, 750.0 / 93.2 * 0.897),
    ("water_dimer", "Sunway"): (6.0, 750.0 / 2406.3 * 0.897),
}


def paper_calibrated_cost_model(
    workload: str = "protein",
    machine_name: str = "ORISE",
    workers: int | None = None,
) -> FragmentCostModel:
    """Cost model anchored to the paper's Fig. 11 throughputs.

    ``workload`` is ``"protein"`` or ``"water_dimer"``; the returned
    model's :meth:`FragmentCostModel.leader_time` at the anchor size
    equals the paper's node-seconds-per-fragment on that machine.
    """
    key = (workload, "Sunway" if machine_name.lower().startswith("sun")
           else "ORISE")
    if key not in PAPER_ANCHORS:
        raise KeyError(f"no anchor for {key}")
    n_ref, t_ref = PAPER_ANCHORS[key]
    if workers is None:
        workers = 31 if key[1] == "ORISE" else 5
    jobs = 6.0 * n_ref + 1.0
    rounds = np.ceil(jobs / workers)
    # t_ref = rounds * scale * shape(n_ref) / jobs
    scale = t_ref * jobs / (rounds * _shape(n_ref))
    return FragmentCostModel(scale=float(scale), job_overhead=0.0)


def calibrate_to_throughput(
    sizes: np.ndarray,
    target_throughput: float,
    n_nodes: int,
    workers: int,
) -> FragmentCostModel:
    """Scale the shape so a workload hits a target fragments/second
    at perfect efficiency on ``n_nodes`` (used to anchor mixed runs)."""
    sizes = np.asarray(sizes, dtype=float)
    base = FragmentCostModel(scale=1.0)
    mean_leader = float(np.mean(base.leader_time(sizes, workers)))
    target_leader = n_nodes / target_throughput
    return FragmentCostModel(scale=target_leader / mean_leader)


def fit_cost_model(sizes: np.ndarray, times: np.ndarray) -> FragmentCostModel:
    """Least-squares fit of the linear+cubic shape to measured
    (fragment size, total fragment time) samples — used to drive the
    simulator with this repository's own measured QM kernel costs."""
    sizes = np.asarray(sizes, dtype=float)
    times = np.asarray(times, dtype=float)
    if sizes.size < 2:
        raise ValueError("need at least two samples")
    jobs = 6.0 * sizes + 1.0
    design = np.column_stack([_shape(sizes), jobs])
    coef, *_ = np.linalg.lstsq(design, times, rcond=None)
    return FragmentCostModel(
        scale=float(max(coef[0], 1e-12)),
        job_overhead=float(max(coef[1], 0.0)),
    )
