"""Fragment-based global geometry optimization.

The paper's reference [31] (Liu, Zhang & He) establishes the workflow
behind Fig. 12: optimize the *whole* system using gradients assembled
from QF pieces, then compute the fragment Hessians at that composite
geometry. This module implements that loop: at every optimizer step the
system is re-decomposed (caps track the moving atoms), each piece's
analytic gradient is computed (warm-started SCF densities carry over
between steps), and Eq. (1)'s signed sum yields the global gradient.

Cost note: this is an O(pieces) SCF sweep per optimizer iteration —
appropriate for the laptop-scale systems of the examples, exactly like
the paper's workflow is appropriate for its machines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.dfpt.gradient import gradient
from repro.fragment.assembly import assemble_energy, assemble_gradient
from repro.fragment.fragmenter import decompose_system
from repro.geometry.atoms import Geometry
from repro.geometry.protein import BuiltResidue
from repro.scf.rhf import RHF


@dataclass
class QFOptimizationResult:
    protein: Geometry | None
    waters: list[Geometry]
    energy: float
    grad_max: float
    niter: int
    converged: bool


def _split_coords(flat: np.ndarray, protein: Geometry | None,
                  waters: list[Geometry]):
    """Distribute a flattened coordinate vector back onto the parts."""
    n_p = protein.natoms if protein is not None else 0
    coords = flat.reshape(-1, 3)
    new_protein = None
    if protein is not None:
        new_protein = Geometry(list(protein.symbols), coords[:n_p],
                               protein.charge, list(protein.labels))
    new_waters = []
    off = n_p
    for w in waters:
        new_waters.append(
            Geometry(list(w.symbols), coords[off: off + w.natoms],
                     w.charge, list(w.labels))
        )
        off += w.natoms
    return new_protein, new_waters


def optimize_qf_geometry(
    protein: Geometry | None = None,
    residues: list[BuiltResidue] | None = None,
    waters: list[Geometry] | None = None,
    lambda_angstrom: float = 4.0,
    basis_name: str = "sto-3g",
    eri_mode: str = "auto",
    gtol: float = 1.0e-3,
    max_iter: int = 60,
) -> QFOptimizationResult:
    """Relax a fragmented system on the QF energy surface.

    Gradients for artificial cap hydrogens are dropped (their positions
    are functions of the host atoms; the induced error is of MFCC order
    and vanishes as caps cancel between fragments and concaps).
    """
    waters = list(waters or [])
    parts = ([] if protein is None else [protein.coords]) + [
        w.coords for w in waters
    ]
    x0 = np.vstack(parts).ravel()
    density_cache: dict[str, np.ndarray] = {}
    neval = {"n": 0}

    def fun(flat: np.ndarray):
        geom_p, geom_w = _split_coords(flat, protein, waters)
        dec = decompose_system(
            protein=geom_p, residues=residues, waters=geom_w,
            lambda_angstrom=lambda_angstrom,
        )
        energies = []
        grads = []
        for piece in dec.pieces:
            guess = density_cache.get(piece.label)
            scf = RHF(piece.geometry, basis_name=basis_name,
                      eri_mode=eri_mode).run(guess_density=guess)
            if not scf.converged:
                scf = RHF(piece.geometry, basis_name=basis_name,
                          eri_mode=eri_mode).run()
            density_cache[piece.label] = scf.density
            energies.append(scf.energy)
            grads.append(gradient(scf))
        neval["n"] += 1
        e = assemble_energy(dec.pieces, energies)
        g = assemble_gradient(dec.pieces, grads, dec.natoms_total)
        return e, g.ravel()

    res = scipy.optimize.minimize(
        fun, x0, jac=True, method="BFGS",
        options={"gtol": gtol, "maxiter": max_iter, "norm": np.inf},
    )
    geom_p, geom_w = _split_coords(res.x, protein, waters)
    return QFOptimizationResult(
        protein=geom_p,
        waters=geom_w,
        energy=float(res.fun),
        grad_max=float(np.abs(res.jac).max()),
        niter=neval["n"],
        converged=bool(res.success) or float(np.abs(res.jac).max()) < 10 * gtol,
    )
