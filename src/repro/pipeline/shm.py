"""Zero-copy task dispatch over POSIX shared memory (``QF_SHM``).

A :class:`~repro.pipeline.executor.FragmentTask` pickles its whole
:class:`~repro.geometry.atoms.Geometry` — coordinate array, symbol
list, per-atom label dicts — plus every config scalar into every
worker submission. For the fragment counts QF decomposition produces,
that serialization is pure overhead: the geometry is immutable for the
lifetime of a run, the config fields are run constants, and
``benchmarks/output/bench_parallel_pipeline.json`` showed the process
backend losing to serial with ~1.0 worker utilization — the workers
were busy deserializing, not idle.

This module ships the bulk once instead. The parent packs every
task's coordinates (float64), element symbols (fixed-width bytes) and
the run's distinct task configs (one pickled blob, indexed) into one
:class:`multiprocessing.shared_memory.SharedMemory` arena:

``[u64 blob length | coords: total_atoms x 3 f64 | symbols:
total_atoms x S4 | config blob]``

and submits *wire tuples* — ``(arena_name, arena_atoms, atom_offset,
natoms, index, label, charge, cfg, attempt)`` — to the pool. Plain
tuples carry no pickled class path, so a task ships in tens of bytes.
Workers attach the arena by name (once per process, cached), slice
their atom range, look up config ``cfg`` in the blob, and rebuild an
equivalent ``FragmentTask``. Coordinates are copied out of the arena
as float64, so rebuilt tasks are bit-identical to the originals and
the numerics cannot depend on the transport.

Notes on fidelity:

* Geometry ``labels`` (fragmenter metadata) are intentionally dropped
  from the transport — nothing downstream of task dispatch reads them,
  and they are the part of the payload that pickles worst.
* The arena lives until the parent run completes; the parent closes
  and unlinks it in a ``finally`` block, so a crashed run cannot leak
  ``/dev/shm`` segments past the owning process.

Counters (see docs/performance.md): ``executor.shm.tasks``,
``executor.shm.payload_bytes`` (wire-tuple pickle sizes),
``executor.shm.arena_bytes`` (arena allocations),
``executor.shm.worker_attaches``.
"""

from __future__ import annotations

import os
import pickle
import struct
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.geometry.atoms import Geometry
from repro.obs.counters import counters

__all__ = [
    "SHM_ENV",
    "SYMBOL_WIDTH",
    "ShmTaskDescriptor",
    "TaskArena",
    "shm_enabled",
    "pack_tasks",
    "rebuild_task",
    "release_worker_arenas",
]

SHM_ENV = "QF_SHM"

#: fixed symbol field width; longest element symbols are 3 characters
SYMBOL_WIDTH = 4

_HEADER = struct.Struct("<Q")   # config-blob byte length


def shm_enabled() -> bool:
    """Shared-memory dispatch toggle: ``QF_SHM`` env, default on."""
    return os.environ.get(SHM_ENV, "1").strip().lower() not in (
        "0", "off", "false", "no",
    )


#: run-constant FragmentTask fields factored out of the per-task wire
#: payload into the arena's config blob
CONFIG_FIELDS = (
    "delta", "compute_raman", "compute_ir", "basis_name", "eri_mode",
    "schwarz_cutoff",
)


@dataclass(frozen=True)
class ShmTaskDescriptor:
    """Index-only stand-in for a ``FragmentTask``.

    ``atom_offset``/``natoms`` select the task's atom range inside the
    arena; ``cfg`` indexes the run's distinct config tuples in the
    arena blob. On the wire this travels as a plain tuple
    (:meth:`to_wire`) so no class path is pickled per task.
    """

    arena_name: str
    #: total atoms in the arena — the region offsets depend on it, so
    #: the attaching side must know the creator's layout
    arena_atoms: int
    atom_offset: int
    natoms: int
    index: int
    label: str
    charge: int
    cfg: int
    attempt: int

    def to_wire(self) -> tuple:
        return (
            self.arena_name, self.arena_atoms, self.atom_offset,
            self.natoms, self.index, self.label, self.charge, self.cfg,
            self.attempt,
        )

    @classmethod
    def from_wire(cls, wire: tuple) -> "ShmTaskDescriptor":
        return cls(*wire)


class TaskArena:
    """One shared-memory block holding the bulk payload of a run.

    The creating process owns the segment and must call :meth:`close`
    (which unlinks); attached processes only map it.
    """

    def __init__(self, shm: shared_memory.SharedMemory, total_atoms: int,
                 owner: bool):
        self.shm = shm
        self.total_atoms = total_atoms
        self.owner = owner
        blob_len = _HEADER.unpack_from(shm.buf, 0)[0]
        coords_off = _HEADER.size
        sym_off = coords_off + total_atoms * 3 * 8
        blob_off = sym_off + total_atoms * SYMBOL_WIDTH
        self.coords = np.ndarray(
            (total_atoms, 3), dtype=np.float64, buffer=shm.buf,
            offset=coords_off,
        )
        self.symbols = np.ndarray(
            (total_atoms,), dtype=f"S{SYMBOL_WIDTH}",
            buffer=shm.buf, offset=sym_off,
        )
        self.configs: list[tuple] = (
            pickle.loads(bytes(shm.buf[blob_off: blob_off + blob_len]))
            if blob_len else []
        )

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def nbytes(self) -> int:
        return self.shm.size

    @classmethod
    def create(cls, total_atoms: int, configs: list[tuple]) -> "TaskArena":
        blob = pickle.dumps(configs, protocol=pickle.HIGHEST_PROTOCOL)
        nbytes = (_HEADER.size + total_atoms * (3 * 8 + SYMBOL_WIDTH)
                  + len(blob))
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        _HEADER.pack_into(shm.buf, 0, len(blob))
        blob_off = _HEADER.size + total_atoms * (3 * 8 + SYMBOL_WIDTH)
        shm.buf[blob_off: blob_off + len(blob)] = blob
        return cls(shm, total_atoms, owner=True)

    @classmethod
    def attach(cls, name: str, total_atoms: int) -> "TaskArena":
        # attaching must not (re-)register the segment with the resource
        # tracker: workers share the parent's tracker process, so a
        # register+unregister round-trip from a worker would erase the
        # creator's registration and the unlink at close would then trip
        # a tracker KeyError (cpython gh-82300). Suppress registration
        # for the duration of the attach instead — only the creator
        # tracks (and unlinks) the segment.
        orig_register = resource_tracker.register

        def _no_shm_register(rname, rtype):
            if rtype != "shared_memory":
                orig_register(rname, rtype)

        resource_tracker.register = _no_shm_register
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        return cls(shm, total_atoms, owner=False)

    def close(self) -> None:
        # drop the numpy views before closing the mapping, else
        # SharedMemory.close() raises BufferError on exported pointers
        self.coords = None
        self.symbols = None
        self.shm.close()
        if self.owner:
            self.shm.unlink()


def pack_tasks(tasks) -> tuple[TaskArena, list[ShmTaskDescriptor]]:
    """Pack the tasks' geometries + configs into an arena + descriptors."""
    total_atoms = sum(t.geometry.natoms for t in tasks)
    configs: list[tuple] = []
    cfg_ids: dict[tuple, int] = {}
    entries = []
    cursor = 0
    for task in tasks:
        cfg = tuple(getattr(task, f) for f in CONFIG_FIELDS)
        cid = cfg_ids.get(cfg)
        if cid is None:
            cid = cfg_ids[cfg] = len(configs)
            configs.append(cfg)
        entries.append((task, cursor, cid))
        cursor += task.geometry.natoms
    arena = TaskArena.create(total_atoms, configs)
    descriptors: list[ShmTaskDescriptor] = []
    for task, offset, cid in entries:
        geom = task.geometry
        n = geom.natoms
        arena.coords[offset: offset + n] = geom.coords
        arena.symbols[offset: offset + n] = np.asarray(
            geom.symbols, dtype=f"S{SYMBOL_WIDTH}"
        )
        descriptors.append(
            ShmTaskDescriptor(
                arena_name=arena.name,
                arena_atoms=total_atoms,
                atom_offset=offset,
                natoms=n,
                index=task.index,
                label=task.label,
                charge=geom.charge,
                cfg=cid,
                attempt=task.attempt,
            )
        )
    reg = counters()
    reg.inc("executor.shm.tasks", len(descriptors))
    reg.inc("executor.shm.arena_bytes", arena.nbytes)
    reg.inc(
        "executor.shm.payload_bytes",
        sum(len(pickle.dumps(d.to_wire())) for d in descriptors),
    )
    return arena, descriptors


# worker-side arena attachments, one per arena name per process; they
# stay mapped for the worker's lifetime (the parent unlinks the
# underlying segment, which POSIX keeps alive until the last unmap)
_WORKER_ARENAS: dict[str, TaskArena] = {}


def _worker_arena(name: str, arena_atoms: int) -> TaskArena:
    arena = _WORKER_ARENAS.get(name)
    if arena is None:
        # a new arena name means a new run: the previous run's arena is
        # already unlinked by the parent, so unmap stale attachments
        # rather than accumulate them over a long-lived pool
        release_worker_arenas()
        arena = TaskArena.attach(name, arena_atoms)
        _WORKER_ARENAS[name] = arena
        counters().inc("executor.shm.worker_attaches")
    return arena


def release_worker_arenas() -> None:
    """Unmap every cached worker attachment (tests; idempotent)."""
    for arena in _WORKER_ARENAS.values():
        arena.close()
    _WORKER_ARENAS.clear()


def rebuild_task(wire: "tuple | ShmTaskDescriptor"):
    """Reconstruct a ``FragmentTask`` from its wire form + the arena.

    The coordinate slice is copied out of the mapping (float64 in,
    float64 out — bit-identical), so the task's lifetime is independent
    of the arena's.
    """
    from repro.pipeline.executor import FragmentTask  # deferred: avoid cycle

    desc = wire if isinstance(wire, ShmTaskDescriptor) \
        else ShmTaskDescriptor.from_wire(wire)
    end = desc.atom_offset + desc.natoms
    arena = _worker_arena(desc.arena_name, desc.arena_atoms)
    coords = np.array(arena.coords[desc.atom_offset: end], dtype=np.float64)
    symbols = [s.decode("ascii") for s in arena.symbols[desc.atom_offset: end]]
    geometry = Geometry(symbols=symbols, coords=coords, charge=desc.charge)
    cfg = dict(zip(CONFIG_FIELDS, arena.configs[desc.cfg]))
    return FragmentTask(
        index=desc.index,
        label=desc.label,
        geometry=geometry,
        attempt=desc.attempt,
        **cfg,
    )
