"""End-to-end QF-RAMAN driver.

Chains the full workflow of the paper: geometry → QF decomposition →
per-piece DFPT responses (the master/leader/worker payload) →
Eq. (1) assembly → Raman spectrum via dense diagonalization or the
Lanczos/GAGQ solver. Also exposes the bridge that maps a decomposition
onto the simulated supercomputers for timing studies.
"""

from repro.pipeline.canonical import (
    CanonicalStore,
    canon_mode,
    canonical_key,
    canonicalize,
)
from repro.pipeline.executor import (
    FragmentExecutor,
    FragmentExecutorError,
    FragmentTask,
    ThroughputReport,
    make_executor,
)
from repro.pipeline.faults import FaultPlan, InjectedFault
from repro.pipeline.qf_raman import PipelineResult, QFRamanPipeline
from repro.pipeline.resilience import (
    FAIL_FAST,
    SKIP_AND_REPORT,
    ResiliencePolicy,
    ResilienceReport,
    ResilientExecutor,
    RunStore,
)
from repro.pipeline.rigid import kabsch_rotation, rotate_response

__all__ = [
    "PipelineResult",
    "QFRamanPipeline",
    "CanonicalStore",
    "canon_mode",
    "canonical_key",
    "canonicalize",
    "FragmentExecutor",
    "FragmentExecutorError",
    "FragmentTask",
    "ThroughputReport",
    "make_executor",
    "FaultPlan",
    "InjectedFault",
    "FAIL_FAST",
    "SKIP_AND_REPORT",
    "ResiliencePolicy",
    "ResilienceReport",
    "ResilientExecutor",
    "RunStore",
    "kabsch_rotation",
    "rotate_response",
]
