"""Real parallel execution of fragment response tasks.

The QF decomposition produces embarrassingly parallel work — the paper
dispatches it over 576,000 processes (§V-A). :mod:`repro.hpc` *models*
that dispatch on simulated machines; this module *performs* it on the
local one. Three backends share one interface:

``serial``
    The single-process loop (reference behavior; zero overhead).
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` over whole
    fragments: tasks are dispatched largest-first (big pieces dominate
    the makespan, so starting them early avoids tail stragglers — the
    same descending-cost rule as the simulated balancer's task pool)
    and in chunks to amortize inter-process overhead. Best when the
    workload has at least as many pieces as cores.
``displacement``
    Parallelism *inside* :func:`repro.dfpt.hessian.fragment_response`:
    the ~3N coordinate jobs of each fragment go to the pool while
    fragments themselves run in order. Best for workloads with few
    large fragments, where fragment-level parallelism would idle most
    workers.

All backends produce numerically identical responses (same code path,
same SCF seeds); tests assert agreement to 1e-10. A worker exception
does not hang the pool: it is re-raised in the parent as
:class:`FragmentExecutorError` carrying the fragment label and the
worker traceback.

Every run yields a :class:`ThroughputReport` (fragments/s, per-task
wall times, worker utilization) that the pipeline attaches to its
:class:`~repro.pipeline.qf_raman.PipelineResult` — the measurable perf
trajectory asked for by the ROADMAP.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.devtools.contracts import (
    ContractViolation,
    check_response,
    determinism_check_enabled,
    response_digest,
)
from repro.dfpt.hessian import FragmentResponse, fragment_response
from repro.geometry.atoms import Geometry
from repro.obs.counters import counters
from repro.obs.tracer import get_tracer, telemetry_shipment
from repro.pipeline.faults import (
    active_fault_plan,
    apply_post_fault,
    apply_pre_fault,
)
from repro.pipeline.shm import pack_tasks, rebuild_task, shm_enabled
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class FragmentTask:
    """One picklable unit of fragment work.

    ``index`` keys the result back to the originating QF piece, so
    completion order never matters.
    """

    index: int
    label: str
    geometry: Geometry
    delta: float = 5.0e-3
    compute_raman: bool = True
    compute_ir: bool = False
    basis_name: str = "sto-3g"
    eri_mode: str = "auto"
    schwarz_cutoff: float = 1.0e-12
    #: 1-based execution attempt — set by the resilience layer on
    #: retries/reissues; keys the deterministic fault-injection plan
    #: (never enters content hashes: a retry computes the same result)
    attempt: int = 1

    @property
    def natoms(self) -> int:
        return self.geometry.natoms


@dataclass
class FragmentTaskResult:
    """A finished task plus its execution record.

    ``spans`` and ``counters`` carry the telemetry a pool worker
    captured while executing the task (empty when the task ran in the
    parent process, where spans flow into the ambient tracer
    directly); the parent merges them at join.
    """

    index: int
    label: str
    natoms: int
    response: FragmentResponse | None
    wall_s: float
    worker: int                      # pid of the executing process
    error: tuple[str, str] | None = None   # (repr(exc), traceback text)
    spans: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)


@dataclass
class ThroughputReport:
    """Execution statistics of one ``run`` call.

    ``worker_utilization`` is the summed busy time divided by
    ``wall_s * max_workers`` — 1.0 means no worker ever idled.
    """

    backend: str
    max_workers: int
    n_tasks: int
    wall_s: float
    fragments_per_s: float
    worker_utilization: float
    tasks: list[dict] = field(default_factory=list)
    phase_wall_s: dict = field(default_factory=dict)
    #: retry/reissue/skip accounting when the run was fault-tolerant
    #: (a ResilienceReport dict; flows into the RunManifest)
    resilience: dict | None = None

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "max_workers": self.max_workers,
            "n_tasks": self.n_tasks,
            "wall_s": self.wall_s,
            "fragments_per_s": self.fragments_per_s,
            "worker_utilization": self.worker_utilization,
            "tasks": self.tasks,
            "phase_wall_s": self.phase_wall_s,
            "resilience": self.resilience,
        }

    def summary(self) -> str:
        return (
            f"{self.backend}[{self.max_workers}]: {self.n_tasks} fragments "
            f"in {self.wall_s:.2f}s ({self.fragments_per_s:.3f} frag/s, "
            f"utilization {100.0 * self.worker_utilization:.0f}%)"
        )


class FragmentExecutorError(RuntimeError):
    """A fragment task failed in a worker; carries label + traceback."""

    def __init__(self, label: str, error: str, worker_traceback: str = ""):
        self.label = label
        self.worker_traceback = worker_traceback
        msg = f"fragment task {label!r} failed: {error}"
        if worker_traceback:
            msg += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(msg)


def _run_task(task: "FragmentTask | tuple") -> FragmentTaskResult:
    """Execute one task (or shm wire tuple), capturing errors not raising.

    Module-level so it pickles into worker processes; the parent turns
    a captured error into :class:`FragmentExecutorError`. Telemetry
    (spans under a per-task ``fragment`` span, counter increments) is
    captured by the shipment and travels back inside the result.
    """
    sw = Stopwatch()
    with telemetry_shipment() as shipment:
        if not isinstance(task, FragmentTask):
            # shared-memory wire tuple: rebuild inside the shipment so
            # the attach/rebuild counters travel back to the parent
            task = rebuild_task(task)
        plan = active_fault_plan()
        fault = plan.lookup(task.label, task.attempt) \
            if plan is not None else None
        with get_tracer().span(
            "fragment", label=task.label, natoms=task.natoms,
            attempt=task.attempt,
        ) as sp:
            try:
                if fault is not None:
                    counters().inc("resilience.faults_injected")
                    apply_pre_fault(fault)
                resp = fragment_response(
                    task.geometry,
                    delta=task.delta,
                    compute_raman=task.compute_raman,
                    compute_ir=task.compute_ir,
                    basis_name=task.basis_name,
                    eri_mode=task.eri_mode,
                    schwarz_cutoff=task.schwarz_cutoff,
                )
                apply_post_fault(fault, resp)
                error = None
            except Exception as exc:  # qf: broad-except — captured + re-raised in parent
                resp = None
                error = (repr(exc), traceback.format_exc())
            sp.set(ok=error is None)
    return FragmentTaskResult(
        index=task.index,
        label=task.label,
        natoms=task.natoms,
        response=resp,
        wall_s=sw.elapsed(),
        worker=os.getpid(),
        error=error,
        spans=shipment.spans,
        counters=shipment.counters,
    )


def _run_chunk(tasks: list[FragmentTask]) -> list[FragmentTaskResult]:
    return [_run_task(t) for t in tasks]


def _run_shm_chunk(wires: list) -> list[FragmentTaskResult]:
    """Worker entry for shared-memory dispatch: wire tuples in, results out.

    Each :class:`~repro.pipeline.shm.ShmTaskDescriptor` wire tuple is
    rebuilt into a bit-identical ``FragmentTask`` from the arena mapped
    into this worker (attached once per process), so the compute path
    is the same as pickled dispatch — only the transport differs.
    """
    return [_run_task(w) for w in wires]


def largest_first(tasks: list[FragmentTask]) -> list[FragmentTask]:
    """Descending-size dispatch order (stable for equal sizes)."""
    return sorted(tasks, key=lambda t: -t.natoms)


def merge_telemetry(result: FragmentTaskResult) -> None:
    """Fold telemetry a pool worker shipped back into the parent.

    A parent-executed task reported into the ambient tracer/counters
    directly, so only foreign pids are merged.
    """
    if result.worker != os.getpid():
        get_tracer().adopt(result.spans)
        counters().merge(result.counters)


def _check(result: FragmentTaskResult,
           phase: str = "executor") -> FragmentTaskResult:
    # merge before the error check, so a failed task still leaves its
    # trace
    merge_telemetry(result)
    if result.error is not None:
        raise FragmentExecutorError(result.label, *result.error)
    # runtime sanitizer (QF_SANITIZE=1): re-validate the response with
    # the fragment label attached so a violation names its producer
    check_response(result.response, label=result.label, phase=phase)
    return result


def verify_determinism(
    tasks: list[FragmentTask],
    computed: dict[int, FragmentResponse],
    phase: str = "executor",
) -> None:
    """Serial-vs-pool digest comparison (``QF_SANITIZE_DETERMINISM=1``).

    Recomputes every task in the parent process and compares content
    hashes of the float64 payloads. The backends promise bitwise
    identical numerics; a mismatch means cross-process nondeterminism
    (BLAS thread effects, stale worker state) and raises a
    :class:`~repro.devtools.contracts.ContractViolation` naming the
    fragment. This doubles the compute — it is a debugging mode, not a
    production default.
    """
    for task in tasks:
        serial = _run_task(task)
        if serial.error is not None:
            raise FragmentExecutorError(task.label, *serial.error)
        pool_digest = response_digest(computed[task.index])
        serial_digest = response_digest(serial.response)
        if pool_digest != serial_digest:
            raise ContractViolation(
                f"pool result diverges from the serial reference "
                f"(serial {serial_digest[:12]} != pool {pool_digest[:12]})",
                name="response", rule="determinism",
                context=f"fragment={task.label} phase={phase}",
            )


class FragmentExecutor:
    """Common interface: ``run(tasks) -> (responses, report)``.

    ``responses`` maps ``task.index`` to its
    :class:`~repro.dfpt.hessian.FragmentResponse`. Executors are
    context managers; ``close()`` releases any worker pool.
    """

    name = "base"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or os.cpu_count() or 1

    def run(self, tasks: list[FragmentTask]
            ) -> tuple[dict[int, FragmentResponse], ThroughputReport]:
        raise NotImplementedError

    def run_one(self, task: FragmentTask) -> FragmentTaskResult:
        """Execute one task, capturing failure in the result.

        The per-attempt seam the resilience layer drives: never raises
        for a task-level failure (``result.error`` carries it), so the
        caller decides between retry, skip, and abort.
        """
        raise NotImplementedError

    def restart_pool(self) -> None:
        """Replace a broken worker pool (no-op for poolless backends).

        After a hard worker death (``BrokenProcessPool``) the pool
        rejects all further submissions; the resilience layer calls
        this before retrying.
        """

    def close(self) -> None:
        pass

    def __enter__(self) -> "FragmentExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _report(self, results: list[FragmentTaskResult], wall_s: float,
                busy_s: float | None = None) -> ThroughputReport:
        n = len(results)
        if busy_s is None:
            busy_s = sum(r.wall_s for r in results)
        denom = max(wall_s, 1e-12) * self.max_workers
        return ThroughputReport(
            backend=self.name,
            max_workers=self.max_workers,
            n_tasks=n,
            wall_s=wall_s,
            fragments_per_s=n / max(wall_s, 1e-12),
            worker_utilization=min(1.0, busy_s / denom),
            tasks=[
                {"label": r.label, "natoms": r.natoms,
                 "wall_s": r.wall_s, "worker": r.worker}
                for r in results
            ],
        )


class SerialExecutor(FragmentExecutor):
    """In-process loop — the reference backend."""

    name = "serial"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers=1)

    def run_one(self, task):
        return _run_task(task)

    def run(self, tasks):
        sw = Stopwatch()
        results = [_check(_run_task(t), phase="serial") for t in tasks]
        report = self._report(results, sw.elapsed())
        return {r.index: r.response for r in results}, report


class ProcessExecutor(FragmentExecutor):
    """Fragment-level process pool, largest-first chunked dispatch."""

    name = "process"

    def __init__(self, max_workers: int | None = None, chunksize: int = 1):
        super().__init__(max_workers)
        self.chunksize = max(1, chunksize)
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)

    def restart_pool(self) -> None:
        self.close()
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        counters().inc("resilience.pool_restarts")

    def run_one(self, task):
        try:
            return self._pool.submit(_run_task, task).result()
        except BrokenProcessPool as exc:
            # the worker died without returning (segfault, OOM-kill,
            # os._exit); synthesize a failed result naming the fragment
            return FragmentTaskResult(
                index=task.index, label=task.label, natoms=task.natoms,
                response=None, wall_s=0.0, worker=0,
                error=(f"worker process died before returning ({exc!r})",
                       ""),
            )

    def run(self, tasks):
        ordered = largest_first(tasks)
        sw = Stopwatch()
        # shared-memory dispatch (QF_SHM, default on): geometry arrays
        # go into one arena, the pool receives index-only descriptors —
        # kilobytes per task instead of a pickled Geometry. The arena
        # outlives every submission and is unlinked in the finally.
        arena = None
        if shm_enabled() and ordered:
            arena, descs = pack_tasks(ordered)
            units, entry = descs, _run_shm_chunk
        else:
            units, entry = ordered, _run_chunk
        chunks = [
            units[i: i + self.chunksize]
            for i in range(0, len(units), self.chunksize)
        ]
        results: list[FragmentTaskResult] = []
        pending = {
            self._pool.submit(
                entry,
                [d.to_wire() for d in c] if arena is not None else c,
            ): c
            for c in chunks
        }
        try:
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    chunk = pending.pop(fut)
                    try:
                        chunk_results = fut.result()
                    except BrokenProcessPool as exc:
                        # without this, a hard worker death surfaces as
                        # a bare BrokenProcessPool with no hint of what
                        # was running; name the fragment(s) and phase
                        labels = ",".join(t.label for t in chunk)
                        raise FragmentExecutorError(
                            labels,
                            f"worker process died before returning "
                            f"({exc!r}) [phase=process]",
                        ) from exc
                    results.extend(
                        _check(r, phase="process") for r in chunk_results
                    )
        except Exception:
            for fut in pending:
                fut.cancel()
            raise
        finally:
            if arena is not None:
                arena.close()
        responses = {r.index: r.response for r in results}
        if determinism_check_enabled():
            verify_determinism(tasks, responses, phase="process")
        report = self._report(results, sw.elapsed())
        return responses, report


class DisplacementExecutor(FragmentExecutor):
    """Fragments in order, coordinate jobs fanned out to the pool.

    The right choice when the workload is a handful of large fragments:
    each fragment's ~6N displaced SCF/CPHF jobs saturate the pool even
    when the fragment count is below the core count.
    """

    name = "displacement"

    def __init__(self, max_workers: int | None = None):
        super().__init__(max_workers)
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)

    def restart_pool(self) -> None:
        self.close()
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        counters().inc("resilience.pool_restarts")

    def run_one(self, task):
        sw_task = Stopwatch()
        plan = active_fault_plan()
        fault = plan.lookup(task.label, task.attempt) \
            if plan is not None else None
        with get_tracer().span(
            "fragment", label=task.label, natoms=task.natoms,
            attempt=task.attempt,
        ) as sp:
            try:
                if fault is not None:
                    counters().inc("resilience.faults_injected")
                    apply_pre_fault(fault)
                resp = fragment_response(
                    task.geometry,
                    delta=task.delta,
                    compute_raman=task.compute_raman,
                    compute_ir=task.compute_ir,
                    basis_name=task.basis_name,
                    eri_mode=task.eri_mode,
                    schwarz_cutoff=task.schwarz_cutoff,
                    pool=self._pool,
                )
                apply_post_fault(fault, resp)
                error = None
            except Exception as exc:  # qf: broad-except — captured for the caller
                resp = None
                error = (repr(exc), traceback.format_exc())
            sp.set(ok=error is None)
        return FragmentTaskResult(
            index=task.index, label=task.label, natoms=task.natoms,
            response=resp, wall_s=sw_task.elapsed(), worker=os.getpid(),
            error=error,
        )

    def run(self, tasks):
        sw = Stopwatch()
        results: list[FragmentTaskResult] = []
        busy_s = 0.0
        for task in tasks:
            result = self.run_one(task)
            if result.error is not None:
                raise FragmentExecutorError(task.label, *result.error)
            resp = result.response
            timer = resp.meta.get("timer")
            if timer is not None:
                busy_s += sum(
                    timer.total(k) for k in
                    ("scf_displaced", "gradient_displaced", "cphf_displaced")
                )
            check_response(resp, label=task.label, phase="displacement")
            results.append(result)
        responses = {r.index: r.response for r in results}
        if determinism_check_enabled():
            verify_determinism(tasks, responses, phase="displacement")
        report = self._report(results, sw.elapsed(), busy_s=busy_s)
        return responses, report


_BACKENDS = {
    "serial": SerialExecutor,
    "process": ProcessExecutor,
    "displacement": DisplacementExecutor,
}


def make_executor(
    backend: str = "serial",
    max_workers: int | None = None,
    chunksize: int = 1,
    resilience=None,
    run_store=None,
    canonical: str | None = None,
) -> FragmentExecutor:
    """Instantiate an executor backend by name.

    ``max_workers`` defaults to the CPU count for the parallel
    backends (ignored by ``serial``); ``chunksize`` only affects
    ``process``. Passing a
    :class:`~repro.pipeline.resilience.ResiliencePolicy` (or True for
    the defaults) and/or a ``run_store`` directory wraps the backend in
    the fault-tolerant :class:`~repro.pipeline.resilience.ResilientExecutor`
    (retries, timeouts, checkpoint/resume; see docs/resilience.md).
    ``canonical`` selects the run store's rigid-motion cache mode
    (``off``/``exact``/``rigid``; default resolves ``QF_CANON`` — see
    docs/caching.md) and is ignored when ``run_store`` is already a
    :class:`~repro.pipeline.resilience.RunStore` instance.
    """
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r}; "
            f"expected one of {sorted(_BACKENDS)}"
        )
    if resilience is not None or run_store is not None:
        from repro.pipeline.resilience import ResiliencePolicy, ResilientExecutor

        policy = None if resilience in (None, True) else resilience
        if policy is not None and not isinstance(policy, ResiliencePolicy):
            raise TypeError(
                f"resilience must be a ResiliencePolicy, got {policy!r}"
            )
        return ResilientExecutor(
            base=backend, max_workers=max_workers, policy=policy,
            store=run_store, canonical=canonical,
        )
    cls = _BACKENDS[backend]
    if cls is ProcessExecutor:
        return cls(max_workers=max_workers, chunksize=chunksize)
    return cls(max_workers=max_workers)
