"""On-disk cache for fragment responses.

A production QF run is hours of independent piece calculations; loss of
a process should not lose finished work (the paper's master re-queues
unfinished fragments — finished ones live in its result store). This
module is that result store for the laptop pipeline: each
:class:`~repro.dfpt.hessian.FragmentResponse` is keyed by an exact
geometry hash (symbols + coordinates rounded to 1e-9 bohr + the level
of theory) and saved as one ``.npz`` file.

The hashing and (de)serialization helpers are shared with the
fault-tolerance layer (:class:`repro.pipeline.resilience.RunStore`
persists per-run results under :func:`task_key`, which extends
:func:`response_key` with the full execution config so a resumed run
only trusts results produced under identical settings).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.obs.counters import counters

#: optional FragmentResponse array fields persisted when present
_OPTIONAL_FIELDS = ("dalpha_dr", "alpha", "dmu_dr")


def _geometry_digest(h, geometry: Geometry) -> None:
    h.update(",".join(geometry.symbols).encode())
    h.update(np.round(geometry.coords, 9).tobytes())
    h.update(f"|{geometry.charge}".encode())


def response_key(geometry: Geometry, basis_name: str, delta: float) -> str:
    """Exact-content hash of (geometry, level of theory)."""
    h = hashlib.sha256()
    _geometry_digest(h, geometry)
    h.update(f"|{basis_name}|{delta:.3e}".encode())
    return h.hexdigest()[:24]


def task_key(
    geometry: Geometry,
    basis_name: str,
    delta: float,
    *,
    compute_raman: bool = True,
    compute_ir: bool = False,
    eri_mode: str = "auto",
    schwarz_cutoff: float = 1.0e-12,
    extra: dict | None = None,
) -> str:
    """Content hash of one fragment task: geometry + full run config.

    Unlike :func:`response_key` (geometry + level of theory only), this
    covers every knob that can change the numerical result, so a
    :class:`~repro.pipeline.resilience.RunStore` hit is guaranteed
    bit-compatible with a fresh computation. The config is serialized
    with sorted keys, so the key is invariant to dict insertion order;
    nothing positional (task index, attempt number, submission order)
    enters the hash, so it is invariant to fragment ordering too.
    """
    h = hashlib.sha256()
    _geometry_digest(h, geometry)
    config = {
        "basis": basis_name,
        "delta": f"{delta:.3e}",
        "raman": bool(compute_raman),
        "ir": bool(compute_ir),
        "eri": eri_mode,
        "schwarz": f"{schwarz_cutoff:.3e}",
    }
    if extra:
        config.update({str(k): str(v) for k, v in extra.items()})
    h.update(json.dumps(config, sort_keys=True).encode())
    return h.hexdigest()[:24]


def response_payload(response: FragmentResponse) -> dict[str, np.ndarray]:
    """The array dict an ``.npz`` snapshot of ``response`` holds."""
    payload = {
        "energy": np.array(response.energy),
        "hessian": response.hessian,
        "gradient": response.gradient,
    }
    for name in _OPTIONAL_FIELDS:
        val = getattr(response, name)
        if val is not None:
            payload[name] = val
    return payload


def response_from_npz(data, geometry: Geometry,
                      meta: dict | None = None) -> FragmentResponse:
    """Rebuild a :class:`FragmentResponse` from a loaded ``.npz``."""

    def opt(name):
        return data[name] if name in data.files else None

    return FragmentResponse(
        geometry=geometry,
        energy=float(data["energy"]),
        hessian=data["hessian"],
        dalpha_dr=opt("dalpha_dr"),
        alpha=opt("alpha"),
        gradient=data["gradient"],
        dmu_dr=opt("dmu_dr"),
        meta=dict(meta or {"cached": True}),
    )


def write_npz_atomic(path: Path, payload: dict[str, np.ndarray]) -> Path:
    """Write ``payload`` to ``path`` via tmp-file + rename.

    The rename is atomic on POSIX: a reader (or a resumed run) either
    sees the complete file or no file — never half a snapshot. A crash
    mid-write leaves only a ``*.tmp.npz`` stray, which loaders ignore.
    """
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(tmp, **payload)
    tmp.replace(path)
    return path


class ResponseCache:
    """Directory-backed store of fragment responses.

    Keyed by exact geometry. With a canonical mode other than ``off``
    (``canonical=`` argument, default from ``QF_CANON``) the directory
    additionally holds a rigid-motion canonical store
    (:class:`repro.pipeline.canonical.CanonicalStore`): an exact miss
    falls back to the canonical entry of the same fragment class —
    rotated copies of an already-cached geometry hit instead of
    recomputing — and every store also writes the canonical entry.
    """

    def __init__(self, directory: str | Path,
                 canonical: str | None = None):
        from repro.pipeline.canonical import CANON_OFF, CanonicalStore, \
            canon_mode

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        mode = canon_mode() if canonical is None else canonical
        self.canonical = (
            CanonicalStore(self.directory, mode=mode)
            if mode != CANON_OFF else None
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"resp_{key}.npz"

    def load(self, geometry: Geometry, basis_name: str, delta: float
             ) -> FragmentResponse | None:
        path = self._path(response_key(geometry, basis_name, delta))
        if not path.exists():
            if self.canonical is not None:
                stored = self.canonical.load(geometry, basis_name, delta)
                if stored is not None:
                    self.hits += 1
                    counters().inc("cache.hits")
                    return stored
            self.misses += 1
            counters().inc("cache.misses")
            return None
        data = np.load(path, allow_pickle=False)
        self.hits += 1
        counters().inc("cache.hits")
        return response_from_npz(data, geometry)

    def store(self, response: FragmentResponse, basis_name: str,
              delta: float) -> Path:
        key = response_key(response.geometry, basis_name, delta)
        if self.canonical is not None:
            self.canonical.store(response.geometry, response, basis_name,
                                 delta)
        return write_npz_atomic(self._path(key), response_payload(response))

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("resp_*.npz"))
