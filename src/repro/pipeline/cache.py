"""On-disk cache for fragment responses.

A production QF run is hours of independent piece calculations; loss of
a process should not lose finished work (the paper's master re-queues
unfinished fragments — finished ones live in its result store). This
module is that result store for the laptop pipeline: each
:class:`~repro.dfpt.hessian.FragmentResponse` is keyed by an exact
geometry hash (symbols + coordinates rounded to 1e-9 bohr + the level
of theory) and saved as one ``.npz`` file.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.obs.counters import counters


def response_key(geometry: Geometry, basis_name: str, delta: float) -> str:
    """Exact-content hash of (geometry, level of theory)."""
    h = hashlib.sha256()
    h.update(",".join(geometry.symbols).encode())
    h.update(np.round(geometry.coords, 9).tobytes())
    h.update(f"|{geometry.charge}|{basis_name}|{delta:.3e}".encode())
    return h.hexdigest()[:24]


class ResponseCache:
    """Directory-backed store of fragment responses."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"resp_{key}.npz"

    def load(self, geometry: Geometry, basis_name: str, delta: float
             ) -> FragmentResponse | None:
        path = self._path(response_key(geometry, basis_name, delta))
        if not path.exists():
            self.misses += 1
            counters().inc("cache.misses")
            return None
        data = np.load(path, allow_pickle=False)
        self.hits += 1
        counters().inc("cache.hits")

        def opt(name):
            return data[name] if name in data.files else None

        return FragmentResponse(
            geometry=geometry,
            energy=float(data["energy"]),
            hessian=data["hessian"],
            dalpha_dr=opt("dalpha_dr"),
            alpha=opt("alpha"),
            gradient=data["gradient"],
            dmu_dr=opt("dmu_dr"),
            meta={"cached": True},
        )

    def store(self, response: FragmentResponse, basis_name: str,
              delta: float) -> Path:
        key = response_key(response.geometry, basis_name, delta)
        path = self._path(key)
        payload = {
            "energy": np.array(response.energy),
            "hessian": response.hessian,
            "gradient": response.gradient,
        }
        for name in ("dalpha_dr", "alpha", "dmu_dr"):
            val = getattr(response, name)
            if val is not None:
                payload[name] = val
        tmp = path.with_suffix(".tmp.npz")
        np.savez_compressed(tmp, **payload)
        tmp.replace(path)  # atomic on POSIX: a crash never leaves half a file
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("resp_*.npz"))
