"""Fault-tolerant fragment execution: retries, timeouts, checkpoint/resume.

The paper's master/leader/worker machinery survives straggling and
dying workers across 96,000 nodes by reissuing unfinished tasks —
finished fragments live in the master's result store and are never
recomputed (§V-A). QF fragment methods make this cheap: every piece is
an independent, restartable unit. This module brings those semantics
to the *real* executors of :mod:`repro.pipeline.executor`:

:class:`RunStore`
    An on-disk checkpoint of finished fragment responses, keyed by a
    content hash of (geometry, full execution config) via
    :func:`repro.pipeline.cache.task_key`. Writes are atomic
    (tmp + rename), so an interrupted run — SIGKILL'd driver, dead
    worker, power loss — resumes with only the unfinished fragments,
    and the resumed spectrum is bit-identical to an uninterrupted run.

:class:`ResiliencePolicy`
    Per-fragment retry with exponential backoff and deterministic
    jitter, per-attempt wall-clock timeouts with speculative reissue
    of stragglers (process backend), and a failure policy:
    ``fail_fast`` aborts on the first exhausted fragment;
    ``skip_and_report`` degrades gracefully — the run completes, the
    partial Eq. (1) assembly omits the missing pieces, and the skipped
    fragments are flagged in the RunManifest.

:class:`ResilientExecutor`
    The driver threading both through all three backends. Process
    base: fully asynchronous — failures, corrupted results (validated
    with :func:`repro.devtools.contracts.check_response`, always on in
    resilient mode), worker deaths (``BrokenProcessPool`` → pool
    restart), and timeouts are handled per fragment while the rest of
    the pool keeps working. Serial / displacement bases: the same
    retry machinery around the synchronous ``run_one`` seam (timeouts
    are detected post-hoc there — an in-process attempt cannot be
    preempted — and the late-but-valid result is kept).

Every recovery path is deterministic and exercisable via the
``QF_FAULTS`` injection seam (:mod:`repro.pipeline.faults`); semantics
and the fault grammar are documented in ``docs/resilience.md``.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.devtools.contracts import ContractViolation, check_response
from repro.dfpt.hessian import FragmentResponse
from repro.obs.counters import counters
from repro.pipeline.cache import (
    response_from_npz,
    response_payload,
    task_key,
    write_npz_atomic,
)
from repro.pipeline.executor import (
    DisplacementExecutor,
    FragmentExecutor,
    FragmentExecutorError,
    FragmentTask,
    FragmentTaskResult,
    SerialExecutor,
    _run_task,
    largest_first,
    merge_telemetry,
)
from repro.utils.timing import Stopwatch

__all__ = [
    "FAIL_FAST",
    "SKIP_AND_REPORT",
    "ResiliencePolicy",
    "ResilienceReport",
    "ResilientExecutor",
    "RunStore",
]

FAIL_FAST = "fail_fast"
SKIP_AND_REPORT = "skip_and_report"
_POLICIES = (FAIL_FAST, SKIP_AND_REPORT)

#: lower bound on the pool-loop wait slice — keeps deadline checks
#: responsive without busy-spinning
_MIN_TICK_S = 0.01
_MAX_TICK_S = 0.5


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard to try before declaring a fragment lost.

    ``max_attempts`` counts the first execution: 1 means no retries.
    Backoff before attempt ``k >= 2`` is
    ``backoff_s * backoff_factor**(k - 2)``, stretched by a
    deterministic jitter fraction derived from (seed, label, attempt)
    — reproducible run-to-run, decorrelated across fragments.
    ``timeout_s`` bounds one attempt's wall clock: the process backend
    speculatively reissues a straggler the moment it exceeds it (the
    first valid result wins); the in-process backends detect the
    overrun only after the attempt returns and keep the valid result.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    timeout_s: float | None = None
    failure_policy: str = FAIL_FAST
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")
        if self.failure_policy not in _POLICIES:
            raise ValueError(
                f"failure_policy must be one of {_POLICIES}, "
                f"got {self.failure_policy!r}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, "
                             f"got {self.timeout_s}")
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ValueError("backoff_s >= 0, backoff_factor >= 1, "
                             "jitter >= 0 required")

    def backoff(self, label: str, attempt: int) -> float:
        """Seconds to wait before launching ``attempt`` (1-based)."""
        if attempt <= 1 or self.backoff_s == 0.0:  # qf: exact-zero — disabled-backoff guard
            return 0.0
        base = self.backoff_s * self.backoff_factor ** (attempt - 2)
        digest = hashlib.sha256(
            f"{self.seed}|{label}|{attempt}".encode()
        ).digest()
        frac = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return base * (1.0 + self.jitter * frac)

    def as_dict(self) -> dict:
        return asdict(self)


class RunStore:
    """Atomic on-disk checkpoint of finished fragment responses.

    One ``frag_<key>.npz`` per fragment, where ``<key>`` is the
    content hash of the task (geometry + full execution config) from
    :func:`repro.pipeline.cache.task_key`. The npz round-trip is
    bitwise for float64 payloads, so a resumed run reproduces the
    uninterrupted spectrum exactly. Stray ``*.tmp.npz`` files from a
    crash mid-write are ignored by :meth:`load`.

    With a canonical mode other than ``off`` (``canonical=`` argument,
    default from ``QF_CANON``) the store doubles as a rigid-motion
    global cache: every checkpoint is also written under its canonical
    key (``canon_<key>.npz``, :class:`repro.pipeline.canonical.CanonicalStore`),
    and a task missing its exact checkpoint falls back to the canonical
    entry — so a *different* run over rotated copies of the same
    fragments resumes from this store too. Exact checkpoints are always
    consulted first, which keeps same-run resume bit-identical; a
    canonical fallback hit is exact physics but rotated floating point
    (tolerance-identical spectra; see ``docs/caching.md``).
    """

    def __init__(self, directory: str | Path,
                 canonical: str | None = None):
        from repro.pipeline.canonical import CANON_OFF, CanonicalStore, \
            canon_mode

        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        mode = canon_mode() if canonical is None else canonical
        self.canonical = (
            CanonicalStore(self.directory, mode=mode)
            if mode != CANON_OFF else None
        )

    def key_for(self, task: FragmentTask) -> str:
        return task_key(
            task.geometry, task.basis_name, task.delta,
            compute_raman=task.compute_raman, compute_ir=task.compute_ir,
            eri_mode=task.eri_mode, schwarz_cutoff=task.schwarz_cutoff,
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"frag_{key}.npz"

    def load(self, task: FragmentTask) -> FragmentResponse | None:
        path = self._path(self.key_for(task))
        if not path.exists():
            if self.canonical is not None:
                return self.canonical.load_task(task)
            return None
        data = np.load(path, allow_pickle=False)
        counters().inc("resilience.store_hits")
        return response_from_npz(data, task.geometry,
                                 meta={"run_store": True})

    def store(self, task: FragmentTask, response: FragmentResponse) -> Path:
        counters().inc("resilience.store_writes")
        if self.canonical is not None:
            self.canonical.store_task(task, response)
        return write_npz_atomic(self._path(self.key_for(task)),
                                response_payload(response))

    def _complete(self) -> list[Path]:
        # "frag_*.npz" would also match "frag_<key>.tmp.npz" debris a
        # killed writer left behind — only fully renamed files count
        return [p for p in self.directory.glob("frag_*.npz")
                if not p.name.endswith(".tmp.npz")]

    def keys(self) -> set[str]:
        return {p.stem[len("frag_"):] for p in self._complete()}

    def __len__(self) -> int:
        return len(self._complete())


@dataclass
class ResilienceReport:
    """What the fault-tolerance layer did during one ``run``.

    Embedded (as a dict) in the run's
    :class:`~repro.pipeline.executor.ThroughputReport`, and through it
    in the :class:`~repro.obs.manifest.RunManifest` — production runs
    must be auditable for how many results needed a second chance.
    """

    policy: dict = field(default_factory=dict)
    n_tasks: int = 0
    store_hits: int = 0
    store_writes: int = 0
    retries: int = 0
    reissues: int = 0
    timeouts: int = 0
    corrupted: int = 0
    pool_restarts: int = 0
    attempts: dict = field(default_factory=dict)     # label -> attempts used
    failures: dict = field(default_factory=dict)     # label -> [descriptions]
    skipped: list = field(default_factory=list)      # [{label, index, ...}]

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        bits = [f"{self.n_tasks} tasks", f"{self.store_hits} from store",
                f"{self.retries} retries", f"{self.reissues} reissues"]
        if self.skipped:
            bits.append(f"{len(self.skipped)} SKIPPED")
        return "resilience: " + ", ".join(bits)


@dataclass
class _FragmentState:
    """Pool-mode bookkeeping for one fragment."""

    task: FragmentTask
    attempts: int = 0        # attempts submitted so far
    live: int = 0            # in-flight attempts not yet timed out
    scheduled: int = 0       # queued (re)submissions not yet launched
    done: bool = False
    dead: bool = False       # exhausted; skipped under skip_and_report


class ResilientExecutor(FragmentExecutor):
    """Retry/timeout/checkpoint wrapper around an executor backend.

    ``run`` never hangs on a lost worker and never discards finished
    work: completed fragments go to the :class:`RunStore` (when
    configured) the moment they validate, and failures are retried per
    the :class:`ResiliencePolicy` before the failure policy decides
    between aborting and degrading.
    """

    name = "resilient"

    def __init__(
        self,
        base: str = "process",
        max_workers: int | None = None,
        policy: ResiliencePolicy | None = None,
        store: RunStore | str | Path | None = None,
        canonical: str | None = None,
    ):
        if base not in ("serial", "process", "displacement"):
            raise ValueError(
                f"unknown resilient base backend {base!r}; "
                "expected serial, process, or displacement"
            )
        super().__init__(max_workers=1 if base == "serial" else max_workers)
        self.base_name = base
        self.name = f"resilient+{base}"
        self.policy = policy if policy is not None else ResiliencePolicy()
        if store is not None and not isinstance(store, RunStore):
            # canonical (QF_CANON by default) additionally keys the
            # store by rigid-motion class — see RunStore
            store = RunStore(store, canonical=canonical)
        self.store = store
        self.last_report: ResilienceReport | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._base: FragmentExecutor | None = None
        if base == "process":
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        elif base == "serial":
            self._base = SerialExecutor()
        else:
            self._base = DisplacementExecutor(max_workers=self.max_workers)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._base is not None:
            self._base.close()

    def restart_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            counters().inc("resilience.pool_restarts")
        elif self._base is not None:
            self._base.restart_pool()

    # -- run ---------------------------------------------------------------

    def run(self, tasks):
        sw = Stopwatch()
        report = ResilienceReport(policy=self.policy.as_dict(),
                                  n_tasks=len(tasks))
        self.last_report = report
        responses: dict[int, FragmentResponse] = {}
        results: list[FragmentTaskResult] = []
        todo: list[FragmentTask] = []
        for task in largest_first(tasks):
            stored = self.store.load(task) if self.store is not None else None
            if stored is not None:
                report.store_hits += 1
                responses[task.index] = stored
                continue
            todo.append(task)
        if todo:
            if self.base_name == "process":
                self._run_pool(todo, responses, results, report)
            else:
                self._run_sync(todo, responses, results, report)
        throughput = self._report(results, sw.elapsed())
        throughput.n_tasks = len(tasks)
        throughput.resilience = report.as_dict()
        return responses, throughput

    # -- shared helpers ----------------------------------------------------

    def _failure_of(self, result: FragmentTaskResult,
                    report: ResilienceReport) -> str | None:
        """Why this attempt cannot be accepted (None = it can).

        Corrupted-array detection is always on here — in resilient
        mode a silently wrong result must feed the retry path, not the
        spectrum — hence ``force=True`` regardless of ``QF_SANITIZE``.
        """
        if result.error is not None:
            return f"worker raised: {result.error[0]}"
        try:
            check_response(result.response, label=result.label,
                           phase="resilient", force=True)
        except ContractViolation as exc:
            report.corrupted += 1
            counters().inc("resilience.corrupted")
            return f"corrupted result: {exc}"
        return None

    def _record_failure(self, report: ResilienceReport, label: str,
                        attempt: int, why: str) -> None:
        report.failures.setdefault(label, []).append(
            f"attempt {attempt}: {why}"
        )

    def _accept(self, task: FragmentTask, result: FragmentTaskResult,
                responses, results, report: ResilienceReport) -> None:
        responses[task.index] = result.response
        results.append(result)
        if self.store is not None:
            self.store.store(task, result.response)
            report.store_writes += 1

    def _give_up(self, task: FragmentTask,
                 report: ResilienceReport) -> None:
        failures = report.failures.get(task.label, [])
        counters().inc("resilience.skipped")
        entry = {
            "label": task.label,
            "index": task.index,
            "attempts": report.attempts.get(task.label, 0),
            "errors": list(failures),
        }
        report.skipped.append(entry)
        if self.policy.failure_policy == FAIL_FAST:
            raise FragmentExecutorError(
                task.label,
                f"retries exhausted after "
                f"{report.attempts.get(task.label, 0)} attempt(s): "
                + ("; ".join(failures) or "no attempt completed"),
            )

    # -- synchronous bases (serial, displacement) --------------------------

    def _run_sync(self, tasks, responses, results,
                  report: ResilienceReport) -> None:
        policy = self.policy
        for task in tasks:
            for attempt in range(1, policy.max_attempts + 1):
                report.attempts[task.label] = attempt
                if attempt > 1:
                    report.retries += 1
                    counters().inc("resilience.retries")
                    delay = policy.backoff(task.label, attempt)
                    if delay > 0:
                        time.sleep(delay)
                result = self._base.run_one(replace(task, attempt=attempt))
                merge_telemetry(result)
                failure = self._failure_of(result, report)
                if failure is None:
                    if policy.timeout_s is not None \
                            and result.wall_s > policy.timeout_s:
                        # post-hoc straggler detection: an in-process
                        # attempt cannot be preempted, so the (valid)
                        # late result is kept and only recorded
                        report.timeouts += 1
                        counters().inc("resilience.timeouts")
                    self._accept(task, result, responses, results, report)
                    break
                self._record_failure(report, task.label, attempt, failure)
                if "BrokenProcessPool" in failure:
                    # the displacement base shares one pool across
                    # fragments; replace it or every retry inherits
                    # the corpse
                    self._base.restart_pool()
                    report.pool_restarts += 1
            else:
                self._give_up(task, report)

    # -- asynchronous pool base (process) ----------------------------------

    def _run_pool(self, tasks, responses, results,
                  report: ResilienceReport) -> None:
        policy = self.policy
        clock = Stopwatch()
        state = {t.index: _FragmentState(task=t) for t in tasks}
        ready: list[tuple[float, int]] = [(0.0, t.index) for t in tasks]
        pending: dict = {}   # future -> [index, attempt, deadline, reissued]

        def submit(index: int) -> None:
            st = state[index]
            if st.done or st.dead or st.attempts >= policy.max_attempts:
                return
            st.attempts += 1
            st.live += 1
            report.attempts[st.task.label] = st.attempts
            fut = self._pool.submit(
                _run_task, replace(st.task, attempt=st.attempts)
            )
            deadline = (clock.elapsed() + policy.timeout_s
                        if policy.timeout_s is not None else None)
            pending[fut] = [index, st.attempts, deadline, False]

        def schedule_retry(st: _FragmentState, *, backoff: bool) -> None:
            """Queue the next attempt (ordinary retry or reissue)."""
            at = clock.elapsed()
            if backoff:
                report.retries += 1
                counters().inc("resilience.retries")
                at += policy.backoff(st.task.label, st.attempts + 1)
            else:
                report.reissues += 1
                counters().inc("resilience.reissues")
            st.scheduled += 1
            ready.append((at, st.task.index))

        def on_failure(st: _FragmentState, attempt: int, why: str) -> None:
            self._record_failure(report, st.task.label, attempt, why)
            if not st.done and not st.dead \
                    and st.attempts + st.scheduled < policy.max_attempts:
                schedule_retry(st, backoff=True)

        def settle_dead() -> None:
            """Declare fragments with no remaining path to success."""
            for st in state.values():
                if st.done or st.dead:
                    continue
                if st.attempts >= policy.max_attempts and st.live == 0 \
                        and st.scheduled == 0:
                    st.dead = True
                    self._give_up(st.task, report)   # raises on fail_fast

        try:
            while any(not (st.done or st.dead) for st in state.values()):
                now = clock.elapsed()
                # launch everything whose backoff has elapsed
                still_waiting = []
                for at, index in ready:
                    if at <= now:
                        state[index].scheduled = max(
                            0, state[index].scheduled - 1)
                        submit(index)
                    else:
                        still_waiting.append((at, index))
                ready[:] = still_waiting
                settle_dead()
                if not any(not (st.done or st.dead)
                           for st in state.values()):
                    break
                if not pending:
                    if not ready:       # pragma: no cover - defensive
                        raise RuntimeError(
                            "resilient pool loop stalled with unfinished "
                            "fragments and nothing in flight"
                        )
                    time.sleep(max(_MIN_TICK_S,
                                   min(at for at, _ in ready) - now))
                    continue
                # wait slice: the nearest deadline or queued launch
                horizons = [at - now for at, _ in ready]
                horizons += [rec[2] - now for rec in pending.values()
                             if rec[2] is not None and not rec[3]]
                tick = min(horizons) if horizons else _MAX_TICK_S
                tick = min(max(tick, _MIN_TICK_S), _MAX_TICK_S)
                finished, _ = wait(list(pending), timeout=tick,
                                   return_when=FIRST_COMPLETED)
                pool_broke = False
                for fut in finished:
                    index, attempt, _deadline, reissued = pending.pop(fut)
                    st = state[index]
                    if not reissued:
                        st.live -= 1
                    try:
                        result = fut.result()
                    except BrokenProcessPool as exc:
                        pool_broke = True
                        on_failure(st, attempt,
                                   f"worker process died before returning "
                                   f"({exc!r})")
                        continue
                    except CancelledError:      # pragma: no cover
                        continue
                    merge_telemetry(result)
                    if st.done or st.dead:
                        # a straggler's result arriving after the
                        # fragment was settled by a reissue
                        counters().inc("resilience.late_results")
                        continue
                    failure = self._failure_of(result, report)
                    if failure is None:
                        st.done = True
                        self._accept(st.task, result, responses, results,
                                     report)
                    else:
                        on_failure(st, attempt, failure)
                if pool_broke:
                    # every other in-flight future died with the pool
                    for fut, rec in list(pending.items()):
                        index, attempt, _d, reissued = rec
                        st = state[index]
                        if not reissued:
                            st.live -= 1
                        on_failure(st, attempt,
                                   "worker pool broke while task was in "
                                   "flight (BrokenProcessPool)")
                    pending.clear()
                    self.restart_pool()
                    report.pool_restarts += 1
                # speculative reissue of stragglers past their deadline
                if policy.timeout_s is not None:
                    now = clock.elapsed()
                    for fut, rec in pending.items():
                        index, attempt, deadline, reissued = rec
                        if reissued or deadline is None or now <= deadline:
                            continue
                        st = state[index]
                        rec[3] = True       # the attempt is written off
                        st.live -= 1
                        report.timeouts += 1
                        counters().inc("resilience.timeouts")
                        self._record_failure(
                            report, st.task.label, attempt,
                            f"timed out after {policy.timeout_s:.3g}s "
                            "(speculative reissue)",
                        )
                        if not st.done and not st.dead \
                                and st.attempts + st.scheduled \
                                < policy.max_attempts:
                            schedule_retry(st, backoff=False)
                settle_dead()
        except Exception:
            for fut in pending:
                fut.cancel()
            raise
