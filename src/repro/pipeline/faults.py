"""Deterministic fault injection for the fragment executors.

The paper's production runs survive worker crashes, stragglers, and
silent data corruption across 96,000 nodes; reproducing that resilience
is only credible if every recovery path can be exercised on demand.
This module is the injection seam: a :class:`FaultPlan` — parsed from
the ``QF_FAULTS`` environment variable (inherited by pool workers) or
the ``--inject-faults`` CLI flag — tells
:func:`repro.pipeline.executor._run_task` to misbehave on chosen
(fragment, attempt) pairs.

Grammar (clauses separated by ``;``)::

    clause  := kind ':' target ['@' attempts] [':' param]
    kind    := 'crash' | 'hang' | 'corrupt' | 'die'
    target  := fragment label — exact match, or fnmatch glob when the
               pattern contains '*' or '?' (labels contain '[' ']',
               which fnmatch would otherwise treat as char classes)
    attempts:= N | N '-' M | '*'      (1-based; default 1)
    param   := float (seconds for hang / die delay)

Kinds:

``crash``
    Raise :class:`InjectedFault` inside the task body — the ordinary
    "worker raised" path (captured, attributed, retried).
``hang``
    Sleep ``param`` seconds (default 30) before computing — a
    straggler; exercises wall-clock timeouts and speculative reissue.
``corrupt``
    Compute normally, then overwrite the Hessian with NaN — silent
    data corruption; exercises the contract-check → retry path.
``die``
    Sleep ``param`` seconds (default 0) then ``os._exit`` — a hard
    process kill. In a pool worker this surfaces as
    ``BrokenProcessPool``; in the parent (serial backend) it kills the
    driver itself, which is how the kill-mid-run → resume tests
    simulate a SIGKILL'd run.

Examples::

    QF_FAULTS='crash:water[0]@1'          # raise on first attempt only
    QF_FAULTS='hang:ww[0,1]@1:0.75'       # straggle 0.75 s once
    QF_FAULTS='corrupt:w*@1-2;die:frag[3]@*:0.2'

Determinism: the plan is pure data — the same spec, labels, and
attempt numbers always produce the same faults, so CI can assert exact
retry/reissue counts.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from fnmatch import fnmatchcase

__all__ = [
    "DIE_EXIT_CODE",
    "Fault",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFault",
    "active_fault_plan",
]

#: exit status of a ``die`` fault — distinctive, so tests can tell an
#: injected kill from an ordinary crash
DIE_EXIT_CODE = 23

_KINDS = ("crash", "hang", "corrupt", "die")
_DEFAULT_PARAM = {"hang": 30.0, "die": 0.0, "crash": 0.0, "corrupt": 0.0}


class FaultSpecError(ValueError):
    """A ``QF_FAULTS`` / ``--inject-faults`` spec failed to parse."""


class InjectedFault(RuntimeError):
    """The exception a ``crash`` fault raises inside the task body."""


@dataclass(frozen=True)
class Fault:
    """One injection clause: do ``kind`` to ``target`` on ``attempts``."""

    kind: str
    target: str
    attempt_lo: int = 1
    attempt_hi: int | None = 1      # None = every attempt ('@*')
    param: float = 0.0

    def matches(self, label: str, attempt: int) -> bool:
        if attempt < self.attempt_lo:
            return False
        if self.attempt_hi is not None and attempt > self.attempt_hi:
            return False
        if "*" in self.target or "?" in self.target:
            return fnmatchcase(label, self.target)
        return label == self.target


def _parse_attempts(text: str) -> tuple[int, int | None]:
    if text == "*":
        return 1, None
    try:
        if "-" in text:
            lo_s, hi_s = text.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
        else:
            lo = hi = int(text)
    except ValueError:
        raise FaultSpecError(
            f"bad attempt selector {text!r} (want N, N-M, or *)"
        ) from None
    if lo < 1 or (hi is not None and hi < lo):
        raise FaultSpecError(f"bad attempt range {text!r} (1-based, lo<=hi)")
    return lo, hi


def _parse_clause(clause: str) -> Fault:
    head, sep, rest = clause.partition(":")
    kind = head.strip()
    if kind not in _KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} in {clause!r}; "
            f"expected one of {_KINDS}"
        )
    if not sep or not rest:
        raise FaultSpecError(f"fault clause {clause!r} needs a ':target'")
    # rest = target[@attempts][:param] — target may contain anything but
    # ';', ':' and '@'
    target, _, param_s = rest.partition(":")
    param = _DEFAULT_PARAM[kind]
    if param_s:
        try:
            param = float(param_s)
        except ValueError:
            raise FaultSpecError(
                f"bad numeric param {param_s!r} in {clause!r}"
            ) from None
        if param < 0:
            raise FaultSpecError(f"negative param in {clause!r}")
    target, at, attempts_s = target.partition("@")
    target = target.strip()
    if not target:
        raise FaultSpecError(f"empty target in fault clause {clause!r}")
    lo, hi = _parse_attempts(attempts_s.strip()) if at else (1, 1)
    return Fault(kind=kind, target=target, attempt_lo=lo, attempt_hi=hi,
                 param=param)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`Fault` clauses (first match wins)."""

    faults: tuple[Fault, ...] = ()
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        clauses = [c.strip() for c in spec.split(";") if c.strip()]
        return cls(faults=tuple(_parse_clause(c) for c in clauses),
                   spec=spec)

    def lookup(self, label: str, attempt: int) -> Fault | None:
        for fault in self.faults:
            if fault.matches(label, attempt):
                return fault
        return None

    def __bool__(self) -> bool:
        return bool(self.faults)


# parse-once cache keyed by the env spec string, so repeated task
# dispatch costs one dict lookup and tests can monkeypatch QF_FAULTS
# mid-process
_PLAN_CACHE: dict[str, FaultPlan] = {}


def active_fault_plan() -> FaultPlan | None:
    """The plan from ``QF_FAULTS``, or None when unset/empty."""
    spec = os.environ.get("QF_FAULTS", "")
    if not spec.strip():
        return None
    plan = _PLAN_CACHE.get(spec)
    if plan is None:
        plan = FaultPlan.parse(spec)
        _PLAN_CACHE[spec] = plan
    return plan


def apply_pre_fault(fault: Fault | None) -> None:
    """Run the pre-compute side of ``fault`` (crash / hang / die).

    Called inside the task body, so a ``crash`` raise is captured by
    the normal error path and attributed to the fragment.
    """
    if fault is None:
        return
    if fault.kind == "die":
        if fault.param > 0:
            time.sleep(fault.param)
        os._exit(DIE_EXIT_CODE)
    if fault.kind == "crash":
        raise InjectedFault(
            f"injected crash (fault {fault.kind}:{fault.target})"
        )
    if fault.kind == "hang":
        time.sleep(fault.param)


def apply_post_fault(fault: Fault | None, response) -> None:
    """Run the post-compute side of ``fault`` (corrupt)."""
    if fault is None or fault.kind != "corrupt" or response is None:
        return
    response.hessian[...] = float("nan")
    response.meta["injected_corruption"] = True
