"""Rigid-body reuse of fragment responses.

A water box contains thousands of molecules that are *identical up to
rotation and translation*. Their Hessians and Raman tensors transform
tensorially, so one reference response serves every copy:

    H' = T H T^T,                   T = blockdiag(R, R, ..., R)
    (dalpha/dR)'_{Ix,ij} = sum R_{x x'} R_{i i'} R_{j j'} (dalpha)_{I x', i' j'}

This reuse is exact (unlike any numerical shortcut) and is what makes
large water boxes tractable on one core. The alignment rotation comes
from the Kabsch algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry


def kabsch_rotation(reference: np.ndarray, target: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, float]:
    """Best-fit rotation R and translation t with target ~ ref @ R.T + t.

    Returns (R, t, rmsd). Proper rotation enforced (det = +1).
    """
    p = np.asarray(reference, dtype=float).reshape(-1, 3)
    q = np.asarray(target, dtype=float).reshape(-1, 3)
    if p.shape != q.shape:
        raise ValueError("shape mismatch in kabsch_rotation")
    pc = p - p.mean(axis=0)
    qc = q - q.mean(axis=0)
    h = pc.T @ qc
    u, _s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    corr = np.diag([1.0, 1.0, d])
    r = vt.T @ corr @ u.T
    t = q.mean(axis=0) - p.mean(axis=0) @ r.T
    rmsd = float(np.sqrt(np.mean(np.sum((pc @ r.T - qc) ** 2, axis=1))))
    return r, t, rmsd


def geometry_signature(geometry: Geometry, decimals: int = 5) -> tuple:
    """Rotation/translation-invariant fingerprint of a geometry:
    element symbols + the sorted rounded pairwise-distance multiset."""
    coords = geometry.coords
    n = coords.shape[0]
    dists = []
    for i in range(n):
        d = np.linalg.norm(coords[i + 1:] - coords[i], axis=1)
        dists.extend(np.round(d, decimals))
    return (tuple(geometry.symbols), tuple(sorted(dists)))


def snap_rigid_copies(
    copies: list[Geometry],
    template: Geometry,
) -> list[Geometry]:
    """Replace each copy's internal geometry with the template's.

    Each copy keeps its position and orientation (Kabsch best fit) but
    gets the template's exact internal coordinates. Used to relax every
    water in a box to the level-of-theory equilibrium at the cost of a
    single monomer optimization — vibrational analysis then sees no
    spurious intramolecular strain.
    """
    out = []
    for copy in copies:
        if list(copy.symbols) != list(template.symbols):
            raise ValueError("template/copy element mismatch")
        r, t, _rmsd = kabsch_rotation(template.coords, copy.coords)
        coords = template.coords @ r.T + t
        out.append(Geometry(list(copy.symbols), coords, copy.charge,
                            list(copy.labels)))
    return out


def rotate_response(response: FragmentResponse, rotation: np.ndarray,
                    target: Geometry) -> FragmentResponse:
    """Transform a fragment response into a rotated copy's frame."""
    r = np.asarray(rotation, dtype=float).reshape(3, 3)
    n = response.geometry.natoms
    big = np.zeros((3 * n, 3 * n))
    for i in range(n):
        big[3 * i: 3 * i + 3, 3 * i: 3 * i + 3] = r
    hessian = big @ response.hessian @ big.T
    dalpha = None
    if response.dalpha_dr is not None:
        d = response.dalpha_dr.reshape(n, 3, 3, 3)
        dalpha = np.einsum("xw,iq,jp,nwqp->nxij", r, r, r, d).reshape(3 * n, 3, 3)
    alpha = None
    if response.alpha is not None:
        alpha = r @ response.alpha @ r.T
    dmu = None
    if response.dmu_dr is not None:
        # (dmu/dR)'_{Ix,i} = R_{xx'} R_{ii'} (dmu/dR)_{Ix',i'}: both the
        # displacement index and the dipole component rotate
        d = response.dmu_dr.reshape(n, 3, 3)
        dmu = np.einsum("xw,ip,nwp->nxi", r, r, d).reshape(3 * n, 3)
    grad = response.gradient @ r.T
    return FragmentResponse(
        geometry=target,
        energy=response.energy,
        hessian=hessian,
        dalpha_dr=dalpha,
        alpha=alpha,
        gradient=grad,
        dmu_dr=dmu,
        meta=dict(response.meta, rotated=True),
    )
