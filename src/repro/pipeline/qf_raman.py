"""The QF-RAMAN pipeline driver.

Equivalent of the paper's production run at laptop scale:

1. decompose protein + waters into QF pieces (Eq. 1),
2. compute each unique piece's Hessian and Raman tensor with the
   DFPT displacement loop (rigid duplicates are rotated, not
   recomputed),
3. assemble the global Hessian / polarizability derivative,
4. evaluate the Raman spectrum with the dense baseline or the
   Lanczos + GAGQ solver (§V-E).

The driver also exports the fragment-size workload so the same
decomposition can be fed to the simulated supercomputers
(:func:`repro.hpc.scheduler.simulate_qf_run`) for timing studies —
that bridge is what connects the chemistry half of this repository to
the scaling half.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.dfpt.hessian import FragmentResponse, fragment_response
from repro.fragment.assembly import (
    AssembledResponse,
    assemble_response,
    assemble_sparse_hessian,
)
from repro.fragment.fragmenter import QFDecomposition, decompose_system
from repro.geometry.atoms import Geometry
from repro.geometry.protein import BuiltResidue
from repro.pipeline.rigid import (
    geometry_signature,
    kabsch_rotation,
    rotate_response,
)
from repro.spectra.raman import (
    RamanSpectrum,
    raman_spectrum_dense,
    raman_spectrum_lanczos,
)
from repro.utils.timing import Timer


@dataclass
class PipelineResult:
    """Everything a QF-RAMAN run produces."""

    decomposition: QFDecomposition
    responses: list[FragmentResponse]
    assembled: AssembledResponse
    spectrum: RamanSpectrum | None
    masses_amu: np.ndarray
    unique_pieces: int
    timer: Timer = field(default_factory=Timer)

    @property
    def natoms(self) -> int:
        return self.assembled.natoms


class QFRamanPipeline:
    """Configure once, run the whole chain."""

    def __init__(
        self,
        protein: Geometry | None = None,
        residues: list[BuiltResidue] | None = None,
        waters: list[Geometry] | None = None,
        lambda_angstrom: float = 4.0,
        min_sequence_separation: int = 3,
        basis_name: str = "sto-3g",
        eri_mode: str = "auto",
        dedupe_rigid: bool = True,
        compute_raman: bool = True,
        delta: float = 5.0e-3,
        relax_waters: bool = False,
        cache_dir: str | None = None,
        verbose: bool = False,
    ):
        if protein is None and not waters:
            raise ValueError("pipeline needs a protein, waters, or both")
        self.protein = protein
        self.residues = residues
        self.waters = waters or []
        if relax_waters and self.waters:
            # optimize one monomer, snap every copy onto it — removes
            # intramolecular strain from the generator geometry so the
            # O-H bands sit at the level-of-theory positions
            from repro.pipeline.rigid import snap_rigid_copies
            from repro.scf.optimize import optimize_geometry

            opt = optimize_geometry(
                self.waters[0], basis_name=basis_name, eri_mode=eri_mode
            )
            self.waters = snap_rigid_copies(self.waters, opt.geometry)
        self.lambda_angstrom = lambda_angstrom
        self.min_sequence_separation = min_sequence_separation
        self.basis_name = basis_name
        self.eri_mode = eri_mode
        self.dedupe_rigid = dedupe_rigid
        self.compute_raman = compute_raman
        self.delta = delta
        self.verbose = verbose
        self.timer = Timer()
        self.cache = None
        if cache_dir is not None:
            from repro.pipeline.cache import ResponseCache

            self.cache = ResponseCache(cache_dir)

    # -- steps -----------------------------------------------------------------

    def decompose(self) -> QFDecomposition:
        with self.timer.section("decompose"):
            return decompose_system(
                protein=self.protein,
                residues=self.residues,
                waters=self.waters,
                lambda_angstrom=self.lambda_angstrom,
                min_sequence_separation=self.min_sequence_separation,
            )

    def compute_responses(self, decomposition: QFDecomposition
                          ) -> tuple[list[FragmentResponse], int]:
        """One :class:`FragmentResponse` per piece (rigid copies reused)."""
        cache: dict[tuple, tuple[FragmentResponse, Geometry]] = {}
        responses: list[FragmentResponse] = []
        unique = 0
        for k, piece in enumerate(decomposition.pieces):
            sig = geometry_signature(piece.geometry) if self.dedupe_rigid else None
            if sig is not None and sig in cache:
                ref_resp, ref_geom = cache[sig]
                rot, _t, rmsd = kabsch_rotation(
                    ref_geom.coords, piece.geometry.coords
                )
                if rmsd < 1.0e-6:
                    with self.timer.section("rotate_response"):
                        responses.append(
                            rotate_response(ref_resp, rot, piece.geometry)
                        )
                    continue
            if self.cache is not None:
                stored = self.cache.load(piece.geometry, self.basis_name,
                                         self.delta)
                if stored is not None and (
                    not self.compute_raman or stored.dalpha_dr is not None
                ):
                    responses.append(stored)
                    if sig is not None:
                        cache[sig] = (stored, piece.geometry)
                    continue
            self._log(
                f"[{k + 1}/{len(decomposition.pieces)}] response for "
                f"{piece.label} ({piece.natoms} atoms)"
            )
            with self.timer.section("fragment_response"):
                resp = fragment_response(
                    piece.geometry,
                    delta=self.delta,
                    compute_raman=self.compute_raman,
                    basis_name=self.basis_name,
                    eri_mode=self.eri_mode,
                )
            unique += 1
            responses.append(resp)
            if self.cache is not None:
                self.cache.store(resp, self.basis_name, self.delta)
            if sig is not None:
                cache[sig] = (resp, piece.geometry)
        return responses, unique

    def masses(self) -> np.ndarray:
        parts = []
        if self.protein is not None:
            parts.append(self.protein.masses)
        for w in self.waters:
            parts.append(w.masses)
        return np.concatenate(parts)

    # -- the full run -------------------------------------------------------------

    def run(
        self,
        omega_cm1: np.ndarray | None = None,
        sigma_cm1: float = 20.0,
        solver: str = "dense",
        lanczos_k: int = 150,
        convention: str = "standard",
    ) -> PipelineResult:
        decomposition = self.decompose()
        self._log(
            f"decomposed into {len(decomposition.pieces)} pieces "
            f"({decomposition.counts})"
        )
        responses, unique = self.compute_responses(decomposition)
        with self.timer.section("assemble"):
            assembled = assemble_response(
                decomposition.pieces, responses, decomposition.natoms_total
            )
        masses = self.masses()
        spectrum = None
        if omega_cm1 is not None and self.compute_raman:
            with self.timer.section("spectrum"):
                if solver == "dense":
                    spectrum = raman_spectrum_dense(
                        assembled.hessian, assembled.dalpha_dr, masses,
                        omega_cm1, sigma_cm1, convention=convention,
                    )
                elif solver == "lanczos":
                    h_mw = assemble_sparse_hessian(
                        decomposition.pieces, responses,
                        decomposition.natoms_total, masses_amu=masses,
                    )
                    spectrum = raman_spectrum_lanczos(
                        h_mw, assembled.dalpha_dr, masses, omega_cm1,
                        sigma_cm1, k=lanczos_k, convention=convention,
                        mass_weighted=True,
                    )
                else:
                    raise ValueError(f"unknown solver {solver!r}")
        return PipelineResult(
            decomposition=decomposition,
            responses=responses,
            assembled=assembled,
            spectrum=spectrum,
            masses_amu=masses,
            unique_pieces=unique,
            timer=self.timer,
        )

    def workload_sizes(self, decomposition: QFDecomposition | None = None
                       ) -> np.ndarray:
        """Fragment sizes for the HPC scheduler simulation."""
        decomposition = decomposition or self.decompose()
        return np.array([p.natoms for p in decomposition.pieces])

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[qf-raman] {msg}", file=sys.stderr, flush=True)
