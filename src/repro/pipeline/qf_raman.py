"""The QF-RAMAN pipeline driver.

Equivalent of the paper's production run at laptop scale:

1. decompose protein + waters into QF pieces (Eq. 1),
2. compute each unique piece's Hessian and Raman tensor with the
   DFPT displacement loop (rigid duplicates are rotated, not
   recomputed),
3. assemble the global Hessian / polarizability derivative,
4. evaluate the Raman spectrum with the dense baseline or the
   Lanczos + GAGQ solver (§V-E).

The driver also exports the fragment-size workload so the same
decomposition can be fed to the simulated supercomputers
(:func:`repro.hpc.scheduler.simulate_qf_run`) for timing studies —
that bridge is what connects the chemistry half of this repository to
the scaling half.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.devtools.contracts import check_array, sanitize_enabled
from repro.dfpt.hessian import FragmentResponse
from repro.fragment.assembly import (
    AssembledResponse,
    assemble_response,
    assemble_sparse_hessian,
)
from repro.fragment.fragmenter import QFDecomposition, decompose_system
from repro.geometry.atoms import Geometry
from repro.geometry.protein import BuiltResidue
from repro.obs.counters import counters
from repro.obs.tracer import get_tracer
from repro.pipeline.executor import (
    FragmentExecutor,
    FragmentTask,
    ThroughputReport,
    make_executor,
)
from repro.pipeline.rigid import (
    geometry_signature,
    kabsch_rotation,
    rotate_response,
)
from repro.spectra.raman import (
    RamanSpectrum,
    raman_spectrum_dense,
    raman_spectrum_lanczos,
)
from repro.utils.timing import Timer


@dataclass
class PipelineResult:
    """Everything a QF-RAMAN run produces."""

    decomposition: QFDecomposition
    responses: list[FragmentResponse | None]
    assembled: AssembledResponse
    spectrum: RamanSpectrum | None
    masses_amu: np.ndarray
    unique_pieces: int
    timer: Timer = field(default_factory=Timer)
    throughput: ThroughputReport | None = None
    #: labels of pieces missing from the Eq. (1) assembly — non-empty
    #: only after a fault-tolerant run under ``skip_and_report``
    #: exhausted a fragment's retries (their ``responses`` entries are
    #: None and the spectrum is a flagged partial result)
    skipped_fragments: list[str] = field(default_factory=list)
    #: rigid-motion canonical-cache accounting (hits/misses/rotations/
    #: hit_rate) when the run used one — flows into the RunManifest
    canonical: dict | None = None

    @property
    def natoms(self) -> int:
        return self.assembled.natoms

    @property
    def is_partial(self) -> bool:
        return bool(self.skipped_fragments)


class QFRamanPipeline:
    """Configure once, run the whole chain."""

    def __init__(
        self,
        protein: Geometry | None = None,
        residues: list[BuiltResidue] | None = None,
        waters: list[Geometry] | None = None,
        lambda_angstrom: float = 4.0,
        min_sequence_separation: int = 3,
        basis_name: str = "sto-3g",
        eri_mode: str = "auto",
        dedupe_rigid: bool = True,
        compute_raman: bool = True,
        delta: float = 5.0e-3,
        relax_waters: bool = False,
        cache_dir: str | None = None,
        verbose: bool = False,
        executor: str | FragmentExecutor = "serial",
        max_workers: int | None = None,
        schwarz_cutoff: float = 1.0e-12,
        resilience=None,
        run_store=None,
        canonical_cache: str | None = None,
        canonical_mode: str | None = None,
    ):
        if protein is None and not waters:
            raise ValueError("pipeline needs a protein, waters, or both")
        self.protein = protein
        self.residues = residues
        self.waters = waters or []
        if relax_waters and self.waters:
            # optimize one monomer, snap every copy onto it — removes
            # intramolecular strain from the generator geometry so the
            # O-H bands sit at the level-of-theory positions
            from repro.pipeline.rigid import snap_rigid_copies
            from repro.scf.optimize import optimize_geometry

            opt = optimize_geometry(
                self.waters[0], basis_name=basis_name, eri_mode=eri_mode
            )
            self.waters = snap_rigid_copies(self.waters, opt.geometry)
        self.lambda_angstrom = lambda_angstrom
        self.min_sequence_separation = min_sequence_separation
        self.basis_name = basis_name
        self.eri_mode = eri_mode
        self.dedupe_rigid = dedupe_rigid
        self.compute_raman = compute_raman
        self.delta = delta
        self.verbose = verbose
        #: executor backend name or a ready FragmentExecutor instance;
        #: see :mod:`repro.pipeline.executor` for the three backends
        self.executor = executor
        self.max_workers = max_workers
        self.schwarz_cutoff = schwarz_cutoff
        #: a ResiliencePolicy (or True for defaults) and/or a RunStore
        #: directory switch the run into fault-tolerant execution —
        #: retries, timeouts, checkpoint/resume (docs/resilience.md);
        #: ignored when ``executor`` is a ready instance
        self.resilience = resilience
        self.run_store = run_store
        self.resilience_report: dict | None = None
        self.skipped_fragments: list[str] = []
        self.throughput: ThroughputReport | None = None
        self.timer = Timer()
        #: rigid-motion canonical cache (docs/caching.md): a persistent
        #: global store shared across runs — rotated copies of an
        #: already-stored fragment hit instead of recomputing. The mode
        #: (off|exact|rigid) comes from ``canonical_mode``, else
        #: ``QF_CANON``, else ``rigid`` when a store directory is given.
        from repro.pipeline.canonical import (
            CANON_OFF,
            CANON_RIGID,
            CanonicalStore,
            canon_mode,
        )

        self._canonical_param = canonical_mode
        if canonical_mode is None:
            canonical_mode = canon_mode(
                default=CANON_RIGID if canonical_cache else CANON_OFF
            )
        self.canonical_mode = canonical_mode
        self.canonical = None
        if canonical_cache is not None and canonical_mode != CANON_OFF:
            self.canonical = CanonicalStore(canonical_cache,
                                            mode=canonical_mode)
        self.cache = None
        if cache_dir is not None:
            from repro.pipeline.cache import ResponseCache

            self.cache = ResponseCache(cache_dir,
                                       canonical=self._canonical_param)

    # -- steps -----------------------------------------------------------------

    def decompose(self) -> QFDecomposition:
        with self.timer.section("decompose"), \
                get_tracer().span("decompose") as sp:
            dec = decompose_system(
                protein=self.protein,
                residues=self.residues,
                waters=self.waters,
                lambda_angstrom=self.lambda_angstrom,
                min_sequence_separation=self.min_sequence_separation,
            )
            sp.set(pieces=len(dec.pieces), natoms=dec.natoms_total)
        return dec

    def compute_responses(self, decomposition: QFDecomposition
                          ) -> tuple[list[FragmentResponse], int]:
        """One :class:`FragmentResponse` per piece (rigid copies reused).

        Three phases: *plan* (resolve rigid duplicates and disk-cache
        hits, leaving a list of pieces that genuinely need a QM run),
        *execute* (hand those to the configured executor backend —
        serial, process pool, or per-displacement pool), *assemble*
        (fill the per-piece response list in decomposition order,
        rotating duplicates off their computed representative). The
        plan mirrors the original serial control flow exactly, so every
        backend produces identical responses.
        """
        # -- plan: what does each piece resolve to? --------------------------
        # rep[sig] = index of the latest piece computed/loaded for sig
        rep: dict[tuple, int] = {}
        plan: list[tuple] = []          # ("rotate", ref_idx, rot) |
        #                                 ("cached", resp) | ("compute",)
        tasks: list[FragmentTask] = []
        pieces = decomposition.pieces
        for k, piece in enumerate(pieces):
            sig = geometry_signature(piece.geometry) if self.dedupe_rigid else None
            if sig is not None and sig in rep:
                ref_geom = pieces[rep[sig]].geometry
                rot, _t, rmsd = kabsch_rotation(
                    ref_geom.coords, piece.geometry.coords
                )
                if rmsd < 1.0e-6:
                    plan.append(("rotate", rep[sig], rot))
                    continue
            if self.cache is not None:
                stored = self.cache.load(piece.geometry, self.basis_name,
                                         self.delta)
                if stored is not None and (
                    not self.compute_raman or stored.dalpha_dr is not None
                ):
                    plan.append(("cached", stored))
                    if sig is not None:
                        rep[sig] = k
                    continue
            if self.canonical is not None:
                stored = self.canonical.load(
                    piece.geometry, self.basis_name, self.delta,
                    compute_raman=self.compute_raman,
                    eri_mode=self.eri_mode,
                    schwarz_cutoff=self.schwarz_cutoff,
                )
                if stored is not None and (
                    not self.compute_raman or stored.dalpha_dr is not None
                ):
                    plan.append(("cached", stored))
                    if sig is not None:
                        rep[sig] = k
                    continue
            plan.append(("compute",))
            tasks.append(
                FragmentTask(
                    index=k,
                    label=piece.label or f"piece-{k}",
                    geometry=piece.geometry,
                    delta=self.delta,
                    compute_raman=self.compute_raman,
                    basis_name=self.basis_name,
                    eri_mode=self.eri_mode,
                    schwarz_cutoff=self.schwarz_cutoff,
                )
            )
            if sig is not None:
                rep[sig] = k

        # -- execute the remaining unique pieces -----------------------------
        computed: dict[int, FragmentResponse] = {}
        if tasks:
            owns_executor = isinstance(self.executor, str)
            executor = (
                make_executor(self.executor, max_workers=self.max_workers,
                              resilience=self.resilience,
                              run_store=self.run_store,
                              canonical=self._canonical_param)
                if owns_executor else self.executor
            )
            self._log(
                f"computing {len(tasks)} unique pieces with "
                f"backend={executor.name} workers={executor.max_workers}"
            )
            try:
                with self.timer.section("fragment_response"), \
                        get_tracer().span(
                            "fragment_response", n_tasks=len(tasks),
                            backend=executor.name,
                        ):
                    computed, self.throughput = executor.run(tasks)
            finally:
                if owns_executor:
                    executor.close()
            self._log(self.throughput.summary())
            self.resilience_report = self.throughput.resilience
            if self.resilience_report is not None:
                counters().inc("pipeline.resilient_runs")
            # fold the per-fragment sub-phase timers (scf_base,
            # scf_displaced, cphf_displaced, ...) into the pipeline
            # timer so phase_wall_s covers worker time, not just the
            # parent's own sections (skipped fragments have no result)
            for task in tasks:
                resp = computed.get(task.index)
                sub = resp.meta.get("timer") if resp is not None else None
                if sub is not None:
                    self.timer.merge(sub)
            if self.cache is not None:
                for task in tasks:
                    resp = computed.get(task.index)
                    if resp is not None:
                        self.cache.store(resp, self.basis_name, self.delta)
            if self.canonical is not None:
                # populate the global store: one canonical entry per
                # fragment class, hit by every rigid copy in later runs
                for task in tasks:
                    resp = computed.get(task.index)
                    if resp is not None:
                        self.canonical.store_task(task, resp)

        # -- assemble in decomposition order ----------------------------------
        # a fault-tolerant run under skip_and_report may come back with
        # fragments missing; their entries (and any rigid duplicates
        # rotated off them) become None and are flagged for the caller
        responses: list[FragmentResponse | None] = []
        self.skipped_fragments = []
        for k, (piece, entry) in enumerate(zip(pieces, plan)):
            kind = entry[0]
            label = piece.label or f"piece-{k}"
            if kind == "compute":
                resp = computed.get(k)
                if resp is None:
                    self.skipped_fragments.append(label)
                    counters().inc("pipeline.skipped_fragments")
                responses.append(resp)
            elif kind == "cached":
                responses.append(entry[1])
            else:  # rotate off the representative (computed or cached)
                _kind, ref_idx, rot = entry
                if responses[ref_idx] is None:
                    self.skipped_fragments.append(label)
                    counters().inc("pipeline.skipped_fragments")
                    responses.append(None)
                    continue
                counters().inc("pipeline.rigid_rotations")
                with self.timer.section("rotate_response"), \
                        get_tracer().span("rotate_response"):
                    responses.append(
                        rotate_response(responses[ref_idx], rot,
                                        piece.geometry)
                    )
        if self.skipped_fragments:
            self._log(
                f"WARNING: assembling a PARTIAL spectrum — "
                f"{len(self.skipped_fragments)} piece(s) missing: "
                f"{', '.join(self.skipped_fragments)}"
            )
        return responses, len(tasks)

    def masses(self) -> np.ndarray:
        parts = []
        if self.protein is not None:
            parts.append(self.protein.masses)
        for w in self.waters:
            parts.append(w.masses)
        return np.concatenate(parts)

    # -- the full run -------------------------------------------------------------

    def run(
        self,
        omega_cm1: np.ndarray | None = None,
        sigma_cm1: float = 20.0,
        solver: str = "dense",
        lanczos_k: int = 150,
        convention: str = "standard",
    ) -> PipelineResult:
        with get_tracer().span("run", solver=solver) as run_span:
            return self._run(
                omega_cm1, sigma_cm1, solver, lanczos_k, convention, run_span
            )

    def _run(self, omega_cm1, sigma_cm1, solver, lanczos_k, convention,
             run_span) -> PipelineResult:
        decomposition = self.decompose()
        self._log(
            f"decomposed into {len(decomposition.pieces)} pieces "
            f"({decomposition.counts})"
        )
        run_span.set(pieces=len(decomposition.pieces),
                     natoms=decomposition.natoms_total)
        responses, unique = self.compute_responses(decomposition)
        # skip_and_report degradation: assemble only the pieces that
        # have a response; the rest are flagged on the result/manifest
        present = [(p, r) for p, r in zip(decomposition.pieces, responses)
                   if r is not None]
        pieces_ok = [p for p, _ in present]
        responses_ok = [r for _, r in present]
        if self.skipped_fragments:
            run_span.set(skipped=len(self.skipped_fragments))
        with self.timer.section("assemble"), get_tracer().span("assemble"):
            assembled = assemble_response(
                pieces_ok, responses_ok, decomposition.natoms_total
            )
        if sanitize_enabled():
            # the Eq. (1) signed sum must preserve Hermiticity and
            # finiteness; an index-inconsistent piece breaks both
            n3 = 3 * decomposition.natoms_total
            ctx = f"assembly pieces={len(decomposition.pieces)} natoms3={n3}"
            check_array("assembled.hessian", assembled.hessian,
                        symmetric=True, shape=(n3, n3), context=ctx)
            if assembled.dalpha_dr is not None:
                check_array("assembled.dalpha_dr", assembled.dalpha_dr,
                            shape=(n3, 3, 3), context=ctx)
        masses = self.masses()
        spectrum = None
        if omega_cm1 is not None and self.compute_raman:
            with self.timer.section("spectrum"), \
                    get_tracer().span("spectrum", solver=solver):
                if solver == "dense":
                    spectrum = raman_spectrum_dense(
                        assembled.hessian, assembled.dalpha_dr, masses,
                        omega_cm1, sigma_cm1, convention=convention,
                    )
                elif solver == "lanczos":
                    h_mw = assemble_sparse_hessian(
                        pieces_ok, responses_ok,
                        decomposition.natoms_total, masses_amu=masses,
                    )
                    spectrum = raman_spectrum_lanczos(
                        h_mw, assembled.dalpha_dr, masses, omega_cm1,
                        sigma_cm1, k=lanczos_k, convention=convention,
                        mass_weighted=True,
                    )
                else:
                    raise ValueError(f"unknown solver {solver!r}")
        if self.throughput is None:
            # a fully cached / rotate-only run never touches the
            # executor, but the run-level report (and its phase walls)
            # must still exist
            self.throughput = ThroughputReport(
                backend="cached", max_workers=0, n_tasks=0, wall_s=0.0,
                fragments_per_s=0.0, worker_utilization=0.0,
            )
        self.throughput.phase_wall_s = dict(self.timer.totals)
        return PipelineResult(
            decomposition=decomposition,
            responses=responses,
            assembled=assembled,
            spectrum=spectrum,
            masses_amu=masses,
            unique_pieces=unique,
            timer=self.timer,
            throughput=self.throughput,
            skipped_fragments=list(self.skipped_fragments),
            canonical=(self.canonical.stats()
                       if self.canonical is not None else None),
        )

    def workload_sizes(self, decomposition: QFDecomposition | None = None
                       ) -> np.ndarray:
        """Fragment sizes for the HPC scheduler simulation."""
        decomposition = decomposition or self.decompose()
        return np.array([p.natoms for p in decomposition.pieces])

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[qf-raman] {msg}", file=sys.stderr, flush=True)
