"""Rigid-motion canonical fragment cache.

A 100M-atom water box is millions of *nearly identical* fragments: the
same water geometry repeated under rotations and translations. The
exact-coordinate stores (:class:`~repro.pipeline.cache.ResponseCache`,
:class:`~repro.pipeline.resilience.RunStore`) treat every rigid copy
as new work; this module collapses them onto one entry.

Canonicalization
----------------
:func:`canonicalize` maps a geometry to a rigid-motion-invariant
*canonical frame*:

1. translate to the center of mass;
2. enumerate candidate right-handed frames built **from the atoms
   themselves** (first axis through an anchor atom of the
   lexicographically smallest element symbol, second axis through the
   off-axis component of every other atom) — never from
   ``np.linalg.eigh`` of the inertia tensor, whose eigenvector signs
   and degenerate-subspace bases are platform lottery tickets;
3. in each candidate frame, quantize the coordinates to a fixed grid
   (:data:`CANON_DECIMALS` decimals, bohr) and sort the atoms by
   (symbol, x, y, z);
4. keep the lexicographically smallest encoding.

Because every candidate frame co-rotates with the molecule, the chosen
encoding — and hence the content key — is invariant under rotations,
translations, and atom-index permutations, and *deterministic*: ties
between symmetry-equivalent frames produce identical encodings, so any
winner yields the same key. Only proper rotations are enumerated, so
mirror images (enantiomers) keep distinct keys — an improper rotation
cannot be applied to the stored tensors by
:func:`~repro.pipeline.rigid.rotate_response`.

Degenerate geometries (linear molecules, symmetric tops, accidentally
degenerate inertia tensors) need no special eigenbasis handling, since
no eigenbasis is ever computed; exactly-linear fragments fall back to
an axis-projection frame (coordinates off the molecular axis are
sub-tolerance by construction and stored as zero). One caveat: a
linear geometry cannot pin its azimuthal orientation, so a linear
fragment's response is restored up to a rotation about the molecular
axis — exact for a physically linear system (whose true response is
axially symmetric), with any residual bounded by the finite-difference
noise that already separates two independent computations.

Store
-----
:class:`CanonicalStore` is a persistent, content-addressed, *global*
response store: entries are written once per canonical class and hit by
every rigid copy in every later run (atomic tmp+rename writes, safe for
concurrent writers; stray ``*.tmp.npz`` debris is ignored). Three modes
(``QF_CANON``):

``off``
    disabled — every lookup misses;
``exact``
    keyed by exact coordinates (a safe fallback: hits only bit-exact
    repeats, never rotates anything);
``rigid``
    keyed canonically; responses are stored in the canonical frame and
    rotated back into the lab frame on hit via the same tensor
    transformation as :func:`~repro.pipeline.rigid.rotate_response`.

A ``rigid`` hit is *validated* before it is trusted: the stored
canonical coordinates must match the target's to
:data:`VALIDATE_RMSD_BOHR`, else the entry is rejected and counted
(``cache.canonical_rejects``) — a silently mis-rotated tensor would
still produce a plausible spectrum, so the invariance test harness
(``tests/pipeline/test_canonical_properties.py``) and this runtime
check are both load-bearing. See ``docs/caching.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.obs.counters import counters
from repro.pipeline.cache import (
    response_from_npz,
    response_payload,
    write_npz_atomic,
)
from repro.pipeline.rigid import rotate_response

__all__ = [
    "CANON_DECIMALS",
    "CANON_EXACT",
    "CANON_MODES",
    "CANON_OFF",
    "CANON_RIGID",
    "CanonicalFrame",
    "CanonicalStore",
    "VALIDATE_RMSD_BOHR",
    "canon_mode",
    "canonical_key",
    "canonicalize",
    "permute_response",
]

CANON_OFF = "off"
CANON_EXACT = "exact"
CANON_RIGID = "rigid"
CANON_MODES = (CANON_OFF, CANON_EXACT, CANON_RIGID)

#: quantization grid of the canonical coordinates: two geometries whose
#: canonical coordinates agree to this many decimals (bohr) share a key
CANON_DECIMALS = 6

#: an atom closer than this (bohr) to the center of mass / frame axis
#: cannot anchor a frame axis (its direction would be numerical noise)
_AXIS_TOL = 1.0e-6

#: a rigid hit is trusted only if the stored canonical coordinates
#: match the target's within this RMSD (bohr); ties between
#: symmetry-equivalent frames differ by at most the quantization grid
VALIDATE_RMSD_BOHR = 1.0e-4


def canon_mode(default: str = CANON_OFF) -> str:
    """The canonical-cache mode from ``QF_CANON`` (validated)."""
    mode = os.environ.get("QF_CANON", "").strip().lower() or default
    if mode not in CANON_MODES:
        raise ValueError(
            f"QF_CANON must be one of {CANON_MODES}, got {mode!r}"
        )
    return mode


# -- canonical frame construction ------------------------------------------


def _quantize(coords: np.ndarray, decimals: int) -> np.ndarray:
    # `+ 0.0` collapses IEEE -0.0 onto +0.0 so the byte encoding (and
    # tuple formatting) of a zero is unique
    return np.round(np.asarray(coords, dtype=float), decimals) + 0.0


def _axis_completion(e1: np.ndarray) -> np.ndarray:
    """Deterministic right-handed frame with first row ``e1``.

    Used only for exactly-linear fragments, where the rotation about
    the molecular axis is physically irrelevant (all atoms sit on it).
    """
    probe = np.zeros(3)
    probe[int(np.argmin(np.abs(e1)))] = 1.0
    e2 = probe - (probe @ e1) * e1
    e2 /= np.linalg.norm(e2)
    return np.vstack([e1, e2, np.cross(e1, e2)])


def _candidate_frames(centered: np.ndarray, symbols: list[str]
                      ) -> tuple[list[np.ndarray], bool]:
    """All atom-anchored proper frames; ``(frames, is_linear)``.

    The first axis runs through an anchor atom of the smallest element
    symbol present off-center (an exact, rotation/permutation-invariant
    class — no floating-point pruning that could flip between rigid
    copies); the second axis through each other atom's off-axis
    component. A fragment with no off-axis atom at all is linear.
    """
    n = len(symbols)
    radii = np.linalg.norm(centered, axis=1)
    anchors = [i for i in range(n) if radii[i] > _AXIS_TOL]
    if not anchors:
        # single atom (or all atoms on the COM, which valid geometries
        # exclude): the frame is arbitrary and the coordinates vanish
        return [np.eye(3)], True
    first_symbol = min(symbols[i] for i in anchors)
    frames: list[np.ndarray] = []
    axes: list[np.ndarray] = []
    for a in anchors:
        if symbols[a] != first_symbol:
            continue
        e1 = centered[a] / radii[a]
        axes.append(e1)
        for b in range(n):
            if b == a:
                continue
            off = centered[b] - (centered[b] @ e1) * e1
            norm = np.linalg.norm(off)
            if norm <= _AXIS_TOL:
                continue
            e2 = off / norm
            frames.append(np.vstack([e1, e2, np.cross(e1, e2)]))
    if frames:
        return frames, False
    return [_axis_completion(e1) for e1 in axes], True


class CanonicalFrame:
    """The canonical placement of one geometry.

    ``rotation`` maps lab-frame vectors into the canonical frame
    (``v_canon = rotation @ v_lab``); ``coords`` are the canonical
    coordinates in canonical atom order; ``perm[k]`` is the input atom
    occupying canonical slot ``k``.
    """

    __slots__ = ("key", "symbols", "coords", "rotation", "translation",
                 "perm", "linear")

    def __init__(self, key: str, symbols: tuple, coords: np.ndarray,
                 rotation: np.ndarray, translation: np.ndarray,
                 perm: np.ndarray, linear: bool):
        self.key = key
        self.symbols = symbols
        self.coords = coords
        self.rotation = rotation
        self.translation = translation
        self.perm = perm
        self.linear = linear

    def inverse_perm(self) -> np.ndarray:
        inv = np.empty_like(self.perm)
        inv[self.perm] = np.arange(len(self.perm))
        return inv


def canonicalize(geometry: Geometry,
                 decimals: int = CANON_DECIMALS) -> CanonicalFrame:
    """Rigid-motion-invariant canonical frame of ``geometry``."""
    coords = np.asarray(geometry.coords, dtype=float)
    masses = geometry.masses
    com = (masses[:, None] * coords).sum(axis=0) / masses.sum()
    centered = coords - com
    symbols = list(geometry.symbols)
    n = len(symbols)

    frames, linear = _candidate_frames(centered, symbols)
    best = None   # (encoding, perm, canon_coords, frame)
    for frame in frames:
        canon = centered @ frame.T
        if linear:
            # off-axis components are sub-tolerance by construction;
            # zero them so the arbitrary axis completion cannot leak
            # into the encoding or the stored coordinates
            canon[:, 1:] = 0.0
        q = _quantize(canon, decimals)
        order = sorted(
            range(n),
            key=lambda i: (symbols[i], q[i, 0], q[i, 1], q[i, 2], i),
        )
        encoding = tuple(
            (symbols[i], q[i, 0], q[i, 1], q[i, 2]) for i in order
        )
        if best is None or encoding < best[0]:
            best = (encoding, np.array(order, dtype=int), canon, frame)
    encoding, perm, canon, frame = best

    h = hashlib.sha256()
    h.update(f"canon-v1|{decimals}|{geometry.charge}|".encode())
    h.update(",".join(symbols[i] for i in perm).encode())
    h.update(_quantize(canon[perm], decimals).tobytes())
    return CanonicalFrame(
        key=h.hexdigest()[:24],
        symbols=tuple(symbols[i] for i in perm),
        coords=canon[perm],
        rotation=frame,
        translation=com,
        perm=perm,
        linear=linear,
    )


def _config_extra(
    basis_name: str, delta: float, compute_raman: bool, compute_ir: bool,
    eri_mode: str, schwarz_cutoff: float,
) -> dict:
    return {
        "basis": basis_name,
        "delta": f"{delta:.3e}",
        "raman": bool(compute_raman),
        "ir": bool(compute_ir),
        "eri": eri_mode,
        "schwarz": f"{schwarz_cutoff:.3e}",
    }


def canonical_key(
    geometry: Geometry,
    basis_name: str,
    delta: float,
    *,
    compute_raman: bool = True,
    compute_ir: bool = False,
    eri_mode: str = "auto",
    schwarz_cutoff: float = 1.0e-12,
    decimals: int = CANON_DECIMALS,
) -> str:
    """Content hash of (canonical geometry class, full run config).

    The rigid-motion analogue of :func:`repro.pipeline.cache.task_key`:
    two fragments share a key iff they are the same geometry up to a
    proper rigid motion (within the quantization grid) *and* every
    config knob that can change the numbers matches.
    """
    frame = canonicalize(geometry, decimals=decimals)
    h = hashlib.sha256()
    h.update(frame.key.encode())
    config = _config_extra(basis_name, delta, compute_raman, compute_ir,
                           eri_mode, schwarz_cutoff)
    h.update(json.dumps(config, sort_keys=True).encode())
    return h.hexdigest()[:24]


# -- response reindexing ---------------------------------------------------


def permute_response(response: FragmentResponse, perm,
                     geometry: Geometry | None = None) -> FragmentResponse:
    """Reindex a response: output atom ``j`` is input atom ``perm[j]``.

    All per-atom tensor blocks move together (Hessian rows *and*
    columns, derivative leading axes, gradient rows), so the physics is
    untouched — only the bookkeeping order changes.
    """
    perm = np.asarray(perm, dtype=int)
    src = response.geometry
    if perm.shape != (src.natoms,):
        raise ValueError(
            f"permutation length {perm.shape} does not match "
            f"{src.natoms} atoms"
        )
    idx3 = (3 * perm[:, None] + np.arange(3)).ravel()
    if geometry is None:
        geometry = Geometry(
            [src.symbols[i] for i in perm], src.coords[perm],
            charge=src.charge,
            labels=[src.labels[i] for i in perm] if src.labels else [],
        )

    def take(arr):
        return None if arr is None else arr[idx3]

    return FragmentResponse(
        geometry=geometry,
        energy=response.energy,
        hessian=response.hessian[np.ix_(idx3, idx3)],
        dalpha_dr=take(response.dalpha_dr),
        alpha=response.alpha,
        gradient=response.gradient[perm],
        dmu_dr=take(response.dmu_dr),
        meta=dict(response.meta),
    )


# -- the persistent global store -------------------------------------------


class CanonicalStore:
    """Persistent content-addressed global store of fragment responses.

    One ``canon_<key>.npz`` per canonical class (``rigid``) or exact
    geometry (``exact``); see the module docstring for the mode
    semantics. Writes are atomic and idempotent — concurrent runs may
    share one directory — and per-instance hit/miss/rotation statistics
    are mirrored into the ``cache.canonical_*`` counters of
    :mod:`repro.obs`.
    """

    def __init__(self, directory: str | Path, mode: str | None = None,
                 decimals: int = CANON_DECIMALS):
        if mode is None:
            mode = canon_mode()
        if mode not in CANON_MODES:
            raise ValueError(
                f"canonical mode must be one of {CANON_MODES}, got {mode!r}"
            )
        self.directory = Path(directory)
        self.mode = mode
        self.decimals = decimals
        if mode != CANON_OFF:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.rotations = 0
        self.writes = 0
        self.rejects = 0

    # -- keys --------------------------------------------------------------

    def key(self, geometry: Geometry, basis_name: str, delta: float,
            **config) -> str:
        if self.mode == CANON_RIGID:
            return canonical_key(geometry, basis_name, delta,
                                 decimals=self.decimals, **config)
        # exact mode: reuse the exact-coordinate task hash, namespaced
        # so the entry can never shadow a rigid one
        from repro.pipeline.cache import task_key

        return task_key(geometry, basis_name, delta,
                        extra={"canon": CANON_EXACT}, **config)

    def _path(self, key: str) -> Path:
        return self.directory / f"canon_{key}.npz"

    # -- store -------------------------------------------------------------

    def store(
        self,
        geometry: Geometry,
        response: FragmentResponse,
        basis_name: str,
        delta: float,
        *,
        compute_raman: bool = True,
        compute_ir: bool = False,
        eri_mode: str = "auto",
        schwarz_cutoff: float = 1.0e-12,
    ) -> Path | None:
        """Persist ``response`` under its canonical (or exact) key."""
        if self.mode == CANON_OFF:
            return None
        key = self.key(geometry, basis_name, delta,
                       compute_raman=compute_raman, compute_ir=compute_ir,
                       eri_mode=eri_mode, schwarz_cutoff=schwarz_cutoff)
        if self.mode == CANON_EXACT:
            payload = response_payload(response)
        else:
            frame = canonicalize(geometry, decimals=self.decimals)
            canon_geom = Geometry(list(frame.symbols), frame.coords,
                                  charge=geometry.charge)
            in_order = permute_response(response, frame.perm,
                                        geometry=canon_geom)
            in_frame = rotate_response(in_order, frame.rotation, canon_geom)
            payload = response_payload(in_frame)
            payload["canon_coords"] = frame.coords
            payload["canon_symbols"] = np.array(frame.symbols, dtype="U4")
        payload["canon_charge"] = np.array(geometry.charge)
        self.writes += 1
        counters().inc("cache.canonical_writes")
        return write_npz_atomic(self._path(key), payload)

    # -- load --------------------------------------------------------------

    def load(
        self,
        geometry: Geometry,
        basis_name: str,
        delta: float,
        *,
        compute_raman: bool = True,
        compute_ir: bool = False,
        eri_mode: str = "auto",
        schwarz_cutoff: float = 1.0e-12,
    ) -> FragmentResponse | None:
        """The stored response for ``geometry``, in its lab frame and
        atom order — or None on a miss (including a failed validation
        of a ``rigid`` entry)."""
        if self.mode == CANON_OFF:
            return None
        key = self.key(geometry, basis_name, delta,
                       compute_raman=compute_raman, compute_ir=compute_ir,
                       eri_mode=eri_mode, schwarz_cutoff=schwarz_cutoff)
        path = self._path(key)
        if not path.exists():
            return self._miss()
        try:
            with np.load(path, allow_pickle=False) as data:
                if self.mode == CANON_EXACT:
                    resp = response_from_npz(
                        data, geometry,
                        meta={"canonical": True,
                              "canonical_mode": self.mode},
                    )
                else:
                    return self._load_rigid(data, geometry, key)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            # a torn or foreign file can only appear if something wrote
            # past the atomic tmp+rename protocol; treat it as absent
            return self._reject("unreadable entry")
        self.hits += 1
        counters().inc("cache.canonical_hits")
        return resp

    def _load_rigid(self, data, geometry: Geometry,
                    key: str) -> FragmentResponse | None:
        frame = canonicalize(geometry, decimals=self.decimals)
        stored_symbols = tuple(str(s) for s in data["canon_symbols"])
        stored_coords = np.asarray(data["canon_coords"], dtype=float)
        if stored_symbols != frame.symbols \
                or int(data["canon_charge"]) != geometry.charge:
            return self._reject("species/charge mismatch")
        if stored_coords.shape != frame.coords.shape:
            return self._reject("shape mismatch")
        rmsd = float(np.sqrt(np.mean(
            np.sum((stored_coords - frame.coords) ** 2, axis=1)
        )))
        if rmsd > VALIDATE_RMSD_BOHR:
            # the guard against the silent-wrong-answer failure mode: a
            # key collision or a quantization-edge geometry must become
            # a recompute, never a mis-rotated tensor
            return self._reject(f"canonical frame mismatch rmsd={rmsd:.2e}")
        canon_geom = Geometry(list(stored_symbols), stored_coords,
                              charge=geometry.charge)
        in_frame = response_from_npz(
            data, canon_geom,
            meta={"canonical": True, "canonical_mode": self.mode,
                  "canonical_key": key},
        )
        perm_geom = Geometry(
            [geometry.symbols[i] for i in frame.perm],
            geometry.coords[frame.perm], charge=geometry.charge,
        )
        in_lab = rotate_response(in_frame, frame.rotation.T, perm_geom)
        resp = permute_response(in_lab, frame.inverse_perm(),
                                geometry=geometry)
        self.hits += 1
        self.rotations += 1
        counters().inc("cache.canonical_hits")
        counters().inc("cache.canonical_rotations")
        return resp

    def _miss(self):
        self.misses += 1
        counters().inc("cache.canonical_misses")
        return None

    def _reject(self, why: str):
        self.rejects += 1
        counters().inc("cache.canonical_rejects")
        return self._miss()

    # -- task adapters (RunStore / executor integration) -------------------

    def load_task(self, task) -> FragmentResponse | None:
        return self.load(
            task.geometry, task.basis_name, task.delta,
            compute_raman=task.compute_raman, compute_ir=task.compute_ir,
            eri_mode=task.eri_mode, schwarz_cutoff=task.schwarz_cutoff,
        )

    def store_task(self, task, response: FragmentResponse) -> Path | None:
        return self.store(
            task.geometry, response, task.basis_name, task.delta,
            compute_raman=task.compute_raman, compute_ir=task.compute_ir,
            eri_mode=task.eri_mode, schwarz_cutoff=task.schwarz_cutoff,
        )

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict:
        """Per-instance hit accounting (for manifests and benchmarks)."""
        lookups = self.hits + self.misses
        return {
            "mode": self.mode,
            "hits": self.hits,
            "misses": self.misses,
            "rotations": self.rotations,
            "writes": self.writes,
            "rejects": self.rejects,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def _complete(self) -> list[Path]:
        # exclude "canon_<key>.tmp.npz" debris from a killed writer
        return [p for p in self.directory.glob("canon_*.npz")
                if not p.name.endswith(".tmp.npz")]

    def keys(self) -> set[str]:
        return {p.stem[len("canon_"):] for p in self._complete()}

    def __len__(self) -> int:
        return len(self._complete())
