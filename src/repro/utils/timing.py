"""Lightweight hierarchical timers.

These are used both for profiling the real Python kernels and for
calibrating the discrete-event cost model (``repro.hpc.costmodel``).
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating named timer.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("scf"):
    ...     pass
    >>> t.total("scf") >= 0.0
    True
    """

    totals: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    counts: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    @contextmanager
    def section(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] += elapsed
            self.counts[name] += 1

    def total(self, name: str) -> float:
        """Total accumulated seconds for section ``name`` (0.0 if unseen)."""
        return self.totals.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of times section ``name`` was entered."""
        return self.counts.get(name, 0)

    def mean(self, name: str) -> float:
        """Mean seconds per entry for section ``name``."""
        n = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / n if n else 0.0

    def report(self) -> str:
        """Human-readable multi-line report sorted by total time."""
        lines = ["section                          total(s)   calls    mean(s)"]
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{name:<30} {self.totals[name]:>10.4f} {self.counts[name]:>7d} "
                f"{self.mean(name):>10.6f}"
            )
        return "\n".join(lines)

    def merge(self, other: "Timer") -> "Timer":
        """Fold another timer's sections into this one.

        The process-pool executor backends run ``fragment_response``
        (and its ``scf_displaced`` / ``cphf_displaced`` sections) in
        worker processes; merging each returned fragment timer into
        the pipeline timer is what keeps ``phase_wall_s`` truthful for
        work the parent never executed itself.
        """
        for name, secs in other.totals.items():
            self.totals[name] += secs
        for name, cnt in other.counts.items():
            self.counts[name] += cnt
        return self

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()


class Stopwatch:
    """One-shot elapsed-seconds measure.

    The sanctioned raw-clock access for per-task wall times (linter
    rule QF008 flags direct ``time.perf_counter()`` calls outside this
    module and :mod:`repro.obs`, so ad-hoc timing stays discoverable).
    """

    __slots__ = ("_start",)

    def __init__(self):
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._start

    def restart(self) -> float:
        """Return the elapsed seconds and reset the origin to now."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed


class WallClock:
    """Injectable clock.

    The discrete-event simulator uses a virtual clock; real measurements
    use this wall clock. Sharing the interface keeps instrumented code
    identical in both modes.
    """

    def now(self) -> float:
        return time.perf_counter()
