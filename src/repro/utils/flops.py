"""FLOP accounting for BLAS-level operations.

The paper reports double-precision FLOP rates for the two dominant DFPT
kernels (response density n(1)(r) and response Hamiltonian H(1)) counted
with "timer and FLOP count" (§II). We reproduce that measurement
mechanism: every BLAS-like operation performed by the instrumented
kernels registers its exact FLOP count with a :class:`FlopCounter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def gemm_flops(m: int, n: int, k: int) -> int:
    """FLOPs of a dense ``(m,k) @ (k,n)`` matmul: multiply+add per element."""
    return 2 * m * n * k


def gemv_flops(m: int, n: int) -> int:
    """FLOPs of a dense matrix-vector product of an (m, n) matrix."""
    return 2 * m * n


def axpy_flops(n: int) -> int:
    """FLOPs of ``y += a * x`` over ``n`` elements."""
    return 2 * n


@dataclass
class FlopCounter:
    """Accumulates FLOPs by named category.

    Categories mirror the paper's kernel breakdown so Table I can be
    regenerated per-part (``n1r``, ``h1``), but arbitrary names work.
    """

    totals: dict[str, int] = field(default_factory=dict)

    def add(self, category: str, flops: int) -> None:
        if flops < 0:
            raise ValueError(f"negative flop count: {flops}")
        self.totals[category] = self.totals.get(category, 0) + flops

    def add_gemm(self, category: str, m: int, n: int, k: int) -> None:
        self.add(category, gemm_flops(m, n, k))

    def add_gemv(self, category: str, m: int, n: int) -> None:
        self.add(category, gemv_flops(m, n))

    def total(self, category: str | None = None) -> int:
        """Total FLOPs for ``category``, or across all categories if None."""
        if category is None:
            return sum(self.totals.values())
        return self.totals.get(category, 0)

    def merge(self, other: "FlopCounter") -> None:
        """Accumulate another counter's totals into this one."""
        for name, flops in other.totals.items():
            self.add(name, flops)

    def reset(self) -> None:
        self.totals.clear()
