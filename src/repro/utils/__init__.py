"""Shared utilities: timing, FLOP accounting, linear-algebra helpers."""

from repro.utils.timing import Timer, WallClock
from repro.utils.flops import FlopCounter, gemm_flops, gemv_flops

__all__ = ["Timer", "WallClock", "FlopCounter", "gemm_flops", "gemv_flops"]
