"""Shared utilities: timing, FLOP accounting, linear-algebra helpers."""

from repro.utils.timing import Stopwatch, Timer, WallClock
from repro.utils.flops import FlopCounter, gemm_flops, gemv_flops

__all__ = ["Stopwatch", "Timer", "WallClock", "FlopCounter", "gemm_flops",
           "gemv_flops"]
