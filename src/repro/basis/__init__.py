"""Gaussian basis sets.

The paper's engine (FHI-aims) uses numeric atom-centered orbitals; our
substitute uses contracted Gaussians (STO-3G) because their integrals
have closed forms implementable from scratch (see DESIGN.md). The shell
structure (s and sp shells per atom) mirrors a minimal NAO "light"
setting in size.
"""

from repro.basis.gaussian import BasisSet, Shell, build_basis
from repro.basis.sto3g import STO3G

__all__ = ["BasisSet", "Shell", "build_basis", "STO3G"]
