"""Contracted Gaussian shells and basis-set construction.

A :class:`Shell` is a contraction of primitive cartesian Gaussians of a
single angular momentum l on one center; a :class:`BasisSet` is the
ordered list of shells for a geometry plus the shell→function offsets.

Cartesian component ordering for p shells is (x, y, z). Primitive
coefficients stored on the shell already include primitive norms; the
contraction is then renormalized so each basis function has unit
self-overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.basis.sto3g import STO3G
from repro.geometry.atoms import Geometry

#: cartesian angular components per l: l=0 -> [(0,0,0)], l=1 -> x,y,z
CARTESIAN_COMPONENTS: dict[int, list[tuple[int, int, int]]] = {
    0: [(0, 0, 0)],
    1: [(1, 0, 0), (0, 1, 0), (0, 0, 1)],
    2: [
        (2, 0, 0), (1, 1, 0), (1, 0, 1),
        (0, 2, 0), (0, 1, 1), (0, 0, 2),
    ],
}


def _double_factorial(n: int) -> int:
    if n <= 0:
        return 1
    out = 1
    while n > 1:
        out *= n
        n -= 2
    return out


def primitive_norm(alpha: float, lmn: tuple[int, int, int]) -> float:
    """Normalization constant of a primitive cartesian Gaussian."""
    i, j, k = lmn
    l = i + j + k
    num = (2.0 * alpha / math.pi) ** 0.75 * (4.0 * alpha) ** (l / 2.0)
    den = math.sqrt(
        _double_factorial(2 * i - 1)
        * _double_factorial(2 * j - 1)
        * _double_factorial(2 * k - 1)
    )
    return num / den


@dataclass
class Shell:
    """A contracted shell: angular momentum, center, primitives.

    ``coefs`` include primitive norms and the contraction norm, i.e.
    the basis function is ``sum_k coefs[k] * x^i y^j z^k exp(-exps[k] r^2)``
    with unit self-overlap for every cartesian component.
    """

    l: int
    center: np.ndarray
    exps: np.ndarray
    coefs: np.ndarray
    atom_index: int = -1

    @property
    def nfuncs(self) -> int:
        return len(CARTESIAN_COMPONENTS[self.l])

    @property
    def components(self) -> list[tuple[int, int, int]]:
        return CARTESIAN_COMPONENTS[self.l]


def make_shell(l: int, center, exps, raw_coefs, atom_index: int = -1) -> Shell:
    """Build a normalized contracted shell from raw contraction coefficients."""
    center = np.asarray(center, dtype=float).reshape(3)
    exps = np.asarray(exps, dtype=float)
    raw = np.asarray(raw_coefs, dtype=float)
    if exps.shape != raw.shape:
        raise ValueError("exponent/coefficient length mismatch")
    # attach primitive norms (all cartesian components of one l share a norm
    # only for l<=1; use the axial component's norm which is the standard
    # convention for s/p and for the d components used in gradients we
    # normalize each component separately at integral time)
    lmn0 = CARTESIAN_COMPONENTS[l][0]
    coefs = raw * np.array([primitive_norm(a, lmn0) for a in exps])
    # contraction normalization: <phi|phi> over primitives (same-center overlap)
    li = sum(lmn0)
    s = 0.0
    for ca, aa in zip(coefs, exps):
        for cb, ab in zip(coefs, exps):
            p = aa + ab
            s += (
                ca
                * cb
                * _double_factorial(2 * lmn0[0] - 1)
                * _double_factorial(2 * lmn0[1] - 1)
                * _double_factorial(2 * lmn0[2] - 1)
                * (math.pi / p) ** 1.5
                / (2.0 * p) ** li
            )
    coefs = coefs / math.sqrt(s)
    return Shell(l=l, center=center, exps=exps, coefs=coefs, atom_index=atom_index)


@dataclass
class BasisSet:
    """Ordered shells for a geometry with function offsets."""

    shells: list[Shell]
    offsets: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.offsets:
            off = 0
            self.offsets = []
            for sh in self.shells:
                self.offsets.append(off)
                off += sh.nfuncs
            self._nbf = off
        else:
            self._nbf = self.offsets[-1] + self.shells[-1].nfuncs

    @property
    def nbf(self) -> int:
        """Total number of basis functions."""
        return self._nbf

    @property
    def nshells(self) -> int:
        return len(self.shells)

    def function_atom_map(self) -> np.ndarray:
        """Map basis-function index -> atom index (for gradients)."""
        out = np.empty(self.nbf, dtype=int)
        for sh, off in zip(self.shells, self.offsets):
            out[off: off + sh.nfuncs] = sh.atom_index
        return out


def build_basis(geometry: Geometry, name: str = "sto-3g") -> BasisSet:
    """Construct the basis set for a geometry.

    Registered sets: ``"sto-3g"`` (shipped data) and ``"sto-2g-fit"``
    (K=2 refit of the same radial functions — ~2-5x cheaper integrals
    at reduced accuracy; see :mod:`repro.basis.refit`).
    """
    key = name.lower()
    if key in ("sto-3g", "sto3g"):
        registry = STO3G
    elif key in ("sto-2g-fit", "sto2g-fit", "sto-2g"):
        from repro.basis.refit import as_registry, refit_basis_data

        registry = as_registry(refit_basis_data(2))
    else:
        raise ValueError(f"unknown basis {name!r}")
    shells: list[Shell] = []
    for atom_index, symbol in enumerate(geometry.symbols):
        try:
            entries = registry[symbol]
        except KeyError:
            raise KeyError(
                f"no STO-3G data for element {symbol!r}; "
                f"supported: {sorted(STO3G)}"
            ) from None
        for (l, exps, coefs) in entries:
            shells.append(
                make_shell(l, geometry.coords[atom_index], exps, coefs, atom_index)
            )
    return BasisSet(shells)
