"""Reduced-contraction basis sets by radial refitting.

Integral cost scales as the fourth power of the contraction depth at
the primitive level, so a K=2 basis runs the displacement loop roughly
(3/2)^2-(3/2)^4 times faster than STO-3G. Rather than shipping
literature STO-2G tables, we *refit* each of our STO-3G contracted
radial functions with K Gaussians (variable-projection least squares:
linear coefficients solved exactly for each exponent guess). The
result — registered as ``"sto-2g-fit"`` — is a self-consistent cheaper
level of theory: same shell structure, maximally close radial shapes,
and by construction exactly reproducible from this repository alone.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import scipy.optimize

from repro.basis.sto3g import STO3G


def _radial_grid(l: int) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced radial points + weights r^2 dr for the fit metric."""
    r = np.geomspace(1e-3, 12.0, 240)
    w = np.gradient(r) * r ** 2
    return r, w


def _target_radial(exps, coefs, l: int, r: np.ndarray) -> np.ndarray:
    out = np.zeros_like(r)
    for a, c in zip(exps, coefs):
        out += c * np.exp(-a * r ** 2)
    return out * r ** l


def _fit_k_gaussians(exps, coefs, l: int, k: int
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Variable-projection fit: optimize exponents, solve coefficients."""
    r, w = _radial_grid(l)
    target = _target_radial(exps, coefs, l, r)
    sw = np.sqrt(w)

    def linear_solve(log_a):
        a = np.exp(log_a)
        design = np.exp(-a[None, :] * (r ** 2)[:, None]) * (r ** l)[:, None]
        c, *_ = np.linalg.lstsq(design * sw[:, None], target * sw, rcond=None)
        resid = design @ c - target
        return c, float(np.sum(w * resid ** 2))

    # spread the starting exponents across the original range
    lo, hi = np.log(min(exps)), np.log(max(exps))
    x0 = np.linspace(lo, hi, k) if k > 1 else np.array([0.5 * (lo + hi)])
    res = scipy.optimize.minimize(
        lambda x: linear_solve(x)[1], x0, method="Nelder-Mead",
        options={"xatol": 1e-8, "fatol": 1e-14, "maxiter": 2000},
    )
    c, _err = linear_solve(res.x)
    return np.exp(res.x), c


@lru_cache(maxsize=None)
def refit_basis_data(k: int = 2) -> tuple:
    """STO3G-style data dict with every contraction refit to K primitives.

    Returned as a hashable tuple-of-tuples (cached); convert with
    :func:`as_registry`.
    """
    out = []
    for symbol, shells in STO3G.items():
        entries = []
        for (l, exps, coefs) in shells:
            a, c = _fit_k_gaussians(np.array(exps), np.array(coefs), l, k)
            order = np.argsort(a)[::-1]
            entries.append((l, tuple(a[order]), tuple(c[order])))
        out.append((symbol, tuple(entries)))
    return tuple(out)


def as_registry(data: tuple) -> dict:
    """Convert the cached tuple layout to the STO3G dict layout."""
    return {
        symbol: [
            (l, list(exps), list(coefs)) for (l, exps, coefs) in entries
        ]
        for (symbol, entries) in data
    }
