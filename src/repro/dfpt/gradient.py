"""Analytic RHF nuclear gradients (exact-ERI and density-fitted).

The Hessian of each QF fragment is built from central differences of
these gradients (6N gradient evaluations per fragment), so gradient
cost dominates the fragment workload exactly like the DFPT cycle
dominates in the paper.

Derivation notes (validated against finite differences in
``tests/dfpt/test_gradient.py``):

    E = sum_mn P_mn h_mn + E_2e + E_nn
    dE/dR = P·dh + dE_2e - W·dS + dE_nn,   W = 2 C_occ eps_occ C_occ^T

Exact two-electron part, with Gamma_mnls = 1/2 P_mn P_ls - 1/4 P_ml P_ns
(the coefficient of (mn|ls) in the energy):

    dE_2e/dR_I = sum_{m in I} sum_nls dERI^A[x,m,n,l,s] *
                 (Gamma_mnls + Gamma_nmls + Gamma_lsmn + Gamma_lsnm)

Density-fitted part (A = (ab|P), V = (P|Q), M = V^-1, c = M gamma):

    E_J = gamma^T c - 1/2 c^T V c
    dE_J = 2 sum_{a in I} (P ∘ D_J)[a,:] - 2 sum_{P in I} c_P t_P
           - sum_{P in I, Q} c_P c_Q dV[x,P,Q]
    E_K = -1/4 sum_PQ M_PQ tr(P A_P P A_Q)
    dE_K = -sum_{a in I} (d3 · W)[a] + sum_{P in I} (d3 ∘ W)-trace_P
           + 1/2 sum_{P in I,Q} (M T M)_PQ dV[x,P,Q]

where W_P = P Ã_P P, Ã = M-contracted A, and aux-center derivatives
come from translational invariance d/dP = -(d/dA + d/dB).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.scf.rhf import SCFResult


def nuclear_repulsion_gradient(charges: np.ndarray, coords: np.ndarray) -> np.ndarray:
    """d(E_nn)/dR, shape (natoms, 3)."""
    natm = charges.size
    g = np.zeros((natm, 3))
    for i in range(natm):
        for j in range(natm):
            if i == j:
                continue
            rij = coords[i] - coords[j]
            d = np.linalg.norm(rij)
            g[i] -= charges[i] * charges[j] * rij / d ** 3
    return g


def _one_electron_gradient(scf: SCFResult, amap: np.ndarray) -> np.ndarray:
    engine = scf.engine
    p = scf.density
    # energy-weighted density
    c_occ = scf.c_occ
    w = 2.0 * (c_occ * scf.mo_energy[: scf.nocc]) @ c_occ.T

    ds = engine.overlap_deriv()
    dt = engine.kinetic_deriv()
    dv_bra, dv_nuc = engine.nuclear_deriv()

    natm = scf.geometry.natoms
    g = np.zeros((natm, 3))
    dh = dt + dv_bra
    # bra+ket slots (operators symmetric): 2 * sum_{mu in I} over nu
    slot = 2.0 * np.einsum("xmn,mn->xm", dh, p)
    slot_s = -2.0 * np.einsum("xmn,mn->xm", ds, w)
    for i in range(natm):
        sel = amap == i
        g[i] += slot[:, sel].sum(axis=1)
        g[i] += slot_s[:, sel].sum(axis=1)
        # Hellmann-Feynman (operator-center) term
        g[i] += np.einsum("xmn,mn->x", dv_nuc[:, i], p)
    return g


def _exact_two_electron_gradient(scf: SCFResult, amap: np.ndarray) -> np.ndarray:
    p = scf.density
    deri = scf.engine.eri_deriv()  # (3, n, n, n, n), bra-a slot
    gamma = 0.5 * np.einsum("mn,ls->mnls", p, p) - 0.25 * np.einsum(
        "ml,ns->mnls", p, p
    )
    gtot = (
        gamma
        + gamma.transpose(1, 0, 2, 3)
        + gamma.transpose(2, 3, 0, 1)
        + gamma.transpose(2, 3, 1, 0)
    )
    slot = np.einsum("xmnls,mnls->xm", deri, gtot)
    natm = scf.geometry.natoms
    g = np.zeros((natm, 3))
    for i in range(natm):
        g[i] = slot[:, amap == i].sum(axis=1)
    return g


def _df_two_electron_gradient(scf: SCFResult, amap: np.ndarray) -> np.ndarray:
    df = scf.df
    engine = scf.engine
    p = scf.density
    a3 = df.j3c                      # (nbf, nbf, naux)
    v = df.v2c
    aux_amap = df.aux.function_atom_map()

    cho = scipy.linalg.cho_factor(v)
    gamma = np.einsum("abP,ab->P", a3, p)
    c = scipy.linalg.cho_solve(cho, gamma)

    d3 = engine.three_center_deriv(df.aux_blocks, df.naux)  # (3,nbf,nbf,naux)
    dv2 = engine.two_center_deriv(df.aux_blocks, df.naux)   # (3,naux,naux)

    natm = scf.geometry.natoms
    g = np.zeros((natm, 3))

    # ---- Coulomb ----
    dj = np.einsum("xabP,P->xab", d3, c)
    slot_j = 2.0 * np.einsum("xab,ab->xa", dj, p)
    taux = np.einsum("xabP,ab->xP", d3, p)
    for i in range(natm):
        g[i] += slot_j[:, amap == i].sum(axis=1)
        sel = aux_amap == i
        g[i] += -2.0 * (taux[:, sel] * c[sel]).sum(axis=1)
        g[i] += -np.einsum("P,xPQ,Q->x", c[sel], dv2[:, sel], c)

    # ---- exchange ----
    # Ã_P = sum_Q M_PQ A_Q  and  W_P = P Ã_P P  (BLAS-shaped contractions:
    # these are the gradient's largest intermediates)
    nbf = p.shape[0]
    atil = scipy.linalg.cho_solve(cho, a3.reshape(-1, df.naux).T).T.reshape(
        a3.shape
    )
    pat = (p @ atil.reshape(nbf, -1)).reshape(nbf, nbf, df.naux)  # (a,c,P)
    w3 = np.tensordot(pat, p, axes=([1], [0])).transpose(0, 2, 1)  # (a,d,P)
    # T_PQ = tr(P A_P P A_Q): build via PA once
    pa = (p @ a3.reshape(nbf, -1)).reshape(nbf, nbf, df.naux)     # (a,c,P)
    b1 = pa.reshape(nbf * nbf, df.naux)                  # [(a,c), P]
    b2 = pa.transpose(1, 0, 2).reshape(nbf * nbf, df.naux)  # [(a,c), Q] of pa[c,a,Q]
    t_mat = b1.T @ b2
    mtm = scipy.linalg.cho_solve(cho, scipy.linalg.cho_solve(cho, t_mat).T)

    slot_k = -np.einsum("xabP,abP->xa", d3, w3)
    aux_k = np.einsum("xabP,abP->xP", d3, w3)
    for i in range(natm):
        g[i] += slot_k[:, amap == i].sum(axis=1)
        sel = aux_amap == i
        g[i] += aux_k[:, sel].sum(axis=1)
        g[i] += 0.5 * np.einsum("xPQ,PQ->x", dv2[:, sel], mtm[sel])
    return g


def gradient(scf: SCFResult) -> np.ndarray:
    """Analytic nuclear gradient dE/dR, shape (natoms, 3), hartree/bohr."""
    if not scf.converged:
        raise ValueError("gradient requires a converged SCF result")
    amap = scf.basis.function_atom_map()
    g = _one_electron_gradient(scf, amap)
    if scf.eri is not None:
        g += _exact_two_electron_gradient(scf, amap)
    else:
        g += _df_two_electron_gradient(scf, amap)
    g += nuclear_repulsion_gradient(
        scf.geometry.numbers.astype(float), scf.geometry.coords
    )
    return g
