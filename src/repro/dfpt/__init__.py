"""Density-functional / Hartree-Fock perturbation theory.

Per-fragment response machinery of the QF-RAMAN worker:

* :mod:`repro.dfpt.cphf` — coupled-perturbed SCF for homogeneous
  electric fields → the polarizability tensor (the paper's DFPT
  response cycle: P(1) → n(1)(r) → v(1) → H(1)).
* :mod:`repro.dfpt.gradient` — analytic nuclear gradients (exact-ERI
  and density-fitted paths).
* :mod:`repro.dfpt.hessian` — the atomic-displacement loop: Hessian by
  central differences of analytic gradients and the Raman tensor
  dα/dR by central differences of CPHF polarizabilities. This mirrors
  the paper's leader (generates displacements) / worker (one DFPT run
  per displacement) split.
"""

from repro.dfpt.cphf import CPHF, polarizability
from repro.dfpt.gradient import gradient
from repro.dfpt.hessian import FragmentResponse, fragment_response

__all__ = [
    "CPHF",
    "polarizability",
    "gradient",
    "FragmentResponse",
    "fragment_response",
]
