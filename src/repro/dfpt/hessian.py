"""Per-fragment response: Hessian and Raman tensor via the
atomic-displacement loop.

This is the computational payload of the paper's worker processes: the
leader generates one task per atomic displacement of a fragment; each
worker runs a full SCF + gradient + CPHF at the displaced geometry.
Central differences of analytic gradients give the fragment Hessian
(d^2 E / dR dR), and central differences of CPHF polarizabilities give
the Raman tensor (d alpha / dR). Both are needed by the Eq. (1)
assembly in :mod:`repro.fragment.assembly`.

Converged base densities seed the displaced SCFs, cutting iteration
counts roughly in half — the Python analog of the paper's "reuse
within a DFPT cycle" economies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dfpt.cphf import CPHF
from repro.dfpt.gradient import gradient
from repro.geometry.atoms import Geometry
from repro.scf.rhf import RHF, SCFResult
from repro.utils.timing import Timer


@dataclass
class FragmentResponse:
    """Second-order response of one QF fragment."""

    geometry: Geometry
    energy: float
    hessian: np.ndarray            # (3N, 3N), hartree / bohr^2
    dalpha_dr: np.ndarray | None   # (3N, 3, 3), polarizability derivative
    alpha: np.ndarray | None       # (3, 3) equilibrium polarizability
    gradient: np.ndarray           # (N, 3) residual gradient at input geometry
    dmu_dr: np.ndarray | None = None   # (3N, 3) dipole derivative (IR)
    meta: dict = field(default_factory=dict)

    @property
    def ncoords(self) -> int:
        return self.hessian.shape[0]


def dipole_moment(scf: SCFResult) -> np.ndarray:
    """Total dipole moment (a.u.): electronic -tr(P D) plus nuclear."""
    dip_ints = scf.engine.dipole(origin=(0.0, 0.0, 0.0))
    electronic = -np.einsum("xab,ab->x", dip_ints, scf.density)
    charges = scf.geometry.numbers.astype(float)
    nuclear = charges @ scf.geometry.coords
    return electronic + nuclear


def _displaced_scf(
    geometry: Geometry,
    atom: int,
    axis: int,
    delta: float,
    base: SCFResult,
    scf_kwargs: dict,
) -> SCFResult:
    geom_d = geometry.displaced(atom, axis, delta)
    res = RHF(geom_d, **scf_kwargs).run(guess_density=base.density)
    if not res.converged:
        # retry cold — a bad guess can stall DIIS in rare cases
        res = RHF(geom_d, **scf_kwargs).run()
    if not res.converged:
        raise RuntimeError(
            f"SCF failed to converge at displacement (atom={atom}, axis={axis})"
        )
    return res


def fragment_response(
    geometry: Geometry,
    delta: float = 5.0e-3,
    compute_raman: bool = True,
    compute_ir: bool = False,
    basis_name: str = "sto-3g",
    eri_mode: str = "auto",
    timer: Timer | None = None,
    progress=None,
) -> FragmentResponse:
    """Hessian (+ Raman tensor) of one fragment.

    Parameters
    ----------
    geometry:
        Fragment geometry (must be a closed-shell system; the MFCC
        capping in :mod:`repro.fragment` guarantees this).
    delta:
        Displacement step in bohr. 5e-3 balances FD truncation against
        SCF convergence noise (validated in tests against tighter
        settings).
    compute_raman:
        Also run CPHF at every displacement for d(alpha)/dR.
    compute_ir:
        Also difference the dipole moment for d(mu)/dR (IR intensities)
        — essentially free, the displaced SCFs already exist.
    progress:
        Optional callback ``progress(done, total)`` — the pipeline uses
        this to emit worker heartbeats to the scheduler.
    """
    timer = timer or Timer()
    scf_kwargs = dict(basis_name=basis_name, eri_mode=eri_mode)
    with timer.section("scf_base"):
        base = RHF(geometry, **scf_kwargs).run()
    if not base.converged:
        raise RuntimeError("base SCF failed to converge")
    with timer.section("gradient_base"):
        g0 = gradient(base)
    alpha0 = None
    if compute_raman:
        with timer.section("cphf_base"):
            alpha0 = CPHF(base).run().alpha

    n = geometry.natoms
    ncoord = 3 * n
    hessian = np.zeros((ncoord, ncoord))
    dalpha = np.zeros((ncoord, 3, 3)) if compute_raman else None
    dmu = np.zeros((ncoord, 3)) if compute_ir else None
    total = 2 * ncoord
    done = 0
    for atom in range(n):
        for axis in range(3):
            col = 3 * atom + axis
            sides = []
            for sign in (+1.0, -1.0):
                with timer.section("scf_displaced"):
                    res = _displaced_scf(
                        geometry, atom, axis, sign * delta, base, scf_kwargs
                    )
                with timer.section("gradient_displaced"):
                    g = gradient(res)
                a = None
                if compute_raman:
                    with timer.section("cphf_displaced"):
                        a = CPHF(res).run().alpha
                mu = dipole_moment(res) if compute_ir else None
                sides.append((g, a, mu))
                done += 1
                if progress is not None:
                    progress(done, total)
            (gp, ap, mp), (gm, am, mm) = sides
            hessian[col] = (gp - gm).ravel() / (2.0 * delta)
            if compute_raman:
                dalpha[col] = (ap - am) / (2.0 * delta)
            if compute_ir:
                dmu[col] = (mp - mm) / (2.0 * delta)
    # the exact Hessian is symmetric; FD noise is split evenly
    hessian = 0.5 * (hessian + hessian.T)
    return FragmentResponse(
        geometry=geometry,
        energy=base.energy,
        hessian=hessian,
        dalpha_dr=dalpha,
        alpha=alpha0,
        gradient=g0,
        dmu_dr=dmu,
        meta={"delta": delta, "basis": basis_name, "timer": timer},
    )
