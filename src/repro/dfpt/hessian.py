"""Per-fragment response: Hessian and Raman tensor via the
atomic-displacement loop.

This is the computational payload of the paper's worker processes: the
leader generates one task per atomic displacement of a fragment; each
worker runs a full SCF + gradient + CPHF at the displaced geometry.
Central differences of analytic gradients give the fragment Hessian
(d^2 E / dR dR), and central differences of CPHF polarizabilities give
the Raman tensor (d alpha / dR). Both are needed by the Eq. (1)
assembly in :mod:`repro.fragment.assembly`.

The loop is organized as independent *coordinate jobs* (one per atom,
axis — both displacement signs): the serial path runs them in order,
and the ``displacement`` executor backend
(:mod:`repro.pipeline.executor`) ships them to a process pool, which is
how a few large fragments are parallelized across cores.

SCF seeding follows the paper's "reuse within a DFPT cycle" economies:
the +delta run starts from the converged base density, and the -delta
run starts from the *+delta* density (the previously converged point of
the same coordinate), which typically saves a few DIIS iterations per
displaced SCF. The realized savings — measured against the cold-start
iteration count of the base SCF — are recorded in
``meta["scf_iters_saved"]``.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, Executor, wait
from dataclasses import dataclass, field

import numpy as np

from repro.devtools.contracts import check_response
from repro.dfpt.cphf import CPHF
from repro.dfpt.gradient import gradient
from repro.geometry.atoms import Geometry
from repro.obs.counters import counters
from repro.obs.tracer import get_tracer, telemetry_shipment
from repro.scf.rhf import RHF, SCFResult
from repro.utils.timing import Timer


@dataclass
class FragmentResponse:
    """Second-order response of one QF fragment."""

    geometry: Geometry
    energy: float
    hessian: np.ndarray            # (3N, 3N), hartree / bohr^2
    dalpha_dr: np.ndarray | None   # (3N, 3, 3), polarizability derivative
    alpha: np.ndarray | None       # (3, 3) equilibrium polarizability
    gradient: np.ndarray           # (N, 3) residual gradient at input geometry
    dmu_dr: np.ndarray | None = None   # (3N, 3) dipole derivative (IR)
    meta: dict = field(default_factory=dict)

    @property
    def ncoords(self) -> int:
        return self.hessian.shape[0]


@dataclass
class CoordinateJobResult:
    """Finite-difference data of one (atom, axis) coordinate.

    Produced by :func:`coordinate_job`; picklable so the displacement
    executor can compute it in a worker process.
    """

    col: int
    hess_col: np.ndarray            # (3N,) Hessian column (already / 2 delta)
    dalpha_col: np.ndarray | None   # (3, 3)
    dmu_col: np.ndarray | None      # (3,)
    niter_plus: int
    niter_minus: int
    timings: dict = field(default_factory=dict)  # name -> (seconds, count)
    #: telemetry captured in a pool worker (empty for in-process jobs);
    #: ``pid`` lets the parent skip merging its own direct reports
    spans: list = field(default_factory=list)
    counter_delta: dict = field(default_factory=dict)
    pid: int = 0


def dipole_moment(scf: SCFResult) -> np.ndarray:
    """Total dipole moment (a.u.): electronic -tr(P D) plus nuclear."""
    dip_ints = scf.engine.dipole(origin=(0.0, 0.0, 0.0))
    electronic = -np.einsum("xab,ab->x", dip_ints, scf.density)
    charges = scf.geometry.numbers.astype(float)
    nuclear = charges @ scf.geometry.coords
    return electronic + nuclear


def _displaced_scf(
    geometry: Geometry,
    atom: int,
    axis: int,
    delta: float,
    guess_density: np.ndarray,
    scf_kwargs: dict,
) -> SCFResult:
    geom_d = geometry.displaced(atom, axis, delta)
    res = RHF(geom_d, **scf_kwargs).run(guess_density=guess_density)
    if not res.converged:
        # retry cold — a bad guess can stall DIIS in rare cases
        res = RHF(geom_d, **scf_kwargs).run()
    if not res.converged:
        raise RuntimeError(
            f"SCF failed to converge at displacement (atom={atom}, axis={axis})"
        )
    return res


def coordinate_job(
    geometry: Geometry,
    atom: int,
    axis: int,
    delta: float,
    base_density: np.ndarray,
    scf_kwargs: dict,
    compute_raman: bool,
    compute_ir: bool,
    side_done=None,
) -> CoordinateJobResult:
    """Central-difference data for one coordinate (both signs).

    The +delta SCF is seeded from the base density; the -delta SCF is
    seeded from the converged +delta density — the nearest previously
    converged point for that coordinate (2 delta away instead of the
    base's delta... in the displaced coordinate the + density is simply
    the best available guess that costs nothing extra to keep).
    ``side_done()`` is invoked after each sign completes (serial
    progress reporting; must be ``None`` when shipped to a pool).
    """
    timer = Timer()
    sides = []
    guess = base_density
    with telemetry_shipment() as shipment:
        with get_tracer().span("hessian.coordinate", atom=atom, axis=axis):
            for sign in (+1.0, -1.0):
                with timer.section("scf_displaced"):
                    res = _displaced_scf(
                        geometry, atom, axis, sign * delta, guess, scf_kwargs
                    )
                with timer.section("gradient_displaced"):
                    g = gradient(res)
                a = None
                if compute_raman:
                    with timer.section("cphf_displaced"):
                        a = CPHF(res).run().alpha
                mu = dipole_moment(res) if compute_ir else None
                sides.append((g, a, mu, res.niter))
                # seed the -delta run from the +delta converged density
                guess = res.density
                if side_done is not None:
                    side_done()
    (gp, ap, mp, np_), (gm, am, mm, nm_) = sides
    col = 3 * atom + axis
    return CoordinateJobResult(
        col=col,
        hess_col=(gp - gm).ravel() / (2.0 * delta),
        dalpha_col=(ap - am) / (2.0 * delta) if compute_raman else None,
        dmu_col=(mp - mm) / (2.0 * delta) if compute_ir else None,
        niter_plus=np_,
        niter_minus=nm_,
        timings={
            name: (timer.totals[name], timer.counts[name])
            for name in timer.totals
        },
        spans=shipment.spans,
        counter_delta=shipment.counters,
        pid=os.getpid(),
    )


def fragment_response(
    geometry: Geometry,
    delta: float = 5.0e-3,
    compute_raman: bool = True,
    compute_ir: bool = False,
    basis_name: str = "sto-3g",
    eri_mode: str = "auto",
    schwarz_cutoff: float = 1.0e-12,
    timer: Timer | None = None,
    progress=None,
    pool: Executor | None = None,
) -> FragmentResponse:
    """Hessian (+ Raman tensor) of one fragment.

    Parameters
    ----------
    geometry:
        Fragment geometry (must be a closed-shell system; the MFCC
        capping in :mod:`repro.fragment` guarantees this).
    delta:
        Displacement step in bohr. 5e-3 balances FD truncation against
        SCF convergence noise (validated in tests against tighter
        settings).
    compute_raman:
        Also run CPHF at every displacement for d(alpha)/dR.
    compute_ir:
        Also difference the dipole moment for d(mu)/dR (IR intensities)
        — essentially free, the displaced SCFs already exist.
    schwarz_cutoff:
        Schwarz screening threshold handed to the SCF integral engine
        (see :mod:`repro.integrals.engine`); 0 disables screening.
    progress:
        Optional callback ``progress(done, total)`` — the pipeline uses
        this to emit worker heartbeats to the scheduler.
    pool:
        Optional :class:`concurrent.futures.Executor`: the ~3N
        coordinate jobs are dispatched to it instead of running
        serially (the ``displacement`` backend of
        :mod:`repro.pipeline.executor`). Results are numerically
        identical to the serial loop.
    """
    timer = timer or Timer()
    scf_kwargs = dict(
        basis_name=basis_name, eri_mode=eri_mode, schwarz_cutoff=schwarz_cutoff
    )
    with timer.section("scf_base"):
        base = RHF(geometry, **scf_kwargs).run()
    if not base.converged:
        raise RuntimeError("base SCF failed to converge")
    with timer.section("gradient_base"):
        g0 = gradient(base)
    alpha0 = None
    if compute_raman:
        with timer.section("cphf_base"):
            alpha0 = CPHF(base).run().alpha

    n = geometry.natoms
    ncoord = 3 * n
    hessian = np.zeros((ncoord, ncoord))
    dalpha = np.zeros((ncoord, 3, 3)) if compute_raman else None
    dmu = np.zeros((ncoord, 3)) if compute_ir else None
    total = 2 * ncoord
    done = 0
    coords = [(atom, axis) for atom in range(n) for axis in range(3)]

    results: list[CoordinateJobResult] = []
    tracer = get_tracer()
    with tracer.span("hessian.displacements", ncoord=ncoord):
        if pool is None:
            for atom, axis in coords:

                def side_done():
                    nonlocal done
                    done += 1
                    if progress is not None:
                        progress(done, total)

                results.append(
                    coordinate_job(
                        geometry, atom, axis, delta, base.density, scf_kwargs,
                        compute_raman, compute_ir, side_done=side_done,
                    )
                )
        else:
            pending = {
                pool.submit(
                    coordinate_job, geometry, atom, axis, delta, base.density,
                    scf_kwargs, compute_raman, compute_ir,
                )
                for atom, axis in coords
            }
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    res = fut.result()  # re-raises worker errors
                    if res.pid != os.getpid():
                        # telemetry captured inside the pool worker
                        tracer.adopt(res.spans)
                        counters().merge(res.counter_delta)
                    results.append(res)
                    done += 2
                    if progress is not None:
                        progress(done, total)

    counters().inc("hessian.coordinate_jobs", len(results))
    iters_plus = 0
    iters_minus = 0
    for res in results:
        hessian[res.col] = res.hess_col
        if compute_raman:
            dalpha[res.col] = res.dalpha_col
        if compute_ir:
            dmu[res.col] = res.dmu_col
        iters_plus += res.niter_plus
        iters_minus += res.niter_minus
        for name, (secs, cnt) in res.timings.items():
            timer.totals[name] += secs
            timer.counts[name] += cnt
    # the exact Hessian is symmetric; FD noise is split evenly
    hessian = 0.5 * (hessian + hessian.T)
    resp = FragmentResponse(
        geometry=geometry,
        energy=base.energy,
        hessian=hessian,
        dalpha_dr=dalpha,
        alpha=alpha0,
        gradient=g0,
        dmu_dr=dmu,
        meta={
            "delta": delta,
            "basis": basis_name,
            "timer": timer,
            "schwarz_cutoff": schwarz_cutoff,
            "scf_iters_base": base.niter,
            "scf_iters_plus": iters_plus,
            "scf_iters_minus": iters_minus,
            # iterations the density seeding saved across the 6N
            # displaced SCFs, measured against the cold-start cost of
            # the (equally sized, unseeded) base SCF
            "scf_iters_saved": 2 * ncoord * base.niter
            - (iters_plus + iters_minus),
        },
    )
    counters().inc("scf.iters_saved", resp.meta["scf_iters_saved"])
    # no-op unless QF_SANITIZE is set; the executor re-checks with the
    # fragment label attached, this guards direct library callers
    return check_response(resp, phase="fragment_response")
