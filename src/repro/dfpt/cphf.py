"""Coupled-perturbed SCF for electric-field response (polarizability).

The worker's DFPT cycle (paper Fig. 3, right-bottom) has four phases:

1. response density matrix  P(1),
2. real-space response density  n(1)(r),
3. Poisson solve for the response potential  v(1),
4. response Hamiltonian  H(1).

For the Gaussian/matrix formulation used here, phases 2+3 are the
Coulomb response build J[P(1)] (density fitting plays the role of the
real-space Poisson solve; the grid-based versions of phases 2-4 are
implemented in :mod:`repro.kernels` where their FLOP rates are
measured for Table I). Phase 4 is F(1) = J[P(1)] - 0.5 K[P(1)], and
phase 1 is the U-update. Each CPHF iteration cycles 1 → 4, so the
timer labels here match the paper's phase names.

Conventions: closed-shell RHF, real orbitals. The perturbed Fock /
overlap equations for a field direction x reduce to

    (eps_a - eps_i) U^x_ai + G_ai[P(1)] = -Q^x_ai,
    P(1) = 2 (C_v U C_o^T + C_o U^T C_v^T),

solved by preconditioned iteration with DIIS-free damping (the orbital
Hessian of a converged closed-shell SCF is positive definite). The
polarizability is alpha_xy = -tr(P^(1),y D_x), validated against
finite-field energies d^2E/dF^2 in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devtools.contracts import check_array, sanitize_enabled
from repro.obs.counters import counters
from repro.obs.tracer import get_tracer
from repro.scf.rhf import SCFResult
from repro.utils.flops import FlopCounter, gemm_flops
from repro.utils.timing import Timer


@dataclass
class CPHFResult:
    """Electric-field response of one SCF state."""

    alpha: np.ndarray                 # (3, 3) polarizability tensor
    u: np.ndarray                     # (3, nvirt, nocc) response coefficients
    p1: np.ndarray                    # (3, nbf, nbf) response densities
    converged: bool
    niter: int


class CPHF:
    """Coupled-perturbed HF solver for the three field directions."""

    def __init__(
        self,
        scf: SCFResult,
        conv_tol: float = 1e-8,
        max_iter: int = 100,
        timer: Timer | None = None,
        flops: FlopCounter | None = None,
    ):
        if scf.eri is None and scf.df is None:
            raise ValueError("SCF result carries neither exact ERIs nor DF tensors")
        self.scf = scf
        self.conv_tol = conv_tol
        self.max_iter = max_iter
        self.timer = timer or Timer()
        self.flops = flops or FlopCounter()

    # -- response Fock build --------------------------------------------------

    def _response_fock(self, p1: np.ndarray) -> np.ndarray:
        """Response Hamiltonian H(1)[P(1)].

        Hartree-Fock: J[P(1)] - 0.5 K[P(1)] (Coulomb response through
        density fitting = the Poisson phase; exchange belongs to H(1)).
        Kohn-Sham (LDA): J[P(1)] + f_xc n(1), where n(1)(r) is the
        response density integrated on the real-space grid — the
        paper's phases 2-4 executed literally.
        """
        scf = self.scf
        nbf = p1.shape[0]
        xc = scf.extras.get("xc")
        tracer = get_tracer()
        with self.timer.section("n1r+poisson"), tracer.span("dfpt.n1r_poisson"):
            if scf.eri is not None:
                j = np.einsum("abcd,cd->ab", scf.eri, p1)
            else:
                j = scf.df.coulomb(p1)
            self.flops.add("n1r", gemm_flops(nbf, nbf, nbf))
        if xc is not None:
            with self.timer.section("h1"), tracer.span("dfpt.h1"):
                chi = xc["chi"]
                n1 = np.einsum("pm,pm->p", chi @ p1, chi)
                wf = xc["grid"].weights * xc["fxc"] * n1
                vxc1 = (chi * wf[:, None]).T @ chi
                self.flops.add("h1", 2 * gemm_flops(chi.shape[0], nbf, nbf))
            return j + vxc1
        with self.timer.section("h1"), tracer.span("dfpt.h1"):
            k = scf.df.exchange_density(p1) if scf.eri is None else np.einsum(
                "acbd,cd->ab", scf.eri, p1
            )
            self.flops.add("h1", gemm_flops(nbf, nbf, nbf))
        return j - 0.5 * k

    # -- solver ----------------------------------------------------------------

    def run(self) -> CPHFResult:
        """Solve the three field directions; returns a :class:`CPHFResult`."""
        with get_tracer().span(
            "cphf", nbf=self.scf.overlap.shape[0], nocc=self.scf.nocc
        ) as sp:
            result = self._solve()
            sp.set(niter=result.niter, converged=result.converged)
        counters().inc("cphf.runs")
        counters().inc("cphf.iterations", result.niter)
        if not result.converged:
            counters().inc("cphf.unconverged")
        return result

    def _solve(self) -> CPHFResult:
        scf = self.scf
        c = scf.mo_coeff
        nocc = scf.nocc
        c_o = c[:, :nocc]
        c_v = c[:, nocc:]
        eps_o = scf.mo_energy[:nocc]
        eps_v = scf.mo_energy[nocc:]
        denom = eps_v[:, None] - eps_o[None, :]  # (nvirt, nocc), positive

        dip = scf.engine.dipole(origin=(0.0, 0.0, 0.0))
        # Q^x_ai = (C_v^T D_x C_o): the bare perturbation in MO basis.
        # Core Hamiltonian coupling h(F) = h0 + F·D (see RHF.field_vector).
        q = np.einsum("av,xab,bo->xvo", c_v, dip, c_o)

        nvirt = c_v.shape[1]
        u = np.zeros((3, nvirt, nocc))
        converged = False
        it = 0
        # Pulay-DIIS over the stacked U: the fixed-point map
        # u -> -(q + G[u]) / denom converges linearly on its own; DIIS
        # extrapolation over the residuals cuts iterations ~3-4x.
        hist_u: list[np.ndarray] = []
        hist_r: list[np.ndarray] = []
        max_hist = 8
        for it in range(1, self.max_iter + 1):
            u_next = np.empty_like(u)
            tracer = get_tracer()
            for x in range(3):
                with self.timer.section("p1"), tracer.span("dfpt.p1"):
                    xmat = c_v @ u[x] @ c_o.T
                    p1 = 2.0 * (xmat + xmat.T)
                f1 = self._response_fock(p1)
                with self.timer.section("p1"), tracer.span("dfpt.p1"):
                    g = c_v.T @ f1 @ c_o
                    u_next[x] = -(q[x] + g) / denom
            resid = u_next - u
            max_delta = float(np.abs(resid).max())
            hist_u.append(u_next.copy())
            hist_r.append(resid.copy())
            if len(hist_u) > max_hist:
                hist_u.pop(0)
                hist_r.pop(0)
            if max_delta < self.conv_tol:
                u = u_next
                converged = True
                break
            nh = len(hist_u)
            if nh >= 2:
                bmat = np.empty((nh + 1, nh + 1))
                bmat[-1, :] = -1.0
                bmat[:, -1] = -1.0
                bmat[-1, -1] = 0.0
                for i in range(nh):
                    for j in range(i, nh):
                        v = float(np.vdot(hist_r[i], hist_r[j]))
                        bmat[i, j] = bmat[j, i] = v
                rhs = np.zeros(nh + 1)
                rhs[-1] = -1.0
                try:
                    coeff = np.linalg.solve(bmat, rhs)[:nh]
                    u = sum(ci * ui for ci, ui in zip(coeff, hist_u))
                except np.linalg.LinAlgError:
                    u = u_next
            else:
                u = u_next

        p1 = np.empty((3, scf.overlap.shape[0], scf.overlap.shape[0]))
        for x in range(3):
            xmat = c_v @ u[x] @ c_o.T
            p1[x] = 2.0 * (xmat + xmat.T)
        # alpha_xy = -tr(P^(1),y D_x); symmetric for exact response
        alpha = -np.einsum("xab,yab->xy", dip, p1)
        if sanitize_enabled():
            # a NaN response density or an asymmetric polarizability
            # means the CPHF fixed point diverged silently
            ctx = f"cphf nbf={p1.shape[1]} niter={it} converged={converged}"
            check_array("p1", p1, symmetric=True,
                        shape=(3, p1.shape[1], p1.shape[2]), context=ctx)
            check_array("alpha", alpha, symmetric=True, shape=(3, 3),
                        atol=1.0e-5, context=ctx)
        return CPHFResult(alpha=alpha, u=u, p1=p1, converged=converged, niter=it)


def polarizability(scf: SCFResult, **kwargs) -> np.ndarray:
    """Convenience wrapper: the (3, 3) polarizability tensor."""
    return CPHF(scf, **kwargs).run().alpha
