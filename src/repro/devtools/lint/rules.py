"""AST rules of the QF linter.

Each rule has a stable code (``QF001``…) and a named alias usable in
suppression comments (``# qf: exact-zero``). The rules encode numerical
invariants this codebase depends on — the kind of defect that produces
a *wrong spectrum*, not a crash:

QF001 float-equality     ``== / !=`` against a float literal. Physics
                         quantities carry FD and convergence noise;
                         exact comparison is almost always a tolerance
                         bug. Intentional exact-zero guards (screening
                         on analytically-zero Hermite coefficients,
                         zero-norm starts) are annotated
                         ``# qf: exact-zero``.
QF002 einsum-subscripts  Malformed or operand-inconsistent literal
                         ``np.einsum`` subscripts (transpose typos,
                         wrong operand counts, output labels absent
                         from inputs) and non-literal subscript strings
                         that cannot be validated statically.
QF003 mutable-default    Mutable default argument (list/dict/set
                         literals or constructors) — state leaks
                         between calls, deadly in a worker that is
                         reused across fragments.
QF004 broad-except       Bare ``except`` / ``except Exception`` whose
                         body never re-raises: in the executor path
                         this swallows worker errors and silently drops
                         fragments from the assembled spectrum.
QF005 unseeded-rng       Legacy global-state ``np.random.*`` calls, or
                         ``default_rng()`` without a seed, outside
                         tests — both break cross-process determinism.
QF006 dtype-downcast     ``np.float32`` / ``np.float16`` /
                         ``np.complex64`` literals, ``dtype=`` of the
                         same, or ``.astype`` to them: silent precision
                         loss below the 1e-10 reproducibility bar.
QF007 missing-all        A non-trivial package ``__init__.py`` without
                         ``__all__`` — the public API boundary must be
                         explicit.
QF008 raw-clock          Direct ``time.perf_counter()`` /
                         ``perf_counter_ns()`` calls outside the
                         sanctioned timing layers
                         (:mod:`repro.utils.timing`, :mod:`repro.obs`).
                         Ad-hoc clock reads bypass the Timer /
                         Stopwatch / tracer instrumentation, so their
                         wall time is invisible to ``phase_wall_s``,
                         the span trace, and the run manifest.
QF009 shell-loop         A python-level ``for`` loop over shells /
                         primitive pairs inside :mod:`repro.integrals`.
                         Per-pair python is the overhead the batched
                         kernel layer (``repro.integrals.batched``)
                         exists to remove; new hot-path loops belong
                         there as array operations. Sanctioned scalar
                         drivers (the McMurchie reference path, scalar
                         scatter fallbacks, ordered-write scatters)
                         are annotated ``# qf: shell-loop``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["Finding", "RULES", "ALIASES", "RuleVisitor"]


@dataclass(frozen=True)
class Finding:
    """One linter hit, stable enough to assert against in tests."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


#: code -> (alias, one-line description)
RULES = {
    "QF001": ("exact-zero",
              "float equality against a literal on a physics quantity"),
    "QF002": ("einsum", "invalid or unvalidated np.einsum subscripts"),
    "QF003": ("mutable-default", "mutable default argument"),
    "QF004": ("broad-except",
              "overbroad except without re-raise can swallow worker errors"),
    "QF005": ("unseeded-rng", "unseeded / global-state numpy RNG"),
    "QF006": ("dtype-downcast", "silent dtype downcast below float64"),
    "QF007": ("missing-all", "public package __init__ without __all__"),
    "QF008": ("raw-clock",
              "direct perf_counter call outside repro.utils.timing / "
              "repro.obs"),
    "QF009": ("shell-loop",
              "python-level loop over shells/primitives in repro.integrals"),
}

#: alias -> code (suppression comments accept either form)
ALIASES = {alias: code for code, (alias, _) in RULES.items()}

_LEGACY_RNG_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "SFC64", "MT19937", "BitGenerator",
}
_DOWNCAST_NAMES = {"float32", "float16", "complex64"}
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set"}
_RAW_CLOCK_NAMES = {"perf_counter", "perf_counter_ns"}
#: path fragments whose files ARE the sanctioned timing layer
_RAW_CLOCK_EXEMPT = ("utils/timing.py", "repro/obs/")
#: iterable identifiers that mark a loop as per-shell / per-primitive
_SHELL_LOOP_NAMES = {
    "shells", "exps", "coefs", "prims", "primitives", "plist", "pairs",
    "npair", "nprim",
}
#: path fragment gating QF009 to the integrals hot path
_SHELL_LOOP_PATH = "integrals"


def _raw_clock_exempt(path: str) -> bool:
    norm = path.replace("\\", "/")
    return any(frag in norm for frag in _RAW_CLOCK_EXEMPT)


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an attribute chain ('np.random.rand')."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _validate_einsum_subscripts(spec: str, n_operands: int | None
                                ) -> str | None:
    """Return an error message for a literal einsum subscript, or None."""
    s = spec.replace(" ", "")
    if s.count("->") > 1:
        return f"subscripts {spec!r} contain more than one '->'"
    lhs, _, out = s.partition("->")
    explicit = "->" in s
    inputs = lhs.split(",")
    in_labels: set[str] = set()
    for term in inputs:
        if term.count("...") > 1:
            return f"operand spec {term!r} repeats '...'"
        letters = term.replace("...", "")
        bad = [c for c in letters if not c.isalpha()]
        if bad:
            return f"subscripts {spec!r} contain invalid characters {bad}"
        in_labels.update(letters)
    if n_operands is not None and n_operands != len(inputs):
        return (f"subscripts {spec!r} name {len(inputs)} operands "
                f"but the call passes {n_operands}")
    if explicit:
        out_letters = out.replace("...", "")
        if any(not c.isalpha() for c in out_letters):
            return f"output spec {out!r} contains invalid characters"
        dup = {c for c in out_letters if out_letters.count(c) > 1}
        if dup:
            return (f"output spec {out!r} repeats "
                    f"{sorted(dup)} — einsum output labels must be unique")
        missing = sorted(set(out_letters) - in_labels)
        if missing:
            return (f"output labels {missing} of {spec!r} never appear in "
                    "an input operand (transpose/rename typo?)")
    return None


class RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor producing raw findings (pre-suppression)."""

    def __init__(self, path: str, is_package_init: bool = False):
        self.path = path
        self.is_package_init = is_package_init
        self.findings: list[Finding] = []

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        ))

    # -- QF001: float equality --------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for operand in [node.left, *node.comparators]:
                if (isinstance(operand, ast.Constant)
                        and type(operand.value) is float):
                    self._emit(
                        node, "QF001",
                        f"equality against float literal {operand.value!r}; "
                        "use a tolerance, or annotate an intentional guard "
                        "with '# qf: exact-zero'",
                    )
                    break
        self.generic_visit(node)

    # -- QF003: mutable defaults ------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
            )
            if mutable:
                self._emit(
                    default, "QF003",
                    "mutable default argument — shared across calls; "
                    "default to None and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- QF004: overbroad except -------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None
        if isinstance(node.type, ast.Name):
            broad = node.type.id in ("Exception", "BaseException")
        elif isinstance(node.type, ast.Tuple):
            broad = any(
                isinstance(e, ast.Name)
                and e.id in ("Exception", "BaseException")
                for e in node.type.elts
            )
        if broad:
            reraises = any(
                isinstance(sub, ast.Raise)
                for stmt in node.body for sub in ast.walk(stmt)
            )
            if not reraises:
                what = ("bare 'except'" if node.type is None
                        else "'except Exception'")
                self._emit(
                    node, "QF004",
                    f"{what} without re-raise can swallow worker errors; "
                    "narrow the exception, re-raise, or annotate the "
                    "capture-and-report pattern with '# qf: broad-except'",
                )
        self.generic_visit(node)

    # -- call-shaped rules: QF002, QF005, QF006 ----------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_einsum(node)
        self._check_rng(node)
        self._check_downcast_call(node)
        self._check_raw_clock(node)
        for kw in node.keywords:
            if kw.arg == "dtype" and self._is_downcast_value(kw.value):
                self._emit(
                    node, "QF006",
                    "dtype= requests a sub-float64 type; the pipeline's "
                    "1e-10 determinism bar assumes float64 — annotate "
                    "intentional casts with '# qf: dtype-downcast'",
                )
        self.generic_visit(node)

    def _check_einsum(self, node: ast.Call) -> None:
        name = (node.func.attr if isinstance(node.func, ast.Attribute)
                else node.func.id if isinstance(node.func, ast.Name)
                else None)
        if name != "einsum" or not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            # interleaved form or a computed string — cannot be checked
            self._emit(
                node, "QF002",
                "einsum subscripts are not a string literal and cannot be "
                "validated statically; prefer a literal, or annotate with "
                "'# qf: einsum'",
            )
            return
        operands = node.args[1:]
        n_ops = (None if any(isinstance(a, ast.Starred) for a in operands)
                 else len(operands))
        err = _validate_einsum_subscripts(first.value, n_ops)
        if err:
            self._emit(node, "QF002", err)

    def _check_rng(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        parts = dotted.split(".")
        if len(parts) >= 3 and parts[-2] == "random" and parts[0] in (
                "np", "numpy"):
            if parts[-1] not in _LEGACY_RNG_ALLOWED:
                self._emit(
                    node, "QF005",
                    f"legacy global-state RNG call '{dotted}' — thread a "
                    "seeded np.random.Generator through the call instead",
                )
                return
        if parts and parts[-1] == "default_rng" and not node.args \
                and not node.keywords:
            self._emit(
                node, "QF005",
                "default_rng() without a seed is irreproducible across "
                "processes; pass an explicit seed or accept a Generator",
            )

    def _is_downcast_value(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value in _DOWNCAST_NAMES
        dotted = _dotted(value)
        return dotted.split(".")[-1] in _DOWNCAST_NAMES if dotted else False

    def _check_downcast_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        last = dotted.split(".")[-1] if dotted else ""
        if last in _DOWNCAST_NAMES and dotted.split(".")[0] in ("np", "numpy"):
            self._emit(
                node, "QF006",
                f"'{dotted}' constructs a sub-float64 scalar/array; "
                "physics quantities are float64 end to end",
            )
        elif last == "astype" and node.args and self._is_downcast_value(
                node.args[0]):
            self._emit(
                node, "QF006",
                "astype to a sub-float64 dtype loses precision silently",
            )

    # -- QF008: raw clock reads --------------------------------------------

    def _check_raw_clock(self, node: ast.Call) -> None:
        if _raw_clock_exempt(self.path):
            return
        dotted = _dotted(node.func)
        if not dotted:
            return
        parts = dotted.split(".")
        # `time.perf_counter()` or a bare `perf_counter()` from-import
        hit = parts[-1] in _RAW_CLOCK_NAMES and (
            len(parts) == 1 or parts[0] == "time"
        )
        if hit:
            self._emit(
                node, "QF008",
                f"direct '{dotted}()' call — use Timer/Stopwatch from "
                "repro.utils.timing or a tracer span so the wall time "
                "reaches phase_wall_s and the trace; annotate true "
                "exceptions with '# qf: raw-clock'",
            )

    # -- QF009: shell/primitive loops in the integrals hot path ------------

    def visit_For(self, node: ast.For) -> None:
        self._check_shell_loop(node)
        self.generic_visit(node)

    def _check_shell_loop(self, node: ast.For) -> None:
        norm = self.path.replace("\\", "/")
        if _SHELL_LOOP_PATH not in norm:
            return
        hits: set[str] = set()
        for sub in ast.walk(node.iter):
            if (isinstance(sub, ast.Attribute)
                    and sub.attr in _SHELL_LOOP_NAMES):
                hits.add(sub.attr)
            elif isinstance(sub, ast.Name) and sub.id in _SHELL_LOOP_NAMES:
                hits.add(sub.id)
        if hits:
            self._emit(
                node, "QF009",
                "python-level loop over "
                f"{'/'.join(sorted(hits))} in the integrals hot path — "
                "vectorize via repro.integrals.batched (class-grouped "
                "pair blocks), or annotate a sanctioned scalar reference "
                "path with '# qf: shell-loop'",
            )

    # -- QF007: missing __all__ --------------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        if self.is_package_init:
            has_all = any(
                isinstance(stmt, (ast.Assign, ast.AugAssign))
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in (stmt.targets
                              if isinstance(stmt, ast.Assign)
                              else [stmt.target])
                )
                for stmt in node.body
            )
            nontrivial = any(
                isinstance(stmt, (ast.Import, ast.ImportFrom,
                                  ast.FunctionDef, ast.ClassDef, ast.Assign))
                for stmt in node.body
            )
            if nontrivial and not has_all:
                self._emit(
                    node, "QF007",
                    "package __init__ defines public names but no __all__; "
                    "the public API boundary must be explicit",
                )
        self.generic_visit(node)
