"""QF linter driver: file discovery, suppression handling, CLI.

Usage::

    python -m repro.devtools.lint src/          # lint a tree
    python -m repro.devtools.lint file.py -v    # single file, verbose
    python -m repro devtools lint src/          # via the main CLI

Exit status 0 means no unsuppressed findings; 1 means findings were
reported; 2 means a file could not be parsed.

Suppression syntax (documented in ``docs/static_analysis.md``):

- line level: a trailing ``# qf: <tag>`` comment on the finding's line,
  where ``<tag>`` is a rule code (``QF001``), its alias
  (``exact-zero``), or ``all``. Several tags may be comma-separated.
- file level: a ``# qf-file: <tags>`` comment anywhere in the file
  disables those rules for the whole file.

The linter is intentionally stdlib-only (``ast`` + ``tokenize`` free):
it must run in the bare production container.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

from repro.devtools.lint.rules import ALIASES, RULES, Finding, RuleVisitor

__all__ = [
    "ALIASES",
    "RULES",
    "Finding",
    "LintError",
    "lint_source",
    "lint_paths",
    "main",
]

_LINE_TAG = re.compile(r"#\s*qf:\s*([A-Za-z0-9_,\-\s]+)")
_FILE_TAG = re.compile(r"^\s*#\s*qf-file:\s*([A-Za-z0-9_,\-\s]+)")


class LintError(RuntimeError):
    """A file could not be linted (syntax error, unreadable)."""


def _parse_tags(raw: str) -> set[str]:
    """Normalize a suppression tag list to rule codes ('all' -> every)."""
    codes: set[str] = set()
    for tag in re.split(r"[,\s]+", raw.strip()):
        if not tag:
            continue
        tag_l = tag.lower()
        if tag_l == "all":
            codes.update(RULES)
        elif tag_l in ALIASES:
            codes.add(ALIASES[tag_l])
        elif tag.upper() in RULES:
            codes.add(tag.upper())
        # unknown tags are ignored rather than fatal: a typo'd
        # suppression then *fails* the lint run, which is the loud
        # failure mode we want
    return codes


def _suppressions(source: str) -> tuple[dict[int, set[str]], set[str]]:
    """(per-line rule codes, file-wide rule codes) from comments."""
    per_line: dict[int, set[str]] = {}
    file_wide: set[str] = set()
    for i, line in enumerate(source.splitlines(), start=1):
        m = _FILE_TAG.search(line)
        if m:
            file_wide |= _parse_tags(m.group(1))
            continue
        m = _LINE_TAG.search(line)
        if m:
            per_line[i] = _parse_tags(m.group(1))
    return per_line, file_wide


def lint_source(
    source: str,
    path: str = "<string>",
    is_package_init: bool | None = None,
    include_suppressed: bool = False,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings in line order.

    ``is_package_init`` controls the QF007 rule; by default it is
    inferred from ``path`` ending in ``__init__.py``.
    """
    if is_package_init is None:
        is_package_init = Path(path).name == "__init__.py"
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: {exc}") from exc
    visitor = RuleVisitor(path, is_package_init=is_package_init)
    visitor.visit(tree)
    if include_suppressed:
        return sorted(visitor.findings, key=lambda f: (f.line, f.col))
    per_line, file_wide = _suppressions(source)
    kept = [
        f for f in visitor.findings
        if f.code not in file_wide and f.code not in per_line.get(f.line, ())
    ]
    return sorted(kept, key=lambda f: (f.line, f.col))


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of .py files."""
    out: list[Path] = []
    for p in map(Path, paths):
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
    # skip build artifacts that setuptools drops into src/
    return [p for p in out if "egg-info" not in str(p)
            and "__pycache__" not in str(p)]


def lint_paths(
    paths: list[str | Path],
    select: set[str] | None = None,
) -> list[Finding]:
    """Lint every .py file under ``paths``; optional rule-code filter."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        for f in lint_source(source, path=str(file)):
            if select is None or f.code in select:
                findings.append(f)
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="QF physics-aware linter (rule docs: "
                    "docs/static_analysis.md)",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule codes/aliases to report (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, (alias, desc) in sorted(RULES.items()):
            print(f"{code}  {alias:<16} {desc}")
        return 0
    if not args.paths:
        parser.error("the following arguments are required: paths")

    select = _parse_tags(args.select) if args.select else None
    try:
        findings = lint_paths(args.paths, select=select)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for f in findings:
        print(f)
    n_files = len(iter_python_files(args.paths))
    if findings:
        print(f"{len(findings)} finding(s) in {n_files} file(s)",
              file=sys.stderr)
        return 1
    return 0
