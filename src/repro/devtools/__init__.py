"""Developer tooling: physics-aware static analysis + runtime sanitizer.

Two halves, both zero-dependency (stdlib + numpy only):

- :mod:`repro.devtools.lint` — an AST linter with QF-specific rules
  (float equality on physics quantities, malformed ``np.einsum``
  subscripts, overbroad ``except`` that can swallow worker errors,
  unseeded RNG, silent dtype downcasts, …). Run it as
  ``python -m repro.devtools.lint src/`` or ``python -m repro devtools
  lint src/``; rules and suppression syntax are documented in
  ``docs/static_analysis.md``.
- :mod:`repro.devtools.contracts` — a runtime numerical sanitizer
  (``QF_SANITIZE=1``): array contracts (symmetry, finiteness, shape,
  dtype) checked at the hot public API boundaries, raising structured
  :class:`~repro.devtools.contracts.ContractViolation` errors that name
  the producing fragment/phase. Zero-cost no-op when disabled.
"""

from repro.devtools.contracts import (
    ContractViolation,
    array_contract,
    check_array,
    check_response,
    response_digest,
    sanitize,
    sanitize_enabled,
)
from repro.devtools.lint import Finding, lint_paths, lint_source

__all__ = [
    "ContractViolation",
    "array_contract",
    "check_array",
    "check_response",
    "response_digest",
    "sanitize",
    "sanitize_enabled",
    "Finding",
    "lint_paths",
    "lint_source",
]
