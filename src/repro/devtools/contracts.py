"""Runtime numerical sanitizer: array contracts at API boundaries.

The QF pipeline silently assumes invariants the type system cannot
express — Hermitian Fock/Hessian blocks, finite response densities,
symmetric polarizability tensors, deterministic worker results. A
violation surfaces as a *wrong spectrum*, not a crash. This module
makes those invariants checkable at the hot public APIs:

- :func:`check_array` — validate one ndarray (finiteness, symmetry,
  shape, dtype) and raise a structured :class:`ContractViolation`.
- :func:`array_contract` — decorator form for functions whose return
  value is the array to check.
- :func:`check_response` — the fragment-level composite: Hessian
  symmetry + finiteness, Raman-tensor finiteness, polarizability
  symmetry, with the producing fragment's label in the error.
- :func:`response_digest` / :func:`digests_match` — cross-process
  determinism: a stable content hash of a fragment response, used by
  the executor's serial-vs-pool comparison mode
  (``QF_SANITIZE_DETERMINISM=1``).

Checks only run when sanitizing is active: set ``QF_SANITIZE=1`` in the
environment (inherited by pool workers) or enter the :func:`sanitize`
context manager. When inactive every entry point reduces to a single
truthiness test — measured well under the 5% wall-overhead budget.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from functools import wraps

import numpy as np

__all__ = [
    "ContractViolation",
    "sanitize_enabled",
    "sanitize",
    "check_array",
    "array_contract",
    "check_response",
    "response_digest",
    "digests_match",
    "determinism_check_enabled",
]

#: truthy values accepted for QF_SANITIZE / QF_SANITIZE_DETERMINISM
_TRUTHY = {"1", "true", "yes", "on"}

# nesting depth of sanitize(True) minus explicit sanitize(False) masks;
# module-global so the decorator fast path is one comparison + one
# os.environ lookup
_forced: list[bool] = []


class ContractViolation(ValueError):
    """A numerical invariant was violated at an API boundary.

    Carries enough structure for the caller (or a test) to identify the
    producing computation: the contract ``rule`` that failed, the
    ``name`` of the offending array, and a ``context`` string naming
    the fragment / phase when available.
    """

    def __init__(self, message: str, *, name: str = "",
                 rule: str = "", context: str = ""):
        self.name = name
        self.rule = rule
        self.context = context
        prefix = f"[{context}] " if context else ""
        super().__init__(f"{prefix}{message}")


def sanitize_enabled() -> bool:
    """True when contracts should be enforced (env or context manager)."""
    if _forced:
        return _forced[-1]
    return os.environ.get("QF_SANITIZE", "").lower() in _TRUTHY


def determinism_check_enabled() -> bool:
    """True when the serial-vs-pool digest comparison should run."""
    return sanitize_enabled() and os.environ.get(
        "QF_SANITIZE_DETERMINISM", "").lower() in _TRUTHY


@contextmanager
def sanitize(enabled: bool = True):
    """Force sanitizing on (or off) for the dynamic extent of the block.

    Overrides ``QF_SANITIZE`` in both directions; nests correctly.
    """
    _forced.append(enabled)
    try:
        yield
    finally:
        _forced.pop()


def _fail(message: str, name: str, rule: str, context: str) -> None:
    raise ContractViolation(message, name=name, rule=rule, context=context)


def check_array(
    name: str,
    arr,
    *,
    finite: bool = True,
    symmetric: bool = False,
    shape: tuple | None = None,
    dtype=None,
    atol: float = 1.0e-8,
    context: str = "",
    force: bool = False,
):
    """Validate one array against its contract; returns the array.

    Parameters
    ----------
    symmetric:
        Require ``max|A - A.T| <= atol * max(1, max|A|)`` over the last
        two axes (relative so converged-but-noisy tensors like CPHF
        polarizabilities pass with physical tolerances).
    shape:
        Expected shape; ``None`` entries are wildcards.
    dtype:
        Required exact dtype (e.g. ``np.float64``) — guards silent
        downcasts crossing the boundary.
    force:
        Check even when sanitizing is disabled (used by tests).
    """
    if not (force or sanitize_enabled()):
        return arr
    if arr is None:
        _fail(f"{name} is None but its contract requires an array",
              name, "missing", context)
    a = np.asarray(arr)
    if dtype is not None and a.dtype != np.dtype(dtype):
        _fail(f"{name} has dtype {a.dtype}, contract requires "
              f"{np.dtype(dtype)}", name, "dtype", context)
    if shape is not None:
        if a.ndim != len(shape) or any(
            want is not None and got != want
            for got, want in zip(a.shape, shape)
        ):
            _fail(f"{name} has shape {a.shape}, contract requires {shape}",
                  name, "shape", context)
    if finite and not np.all(np.isfinite(a)):
        n_bad = int(np.size(a) - np.count_nonzero(np.isfinite(a)))
        _fail(f"{name} contains {n_bad} non-finite element(s) "
              f"(NaN/Inf) out of {a.size}", name, "finite", context)
    if symmetric:
        if a.ndim < 2 or a.shape[-1] != a.shape[-2]:
            _fail(f"{name} has shape {a.shape} — symmetry requires square "
                  "trailing axes", name, "symmetric", context)
        dev = float(np.abs(a - np.swapaxes(a, -1, -2)).max())
        scale = max(1.0, float(np.abs(a).max())) if a.size else 1.0
        if dev > atol * scale:
            _fail(f"{name} is asymmetric: max|A - A^T| = {dev:.3e} "
                  f"(tolerance {atol:.1e} x {scale:.3g})",
                  name, "symmetric", context)
    return arr


def array_contract(
    *,
    finite: bool = True,
    symmetric: bool = False,
    shape: tuple | None = None,
    dtype=None,
    atol: float = 1.0e-8,
    name: str | None = None,
):
    """Decorator: validate a function's ndarray return value.

    Zero-cost no-op path when sanitizing is disabled (one boolean test
    per call). The contract name defaults to the function's qualname.
    """
    def deco(fn):
        label = name or fn.__qualname__

        @wraps(fn)
        def wrapper(*args, **kwargs):
            out = fn(*args, **kwargs)
            if sanitize_enabled():
                check_array(label, out, finite=finite, symmetric=symmetric,
                            shape=shape, dtype=dtype, atol=atol)
            return out
        return wrapper
    return deco


def check_response(resp, label: str = "", phase: str = "", *,
                   force: bool = False):
    """Fragment-level composite contract (duck-typed FragmentResponse).

    Checks the invariants the Eq. (1) assembly silently assumes:
    a symmetric, finite Hessian; finite Raman tensor and gradient; a
    symmetric equilibrium polarizability. The producing fragment and
    pipeline phase go into the error's context.

    ``force=True`` checks even when sanitizing is disabled — the
    fault-tolerant executor uses it so corrupted worker results always
    feed the retry path instead of the spectrum
    (:mod:`repro.pipeline.resilience`).
    """
    if not (force or sanitize_enabled()):
        return resp
    context = " ".join(x for x in (f"fragment={label}" if label else "",
                                   f"phase={phase}" if phase else "") if x)
    ncoord = resp.hessian.shape[0]
    check_array("hessian", resp.hessian, symmetric=True,
                shape=(ncoord, ncoord), atol=1.0e-8, context=context,
                force=force)
    check_array("gradient", resp.gradient, context=context, force=force)
    if resp.dalpha_dr is not None:
        check_array("dalpha_dr", resp.dalpha_dr, shape=(ncoord, 3, 3),
                    context=context, force=force)
    if resp.alpha is not None:
        # CPHF alpha is symmetric only to solver tolerance (1e-8 on U),
        # which propagates to ~1e-6 on the tensor
        check_array("alpha", resp.alpha, symmetric=True, shape=(3, 3),
                    atol=1.0e-5, context=context, force=force)
    if resp.dmu_dr is not None:
        check_array("dmu_dr", resp.dmu_dr, shape=(ncoord, 3),
                    context=context, force=force)
    return resp


# -- cross-process determinism -----------------------------------------------

def _digest_update(h, arr) -> None:
    if arr is None:
        h.update(b"<none>")
        return
    a = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
    h.update(str(a.shape).encode())
    h.update(a.tobytes())


def response_digest(resp) -> str:
    """Stable content hash of a fragment response.

    Bitwise over the float64 payloads: the executor backends promise
    *identical* numerics (same code path, same seeds), so serial and
    pool runs of the same task must produce equal digests.
    """
    h = hashlib.sha256()
    for field in ("hessian", "dalpha_dr", "alpha", "gradient", "dmu_dr"):
        _digest_update(h, getattr(resp, field, None))
    h.update(np.float64(resp.energy).tobytes())
    return h.hexdigest()


def digests_match(a, b) -> bool:
    return response_digest(a) == response_digest(b)
