"""Line-coverage gate for a package subtree — stdlib only.

The container has no ``coverage``/``pytest-cov``, so this module
implements the minimum needed to gate CI: measure which lines of a
target directory execute during a pytest run and fail when the
percentage drops below a floor. Used by ``make coverage-gate`` to hold
``src/repro/pipeline/`` above 85% on the tier-1 suite, so the
fault-tolerance machinery cannot silently lose its tests.

Mechanics
---------
*Executable lines* come from compiling each source file and walking the
code objects' ``co_lines()`` tables, counting only **function bodies**
(code objects with ``CO_OPTIMIZED``): module- and class-level lines run
once at import, which happens before any tracer can start — the target
package is imported by the gate's own process startup — so they carry
no signal. Functions whose ``def`` line carries ``# pragma: no cover``
are excluded, recursively. *Executed lines* come from a
:func:`sys.settrace` hook that enables line events only for frames
whose code lives in the target files — everything else pays one dict
lookup per function call. Pool-worker processes are not traced; the
gate measures the parent, which is where every target module also runs
(the serial backend shares the worker code path).

Usage::

    python -m repro.devtools.covgate [--target src/repro/pipeline]
        [--fail-under 85] [--list-misses] -- [pytest args]

Pytest args default to ``-x -q`` (the tier-1 selection via pyproject
``addopts``).
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path

__all__ = [
    "CoverageTracer",
    "collect_executable_lines",
    "coverage_percent",
    "main",
]

_PRAGMA = "pragma: no cover"


#: set on real function/lambda/comprehension code objects, absent on
#: module and class bodies (which execute at import time)
_CO_OPTIMIZED = 0x0001


def _code_lines(code, source_lines: list[str], out: set[int]) -> None:
    """Recursively collect function-body line numbers of ``code``."""
    first = code.co_firstlineno
    if code.co_name != "<module>" and 0 < first <= len(source_lines) \
            and _PRAGMA in source_lines[first - 1]:
        return
    if code.co_flags & _CO_OPTIMIZED:
        pairs = [(start, line) for start, _end, line in code.co_lines()
                 if line is not None and line > 0]
        # the instruction at offset 0 (RESUME) maps to the `def` line
        # but emits no line event when the module was imported before
        # tracing started — count that line only if a real statement
        # also lives on it (one-liner defs)
        resume_only = {line for start, line in pairs if start == 0} \
            - {line for start, line in pairs if start > 0}
        for _start, line in pairs:
            if line in resume_only:
                continue
            if line <= len(source_lines) \
                    and _PRAGMA in source_lines[line - 1]:
                continue
            out.add(line)
    for const in code.co_consts:
        if hasattr(const, "co_lines"):
            _code_lines(const, source_lines, out)


def collect_executable_lines(path: Path) -> set[int]:
    """Function-body line numbers of ``path`` (pragma-filtered)."""
    text = path.read_text(encoding="utf-8")
    code = compile(text, str(path), "exec")
    lines: set[int] = set()
    _code_lines(code, text.splitlines(), lines)
    return lines


class CoverageTracer:
    """Selective line tracer over a fixed set of absolute file paths."""

    def __init__(self, target_files: set[str]):
        self.target_files = target_files
        self.hits: dict[str, set[int]] = {f: set() for f in target_files}

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def _global(self, frame, event, arg):
        if event == "call" and frame.f_code.co_filename in self.target_files:
            return self._local
        return None

    def __enter__(self) -> "CoverageTracer":
        # save + restore whatever tracer was active, so a nested use
        # (e.g. the gate's own unit tests running *under* the gate)
        # shadows the outer tracer only for the inner block instead of
        # silently killing it for the rest of the process
        self._prev_sys = sys.gettrace()
        self._prev_threading = threading.gettrace()
        threading.settrace(self._global)
        sys.settrace(self._global)
        return self

    def __exit__(self, *exc) -> None:
        sys.settrace(self._prev_sys)
        threading.settrace(self._prev_threading)


def coverage_percent(executable: dict[str, set[int]],
                     hits: dict[str, set[int]]) -> float:
    total = sum(len(lines) for lines in executable.values())
    if total == 0:
        return 100.0
    covered = sum(len(executable[f] & hits.get(f, set()))
                  for f in executable)
    return 100.0 * covered / total


def run_gate(target: Path, fail_under: float, pytest_args: list[str],
             list_misses: bool = False) -> int:
    """Measure, report, and gate. Returns a process exit code."""
    files = sorted(target.rglob("*.py"))
    if not files:
        print(f"covgate: no python files under {target}", file=sys.stderr)
        return 2
    executable = {str(f.resolve()): collect_executable_lines(f)
                  for f in files}

    import pytest

    tracer = CoverageTracer(set(executable))
    with tracer:
        test_status = pytest.main(pytest_args)

    print(f"\ncoverage of {target} (gate: {fail_under:.0f}%)")
    print(f"{'file':<52} {'lines':>6} {'hit':>6} {'cover':>7}")
    for fname in sorted(executable):
        lines = executable[fname]
        hit = lines & tracer.hits.get(fname, set())
        pct = 100.0 * len(hit) / len(lines) if lines else 100.0
        short = str(Path(fname)).removeprefix(str(Path.cwd()) + "/")
        print(f"{short:<52} {len(lines):>6} {len(hit):>6} {pct:>6.1f}%")
        if list_misses and len(hit) < len(lines):
            missed = sorted(lines - hit)
            print(f"    missed: {', '.join(map(str, missed))}")
    pct = coverage_percent(executable, tracer.hits)
    print(f"{'TOTAL':<52} "
          f"{sum(len(v) for v in executable.values()):>6} "
          f"{sum(len(executable[f] & tracer.hits.get(f, set())) for f in executable):>6} "
          f"{pct:>6.1f}%")
    if int(test_status) != 0:
        print(f"covgate: pytest failed (exit {int(test_status)})",
              file=sys.stderr)
        return int(test_status)
    if pct < fail_under:
        print(f"covgate: FAIL — {pct:.1f}% < {fail_under:.1f}%",
              file=sys.stderr)
        return 1
    print(f"covgate: OK — {pct:.1f}% >= {fail_under:.1f}%")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    pytest_args = ["-x", "-q"]
    if "--" in argv:
        split = argv.index("--")
        argv, tail = argv[:split], argv[split + 1:]
        if tail:
            pytest_args = tail
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.covgate",
        description="line-coverage gate over a package subtree",
    )
    parser.add_argument("--target", default="src/repro/pipeline",
                        help="directory to measure (default: "
                             "src/repro/pipeline)")
    parser.add_argument("--fail-under", type=float, default=85.0,
                        help="minimum total coverage percent (default: 85)")
    parser.add_argument("--list-misses", action="store_true",
                        help="print the missed line numbers per file")
    args = parser.parse_args(argv)
    return run_gate(Path(args.target), args.fail_under, pytest_args,
                    list_misses=args.list_misses)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
