"""Symmetry-aware strength reduction (paper §V-D, Fig. 6).

Both optimizations are implemented on the real matrices of the DFPT
worker (basis values chi and gradients grad-chi on grid batches, the
symmetric response density matrix P(1)) and verified equal to the
naive forms in the tests; FLOPs are counted exactly so the Fig. 9
speedup decomposition is measurable, not asserted.

Fig. 6(a) — first-order Hamiltonian integration:
    chi^T chi + chi^T dchi + dchi^T chi
      = M + M^T   with  M = chi^T (chi/2 + dchi)
    3 GEMMs -> 1 GEMM (the matrix add is O(n^2), negligible).

Fig. 6(b) — response density gradient, using P(1) symmetric:
    grad rho1 = chi P(1) dchi + dchi P(1) chi = 2 * rowsum(chi P(1) ∘ dchi)
    2 GEMMs + 2 GEMVs -> 1 GEMM + 1 GEMV.
"""

from __future__ import annotations

import numpy as np

from repro.utils.flops import FlopCounter, gemm_flops, gemv_flops


def h1_integration_naive(
    chi: np.ndarray, dchi: np.ndarray, flops: FlopCounter | None = None
) -> np.ndarray:
    """Three-GEMM evaluation of chi^T chi + chi^T dchi + dchi^T chi.

    ``chi``/``dchi`` are (npoints, nbf) grid batches (dchi is one
    cartesian component of the gradient, pre-multiplied by quadrature
    weights upstream).
    """
    npts, nbf = chi.shape
    out = chi.T @ chi
    out += chi.T @ dchi
    out += dchi.T @ chi
    if flops is not None:
        flops.add("h1", 3 * gemm_flops(nbf, nbf, npts))
    return out


def h1_integration_symmetric(
    chi: np.ndarray, dchi: np.ndarray, flops: FlopCounter | None = None
) -> np.ndarray:
    """One-GEMM evaluation via the symmetric split (Fig. 6a)."""
    npts, nbf = chi.shape
    m = chi.T @ (0.5 * chi + dchi)
    if flops is not None:
        flops.add("h1", gemm_flops(nbf, nbf, npts))
    return m + m.T


def rho1_gradient_naive(
    chi: np.ndarray,
    dchi: np.ndarray,
    p1: np.ndarray,
    flops: FlopCounter | None = None,
) -> np.ndarray:
    """Two-GEMM + two-GEMV evaluation of grad rho1 on the grid batch.

    grad rho1(r_p) = sum_mn chi_m(r_p) P1_mn dchi_n(r_p)
                   + sum_mn dchi_m(r_p) P1_mn chi_n(r_p).
    """
    npts, nbf = chi.shape
    t1 = chi @ p1           # GEMM
    t2 = dchi @ p1          # GEMM
    out = np.einsum("pm,pm->p", t1, dchi)   # row-wise GEMV equivalents
    out += np.einsum("pm,pm->p", t2, chi)
    if flops is not None:
        flops.add("rho1_grad", 2 * gemm_flops(npts, nbf, nbf))
        flops.add("rho1_grad", 2 * npts * gemv_flops(1, nbf))
    return out


def rho1_gradient_symmetric(
    chi: np.ndarray,
    dchi: np.ndarray,
    p1: np.ndarray,
    flops: FlopCounter | None = None,
) -> np.ndarray:
    """One-GEMM + one-GEMV evaluation exploiting P(1) = P(1)^T (Fig. 6b)."""
    if not np.allclose(p1, p1.T, atol=1e-10):
        raise ValueError("rho1_gradient_symmetric requires a symmetric P(1)")
    npts, nbf = chi.shape
    t1 = chi @ p1
    out = 2.0 * np.einsum("pm,pm->p", t1, dchi)
    if flops is not None:
        flops.add("rho1_grad", gemm_flops(npts, nbf, nbf))
        flops.add("rho1_grad", npts * gemv_flops(1, nbf))
    return out
