"""The instrumented four-phase DFPT worker cycle (paper Fig. 3, Table I).

Runs one full response cycle for a fragment on real data, split into
the paper's phases with exact FLOP counts and wall times:

1. ``p1``      — response density matrix P(1) from the current U,
2. ``n1r``     — real-space response density n(1)(r) on the molecular
                 grid + its gradient via the strength-reduced kernels,
3. ``poisson`` — FFT solve for the electrostatic response potential
                 v(1) on a uniform box grid,
4. ``h1``      — response Hamiltonian: quadrature integration of the
                 potential back into the basis + the exchange/kernel
                 term.

Table I reports the FP64 rates of phases 2 and 4 ("extremely
time-consuming ... contributing 93.1% of total execution time"); the
benchmark divides these counted FLOPs by modeled accelerator kernel
times (:mod:`repro.hpc.offload`) and by measured wall times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dfpt.cphf import CPHF
from repro.geometry.atoms import Geometry
from repro.scf.grid import evaluate_basis
from repro.scf.poisson import grid_for_geometry, solve_poisson
from repro.scf.rks import RKS
from repro.kernels.strength_reduction import (
    h1_integration_symmetric,
    rho1_gradient_symmetric,
)
from repro.utils.flops import FlopCounter, gemm_flops
from repro.utils.timing import Timer


@dataclass
class DFPTCycleResult:
    """Per-phase FLOPs and wall seconds for one response cycle."""

    natoms: int
    nbf: int
    flops: dict[str, int]
    seconds: dict[str, float]
    alpha: np.ndarray | None = None
    extras: dict = field(default_factory=dict)

    def rate_gflops(self, phase: str) -> float:
        """Measured host rate for a phase (GFLOP/s)."""
        t = self.seconds.get(phase, 0.0)
        return self.flops.get(phase, 0) / t / 1e9 if t > 0 else 0.0


def run_dfpt_cycle(
    geometry: Geometry,
    uniform_n: int = 48,
    radial_points: int = 30,
    full_cphf: bool = False,
) -> DFPTCycleResult:
    """One instrumented DFPT cycle for a fragment.

    With ``full_cphf`` the response is iterated to convergence (and the
    polarizability returned); otherwise a single first-order cycle is
    executed — the unit the paper's "DFPT time per cycle" measures.
    """
    timer = Timer()
    flops = FlopCounter()
    scf = RKS(geometry, radial_points=radial_points).run()
    if not scf.converged:
        raise RuntimeError("SCF not converged for kernel cycle")
    xc = scf.extras["xc"]
    chi = xc["chi"]
    grid = xc["grid"]
    nbf = scf.overlap.shape[0]
    npts = chi.shape[0]
    c_o = scf.c_occ
    c_v = scf.c_virt
    nocc, nvirt = c_o.shape[1], c_v.shape[1]

    dip = scf.engine.dipole()
    denom = scf.mo_energy[nocc:, None] - scf.mo_energy[None, :nocc]

    # ---- phase 1: response density matrix P(1) -----------------------------
    with timer.section("p1"):
        q = np.einsum("av,ab,bo->vo", c_v, dip[2], c_o)
        u = -q / denom                     # first-order U
        xmat = c_v @ u @ c_o.T
        p1 = 2.0 * (xmat + xmat.T)
        flops.add("p1", gemm_flops(nvirt, nocc, nbf) + gemm_flops(nbf, nbf, nvirt)
                  + gemm_flops(nbf, nocc, nbf))

    # ---- phase 2: n(1)(r) and its gradient on the molecular grid -----------
    with timer.section("n1r"):
        t1 = chi @ p1
        n1 = np.einsum("pm,pm->p", t1, chi)
        flops.add("n1r", gemm_flops(npts, nbf, nbf) + 2 * npts * nbf)
        # gradient via the strength-reduced kernel (one component shown;
        # production sums x, y, z)
        _, dchi = evaluate_basis(scf.basis, grid.points, derivative=True)
        for d in range(3):
            rho1_gradient_symmetric(chi, dchi[d], p1, flops=_alias(flops, "n1r"))

    # ---- phase 3: Poisson solve on the uniform box -------------------------
    with timer.section("poisson"):
        ugrid = grid_for_geometry(geometry.coords, n=uniform_n)
        chi_u = evaluate_basis(scf.basis, ugrid.points())
        n1_u = np.einsum("pm,pm->p", chi_u @ p1, chi_u).reshape(ugrid.shape)
        flops.add("poisson", gemm_flops(uniform_n ** 3, nbf, nbf))
        v1_u = solve_poisson(n1_u, ugrid.h)
        npad = (2 * uniform_n) ** 3
        flops.add("poisson", int(2 * 5 * npad * np.log2(npad)))  # fwd+inv FFT

    # ---- phase 4: response Hamiltonian H(1) ---------------------------------
    with timer.section("h1"):
        # XC kernel term on the molecular grid
        wf = grid.weights * xc["fxc"] * n1
        h1_xc = (chi * wf[:, None]).T @ chi
        flops.add("h1", gemm_flops(nbf, nbf, npts))
        # electrostatic term: trilinear-interpolate v(1) from the box
        # onto the Becke points, then quadrature against basis pairs
        # via the symmetric one-GEMM kernel (Fig. 6a structure)
        from scipy.interpolate import RegularGridInterpolator

        interp = RegularGridInterpolator(
            ugrid.axes(), v1_u, bounds_error=False, fill_value=0.0
        )
        v1_pts = interp(grid.points)
        h1_es = h1_integration_symmetric(
            chi * (grid.weights * v1_pts)[:, None], chi, flops=_alias(flops, "h1")
        )
        h1 = h1_xc + h1_es

    alpha = None
    if full_cphf:
        with timer.section("full_cphf"):
            alpha = CPHF(scf, timer=timer, flops=flops).run().alpha

    return DFPTCycleResult(
        natoms=geometry.natoms,
        nbf=nbf,
        flops=dict(flops.totals),
        seconds={k: timer.total(k) for k in timer.totals},
        alpha=alpha,
        extras={"h1_norm": float(np.linalg.norm(h1)), "p1_norm": float(np.linalg.norm(p1))},
    )


class _alias:
    """Redirect a FlopCounter's adds into a fixed category."""

    def __init__(self, counter: FlopCounter, category: str):
        self._c = counter
        self._cat = category

    def add(self, _category: str, flops: int) -> None:
        self._c.add(self._cat, flops)
