"""Per-fragment compute kernels and their optimizations (paper §V-C/D).

* :mod:`repro.kernels.strength_reduction` — the two symmetry
  optimizations of Fig. 6, implemented on real grid/basis data with
  exact FLOP accounting (3 GEMM → 1 GEMM for H(1); 2 GEMM + 2 GEMV →
  1 + 1 for the response-density gradient).
* :mod:`repro.kernels.batched` — elastic GEMM batching: stride-32
  padding, grouping by padded shape, stacked matmul execution.
* :mod:`repro.kernels.worker` — the instrumented four-phase DFPT cycle
  (P(1) → n(1)(r) → Poisson → H(1)) whose FLOP counts drive the
  Table I reproduction.
"""

from repro.kernels.strength_reduction import (
    h1_integration_naive,
    h1_integration_symmetric,
    rho1_gradient_naive,
    rho1_gradient_symmetric,
)
from repro.kernels.batched import BatchedGemmExecutor, kernel_seam, pad_to_stride
from repro.kernels.worker import DFPTCycleResult, run_dfpt_cycle

__all__ = [
    "h1_integration_naive",
    "h1_integration_symmetric",
    "rho1_gradient_naive",
    "rho1_gradient_symmetric",
    "BatchedGemmExecutor",
    "kernel_seam",
    "pad_to_stride",
    "DFPTCycleResult",
    "run_dfpt_cycle",
]
