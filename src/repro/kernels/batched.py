"""Elastic GEMM batching (paper §V-C, §VII-A.3).

The paper gathers scattered small GEMMs, pads each matrix to a
multiple of 32 in both dimensions, groups calls with equal padded
shapes, and launches one batched GEMM per group (with at least 64
calls packed per offloaded workload). This module reproduces the exact
mechanism: the executor records deferred GEMM requests, then flushes
groups as stacked `numpy.matmul` calls — one vectorized call per shape
class instead of one call per GEMM, which is the same
"pack-for-throughput" transformation the accelerators need.

FLOPs are counted both as *useful* (original shapes) and *padded*
(what the accelerator actually executes); the ratio is the padding
overhead the stride choice trades against batch uniformity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.counters import counters
from repro.utils.flops import FlopCounter, gemm_flops


def pad_to_stride(n: int, stride: int = 32) -> int:
    """Round a matrix dimension up to the batching stride."""
    if n <= 0:
        raise ValueError("dimension must be positive")
    return ((n + stride - 1) // stride) * stride


@dataclass
class _Request:
    a: np.ndarray
    b: np.ndarray
    slot: int


@dataclass
class BatchedGemmExecutor:
    """Deferred, shape-grouped GEMM execution.

    Usage: ``submit`` any number of (A, B) products, then ``flush()``
    returns the results in submission order. ``min_batch`` mirrors the
    paper's ≥64 packing threshold: groups smaller than it are executed
    individually (offloading them would not be profitable).
    """

    stride: int = 32
    min_batch: int = 64
    flops: FlopCounter = field(default_factory=FlopCounter)
    _requests: list[_Request] = field(default_factory=list)
    batches_executed: int = 0
    singles_executed: int = 0

    def submit(self, a: np.ndarray, b: np.ndarray) -> int:
        """Queue A @ B; returns the slot index of the future result."""
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"bad GEMM shapes {a.shape} x {b.shape}")
        slot = len(self._requests)
        self._requests.append(_Request(np.asarray(a), np.asarray(b), slot))
        self.flops.add("useful", gemm_flops(a.shape[0], b.shape[1], a.shape[1]))
        return slot

    def pending(self) -> int:
        return len(self._requests)

    def flush(self) -> list[np.ndarray]:
        """Execute everything; results indexed by submission slot."""
        results: list[np.ndarray | None] = [None] * len(self._requests)
        groups: dict[tuple[int, int, int], list[_Request]] = {}
        for req in self._requests:
            m, k = req.a.shape
            n = req.b.shape[1]
            key = (
                pad_to_stride(m, self.stride),
                pad_to_stride(k, self.stride),
                pad_to_stride(n, self.stride),
            )
            groups.setdefault(key, []).append(req)
        for (pm, pk, pn), reqs in groups.items():
            if len(reqs) < self.min_batch:
                for req in reqs:
                    results[req.slot] = req.a @ req.b
                    self.singles_executed += 1
                continue
            nb = len(reqs)
            astack = np.zeros((nb, pm, pk))
            bstack = np.zeros((nb, pk, pn))
            for i, req in enumerate(reqs):
                m, k = req.a.shape
                n = req.b.shape[1]
                astack[i, :m, :k] = req.a
                bstack[i, :k, :n] = req.b
            cstack = astack @ bstack  # one batched GEMM
            self.batches_executed += 1
            self.flops.add("padded", nb * gemm_flops(pm, pn, pk))
            for i, req in enumerate(reqs):
                m = req.a.shape[0]
                n = req.b.shape[1]
                results[req.slot] = cstack[i, :m, :n]
        self._requests.clear()
        return results  # type: ignore[return-value]

    def record_contraction(self, batch: int, m: int, n: int, k: int,
                           label: str = "class") -> None:
        """Account one already-executed class contraction as a batched GEMM.

        The integral engine evaluates each angular-momentum class with a
        single vectorized einsum — one batched GEMM per class in the
        paper's elastic-offload picture. Padding the executed arrays to
        the stride would change the BLAS reduction tree and break the
        scalar/batched bit-identity promise, so the contraction runs
        unpadded and this method records both sides of the ledger:
        useful FLOPs at the true shapes, padded FLOPs at the
        stride-rounded shapes an accelerator batch would launch.
        Mirrored into the run-wide :mod:`repro.obs` counter registry
        (``kernels.*``; see docs/performance.md).
        """
        if batch <= 0:
            return
        useful = batch * gemm_flops(m, n, k)
        padded = batch * gemm_flops(
            pad_to_stride(m, self.stride),
            pad_to_stride(n, self.stride),
            pad_to_stride(k, self.stride),
        )
        self.flops.add("useful", useful)
        self.flops.add("padded", padded)
        self.batches_executed += 1
        reg = counters()
        reg.inc("kernels.class_gemms")
        reg.inc("kernels.gemms_batched", batch)
        reg.inc("kernels.useful_flops", useful)
        reg.inc("kernels.padded_flops", padded)

    def padding_overhead(self) -> float:
        """padded/useful FLOP ratio of the batched groups (1.0 = none)."""
        useful = self.flops.total("useful")
        padded = self.flops.total("padded")
        if padded == 0:
            return 1.0
        return padded / max(useful, 1)


_KERNEL_SEAM: BatchedGemmExecutor | None = None


def kernel_seam() -> BatchedGemmExecutor:
    """Process-global executor seam the integral engine accounts through.

    One registry per process (worker counters travel back to the parent
    through the telemetry shipment like every other counter), so the
    padding-overhead ratio in :meth:`BatchedGemmExecutor.padding_overhead`
    aggregates over a whole run.
    """
    global _KERNEL_SEAM
    if _KERNEL_SEAM is None:
        _KERNEL_SEAM = BatchedGemmExecutor()
    return _KERNEL_SEAM
