"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the example workflows so the main results are
reproducible without writing a script:

    python -m repro water-raman --n 4
    python -m repro peptide-raman --sequence GLY ALA
    python -m repro simulate --machine ORISE --nodes 750 1500 3000
    python -m repro counts
    python -m repro devtools lint src/

``--sanitize`` on the pipeline commands turns on the runtime numerical
sanitizer (equivalent to ``QF_SANITIZE=1``; see
:mod:`repro.devtools.contracts` and docs/static_analysis.md).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _apply_sanitize(args) -> None:
    """Honor --sanitize by exporting QF_SANITIZE for this process *and*
    any executor pool workers (which inherit the environment)."""
    if getattr(args, "sanitize", False):
        os.environ["QF_SANITIZE"] = "1"
    # kernel/transport selection must also be exported before any pool
    # exists so forked workers inherit the same mode (docs/performance.md)
    if getattr(args, "kernels", None):
        os.environ["QF_KERNELS"] = args.kernels
    if getattr(args, "shm", None):
        os.environ["QF_SHM"] = "1" if args.shm == "on" else "0"


def _apply_resilience(args):
    """Resolve the fault-tolerance flags into pipeline kwargs.

    Must run before any pool is created: --inject-faults exports
    QF_FAULTS so forked workers inherit the plan (the spec is
    validated here, so a typo fails fast instead of silently injecting
    nothing). Returns {} when no resilience flag was given — the
    pipeline then runs the plain executors.
    """
    if getattr(args, "inject_faults", None):
        from repro.pipeline.faults import FaultPlan

        FaultPlan.parse(args.inject_faults)
        os.environ["QF_FAULTS"] = args.inject_faults
    wants = any(
        getattr(args, name, None) is not None
        for name in ("retries", "timeout_s", "failure_policy", "run_store")
    )
    if not wants:
        return {}
    from repro.pipeline.resilience import ResiliencePolicy

    policy = ResiliencePolicy(
        max_attempts=(args.retries if args.retries is not None else 2) + 1,
        timeout_s=args.timeout_s,
        failure_policy=args.failure_policy or "fail_fast",
    )
    return {"resilience": policy, "run_store": args.run_store}


def _canonical_kwargs(args) -> dict:
    """Resolve --canonical-cache/--canonical into pipeline kwargs."""
    kwargs = {}
    if getattr(args, "canonical_cache", None):
        kwargs["canonical_cache"] = args.canonical_cache
    if getattr(args, "canonical", None):
        kwargs["canonical_mode"] = args.canonical
    return kwargs


def _report_canonical(result) -> None:
    stats = result.canonical
    if stats is None:
        return
    print(f"canonical cache ({stats['mode']}): {stats['hits']} hits, "
          f"{stats['misses']} misses, {stats['rotations']} rotations, "
          f"{stats['writes']} writes "
          f"(hit rate {100 * stats['hit_rate']:.0f}%)")


def _report_resilience(result) -> None:
    res = result.throughput.resilience if result.throughput else None
    if res is None:
        return
    print(f"resilience: {res['store_hits']} from store, "
          f"{res['retries']} retries, {res['reissues']} reissues, "
          f"{res['timeouts']} timeouts, {res['pool_restarts']} pool restarts")
    if result.skipped_fragments:
        print(f"PARTIAL SPECTRUM — skipped fragments: "
              f"{', '.join(result.skipped_fragments)}")


def _setup_obs(args):
    """Install a live tracer when any telemetry output was requested.

    Must run *before* the pipeline (and any worker pool) is built so
    ``QF_TRACE`` is inherited by forked workers. Returns the tracer or
    None when no --trace/--metrics/--manifest flag was given.
    """
    wants = any(
        getattr(args, name, None) for name in ("trace", "metrics", "manifest")
    )
    if not wants:
        return None
    from repro.obs import enable_tracing, reset_counters

    reset_counters()
    return enable_tracing()


def _finish_obs(args, tracer, result, command: str, config: dict) -> None:
    """Write the requested telemetry files after a pipeline run."""
    if tracer is None:
        return
    from repro.obs import (
        collect_manifest,
        counters,
        disable_tracing,
        write_metrics,
        write_trace,
    )

    if args.trace:
        path = write_trace(tracer.records, args.trace, counters=counters())
        print(f"trace written to {path}")
    if args.metrics:
        path = write_metrics(args.metrics, counters=counters(),
                             records=tracer.records, timer=result.timer)
        print(f"metrics written to {path}")
    if args.manifest:
        extras = {}
        if result.skipped_fragments:
            # a partial spectrum must be unmistakable in the provenance
            # record, not just buried in the throughput sub-dict
            extras["partial_spectrum"] = True
            extras["skipped_fragments"] = list(result.skipped_fragments)
        if result.canonical is not None:
            extras["canonical_cache"] = dict(result.canonical)
        manifest = collect_manifest(
            command=command, config=config,
            seeds={"seed": getattr(args, "seed", None)},
            timer=result.timer, throughput=result.throughput,
            extras=extras,
        )
        manifest.write(args.manifest)
        print(f"manifest written to {args.manifest}")
    disable_tracing()


def _cmd_water_raman(args) -> int:
    from repro.analysis import WATER_BANDS, band_assignment
    from repro.analysis.reference import RHF_STO3G_FREQUENCY_SCALE
    from repro.geometry import water_box
    from repro.pipeline import QFRamanPipeline

    _apply_sanitize(args)
    resilience_kwargs = _apply_resilience(args)
    tracer = _setup_obs(args)
    pipe = QFRamanPipeline(
        waters=water_box(args.n, seed=args.seed), relax_waters=True,
        verbose=args.verbose,
        executor=args.executor, max_workers=args.workers,
        **resilience_kwargs, **_canonical_kwargs(args),
    )
    omega = np.linspace(200, 5200, 1000)
    result = pipe.run(omega_cm1=omega, sigma_cm1=args.sigma,
                      solver=args.solver)
    _finish_obs(args, tracer, result, command="water-raman", config={
        "n": args.n, "sigma": args.sigma, "solver": args.solver,
        "executor": args.executor, "workers": args.workers,
    })
    sp = result.spectrum.normalized()
    print(f"pieces: {result.decomposition.counts} "
          f"(unique: {result.unique_pieces})")
    if result.throughput is not None:
        print(result.throughput.summary())
    _report_resilience(result)
    _report_canonical(result)
    for name, info in band_assignment(
        sp.omega_cm1, sp.intensity, WATER_BANDS,
        frequency_scale=RHF_STO3G_FREQUENCY_SCALE,
    ).items():
        found = info["found_cm1"]
        print(f"  {name:<12} expect {info['expected_cm1']:6.0f}  "
              + (f"found {found:6.0f}" if found else "not found"))
    if args.out:
        np.savetxt(args.out, np.column_stack([sp.omega_cm1, sp.intensity]),
                   header="omega_cm1 intensity")
        print(f"spectrum written to {args.out}")
    return 0


def _cmd_peptide_raman(args) -> int:
    from repro.analysis import PROTEIN_BANDS, band_assignment
    from repro.analysis.reference import RHF_STO3G_FREQUENCY_SCALE
    from repro.geometry import build_polypeptide
    from repro.pipeline import QFRamanPipeline
    from repro.scf.optimize import optimize_geometry

    _apply_sanitize(args)
    resilience_kwargs = _apply_resilience(args)
    tracer = _setup_obs(args)
    geom, residues = build_polypeptide(args.sequence)
    opt = optimize_geometry(geom, eri_mode="df")
    pipe = QFRamanPipeline(protein=opt.geometry, residues=residues,
                           verbose=args.verbose,
                           executor=args.executor, max_workers=args.workers,
                           **resilience_kwargs, **_canonical_kwargs(args))
    omega = np.linspace(200, 5200, 1200)
    result = pipe.run(omega_cm1=omega, sigma_cm1=args.sigma,
                      solver=args.solver)
    _finish_obs(args, tracer, result, command="peptide-raman", config={
        "sequence": list(args.sequence), "sigma": args.sigma,
        "solver": args.solver, "executor": args.executor,
        "workers": args.workers,
    })
    sp = result.spectrum.normalized()
    if result.throughput is not None:
        print(result.throughput.summary())
    _report_resilience(result)
    _report_canonical(result)
    for name, info in band_assignment(
        sp.omega_cm1, sp.intensity, PROTEIN_BANDS,
        frequency_scale=RHF_STO3G_FREQUENCY_SCALE,
    ).items():
        found = info["found_cm1"]
        print(f"  {name:<20} expect {info['expected_cm1']:6.0f}  "
              + (f"found {found:6.0f}" if found else "not found"))
    if args.out:
        np.savetxt(args.out, np.column_stack([sp.omega_cm1, sp.intensity]),
                   header="omega_cm1 intensity")
    return 0


def _cmd_simulate(args) -> int:
    from repro.fragment.bookkeeping import synthetic_fragment_size_distribution
    from repro.hpc import ORISE, SUNWAY, simulate_qf_run
    from repro.hpc.costmodel import calibrate_to_throughput

    machine = {"ORISE": ORISE, "SUNWAY": SUNWAY}[args.machine.upper()]
    rng = np.random.default_rng(3)
    frag = np.clip(synthetic_fragment_size_distribution(3180, seed=1), 9, 35)
    caps = np.clip((frag * 0.55).astype(int), 9, 28)
    gcs = rng.integers(12, 30, size=11394)
    sizes = np.concatenate([frag, caps, gcs])
    cm = calibrate_to_throughput(sizes, 93.2, args.nodes[0],
                                 machine.workers_per_leader)
    recorder = None
    if args.trace:
        from repro.hpc.tracing import TraceRecorder

        recorder = TraceRecorder()
    base = None
    for n in args.nodes:
        # only the first node count is traced — one Gantt per file
        trace = recorder if n == args.nodes[0] else None
        rep = simulate_qf_run(machine, n, sizes, cm, seed=0, job_noise=0.02,
                              trace=trace)
        lo, hi = rep.time_variation()
        eff = ""
        if base is None:
            base = rep
        else:
            eff = (f"  eff {100 * base.makespan * args.nodes[0] / (rep.makespan * n):5.1f}%")
        print(f"{machine.name} {n:>6} nodes: {rep.throughput:9.1f} frag/s"
              f"  var ({lo:+.1f}, {hi:+.1f})%{eff}")
    if recorder is not None:
        from repro.obs.export import write_trace

        path = write_trace(recorder.to_spans(), args.trace)
        print(f"trace written to {path} ({len(recorder.intervals)} "
              f"task intervals, {args.nodes[0]} nodes)")
    return 0


def _cmd_obs_view(args) -> int:
    from repro.obs.view import render

    print(render(args.file, width=args.width))
    return 0


def _cmd_counts(args) -> int:
    from repro.fragment.bookkeeping import (
        spike_paper_reference,
        system_statistics,
    )
    from repro.geometry import spike_like_protein

    protein, residues = spike_like_protein(args.residues, seed=0)
    n_chains = 3 if args.residues == 3180 else 1
    stats = system_statistics(
        protein, residues, n_waters=(101_299_008 - 49_008) // 3,
        n_chains=n_chains,
    )
    ref = spike_paper_reference()
    for key, val in stats.as_dict().items():
        print(f"  {key:<22} {val:>15,.0f}   (paper: {ref.get(key, '—')})")
    return 0


def _cmd_devtools_lint(args) -> int:
    from repro.devtools.lint import main as lint_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv += ["--list-rules"]
    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="QF-RAMAN reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_executor_args(p):
        p.add_argument(
            "--executor", choices=("serial", "process", "displacement"),
            default="serial",
            help="fragment execution backend (see repro.pipeline.executor)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="worker processes for parallel backends (default: cpu count)",
        )
        p.add_argument(
            "--sanitize", action="store_true",
            help="enable the runtime numerical sanitizer "
                 "(= QF_SANITIZE=1; see docs/static_analysis.md)",
        )
        p.add_argument(
            "--kernels", choices=("scalar", "batched"), default=None,
            help="integral kernel dispatch (= QF_KERNELS; default "
                 "batched — bit-identical modes, see docs/performance.md)",
        )
        p.add_argument(
            "--shm", choices=("on", "off"), default=None,
            help="shared-memory task transport for the process backend "
                 "(= QF_SHM; default on, see docs/performance.md)",
        )
        p.add_argument(
            "--trace", default=None, metavar="FILE",
            help="write a span trace (.json = Chrome/Perfetto trace, "
                 ".jsonl = event log; see docs/observability.md)",
        )
        p.add_argument(
            "--metrics", default=None, metavar="FILE",
            help="write Prometheus-style text metrics after the run",
        )
        p.add_argument(
            "--manifest", default=None, metavar="FILE",
            help="write a JSON run manifest (config, versions, git SHA, "
                 "counters, per-phase walls)",
        )
        # fault tolerance (docs/resilience.md) — any of these flags
        # switches the run into the resilient executor
        p.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="retry each failed fragment up to N times with "
                 "exponential backoff (enables fault-tolerant execution)",
        )
        p.add_argument(
            "--timeout-s", type=float, default=None, metavar="S",
            help="per-attempt wall-clock limit; the process backend "
                 "speculatively reissues stragglers past it",
        )
        p.add_argument(
            "--failure-policy", choices=("fail_fast", "skip_and_report"),
            default=None,
            help="what to do when a fragment exhausts its retries: abort "
                 "the run, or skip it and assemble a flagged partial "
                 "spectrum",
        )
        p.add_argument(
            "--run-store", default=None, metavar="DIR",
            help="checkpoint finished fragments to DIR; rerunning with "
                 "the same DIR resumes an interrupted run bit-identically",
        )
        p.add_argument(
            "--inject-faults", default=None, metavar="SPEC",
            help="deterministic fault injection (= QF_FAULTS), e.g. "
                 "'crash:water[0]@1;hang:ww[0,1]@1:0.5' — see "
                 "docs/resilience.md for the grammar",
        )
        # rigid-motion canonical cache (docs/caching.md) — a persistent
        # global store shared across runs and systems
        p.add_argument(
            "--canonical-cache", default=None, metavar="DIR",
            help="persistent canonical fragment store: rigidly "
                 "transformed copies of any fragment ever stored in DIR "
                 "are rotated back instead of recomputed",
        )
        p.add_argument(
            "--canonical", choices=("off", "exact", "rigid"), default=None,
            help="canonical-cache mode (= QF_CANON; default rigid when "
                 "--canonical-cache is given): exact hits only bit-equal "
                 "geometries, rigid also hits rotated/translated/"
                 "permuted copies",
        )

    p = sub.add_parser("water-raman", help="Raman spectrum of a water box")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--seed", type=int, default=3)
    p.add_argument("--sigma", type=float, default=20.0)
    p.add_argument("--solver", choices=("dense", "lanczos"), default="lanczos")
    p.add_argument("--out", default=None)
    p.add_argument("--verbose", action="store_true")
    add_executor_args(p)
    p.set_defaults(fn=_cmd_water_raman)

    p = sub.add_parser("peptide-raman", help="gas-phase peptide Raman spectrum")
    p.add_argument("--sequence", nargs="+", default=["GLY"])
    p.add_argument("--sigma", type=float, default=5.0)
    p.add_argument("--solver", choices=("dense", "lanczos"), default="dense")
    p.add_argument("--out", default=None)
    p.add_argument("--verbose", action="store_true")
    add_executor_args(p)
    p.set_defaults(fn=_cmd_peptide_raman)

    p = sub.add_parser("simulate", help="scheduler simulation on a machine")
    p.add_argument("--machine", choices=("ORISE", "SUNWAY", "orise", "sunway"),
                   default="ORISE")
    p.add_argument("--nodes", type=int, nargs="+", default=[750, 1500, 3000])
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write the first node count's task intervals as a "
                        "Chrome/Perfetto trace")
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("obs", help="inspect exported run telemetry")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    pv = obs_sub.add_parser("view", help="per-phase summary + flamegraph "
                                         "of an exported trace")
    pv.add_argument("file", help="trace file (.json or .jsonl)")
    pv.add_argument("--width", type=int, default=40,
                    help="flamegraph bar width in characters")
    pv.set_defaults(fn=_cmd_obs_view)

    p = sub.add_parser("counts", help="full-scale decomposition statistics")
    p.add_argument("--residues", type=int, default=3180)
    p.set_defaults(fn=_cmd_counts)

    p = sub.add_parser(
        "devtools", help="developer tooling (QF linter, sanitizer docs)"
    )
    dev_sub = p.add_subparsers(dest="devtools_command", required=True)
    pl = dev_sub.add_parser("lint", help="run the QF physics-aware linter")
    pl.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories (default: src)")
    pl.add_argument("--select", default=None,
                    help="comma-separated rule codes/aliases to report")
    pl.add_argument("--list-rules", action="store_true")
    pl.set_defaults(fn=_cmd_devtools_lint)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
