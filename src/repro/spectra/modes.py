"""Normal-mode analysis (dense baseline).

Mass-weighting and full diagonalization of the Hessian — the
conventional route the paper replaces with the Lanczos/GAGQ solver for
very large systems. Kept as the exact reference for validation and for
per-fragment analyses where 3N is small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import HESSIAN_TO_CM1


def mass_weighted_hessian(hessian: np.ndarray, masses_amu: np.ndarray) -> np.ndarray:
    """H_mw[Ii,Jj] = H[Ii,Jj] / sqrt(M_I M_J), masses in amu.

    ``hessian`` is (3N, 3N) in hartree/bohr^2; the result's eigenvalues
    convert to wavenumbers via :func:`frequencies_from_eigenvalues`.
    """
    hessian = np.asarray(hessian, dtype=float)
    masses_amu = np.asarray(masses_amu, dtype=float).ravel()
    n3 = hessian.shape[0]
    if hessian.shape != (n3, n3) or n3 != 3 * masses_amu.size:
        raise ValueError("hessian/mass dimension mismatch")
    inv_sqrt = 1.0 / np.sqrt(np.repeat(masses_amu, 3))
    return hessian * inv_sqrt[:, None] * inv_sqrt[None, :]


def frequencies_from_eigenvalues(eigenvalues: np.ndarray) -> np.ndarray:
    """Convert mass-weighted Hessian eigenvalues to signed wavenumbers.

    Negative eigenvalues (imaginary modes / FD noise in the
    translational block) map to negative wavenumbers.
    """
    ev = np.asarray(eigenvalues, dtype=float)
    return np.sign(ev) * np.sqrt(np.abs(ev)) * HESSIAN_TO_CM1


@dataclass
class NormalModes:
    """Full normal-mode solution of one (fragment or assembled) Hessian."""

    frequencies_cm1: np.ndarray   # (3N,), signed wavenumbers, ascending
    eigenvectors: np.ndarray      # (3N, 3N) mass-weighted mode vectors (columns)
    eigenvalues: np.ndarray       # raw mass-weighted eigenvalues
    masses_amu: np.ndarray

    @property
    def nmodes(self) -> int:
        return self.frequencies_cm1.size

    def vibrational(self, threshold_cm1: float = 50.0) -> np.ndarray:
        """Indices of genuine vibrations (|freq| above threshold filters
        the six translational/rotational near-zeros)."""
        return np.where(self.frequencies_cm1 > threshold_cm1)[0]

    def cartesian_mode(self, p: int) -> np.ndarray:
        """Cartesian displacement pattern of mode p, shape (N, 3)."""
        inv_sqrt = 1.0 / np.sqrt(np.repeat(self.masses_amu, 3))
        vec = self.eigenvectors[:, p] * inv_sqrt
        return (vec / np.linalg.norm(vec)).reshape(-1, 3)


def normal_modes(hessian: np.ndarray, masses_amu: np.ndarray) -> NormalModes:
    """Dense normal-mode analysis (O((3N)^3) — the baseline solver)."""
    h_mw = mass_weighted_hessian(hessian, masses_amu)
    eigenvalues, eigenvectors = np.linalg.eigh(h_mw)
    return NormalModes(
        frequencies_cm1=frequencies_from_eigenvalues(eigenvalues),
        eigenvectors=eigenvectors,
        eigenvalues=eigenvalues,
        masses_amu=np.asarray(masses_amu, dtype=float),
    )


def eckart_projector(coords_bohr: np.ndarray, masses_amu: np.ndarray) -> np.ndarray:
    """Projector removing rigid translations/rotations (Eckart frame).

    Returns P (3N, 3N); P H_mw P leaves six ~zero modes exactly zero,
    so FD noise in the rigid-body block cannot leak into the spectrum.
    """
    coords = np.asarray(coords_bohr, dtype=float).reshape(-1, 3)
    masses = np.asarray(masses_amu, dtype=float).ravel()
    n = coords.shape[0]
    com = (masses[:, None] * coords).sum(axis=0) / masses.sum()
    x = coords - com
    sq = np.sqrt(np.repeat(masses, 3))
    vecs = []
    for d in range(3):  # translations
        v = np.zeros((n, 3))
        v[:, d] = 1.0
        vecs.append((v.ravel() * sq))
    axes = np.eye(3)
    for d in range(3):  # rotations: delta r = e_d x (r - com)
        v = np.cross(np.broadcast_to(axes[d], (n, 3)), x)
        vecs.append(v.ravel() * sq)
    basis = []
    for v in vecs:
        for b in basis:
            v = v - (b @ v) * b
        nv = np.linalg.norm(v)
        if nv > 1e-8:
            basis.append(v / nv)
    p = np.eye(3 * n)
    for b in basis:
        p -= np.outer(b, b)
    return p


def normal_modes_projected(
    hessian: np.ndarray, masses_amu: np.ndarray, coords_bohr: np.ndarray
) -> NormalModes:
    """Normal modes with rigid-body motion projected out first."""
    h_mw = mass_weighted_hessian(hessian, masses_amu)
    p = eckart_projector(coords_bohr, masses_amu)
    h_proj = p @ h_mw @ p
    eigenvalues, eigenvectors = np.linalg.eigh(0.5 * (h_proj + h_proj.T))
    return NormalModes(
        frequencies_cm1=frequencies_from_eigenvalues(eigenvalues),
        eigenvectors=eigenvectors,
        eigenvalues=eigenvalues,
        masses_amu=np.asarray(masses_amu, dtype=float),
    )
