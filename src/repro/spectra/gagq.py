"""Generalized averaged Gauss quadrature (GAGQ) for matrix functionals.

Implements paper §V-E / Eq. (5)-(8): a k-step Lanczos run with start
vector q1 = d/|d| gives the Gauss rule  d^T f(H) d ~ |d|^2 (f(T_k))_11.
Spalević's generalized averaged rule upgrades this to a (2k-1)-point
quadrature at negligible extra cost by augmenting T with its own
reversal:

    T_hat = [[ T_{k-1},        b_{k-1} e,   0          ],
             [ b_{k-1} e^T,    a_k,         b_k e_1^T  ],
             [ 0,              b_k e_1,     T_{k-1}^R  ]]

where T_{k-1}^R is T_{k-1} with rows/columns reversed and b_k is the
k-th Lanczos residual norm. (Reichel, Spalević & Tang, BIT 56 (2016) —
the paper's reference [36].)

The functional is then |d|^2 (f(T_hat))_{1,1}, evaluated by
diagonalizing the small tridiagonal matrix:  (f(T))_{11} =
sum_j f(theta_j) s_j^2  with s_j the first components of the
eigenvectors.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.linalg

from repro.devtools.contracts import array_contract, check_array, sanitize_enabled
from repro.spectra.lanczos import LanczosResult, lanczos


@array_contract(symmetric=True, finite=True, name="gagq.t_hat")
def gagq_matrix(result: LanczosResult) -> np.ndarray:
    """Build the (2k-1) x (2k-1) augmented tridiagonal T_hat."""
    k = result.k
    a = result.alpha
    b = result.beta
    if k == 1:
        return np.array([[a[0]]])
    diag = np.concatenate([a[: k - 1], [a[k - 1]], a[: k - 1][::-1]])
    off = np.concatenate([b[: k - 2], [b[k - 2]], [b[k - 1]], b[: k - 2][::-1]])
    t = np.diag(diag)
    t += np.diag(off, 1) + np.diag(off, -1)
    return t


def quadrature_nodes_weights(
    result: LanczosResult, averaged: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Quadrature nodes (Ritz values) and weights for d^T f(H) d.

    With ``averaged`` (default) uses the GAGQ matrix; otherwise plain
    Gauss (T_k). The functional is sum_j w_j f(theta_j).
    """
    t = gagq_matrix(result) if (averaged and not result.breakdown) else (
        result.tridiagonal()
    )
    theta, s = scipy.linalg.eigh(t)
    weights = s[0, :] ** 2 * result.d_norm ** 2
    if sanitize_enabled():
        ctx = f"gagq k={result.k} averaged={averaged}"
        check_array("theta", theta, context=ctx)
        check_array("weights", weights, context=ctx)
    return theta, weights


def gauss_quadrature_functional(
    h,
    d: np.ndarray,
    f: Callable[[np.ndarray], np.ndarray],
    k: int = 100,
    averaged: bool = True,
) -> float | np.ndarray:
    """Evaluate d^T f(H) d by Lanczos + (generalized averaged) Gauss.

    ``f`` is applied elementwise to the quadrature nodes and may return
    an array per node (e.g. a whole broadened spectrum over an omega
    grid): the result then has that trailing shape.
    """
    res = lanczos(h, d, k)
    theta, weights = quadrature_nodes_weights(res, averaged=averaged)
    fv = np.asarray(f(theta))
    if fv.ndim == 1:
        return float(weights @ fv)
    return np.tensordot(weights, fv, axes=(0, 0))
