"""IR spectra (extension beyond the paper's Raman focus).

The same displacement loop that yields dα/dR also yields the dipole
derivative dμ/dR essentially for free; the IR intensity of mode p is

    A_p ∝ | dμ/dQ_p |²  with  dμ/dQ_p = Σ_Ij (dμ/dξ_Ij) e_{Ij,p}

(mass-weighted coordinates exactly as in the paper's Eq. 2-3). IR and
Raman are complementary probes — codes the paper compares against
(FHI-aims, Quantum ESPRESSO) ship both, so a credible release does too.
"""

from __future__ import annotations

import numpy as np

from repro.spectra.modes import normal_modes
from repro.spectra.raman import RamanSpectrum, gaussian_lineshape


def ir_intensities(dmu_dq: np.ndarray) -> np.ndarray:
    """Per-mode IR intensity |dmu/dQ_p|^2 from (nmodes, 3) derivatives."""
    d = np.asarray(dmu_dq, dtype=float)
    if d.ndim != 2 or d.shape[1] != 3:
        raise ValueError("dmu_dq must be (nmodes, 3)")
    return np.sum(d * d, axis=1)


def ir_spectrum_dense(
    hessian: np.ndarray,
    dmu_dr: np.ndarray,
    masses_amu: np.ndarray,
    omega_cm1: np.ndarray,
    sigma_cm1: float = 10.0,
    freq_threshold_cm1: float = 50.0,
) -> RamanSpectrum:
    """Broadened IR spectrum via full diagonalization.

    ``dmu_dr`` has shape (3N, 3): cartesian dipole derivatives. Returns
    the same spectrum container used for Raman (position/intensity).
    """
    masses = np.asarray(masses_amu, dtype=float)
    modes = normal_modes(hessian, masses)
    inv_sqrt = 1.0 / np.sqrt(np.repeat(masses, 3))
    dmu_xi = np.asarray(dmu_dr, dtype=float) * inv_sqrt[:, None]
    dmu_dq = modes.eigenvectors.T @ dmu_xi       # (nmodes, 3)
    intens = ir_intensities(dmu_dq)
    vib = modes.vibrational(freq_threshold_cm1)
    omega = np.asarray(omega_cm1, dtype=float)
    out = np.zeros_like(omega)
    for p in vib:
        out += intens[p] * gaussian_lineshape(
            omega, modes.frequencies_cm1[p], sigma_cm1
        )
    return RamanSpectrum(
        omega_cm1=omega,
        intensity=out,
        frequencies_cm1=modes.frequencies_cm1[vib],
        activities=intens[vib],
    )
