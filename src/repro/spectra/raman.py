"""Raman activities and broadened spectra.

Two routes to I(omega):

* dense — diagonalize the mass-weighted Hessian, compute per-mode
  activities (paper Eq. 2-4), broaden with Gaussians. Exact; O((3N)^3).
* Lanczos/GAGQ — paper Eq. (5)-(8): write the intensity as a sum of
  matrix functionals d^T g_sigma(omega - H_eff) d and evaluate each
  with the quadrature solver; no eigenvectors ever formed. The paper's
  rotation-averaged activity mixes polarizability components, so the
  spectrum decomposes into one functional for the trace vector and one
  per unique tensor component.

Activity conventions: ``paper`` follows Eq. (4) literally,
``standard`` is the textbook 45 a'^2 + 7 gamma'^2 (Wilson-Decius-Cross,
the paper's reference [32]). Both are available everywhere; shapes of
spectra differ only mildly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import HESSIAN_TO_CM1
from repro.spectra.gagq import quadrature_nodes_weights
from repro.spectra.lanczos import lanczos
from repro.spectra.modes import NormalModes, mass_weighted_hessian, normal_modes

#: (i, j, multiplicity) for the 6 unique symmetric-tensor components
_UNIQUE_IJ = [(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0),
              (0, 1, 2.0), (0, 2, 2.0), (1, 2, 2.0)]


def gaussian_lineshape(omega: np.ndarray, center, sigma: float) -> np.ndarray:
    """Normalized Gaussian g_sigma(omega - center) (paper Eq. 8)."""
    omega = np.asarray(omega, dtype=float)
    return np.exp(-((omega - center) ** 2) / (2.0 * sigma ** 2)) / (
        np.sqrt(2.0 * np.pi) * sigma
    )


def raman_activities(
    dalpha_dq: np.ndarray, convention: str = "standard"
) -> np.ndarray:
    """Per-mode Raman activity from d(alpha)/dQ_p.

    ``dalpha_dq`` has shape (nmodes, 3, 3).
    """
    d = np.asarray(dalpha_dq, dtype=float)
    if d.ndim != 3 or d.shape[1:] != (3, 3):
        raise ValueError("dalpha_dq must be (nmodes, 3, 3)")
    trace = np.trace(d, axis1=1, axis2=2)
    if convention == "paper":
        # Eq. (4): 3/2 (sum_i da_ii)^2 + 21/2 sum_ij (da_ij)^2
        return 1.5 * trace ** 2 + 10.5 * np.sum(d ** 2, axis=(1, 2))
    if convention == "standard":
        a = trace / 3.0
        gamma2 = 0.5 * (
            (d[:, 0, 0] - d[:, 1, 1]) ** 2
            + (d[:, 1, 1] - d[:, 2, 2]) ** 2
            + (d[:, 2, 2] - d[:, 0, 0]) ** 2
            + 6.0 * (d[:, 0, 1] ** 2 + d[:, 0, 2] ** 2 + d[:, 1, 2] ** 2)
        )
        return 45.0 * a ** 2 + 7.0 * gamma2
    raise ValueError(f"unknown convention {convention!r}")


@dataclass
class RamanSpectrum:
    """A broadened Raman spectrum plus (when available) stick data."""

    omega_cm1: np.ndarray
    intensity: np.ndarray
    frequencies_cm1: np.ndarray | None = None   # stick positions (dense route)
    activities: np.ndarray | None = None        # stick heights

    def normalized(self) -> "RamanSpectrum":
        peak = float(self.intensity.max())
        scale = 1.0 / peak if peak > 0 else 1.0
        return RamanSpectrum(
            self.omega_cm1,
            self.intensity * scale,
            self.frequencies_cm1,
            None if self.activities is None else self.activities * scale,
        )


def mass_weighted_dalpha(dalpha_dr: np.ndarray, masses_amu: np.ndarray) -> np.ndarray:
    """d(alpha)/d(xi) from d(alpha)/dR (paper Eq. 3): divide by sqrt(M_I)."""
    d = np.asarray(dalpha_dr, dtype=float)
    inv_sqrt = 1.0 / np.sqrt(np.repeat(np.asarray(masses_amu, float), 3))
    return d * inv_sqrt[:, None, None]


def raman_spectrum_dense(
    hessian: np.ndarray,
    dalpha_dr: np.ndarray,
    masses_amu: np.ndarray,
    omega_cm1: np.ndarray,
    sigma_cm1: float = 5.0,
    convention: str = "standard",
    freq_threshold_cm1: float = 50.0,
) -> RamanSpectrum:
    """Exact spectrum via full diagonalization (the baseline solver)."""
    modes: NormalModes = normal_modes(hessian, masses_amu)
    d_xi = mass_weighted_dalpha(dalpha_dr, masses_amu)
    # d(alpha)/dQ_p = sum_Ij d(alpha)/d(xi_Ij) e_{Ij,p}   (paper Eq. 2)
    dq = np.einsum("cij,cp->pij", d_xi, modes.eigenvectors)
    act = raman_activities(dq, convention)
    vib = modes.vibrational(freq_threshold_cm1)
    intensity = np.zeros_like(np.asarray(omega_cm1, dtype=float))
    for p in vib:
        intensity += act[p] * gaussian_lineshape(
            omega_cm1, modes.frequencies_cm1[p], sigma_cm1
        )
    return RamanSpectrum(
        omega_cm1=np.asarray(omega_cm1, dtype=float),
        intensity=intensity,
        frequencies_cm1=modes.frequencies_cm1[vib],
        activities=act[vib],
    )


def _component_vectors(d_xi: np.ndarray, convention: str):
    """Decompose the activity into (weight, vector) matrix functionals.

    standard: 45 a'^2 + 7 gamma'^2
      = 45/9 (tr d)^2 + 7/2 [(dxx-dyy)^2 + (dyy-dzz)^2 + (dzz-dxx)^2]
        + 21 (dxy^2 + dxz^2 + dyz^2)
    paper:    3/2 (tr d)^2 + 21/2 sum_ij d_ij^2.
    Every term is (w, v) with v a 3N vector: sum_p w (v^T q_p)^2.
    """
    trace = d_xi[:, 0, 0] + d_xi[:, 1, 1] + d_xi[:, 2, 2]
    comps: list[tuple[float, np.ndarray]] = []
    if convention == "paper":
        comps.append((1.5, trace))
        for (i, j, mult) in _UNIQUE_IJ:
            comps.append((10.5 * mult, d_xi[:, i, j]))
    elif convention == "standard":
        comps.append((5.0, trace))  # 45 * (1/3)^2 * ... = 45/9
        pairs = [(0, 1), (1, 2), (2, 0)]
        for (i, j) in pairs:
            comps.append((3.5, d_xi[:, i, i] - d_xi[:, j, j]))
        for (i, j) in pairs:
            comps.append((21.0, d_xi[:, i, j]))
    else:
        raise ValueError(f"unknown convention {convention!r}")
    return comps


def raman_spectrum_lanczos(
    h_or_hessian,
    dalpha_dr: np.ndarray,
    masses_amu: np.ndarray,
    omega_cm1: np.ndarray,
    sigma_cm1: float = 5.0,
    k: int = 150,
    convention: str = "standard",
    averaged: bool = True,
    mass_weighted: bool = False,
    freq_threshold_cm1: float = 50.0,
) -> RamanSpectrum:
    """Spectrum via Lanczos + GAGQ matrix functionals (paper §V-E).

    Parameters
    ----------
    h_or_hessian:
        The (sparse) Hessian. With ``mass_weighted=False`` it is
        mass-weighted here (dense input); pass an already mass-weighted
        sparse operator with ``mass_weighted=True`` for large systems.
    k:
        Lanczos steps per component functional (the paper's k; the
        effective quadrature order is 2k-1 with GAGQ).
    """
    if mass_weighted:
        h_mw = h_or_hessian
    else:
        h_mw = mass_weighted_hessian(np.asarray(h_or_hessian), masses_amu)
    d_xi = mass_weighted_dalpha(dalpha_dr, masses_amu)
    omega = np.asarray(omega_cm1, dtype=float)
    thr2 = (freq_threshold_cm1 / HESSIAN_TO_CM1) ** 2

    def f(theta: np.ndarray) -> np.ndarray:
        # g_sigma(omega - omega_p) with omega_p = sqrt(lambda); modes below
        # the threshold (translations/rotations, FD noise) are suppressed
        lam = np.asarray(theta)
        freq = np.sqrt(np.clip(lam, 0.0, None)) * HESSIAN_TO_CM1
        out = gaussian_lineshape(omega[None, :], freq[:, None], sigma_cm1)
        out[lam < thr2] = 0.0
        return out

    intensity = np.zeros_like(omega)
    for weight, vec in _component_vectors(d_xi, convention):
        norm = float(np.linalg.norm(vec))
        if norm < 1e-14:
            continue
        res = lanczos(h_mw, vec, k)
        theta, wq = quadrature_nodes_weights(res, averaged=averaged)
        intensity += weight * np.tensordot(wq, f(theta), axes=(0, 0))
    return RamanSpectrum(omega_cm1=omega, intensity=intensity)


def depolarization_ratios(dalpha_dq: np.ndarray) -> np.ndarray:
    """Depolarization ratio per mode: rho_p = 3 gamma'^2 / (45 a'^2 + 4 gamma'^2).

    The standard complementary Raman observable (Wilson-Decius-Cross):
    0 for totally symmetric isotropic modes, 0.75 for anisotropic ones.
    """
    d = np.asarray(dalpha_dq, dtype=float)
    if d.ndim != 3 or d.shape[1:] != (3, 3):
        raise ValueError("dalpha_dq must be (nmodes, 3, 3)")
    a = np.trace(d, axis1=1, axis2=2) / 3.0
    gamma2 = 0.5 * (
        (d[:, 0, 0] - d[:, 1, 1]) ** 2
        + (d[:, 1, 1] - d[:, 2, 2]) ** 2
        + (d[:, 2, 2] - d[:, 0, 0]) ** 2
        + 6.0 * (d[:, 0, 1] ** 2 + d[:, 0, 2] ** 2 + d[:, 1, 2] ** 2)
    )
    denom = 45.0 * a ** 2 + 4.0 * gamma2
    out = np.zeros(d.shape[0])
    mask = denom > 1e-300
    out[mask] = 3.0 * gamma2[mask] / denom[mask]
    return out
