"""Vibrational spectroscopy solvers.

* :mod:`repro.spectra.modes` — mass-weighted Hessians and the dense
  full-diagonalization baseline (what the paper calls computationally
  infeasible beyond ~10^5 atoms).
* :mod:`repro.spectra.lanczos` — Lanczos tridiagonalization with full
  reorthogonalization.
* :mod:`repro.spectra.gagq` — the generalized averaged Gauss quadrature
  augmentation (paper §V-E, Eq. 5-8): spectra as matrix functionals
  d^T δ(ω - H) d without any full diagonalization.
* :mod:`repro.spectra.raman` — Raman activities and broadened spectra,
  via either solver.
"""

from repro.spectra.modes import (
    NormalModes,
    mass_weighted_hessian,
    normal_modes,
)
from repro.spectra.lanczos import lanczos
from repro.spectra.gagq import gauss_quadrature_functional, gagq_matrix
from repro.spectra.raman import (
    RamanSpectrum,
    raman_activities,
    raman_spectrum_dense,
    raman_spectrum_lanczos,
)

__all__ = [
    "NormalModes",
    "mass_weighted_hessian",
    "normal_modes",
    "lanczos",
    "gauss_quadrature_functional",
    "gagq_matrix",
    "RamanSpectrum",
    "raman_activities",
    "raman_spectrum_dense",
    "raman_spectrum_lanczos",
]
