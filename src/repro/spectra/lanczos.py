"""Lanczos tridiagonalization with full reorthogonalization.

The k-step Lanczos recurrence produces H Q_k = Q_k T_k + beta_k q_{k+1}
e_k^T with orthonormal q's and a k x k symmetric tridiagonal T_k. The
Raman solver (paper Eq. 5-7) only needs T_k (and beta_k for the GAGQ
augmentation), never the basis Q — but we keep Q optionally for tests.

Full reorthogonalization costs O(k^2 n) and removes the ghost-eigenvalue
pathology; k is tiny (hundreds) next to n (up to 3*10^8 in the paper),
so this is the numerically safe default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse

from repro.devtools.contracts import check_array, sanitize_enabled
from repro.obs.counters import counters
from repro.obs.tracer import get_tracer


@dataclass
class LanczosResult:
    alpha: np.ndarray        # (k,) diagonal of T_k
    beta: np.ndarray         # (k,) off-diagonals; beta[k-1] is the residual norm
    q: np.ndarray | None     # (n, k) Lanczos basis when kept
    d_norm: float            # |d| of the start vector
    breakdown: bool          # True if the Krylov space was exhausted early

    @property
    def k(self) -> int:
        return self.alpha.size

    def tridiagonal(self) -> np.ndarray:
        """Dense T_k."""
        t = np.diag(self.alpha)
        off = self.beta[:-1]
        t += np.diag(off, 1) + np.diag(off, -1)
        return t


def _as_matvec(h) -> Callable[[np.ndarray], np.ndarray]:
    if callable(h):
        return h
    if scipy.sparse.issparse(h):
        return lambda v: h @ v
    h = np.asarray(h)
    return lambda v: h @ v


def lanczos(
    h,
    start: np.ndarray,
    k: int,
    keep_basis: bool = False,
    reorthogonalize: bool = True,
) -> LanczosResult:
    """k-step Lanczos on a symmetric operator.

    Parameters
    ----------
    h:
        Dense array, scipy sparse matrix, or matvec callable.
    start:
        The d vector (not necessarily normalized).
    k:
        Number of steps; capped at dim(h).

    Returns
    -------
    :class:`LanczosResult`; on Krylov breakdown (invariant subspace
    found, e.g. when d spans few eigenvectors) alpha/beta are truncated
    and ``breakdown`` is set — the quadrature is then exact.
    """
    matvec = _as_matvec(h)
    start = np.asarray(start, dtype=float).ravel()
    n = start.size
    k = min(k, n)
    if k < 1:
        raise ValueError("k must be >= 1")
    d_norm = float(np.linalg.norm(start))
    if d_norm == 0.0:  # qf: exact-zero — degenerate input, not FD noise
        raise ValueError("zero start vector")
    q = start / d_norm

    alphas: list[float] = []
    betas: list[float] = []
    basis = [q]
    q_prev = np.zeros_like(q)
    beta_prev = 0.0
    breakdown = False
    with get_tracer().span("lanczos", n=n, k=k) as sp:
        for _ in range(k):
            w = matvec(q)
            a = float(q @ w)
            alphas.append(a)
            w = w - a * q - beta_prev * q_prev
            if reorthogonalize:
                # two passes of classical Gram-Schmidt ("twice is enough")
                qs = np.array(basis)
                for _pass in range(2):
                    w = w - qs.T @ (qs @ w)
            b = float(np.linalg.norm(w))
            betas.append(b)
            if b < 1e-12 * max(1.0, abs(a)):
                breakdown = True
                break
            q_prev, q = q, w / b
            beta_prev = b
            basis.append(q)
        sp.set(steps=len(alphas), breakdown=breakdown)
    counters().inc("lanczos.matvecs", len(alphas))

    alpha_arr = np.array(alphas)
    beta_arr = np.array(betas)
    if sanitize_enabled():
        # a NaN in the recurrence coefficients silently corrupts every
        # quadrature node of the spectrum solver downstream
        ctx = f"lanczos n={n} k={len(alphas)}"
        check_array("alpha", alpha_arr, context=ctx)
        check_array("beta", beta_arr, context=ctx)
    return LanczosResult(
        alpha=alpha_arr,
        beta=beta_arr,
        q=np.array(basis[: len(alphas)]).T if keep_basis else None,
        d_norm=d_norm,
        breakdown=breakdown,
    )
