"""Spectral analysis: peak detection, band assignment, comparisons.

Fig. 12's evaluation is qualitative — do the characteristic bands
appear at the right positions with sensible relative intensities?
This package makes that check programmatic: reference band tables
(from the paper's discussion of the experimental spectra), peak
pickers, and similarity metrics between computed and reference
spectra.
"""

from repro.analysis.peaks import Peak, find_peaks
from repro.analysis.reference import (
    PROTEIN_BANDS,
    WATER_BANDS,
    reference_spectrum,
)
from repro.analysis.compare import band_assignment, spectral_overlap

__all__ = [
    "Peak",
    "find_peaks",
    "PROTEIN_BANDS",
    "WATER_BANDS",
    "reference_spectrum",
    "band_assignment",
    "spectral_overlap",
]
