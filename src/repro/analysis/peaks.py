"""Peak detection on broadened spectra."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Peak:
    position_cm1: float
    height: float
    prominence: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Peak({self.position_cm1:.0f} cm-1, h={self.height:.3g})"


def find_peaks(
    omega_cm1: np.ndarray,
    intensity: np.ndarray,
    min_height_fraction: float = 0.02,
    min_separation_cm1: float = 20.0,
) -> list[Peak]:
    """Local maxima above a relative height, with prominence.

    ``min_height_fraction`` is relative to the global maximum;
    peaks closer than ``min_separation_cm1`` keep only the taller one.
    """
    omega = np.asarray(omega_cm1, dtype=float)
    y = np.asarray(intensity, dtype=float)
    if omega.shape != y.shape:
        raise ValueError("omega/intensity mismatch")
    if y.size < 3:
        return []
    ymax = float(y.max())
    if ymax <= 0:
        return []
    idx = np.where((y[1:-1] > y[:-2]) & (y[1:-1] >= y[2:]))[0] + 1
    idx = idx[y[idx] >= min_height_fraction * ymax]
    peaks: list[Peak] = []
    for i in idx:
        # prominence: drop to the higher of the two flanking minima
        left = y[: i + 1]
        right = y[i:]
        lmin = float(left[np.argmax(left[::-1] > y[i]) :].min()) if np.any(
            left > y[i]
        ) else float(left.min())
        rmin = float(right[: np.argmax(right > y[i]) or None].min()) if np.any(
            right > y[i]
        ) else float(right.min())
        prom = y[i] - max(lmin, rmin)
        peaks.append(Peak(float(omega[i]), float(y[i]), float(prom)))
    # enforce separation, keep taller
    peaks.sort(key=lambda p: -p.height)
    kept: list[Peak] = []
    for p in peaks:
        if all(abs(p.position_cm1 - q.position_cm1) >= min_separation_cm1
               for q in kept):
            kept.append(p)
    kept.sort(key=lambda p: p.position_cm1)
    return kept
