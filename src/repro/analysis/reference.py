"""Reference band tables and synthetic experimental spectra.

Band positions follow the paper's Fig. 12 discussion (§VIII) and the
cited experimental literature: Phe ring breathing ~1030 cm^-1, amide
III 1200-1360, CH2 bending ~1450, amide I ~1655, C-H stretch ~2900;
water O-H bend ~1640 and stretch ~3400. The synthetic "experimental"
spectrum is the Gaussian-broadened band table — it stands in for the
digitized measurement the paper overlays (DESIGN.md substitutions).
"""

from __future__ import annotations

import numpy as np

#: (name, center cm^-1, width cm^-1, relative intensity)
PROTEIN_BANDS: list[tuple[str, float, float, float]] = [
    ("phe_ring_breathing", 1030.0, 15.0, 0.55),
    ("amide_III", 1260.0, 50.0, 0.40),
    ("ch2_bending", 1450.0, 25.0, 0.85),
    ("amide_I", 1655.0, 30.0, 1.00),
    ("ch_stretch", 2930.0, 45.0, 0.95),
]

WATER_BANDS: list[tuple[str, float, float, float]] = [
    ("libration", 450.0, 120.0, 0.25),
    ("oh_bending", 1640.0, 45.0, 0.30),
    ("oh_stretch", 3400.0, 120.0, 1.00),
]

#: frequency scale factor mapping our RHF/STO-3G harmonic frequencies
#: onto experimental fundamentals. HF overestimates force constants
#: systematically; 0.82-0.91 is the standard scaling range for minimal
#: bases (Pople et al.); we fit 0.84 on the water monomer.
RHF_STO3G_FREQUENCY_SCALE: float = 0.84


def reference_spectrum(
    omega_cm1: np.ndarray,
    bands: list[tuple[str, float, float, float]],
) -> np.ndarray:
    """Gaussian-broadened synthetic reference spectrum, peak-normalized."""
    omega = np.asarray(omega_cm1, dtype=float)
    out = np.zeros_like(omega)
    for (_name, center, width, height) in bands:
        out += height * np.exp(-((omega - center) ** 2) / (2.0 * width ** 2))
    peak = out.max()
    return out / peak if peak > 0 else out
