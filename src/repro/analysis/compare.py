"""Computed-vs-reference spectral comparisons."""

from __future__ import annotations

import numpy as np

from repro.analysis.peaks import Peak, find_peaks


def spectral_overlap(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two spectra on a common grid (0..1)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        return 0.0
    return float(a @ b / (na * nb))


def band_assignment(
    omega_cm1: np.ndarray,
    intensity: np.ndarray,
    bands: list[tuple[str, float, float, float]],
    frequency_scale: float = 1.0,
    tolerance_cm1: float = 120.0,
) -> dict[str, dict]:
    """Match computed peaks to named reference bands.

    ``frequency_scale`` is applied to the computed axis first (harmonic
    HF frequencies are systematically high). Returns per-band matches:
    ``{name: {"expected": .., "found": .. or None, "error": ..}}``.
    """
    scaled = np.asarray(omega_cm1, dtype=float) * frequency_scale
    peaks = find_peaks(scaled, np.asarray(intensity, dtype=float))
    out: dict[str, dict] = {}
    for (name, center, _width, _height) in bands:
        best: Peak | None = None
        for p in peaks:
            if abs(p.position_cm1 - center) <= tolerance_cm1:
                if best is None or p.height > best.height:
                    best = p
        out[name] = {
            "expected_cm1": center,
            "found_cm1": None if best is None else best.position_cm1,
            "error_cm1": None if best is None else best.position_cm1 - center,
            "height": None if best is None else best.height,
        }
    return out
