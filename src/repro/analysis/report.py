"""Experiment-report generation from benchmark outputs.

Every benchmark dumps its paper-vs-measured rows to
``benchmarks/output/*.json``; this module assembles them into one
markdown report so EXPERIMENTS.md can be regenerated from actual runs
(``python -m repro.analysis.report [output_dir]``).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _load(directory: Path) -> dict[str, dict]:
    out = {}
    for path in sorted(directory.glob("*.json")):
        try:
            out[path.stem] = json.loads(path.read_text())
        except json.JSONDecodeError:
            out[path.stem] = {"error": "unreadable"}
    return out


def _fmt(val, nd=1):
    if isinstance(val, float):
        return f"{val:.{nd}f}"
    return str(val)


def generate_report(output_dir: str | Path) -> str:
    """Markdown summary of every recorded benchmark result."""
    directory = Path(output_dir)
    data = _load(directory)
    if not data:
        return "# Benchmark report\n\n(no results found — run the benchmarks first)\n"
    lines = ["# Benchmark report (auto-generated from benchmarks/output)", ""]

    if "fig10_orise_protein" in data:
        lines += ["## Fig. 10 — ORISE protein strong scaling", "",
                  "| nodes | measured % | paper % |", "|---:|---:|---:|"]
        for row in data["fig10_orise_protein"]["rows"]:
            lines.append(
                f"| {row['nodes']} | {_fmt(row['measured'])} | {row['paper']} |"
            )
        lines.append("")

    if "fig8_orise_protein" in data:
        lines += ["## Fig. 8 — ORISE protein load-balance variation", "",
                  "| nodes | measured (min,max)% | paper (min,max)% |",
                  "|---:|---|---|"]
        for row in data["fig8_orise_protein"]["rows"]:
            m = row["measured"]
            p = row["paper"]
            lines.append(
                f"| {row['nodes']} | {_fmt(m[0])}, {_fmt(m[1])} |"
                f" {p[0]}, {p[1]} |"
            )
        lines.append("")

    if "fig9_speedups" in data:
        lines += ["## Fig. 9 — step-by-step speedups", ""]
        for machine, rows in data["fig9_speedups"].items():
            lines.append(f"**{machine}**")
            lines += ["", "| atoms | sym | +offload |", "|---:|---:|---:|"]
            for row in rows:
                lines.append(
                    f"| {row['natoms']} | {_fmt(row['sym'])} |"
                    f" {_fmt(row['sym_offload'])} |"
                )
            lines.append("")

    if "table1_projected" in data:
        lines += ["## Table I — projected FP64 rates", "",
                  "| machine | part | TFLOPS/accel | PFLOPS | % peak | paper |",
                  "|---|---|---|---:|---:|---|"]
        for row in data["table1_projected"]["rows"]:
            lines.append(
                f"| {row['machine']} | {row['part']} |"
                f" {_fmt(row['lo'], 2)}-{_fmt(row['hi'], 2)} |"
                f" {_fmt(row['pflops'])} | {_fmt(row['pct'])} |"
                f" {row['paper'][0]}-{row['paper'][1]} TF,"
                f" {row['paper'][2]} PF ({row['paper'][3]}%) |"
            )
        lines.append("")

    if "system_counts" in data:
        sc = data["system_counts"]
        lines += ["## §VI-A decomposition statistics", "",
                  "| counter | measured | paper |", "|---|---:|---:|"]
        for key, val in sc["measured"].items():
            paper = sc["paper"].get(key, "—")
            lines.append(f"| {key} | {_fmt(val, 0)} | {paper} |")
        lines.append("")

    for fig, title in (("fig12a_peptide", "Fig. 12a — gas-phase peptide"),
                       ("fig12b_water", "Fig. 12b — water box"),
                       ("fig12c_solvated", "Fig. 12c — solvated peptide")):
        if fig in data and "bands" in data[fig]:
            lines += [f"## {title}", "",
                      "| band | expected cm⁻¹ | found cm⁻¹ |", "|---|---:|---:|"]
            for name, info in data[fig]["bands"].items():
                found = info.get("found_cm1")
                lines.append(
                    f"| {name} | {_fmt(info['expected_cm1'], 0)} |"
                    f" {'—' if found is None else _fmt(found, 0)} |"
                )
            lines.append("")

    covered = ", ".join(sorted(data))
    lines += ["---", f"raw result files: {covered}", ""]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin
    args = argv if argv is not None else sys.argv[1:]
    directory = args[0] if args else "benchmarks/output"
    print(generate_report(directory))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
