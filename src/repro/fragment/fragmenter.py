"""QF decomposition of a solvated protein (paper §IV-A, Eq. 1).

Produces a flat list of :class:`QFPiece` work items — exactly the task
pool the paper's master process distributes (each piece later expands
into 6N+1 displacement jobs in the DFPT loop).

Sign structure of Eq. (1):

    E(2) =   sum_k  F_k            (+1, per-residue capped fragments)
           - sum_k  CC_k           (-1, conjugate-cap corrections)
           + sum_k  W_k            (+1, water one-body)
           + sum_gc (E_ij - E_i - E_j)   (generalized concaps: the pair
                    dimer at +1, the two re-used monomers at -1)

Monomer terms of generalized concaps reuse the already-computed
one-body pieces where possible (water monomers are exactly the W_k
pieces; residue monomers E_i are dedicated capped single residues,
cached by residue index so each is computed once).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.atoms import Geometry
from repro.geometry.neighbor import pairs_within
from repro.geometry.protein import BuiltResidue
from repro.fragment.capping import capped_residue_range


@dataclass
class QFPiece:
    """One QM work item of the decomposition."""

    kind: str                 # fragment | concap | water | gc_dimer | gc_mono
    sign: float               # +1 or -1 coefficient in Eq. (1)
    geometry: Geometry        # capped, closed-shell piece geometry
    atom_map: np.ndarray      # piece atom -> global atom index (-1 = cap H)
    label: str = ""
    multiplicity: int = 1     # how many times this piece enters the sum

    @property
    def natoms(self) -> int:
        return self.geometry.natoms


@dataclass
class QFDecomposition:
    """The full piece list plus bookkeeping counters."""

    pieces: list[QFPiece]
    natoms_total: int
    counts: dict[str, int] = field(default_factory=dict)

    def by_kind(self, kind: str) -> list[QFPiece]:
        return [p for p in self.pieces if p.kind == kind]

    def total_qm_atoms(self) -> int:
        """Sum of piece sizes × multiplicity (the QM workload measure)."""
        return sum(p.natoms * p.multiplicity for p in self.pieces)


# ---------------------------------------------------------------------------
# protein decomposition
# ---------------------------------------------------------------------------

def decompose_protein(
    protein: Geometry,
    residues: list[BuiltResidue],
    lambda_angstrom: float = 4.0,
    min_sequence_separation: int = 3,
    generalized_concaps: bool = True,
) -> list[QFPiece]:
    """MFCC pieces of one protein chain.

    Residue k's fragment covers residues [k-1, k, k+1] (the caps are
    the real neighboring residues); the first and last peptide bonds
    are never cut, i.e. the terminal residues ride along with their
    neighbor's fragment (paper: N amino acids → N-2 fragments, N-3
    conjugate caps). Generalized concaps connect residue pairs at
    sequence distance >= ``min_sequence_separation`` whose minimal atom
    distance is within λ.
    """
    n = len(residues)
    if n < 3:
        # degenerate chains: treat the whole thing as a single fragment
        geom, amap = capped_residue_range(protein, residues, 0, n - 1)
        return [QFPiece("fragment", +1.0, geom, amap, label="frag[whole]")]
    pieces: list[QFPiece] = []
    # fragments: k = 1 .. n-2 covering [k-1, k+1]  → n-2 pieces
    for k in range(1, n - 1):
        geom, amap = capped_residue_range(protein, residues, k - 1, k + 1)
        pieces.append(
            QFPiece("fragment", +1.0, geom, amap, label=f"frag[{k}]")
        )
    # conjugate caps: overlap of consecutive fragments = [k, k+1],
    # k = 1 .. n-3  → n-3 pieces
    for k in range(1, n - 2):
        geom, amap = capped_residue_range(protein, residues, k, k + 1)
        pieces.append(
            QFPiece("concap", -1.0, geom, amap, label=f"concap[{k}]")
        )
    if generalized_concaps:
        pieces.extend(
            _protein_generalized_concaps(
                protein, residues, lambda_angstrom, min_sequence_separation
            )
        )
    return pieces


def _protein_generalized_concaps(
    protein: Geometry,
    residues: list[BuiltResidue],
    lam: float,
    min_sep: int,
) -> list[QFPiece]:
    coords_ang = protein.coords_angstrom()
    groups = [coords_ang[r.atom_indices] for r in residues]
    close = pairs_within(groups, lam)
    pieces: list[QFPiece] = []
    mono_cache: dict[int, QFPiece] = {}

    def monomer(i: int) -> QFPiece:
        if i not in mono_cache:
            geom, amap = capped_residue_range(protein, residues, i, i)
            mono_cache[i] = QFPiece(
                "gc_mono", -1.0, geom, amap, label=f"mono[{i}]", multiplicity=0
            )
        return mono_cache[i]

    for (i, j) in close:
        if abs(i - j) < min_sep:
            continue
        gi, mi = capped_residue_range(protein, residues, i, i)
        gj, mj = capped_residue_range(protein, residues, j, j)
        dimer = gi.merged(gj)
        dmap = np.concatenate([mi, mj])
        pieces.append(
            QFPiece("gc_dimer", +1.0, dimer, dmap, label=f"gc[{i},{j}]")
        )
        for r in (i, j):
            monomer(r).multiplicity += 1
    pieces.extend(p for p in mono_cache.values() if p.multiplicity > 0)
    return pieces


# ---------------------------------------------------------------------------
# water decomposition
# ---------------------------------------------------------------------------

def decompose_waters(
    waters: list[Geometry],
    global_offset: int,
    lambda_angstrom: float = 4.0,
    two_body: bool = True,
) -> list[QFPiece]:
    """Water one-body fragments + water-water two-body concaps.

    ``global_offset`` is the index of the first water atom in the
    assembled global system (protein atoms come first).
    """
    pieces: list[QFPiece] = []
    offsets = []
    off = global_offset
    for w in waters:
        offsets.append(off)
        amap = np.arange(off, off + w.natoms)
        pieces.append(
            QFPiece("water", +1.0, w, amap, label=f"water[{len(offsets)-1}]")
        )
        off += w.natoms
    if two_body and len(waters) > 1:
        groups = [w.coords_angstrom() for w in waters]
        close = pairs_within(groups, lambda_angstrom)
        mono_extra: dict[int, int] = {}
        for (i, j) in close:
            dimer = waters[i].merged(waters[j])
            dmap = np.concatenate(
                [
                    np.arange(offsets[i], offsets[i] + waters[i].natoms),
                    np.arange(offsets[j], offsets[j] + waters[j].natoms),
                ]
            )
            pieces.append(
                QFPiece("gc_dimer", +1.0, dimer, dmap, label=f"ww[{i},{j}]")
            )
            mono_extra[i] = mono_extra.get(i, 0) + 1
            mono_extra[j] = mono_extra.get(j, 0) + 1
        # the monomer terms (-E_wi - E_wj) reuse the one-body water
        # pieces: emit explicit negative-sign references so assembly
        # stays a plain signed sum
        for i, count in mono_extra.items():
            amap = np.arange(offsets[i], offsets[i] + waters[i].natoms)
            pieces.append(
                QFPiece(
                    "gc_mono", -1.0, waters[i], amap,
                    label=f"wmono[{i}]", multiplicity=count,
                )
            )
    return pieces


# ---------------------------------------------------------------------------
# full system
# ---------------------------------------------------------------------------

def decompose_system(
    protein: Geometry | None = None,
    residues: list[BuiltResidue] | None = None,
    waters: list[Geometry] | None = None,
    lambda_angstrom: float = 4.0,
    min_sequence_separation: int = 3,
    protein_water_two_body: bool = True,
) -> QFDecomposition:
    """Decompose protein + explicit waters into the full QF piece list.

    Global atom indexing: protein atoms first (their order in
    ``protein``), then waters in list order.
    """
    waters = waters or []
    if protein is None and not waters:
        raise ValueError("decompose_system needs a protein, waters, or both")
    pieces: list[QFPiece] = []
    natoms_protein = protein.natoms if protein is not None else 0
    if protein is not None:
        if residues is None:
            raise ValueError("protein decomposition needs residue bookkeeping")
        pieces.extend(
            decompose_protein(
                protein, residues, lambda_angstrom, min_sequence_separation
            )
        )
    pieces.extend(
        decompose_waters(waters, natoms_protein, lambda_angstrom)
    )
    if protein is not None and waters and protein_water_two_body:
        pieces.extend(
            _protein_water_concaps(
                protein, residues, waters, natoms_protein, lambda_angstrom
            )
        )
    natoms_total = natoms_protein + sum(w.natoms for w in waters)
    counts: dict[str, int] = {}
    for p in pieces:
        counts[p.kind] = counts.get(p.kind, 0) + max(1, p.multiplicity if
                                                     p.kind == "gc_mono" else 1)
    return QFDecomposition(pieces=pieces, natoms_total=natoms_total, counts=counts)


def _protein_water_concaps(
    protein: Geometry,
    residues: list[BuiltResidue],
    waters: list[Geometry],
    water_offset: int,
    lam: float,
) -> list[QFPiece]:
    """Residue-water two-body corrections (the M_aw sum of Eq. 1)."""
    coords_ang = protein.coords_angstrom()
    res_groups = [coords_ang[r.atom_indices] for r in residues]
    wat_groups = [w.coords_angstrom() for w in waters]
    nres = len(res_groups)
    close = pairs_within(res_groups + wat_groups, lam)
    pieces: list[QFPiece] = []
    mono_cache: dict[int, QFPiece] = {}
    woff = []
    off = water_offset
    for w in waters:
        woff.append(off)
        off += w.natoms
    for (gi, gj) in close:
        if gi >= nres or gj < nres:
            continue  # keep only residue-water pairs
        i, jw = gi, gj - nres
        gres, mres = capped_residue_range(protein, residues, i, i)
        dimer = gres.merged(waters[jw])
        dmap = np.concatenate(
            [mres, np.arange(woff[jw], woff[jw] + waters[jw].natoms)]
        )
        pieces.append(
            QFPiece("gc_dimer", +1.0, dimer, dmap, label=f"rw[{i},{jw}]")
        )
        # monomers: capped residue (cached) and the water one-body
        if i not in mono_cache:
            mono_cache[i] = QFPiece(
                "gc_mono", -1.0, gres, mres, label=f"rmono[{i}]", multiplicity=0
            )
        mono_cache[i].multiplicity += 1
        wmap = np.arange(woff[jw], woff[jw] + waters[jw].natoms)
        pieces.append(
            QFPiece(
                "gc_mono", -1.0, waters[jw], wmap,
                label=f"wmono-rw[{jw}]", multiplicity=1,
            )
        )
    pieces.extend(p for p in mono_cache.values() if p.multiplicity > 0)
    return pieces
