"""Hydrogen capping of cut peptide bonds.

A QF piece covering residues [i..j] of a chain severs at most two
bonds: C_{i-1}-N_i on the N side and C_j-N_{j+1} on the C side. Each
dangling bond is saturated by a hydrogen placed along the cut bond
direction at the standard X-H distance, which keeps every piece a
neutral closed-shell molecule (paper §IV-A: "hydrogen atoms are added
to terminate all dangling bonds").
"""

from __future__ import annotations

import numpy as np

from repro.constants import ANGSTROM_TO_BOHR
from repro.geometry.atoms import Geometry
from repro.geometry.protein import BuiltResidue

#: cap bond lengths in angstrom
N_H_CAP = 1.010
C_H_CAP = 1.090


def cap_position(host: np.ndarray, toward: np.ndarray, bond_angstrom: float
                 ) -> np.ndarray:
    """Place a cap H on ``host`` pointing at ``toward`` (coords in bohr)."""
    direction = toward - host
    norm = np.linalg.norm(direction)
    if norm < 1e-8:
        raise ValueError("degenerate cap direction")
    return host + direction / norm * bond_angstrom * ANGSTROM_TO_BOHR


def capped_residue_range(
    protein: Geometry,
    residues: list[BuiltResidue],
    first: int,
    last: int,
) -> tuple[Geometry, np.ndarray]:
    """Extract residues [first..last] with H caps at the cut bonds.

    Returns ``(geometry, atom_map)`` where ``atom_map[k]`` is the
    global (protein) atom index of piece atom k, or -1 for cap
    hydrogens (their derivative rows are dropped at assembly).
    """
    if not (0 <= first <= last < len(residues)):
        raise IndexError("residue range out of bounds")
    indices: list[int] = []
    for r in range(first, last + 1):
        indices.extend(residues[r].atom_indices)
    sub = protein.subset(indices)
    atom_map = list(indices)
    symbols = list(sub.symbols)
    coords = [c for c in sub.coords]
    labels = list(sub.labels) if sub.labels else [{} for _ in symbols]

    def add_cap(host_global: int, toward_global: int, bond: float) -> None:
        pos = cap_position(
            protein.coords[host_global], protein.coords[toward_global], bond
        )
        symbols.append("H")
        coords.append(pos)
        labels.append({"kind": "cap", "name": "HCAP"})
        atom_map.append(-1)

    if first > 0:
        # N-side cut: C_{first-1} - N_first; cap sits on N_first
        add_cap(
            residues[first].named("N"), residues[first - 1].named("C"), N_H_CAP
        )
    if last < len(residues) - 1:
        # C-side cut: C_last - N_{last+1}; cap sits on C_last
        add_cap(
            residues[last].named("C"), residues[last + 1].named("N"), C_H_CAP
        )
    geom = Geometry(symbols, np.array(coords), charge=0, labels=labels)
    return geom, np.array(atom_map, dtype=int)
