"""Full-scale QF bookkeeping (no QM).

For systems the size of the paper's solvated spike protein
(101,299,008 atoms) the decomposition statistics — fragment counts,
conjugate caps, generalized concaps, λ-threshold pair counts — are
computable without ever materializing QM work. These are the numbers
reported in §VI-A and validated by ``benchmarks/bench_system_counts.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.atoms import Geometry
from repro.geometry.neighbor import pairs_within
from repro.geometry.protein import BuiltResidue, residue_atom_count, sample_sequence
from repro.geometry.water import water_box_stats


@dataclass
class SystemStatistics:
    """Decomposition counters for one (possibly huge) system."""

    n_residues: int
    n_waters: int
    n_atoms: int
    n_fragments: int            # per-residue capped fragments
    n_conjugate_caps: int
    n_generalized_concaps: int  # residue-residue pairs within λ
    n_residue_water_pairs: int
    n_water_water_pairs: float  # may be an expectation for huge boxes
    fragment_sizes: np.ndarray  # atoms per fragment (with caps)

    def as_dict(self) -> dict:
        return {
            "residues": self.n_residues,
            "waters": self.n_waters,
            "atoms": self.n_atoms,
            "fragments": self.n_fragments,
            "conjugate_caps": self.n_conjugate_caps,
            "generalized_concaps": self.n_generalized_concaps,
            "residue_water_pairs": self.n_residue_water_pairs,
            "water_water_pairs": self.n_water_water_pairs,
        }


def system_statistics(
    protein: Geometry | None,
    residues: list[BuiltResidue] | None,
    n_waters: int,
    lambda_angstrom: float = 4.0,
    min_sequence_separation: int = 3,
    explicit_waters: list[Geometry] | None = None,
    n_chains: int = 1,
) -> SystemStatistics:
    """Counters for a protein + water system.

    Water-water pair counts come from explicit neighbor search when
    ``explicit_waters`` is given, otherwise from the homogeneous-liquid
    expectation (closed form, exact in the large-box limit) — that is
    how the 101-million-atom box is scored without building it.

    ``n_chains``: the MFCC fragment/concap counting is per chain (the
    spike protein is a homotrimer: 3,180 residues in 3 chains gives the
    paper's 3,180 - 2*3 = 3,174 fragments and 3,180 - 3*3 = 3,171
    conjugate caps).
    """
    n_res = len(residues) if residues else 0
    n_atoms_protein = protein.natoms if protein is not None else 0
    n_atoms = n_atoms_protein + 3 * n_waters

    if n_res >= 3 * n_chains:
        n_frag = n_res - 2 * n_chains
        n_cc = n_res - 3 * n_chains
    else:
        n_frag = 1 if n_res else 0
        n_cc = 0

    n_gc = 0
    frag_sizes: list[int] = []
    n_rw = 0
    if protein is not None and residues:
        coords_ang = protein.coords_angstrom()
        groups = [coords_ang[r.atom_indices] for r in residues]
        close = pairs_within(groups, lambda_angstrom)
        n_gc = sum(1 for (i, j) in close if abs(i - j) >= min_sequence_separation)
        for k in range(1, n_res - 1):
            size = sum(
                len(residues[r].atom_indices) for r in (k - 1, k, k + 1)
            )
            ncaps = (1 if k - 1 > 0 else 0) + (1 if k + 1 < n_res - 1 else 0)
            frag_sizes.append(size + ncaps)
        if explicit_waters:
            wat_groups = [w.coords_angstrom() for w in explicit_waters]
            allg = groups + wat_groups
            for (i, j) in pairs_within(allg, lambda_angstrom):
                if i < n_res <= j:
                    n_rw += 1

    if explicit_waters is not None:
        wat_groups = [w.coords_angstrom() for w in explicit_waters]
        n_ww: float = float(len(pairs_within(wat_groups, lambda_angstrom)))
    else:
        n_ww = water_box_stats(n_waters, lambda_angstrom)["expected_ww_pairs"]

    return SystemStatistics(
        n_residues=n_res,
        n_waters=n_waters,
        n_atoms=n_atoms,
        n_fragments=n_frag,
        n_conjugate_caps=n_cc,
        n_generalized_concaps=n_gc,
        n_residue_water_pairs=n_rw,
        n_water_water_pairs=n_ww,
        fragment_sizes=np.array(frag_sizes, dtype=int),
    )


def spike_paper_reference() -> dict:
    """The §VI-A numbers from the paper, for side-by-side reporting."""
    return {
        "residues": 3180,
        "atoms": 101_299_008,
        "conjugate_caps": 3171,
        "generalized_concaps": 11394,
        "residue_water_pairs": 3088,
        "water_water_pairs": 128_341_476,
    }


def synthetic_fragment_size_distribution(
    n_residues: int = 3180, seed: int = 0,
    min_atoms: int = 9, max_atoms: int = 68,
) -> np.ndarray:
    """Fragment sizes for a spike-composition chain, clipped to the
    paper's reported 9-68 atom range (used by the HPC cost model)."""
    seq = sample_sequence(n_residues, seed=seed)
    sizes = []
    for k in range(1, n_residues - 1):
        size = sum(residue_atom_count(seq[r]) for r in (k - 1, k, k + 1)) + 2
        sizes.append(size)
    return np.clip(np.array(sizes, dtype=int), min_atoms, max_atoms)
