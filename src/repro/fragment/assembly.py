"""Assembly of global properties from QF piece results (paper Eq. 1).

Every piece carries a coefficient ``sign * multiplicity``; energies,
gradients, Hessians, and polarizability derivatives are plain signed
sums over pieces, with piece-atom rows mapped to global coordinates
through ``atom_map``. Rows belonging to artificial cap hydrogens
(``atom_map == -1``) are dropped — their contributions cancel to the
MFCC approximation order between fragments and concaps.

For very large systems the assembled Hessian is block-sparse (nonzeros
only inside pieces); :func:`assemble_sparse_hessian` builds the
scipy CSR operator consumed by the Lanczos/GAGQ solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse

from repro.dfpt.hessian import FragmentResponse
from repro.fragment.fragmenter import QFPiece


def _coefficient(piece: QFPiece) -> float:
    mult = piece.multiplicity if piece.multiplicity else 1
    return piece.sign * mult


def _coordinate_map(piece: QFPiece) -> tuple[np.ndarray, np.ndarray]:
    """(piece coordinate indices, global coordinate indices) for real atoms."""
    real = np.where(piece.atom_map >= 0)[0]
    pc = (3 * real[:, None] + np.arange(3)[None, :]).ravel()
    gc = (3 * piece.atom_map[real][:, None] + np.arange(3)[None, :]).ravel()
    return pc, gc


def assemble_energy(pieces: list[QFPiece], energies: list[float]) -> float:
    """Total QF energy: sum of signed piece energies."""
    if len(pieces) != len(energies):
        raise ValueError("piece/energy length mismatch")
    return float(sum(_coefficient(p) * e for p, e in zip(pieces, energies)))


def assemble_gradient(
    pieces: list[QFPiece],
    gradients: list[np.ndarray],
    natoms_total: int,
) -> np.ndarray:
    """Global gradient (natoms_total, 3) from piece gradients."""
    g = np.zeros((natoms_total, 3))
    for piece, pg in zip(pieces, gradients):
        coeff = _coefficient(piece)
        real = np.where(piece.atom_map >= 0)[0]
        g[piece.atom_map[real]] += coeff * np.asarray(pg)[real]
    return g


@dataclass
class AssembledResponse:
    """Globally assembled second-order response (Eq. 1 applied to the
    Hessian and the polarizability derivative)."""

    energy: float
    hessian: np.ndarray            # (3N, 3N) dense
    dalpha_dr: np.ndarray | None   # (3N, 3, 3)
    natoms: int


def assemble_response(
    pieces: list[QFPiece],
    responses: list[FragmentResponse],
    natoms_total: int,
) -> AssembledResponse:
    """Dense assembly (small/medium systems)."""
    if len(pieces) != len(responses):
        raise ValueError("piece/response length mismatch")
    n3 = 3 * natoms_total
    hessian = np.zeros((n3, n3))
    have_raman = all(r.dalpha_dr is not None for r in responses)
    dalpha = np.zeros((n3, 3, 3)) if have_raman else None
    energy = 0.0
    for piece, resp in zip(pieces, responses):
        coeff = _coefficient(piece)
        energy += coeff * resp.energy
        pc, gc = _coordinate_map(piece)
        hessian[np.ix_(gc, gc)] += coeff * resp.hessian[np.ix_(pc, pc)]
        if have_raman:
            dalpha[gc] += coeff * resp.dalpha_dr[pc]
    return AssembledResponse(
        energy=energy, hessian=hessian, dalpha_dr=dalpha, natoms=natoms_total
    )


def assemble_sparse_hessian(
    pieces: list[QFPiece],
    responses: list[FragmentResponse],
    natoms_total: int,
    masses_amu: np.ndarray | None = None,
) -> scipy.sparse.csr_matrix:
    """Block-sparse (optionally mass-weighted) global Hessian.

    This is the operator the Lanczos solver multiplies against for
    systems far beyond dense-diagonalization reach: memory scales with
    the number of piece-internal coordinate pairs, not (3N)^2.
    """
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for piece, resp in zip(pieces, responses):
        coeff = _coefficient(piece)
        pc, gc = _coordinate_map(piece)
        block = coeff * resp.hessian[np.ix_(pc, pc)]
        r, c = np.meshgrid(gc, gc, indexing="ij")
        rows.append(r.ravel())
        cols.append(c.ravel())
        vals.append(block.ravel())
    n3 = 3 * natoms_total
    h = scipy.sparse.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n3, n3),
    ).tocsr()
    if masses_amu is not None:
        inv_sqrt = 1.0 / np.sqrt(np.repeat(np.asarray(masses_amu, float), 3))
        d = scipy.sparse.diags(inv_sqrt)
        h = d @ h @ d
    return h
