"""Quantum Fragmentation (QF) — the paper's core algorithm.

Decomposes a solvated protein into MFCC pieces (paper §IV-A, Eq. 1):

* per-residue fragments  Cap*_{k-1} a_k Cap_{k+1}  (caps are the
  neighboring residues, hydrogen-capped at the outer cuts),
* conjugate-cap corrections  Cap*_k Cap_{k+1}  subtracted to cancel
  double counting,
* one water fragment per solvent molecule,
* generalized concaps: two-body corrections  E_ij - E_i - E_j  for
  residue-residue, residue-water, and water-water pairs whose minimal
  atom distance is within the threshold λ (4 Å in the paper).

Second derivatives (Hessian) and polarizability derivatives assemble
linearly over pieces with the same ± signs as the energy.
"""

from repro.fragment.fragmenter import (
    QFDecomposition,
    QFPiece,
    decompose_protein,
    decompose_system,
    decompose_waters,
)
from repro.fragment.assembly import (
    AssembledResponse,
    assemble_energy,
    assemble_response,
    assemble_sparse_hessian,
)
from repro.fragment.bookkeeping import system_statistics

__all__ = [
    "QFDecomposition",
    "QFPiece",
    "decompose_protein",
    "decompose_system",
    "decompose_waters",
    "AssembledResponse",
    "assemble_energy",
    "assemble_response",
    "assemble_sparse_hessian",
    "system_statistics",
]
