"""QF-RAMAN reproduction: quantum-fragmentation Raman spectra with a
simulated extreme-scale HPC substrate.

Reproduces "Pushing the Limit of Quantum Mechanical Simulation to the
Raman Spectra of a Biological System with 100 Million Atoms" (SC 2024).
See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.

Subpackages:

- :mod:`repro.geometry`  — structures (proteins, water boxes, solvation)
- :mod:`repro.basis` / :mod:`repro.integrals` — Gaussian basis + integrals
- :mod:`repro.scf` / :mod:`repro.dfpt` — SCF, gradients, response theory
- :mod:`repro.fragment`  — the QF decomposition and Eq. (1) assembly
- :mod:`repro.spectra`   — normal modes, Lanczos + GAGQ Raman solver
- :mod:`repro.kernels`   — strength-reduced / batched compute kernels
- :mod:`repro.hpc`       — machine models, scheduler + offload simulation
- :mod:`repro.pipeline`  — the end-to-end driver
- :mod:`repro.analysis`  — peaks, band assignment, reference spectra
- :mod:`repro.devtools`  — physics-aware linter + runtime sanitizer
"""

__version__ = "1.0.0"

from repro.geometry import Geometry, build_polypeptide, water_box, water_molecule
from repro.pipeline import QFRamanPipeline
from repro.scf import RHF
from repro.scf.rks import RKS
from repro.dfpt import fragment_response, polarizability
from repro.fragment import decompose_system
from repro.spectra import normal_modes, raman_spectrum_dense, raman_spectrum_lanczos
from repro.hpc import ORISE, SUNWAY, simulate_qf_run

__all__ = [
    "Geometry",
    "build_polypeptide",
    "water_box",
    "water_molecule",
    "QFRamanPipeline",
    "RHF",
    "RKS",
    "fragment_response",
    "polarizability",
    "decompose_system",
    "normal_modes",
    "raman_spectrum_dense",
    "raman_spectrum_lanczos",
    "ORISE",
    "SUNWAY",
    "simulate_qf_run",
]
