import numpy as np
import pytest

from repro.geometry import water_molecule
from repro.kernels.worker import run_dfpt_cycle


@pytest.fixture(scope="module")
def water_cycle():
    return run_dfpt_cycle(water_molecule(), uniform_n=32, radial_points=30)


def test_all_four_phases_present(water_cycle):
    for phase in ("p1", "n1r", "poisson", "h1"):
        assert phase in water_cycle.flops, phase
        assert water_cycle.flops[phase] > 0
        assert phase in water_cycle.seconds


def test_flops_scale_with_system_size(water_cycle):
    from repro.geometry import water_dimer

    big = run_dfpt_cycle(water_dimer(), uniform_n=32, radial_points=30)
    # nbf doubles -> n1r (quadratic in nbf at fixed grid) grows ~4x
    ratio = big.flops["n1r"] / water_cycle.flops["n1r"]
    assert ratio > 2.0


def test_rate_helper(water_cycle):
    r = water_cycle.rate_gflops("n1r")
    assert r >= 0.0
    assert water_cycle.rate_gflops("nonexistent") == 0.0


def test_outputs_finite(water_cycle):
    assert np.isfinite(water_cycle.extras["h1_norm"])
    assert np.isfinite(water_cycle.extras["p1_norm"])
    assert water_cycle.extras["p1_norm"] > 0


def test_full_cphf_option():
    out = run_dfpt_cycle(water_molecule(), uniform_n=24, radial_points=24,
                         full_cphf=True)
    assert out.alpha is not None
    # LDA water polarizability ~ a few a.u.
    assert 1.0 < np.trace(out.alpha) / 3.0 < 10.0
