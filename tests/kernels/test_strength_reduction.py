import numpy as np
import pytest

from repro.kernels.strength_reduction import (
    h1_integration_naive,
    h1_integration_symmetric,
    rho1_gradient_naive,
    rho1_gradient_symmetric,
)
from repro.utils.flops import FlopCounter


@pytest.fixture()
def grid_data():
    rng = np.random.default_rng(0)
    chi = rng.normal(size=(300, 25))
    dchi = rng.normal(size=(300, 25))
    p1 = rng.normal(size=(25, 25))
    return chi, dchi, p1 + p1.T


def test_h1_variants_equal(grid_data):
    chi, dchi, _ = grid_data
    a = h1_integration_naive(chi, dchi)
    b = h1_integration_symmetric(chi, dchi)
    assert np.allclose(a, b, atol=1e-10)


def test_h1_flop_reduction_is_three(grid_data):
    chi, dchi, _ = grid_data
    f1, f2 = FlopCounter(), FlopCounter()
    h1_integration_naive(chi, dchi, f1)
    h1_integration_symmetric(chi, dchi, f2)
    assert f1.total("h1") / f2.total("h1") == pytest.approx(3.0)


def test_h1_output_symmetric(grid_data):
    chi, dchi, _ = grid_data
    out = h1_integration_symmetric(chi, dchi)
    assert np.allclose(out, out.T, atol=1e-12)


def test_rho1_variants_equal(grid_data):
    chi, dchi, p1 = grid_data
    a = rho1_gradient_naive(chi, dchi, p1)
    b = rho1_gradient_symmetric(chi, dchi, p1)
    assert np.allclose(a, b, atol=1e-10)


def test_rho1_flop_reduction_is_two(grid_data):
    chi, dchi, p1 = grid_data
    f1, f2 = FlopCounter(), FlopCounter()
    rho1_gradient_naive(chi, dchi, p1, f1)
    rho1_gradient_symmetric(chi, dchi, p1, f2)
    assert f1.total("rho1_grad") / f2.total("rho1_grad") == pytest.approx(2.0)


def test_rho1_symmetric_requires_symmetric_p(grid_data):
    chi, dchi, _ = grid_data
    rng = np.random.default_rng(1)
    p_asym = rng.normal(size=(25, 25))
    with pytest.raises(ValueError, match="symmetric"):
        rho1_gradient_symmetric(chi, dchi, p_asym)


def test_on_real_response_data(water_scf_df):
    """The identities must hold on genuine chi/grad-chi/P(1) data."""
    from repro.dfpt.cphf import CPHF
    from repro.scf.grid import build_grid, evaluate_basis

    cp = CPHF(water_scf_df).run()
    grid = build_grid(water_scf_df.geometry, radial_points=20, angular_order=6)
    chi, dchi = evaluate_basis(water_scf_df.basis, grid.points, derivative=True)
    p1 = cp.p1[2]
    for d in range(3):
        a = rho1_gradient_naive(chi, dchi[d], p1)
        b = rho1_gradient_symmetric(chi, dchi[d], p1)
        assert np.allclose(a, b, atol=1e-9)
