import numpy as np
import pytest

from repro.kernels.batched import BatchedGemmExecutor, pad_to_stride


def test_pad_to_stride():
    assert pad_to_stride(1) == 32
    assert pad_to_stride(32) == 32
    assert pad_to_stride(33) == 64
    assert pad_to_stride(100, stride=16) == 112
    with pytest.raises(ValueError):
        pad_to_stride(0)


def test_results_correct_in_submission_order():
    rng = np.random.default_rng(0)
    ex = BatchedGemmExecutor(min_batch=2)
    mats = [
        (rng.normal(size=(rng.integers(3, 40), 20)), rng.normal(size=(20, 11)))
        for _ in range(25)
    ]
    slots = [ex.submit(a, b) for a, b in mats]
    results = ex.flush()
    for slot, (a, b) in zip(slots, mats):
        assert np.allclose(results[slot], a @ b, atol=1e-10)


def test_batching_groups_same_padded_shape():
    rng = np.random.default_rng(1)
    ex = BatchedGemmExecutor(min_batch=4)
    # 30 and 25 both pad to 32: one batch
    for _ in range(8):
        m = int(rng.integers(25, 33))
        ex.submit(rng.normal(size=(m, 30)), rng.normal(size=(30, 28)))
    ex.flush()
    assert ex.batches_executed == 1
    assert ex.singles_executed == 0


def test_small_groups_run_individually():
    rng = np.random.default_rng(2)
    ex = BatchedGemmExecutor(min_batch=64)
    for _ in range(5):
        ex.submit(rng.normal(size=(10, 10)), rng.normal(size=(10, 10)))
    ex.flush()
    assert ex.batches_executed == 0
    assert ex.singles_executed == 5


def test_flop_accounting():
    ex = BatchedGemmExecutor(min_batch=1, stride=32)
    a = np.ones((10, 20))
    b = np.ones((20, 5))
    ex.submit(a, b)
    ex.flush()
    assert ex.flops.total("useful") == 2 * 10 * 5 * 20
    assert ex.flops.total("padded") == 2 * 32 * 32 * 32
    assert ex.padding_overhead() == pytest.approx(
        (2 * 32 ** 3) / (2 * 10 * 5 * 20)
    )


def test_no_padding_overhead_when_nothing_batched():
    ex = BatchedGemmExecutor(min_batch=99)
    ex.submit(np.ones((4, 4)), np.ones((4, 4)))
    ex.flush()
    assert ex.padding_overhead() == 1.0


def test_invalid_shapes_rejected():
    ex = BatchedGemmExecutor()
    with pytest.raises(ValueError):
        ex.submit(np.ones((3, 4)), np.ones((5, 6)))


def test_flush_clears_queue():
    ex = BatchedGemmExecutor(min_batch=1)
    ex.submit(np.ones((2, 2)), np.ones((2, 2)))
    assert ex.pending() == 1
    ex.flush()
    assert ex.pending() == 0
    assert ex.flush() == []
