"""Schwarz screening: rigorous bounds, bounded error, real pruning."""

import numpy as np
import pytest

from repro.basis.gaussian import build_basis
from repro.geometry import water_molecule
from repro.geometry.atoms import Geometry
from repro.integrals.engine import IntegralEngine
from repro.scf import RHF

CUTOFF = 1.0e-10


def _engine(geometry, schwarz_cutoff=0.0):
    basis = build_basis(geometry, "sto-3g")
    return IntegralEngine(
        basis, geometry.numbers.astype(float), geometry.coords,
        schwarz_cutoff=schwarz_cutoff,
    )


@pytest.fixture(scope="module")
def stretched_waters() -> Geometry:
    """Two waters ~8 Å apart: plenty of negligible cross pairs."""
    w = water_molecule()
    far = w.coords + np.array([15.0, 0.0, 0.0])  # bohr
    return Geometry(
        list(w.symbols) * 2, np.vstack([w.coords, far])
    )


def test_bounds_are_true_upper_bounds(water):
    """|(ab|cd)| <= Q_ab Q_cd for every pair combination (Cauchy-Schwarz)."""
    eng = _engine(water)
    bounds = eng.schwarz_bounds(eng.blocks)
    for bi, bra in enumerate(eng.blocks):
        for ki, ket in enumerate(eng.blocks):
            vals = eng.coulomb_block(bra, ket)
            # (npb, na, nb, npk, nc, nd) -> max |value| per (rb, rk)
            m = np.abs(vals).max(axis=(1, 2, 4, 5))
            bound = bounds[bi][:, None] * bounds[ki][None, :]
            assert np.all(m <= bound + 1e-12)


def test_screened_eri_matches_unscreened_to_cutoff(stretched_waters):
    eri0 = _engine(stretched_waters).eri()
    eng = _engine(stretched_waters, schwarz_cutoff=CUTOFF)
    eri1 = eng.eri()
    assert np.abs(eri1 - eri0).max() <= CUTOFF
    stats = eng.screen_stats
    assert stats["pair_combinations_screened"] > 0
    assert (
        stats["pair_combinations_evaluated"]
        + stats["pair_combinations_screened"]
        == stats["pair_combinations_total"]
    )


def test_cutoff_zero_disables_screening(water):
    eng = _engine(water, schwarz_cutoff=0.0)
    eng.eri()
    assert eng.screen_stats["pair_combinations_total"] == 0
    assert eng.screen_stats["pair_combinations_screened"] == 0


def test_rhf_energy_unchanged_while_pairs_screened(stretched_waters):
    """Acceptance: screening on, SCF energy unchanged to 1e-9 Ha while
    the pair-evaluation counter actually drops."""
    e_ref = RHF(stretched_waters, eri_mode="exact", schwarz_cutoff=0.0).run()
    scf = RHF(stretched_waters, eri_mode="exact", schwarz_cutoff=CUTOFF)
    e_scr = scf.run()
    assert e_ref.converged and e_scr.converged
    assert abs(e_scr.energy - e_ref.energy) < 1e-9
    stats = scf.engine.screen_stats
    assert stats["pair_combinations_screened"] > 0
    assert (
        stats["pair_combinations_evaluated"]
        < stats["pair_combinations_total"]
    )


def test_df_build_screened_matches_unscreened(stretched_waters):
    """The DF Coulomb/exchange tensors agree when (ab|P) is screened."""
    from repro.scf.df import DensityFitting, auto_aux_basis

    eng0 = _engine(stretched_waters)
    eng1 = _engine(stretched_waters, schwarz_cutoff=CUTOFF)
    basis = eng0.basis
    aux = auto_aux_basis(stretched_waters, basis)
    df0 = DensityFitting(eng0, aux)
    df1 = DensityFitting(eng1, aux)
    assert np.abs(df1.j3c - df0.j3c).max() <= CUTOFF
    assert eng1.screen_stats["pair_combinations_screened"] > 0
