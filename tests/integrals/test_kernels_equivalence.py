"""Scalar vs batched kernel dispatch must be *bit-identical*.

The batched mode (``QF_KERNELS=batched``, the default) vectorizes only
control flow — class-grouped pair-block construction and precomputed
scatter index plans — never the floating-point arithmetic itself, so
every matrix an :class:`IntegralEngine` builds must match the scalar
reference path exactly, not just to a tolerance. Hypothesis generates
random s/p/d shell corpora on random centers; the fixed geometries
additionally pin the regression where two p shells on different
centers exercise the transposed scatter image of square off-diagonal
blocks (na == nb > 1), which single-p-shell systems cannot see.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.basis.gaussian import BasisSet, build_basis, make_shell
from repro.geometry import water_box, water_molecule
from repro.integrals.batched import (
    build_pair_blocks_batched,
    kernels_mode,
)
from repro.integrals.engine import IntegralEngine, build_pair_blocks
from repro.scf.df import DensityFitting, auto_aux_basis


def _engines(basis, charges, coords, **kw):
    return (IntegralEngine(basis, charges, coords, kernels="scalar", **kw),
            IntegralEngine(basis, charges, coords, kernels="batched", **kw))


def _assert_engines_identical(scalar, batched, *, eri=True, derivs=True):
    pairs = [
        ("overlap", scalar.overlap(), batched.overlap()),
        ("kinetic", scalar.kinetic(), batched.kinetic()),
        ("nuclear", scalar.nuclear(), batched.nuclear()),
        ("dipole", scalar.dipole(), batched.dipole()),
    ]
    if eri:
        pairs.append(("eri", scalar.eri(), batched.eri()))
    if derivs:
        pairs += [
            ("overlap_deriv", scalar.overlap_deriv(),
             batched.overlap_deriv()),
            ("kinetic_deriv", scalar.kinetic_deriv(),
             batched.kinetic_deriv()),
        ]
        (vs, ws), (vb, wb) = scalar.nuclear_deriv(), batched.nuclear_deriv()
        pairs += [("nuclear_deriv", vs, vb), ("nuclear_deriv_atom", ws, wb)]
        if eri:
            pairs.append(("eri_deriv", scalar.eri_deriv(),
                          batched.eri_deriv()))
    for name, a, b in pairs:
        np.testing.assert_array_equal(
            a, b, err_msg=f"{name} differs between kernel modes"
        )


# -- fixed geometries ------------------------------------------------------

def test_water_sto3g_bit_identical():
    w = water_molecule()
    basis = build_basis(w, name="sto-3g")
    _assert_engines_identical(
        *_engines(basis, w.numbers.astype(float), w.coords)
    )


def test_two_p_centers_bit_identical():
    """Two oxygens: p shells on *different* centers, so the engine hits
    square (na == nb == 3) off-diagonal pair blocks whose transposed
    scatter image is order-sensitive — the regression geometry."""
    from repro.geometry.atoms import Geometry

    geom = Geometry(symbols=["O", "O"],
                    coords=np.array([[0.0, 0.0, 0.0], [0.0, 0.4, 2.1]]))
    basis = build_basis(geom, name="sto-3g")
    _assert_engines_identical(
        *_engines(basis, geom.numbers.astype(float), geom.coords)
    )


def test_waterbox_screened_bit_identical():
    box = water_box(2, seed=3)
    geom = box[0]
    for w in box[1:]:
        from repro.geometry.atoms import Geometry

        geom = Geometry(symbols=list(geom.symbols) + list(w.symbols),
                        coords=np.vstack([geom.coords, w.coords]))
    basis = build_basis(geom, name="sto-3g")
    _assert_engines_identical(
        *_engines(basis, geom.numbers.astype(float), geom.coords,
                  schwarz_cutoff=1e-10),
        derivs=False,
    )


def test_df_tensors_bit_identical():
    w = water_molecule()
    basis = build_basis(w, name="sto-3g")
    scalar, batched = _engines(basis, w.numbers.astype(float), w.coords)
    aux = auto_aux_basis(w, basis)
    dfs, dfb = DensityFitting(scalar, aux), DensityFitting(batched, aux)
    np.testing.assert_array_equal(dfs.j3c, dfb.j3c)
    np.testing.assert_array_equal(dfs.v2c, dfb.v2c)
    np.testing.assert_array_equal(dfs.b, dfb.b)

    naux = aux.nbf
    np.testing.assert_array_equal(
        scalar.three_center_deriv(dfs.aux_blocks, naux),
        batched.three_center_deriv(dfb.aux_blocks, naux),
    )
    np.testing.assert_array_equal(
        scalar.two_center_deriv(dfs.aux_blocks, naux),
        batched.two_center_deriv(dfb.aux_blocks, naux),
    )


# -- hypothesis corpora ----------------------------------------------------

shell_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),            # l: s/p/d
        st.integers(min_value=0, max_value=3),            # center index
        st.integers(min_value=1, max_value=3),            # n primitives
    ),
    min_size=1, max_size=6,
)


def _random_system(spec, seed):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-2.0, 2.0, size=(4, 3))
    shells = []
    for l, ci, k in spec:
        exps = np.sort(rng.uniform(0.1, 5.0, size=k))[::-1]
        coefs = rng.uniform(0.2, 1.0, size=k)
        shells.append(make_shell(l, centers[ci], exps, coefs, atom_index=ci))
    basis = BasisSet(shells)
    charges = np.ones(4)
    return basis, charges, centers


@settings(deadline=None, max_examples=20)
@given(spec=shell_strategy, seed=st.integers(min_value=0, max_value=2**31))
def test_random_corpora_one_electron_identical(spec, seed):
    basis, charges, centers = _random_system(spec, seed)
    scalar, batched = _engines(basis, charges, centers)
    for name in ("overlap", "kinetic", "nuclear", "dipole"):
        a, b = getattr(scalar, name)(), getattr(batched, name)()
        np.testing.assert_allclose(a, b, rtol=0.0, atol=1e-12)
        np.testing.assert_array_equal(a, b, err_msg=name)


@settings(deadline=None, max_examples=10)
@given(spec=shell_strategy, seed=st.integers(min_value=0, max_value=2**31))
def test_random_corpora_eri_identical(spec, seed):
    basis, charges, centers = _random_system(spec, seed)
    scalar, batched = _engines(basis, charges, centers)
    np.testing.assert_array_equal(scalar.eri(), batched.eri())


@settings(deadline=None, max_examples=20)
@given(spec=shell_strategy, seed=st.integers(min_value=0, max_value=2**31))
def test_random_corpora_pair_blocks_identical(spec, seed):
    """The vectorized block builder must reproduce the loop builder's
    blocks exactly: same classes, same pair order, same packed arrays."""
    basis, _, _ = _random_system(spec, seed)
    loop = build_pair_blocks(basis.shells, basis.offsets)
    vec = build_pair_blocks_batched(basis.shells, basis.offsets)
    assert len(loop) == len(vec)
    for lb, vb in zip(loop, vec):
        assert (lb.la, lb.lb, lb.k2, lb.npair) == \
            (vb.la, vb.lb, vb.k2, vb.npair)
        for field in ("ishell", "jshell", "off_a", "off_b", "atom_a",
                      "atom_b", "a", "b", "cc", "ab_vec", "centers_a",
                      "p", "pc"):
            np.testing.assert_array_equal(
                getattr(lb, field), getattr(vb, field),
                err_msg=f"PairBlock.{field} differs for class "
                        f"({lb.la},{lb.lb})",
            )


# -- mode plumbing ---------------------------------------------------------

def test_kernels_mode_default_and_env(monkeypatch):
    monkeypatch.delenv("QF_KERNELS", raising=False)
    assert kernels_mode() == "batched"
    monkeypatch.setenv("QF_KERNELS", "scalar")
    assert kernels_mode() == "scalar"
    assert kernels_mode("batched") == "batched"   # explicit override wins
    monkeypatch.setenv("QF_KERNELS", "typo")
    with pytest.raises(ValueError):
        kernels_mode()


def test_engine_records_gemm_accounting():
    from repro.kernels.batched import kernel_seam

    seam = kernel_seam()
    before = (seam.batches_executed, seam.flops.total("useful"))
    w = water_molecule()
    basis = build_basis(w, name="sto-3g")
    eng = IntegralEngine(basis, w.numbers.astype(float), w.coords,
                         kernels="batched")
    eng.overlap()
    assert seam.batches_executed > before[0]
    assert seam.flops.total("useful") > before[1]
