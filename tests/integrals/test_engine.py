"""Vectorized engine vs the scalar reference and analytic identities."""

import numpy as np
import pytest

from repro.basis import build_basis
from repro.geometry import water_molecule
from repro.geometry.atoms import Geometry
from repro.integrals import mcmurchie as mm
from repro.integrals.engine import (
    IntegralEngine,
    boys_vec,
    components,
    e_coeffs_1d,
    hermite_coulomb_vec,
    single_shell_blocks,
)


@pytest.fixture(scope="module")
def water_engine():
    w = water_molecule()
    basis = build_basis(w)
    return w, basis, IntegralEngine(basis, w.numbers.astype(float), w.coords)


def test_components_ordering():
    assert components(1) == ((1, 0, 0), (0, 1, 0), (0, 0, 1))
    assert len(components(3)) == 10
    for l in range(5):
        assert all(sum(c) == l for c in components(l))


def test_boys_vec_matches_scalar():
    t = np.array([0.0, 1e-14, 0.3, 2.7, 19.0, 150.0])
    f = boys_vec(4, t)
    for i, tv in enumerate(t):
        for n in range(5):
            assert f[i, n] == pytest.approx(mm.boys(n, tv), rel=1e-11)


def test_e_coeffs_match_scalar():
    rng = np.random.default_rng(2)
    a = rng.uniform(0.2, 3.0, size=6)
    b = rng.uniform(0.2, 3.0, size=6)
    qx = rng.uniform(-2.0, 2.0, size=6)
    e = e_coeffs_1d(2, 2, a, b, qx)
    for n in range(6):
        for i in range(3):
            for j in range(3):
                for t in range(i + j + 1):
                    assert e[n, i, j, t] == pytest.approx(
                        mm.hermite_e(i, j, t, qx[n], a[n], b[n]), rel=1e-11,
                        abs=1e-13,
                    )


def test_e_coeffs_zero_exponent_partner():
    """b = 0 (dummy shell): E must reduce to single-Gaussian Hermite
    coefficients without NaNs."""
    a = np.array([1.5])
    b = np.array([0.0])
    qx = np.array([0.0])
    e = e_coeffs_1d(2, 0, a, b, qx)
    assert np.all(np.isfinite(e))
    assert e[0, 0, 0, 0] == pytest.approx(1.0)
    # x^2 gaussian = (1/(2p)) Lambda_0 ... t=2 coefficient = 1/(2p)^2? check
    # against recursion: E(1,0,1) = 1/(2p)
    assert e[0, 1, 0, 1] == pytest.approx(1.0 / (2 * 1.5))


def test_hermite_coulomb_matches_scalar():
    rng = np.random.default_rng(3)
    p = rng.uniform(0.3, 4.0, size=5)
    pq = rng.uniform(-1.5, 1.5, size=(5, 3))
    r = hermite_coulomb_vec(2, 2, 2, p, pq)
    for n in range(5):
        for t in range(3):
            for u in range(3):
                for v in range(3):
                    if t + u + v > 6:
                        continue
                    ref = mm._r_cached(
                        t, u, v, 0, p[n], pq[n, 0], pq[n, 1], pq[n, 2]
                    )
                    assert r[n, t, u, v] == pytest.approx(ref, rel=1e-10, abs=1e-12)


def test_one_electron_vs_scalar(water_engine):
    w, basis, eng = water_engine
    nbf = basis.nbf
    s_ref = np.zeros((nbf, nbf))
    t_ref = np.zeros((nbf, nbf))
    v_ref = np.zeros((nbf, nbf))
    charges = w.numbers.astype(float)
    for i, shi in enumerate(basis.shells):
        for j, shj in enumerate(basis.shells):
            oi, oj = basis.offsets[i], basis.offsets[j]
            s_ref[oi: oi + shi.nfuncs, oj: oj + shj.nfuncs] = mm.overlap_shell(shi, shj)
            t_ref[oi: oi + shi.nfuncs, oj: oj + shj.nfuncs] = mm.kinetic_shell(shi, shj)
            v_ref[oi: oi + shi.nfuncs, oj: oj + shj.nfuncs] = mm.nuclear_shell(
                shi, shj, charges, w.coords
            )
    assert np.allclose(eng.overlap(), s_ref, atol=1e-12)
    assert np.allclose(eng.kinetic(), t_ref, atol=1e-12)
    assert np.allclose(eng.nuclear(), v_ref, atol=1e-11)


def test_nuclear_per_atom_sums_to_total(water_engine):
    _w, _basis, eng = water_engine
    per_atom = eng.nuclear(per_atom=True)
    assert per_atom.shape[0] == 3
    assert np.allclose(per_atom.sum(axis=0), eng.nuclear(), atol=1e-12)


def test_dipole_vs_scalar(water_engine):
    w, basis, eng = water_engine
    dip = eng.dipole()
    for d in range(3):
        for i, shi in enumerate(basis.shells):
            for j, shj in enumerate(basis.shells):
                oi, oj = basis.offsets[i], basis.offsets[j]
                ref = mm.dipole_shell(shi, shj, d, np.zeros(3))
                got = dip[d, oi: oi + shi.nfuncs, oj: oj + shj.nfuncs]
                assert np.allclose(got, ref, atol=1e-12)


def test_eri_vs_scalar_random_quartets(water_engine):
    _w, basis, eng = water_engine
    eri = eng.eri()
    rng = np.random.default_rng(4)
    for _ in range(10):
        i, j, k, l = rng.integers(0, basis.nshells, size=4)
        ref = mm.eri_shell(
            basis.shells[i], basis.shells[j], basis.shells[k], basis.shells[l]
        )
        oi, oj, ok, ol = (basis.offsets[x] for x in (i, j, k, l))
        got = eri[
            oi: oi + basis.shells[i].nfuncs,
            oj: oj + basis.shells[j].nfuncs,
            ok: ok + basis.shells[k].nfuncs,
            ol: ol + basis.shells[l].nfuncs,
        ]
        assert np.allclose(got, ref, atol=1e-12)


def test_eri_eightfold_symmetry(water_engine):
    _w, _basis, eng = water_engine
    eri = eng.eri()
    assert np.allclose(eri, eri.transpose(1, 0, 2, 3), atol=1e-11)
    assert np.allclose(eri, eri.transpose(0, 1, 3, 2), atol=1e-11)
    assert np.allclose(eri, eri.transpose(2, 3, 0, 1), atol=1e-11)


def test_single_shell_blocks_cover_all(water_engine):
    _w, basis, _eng = water_engine
    blocks = single_shell_blocks(basis.shells, basis.offsets)
    covered = sorted(
        int(i) for blk in blocks for i in blk.ishell
    )
    assert covered == list(range(basis.nshells))
    for blk in blocks:
        assert np.all(blk.b == 0.0)


def test_df_two_center_is_coulomb_metric(water_engine):
    """(P|Q) from dummy-paired blocks must be symmetric positive
    definite (it is a Coulomb Gram matrix)."""
    w, basis, eng = water_engine
    from repro.scf.df import auto_aux_basis

    aux = auto_aux_basis(w, basis)
    blocks = single_shell_blocks(aux.shells, aux.offsets)
    naux = aux.nbf
    v = np.zeros((naux, naux))
    for bi, bra in enumerate(blocks):
        for ket in blocks:
            vals = eng.coulomb_block(bra, ket)
            for rb in range(bra.npair):
                for rk in range(ket.npair):
                    oa, oc = bra.off_a[rb], ket.off_a[rk]
                    v[oa: oa + vals.shape[1], oc: oc + vals.shape[4]] = vals[
                        rb, :, 0, rk, :, 0
                    ]
    assert np.allclose(v, v.T, atol=1e-10)
    evals = np.linalg.eigvalsh(v)
    assert evals.min() > 0
