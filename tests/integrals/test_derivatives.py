"""Derivative integrals against finite differences."""

import numpy as np
import pytest

from repro.basis import build_basis
from repro.geometry import water_molecule
from repro.integrals.engine import IntegralEngine, single_shell_blocks
from repro.scf.df import auto_aux_basis

DELTA = 1.0e-5


def _engine(geom):
    basis = build_basis(geom)
    return IntegralEngine(basis, geom.numbers.astype(float), geom.coords), basis


@pytest.fixture(scope="module")
def water():
    return water_molecule()


@pytest.fixture(scope="module")
def derivs(water):
    eng, basis = _engine(water)
    ds = eng.overlap_deriv()
    dt = eng.kinetic_deriv()
    dvb, dvn = eng.nuclear_deriv()
    return eng, basis, ds, dt, dvb, dvn


@pytest.mark.parametrize("atom,axis", [(0, 0), (0, 2), (1, 1), (2, 0)])
def test_one_electron_derivatives_vs_fd(water, derivs, atom, axis):
    eng, basis, ds, dt, dvb, dvn = derivs
    amap = basis.function_atom_map()
    sel = amap == atom
    ep, _ = _engine(water.displaced(atom, axis, DELTA))
    em, _ = _engine(water.displaced(atom, axis, -DELTA))

    fd_s = (ep.overlap() - em.overlap()) / (2 * DELTA)
    an_s = ds[axis] * sel[:, None] + ds[axis].T * sel[None, :]
    assert np.allclose(an_s, fd_s, atol=5e-9)

    fd_t = (ep.kinetic() - em.kinetic()) / (2 * DELTA)
    an_t = dt[axis] * sel[:, None] + dt[axis].T * sel[None, :]
    assert np.allclose(an_t, fd_t, atol=5e-9)

    fd_v = (ep.nuclear() - em.nuclear()) / (2 * DELTA)
    an_v = dvb[axis] * sel[:, None] + dvb[axis].T * sel[None, :] + dvn[axis, atom]
    assert np.allclose(an_v, fd_v, atol=5e-8)


def test_overlap_deriv_translational_invariance(derivs):
    """Summing the bra/ket slot derivatives over all atoms must vanish
    (a rigid translation leaves every integral unchanged)."""
    _eng, basis, ds, _dt, _dvb, _dvn = derivs
    amap = basis.function_atom_map()
    natm = amap.max() + 1
    total = np.zeros_like(ds)
    for atom in range(natm):
        sel = amap == atom
        for x in range(3):
            total[x] += ds[x] * sel[:, None] + ds[x].T * sel[None, :]
    assert np.allclose(total, 0.0, atol=1e-10)


def test_three_center_deriv_vs_fd(water):
    eng, basis = _engine(water)
    aux = auto_aux_basis(water, basis)
    blocks = single_shell_blocks(aux.shells, aux.offsets)
    d3 = eng.three_center_deriv(blocks, aux.nbf)
    amap = basis.function_atom_map()
    aux_amap = aux.function_atom_map()

    def j3c(geom):
        e, b = _engine(geom)
        from repro.scf.df import DensityFitting

        a = auto_aux_basis(geom, b)
        return DensityFitting(e, a).j3c

    atom, axis = 0, 2
    fd = (
        j3c(water.displaced(atom, axis, DELTA))
        - j3c(water.displaced(atom, axis, -DELTA))
    ) / (2 * DELTA)
    sel = amap == atom
    sel_aux = aux_amap == atom
    an = (
        d3[axis] * sel[:, None, None]
        + d3[axis].transpose(1, 0, 2) * sel[None, :, None]
        + (-d3[axis] - d3[axis].transpose(1, 0, 2)) * sel_aux[None, None, :]
    )
    assert np.allclose(an, fd, atol=5e-8)


def test_two_center_deriv_vs_fd(water):
    eng, basis = _engine(water)
    aux = auto_aux_basis(water, basis)
    blocks = single_shell_blocks(aux.shells, aux.offsets)
    dv2 = eng.two_center_deriv(blocks, aux.nbf)
    aux_amap = aux.function_atom_map()

    def v2c(geom):
        e, b = _engine(geom)
        from repro.scf.df import DensityFitting

        a = auto_aux_basis(geom, b)
        return DensityFitting(e, a).v2c

    atom, axis = 1, 0
    fd = (
        v2c(water.displaced(atom, axis, DELTA))
        - v2c(water.displaced(atom, axis, -DELTA))
    ) / (2 * DELTA)
    sel = aux_amap == atom
    an = dv2[axis] * sel[:, None] + dv2[axis].T * sel[None, :]
    assert np.allclose(an, fd, atol=5e-8)


def test_eri_deriv_vs_fd_h2():
    from repro.geometry.atoms import Geometry

    g = Geometry(["H", "H"], np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.5]]))
    eng, basis = _engine(g)
    deri = eng.eri_deriv()
    amap = basis.function_atom_map()
    atom, axis = 1, 2
    ep, _ = _engine(g.displaced(atom, axis, DELTA))
    em, _ = _engine(g.displaced(atom, axis, -DELTA))
    fd = (ep.eri() - em.eri()) / (2 * DELTA)
    sel = amap == atom
    an = (
        deri[axis] * sel[:, None, None, None]
        + deri[axis].transpose(1, 0, 2, 3) * sel[None, :, None, None]
        + deri[axis].transpose(2, 3, 0, 1) * sel[None, None, :, None]
        + deri[axis].transpose(3, 2, 0, 1).transpose(0, 1, 3, 2)
        * sel[None, None, None, :]
    )
    assert np.allclose(an, fd, atol=1e-8)
