"""Scalar reference integrals against closed forms and textbook values."""

import math

import numpy as np
import pytest

from repro.basis.gaussian import build_basis, make_shell
from repro.geometry.atoms import Geometry
from repro.integrals import mcmurchie as mm


def test_boys_zero_argument():
    for n in range(6):
        assert mm.boys(n, 0.0) == pytest.approx(1.0 / (2 * n + 1))


def test_boys_large_argument_asymptotic():
    # F_0(t) -> sqrt(pi/t)/2 for large t
    t = 80.0
    assert mm.boys(0, t) == pytest.approx(0.5 * math.sqrt(math.pi / t), rel=1e-10)


def test_boys_downward_consistency():
    # recursion identity F_{n-1} = (2t F_n + e^-t) / (2n-1)
    t = 3.7
    for n in range(1, 6):
        lhs = mm.boys(n - 1, t)
        rhs = (2 * t * mm.boys(n, t) + math.exp(-t)) / (2 * n - 1)
        assert lhs == pytest.approx(rhs, rel=1e-12)


def test_hermite_e_gaussian_product_base():
    # E_0^{00} = exp(-q Qx^2)
    a, b, qx = 0.8, 1.3, 0.7
    q = a * b / (a + b)
    assert mm.hermite_e(0, 0, 0, qx, a, b) == pytest.approx(math.exp(-q * qx * qx))


def test_overlap_two_s_primitives_closed_form():
    # <s_a|s_b> = (pi/p)^{3/2} exp(-q R^2)
    a, b = 0.5, 0.9
    ra = np.zeros(3)
    rb = np.array([0.0, 0.0, 1.1])
    p = a + b
    q = a * b / p
    expect = (math.pi / p) ** 1.5 * math.exp(-q * 1.1 ** 2)
    got = mm.overlap_prim(a, (0, 0, 0), ra, b, (0, 0, 0), rb)
    assert got == pytest.approx(expect, rel=1e-13)


def test_kinetic_s_primitive_same_center():
    # <s|T|s> for equal exponents a: T = 3 a/2 * S ... closed form:
    # <g_a|-1/2 del^2|g_a> = (3 a / 2) (pi/2a)^{3/2} for unnormalized
    a = 1.1
    got = mm.kinetic_prim(a, (0, 0, 0), np.zeros(3), a, (0, 0, 0), np.zeros(3))
    s = (math.pi / (2 * a)) ** 1.5
    assert got == pytest.approx(1.5 * a * s * 0.5 * 2, rel=1e-12)


def test_szabo_h2_integrals():
    """Szabo & Ostlund Table 3.5 values for H2/STO-3G at R = 1.4 a0."""
    g = Geometry(["H", "H"], np.array([[0, 0, 0], [0, 0, 1.4]]))
    basis = build_basis(g)
    s = mm.overlap_shell(basis.shells[0], basis.shells[1])[0, 0]
    t11 = mm.kinetic_shell(basis.shells[0], basis.shells[0])[0, 0]
    t12 = mm.kinetic_shell(basis.shells[0], basis.shells[1])[0, 0]
    charges = g.numbers.astype(float)
    v11 = mm.nuclear_shell(basis.shells[0], basis.shells[0], charges, g.coords)[0, 0]
    assert s == pytest.approx(0.6593, abs=2e-4)
    assert t11 == pytest.approx(0.7600, abs=2e-4)
    assert t12 == pytest.approx(0.2365, abs=2e-4)
    assert v11 == pytest.approx(-1.8804, abs=3e-4)
    eri_1111 = mm.eri_shell(*([basis.shells[0]] * 4))[0, 0, 0, 0]
    eri_1122 = mm.eri_shell(
        basis.shells[0], basis.shells[0], basis.shells[1], basis.shells[1]
    )[0, 0, 0, 0]
    eri_1212 = mm.eri_shell(
        basis.shells[0], basis.shells[1], basis.shells[0], basis.shells[1]
    )[0, 0, 0, 0]
    assert eri_1111 == pytest.approx(0.7746, abs=2e-4)
    assert eri_1122 == pytest.approx(0.5697, abs=2e-4)
    assert eri_1212 == pytest.approx(0.2970, abs=2e-4)


def test_eri_permutation_symmetry():
    sh1 = make_shell(0, (0.0, 0.0, 0.0), [0.9], [1.0])
    sh2 = make_shell(1, (0.0, 0.5, 1.0), [0.6], [1.0])
    a = mm.eri_shell(sh1, sh2, sh1, sh2)
    b = mm.eri_shell(sh2, sh1, sh2, sh1)
    assert np.allclose(a, b.transpose(1, 0, 3, 2), atol=1e-13)
    c = mm.eri_shell(sh1, sh2, sh2, sh1)
    assert np.allclose(a, c.transpose(0, 1, 3, 2), atol=1e-13)


def test_dipole_s_functions_centered():
    # dipole of a symmetric s function about its center is zero
    sh = make_shell(0, (1.0, 2.0, 3.0), [0.8], [1.0])
    for d in range(3):
        val = mm.dipole_shell(sh, sh, d, np.array([1.0, 2.0, 3.0]))[0, 0]
        assert val == pytest.approx(0.0, abs=1e-14)


def test_dipole_translation_relation():
    # <a|(r - O)|b> shifts by -dO * S when the origin moves
    sh1 = make_shell(0, (0.0, 0.0, 0.0), [0.8], [1.0])
    sh2 = make_shell(0, (0.0, 0.0, 1.0), [1.2], [1.0])
    s = mm.overlap_shell(sh1, sh2)[0, 0]
    d0 = mm.dipole_shell(sh1, sh2, 2, np.zeros(3))[0, 0]
    d1 = mm.dipole_shell(sh1, sh2, 2, np.array([0.0, 0.0, 0.5]))[0, 0]
    assert d1 == pytest.approx(d0 - 0.5 * s, rel=1e-12)


# -- bounded memoization (QF_MEMO_SIZE, docs/performance.md) ---------------

def test_bounded_memo_respects_bound_and_lru():
    memo = mm.BoundedMemo(maxsize=3)
    for k in range(3):
        memo[k] = k * 10
    assert memo.get(0) == 0          # refresh 0 -> LRU victim is now 1
    memo[3] = 30
    assert len(memo) == 3
    assert 1 not in memo and 0 in memo and 3 in memo


def test_memo_bound_env_override(monkeypatch):
    monkeypatch.delenv(mm.MEMO_ENV, raising=False)
    assert mm.memo_bound() == 4096
    monkeypatch.setenv(mm.MEMO_ENV, "8")
    assert mm.memo_bound() == 8
    assert mm.BoundedMemo().maxsize == 8
    for bad in ("zero", "0", "-3"):
        monkeypatch.setenv(mm.MEMO_ENV, bad)
        with pytest.raises(ValueError):
            mm.memo_bound()


def test_memo_bound_enforced_during_integration(monkeypatch):
    """Even a tiny bound must hold throughout a real contracted d-shell
    ERI evaluation — and the numbers may not change."""
    sh1 = make_shell(2, (0.0, 0.1, 0.2), [1.3, 0.4], [0.7, 0.5])
    sh2 = make_shell(1, (0.9, 0.0, 0.3), [0.8], [1.0])
    from repro.obs.counters import counters

    monkeypatch.delenv(mm.MEMO_ENV, raising=False)
    ref = mm.eri_shell(sh1, sh2, sh2, sh1)
    mm.reset_memo_stats()
    reg = counters()
    evicted_before = reg.get("mcmurchie.memo_evictions")
    monkeypatch.setenv(mm.MEMO_ENV, "4")
    tight = mm.eri_shell(sh1, sh2, sh2, sh1)
    # the drivers flush hits/misses/evictions into the counter registry
    # at shell granularity; peak survives in the module aggregate
    assert mm.memo_stats()["peak"] <= 4
    assert reg.get("mcmurchie.memo_evictions") > evicted_before
    np.testing.assert_array_equal(ref, tight)
    mm.reset_memo_stats()


def test_memo_stats_flow_to_counters(monkeypatch):
    from repro.obs.counters import counters

    mm.reset_memo_stats()
    reg = counters()
    before = reg.get("mcmurchie.memo_hits")
    sh = make_shell(1, (0.0, 0.0, 0.0), [0.9, 0.3], [0.6, 0.5])
    mm.overlap_shell(sh, sh)         # drivers flush at shell granularity
    assert reg.get("mcmurchie.memo_hits") > before
    assert mm.memo_stats()["hits"] == 0   # flushed, not double-counted
    mm.reset_memo_stats()
