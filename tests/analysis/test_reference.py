import numpy as np
import pytest

from repro.analysis.reference import (
    PROTEIN_BANDS,
    RHF_STO3G_FREQUENCY_SCALE,
    WATER_BANDS,
    reference_spectrum,
)


def test_band_tables_well_formed():
    for bands in (PROTEIN_BANDS, WATER_BANDS):
        for (name, center, width, height) in bands:
            assert isinstance(name, str)
            assert 0 < center < 4000
            assert width > 0
            assert 0 < height <= 1.0


def test_paper_named_bands_present():
    names = [b[0] for b in PROTEIN_BANDS]
    assert "phe_ring_breathing" in names      # ~1030 cm^-1 (Fig. 12a)
    assert "ch2_bending" in names             # ~1450
    assert "amide_III" in names
    assert "amide_I" in names
    assert "ch_stretch" in names              # ~2900 (Fig. 12b)


def test_reference_spectrum_normalized():
    omega = np.linspace(0, 4000, 2000)
    y = reference_spectrum(omega, PROTEIN_BANDS)
    assert y.max() == pytest.approx(1.0)
    assert y.min() >= 0.0


def test_reference_spectrum_peaks_at_bands():
    omega = np.linspace(0, 4000, 8000)
    y = reference_spectrum(omega, WATER_BANDS)
    # O-H stretch is the dominant band
    assert abs(omega[np.argmax(y)] - 3400.0) < 10


def test_scale_factor_in_standard_range():
    assert 0.8 <= RHF_STO3G_FREQUENCY_SCALE <= 0.92
