import numpy as np
import pytest

from repro.analysis.compare import band_assignment, spectral_overlap
from repro.analysis.reference import WATER_BANDS, reference_spectrum


def test_overlap_identical_is_one():
    y = np.random.default_rng(0).random(100)
    assert spectral_overlap(y, y) == pytest.approx(1.0)


def test_overlap_orthogonal_is_zero():
    a = np.array([1.0, 0.0])
    b = np.array([0.0, 1.0])
    assert spectral_overlap(a, b) == pytest.approx(0.0)


def test_overlap_scale_invariant():
    y = np.random.default_rng(1).random(50)
    assert spectral_overlap(y, 7.3 * y) == pytest.approx(1.0)


def test_overlap_zero_spectrum():
    assert spectral_overlap(np.zeros(10), np.ones(10)) == 0.0


def test_band_assignment_exact_match():
    omega = np.linspace(0, 4000, 4000)
    y = reference_spectrum(omega, WATER_BANDS)
    out = band_assignment(omega, y, WATER_BANDS)
    for name, info in out.items():
        assert info["found_cm1"] is not None, name
        assert abs(info["error_cm1"]) < 15.0


def test_band_assignment_with_scaling():
    """Computed axis 1/0.84 too high; scaling must recover matches."""
    omega = np.linspace(0, 5000, 5000)
    scale = 0.84
    shifted = reference_spectrum(omega * scale, WATER_BANDS)
    out = band_assignment(omega, shifted, WATER_BANDS, frequency_scale=scale)
    assert out["oh_stretch"]["found_cm1"] is not None


def test_band_assignment_missing_band():
    omega = np.linspace(0, 4000, 2000)
    y = np.exp(-((omega - 500.0) ** 2) / 800.0)
    out = band_assignment(omega, y, WATER_BANDS)
    assert out["oh_stretch"]["found_cm1"] is None
