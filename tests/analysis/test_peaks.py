import numpy as np
import pytest

from repro.analysis.peaks import find_peaks


def _spectrum(centers, heights, sigma=20.0):
    omega = np.linspace(0, 4000, 4001)
    y = np.zeros_like(omega)
    for c, h in zip(centers, heights):
        y += h * np.exp(-((omega - c) ** 2) / (2 * sigma ** 2))
    return omega, y


def test_finds_isolated_peaks():
    omega, y = _spectrum([500, 1500, 3000], [1.0, 0.5, 0.8])
    peaks = find_peaks(omega, y)
    assert len(peaks) == 3
    assert [round(p.position_cm1) for p in peaks] == [500, 1500, 3000]


def test_height_threshold():
    omega, y = _spectrum([500, 1500], [1.0, 0.005])
    peaks = find_peaks(omega, y, min_height_fraction=0.02)
    assert len(peaks) == 1


def test_min_separation_keeps_taller():
    omega, y = _spectrum([1000, 1015], [1.0, 0.9], sigma=8.0)
    peaks = find_peaks(omega, y, min_separation_cm1=40.0)
    assert len(peaks) == 1
    assert abs(peaks[0].position_cm1 - 1000) < 10


def test_empty_and_flat():
    omega = np.linspace(0, 100, 50)
    assert find_peaks(omega, np.zeros(50)) == []
    assert find_peaks(np.zeros(2), np.zeros(2)) == []


def test_mismatched_shapes():
    with pytest.raises(ValueError):
        find_peaks(np.zeros(5), np.zeros(6))


def test_peaks_sorted_by_position():
    omega, y = _spectrum([3000, 500, 1500], [0.5, 1.0, 0.8])
    peaks = find_peaks(omega, y)
    positions = [p.position_cm1 for p in peaks]
    assert positions == sorted(positions)


def test_prominence_positive():
    omega, y = _spectrum([800, 1200], [1.0, 0.7], sigma=60.0)
    for p in find_peaks(omega, y):
        assert p.prominence > 0
