import json

from repro.analysis.report import generate_report


def test_empty_directory(tmp_path):
    out = generate_report(tmp_path)
    assert "no results" in out


def test_report_renders_sections(tmp_path):
    (tmp_path / "fig10_orise_protein.json").write_text(json.dumps({
        "rows": [{"nodes": 1500, "measured": 99.5, "paper": 96.7}],
        "throughput750": 92.1,
    }))
    (tmp_path / "fig9_speedups.json").write_text(json.dumps({
        "ORISE": [{"natoms": 9, "sym": 2.4, "sym_offload": 4.9}],
    }))
    (tmp_path / "fig12b_water.json").write_text(json.dumps({
        "bands": {"oh_stretch": {"expected_cm1": 3400.0, "found_cm1": 3470.0}},
    }))
    out = generate_report(tmp_path)
    assert "Fig. 10" in out and "| 1500 | 99.5 | 96.7 |" in out
    assert "ORISE" in out and "| 9 | 2.4 | 4.9 |" in out
    assert "oh_stretch" in out


def test_report_tolerates_bad_json(tmp_path):
    (tmp_path / "broken.json").write_text("{not json")
    out = generate_report(tmp_path)
    assert "broken" in out


def test_report_on_real_outputs():
    """If benchmark outputs exist in the repo, the report must render."""
    from pathlib import Path

    outdir = Path(__file__).parents[2] / "benchmarks" / "output"
    if not outdir.exists():
        return
    out = generate_report(outdir)
    assert "# Benchmark report" in out
