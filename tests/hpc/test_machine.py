import pytest

from repro.hpc.machine import ORISE, SUNWAY


def test_orise_matches_paper_counts():
    # 750 nodes x 32 processes = 24,000 (paper §VII-B)
    assert 750 * ORISE.processes_per_node == 24000
    assert ORISE.total_nodes == 6000
    assert ORISE.accelerators_per_node == 4


def test_sunway_matches_paper_counts():
    # 12,000 nodes x 6 processes = 72,000 (paper §VII-B)
    assert 12000 * SUNWAY.processes_per_node == 72000
    assert SUNWAY.total_nodes == 96000


def test_peak_pflops_back_derivation():
    """Table I: ORISE 85.27 PFLOPS at 53.8% -> 158.5 PF peak on 24,000
    GPUs; Sunway 399.90 at 29.5% -> 1355.6 PF peak on 96,000 nodes."""
    assert ORISE.peak_pflops(6000) == pytest.approx(85.27 / 0.538, rel=0.01)
    assert SUNWAY.peak_pflops(96000) == pytest.approx(399.90 / 0.295, rel=0.01)


def test_with_nodes():
    m = ORISE.with_nodes(750)
    assert m.total_nodes == 750
    with pytest.raises(ValueError):
        ORISE.with_nodes(7000)


def test_workers_per_leader():
    assert ORISE.workers_per_leader == 31
    assert SUNWAY.workers_per_leader == 5


def test_sunway_unified_memory():
    assert SUNWAY.offload_transfer_gbps == 0.0
    assert ORISE.offload_transfer_gbps > 0.0


def test_master_saturation_scaling():
    from repro.hpc.machine import master_saturation_nodes

    n1 = master_saturation_nodes(ORISE, mean_task_seconds=1.0)
    n2 = master_saturation_nodes(ORISE, mean_task_seconds=10.0)
    assert n2 == pytest.approx(10 * n1)
    # at the paper's ~8 s protein tasks, the master is far from
    # saturation even at 6,000 nodes — scaling is limited by load
    # balance, not master throughput (consistent with Fig. 10)
    assert master_saturation_nodes(ORISE, 8.0) > 6000


def test_master_saturation_validates():
    from repro.hpc.machine import master_saturation_nodes

    with pytest.raises(ValueError):
        master_saturation_nodes(ORISE, 0.0)
