import numpy as np
import pytest

from repro.hpc.costmodel import FragmentCostModel
from repro.hpc.machine import ORISE
from repro.hpc.tracing import TaskInterval, TraceRecorder, traced_simulation


def test_recorder_basic():
    tr = TraceRecorder()
    tr.record(0, 0.0, 1.0, 3)
    tr.record(1, 0.5, 2.0, 1, reissue=True)
    assert tr.makespan() == pytest.approx(2.0)
    assert tr.utilization(2) == pytest.approx((1.0 + 1.5) / (2 * 2.0))


def test_recorder_validates():
    with pytest.raises(ValueError):
        TraceRecorder().record(0, 2.0, 1.0, 1)


def test_gantt_renders():
    tr = TraceRecorder()
    tr.record(0, 0.0, 1.0, 2)
    tr.record(1, 1.0, 2.0, 2, reissue=True)
    chart = tr.gantt(2, width=40)
    lines = chart.splitlines()
    assert lines[0].startswith("L0")
    assert "#" in lines[0]
    assert "R" in lines[1]


def test_gantt_empty():
    assert "empty" in TraceRecorder().gantt(2)


def test_traced_simulation_consistency():
    sizes = np.full(200, 12)
    cm = FragmentCostModel(scale=0.1)
    report, trace = traced_simulation(ORISE, 8, sizes, cm, seed=0)
    assert report.n_fragments == 200
    assert trace.makespan() <= report.finish_times.max() + 1e-9
    assert 0.0 < trace.utilization(8) <= 1.0
    chart = trace.gantt(8)
    assert chart.count("\n") == 8  # 8 leader rows + footer


def test_trace_records_every_real_task():
    """One interval per executed task — not a per-leader synthesis."""
    sizes = np.full(200, 12)
    cm = FragmentCostModel(scale=0.1)
    report, trace = traced_simulation(ORISE, 8, sizes, cm, seed=0)
    assert len(trace.intervals) == int(report.tasks_assigned.sum())
    assert not any(iv.reissue for iv in trace.intervals)
    # per-leader busy time in the trace matches the report exactly
    for leader in range(8):
        busy = sum(iv.end - iv.start for iv in trace.intervals
                   if iv.leader == leader)
        assert busy == pytest.approx(report.busy_times[leader])
    assert trace.makespan() == pytest.approx(report.finish_times.max())


def test_trace_includes_speculative_reissues():
    sizes = np.full(120, 12)
    cm = FragmentCostModel(scale=0.1)
    report, trace = traced_simulation(
        ORISE, 6, sizes, cm, seed=1, straggler_prob=0.2
    )
    reissues = [iv for iv in trace.intervals if iv.reissue]
    assert reissues, "fault-tolerant run must reissue straggler tasks"
    assert len(trace.intervals) == int(report.tasks_assigned.sum())
    assert "R" in trace.gantt(6)


def test_trace_static_round_robin_branch():
    from repro.hpc import RoundRobinPolicy

    sizes = np.arange(1, 25)
    cm = FragmentCostModel(scale=0.1)
    report, trace = traced_simulation(
        ORISE, 4, sizes, cm, seed=0, policy=RoundRobinPolicy()
    )
    # static pre-partitioning still records one interval per fragment
    assert len(trace.intervals) == sizes.size
    assert trace.makespan() == pytest.approx(report.makespan)
    for leader in range(4):
        busy = sum(iv.end - iv.start for iv in trace.intervals
                   if iv.leader == leader)
        assert busy == pytest.approx(report.busy_times[leader])


def test_to_spans_bridges_to_obs_exporters(tmp_path):
    from repro.obs import load_trace, write_trace

    tr = TraceRecorder()
    tr.record(0, 0.0, 1.0, 3)
    tr.record(1, 0.5, 2.0, 1, reissue=True)
    spans = tr.to_spans()
    assert [s.name for s in spans] == ["task", "reissue"]
    assert [s.tid for s in spans] == [0, 1]
    assert spans[1].attrs == {"n_fragments": 1, "reissue": True}
    path = write_trace(spans, tmp_path / "sched.json")
    back = load_trace(path)
    assert [r.name for r in back] == ["task", "reissue"]
