import numpy as np
import pytest

from repro.hpc.costmodel import FragmentCostModel
from repro.hpc.machine import ORISE
from repro.hpc.tracing import TaskInterval, TraceRecorder, traced_simulation


def test_recorder_basic():
    tr = TraceRecorder()
    tr.record(0, 0.0, 1.0, 3)
    tr.record(1, 0.5, 2.0, 1, reissue=True)
    assert tr.makespan() == pytest.approx(2.0)
    assert tr.utilization(2) == pytest.approx((1.0 + 1.5) / (2 * 2.0))


def test_recorder_validates():
    with pytest.raises(ValueError):
        TraceRecorder().record(0, 2.0, 1.0, 1)


def test_gantt_renders():
    tr = TraceRecorder()
    tr.record(0, 0.0, 1.0, 2)
    tr.record(1, 1.0, 2.0, 2, reissue=True)
    chart = tr.gantt(2, width=40)
    lines = chart.splitlines()
    assert lines[0].startswith("L0")
    assert "#" in lines[0]
    assert "R" in lines[1]


def test_gantt_empty():
    assert "empty" in TraceRecorder().gantt(2)


def test_traced_simulation_consistency():
    sizes = np.full(200, 12)
    cm = FragmentCostModel(scale=0.1)
    report, trace = traced_simulation(ORISE, 8, sizes, cm, seed=0)
    assert report.n_fragments == 200
    assert trace.makespan() <= report.finish_times.max() + 1e-9
    assert 0.0 < trace.utilization(8) <= 1.0
    chart = trace.gantt(8)
    assert chart.count("\n") == 8  # 8 leader rows + footer
