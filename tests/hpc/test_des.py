import pytest

from repro.hpc.des import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(3.0, lambda: log.append("c"))
    sim.schedule(1.0, lambda: log.append("a"))
    sim.schedule(2.0, lambda: log.append("b"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_break_in_scheduling_order():
    sim = Simulator()
    log = []
    for name in "abc":
        sim.schedule(1.0, lambda n=name: log.append(n))
    sim.run()
    assert log == ["a", "b", "c"]


def test_nested_scheduling():
    sim = Simulator()
    log = []

    def first():
        log.append(sim.now)
        sim.schedule(2.0, lambda: log.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert log == [1.0, 3.0]


def test_cancel():
    sim = Simulator()
    log = []
    ev = sim.schedule(1.0, lambda: log.append("x"))
    sim.cancel(ev)
    sim.run()
    assert log == []
    assert sim.events_processed == 0


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-0.1, lambda: None)


def test_run_until():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(5.0, lambda: log.append(5))
    sim.run(until=2.0)
    assert log == [1]
    assert sim.pending == 1
    sim.run()
    assert log == [1, 5]


def test_event_budget_guards_livelock():
    sim = Simulator()

    def loop():
        sim.schedule(0.1, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(RuntimeError, match="budget"):
        sim.run(max_events=100)
