import numpy as np
import pytest

from repro.hpc.costmodel import (
    FragmentCostModel,
    calibrate_to_throughput,
    fit_cost_model,
    paper_calibrated_cost_model,
)


def test_paper_anchor_ratios():
    """The shape must reproduce the paper's 5.4x (9->35 atoms) and
    ~19x (9->68 atoms) fragment-cost ratios (§IV-B, §VII-A.1)."""
    cm = FragmentCostModel(scale=1.0)
    assert cm.fragment_time(35) / cm.fragment_time(9) == pytest.approx(5.4, rel=0.02)
    assert cm.fragment_time(68) / cm.fragment_time(9) == pytest.approx(19.0, rel=0.05)


def test_leader_time_rounds():
    cm = FragmentCostModel(scale=1.0)
    # 6-atom fragment: 37 jobs over 31 workers -> 2 rounds
    assert cm.leader_time(6, 31) == pytest.approx(2 * cm.job_time(6))
    # over 5 workers -> 8 rounds
    assert cm.leader_time(6, 5) == pytest.approx(8 * cm.job_time(6))


def test_job_overhead_additivity():
    cm0 = FragmentCostModel(scale=1.0, job_overhead=0.0)
    cm1 = FragmentCostModel(scale=1.0, job_overhead=0.1)
    jobs = 6 * 10 + 1
    assert cm1.fragment_time(10) == pytest.approx(
        cm0.fragment_time(10) + 0.1 * jobs
    )


def test_water_anchor_throughput():
    """Paper Fig. 11: water dimers at 2,406.3 fragments/s on 750 ORISE
    nodes -> 0.3117 leader-seconds per fragment."""
    cm = paper_calibrated_cost_model("water_dimer", "ORISE")
    assert cm.leader_time(6, 31) == pytest.approx(750.0 / 2406.3, rel=1e-6)


def test_protein_anchor():
    cm = paper_calibrated_cost_model("protein", "ORISE")
    assert cm.leader_time(22, 31) == pytest.approx(750.0 / 93.2, rel=1e-6)


def test_unknown_anchor_raises():
    with pytest.raises(KeyError):
        paper_calibrated_cost_model("plasma", "ORISE")


def test_calibrate_to_throughput_exact():
    sizes = np.array([9, 12, 22, 30, 35] * 100)
    cm = calibrate_to_throughput(sizes, 100.0, 750, 31)
    mean_leader = float(np.mean(cm.leader_time(sizes, 31)))
    assert 750.0 / mean_leader == pytest.approx(100.0, rel=1e-9)


def test_fit_cost_model_recovers_parameters():
    truth = FragmentCostModel(scale=3.0, job_overhead=0.02)
    sizes = np.array([6, 9, 15, 22, 30, 40, 55, 68])
    times = truth.fragment_time(sizes)
    fitted = fit_cost_model(sizes, times)
    assert fitted.scale == pytest.approx(3.0, rel=1e-6)
    assert fitted.job_overhead == pytest.approx(0.02, rel=1e-4)


def test_fit_needs_two_points():
    with pytest.raises(ValueError):
        fit_cost_model(np.array([5.0]), np.array([1.0]))
