import numpy as np
import pytest

from repro.hpc.balancer import FixedPackPolicy, RoundRobinPolicy
from repro.hpc.costmodel import FragmentCostModel, paper_calibrated_cost_model
from repro.hpc.machine import ORISE, SUNWAY
from repro.hpc.scheduler import simulate_qf_run


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    return rng.integers(9, 36, size=4000)


@pytest.fixture(scope="module")
def cost_model():
    return paper_calibrated_cost_model("protein", "ORISE")


def test_all_fragments_processed(workload, cost_model):
    rep = simulate_qf_run(ORISE, 50, workload, cost_model, seed=1)
    assert rep.n_fragments == workload.size
    assert rep.tasks_assigned.sum() > 0
    assert rep.makespan > 0


def test_work_conservation(workload, cost_model):
    """Total busy time equals total fragment cost (within noise)."""
    rep = simulate_qf_run(ORISE, 50, workload, cost_model, seed=1,
                          job_noise=1e-9)
    expect = float(np.sum(cost_model.leader_time(workload, ORISE.workers_per_leader)))
    assert rep.busy_times.sum() == pytest.approx(expect, rel=1e-3)


def test_more_nodes_faster(workload, cost_model):
    t = {}
    for n in (25, 50, 100):
        t[n] = simulate_qf_run(ORISE, n, workload, cost_model, seed=1).makespan
    assert t[50] < t[25]
    assert t[100] < t[50]


def test_scaling_efficiency_reasonable(workload, cost_model):
    base = simulate_qf_run(ORISE, 25, workload, cost_model, seed=1)
    big = simulate_qf_run(ORISE, 100, workload, cost_model, seed=1)
    eff = base.makespan * 25 / (big.makespan * 100)
    assert 0.8 < eff <= 1.02


def test_uniform_workload_balances_tightly(cost_model):
    sizes = np.full(20000, 6)
    cm = paper_calibrated_cost_model("water_dimer", "ORISE")
    rep = simulate_qf_run(ORISE, 40, sizes, cm, seed=2, job_noise=0.005)
    lo, hi = rep.time_variation()
    assert -2.0 < lo <= 0.0 <= hi < 2.0


def test_size_sensitive_beats_round_robin(workload, cost_model):
    """The paper's policy must beat static round-robin on makespan for
    heterogeneous fragments (the Fig. 8/ablation claim)."""
    dyn = simulate_qf_run(ORISE, 100, workload, cost_model, seed=3)
    rr = simulate_qf_run(ORISE, 100, workload, cost_model, seed=3,
                         policy=RoundRobinPolicy())
    assert dyn.makespan <= rr.makespan
    assert dyn.time_variation()[1] <= rr.time_variation()[1] + 1.0


def test_prefetch_reduces_makespan(cost_model):
    """With a slow interconnect relative to task length, the master
    round trip shows up as inter-task idle; prefetch hides it
    (Fig. 4d/e)."""
    from dataclasses import replace

    machine = replace(ORISE, comm_latency_s=5e-4, master_service_s=1e-6)
    sizes = np.full(2000, 6)
    cm = FragmentCostModel(scale=0.05)
    on = simulate_qf_run(machine, 20, sizes, cm, seed=4,
                         policy=FixedPackPolicy(count=1))
    off = simulate_qf_run(machine, 20, sizes, cm, seed=4, prefetch=False,
                          policy=FixedPackPolicy(count=1))
    assert on.makespan < 0.9 * off.makespan


def test_speedup_parameter_scales_time(workload, cost_model):
    r1 = simulate_qf_run(ORISE, 50, workload, cost_model, seed=5)
    r2 = simulate_qf_run(ORISE, 50, workload, cost_model, seed=5, speedup=2.0)
    assert r2.makespan == pytest.approx(r1.makespan / 2.0, rel=0.02)


def test_leader_costs_override(cost_model):
    from dataclasses import replace

    sizes = np.full(100, 10)
    costs = np.full(100, 0.5)
    machine = replace(SUNWAY, node_speed_jitter=1e-12)
    rep = simulate_qf_run(machine, 10, sizes, leader_costs=costs, seed=6,
                          job_noise=1e-12)
    assert rep.busy_times.sum() == pytest.approx(50.0, rel=1e-3)


def test_node_count_validated(workload, cost_model):
    with pytest.raises(ValueError):
        simulate_qf_run(ORISE, 10000, workload, cost_model)


def test_needs_cost_source(workload):
    with pytest.raises(ValueError, match="cost_model or leader_costs"):
        simulate_qf_run(ORISE, 10, workload)


def test_deterministic_given_seed(workload, cost_model):
    r1 = simulate_qf_run(ORISE, 30, workload, cost_model, seed=7)
    r2 = simulate_qf_run(ORISE, 30, workload, cost_model, seed=7)
    assert r1.makespan == r2.makespan
    assert np.array_equal(r1.busy_times, r2.busy_times)


def test_straggler_reissue_bounds_makespan(cost_model):
    """Fault tolerance (§V-B): a stalled task is detected and re-issued;
    the makespan stays near the healthy run instead of inflating by the
    straggler factor."""
    rng = np.random.default_rng(0)
    sizes = rng.integers(9, 36, size=2000)
    healthy = simulate_qf_run(ORISE, 40, sizes, cost_model, seed=8)
    faulty = simulate_qf_run(ORISE, 40, sizes, cost_model, seed=8,
                             straggler_prob=0.02, straggler_factor=50.0,
                             timeout_factor=4.0)
    assert faulty.extras["reissues"] > 0
    # without re-execution a single 50x straggler on the largest task
    # would dominate; with it the slowdown stays modest
    assert faulty.makespan < 4.0 * healthy.makespan


def test_straggler_all_fragments_still_processed(cost_model):
    sizes = np.full(500, 12)
    rep = simulate_qf_run(ORISE, 10, sizes, cost_model, seed=9,
                          straggler_prob=0.05, straggler_factor=30.0,
                          timeout_factor=3.0)
    assert rep.n_fragments == 500
    # duplicated completions never double-count unique tasks
    assert rep.extras["reissues"] >= 0


def test_no_stragglers_no_reissues(workload, cost_model):
    rep = simulate_qf_run(ORISE, 30, workload, cost_model, seed=10)
    assert rep.extras["reissues"] == 0
