import numpy as np
import pytest

from repro.hpc.balancer import (
    FixedPackPolicy,
    FragmentPool,
    SystemSizeSensitivePolicy,
)


def _pool(costs):
    costs = np.asarray(costs, dtype=float)
    return FragmentPool(np.arange(costs.size), costs)


def test_pool_sorted_descending():
    pool = _pool([1.0, 5.0, 3.0])
    assert list(pool.costs) == [5.0, 3.0, 1.0]
    assert pool.total_cost == pytest.approx(9.0)


def test_pool_take_updates_remaining():
    pool = _pool([1.0, 5.0, 3.0])
    sizes, costs, total = pool.take(2)
    assert total == pytest.approx(8.0)
    assert pool.remaining_count() == 1
    assert pool.remaining_cost() == pytest.approx(1.0)


def test_pool_take_caps_at_remaining():
    pool = _pool([2.0, 1.0])
    _s, _c, total = pool.take(10)
    assert total == pytest.approx(3.0)
    assert pool.empty()
    with pytest.raises(ValueError):
        pool.take(1)


def test_large_fragments_ship_alone():
    """A fragment exceeding the cost target must go out as its own task."""
    costs = np.concatenate([[100.0], np.full(1000, 0.1)])
    pool = _pool(costs)
    policy = SystemSizeSensitivePolicy(waves=4.0)
    count = policy.next_count(pool, n_leaders=10)
    assert count == 1


def test_small_fragments_pack_together():
    pool = _pool(np.full(10000, 0.01))
    policy = SystemSizeSensitivePolicy(waves=4.0)
    count = policy.next_count(pool, n_leaders=10)
    assert count > 10


def test_granularity_decays_towards_end():
    pool = _pool(np.full(10000, 0.01))
    policy = SystemSizeSensitivePolicy(waves=4.0)
    first = policy.next_count(pool, n_leaders=10)
    # drain most of the pool
    while pool.remaining_count() > 50:
        pool.take(policy.next_count(pool, n_leaders=10))
    late = policy.next_count(pool, n_leaders=10)
    assert late < first
    assert late >= 1


def test_max_pack_respected():
    pool = _pool(np.full(100000, 1e-6))
    policy = SystemSizeSensitivePolicy(max_pack=64)
    assert policy.next_count(pool, n_leaders=1) <= 64


def test_fixed_pack_policy():
    pool = _pool(np.full(10, 1.0))
    policy = FixedPackPolicy(count=4)
    assert policy.next_count(pool, 5) == 4
    pool.take(8)
    assert policy.next_count(pool, 5) == 2
