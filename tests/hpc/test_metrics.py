import numpy as np
import pytest

from repro.hpc.metrics import (
    efficiency_curve,
    projected_pflops,
    strong_scaling_efficiency,
    variation_envelope,
    weak_scaling_efficiency,
)
from repro.hpc.scheduler import SchedulerReport


def _report(nodes, makespan, nfrag=100, busy=None):
    busy = np.full(nodes, makespan * 0.9) if busy is None else busy
    return SchedulerReport(
        machine="X", n_nodes=nodes, n_fragments=nfrag, makespan=makespan,
        busy_times=busy, finish_times=busy, tasks_assigned=np.ones(nodes, int),
        events=0,
    )


def test_strong_scaling_perfect():
    base = _report(10, 100.0)
    doubled = _report(20, 50.0)
    assert strong_scaling_efficiency(base, doubled) == pytest.approx(100.0)


def test_strong_scaling_requires_same_workload():
    with pytest.raises(ValueError):
        strong_scaling_efficiency(_report(10, 1.0, nfrag=5), _report(20, 1.0, nfrag=9))


def test_weak_scaling_perfect():
    base = _report(10, 100.0, nfrag=1000)
    doubled = _report(20, 100.0, nfrag=2000)
    assert weak_scaling_efficiency(base, doubled) == pytest.approx(100.0)


def test_efficiency_curve_sorted_and_based():
    reports = [_report(40, 26.0), _report(10, 100.0), _report(20, 50.5)]
    curve = efficiency_curve(reports)
    assert [n for n, _ in curve] == [10, 20, 40]
    assert curve[0][1] == pytest.approx(100.0)
    assert curve[1][1] == pytest.approx(100 * 100 * 10 / (50.5 * 20))
    assert efficiency_curve([]) == []


def test_variation_envelope():
    busy = np.array([0.9, 1.0, 1.1])
    rep = _report(3, 1.2, busy=busy)
    rows = variation_envelope([rep])
    assert rows[0][0] == 3
    assert rows[0][1] == pytest.approx(-10.0)
    assert rows[0][2] == pytest.approx(10.0)


def test_projected_pflops():
    rates = {10: 1.0, 30: 3.0}
    dist = np.array([10, 10, 30, 30])
    # mean rate = 2 TFLOPS, 1000 accelerators -> 2 PFLOPS
    assert projected_pflops(rates, dist, 1000) == pytest.approx(2.0)
