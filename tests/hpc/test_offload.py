import pytest

from repro.hpc.machine import ORISE, SUNWAY
from repro.hpc.offload import HOST_CORE_GFLOPS, OffloadModel, dfpt_cycle_speedups


@pytest.fixture(scope="module")
def orise_model():
    return OffloadModel.for_machine(ORISE)


@pytest.fixture(scope="module")
def sunway_model():
    return OffloadModel.for_machine(SUNWAY)


def test_efficiency_increases_with_size(orise_model):
    assert orise_model.efficiency(32) < orise_model.efficiency(128)
    assert orise_model.efficiency(128) < orise_model.max_efficiency


def test_efficiency_increases_with_batch(orise_model):
    assert orise_model.efficiency(64, batch=1) < orise_model.efficiency(64, batch=64)


def test_single_small_gemm_not_profitable(orise_model):
    """The paper's motivation (§IV-B): a lone small GEMM is too small
    to offload (launch + input transfer dominate); a 64-batch of the
    same shape is profitable."""
    m = n = 32
    k = 64
    assert not orise_model.profitable(m, n, k, batch=1)
    assert orise_model.profitable(m, n, k, batch=64)


def test_achieved_rates_in_table1_windows(orise_model, sunway_model):
    """Table I per-accelerator FP64 windows: ORISE 0.95-3.93 TFLOPS,
    Sunway 2.10-4.87 across the fragment size range."""
    for dim in (32, 64, 96, 160, 224):
        r_o = orise_model.achieved_tflops(dim, dim, 3072, 64)
        r_s = sunway_model.achieved_tflops(dim, dim, 3072, 64)
        assert 0.9 < r_o < 4.3, (dim, r_o)
        assert 2.0 < r_s < 5.2, (dim, r_s)


def test_host_time_linear():
    m = OffloadModel(ORISE)
    assert m.host_time(HOST_CORE_GFLOPS * 1e9) == pytest.approx(1.0)


def test_speedups_shape(orise_model, sunway_model):
    """Fig. 9 qualitative shape: offload speedup grows with fragment
    size and multiplies the symmetry-reduction gain by >2x."""
    def frag(model, natoms):
        nbf = int(natoms * 2.9)
        dim = ((nbf + 31) // 32) * 32
        fl = {"n1r": natoms * nbf * nbf * 1000, "h1": 3 * natoms * nbf * nbf * 1000}
        frac = min(0.88, 0.88 - 1.6 / natoms + 1.6 / 68)
        return dfpt_cycle_speedups(
            model, fl, gemm_dim=dim, n_gemms=60 * natoms,
            sym_reduction={"h1": 3.0, "n1r": 2.0},
            gemm_time_fraction=frac, grid_batch=150 * natoms,
        )

    small = frag(orise_model, 9)
    large = frag(orise_model, 68)
    assert small["sym"] > 2.0
    assert small["sym+offload"] > 1.3 * small["sym"]
    assert large["sym+offload"] > small["sym+offload"]
    # Sunway overlaps transfers: at least as fast as ORISE's composition
    s_small = frag(sunway_model, 9)
    assert s_small["sym+offload"] >= small["sym+offload"] * 0.9


def test_speedups_validate_input(orise_model):
    with pytest.raises(ValueError):
        dfpt_cycle_speedups(orise_model, {}, 32, 10, {})
