import json

import pytest

from repro.cli import main


def test_simulate_command(capsys):
    rc = main(["simulate", "--machine", "ORISE", "--nodes", "100", "200"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ORISE" in out
    assert "frag/s" in out
    assert "eff" in out


def test_simulate_trace_flag(tmp_path, capsys):
    trace = tmp_path / "sched.json"
    rc = main(["simulate", "--machine", "ORISE", "--nodes", "100",
               "--trace", str(trace)])
    assert rc == 0
    assert "trace written to" in capsys.readouterr().out
    doc = json.loads(trace.read_text())
    tasks = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert tasks and all(e["name"] in ("task", "reissue") for e in tasks)


def test_water_raman_telemetry_flags(tmp_path, capsys):
    trace = tmp_path / "run.json"
    metrics = tmp_path / "run.prom"
    manifest = tmp_path / "manifest.json"
    rc = main(["water-raman", "--n", "1", "--solver", "dense",
               "--trace", str(trace), "--metrics", str(metrics),
               "--manifest", str(manifest)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace written to" in out
    # Chrome trace: the acceptance-criteria span skeleton is present
    doc = json.loads(trace.read_text())
    paths = {e["args"]["path"] for e in doc["traceEvents"]
             if e["ph"] == "X"}
    assert {"run", "run/decompose", "run/fragment_response",
            "run/fragment_response/fragment", "run/assemble",
            "run/spectrum"} <= paths
    assert doc["otherData"]["counters"]["scf.runs"] >= 1
    assert "qf_scf_runs_total" in metrics.read_text()
    m = json.loads(manifest.read_text())
    assert m["command"] == "water-raman"
    assert m["config"]["n"] == 1
    assert m["counters"]["scf.runs"] >= 1
    assert m["phase_wall_s"]["fragment_response"] > 0
    # tracing was torn down at command exit
    from repro.obs import NULL_TRACER, get_tracer, tracing_requested

    assert get_tracer() is NULL_TRACER
    assert not tracing_requested()


def test_obs_view_command(tmp_path, capsys):
    from repro.obs import Tracer, write_trace

    t = Tracer()
    with t.span("run"):
        with t.span("scf"):
            pass
    path = write_trace(t.records, tmp_path / "t.jsonl")
    rc = main(["obs", "view", str(path), "--width", "12"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "== per-phase summary ==" in out
    assert "run/scf".rsplit("/")[-1] in out
    assert "2 spans" in out


def test_counts_command_small(capsys):
    rc = main(["counts", "--residues", "60"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fragments" in out
    assert "water_water_pairs" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_subcommand():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
