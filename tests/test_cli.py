import pytest

from repro.cli import main


def test_simulate_command(capsys):
    rc = main(["simulate", "--machine", "ORISE", "--nodes", "100", "200"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ORISE" in out
    assert "frag/s" in out
    assert "eff" in out


def test_counts_command_small(capsys):
    rc = main(["counts", "--residues", "60"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fragments" in out
    assert "water_water_pairs" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_subcommand():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
