import numpy as np
import pytest

from repro.dfpt.cphf import CPHF, polarizability
from repro.scf import RHF


@pytest.fixture(scope="module")
def water_cphf(water_scf_exact):
    return CPHF(water_scf_exact).run()


def test_cphf_converges(water_cphf):
    assert water_cphf.converged
    assert water_cphf.niter < 40


def test_alpha_symmetric(water_cphf):
    assert np.allclose(water_cphf.alpha, water_cphf.alpha.T, atol=1e-6)


def test_alpha_positive_definite(water_cphf):
    evals = np.linalg.eigvalsh(water_cphf.alpha)
    assert evals.min() > 0


def test_alpha_vs_finite_field(water, water_scf_exact, water_cphf):
    f = 2e-3
    for x in range(3):
        fv = np.zeros(3)
        fv[x] = f
        ep = RHF(water, eri_mode="exact", field_vector=fv).run().energy
        em = RHF(water, eri_mode="exact", field_vector=-fv).run().energy
        a_ff = -(ep - 2 * water_scf_exact.energy + em) / f ** 2
        assert water_cphf.alpha[x, x] == pytest.approx(a_ff, abs=2e-4)


def test_df_alpha_close_to_exact(water_scf_df, water_cphf):
    a_df = CPHF(water_scf_df).run().alpha
    assert np.allclose(a_df, water_cphf.alpha, atol=0.05)


def test_response_density_traceless(water_cphf, water_scf_exact):
    """tr(P(1) S) = 0: the perturbation conserves electron count."""
    s = water_scf_exact.overlap
    for x in range(3):
        assert abs(np.sum(water_cphf.p1[x] * s)) < 1e-8


def test_alpha_rotation_covariance(water):
    """alpha transforms as R alpha R^T under rigid rotation."""
    from repro.geometry.atoms import Geometry
    from repro.geometry.water import random_rotation

    rng = np.random.default_rng(7)
    rot = random_rotation(rng)
    a0 = polarizability(RHF(water, eri_mode="exact").run())
    rotated = Geometry(list(water.symbols), water.coords @ rot.T)
    a1 = polarizability(RHF(rotated, eri_mode="exact").run())
    assert np.allclose(a1, rot @ a0 @ rot.T, atol=1e-5)


def test_rejects_bare_scf():
    from repro.scf.rhf import SCFResult

    dummy = SCFResult(
        energy=0.0, energy_nuc=0.0, mo_coeff=np.eye(2), mo_energy=np.zeros(2),
        density=np.eye(2), fock=np.eye(2), overlap=np.eye(2), hcore=np.eye(2),
        nocc=1, converged=True, niter=1,
    )
    with pytest.raises(ValueError, match="neither"):
        CPHF(dummy)
