import numpy as np
import pytest

from repro.dfpt import fragment_response
from repro.spectra.modes import normal_modes_projected


@pytest.fixture(scope="module")
def water_response(water_optimized):
    return fragment_response(water_optimized.geometry, eri_mode="df")


def test_hessian_symmetric(water_response):
    h = water_response.hessian
    assert np.allclose(h, h.T, atol=1e-12)  # symmetrized by construction


def test_water_frequencies_vs_literature(water_optimized, water_response):
    """RHF/STO-3G water fundamentals: ~2170 (bend), ~4140, ~4390 cm^-1."""
    nm = normal_modes_projected(
        water_response.hessian,
        water_optimized.geometry.masses,
        water_optimized.geometry.coords,
    )
    freqs = nm.frequencies_cm1
    vib = np.sort(freqs[np.abs(freqs) > 50.0])
    assert vib.size == 3
    assert vib[0] == pytest.approx(2170.0, abs=40.0)
    assert vib[1] == pytest.approx(4140.0, abs=60.0)
    assert vib[2] == pytest.approx(4390.0, abs=60.0)


def test_no_imaginary_modes_at_minimum(water_optimized, water_response):
    nm = normal_modes_projected(
        water_response.hessian,
        water_optimized.geometry.masses,
        water_optimized.geometry.coords,
    )
    assert nm.frequencies_cm1.min() > -50.0


def test_raman_tensor_shape_and_symmetry(water_response):
    d = water_response.dalpha_dr
    assert d.shape == (9, 3, 3)
    # each dalpha/dR slice is a symmetric tensor
    assert np.allclose(d, d.transpose(0, 2, 1), atol=1e-5)


def test_raman_tensor_translational_invariance(water_response):
    """Summing dalpha/dR over atoms for fixed direction must vanish:
    translating the molecule cannot change its polarizability."""
    d = water_response.dalpha_dr.reshape(3, 3, 3, 3)  # (atom, dir, i, j)
    total = d.sum(axis=0)
    assert np.abs(total).max() < 5e-4


def test_residual_gradient_recorded(water_response):
    assert np.abs(water_response.gradient).max() < 5e-3


def test_scf_seeding_recorded(water_response):
    """Displaced SCFs are density-seeded (+delta from base, -delta from
    the +delta twin); the meta block records the iteration savings
    against the cold-start baseline of the base SCF."""
    meta = water_response.meta
    assert meta["scf_iters_base"] > 0
    assert meta["scf_iters_plus"] > 0
    assert meta["scf_iters_minus"] > 0
    # warm starts must beat 18 cold starts of the same problem size
    assert meta["scf_iters_saved"] > 0
    assert meta["scf_iters_saved"] == (
        18 * meta["scf_iters_base"]
        - meta["scf_iters_plus"] - meta["scf_iters_minus"]
    )
    assert meta["schwarz_cutoff"] == 1.0e-12


def test_progress_callback(water_optimized):
    calls = []
    fragment_response(
        water_optimized.geometry,
        eri_mode="df",
        compute_raman=False,
        progress=lambda done, total: calls.append((done, total)),
    )
    assert calls[-1] == (18, 18)
    assert len(calls) == 18
