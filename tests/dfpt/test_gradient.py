import numpy as np
import pytest

from repro.dfpt.gradient import gradient, nuclear_repulsion_gradient
from repro.scf import RHF

DELTA = 2e-4


def _fd_gradient(geom, mode):
    g = np.zeros((geom.natoms, 3))
    for i in range(geom.natoms):
        for x in range(3):
            ep = RHF(geom.displaced(i, x, DELTA), eri_mode=mode).run().energy
            em = RHF(geom.displaced(i, x, -DELTA), eri_mode=mode).run().energy
            g[i, x] = (ep - em) / (2 * DELTA)
    return g


@pytest.mark.parametrize("mode", ["exact", "df"])
def test_gradient_vs_fd_water(water_distorted, mode):
    res = RHF(water_distorted, eri_mode=mode).run()
    g = gradient(res)
    gfd = _fd_gradient(water_distorted, mode)
    assert np.abs(g - gfd).max() < 5e-7


def test_gradient_translational_sum_zero(water_distorted):
    res = RHF(water_distorted, eri_mode="df").run()
    g = gradient(res)
    assert np.allclose(g.sum(axis=0), 0.0, atol=1e-8)


def test_gradient_torque_zero(water_distorted):
    """Total torque vanishes for an isolated molecule (rotational
    invariance of the energy)."""
    res = RHF(water_distorted, eri_mode="df").run()
    g = gradient(res)
    torque = np.sum(np.cross(water_distorted.coords, g), axis=0)
    assert np.allclose(torque, 0.0, atol=1e-7)


def test_gradient_requires_converged(water):
    res = RHF(water, eri_mode="df", max_iter=1).run()
    res.converged = False
    with pytest.raises(ValueError, match="converged"):
        gradient(res)


def test_nuclear_repulsion_gradient_fd():
    rng = np.random.default_rng(3)
    coords = rng.normal(scale=2.0, size=(4, 3))
    charges = np.array([1.0, 6.0, 8.0, 1.0])
    g = nuclear_repulsion_gradient(charges, coords)

    def enn(c):
        e = 0.0
        for i in range(4):
            for j in range(i + 1, 4):
                e += charges[i] * charges[j] / np.linalg.norm(c[i] - c[j])
        return e

    for i in range(4):
        for x in range(3):
            cp = coords.copy()
            cp[i, x] += 1e-6
            cm = coords.copy()
            cm[i, x] -= 1e-6
            fd = (enn(cp) - enn(cm)) / 2e-6
            assert g[i, x] == pytest.approx(fd, abs=1e-7)


def test_gradient_h2_sign():
    """Stretched H2 must pull inward (negative dE/dR at large R)."""
    from repro.geometry.atoms import Geometry

    g = Geometry(["H", "H"], np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 2.2]]))
    res = RHF(g, eri_mode="exact").run()
    grad = gradient(res)
    # force on atom 1 points toward atom 0 (negative z gradient ... dE/dz1 > 0
    # means energy rises moving away? at R > Re, dE/dR < 0 is wrong --
    # binding: E(R) rises beyond Re up to dissociation, so dE/dR > 0
    assert grad[1, 2] > 0
