#!/usr/bin/env python
"""Regenerate the golden reference spectra.

The golden files pin the end-to-end numerical output of the pipeline
(dense solver, STO-3G) for two fixture systems:

* ``water1``    — a single water monomer,
* ``waterbox2`` — ``water_box(2, seed=3)``: two waters, so the QF
  decomposition contains a pair piece, monomer pieces, and signed
  subtraction terms (Eq. 1).

``tests/pipeline/test_golden_spectra.py`` compares every run against
these files with tight tolerances (see ``assert_spectrum_matches``
there). When an intentional physics change shifts the spectra, rerun

    PYTHONPATH=src python tests/data/golden/regenerate.py

from the repo root and commit the updated ``.npz`` files together with
an explanation of why the numbers moved. Never regenerate to silence a
regression you do not understand.

This module is also imported (via ``importlib``) by the test suite so
the fixture definitions and the spectral grid exist in exactly one
place.
"""

from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent

#: spectral grid shared by the goldens and every test that compares
#: against them — changing it invalidates the committed files
OMEGA_CM1 = np.linspace(200.0, 4600.0, 550)
SIGMA_CM1 = 20.0
CASES = ("water1", "waterbox2")


def build_pipeline(name: str, **kwargs):
    """A fresh :class:`QFRamanPipeline` for the named fixture system."""
    from repro.geometry.water import water_box, water_molecule
    from repro.pipeline import QFRamanPipeline

    if name == "water1":
        return QFRamanPipeline(waters=[water_molecule()], **kwargs)
    if name == "waterbox2":
        return QFRamanPipeline(waters=water_box(2, seed=3), **kwargs)
    raise KeyError(f"unknown golden case {name!r} (have {CASES})")


def spectrum_arrays(result) -> dict[str, np.ndarray]:
    """The comparable arrays of a PipelineResult's spectrum."""
    sp = result.spectrum
    out = {"omega_cm1": sp.omega_cm1, "intensity": sp.intensity}
    if sp.frequencies_cm1 is not None:
        out["frequencies_cm1"] = sp.frequencies_cm1
    if sp.activities is not None:
        out["activities"] = sp.activities
    return out


def compute(name: str) -> dict[str, np.ndarray]:
    """Run the fixture pipeline serially and return its spectrum arrays."""
    pipe = build_pipeline(name)
    result = pipe.run(omega_cm1=OMEGA_CM1, sigma_cm1=SIGMA_CM1,
                      solver="dense")
    return spectrum_arrays(result)


def golden_path(name: str) -> Path:
    return HERE / f"{name}.npz"


def main() -> None:
    for name in CASES:
        data = compute(name)
        out = golden_path(name)
        np.savez_compressed(out, **data)
        shapes = {k: v.shape for k, v in data.items()}
        print(f"wrote {out} {shapes}")


if __name__ == "__main__":
    main()
