"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hpc.balancer import FragmentPool, SystemSizeSensitivePolicy
from repro.hpc.costmodel import FragmentCostModel
from repro.kernels.batched import BatchedGemmExecutor, pad_to_stride
from repro.spectra.gagq import quadrature_nodes_weights
from repro.spectra.lanczos import lanczos
from repro.utils.flops import FlopCounter


@given(st.integers(min_value=1, max_value=10_000),
       st.sampled_from([8, 16, 32, 64]))
def test_pad_to_stride_properties(n, stride):
    p = pad_to_stride(n, stride)
    assert p >= n
    assert p % stride == 0
    assert p - n < stride


@given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                min_size=1, max_size=200))
def test_pool_conservation(costs):
    pool = FragmentPool(np.arange(len(costs)), np.array(costs))
    policy = SystemSizeSensitivePolicy(waves=3.0)
    total_taken = 0.0
    count_taken = 0
    while not pool.empty():
        k = policy.next_count(pool, n_leaders=4)
        _s, _c, cost = pool.take(k)
        total_taken += cost
        count_taken += _c.size
    assert count_taken == len(costs)
    assert abs(total_taken - sum(costs)) < 1e-6 * max(1.0, sum(costs))


@given(st.lists(st.floats(min_value=0.01, max_value=10.0),
                min_size=2, max_size=100))
def test_pool_descending_order(costs):
    pool = FragmentPool(np.arange(len(costs)), np.array(costs))
    prev = np.inf
    while not pool.empty():
        _s, c, _t = pool.take(1)
        assert c[0] <= prev + 1e-12
        prev = c[0]


@given(st.integers(min_value=1, max_value=68))
def test_cost_model_monotone(n):
    cm = FragmentCostModel(scale=1.0, job_overhead=0.01)
    assert cm.fragment_time(n + 1) > cm.fragment_time(n)
    assert cm.job_time(n) > 0
    # leader time with more workers never slower
    assert cm.leader_time(n, 32) <= cm.leader_time(n, 4) + 1e-12


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=2, max_value=12),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
def test_lanczos_quadrature_weights_nonnegative(n, k, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    h = (a + a.T) / 2
    d = rng.normal(size=n)
    if np.linalg.norm(d) < 1e-8:
        d = np.ones(n)
    res = lanczos(h, d, k=min(k, n))
    for averaged in (False, True):
        theta, w = quadrature_nodes_weights(res, averaged=averaged)
        assert np.all(w >= -1e-10)
        assert w.sum() == (d @ d) * (1 + 1e-9) or abs(
            w.sum() - d @ d
        ) < 1e-6 * max(1.0, d @ d)
        # nodes inside the spectrum interval (Gauss property). The
        # averaged (anti-Gauss-like) rule may place its extreme nodes
        # slightly *outside* the spectrum; that overshoot scales with
        # the spectral width, so the slack must too (an absolute 0.5
        # was occasionally exceeded for wide random spectra).
        evals = np.linalg.eigvalsh(h)
        slack = 1e-6
        if averaged:
            slack += 0.25 * float(evals.max() - evals.min())
        assert theta.min() > evals.min() - slack
        assert theta.max() < evals.max() + slack


@settings(deadline=None, max_examples=20)
@given(st.lists(
    st.tuples(st.integers(2, 20), st.integers(2, 20), st.integers(2, 20)),
    min_size=1, max_size=30,
), st.integers(0, 2 ** 31 - 1))
def test_batched_gemm_always_correct(shapes, seed):
    rng = np.random.default_rng(seed)
    ex = BatchedGemmExecutor(min_batch=3, stride=16)
    mats = []
    for (m, k, n) in shapes:
        a = rng.normal(size=(m, k))
        b = rng.normal(size=(k, n))
        ex.submit(a, b)
        mats.append((a, b))
    results = ex.flush()
    for out, (a, b) in zip(results, mats):
        assert np.allclose(out, a @ b, atol=1e-9)


@given(st.lists(st.tuples(st.text(min_size=1, max_size=5),
                          st.integers(0, 10 ** 12)), max_size=30))
def test_flop_counter_total_is_sum(entries):
    c = FlopCounter()
    for name, val in entries:
        c.add(name, val)
    assert c.total() == sum(v for _n, v in entries)


@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=3, max_value=30), st.integers(0, 2 ** 31 - 1))
def test_eckart_projector_rank(natoms, seed):
    from repro.spectra.modes import eckart_projector

    rng = np.random.default_rng(seed)
    coords = rng.normal(size=(natoms, 3)) * 2.0
    masses = rng.uniform(1.0, 32.0, size=natoms)
    p = eckart_projector(coords, masses)
    assert np.allclose(p, p.T, atol=1e-10)
    assert np.allclose(p @ p, p, atol=1e-8)
    rank = int(round(np.trace(p)))
    assert rank in (3 * natoms - 6, 3 * natoms - 5)  # linear arrangements
