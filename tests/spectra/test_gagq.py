import numpy as np
import pytest

from repro.spectra.gagq import (
    gagq_matrix,
    gauss_quadrature_functional,
    quadrature_nodes_weights,
)
from repro.spectra.lanczos import lanczos


def _random_sym(n, seed=0, lo=0.5, hi=4.0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.normal(size=(n, n)))
    evals = rng.uniform(lo, hi, size=n)
    return q @ np.diag(evals) @ q.T


def test_gagq_matrix_shape():
    h = _random_sym(30, 1)
    res = lanczos(h, np.ones(30), k=8)
    t_hat = gagq_matrix(res)
    assert t_hat.shape == (15, 15)  # 2k - 1
    assert np.allclose(t_hat, t_hat.T)


def test_gagq_matrix_k1():
    res = lanczos(np.eye(4) * 2.0, np.ones(4), k=1)
    t_hat = gagq_matrix(res)
    assert t_hat.shape == (1, 1)
    assert t_hat[0, 0] == pytest.approx(2.0)


def test_gagq_structure():
    """Spalević block structure: diag = [a_1..a_k, a_{k-1}..a_1],
    offdiag = [b_1..b_{k-1}, b_k, b_{k-2}..b_1]."""
    h = _random_sym(40, 2)
    res = lanczos(h, np.arange(1.0, 41.0), k=5)
    t_hat = gagq_matrix(res)
    d = np.diag(t_hat)
    e = np.diag(t_hat, 1)
    a, b = res.alpha, res.beta
    assert np.allclose(d, np.concatenate([a[:4], [a[4]], a[:4][::-1]]))
    assert np.allclose(
        e, np.concatenate([b[:3], [b[3]], [b[4]], b[:3][::-1]])
    )


def test_quadrature_weights_sum_to_norm():
    h = _random_sym(25, 3)
    d = np.ones(25) * 2.0
    res = lanczos(h, d, k=6)
    for averaged in (False, True):
        _theta, w = quadrature_nodes_weights(res, averaged=averaged)
        assert w.sum() == pytest.approx(d @ d, rel=1e-10)


def test_gagq_more_accurate_than_gauss():
    """The paper's claim (§V-E): GAGQ beats plain Gauss at equal k.
    Test on a smooth matrix functional d^T exp(-H) d."""
    h = _random_sym(200, 4, lo=0.0, hi=6.0)
    rng = np.random.default_rng(9)
    d = rng.normal(size=200)
    exact = d @ (np.linalg.matrix_power if False else _expm)(h) @ d
    errs = {}
    for averaged in (False, True):
        val = gauss_quadrature_functional(
            h, d, lambda t: np.exp(-t), k=6, averaged=averaged
        )
        errs[averaged] = abs(val - exact)
    assert errs[True] < errs[False]


def _expm(h):
    evals, vecs = np.linalg.eigh(h)
    return vecs @ np.diag(np.exp(-evals)) @ vecs.T


def test_functional_converges_with_k():
    h = _random_sym(150, 5, lo=0.0, hi=3.0)
    rng = np.random.default_rng(10)
    d = rng.normal(size=150)
    exact = d @ _expm(h) @ d
    prev = None
    for k in (4, 8, 16):
        val = gauss_quadrature_functional(h, d, lambda t: np.exp(-t), k=k)
        err = abs(val - exact)
        if prev is not None:
            assert err <= prev * 1.5  # monotone-ish convergence
        prev = err
    assert prev < 1e-8


def test_functional_vector_valued():
    """f returning an array per node → spectrum-shaped output."""
    h = _random_sym(50, 6)
    d = np.ones(50)
    omega = np.linspace(0, 5, 11)

    def f(theta):
        return np.exp(-((omega[None, :] - theta[:, None]) ** 2))

    out = gauss_quadrature_functional(h, d, f, k=10)
    assert out.shape == (11,)
    evals, vecs = np.linalg.eigh(h)
    proj = (vecs.T @ d) ** 2
    exact = np.array([np.sum(proj * np.exp(-((w - evals) ** 2))) for w in omega])
    assert np.allclose(out, exact, atol=1e-6)
