import numpy as np
import pytest

from repro.spectra.raman import (
    gaussian_lineshape,
    mass_weighted_dalpha,
    raman_activities,
    raman_spectrum_dense,
    raman_spectrum_lanczos,
)


def test_gaussian_lineshape_normalized():
    omega = np.linspace(-400, 400, 20001)
    g = gaussian_lineshape(omega, 0.0, 15.0)
    assert np.trapezoid(g, omega) == pytest.approx(1.0, rel=1e-6)


def test_activities_shapes_and_validation():
    with pytest.raises(ValueError):
        raman_activities(np.zeros((3, 2, 2)))
    with pytest.raises(ValueError):
        raman_activities(np.zeros((3, 3, 3)), convention="bogus")


def test_isotropic_mode_activity():
    """A purely isotropic d(alpha)/dQ = I: gamma' = 0, a' = 1."""
    d = np.eye(3)[None, :, :]
    std = raman_activities(d, "standard")
    assert std[0] == pytest.approx(45.0)  # 45 a'^2 with a' = 1
    paper = raman_activities(d, "paper")
    assert paper[0] == pytest.approx(1.5 * 9 + 10.5 * 3)


def test_anisotropic_mode_activity():
    """Traceless diagonal tensor: a' = 0, activity = 7 gamma'^2."""
    d = np.diag([1.0, -1.0, 0.0])[None, :, :]
    std = raman_activities(d, "standard")
    gamma2 = 0.5 * ((1 - (-1)) ** 2 + (-1 - 0) ** 2 + (0 - 1) ** 2)
    assert std[0] == pytest.approx(7.0 * gamma2)


def test_mass_weighted_dalpha():
    d = np.ones((6, 3, 3))
    out = mass_weighted_dalpha(d, np.array([4.0, 9.0]))
    assert out[0, 0, 0] == pytest.approx(0.5)
    assert out[3, 0, 0] == pytest.approx(1.0 / 3.0)


@pytest.fixture(scope="module")
def toy_system():
    """Synthetic 2-atom system with a known spectrum."""
    rng = np.random.default_rng(0)
    n = 4
    n3 = 3 * n
    a = rng.normal(size=(n3, n3))
    h = a @ a.T  # positive definite -> all real frequencies
    masses = rng.uniform(1.0, 16.0, size=n)
    dalpha = rng.normal(size=(n3, 3, 3))
    dalpha = dalpha + dalpha.transpose(0, 2, 1)
    return h, dalpha, masses


@pytest.mark.parametrize("convention", ["standard", "paper"])
def test_lanczos_matches_dense(toy_system, convention):
    h, dalpha, masses = toy_system
    omega = np.linspace(0, 8000, 500)
    dense = raman_spectrum_dense(
        h, dalpha, masses, omega, sigma_cm1=40.0, convention=convention,
        freq_threshold_cm1=50.0,
    )
    lan = raman_spectrum_lanczos(
        h, dalpha, masses, omega, sigma_cm1=40.0, k=12,
        convention=convention, freq_threshold_cm1=50.0,
    )
    scale = dense.intensity.max()
    assert scale > 0
    assert np.abs(dense.intensity - lan.intensity).max() / scale < 1e-8


def test_gagq_improves_truncated_k(toy_system):
    h, dalpha, masses = toy_system
    omega = np.linspace(0, 8000, 300)
    dense = raman_spectrum_dense(h, dalpha, masses, omega, sigma_cm1=60.0)
    errs = {}
    for avg in (False, True):
        lan = raman_spectrum_lanczos(
            h, dalpha, masses, omega, sigma_cm1=60.0, k=4, averaged=avg
        )
        errs[avg] = np.abs(dense.intensity - lan.intensity).max()
    assert errs[True] <= errs[False] * 1.05


def test_normalized_spectrum():
    omega = np.linspace(0, 100, 50)
    from repro.spectra.raman import RamanSpectrum

    sp = RamanSpectrum(omega, np.linspace(0, 4.0, 50)).normalized()
    assert sp.intensity.max() == pytest.approx(1.0)


def test_spectrum_nonnegative(toy_system):
    h, dalpha, masses = toy_system
    omega = np.linspace(0, 8000, 200)
    sp = raman_spectrum_dense(h, dalpha, masses, omega, sigma_cm1=30.0)
    assert sp.intensity.min() >= 0.0


def test_depolarization_isotropic_mode():
    from repro.spectra.raman import depolarization_ratios

    d = np.eye(3)[None, :, :]
    assert depolarization_ratios(d)[0] == pytest.approx(0.0)


def test_depolarization_anisotropic_mode():
    from repro.spectra.raman import depolarization_ratios

    d = np.diag([1.0, -1.0, 0.0])[None, :, :]  # traceless
    assert depolarization_ratios(d)[0] == pytest.approx(0.75)


def test_depolarization_bounds():
    from repro.spectra.raman import depolarization_ratios

    rng = np.random.default_rng(3)
    d = rng.normal(size=(20, 3, 3))
    d = d + d.transpose(0, 2, 1)
    rho = depolarization_ratios(d)
    assert np.all(rho >= 0.0) and np.all(rho <= 0.75 + 1e-12)
