import numpy as np
import pytest

from repro.constants import HESSIAN_TO_CM1
from repro.spectra.modes import (
    eckart_projector,
    frequencies_from_eigenvalues,
    mass_weighted_hessian,
    normal_modes,
    normal_modes_projected,
)


def _diatomic_hessian(k=0.5):
    """1D spring along z embedded in 3D for two atoms."""
    h = np.zeros((6, 6))
    for (i, j, s) in ((2, 2, 1), (5, 5, 1), (2, 5, -1), (5, 2, -1)):
        h[i, j] = s * k
    return h


def test_mass_weighting_shapes_and_values():
    h = _diatomic_hessian()
    masses = np.array([2.0, 8.0])
    hm = mass_weighted_hessian(h, masses)
    assert hm[2, 2] == pytest.approx(0.5 / 2.0)
    assert hm[2, 5] == pytest.approx(-0.5 / 4.0)


def test_mass_weighting_validates():
    with pytest.raises(ValueError):
        mass_weighted_hessian(np.zeros((5, 5)), np.ones(2))


def test_diatomic_frequency_analytic():
    """omega = sqrt(k/mu): reduced-mass oscillator."""
    k = 0.37
    m1, m2 = 1.0, 16.0
    mu = m1 * m2 / (m1 + m2)
    nm = normal_modes(_diatomic_hessian(k), np.array([m1, m2]))
    expected = np.sqrt(k / mu) * HESSIAN_TO_CM1
    assert nm.frequencies_cm1.max() == pytest.approx(expected, rel=1e-10)
    # five zero modes (3 trans + 2 perpendicular for the 1D spring)
    assert np.sum(np.abs(nm.frequencies_cm1) < 1e-6) == 5


def test_frequencies_sign_convention():
    ev = np.array([-0.01, 0.0, 0.04])
    f = frequencies_from_eigenvalues(ev)
    assert f[0] < 0 and f[2] > 0
    assert abs(f[0]) == pytest.approx(np.sqrt(0.01) * HESSIAN_TO_CM1)


def test_eckart_projector_idempotent():
    rng = np.random.default_rng(0)
    coords = rng.normal(size=(4, 3))
    masses = rng.uniform(1, 16, size=4)
    p = eckart_projector(coords, masses)
    assert np.allclose(p @ p, p, atol=1e-10)
    # removes exactly 6 dimensions for a nonlinear arrangement
    assert np.trace(p) == pytest.approx(12 - 6, abs=1e-8)


def test_eckart_projector_kills_translations():
    rng = np.random.default_rng(1)
    coords = rng.normal(size=(3, 3))
    masses = np.array([1.0, 12.0, 16.0])
    p = eckart_projector(coords, masses)
    t = np.zeros((3, 3))
    t[:, 0] = 1.0  # rigid x translation (mass-weighted)
    vec = (t * np.sqrt(masses)[:, None]).ravel()
    assert np.linalg.norm(p @ vec) < 1e-10


def test_projected_modes_have_exact_zeros(water_optimized):
    from repro.dfpt import fragment_response

    fr = fragment_response(
        water_optimized.geometry, eri_mode="df", compute_raman=False
    )
    nm = normal_modes_projected(
        fr.hessian, water_optimized.geometry.masses,
        water_optimized.geometry.coords,
    )
    zeros = np.sort(np.abs(nm.frequencies_cm1))[:6]
    assert zeros.max() < 5.0


def test_cartesian_mode_normalized():
    nm = normal_modes(_diatomic_hessian(), np.array([1.0, 1.0]))
    mode = nm.cartesian_mode(nm.nmodes - 1)
    assert np.linalg.norm(mode) == pytest.approx(1.0)
    assert mode.shape == (2, 3)
