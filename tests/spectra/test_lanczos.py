import numpy as np
import pytest
import scipy.sparse

from repro.spectra.lanczos import lanczos


def _random_sym(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    return (a + a.T) / 2


def test_full_lanczos_reproduces_eigenvalues():
    h = _random_sym(12, 1)
    res = lanczos(h, np.ones(12), k=12)
    t = res.tridiagonal()
    ritz = np.sort(np.linalg.eigvalsh(t[: res.k, : res.k]))
    exact = np.sort(np.linalg.eigvalsh(h))
    assert np.allclose(ritz, exact, atol=1e-8)


def test_basis_orthonormal():
    h = _random_sym(30, 2)
    res = lanczos(h, np.arange(1.0, 31.0), k=20, keep_basis=True)
    q = res.q
    assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-10)


def test_three_term_recurrence():
    h = _random_sym(25, 3)
    res = lanczos(h, np.ones(25), k=15, keep_basis=True)
    q = res.q
    t = res.tridiagonal()
    # H Q_k = Q_k T_k + beta_k q_{k+1} e_k^T -> residual only in last column
    resid = h @ q - q @ t
    assert np.abs(resid[:, :-1]).max() < 1e-8
    assert np.linalg.norm(resid[:, -1]) == pytest.approx(res.beta[-1], abs=1e-8)


def test_breakdown_on_invariant_subspace():
    h = np.diag([1.0, 2.0, 3.0, 4.0])
    # start vector spanning only two eigenvectors
    d = np.array([1.0, 1.0, 0.0, 0.0])
    res = lanczos(h, d, k=10)
    assert res.breakdown
    assert res.k == 2
    ritz = np.linalg.eigvalsh(res.tridiagonal())
    assert np.allclose(np.sort(ritz), [1.0, 2.0], atol=1e-10)


def test_sparse_and_callable_inputs_agree():
    h = _random_sym(40, 4)
    hs = scipy.sparse.csr_matrix(h)
    d = np.ones(40)
    r1 = lanczos(h, d, k=10)
    r2 = lanczos(hs, d, k=10)
    r3 = lanczos(lambda v: h @ v, d, k=10)
    assert np.allclose(r1.alpha, r2.alpha, atol=1e-12)
    assert np.allclose(r1.alpha, r3.alpha, atol=1e-12)


def test_zero_start_vector_rejected():
    with pytest.raises(ValueError, match="zero start"):
        lanczos(np.eye(3), np.zeros(3), k=2)


def test_k_validated():
    with pytest.raises(ValueError):
        lanczos(np.eye(3), np.ones(3), k=0)


def test_moments_match():
    """Gauss property: sum_j w_j theta_j^m = d^T H^m d for m < 2k."""
    from repro.spectra.gagq import quadrature_nodes_weights

    h = _random_sym(20, 5)
    d = np.arange(1.0, 21.0)
    res = lanczos(h, d, k=5)
    theta, w = quadrature_nodes_weights(res, averaged=False)
    for m in range(2 * 5):
        exact = d @ np.linalg.matrix_power(h, m) @ d
        quad = np.sum(w * theta ** m)
        assert quad == pytest.approx(exact, rel=1e-8)
