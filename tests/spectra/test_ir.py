import numpy as np
import pytest

from repro.dfpt import fragment_response
from repro.spectra.ir import ir_intensities, ir_spectrum_dense


def test_ir_intensities_validation():
    with pytest.raises(ValueError):
        ir_intensities(np.zeros((3, 2)))


def test_ir_intensities_values():
    d = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 2.0]])
    out = ir_intensities(d)
    assert out[0] == pytest.approx(1.0)
    assert out[1] == pytest.approx(8.0)


@pytest.fixture(scope="module")
def water_ir(water_optimized):
    return water_optimized, fragment_response(
        water_optimized.geometry, eri_mode="df",
        compute_raman=False, compute_ir=True,
    )


def test_dmu_dr_computed(water_ir):
    _opt, resp = water_ir
    assert resp.dmu_dr is not None
    assert resp.dmu_dr.shape == (9, 3)
    # translational invariance: translating the molecule moves the
    # dipole by q_tot * t = 0 for a neutral molecule
    total = resp.dmu_dr.reshape(3, 3, 3).sum(axis=0)
    # actually sum_I dmu/dR_I = charge tensor sum ~ Q_tot * I = 0
    assert np.abs(total).max() < 0.05


def test_water_ir_spectrum(water_ir):
    opt, resp = water_ir
    omega = np.linspace(500, 5000, 600)
    sp = ir_spectrum_dense(resp.hessian, resp.dmu_dr, opt.geometry.masses,
                           omega, sigma_cm1=20.0)
    assert sp.intensity.max() > 0
    # water's bend (~2170 unscaled) is IR active; check a peak there
    sel = (omega > 2050) & (omega < 2350)
    assert sp.intensity[sel].max() > 0.15 * sp.intensity.max()


def test_ir_and_raman_differ(water_ir, water_optimized):
    """IR and Raman weight modes differently (complementary selection
    tendencies); the stick intensities must not be proportional."""
    opt, resp_ir = water_ir
    resp = fragment_response(opt.geometry, eri_mode="df",
                             compute_raman=True, compute_ir=False)
    omega = np.linspace(500, 5000, 300)
    from repro.spectra.raman import raman_spectrum_dense

    raman = raman_spectrum_dense(resp.hessian, resp.dalpha_dr,
                                 opt.geometry.masses, omega)
    ir = ir_spectrum_dense(resp_ir.hessian, resp_ir.dmu_dr,
                           opt.geometry.masses, omega)
    r = raman.activities / raman.activities.max()
    i = ir.activities / ir.activities.max()
    assert not np.allclose(r, i, atol=0.1)
