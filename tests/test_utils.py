import time

import pytest

from repro.utils.flops import FlopCounter, axpy_flops, gemm_flops, gemv_flops
from repro.utils.timing import Timer


def test_gemm_flops():
    assert gemm_flops(10, 20, 30) == 2 * 10 * 20 * 30


def test_gemv_flops():
    assert gemv_flops(10, 20) == 400


def test_axpy_flops():
    assert axpy_flops(7) == 14


def test_counter_accumulates():
    c = FlopCounter()
    c.add_gemm("a", 2, 3, 4)
    c.add_gemm("a", 2, 3, 4)
    c.add_gemv("b", 5, 5)
    assert c.total("a") == 2 * gemm_flops(2, 3, 4)
    assert c.total() == c.total("a") + c.total("b")
    assert c.total("missing") == 0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        FlopCounter().add("x", -1)


def test_counter_merge_and_reset():
    a, b = FlopCounter(), FlopCounter()
    a.add("x", 5)
    b.add("x", 7)
    b.add("y", 1)
    a.merge(b)
    assert a.total("x") == 12
    assert a.total("y") == 1
    a.reset()
    assert a.total() == 0


def test_timer_sections():
    t = Timer()
    with t.section("work"):
        time.sleep(0.01)
    with t.section("work"):
        pass
    assert t.count("work") == 2
    assert t.total("work") >= 0.01
    assert t.mean("work") == pytest.approx(t.total("work") / 2)
    assert "work" in t.report()


def test_timer_unseen_section():
    t = Timer()
    assert t.total("nope") == 0.0
    assert t.mean("nope") == 0.0


def test_timer_reset():
    t = Timer()
    with t.section("a"):
        pass
    t.reset()
    assert t.count("a") == 0
