"""Cross-module integration tests: MFCC identities through real QM,
and the chemistry→HPC bridge."""

import numpy as np
import pytest

from repro.fragment import assemble_energy, decompose_protein
from repro.geometry import build_polypeptide, water_dimer
from repro.scf import RHF


@pytest.mark.slow
def test_mfcc_energy_identity_tetrapeptide():
    """Sum of signed MFCC piece energies must reproduce the
    supermolecule RHF energy to MFCC accuracy (paper Eq. 1, E(0))."""
    protein, residues = build_polypeptide(["GLY", "GLY", "GLY", "GLY"])
    e_super = RHF(protein, eri_mode="df").run().energy
    pieces = decompose_protein(protein, residues)
    energies = []
    for p in pieces:
        r = RHF(p.geometry, eri_mode="df").run()
        assert r.converged, p.label
        energies.append(r.energy)
    e_mfcc = assemble_energy(pieces, energies)
    assert e_mfcc == pytest.approx(e_super, abs=5e-4)  # < 0.5 mHa


def test_water_dimer_two_body_expansion():
    """E(dimer) ~ E(w1) + E(w2) + interaction; the QF two-body piece
    must capture the binding (negative interaction for the H-bonded
    dimer)."""
    d = water_dimer()
    w1 = d.subset([0, 1, 2])
    w2 = d.subset([3, 4, 5])
    e_d = RHF(d, eri_mode="df").run().energy
    e_1 = RHF(w1, eri_mode="df").run().energy
    e_2 = RHF(w2, eri_mode="df").run().energy
    interaction = e_d - e_1 - e_2
    assert -0.03 < interaction < -0.001  # a few kcal/mol of binding


def test_decomposition_feeds_scheduler():
    """Pipeline → workload sizes → simulated machine run."""
    from repro.geometry import water_box
    from repro.hpc import ORISE, paper_calibrated_cost_model, simulate_qf_run
    from repro.pipeline import QFRamanPipeline

    waters = water_box(20, seed=5)
    pipe = QFRamanPipeline(waters=waters)
    sizes = pipe.workload_sizes()
    assert sizes.size >= 20
    cm = paper_calibrated_cost_model("water_dimer", "ORISE")
    rep = simulate_qf_run(ORISE, 10, sizes, cm, seed=0)
    assert rep.n_fragments == sizes.size
    assert rep.throughput > 0


def test_spike_bookkeeping_vs_paper_scaled():
    """The synthetic spike at reduced residue count must land in the
    paper's per-residue statistics neighborhood (§VI-A)."""
    from repro.fragment.bookkeeping import spike_paper_reference, system_statistics
    from repro.geometry import spike_like_protein

    n_res = 318  # spike/10
    protein, residues = spike_like_protein(n_res, seed=0)
    stats = system_statistics(protein, residues, n_waters=0)
    ref = spike_paper_reference()
    paper_gc_per_res = ref["generalized_concaps"] / ref["residues"]  # 3.58
    ours = stats.n_generalized_concaps / n_res
    assert 0.3 * paper_gc_per_res < ours < 4.0 * paper_gc_per_res
    assert stats.n_fragments == n_res - 2
    assert stats.n_conjugate_caps == n_res - 3


def test_full_scale_atom_count_formula():
    """101,299,008 total atoms = protein atoms + 3 * waters: validate
    the bookkeeping arithmetic used to describe the paper's system."""
    from repro.fragment.bookkeeping import spike_paper_reference

    ref = spike_paper_reference()
    protein_atoms = 49_008  # paper Fig. 12: spike in gas phase
    n_waters = (ref["atoms"] - protein_atoms) // 3
    assert protein_atoms + 3 * n_waters == ref["atoms"]
    assert n_waters == 33_750_000  # the 101,250,000-atom water box
