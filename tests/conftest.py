"""Shared fixtures.

Expensive SCF/response objects are session-scoped and reused across
test modules; every fixture is deterministic (fixed seeds, fixed
geometries) so numeric assertions can be tight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import build_polypeptide, water_dimer, water_molecule
from repro.geometry.atoms import Geometry
from repro.scf import RHF
from repro.scf.optimize import optimize_geometry


@pytest.fixture(scope="session")
def h2() -> Geometry:
    return Geometry(["H", "H"], np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.4]]))


@pytest.fixture(scope="session")
def water() -> Geometry:
    return water_molecule()


@pytest.fixture(scope="session")
def water_distorted() -> Geometry:
    """Water pushed off equilibrium — nonzero gradient for FD tests."""
    w = water_molecule()
    shift = np.array([[0.02, 0.0, 0.0], [0.0, 0.01, 0.0], [0.0, 0.0, 0.015]])
    return Geometry(list(w.symbols), w.coords + shift)


@pytest.fixture(scope="session")
def dimer() -> Geometry:
    return water_dimer()


@pytest.fixture(scope="session")
def glycine() -> Geometry:
    g, _res = build_polypeptide(["GLY"])
    return g


@pytest.fixture(scope="session")
def tripeptide():
    """(geometry, residues) of GLY-ALA-GLY."""
    return build_polypeptide(["GLY", "ALA", "GLY"])


@pytest.fixture(scope="session")
def water_scf_exact(water):
    res = RHF(water, eri_mode="exact").run()
    assert res.converged
    return res


@pytest.fixture(scope="session")
def water_scf_df(water):
    res = RHF(water, eri_mode="df").run()
    assert res.converged
    return res


@pytest.fixture(scope="session")
def water_optimized():
    opt = optimize_geometry(water_molecule(), eri_mode="df")
    assert opt.converged
    return opt
