"""End-to-end sanitizer: injected faults are caught at the executor
boundary with the producing fragment named in the error.

The injection monkeypatches the executor's ``fragment_response``
reference, so the genuine QM path runs and only the final tensor is
corrupted — exactly the class of silent numerical fault the sanitizer
exists for.
"""

import numpy as np
import pytest

import repro.pipeline.executor as executor_mod
from repro.devtools.contracts import ContractViolation, sanitize
from repro.geometry import water_box
from repro.pipeline import QFRamanPipeline
from repro.pipeline.executor import (
    FragmentTask,
    SerialExecutor,
    verify_determinism,
)


def _corrupting(fault):
    real = executor_mod.fragment_response

    def wrapper(geometry, **kwargs):
        resp = real(geometry, **kwargs)
        fault(resp)
        return resp
    return wrapper


def _pipeline():
    return QFRamanPipeline(
        waters=water_box(1, seed=3), compute_raman=False, eri_mode="exact",
    )


@pytest.fixture()
def single_water_tasks():
    return [
        FragmentTask(index=0, label="water-0", geometry=water_box(1, seed=3)[0],
                     compute_raman=False, eri_mode="exact")
    ]


def test_injected_hessian_asymmetry_is_caught(monkeypatch):
    def fault(resp):
        resp.hessian[0, 1] += 1.0e-3

    monkeypatch.setattr(executor_mod, "fragment_response",
                        _corrupting(fault))
    with sanitize():
        with pytest.raises(ContractViolation) as exc:
            _pipeline().run()
    msg = str(exc.value)
    assert "asymmetric" in msg
    assert "fragment=" in msg and "phase=serial" in msg


def test_injected_nan_is_caught(monkeypatch):
    def fault(resp):
        resp.hessian[2, 2] = np.nan

    monkeypatch.setattr(executor_mod, "fragment_response",
                        _corrupting(fault))
    with sanitize():
        with pytest.raises(ContractViolation, match="non-finite"):
            _pipeline().run()


def test_clean_run_passes_under_sanitize():
    with sanitize():
        result = _pipeline().run()
    assert result.assembled.hessian.shape[0] == 9


def test_verify_determinism_detects_divergence(single_water_tasks, monkeypatch):
    tasks = single_water_tasks
    with SerialExecutor() as ex:
        responses, _ = ex.run(tasks)
    # identical recomputation: must pass
    verify_determinism(tasks, responses, phase="process")
    # a single-bit divergence in the pool result: must raise, naming
    # the fragment
    responses[0].hessian = responses[0].hessian.copy()
    responses[0].hessian[0, 0] += 1.0e-14
    with pytest.raises(ContractViolation) as exc:
        verify_determinism(tasks, responses, phase="process")
    assert "fragment=water-0" in str(exc.value)
    assert "determinism" in exc.value.rule


@pytest.mark.slow
def test_water_dimer_pipeline_catches_injected_asymmetry(monkeypatch):
    """The ISSUE acceptance scenario at water-dimer scale."""
    def fault(resp):
        resp.hessian[0, 1] += 1.0e-3

    monkeypatch.setattr(executor_mod, "fragment_response",
                        _corrupting(fault))
    pipe = QFRamanPipeline(waters=water_box(2, seed=3), compute_raman=True)
    monkeypatch.setenv("QF_SANITIZE", "1")
    with pytest.raises(ContractViolation, match="asymmetric"):
        pipe.run(omega_cm1=np.linspace(200, 5200, 200))
