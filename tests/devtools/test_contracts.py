"""Runtime sanitizer: contracts fire under QF_SANITIZE, no-op otherwise."""

import numpy as np
import pytest

from repro.devtools.contracts import (
    ContractViolation,
    array_contract,
    check_array,
    check_response,
    determinism_check_enabled,
    digests_match,
    response_digest,
    sanitize,
    sanitize_enabled,
)
from repro.dfpt.hessian import FragmentResponse
from repro.geometry import water_molecule


def _response(hessian=None, dalpha=None):
    geom = water_molecule()
    n3 = 3 * geom.natoms
    if hessian is None:
        hessian = np.eye(n3)
    if dalpha is None:
        dalpha = np.zeros((n3, 3, 3))
    return FragmentResponse(
        geometry=geom, energy=-75.0, hessian=hessian, dalpha_dr=dalpha,
        alpha=np.eye(3), gradient=np.zeros((geom.natoms, 3)),
    )


# -- enable/disable semantics ---------------------------------------------

def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("QF_SANITIZE", raising=False)
    assert not sanitize_enabled()
    # a blatant violation passes silently when the sanitizer is off
    bad = np.full((3, 3), np.nan)
    assert check_array("bad", bad) is bad
    assert check_response(_response(hessian=np.full((9, 9), np.nan))) is not None


def test_env_toggle(monkeypatch):
    for val in ("1", "true", "YES", "on"):
        monkeypatch.setenv("QF_SANITIZE", val)
        assert sanitize_enabled()
    for val in ("0", "", "off", "no"):
        monkeypatch.setenv("QF_SANITIZE", val)
        assert not sanitize_enabled()


def test_context_manager_overrides_env(monkeypatch):
    monkeypatch.delenv("QF_SANITIZE", raising=False)
    with sanitize():
        assert sanitize_enabled()
        with sanitize(False):        # nested mask
            assert not sanitize_enabled()
        assert sanitize_enabled()
    assert not sanitize_enabled()
    monkeypatch.setenv("QF_SANITIZE", "1")
    with sanitize(False):
        assert not sanitize_enabled()


def test_determinism_mode_requires_both_flags(monkeypatch):
    monkeypatch.delenv("QF_SANITIZE", raising=False)
    monkeypatch.setenv("QF_SANITIZE_DETERMINISM", "1")
    assert not determinism_check_enabled()
    monkeypatch.setenv("QF_SANITIZE", "1")
    assert determinism_check_enabled()
    monkeypatch.delenv("QF_SANITIZE_DETERMINISM")
    assert not determinism_check_enabled()


# -- check_array ----------------------------------------------------------

def test_finite_violation():
    arr = np.ones(4)
    arr[2] = np.nan
    with pytest.raises(ContractViolation, match="non-finite"):
        check_array("resp_density", arr, force=True)


def test_symmetry_violation_and_context():
    a = np.eye(3)
    a[0, 1] = 1.0e-3
    with pytest.raises(ContractViolation) as exc:
        check_array("hessian", a, symmetric=True, force=True,
                    context="fragment=water-3 phase=process")
    err = exc.value
    assert err.rule == "symmetric"
    assert err.name == "hessian"
    assert "fragment=water-3" in str(err)


def test_symmetry_tolerance_is_relative():
    # 1e-7 absolute asymmetry on an O(1e3) tensor is physical noise
    a = np.full((2, 2), 1.0e3)
    a[0, 1] += 1.0e-7
    check_array("big", a, symmetric=True, atol=1.0e-8, force=True)


def test_shape_and_dtype_violations():
    with pytest.raises(ContractViolation, match="shape"):
        check_array("alpha", np.zeros((3, 2)), shape=(3, 3), force=True)
    check_array("alpha", np.zeros((5, 3)), shape=(None, 3), force=True)
    with pytest.raises(ContractViolation, match="dtype"):
        check_array("x", np.zeros(3, dtype=np.float32), dtype=np.float64,
                    force=True)


def test_none_array_violation():
    with pytest.raises(ContractViolation, match="None"):
        check_array("missing", None, force=True)


# -- decorator ------------------------------------------------------------

def test_array_contract_decorator(monkeypatch):
    calls = []

    @array_contract(symmetric=True, name="toy.t")
    def make(sym=True):
        calls.append(1)
        t = np.arange(9.0).reshape(3, 3)
        return 0.5 * (t + t.T) if sym else t

    monkeypatch.delenv("QF_SANITIZE", raising=False)
    make(sym=False)                      # disabled: no check, no raise
    with sanitize():
        make(sym=True)
        with pytest.raises(ContractViolation, match="asymmetric"):
            make(sym=False)
    assert len(calls) == 3


# -- fragment-level composite ---------------------------------------------

def test_asymmetric_hessian_raises_only_when_sanitizing(monkeypatch):
    bad = np.eye(9)
    bad[0, 3] = 0.5                     # deliberately asymmetrized
    resp = _response(hessian=bad)
    monkeypatch.delenv("QF_SANITIZE", raising=False)
    assert check_response(resp, label="water-0") is resp   # silent
    monkeypatch.setenv("QF_SANITIZE", "1")
    with pytest.raises(ContractViolation) as exc:
        check_response(resp, label="water-0", phase="process")
    assert "fragment=water-0" in str(exc.value)
    assert "phase=process" in str(exc.value)


def test_nan_response_density_raises_only_when_sanitizing(monkeypatch):
    dalpha = np.zeros((9, 3, 3))
    dalpha[4, 1, 2] = np.nan            # NaN-injected response quantity
    resp = _response(dalpha=dalpha)
    monkeypatch.delenv("QF_SANITIZE", raising=False)
    assert check_response(resp, label="water-1") is resp   # silent
    with sanitize():
        with pytest.raises(ContractViolation, match="non-finite"):
            check_response(resp, label="water-1")


# -- digests --------------------------------------------------------------

def test_response_digest_stability_and_sensitivity():
    a = _response()
    b = _response()
    assert response_digest(a) == response_digest(b)
    assert digests_match(a, b)
    b.hessian = b.hessian.copy()
    b.hessian[0, 0] += 1.0e-15          # any bit flip must show
    assert not digests_match(a, b)
