"""The lint rule corpus: exact codes and line numbers per fixture."""

from pathlib import Path

import pytest

from repro.devtools.lint import (
    LintError,
    lint_paths,
    lint_source,
    main,
)

CORPUS = Path(__file__).parent / "corpus"

EXPECTED = {
    "bad_float_eq.py": {("QF001", 5), ("QF001", 7)},
    "bad_einsum.py": {("QF002", 6), ("QF002", 10), ("QF002", 14),
                      ("QF002", 18), ("QF002", 22)},
    "bad_mutable_default.py": {("QF003", 4), ("QF003", 8), ("QF003", 12),
                               ("QF003", 16)},
    "bad_broad_except.py": {("QF004", 7), ("QF004", 14)},
    "bad_unseeded_rng.py": {("QF005", 6), ("QF005", 10), ("QF005", 14)},
    "bad_downcast.py": {("QF006", 6), ("QF006", 10), ("QF006", 14),
                        ("QF006", 18), ("QF006", 22)},
    "bad_pkg/__init__.py": {("QF007", 1)},
    "bad_raw_clock.py": {("QF008", 5), ("QF008", 7), ("QF008", 9)},
    "bad_shell_loop_integrals.py": {("QF009", 6), ("QF009", 8),
                                    ("QF009", 15)},
}


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_bad_corpus_exact_findings(name):
    path = CORPUS / name
    findings = lint_source(path.read_text(), path=str(path))
    assert {(f.code, f.line) for f in findings} == EXPECTED[name]


@pytest.mark.parametrize("name", ["good_clean.py", "good_suppressed.py"])
def test_good_corpus_is_clean(name):
    path = CORPUS / name
    assert lint_source(path.read_text(), path=str(path)) == []


def test_suppressed_findings_still_visible_on_request():
    path = CORPUS / "good_suppressed.py"
    findings = lint_source(path.read_text(), path=str(path),
                           include_suppressed=True)
    assert {f.code for f in findings} >= {"QF001", "QF002", "QF004", "QF006"}


def test_whole_corpus_via_lint_paths():
    findings = lint_paths([CORPUS])
    got = {(Path(f.path).name, f.code) for f in findings}
    want = {(Path(n).name, code)
            for n, pairs in EXPECTED.items() for code, _ in pairs}
    assert got == want


def test_select_filters_rules():
    findings = lint_paths([CORPUS], select={"QF005"})
    assert findings and all(f.code == "QF005" for f in findings)


def test_finding_str_is_greppable():
    f = lint_paths([CORPUS / "bad_float_eq.py"])[0]
    assert str(f).startswith(f"{CORPUS / 'bad_float_eq.py'}:5:")
    assert "QF001" in str(f)


# -- suppression semantics ------------------------------------------------

def test_line_suppression_by_alias_and_code():
    src = "x = 1.0\nok = x == 0.0  # qf: exact-zero\nbad = x == 2.0\n"
    findings = lint_source(src)
    assert [(f.code, f.line) for f in findings] == [("QF001", 3)]
    src2 = "x = 1.0\nok = x == 0.0  # qf: QF001\n"
    assert lint_source(src2) == []


def test_file_level_suppression():
    src = "# qf-file: exact-zero\nx = 1.0\nbad = x == 0.0\n"
    assert lint_source(src) == []


def test_suppression_all_tag():
    src = "import numpy as np\nr = np.random.rand(3)  # qf: all\n"
    assert lint_source(src) == []


def test_unknown_tag_does_not_suppress():
    src = "x = 1.0\nbad = x == 0.0  # qf: tyop\n"
    assert [f.code for f in lint_source(src)] == ["QF001"]


# -- einsum rule details --------------------------------------------------

@pytest.mark.parametrize("spec,n_args,ok", [
    ("ab,bc->ac", 2, True),
    ("xab,ab->x", 2, True),
    ("abcd,cd->ab", 2, True),
    ("acbd,cd->ab", 2, True),
    ("ab,bc->ac", 1, False),          # operand count
    ("ab,bc->ad", 2, False),          # output label missing
    ("ab->aa", 1, False),             # repeated output label
    ("ab->ba->ab", 1, False),         # double arrow
    ("a1->a", 1, False),              # invalid character
])
def test_einsum_specs(spec, n_args, ok):
    args = ", ".join(f"m{i}" for i in range(n_args))
    src = f"import numpy as np\ndef f({args}):\n    return np.einsum({spec!r}, {args})\n"
    findings = lint_source(src)
    assert (findings == []) is ok, [str(f) for f in findings]


def test_einsum_starred_args_skip_operand_count():
    src = ("import numpy as np\n"
           "def f(ops):\n"
           "    return np.einsum('ab,bc->ac', *ops)\n")
    assert lint_source(src) == []


# -- QF007 details --------------------------------------------------------

def test_trivial_init_not_flagged():
    assert lint_source("", path="pkg/__init__.py") == []
    assert lint_source('"""marker."""\n', path="pkg/__init__.py") == []


def test_non_init_module_never_flagged_qf007():
    src = "import math\n"
    assert lint_source(src, path="pkg/module.py") == []


# -- QF008 details --------------------------------------------------------

def test_raw_clock_exempt_in_timing_and_obs():
    src = "import time\nstart = time.perf_counter()\n"
    assert lint_source(src, path="src/repro/utils/timing.py") == []
    assert lint_source(src, path="src/repro/obs/tracer.py") == []
    assert [f.code for f in lint_source(src, path="src/repro/scf/rhf.py")] \
        == ["QF008"]


def test_raw_clock_other_modules_clocks_not_flagged():
    # only perf_counter variants are raw-clock reads; datetime/time.time
    # are wall-clock provenance stamps, not ad-hoc profiling
    src = "import time\nstamp = time.time()\nmono = time.monotonic()\n"
    assert lint_source(src, path="src/repro/x.py") == []


# -- QF009 details --------------------------------------------------------

def test_shell_loop_gated_to_integrals_paths():
    src = "def f(shells):\n    for sh in shells:\n        pass\n"
    assert [f.code for f in
            lint_source(src, path="src/repro/integrals/engine.py")] \
        == ["QF009"]
    # the same loop outside the integrals hot path is fine
    assert lint_source(src, path="src/repro/scf/rhf.py") == []


def test_shell_loop_suppression():
    src = ("def f(shells):\n"
           "    for sh in shells:  # qf: shell-loop — reference path\n"
           "        pass\n")
    assert lint_source(src, path="src/repro/integrals/engine.py") == []


def test_shell_loop_attribute_iterables_flagged():
    src = ("def f(blk, out, vals):\n"
           "    for r in range(blk.npair):\n"
           "        out[r] = vals[r]\n")
    assert [f.code for f in
            lint_source(src, path="src/repro/integrals/engine.py")] \
        == ["QF009"]


def test_integrals_tree_is_shell_loop_clean():
    # the zero-findings gate for the real hot path: every scalar loop in
    # repro.integrals must be either vectorized or annotated
    root = Path(__file__).resolve().parents[2] / "src" / "repro" / "integrals"
    findings = [f for f in lint_paths([root]) if f.code == "QF009"]
    assert findings == [], [str(f) for f in findings]


# -- CLI ------------------------------------------------------------------

def test_cli_exit_codes(capsys, tmp_path):
    assert main([str(CORPUS / "good_clean.py")]) == 0
    assert main([str(CORPUS)]) == 1
    out = capsys.readouterr().out
    assert "QF001" in out and "bad_float_eq.py:5" in out

    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert main([str(broken)]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("QF001", "QF007"):
        assert code in out


def test_cli_select(capsys):
    assert main([str(CORPUS), "--select", "unseeded-rng"]) == 1
    out = capsys.readouterr().out
    assert "QF005" in out and "QF001" not in out


def test_syntax_error_raises_lint_error(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def (:\n")
    with pytest.raises(LintError):
        lint_paths([bad])
