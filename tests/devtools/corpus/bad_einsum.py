"""QF002 corpus — malformed np.einsum subscripts (never imported)."""
import numpy as np


def output_label_not_in_inputs(a, b):
    return np.einsum("ab,bc->ad", a, b)


def operand_count_mismatch(a):
    return np.einsum("ab,bc->ac", a)


def repeated_output_label(a, b):
    return np.einsum("ab,bc->aa", a, b)


def invalid_characters(a, b):
    return np.einsum("a1,1c->ac", a, b)


def non_literal_subscripts(spec, a):
    return np.einsum(spec, a)


def valid_contraction_is_fine(a, b):
    return np.einsum("ab,bc->ca", a, b)


def valid_implicit_output_is_fine(a, b):
    return np.einsum("ab,ab", a, b)


def valid_ellipsis_is_fine(a):
    return np.einsum("...ab->...ba", a)
