"""QF008 fixture: raw clock reads outside the sanctioned timing layer."""
import time
from time import perf_counter

t0 = time.perf_counter()

t1 = perf_counter()

t2 = time.perf_counter_ns()

t_ok = time.time()  # wall-clock reads are not flagged
