"""QF009 fixture: python-level shell/primitive loops in an integrals path."""


def contract(shells, plist):
    total = 0.0
    for sh in shells:
        total += sh.norm
    for i, j in plist:
        total += i * j
    return total


def contract_prims(sha, shb):
    out = 0.0
    for ca, aa in zip(sha.coefs, sha.exps):
        out += ca * aa
    return out


def sanctioned(blk, target, vals):
    for r in range(blk.npair):  # qf: shell-loop — scalar reference scatter
        target[r] = vals[r]
