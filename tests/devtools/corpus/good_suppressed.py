"""Known-good corpus file — every violation carries a suppression.

Also exercises the file-level form: QF006 is disabled for the whole
file below.
"""
# qf-file: dtype-downcast
import numpy as np


def exact_zero_guard(value):
    if value == 0.0:  # qf: exact-zero
        return 0.0
    return 1.0 / value


def reported_capture(fn, errors):
    try:
        return fn()
    except Exception as exc:  # qf: broad-except
        errors.append(exc)
        return None


def file_level_suppression():
    return np.zeros(3, dtype=np.float32)


def code_form_suppression(a):
    return np.einsum(a + "->", np.ones(2))  # qf: QF002
