"""QF006 corpus — silent dtype downcasts (never imported)."""
import numpy as np


def float32_scalar():
    return np.float32(1.0)


def float32_alloc():
    return np.zeros(3, dtype=np.float32)


def float32_string_alloc():
    return np.zeros(3, dtype="float32")


def astype_downcast(x):
    return x.astype(np.float32)


def complex64_scalar():
    return np.complex64(1.0 + 2.0j)


def float64_is_fine(x):
    return x.astype(np.float64)


def int_cast_is_fine(x):
    return x.astype(int)
