"""QF007 corpus — public package __init__ without __all__."""

from math import pi


def public_helper():
    return pi
