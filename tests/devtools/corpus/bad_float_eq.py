"""QF001 corpus — float equality against literals (never imported)."""


def screen(value):
    if value == 0.0:
        return True
    return value != 1.5


def integer_equality_is_fine(count):
    return count == 0


def tolerance_is_fine(value):
    return abs(value) < 1e-12


def suppressed_guard(value):
    return value == 0.0  # qf: exact-zero
