"""QF004 corpus — overbroad except without re-raise (never imported)."""


def bare_except(fn):
    try:
        return fn()
    except:
        return None


def swallowing_exception(fn):
    try:
        return fn()
    except Exception:
        return None


def reraising_is_fine(fn):
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc


def narrow_is_fine(fn):
    try:
        return fn()
    except ValueError:
        return None


def suppressed_capture(fn, errors):
    try:
        return fn()
    except Exception as exc:  # qf: broad-except
        errors.append(exc)
        return None
