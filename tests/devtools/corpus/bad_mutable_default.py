"""QF003 corpus — mutable default arguments (never imported)."""


def list_default(tasks=[]):
    return tasks


def dict_default(cache={}):
    return cache


def constructor_default(pool=list()):
    return pool


def kwonly_set_default(*, seen={1}):
    return seen


def none_default_is_fine(tasks=None):
    return tasks or []
