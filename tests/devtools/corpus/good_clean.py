"""Known-good corpus file — the linter must report nothing here."""
import numpy as np

__all__ = ["overlap_like", "jitter"]

TOLERANCE = 1.0e-10


def overlap_like(a, b):
    s = np.einsum("ab,bc->ac", a, b)
    return 0.5 * (s + s.T)


def jitter(n, seed=0, rng=None):
    if rng is None:
        rng = np.random.default_rng(seed)
    return rng.normal(size=n).astype(np.float64)


def converged(delta):
    return abs(delta) < TOLERANCE
