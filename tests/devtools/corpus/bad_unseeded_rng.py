"""QF005 corpus — unseeded / global-state RNG (never imported)."""
import numpy as np


def legacy_global_rand():
    return np.random.rand(3)


def legacy_global_seed():
    np.random.seed(0)


def unseeded_generator():
    return np.random.default_rng()


def seeded_generator_is_fine():
    return np.random.default_rng(7)


def threaded_generator_is_fine(rng):
    return rng.normal(size=3)
