"""Unit tests for the stdlib coverage gate (repro.devtools.covgate).

The gate itself runs pytest; these tests exercise its pieces directly
(line collection, the selective tracer, the percentage math) so they
stay cheap and never nest a test session.
"""

import importlib.util
import textwrap

from repro.devtools.covgate import (
    CoverageTracer,
    collect_executable_lines,
    coverage_percent,
)

_MODULE = textwrap.dedent("""\
    CONST = 1


    def covered():
        a = 1
        b = a + 1
        return b


    def uncovered():
        x = 10
        return x


    def excluded():  # pragma: no cover
        raise RuntimeError("never measured")
""")


def _write_module(tmp_path):
    path = tmp_path / "mod_under_test.py"
    path.write_text(_MODULE)
    return path.resolve()


def _import(path):
    spec = importlib.util.spec_from_file_location("mod_under_test",
                                                  str(path))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_collect_executable_lines(tmp_path):
    path = _write_module(tmp_path)
    lines = collect_executable_lines(path)
    src = _MODULE.splitlines()
    # both plain function bodies are executable ...
    assert src.index("    a = 1") + 1 in lines
    assert src.index("    x = 10") + 1 in lines
    # ... module-level lines are not (they run at import, before any
    # tracer can exist) ...
    assert src.index("CONST = 1") + 1 not in lines
    # ... and neither is the pragma-excluded function's body
    assert src.index('    raise RuntimeError("never measured")') + 1 \
        not in lines


def test_line_level_pragma(tmp_path):
    path = tmp_path / "m.py"
    path.write_text(
        "def f():\n"
        "    a = 1\n"
        "    b = 2  # pragma: no cover\n"
        "    return a\n"
    )
    lines = collect_executable_lines(path.resolve())
    assert 2 in lines and 4 in lines
    assert 3 not in lines


def test_tracer_records_only_target_files(tmp_path):
    path = _write_module(tmp_path)
    lines = collect_executable_lines(path)
    tracer = CoverageTracer({str(path)})
    with tracer:
        mod = _import(path)       # module body runs under the tracer
        assert mod.covered() == 2
    hits = tracer.hits[str(path)]
    src = _MODULE.splitlines()
    assert src.index("    a = 1") + 1 in hits
    assert src.index("    x = 10") + 1 not in hits
    # this very test file executed under the tracer too, but was not
    # a target, so nothing else was recorded
    assert set(tracer.hits) == {str(path)}
    pct = coverage_percent({str(path): lines}, tracer.hits)
    assert 0.0 < pct < 100.0

    with tracer:
        mod.uncovered()
    pct_all = coverage_percent({str(path): lines}, tracer.hits)
    assert pct_all == 100.0


def test_tracer_restores_previous_tracer(tmp_path):
    """Nested tracers must not kill the outer one — the gate runs this
    very test suite under its own tracer."""
    import sys

    events = []

    def outer(frame, event, arg):
        events.append(event)
        return None

    prev = sys.gettrace()
    sys.settrace(outer)
    try:
        with CoverageTracer(set()):
            assert sys.gettrace() is not outer
        assert sys.gettrace() is outer
    finally:
        sys.settrace(prev)


def test_coverage_percent_edge_cases():
    assert coverage_percent({}, {}) == 100.0
    assert coverage_percent({"f": set()}, {}) == 100.0
    assert coverage_percent({"f": {1, 2}}, {"f": {1}}) == 50.0
    assert coverage_percent({"f": {1, 2}}, {}) == 0.0
    # hits outside the executable set (e.g. pragma lines) never help
    assert coverage_percent({"f": {1}}, {"f": {2, 3}}) == 0.0
