"""Tier-1 regression gate: the shipped src/ tree must lint clean.

A new unsuppressed finding in ``src/repro`` fails the normal test run —
the same zero-findings bar the CI lint session enforces. Intentional
violations must carry a ``# qf: <rule>`` suppression (see
docs/static_analysis.md), which keeps every exception reviewable.
"""

from pathlib import Path

from repro.devtools.lint import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_src_tree_has_no_unsuppressed_findings():
    assert SRC.is_dir(), SRC
    findings = lint_paths([SRC])
    assert findings == [], "\n" + "\n".join(str(f) for f in findings)
