"""Exporter formats: Chrome trace-event schema, JSONL round-trip,
Prometheus text, ThroughputReport derivation."""

import json

import pytest

from repro.obs import (
    Counters,
    SpanRecord,
    Tracer,
    chrome_trace,
    derive_throughput,
    load_jsonl,
    load_trace,
    prometheus_metrics,
    spans_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.export import load_chrome
from repro.utils.timing import Timer


@pytest.fixture
def sample_records():
    t = Tracer()
    with t.span("run"):
        with t.span("fragment_response", n_tasks=2):
            with t.span("fragment", label="w0", natoms=3):
                with t.span("scf", nbf=7):
                    pass
            with t.span("fragment", label="w1", natoms=3):
                pass
    return t.records


def test_chrome_trace_event_schema(sample_records):
    doc = chrome_trace(sample_records)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(sample_records)
    assert len(meta) == len({r.pid for r in sample_records})
    for ev in complete:
        # the trace-event contract Perfetto validates on load
        assert {"name", "ph", "ts", "dur", "pid", "tid", "args"} <= set(ev)
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        assert ev["ts"] >= 0.0            # relative to the earliest span
        assert ev["dur"] >= 0.0
        assert ev["args"]["path"]         # ancestry travels in args
    for ev in meta:
        assert ev["name"] == "process_name"
    # JSON-serializable end to end
    json.dumps(doc)


def test_chrome_trace_embeds_counters(sample_records):
    c = Counters()
    c.inc("scf.runs", 4)
    doc = chrome_trace(sample_records, counters=c)
    assert doc["otherData"]["counters"] == {"scf.runs": 4}
    plain = chrome_trace(sample_records, counters={"x": 1})
    assert plain["otherData"]["counters"] == {"x": 1}


def test_chrome_roundtrip_preserves_structure(sample_records, tmp_path):
    path = write_trace(sample_records, tmp_path / "trace.json")
    back = load_chrome(path)
    assert [r.name for r in back] == [r.name for r in sample_records]
    assert [r.path for r in back] == [r.path for r in sample_records]
    for orig, rec in zip(sample_records, back):
        assert rec.dur == pytest.approx(orig.dur, abs=1e-9)
        # attrs survive the args round trip
        assert {k: rec.attrs[k] for k in orig.attrs} == orig.attrs


def test_jsonl_roundtrip_is_lossless(sample_records, tmp_path):
    path = spans_to_jsonl(sample_records, tmp_path / "trace.jsonl")
    back = load_jsonl(path)
    assert back == sample_records


def test_write_trace_dispatches_on_suffix(sample_records, tmp_path):
    jl = write_trace(sample_records, tmp_path / "t.jsonl")
    ch = write_trace(sample_records, tmp_path / "t.json")
    assert jl.read_text().lstrip().startswith("{\"")      # one obj per line
    assert "traceEvents" in json.loads(ch.read_text())
    assert load_trace(jl) == sample_records
    assert [r.path for r in load_trace(ch)] \
        == [r.path for r in sample_records]


def test_prometheus_metrics_text(sample_records):
    c = Counters()
    c.inc("scf.runs", 3)
    timer = Timer()
    with timer.section("assemble"):
        pass
    text = prometheus_metrics(counters=c, records=sample_records, timer=timer)
    assert "qf_scf_runs_total 3" in text
    assert 'qf_span_calls_total{span="fragment"} 2' in text
    assert 'qf_span_seconds_total{span="run"}' in text
    assert 'qf_timer_seconds_total{section="assemble"}' in text
    assert text.endswith("\n")


def test_write_metrics_file(sample_records, tmp_path):
    path = write_metrics(tmp_path / "m.prom", counters={"a.b": 1},
                         records=sample_records)
    assert "qf_a_b_total 1" in path.read_text()


def test_derive_throughput_from_fragment_spans():
    records = [
        SpanRecord("fragment_response", "run/fragment_response",
                   ts=0.0, dur=4.0, pid=1, tid=1, attrs={}),
        SpanRecord("fragment", "run/fragment_response/fragment",
                   ts=0.0, dur=3.0, pid=2, tid=1,
                   attrs={"label": "w0", "natoms": 3}),
        SpanRecord("fragment", "run/fragment_response/fragment",
                   ts=1.0, dur=3.0, pid=3, tid=1,
                   attrs={"label": "w1", "natoms": 6}),
    ]
    tp = derive_throughput(records, max_workers=2, backend="process")
    assert tp.n_tasks == 2
    assert tp.wall_s == pytest.approx(4.0)
    assert tp.fragments_per_s == pytest.approx(0.5)
    assert tp.worker_utilization == pytest.approx(6.0 / 8.0)
    assert [row["label"] for row in tp.tasks] == ["w0", "w1"]


def test_derive_throughput_without_wall_span_uses_extent():
    records = [
        SpanRecord("fragment", "fragment", ts=2.0, dur=1.0, pid=1, tid=1,
                   attrs={"label": "a"}),
        SpanRecord("fragment", "fragment", ts=3.5, dur=0.5, pid=1, tid=1,
                   attrs={"label": "b"}),
    ]
    tp = derive_throughput(records)
    assert tp.wall_s == pytest.approx(2.0)   # 2.0 .. 4.0
    assert tp.n_tasks == 2


def test_derive_throughput_empty_trace():
    tp = derive_throughput([])
    assert tp.n_tasks == 0
    assert tp.wall_s == 0.0
