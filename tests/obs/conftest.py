"""Telemetry tests run against clean process-global state."""

import pytest

from repro.obs import disable_tracing, reset_counters


@pytest.fixture(autouse=True)
def clean_obs_state():
    reset_counters()
    disable_tracing()
    yield
    reset_counters()
    disable_tracing()
