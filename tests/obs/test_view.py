"""Viewer: per-phase summary, flamegraph, end-to-end render."""

import pytest

from repro.obs import (
    Tracer,
    flamegraph,
    phase_summary,
    phase_totals,
    render,
    spans_to_jsonl,
    write_trace,
)


@pytest.fixture
def records():
    t = Tracer()
    with t.span("run"):
        for label in ("w0", "w1"):
            with t.span("fragment", label=label):
                with t.span("scf"):
                    pass
        with t.span("spectrum"):
            pass
    return t.records


def test_phase_totals_aggregate_by_name(records):
    totals = phase_totals(records)
    assert totals["fragment"][1] == 2
    assert totals["scf"][1] == 2
    assert totals["run"][1] == 1
    # child time is contained in the parent span
    assert totals["run"][0] >= totals["fragment"][0] >= totals["scf"][0]


def test_phase_summary_table(records):
    table = phase_summary(records)
    lines = table.splitlines()
    assert lines[0].split() == ["span", "total(s)", "calls", "mean(s)"]
    # sorted by total time: the enclosing run span leads
    assert lines[1].startswith("run")
    assert any(line.startswith("fragment ") for line in lines)


def test_phase_summary_empty():
    assert phase_summary([]) == "(empty trace)"


def test_flamegraph_tree_structure(records):
    fg = flamegraph(records, width=20)
    lines = fg.splitlines()
    idx = {line.strip().split()[0]: i for i, line in enumerate(lines[1:],
                                                               start=1)}
    # children render below their parent, indented
    assert idx["run"] < idx["fragment"] < idx["scf"]
    assert lines[idx["fragment"]].startswith("  fragment")
    assert lines[idx["scf"]].startswith("    scf")
    # the root bar spans the full width
    assert lines[idx["run"]].count("█") == 20


def test_flamegraph_empty():
    assert flamegraph([]) == "(empty trace)"


def test_render_roundtrips_both_formats(records, tmp_path):
    for name in ("trace.jsonl", "trace.json"):
        path = (spans_to_jsonl(records, tmp_path / name)
                if name.endswith(".jsonl")
                else write_trace(records, tmp_path / name))
        out = render(path, width=12)
        assert "== per-phase summary ==" in out
        assert "== flamegraph (aggregated by span path) ==" in out
        assert f"{len(records)} spans" in out
        assert "run" in out and "scf" in out


def test_render_summary_totals_match_span_durations(records, tmp_path):
    """The viewer is a pure projection: its totals must equal the sums
    of the underlying span durations exactly (same records, no clock)."""
    path = spans_to_jsonl(records, tmp_path / "t.jsonl")
    out = render(path)
    totals = phase_totals(records)
    for line in out.splitlines():
        parts = line.split()
        if parts and parts[0] in totals and len(parts) == 4:
            assert float(parts[1]) == pytest.approx(
                totals[parts[0]][0], abs=5e-5
            )
