"""End-to-end telemetry through the QF-RAMAN pipeline.

One traced 2-water run (module-scoped) backs the structural and
timing assertions; a second untraced run proves tracing is
observation-only.
"""

import numpy as np
import pytest

from repro.geometry import water_box
from repro.obs import (
    counters,
    derive_throughput,
    disable_tracing,
    enable_tracing,
    phase_totals,
    reset_counters,
)
from repro.pipeline import QFRamanPipeline

OMEGA = np.linspace(100, 5000, 60)


def _run_pipeline():
    pipe = QFRamanPipeline(waters=water_box(2, seed=0))
    res = pipe.run(omega_cm1=OMEGA, sigma_cm1=30.0, solver="dense")
    return pipe, res


@pytest.fixture(scope="module")
def traced_run():
    reset_counters()
    tracer = enable_tracing()
    try:
        pipe, res = _run_pipeline()
        counts = counters().as_dict()
    finally:
        disable_tracing()
    return pipe, res, list(tracer.records), counts


def test_trace_has_required_nesting(traced_run):
    _pipe, res, records, _counts = traced_run
    paths = {r.path for r in records}
    # the acceptance-criteria skeleton: decompose -> per-fragment
    # scf/cphf/hessian -> assemble -> spectrum, all under one run span
    assert "run" in paths
    assert "run/decompose" in paths
    assert "run/fragment_response" in paths
    assert "run/fragment_response/fragment" in paths
    assert "run/assemble" in paths
    assert "run/spectrum" in paths
    assert "run/fragment_response/fragment/scf" in paths
    assert any("hessian.displacements" in p for p in paths)
    assert any(p.endswith("hessian.coordinate/scf") for p in paths)
    assert any(p.endswith("hessian.coordinate/cphf") for p in paths)
    # exactly one span per unique fragment, carrying its identity
    frags = [r for r in records
             if r.path == "run/fragment_response/fragment"]
    assert len(frags) == res.unique_pieces
    for r in frags:
        assert r.attrs["label"]
        assert r.attrs["natoms"] in (3, 6)
    run = next(r for r in records if r.path == "run")
    assert run.attrs["solver"] == "dense"
    assert run.attrs["pieces"] == len(res.decomposition.pieces)


def test_trace_totals_agree_with_timer(traced_run):
    """The ``obs view`` per-phase summary is built from these span
    totals; they must agree with the Timer sections they shadow."""
    pipe, _res, records, _counts = traced_run
    totals = phase_totals(records)
    shared = ["decompose", "fragment_response", "assemble", "spectrum"]
    assert set(shared) <= set(totals) & set(pipe.timer.totals)
    for name in shared:
        span_s = totals[name][0]
        timer_s = pipe.timer.totals[name]
        assert span_s <= timer_s    # the section encloses the span
        assert timer_s - span_s <= max(0.05 * timer_s, 2.0e-3), name
    # the dominant phase must hit the 5% acceptance bound outright
    dom = max(shared, key=lambda n: pipe.timer.totals[n])
    assert totals[dom][0] == pytest.approx(pipe.timer.totals[dom], rel=0.05)


def test_run_counters_populated(traced_run):
    _pipe, res, _records, counts = traced_run
    assert counts["scf.runs"] >= res.unique_pieces
    assert counts["scf.iterations"] > counts["scf.runs"]
    assert counts["cphf.runs"] >= res.unique_pieces
    assert counts["hessian.coordinate_jobs"] > 0
    assert counts["eri.pair_combinations_total"] >= (
        counts["eri.pair_combinations_evaluated"]
    )
    # 2 identical waters -> at least one rigid duplicate rotated
    assert counts["pipeline.rigid_rotations"] >= 1


def test_derive_throughput_matches_executor_report(traced_run):
    _pipe, res, records, _counts = traced_run
    report = res.throughput
    derived = derive_throughput(records, max_workers=report.max_workers,
                                backend=report.backend)
    assert derived.n_tasks == report.n_tasks
    assert {row["label"] for row in derived.tasks} \
        == {row["label"] for row in report.tasks}
    assert derived.wall_s == pytest.approx(report.wall_s, rel=0.05)
    assert derived.summary().startswith(f"{report.backend}[")


def test_disabled_tracing_leaves_results_identical(traced_run):
    """Telemetry is observation-only: an untraced run reproduces the
    traced spectrum bit for bit."""
    _pipe, traced_res, _records, _counts = traced_run
    from repro.obs import NULL_TRACER, get_tracer

    assert get_tracer() is NULL_TRACER
    _pipe2, plain = _run_pipeline()
    assert np.array_equal(plain.spectrum.intensity,
                          traced_res.spectrum.intensity)
    assert np.array_equal(plain.assembled.hessian,
                          traced_res.assembled.hessian)
    assert get_tracer().export() == []
