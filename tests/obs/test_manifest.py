"""Run manifest provenance record."""

from repro.obs import Counters, RunManifest, collect_manifest, git_revision
from repro.obs.manifest import MANIFEST_SCHEMA
from repro.utils.timing import Timer


def test_collect_manifest_captures_config_and_counters():
    reg = Counters()
    reg.inc("scf.runs", 5)
    timer = Timer()
    with timer.section("assemble"):
        pass
    m = collect_manifest(
        command="water-raman",
        config={"n": 4, "solver": "lanczos"},
        seeds={"seed": 3},
        timer=timer,
        counter_registry=reg,
        extras={"note": "test"},
    )
    assert m.command == "water-raman"
    assert m.config == {"n": 4, "solver": "lanczos"}
    assert m.seeds == {"seed": 3}
    assert m.counters == {"scf.runs": 5}
    assert "assemble" in m.phase_wall_s
    assert m.schema == MANIFEST_SCHEMA
    assert m.versions["python"]
    assert m.versions["numpy"]
    assert m.versions["repro"]
    assert m.platform
    assert m.created_unix > 0
    assert m.extras == {"note": "test"}


def test_manifest_embeds_throughput_without_task_rows():
    from repro.pipeline.executor import ThroughputReport

    tp = ThroughputReport(
        backend="serial", max_workers=1, n_tasks=2, wall_s=1.0,
        fragments_per_s=2.0, worker_utilization=1.0,
        tasks=[{"label": "w0"}],
    )
    m = collect_manifest("x", throughput=tp, counter_registry=Counters())
    assert m.throughput["backend"] == "serial"
    assert "tasks" not in m.throughput   # rows belong in the trace


def test_manifest_json_roundtrip(tmp_path):
    m = collect_manifest("peptide-raman", config={"sequence": ["GLY"]},
                         counter_registry=Counters())
    path = m.write(tmp_path / "manifest.json")
    back = RunManifest.load(path)
    assert back.command == m.command
    assert back.config == m.config
    assert back.versions == m.versions
    assert back.schema == m.schema


def test_from_json_ignores_unknown_fields():
    m = RunManifest.from_json(
        '{"command": "x", "some_future_field": 1, "schema": 2}'
    )
    assert m.command == "x"
    assert m.schema == 2


def test_git_revision_in_this_repo():
    sha = git_revision(cwd=__file__.rsplit("/tests/", 1)[0])
    # the growth repo is a checkout; tolerate git-less environments
    assert sha is None or (len(sha) == 40
                           and all(c in "0123456789abcdef" for c in sha))
