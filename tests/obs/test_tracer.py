"""Tracer semantics: nesting, null path, shipment capture/merge."""

import os

import pytest

from repro.obs import (
    NULL_TRACER,
    SpanRecord,
    Tracer,
    counters,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    telemetry_shipment,
    tracing_requested,
    use_tracer,
)
from repro.obs.tracer import _NULL_SPAN, TRACE_ENV


def test_span_nesting_builds_paths():
    t = Tracer()
    with use_tracer(t):
        with t.span("run"):
            with t.span("scf", natoms=3):
                pass
            with t.span("cphf"):
                with t.span("dfpt.p1"):
                    pass
    paths = [r.path for r in t.records]
    # records append at span *exit*, innermost first
    assert paths == ["run/scf", "run/cphf/dfpt.p1", "run/cphf", "run"]
    scf = next(r for r in t.records if r.name == "scf")
    assert scf.attrs == {"natoms": 3}
    assert scf.parent == "run"
    assert scf.depth == 1
    run = next(r for r in t.records if r.name == "run")
    assert run.parent is None
    assert run.dur >= scf.dur >= 0.0


def test_span_set_attaches_mid_span_attrs():
    t = Tracer()
    with t.span("scf", nbf=7) as sp:
        sp.set(niter=12, converged=True)
    assert t.records[0].attrs == {"nbf": 7, "niter": 12, "converged": True}


def test_default_tracer_is_null_and_shared():
    assert get_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled
    # the null span is one shared object: no per-call allocation
    s1 = NULL_TRACER.span("scf", natoms=3)
    s2 = NULL_TRACER.span("cphf")
    assert s1 is s2 is _NULL_SPAN
    with s1 as sp:
        sp.set(anything=1)  # silently ignored
    assert NULL_TRACER.export() == []


def test_use_tracer_restores_previous():
    t = Tracer()
    assert get_tracer() is NULL_TRACER
    with use_tracer(t):
        assert get_tracer() is t
    assert get_tracer() is NULL_TRACER


def test_set_tracer_returns_previous():
    t = Tracer()
    prev = set_tracer(t)
    try:
        assert prev is NULL_TRACER
        assert get_tracer() is t
    finally:
        set_tracer(prev)


def test_enable_disable_tracing_env_roundtrip():
    assert not tracing_requested()
    tracer = enable_tracing()
    try:
        assert tracing_requested()
        assert os.environ[TRACE_ENV] == "1"
        assert get_tracer() is tracer
        assert tracer.enabled
    finally:
        disable_tracing()
    assert not tracing_requested()
    assert get_tracer() is NULL_TRACER


def test_record_dict_roundtrip():
    rec = SpanRecord(name="scf", path="run/scf", ts=1.5, dur=0.25,
                     pid=123, tid=7, attrs={"nbf": 7})
    back = SpanRecord.from_dict(rec.as_dict())
    assert back == rec


def test_shipment_captures_when_ambient_is_foreign(monkeypatch):
    """A pool worker's fork-inherited tracer belongs to the parent pid:
    the shipment must install a local tracer and fill ``spans``."""
    monkeypatch.setenv(TRACE_ENV, "1")
    inherited = Tracer()
    inherited.origin_pid = os.getpid() + 1  # simulate the fork
    with use_tracer(inherited):
        with telemetry_shipment() as shipment:
            with get_tracer().span("scf"):
                counters().inc("scf.runs")
        assert get_tracer() is inherited     # restored
    assert [s["name"] for s in shipment.spans] == ["scf"]
    assert shipment.counters == {"scf.runs": 1}
    assert inherited.records == []           # nothing leaked to the fork copy


def test_shipment_passthrough_when_ambient_is_live(monkeypatch):
    """In-process execution: spans flow to the ambient tracer, the
    shipment stays empty, but the counter delta is still recorded."""
    monkeypatch.setenv(TRACE_ENV, "1")
    t = Tracer()
    with use_tracer(t):
        with telemetry_shipment() as shipment:
            with get_tracer().span("scf"):
                counters().inc("scf.runs")
    assert shipment.spans == []
    assert shipment.counters == {"scf.runs": 1}
    assert [r.name for r in t.records] == ["scf"]


def test_shipment_no_capture_without_env():
    with telemetry_shipment() as shipment:
        with get_tracer().span("scf"):
            counters().inc("scf.runs")
    assert shipment.spans == []
    assert shipment.counters == {"scf.runs": 1}


def test_adopt_reroots_under_current_span():
    worker = Tracer()
    with worker.span("fragment"):
        with worker.span("scf"):
            pass
    parent = Tracer()
    with parent.span("run"):
        with parent.span("fragment_response"):
            parent.adopt(worker.export())
    adopted = [r.path for r in parent.records if r.name in ("fragment", "scf")]
    assert adopted == [
        "run/fragment_response/fragment/scf",
        "run/fragment_response/fragment",
    ]


def test_adopt_at_root_keeps_paths():
    worker = Tracer()
    with worker.span("scf"):
        pass
    parent = Tracer()
    parent.adopt(worker.export())
    assert parent.records[0].path == "scf"


def test_exception_still_closes_span():
    t = Tracer()
    with pytest.raises(RuntimeError):
        with t.span("scf"):
            raise RuntimeError("diverged")
    assert [r.name for r in t.records] == ["scf"]
    assert t.current_path() == ""
