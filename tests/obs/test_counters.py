"""Counter registry semantics."""

from repro.obs import Counters, counters, reset_counters


def test_inc_get_default_zero():
    c = Counters()
    assert c.get("scf.runs") == 0
    c.inc("scf.runs")
    c.inc("scf.iterations", 12)
    assert c.get("scf.runs") == 1
    assert c.get("scf.iterations") == 12


def test_as_dict_is_name_sorted():
    c = Counters()
    c.inc("z.last")
    c.inc("a.first")
    assert list(c.as_dict()) == ["a.first", "z.last"]


def test_delta_since_omits_unchanged():
    c = Counters()
    c.inc("scf.runs", 2)
    snap = c.snapshot()
    c.inc("scf.iterations", 9)
    c.inc("scf.runs", 0)
    assert c.delta_since(snap) == {"scf.iterations": 9}


def test_merge_registry_and_dict():
    a = Counters()
    a.inc("cache.hits", 3)
    b = Counters()
    b.inc("cache.hits", 2)
    b.inc("cache.misses")
    a.merge(b)
    a.merge({"cache.misses": 4})
    assert a.as_dict() == {"cache.hits": 5, "cache.misses": 5}


def test_reset_and_len():
    c = Counters()
    c.inc("x")
    assert len(c) == 1
    c.reset()
    assert len(c) == 0
    assert c.as_dict() == {}


def test_global_registry_reset():
    counters().inc("scf.runs")
    assert counters().get("scf.runs") == 1
    reset_counters()
    assert counters().get("scf.runs") == 0
    assert counters() is counters()
