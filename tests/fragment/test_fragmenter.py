import numpy as np
import pytest

from repro.fragment import decompose_protein, decompose_system, decompose_waters
from repro.geometry import build_polypeptide, water_box


@pytest.fixture(scope="module")
def penta():
    return build_polypeptide(["GLY", "ALA", "GLY", "SER", "GLY"])


def test_fragment_and_concap_counts(penta):
    protein, residues = penta
    pieces = decompose_protein(protein, residues, generalized_concaps=False)
    frags = [p for p in pieces if p.kind == "fragment"]
    concaps = [p for p in pieces if p.kind == "concap"]
    n = len(residues)
    assert len(frags) == n - 2       # paper: N-2 fragments
    assert len(concaps) == n - 3     # paper: N-3 conjugate caps
    assert all(p.sign == 1.0 for p in frags)
    assert all(p.sign == -1.0 for p in concaps)


def test_residue_coverage_identity(penta):
    """Signed sum over pieces covers every residue's atoms exactly once."""
    protein, residues = penta
    pieces = decompose_protein(protein, residues, generalized_concaps=False)
    counts = np.zeros(protein.natoms)
    for p in pieces:
        for g in p.atom_map:
            if g >= 0:
                counts[g] += p.sign
    assert np.allclose(counts, 1.0)


def test_coverage_identity_with_gcs(penta):
    """Generalized concaps are net-zero: dimer (+1) minus two monomers."""
    protein, residues = penta
    pieces = decompose_protein(protein, residues, lambda_angstrom=30.0,
                               min_sequence_separation=3)
    counts = np.zeros(protein.natoms)
    for p in pieces:
        mult = p.multiplicity if p.kind == "gc_mono" else 1
        for g in p.atom_map:
            if g >= 0:
                counts[g] += p.sign * mult
    assert np.allclose(counts, 1.0)


def test_short_chain_single_fragment():
    protein, residues = build_polypeptide(["GLY", "GLY"])
    pieces = decompose_protein(protein, residues)
    assert len(pieces) == 1
    assert pieces[0].kind == "fragment"
    assert pieces[0].natoms == protein.natoms


def test_pieces_closed_shell(penta):
    protein, residues = penta
    for p in decompose_protein(protein, residues, lambda_angstrom=30.0):
        assert p.geometry.nelectrons % 2 == 0, p.label


def test_water_decomposition_counts():
    waters = water_box(8, seed=0)
    pieces = decompose_waters(waters, global_offset=0, lambda_angstrom=4.0)
    one_body = [p for p in pieces if p.kind == "water"]
    dimers = [p for p in pieces if p.kind == "gc_dimer"]
    monos = [p for p in pieces if p.kind == "gc_mono"]
    assert len(one_body) == 8
    assert len(dimers) > 0
    # every dimer contributes exactly two monomer subtractions
    assert sum(m.multiplicity for m in monos) == 2 * len(dimers)


def test_water_coverage_identity():
    waters = water_box(6, seed=1)
    pieces = decompose_waters(waters, global_offset=0, lambda_angstrom=4.0)
    natoms = 18
    counts = np.zeros(natoms)
    for p in pieces:
        mult = p.multiplicity if p.kind == "gc_mono" else 1
        for g in p.atom_map:
            counts[g] += p.sign * mult
    assert np.allclose(counts, 1.0)


def test_decompose_system_combined(penta):
    protein, residues = penta
    waters = water_box(4, seed=2)
    # shift waters near the protein so residue-water pairs exist
    shift = protein.coords_angstrom().mean(axis=0) + np.array([0.0, 6.0, 0.0])
    moved = [w.translated((shift - w.coords_angstrom()[0]) / 0.529177210903)
             for w in waters]
    dec = decompose_system(protein=protein, residues=residues, waters=moved)
    assert dec.natoms_total == protein.natoms + 12
    kinds = {p.kind for p in dec.pieces}
    assert "fragment" in kinds and "water" in kinds
    # global coverage identity
    counts = np.zeros(dec.natoms_total)
    for p in dec.pieces:
        mult = p.multiplicity if p.kind == "gc_mono" else 1
        for g in p.atom_map:
            if g >= 0:
                counts[g] += p.sign * mult
    assert np.allclose(counts, 1.0)


def test_decompose_system_requires_input():
    with pytest.raises(ValueError):
        decompose_system()


def test_decompose_protein_needs_residues(penta):
    protein, _ = penta
    with pytest.raises(ValueError, match="residue bookkeeping"):
        decompose_system(protein=protein, residues=None)
