import numpy as np
import pytest

from repro.dfpt.hessian import FragmentResponse
from repro.fragment.assembly import (
    assemble_energy,
    assemble_gradient,
    assemble_response,
    assemble_sparse_hessian,
)
from repro.fragment.fragmenter import QFPiece
from repro.geometry.atoms import Geometry


def _piece(kind, sign, atom_map, mult=1):
    n = len(atom_map)
    geom = Geometry(["H"] * n, np.arange(3 * n, dtype=float).reshape(n, 3))
    return QFPiece(kind, sign, geom, np.asarray(atom_map), multiplicity=mult)


def _response(piece, seed):
    rng = np.random.default_rng(seed)
    n3 = 3 * piece.natoms
    h = rng.normal(size=(n3, n3))
    h = h + h.T
    return FragmentResponse(
        geometry=piece.geometry, energy=float(rng.normal()), hessian=h,
        dalpha_dr=rng.normal(size=(n3, 3, 3)),
        alpha=np.eye(3), gradient=rng.normal(size=(piece.natoms, 3)),
    )


def test_energy_signed_sum():
    pieces = [_piece("fragment", 1.0, [0]), _piece("concap", -1.0, [0])]
    assert assemble_energy(pieces, [5.0, 2.0]) == pytest.approx(3.0)


def test_energy_multiplicity():
    pieces = [_piece("gc_mono", -1.0, [0], mult=3)]
    assert assemble_energy(pieces, [2.0]) == pytest.approx(-6.0)


def test_energy_length_mismatch():
    with pytest.raises(ValueError):
        assemble_energy([_piece("water", 1.0, [0])], [1.0, 2.0])


def test_gradient_maps_atoms():
    piece = _piece("fragment", 1.0, [2, 0])
    g_piece = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
    g = assemble_gradient([piece], [g_piece], natoms_total=3)
    assert np.allclose(g[2], [1.0, 2.0, 3.0])
    assert np.allclose(g[0], [4.0, 5.0, 6.0])
    assert np.allclose(g[1], 0.0)


def test_gradient_drops_cap_rows():
    piece = _piece("fragment", 1.0, [1, -1])
    g_piece = np.ones((2, 3))
    g = assemble_gradient([piece], [g_piece], natoms_total=2)
    assert np.allclose(g[1], 1.0)
    assert np.allclose(g[0], 0.0)


def test_hessian_assembly_overlapping_pieces():
    """fragment(0,1) + fragment(1,2) - concap(1) must reproduce a
    block-additive Hessian with the shared atom counted once."""
    p1 = _piece("fragment", 1.0, [0, 1])
    p2 = _piece("fragment", 1.0, [1, 2])
    pc = _piece("concap", -1.0, [1])
    r1, r2, rc = _response(p1, 1), _response(p2, 2), _response(pc, 3)
    out = assemble_response([p1, p2, pc], [r1, r2, rc], natoms_total=3)
    # atom-1 diagonal block: sum of both fragments minus concap
    block = (
        r1.hessian[3:6, 3:6] + r2.hessian[0:3, 0:3] - rc.hessian[0:3, 0:3]
    )
    assert np.allclose(out.hessian[3:6, 3:6], block)
    # atom 0 - atom 2 coupling: no shared piece, must be zero
    assert np.allclose(out.hessian[0:3, 6:9], 0.0)
    assert out.energy == pytest.approx(r1.energy + r2.energy - rc.energy)


def test_dalpha_assembly():
    p = _piece("water", 1.0, [1])
    r = _response(p, 4)
    out = assemble_response([p], [r], natoms_total=2)
    assert np.allclose(out.dalpha_dr[3:6], r.dalpha_dr)
    assert np.allclose(out.dalpha_dr[0:3], 0.0)


def test_sparse_matches_dense():
    p1 = _piece("fragment", 1.0, [0, 2])
    p2 = _piece("gc_mono", -1.0, [1], mult=2)
    rs = [_response(p1, 5), _response(p2, 6)]
    dense = assemble_response([p1, p2], rs, natoms_total=3).hessian
    sparse = assemble_sparse_hessian([p1, p2], rs, natoms_total=3)
    assert np.allclose(sparse.toarray(), dense, atol=1e-12)


def test_sparse_mass_weighting():
    p = _piece("water", 1.0, [0])
    r = _response(p, 7)
    masses = np.array([4.0])
    sp = assemble_sparse_hessian([p], [r], natoms_total=1, masses_amu=masses)
    assert np.allclose(sp.toarray(), r.hessian / 4.0, atol=1e-12)


def test_response_length_mismatch():
    p = _piece("water", 1.0, [0])
    with pytest.raises(ValueError):
        assemble_response([p], [], natoms_total=1)
