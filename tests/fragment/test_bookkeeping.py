import numpy as np
import pytest

from repro.fragment.bookkeeping import (
    spike_paper_reference,
    synthetic_fragment_size_distribution,
    system_statistics,
)
from repro.geometry import build_polypeptide, spike_like_protein, water_box


def test_counters_small_protein():
    protein, residues = build_polypeptide(["GLY"] * 6)
    stats = system_statistics(protein, residues, n_waters=0)
    assert stats.n_residues == 6
    assert stats.n_fragments == 4        # N-2
    assert stats.n_conjugate_caps == 3   # N-3
    assert stats.fragment_sizes.size == 4


def test_fragment_sizes_include_caps():
    protein, residues = build_polypeptide(["GLY"] * 5)
    stats = system_statistics(protein, residues, n_waters=0)
    # interior fragment covers 3 glycines (7 in-chain atoms each... the
    # terminal residues carry extra termini atoms) plus 2 H caps
    assert stats.fragment_sizes.max() >= 21


def test_water_pairs_explicit_vs_estimate():
    waters = water_box(64, seed=0)
    est = system_statistics(None, None, n_waters=64)
    exact = system_statistics(None, None, n_waters=64, explicit_waters=waters)
    assert exact.n_water_water_pairs > 0
    # surface effects: measured below homogeneous estimate
    assert exact.n_water_water_pairs < est.n_water_water_pairs


def test_spike_like_gc_density_scales():
    protein, residues = spike_like_protein(200, seed=0)
    stats = system_statistics(protein, residues, n_waters=0)
    # a folded chain: a few generalized concaps per residue (paper:
    # 11,394 / 3,180 = 3.6)
    per_residue = stats.n_generalized_concaps / 200
    assert 0.5 < per_residue < 12.0


def test_paper_reference_table():
    ref = spike_paper_reference()
    assert ref["atoms"] == 101_299_008
    assert ref["generalized_concaps"] == 11394


def test_synthetic_size_distribution_range():
    sizes = synthetic_fragment_size_distribution(500, seed=1)
    assert sizes.min() >= 9
    assert sizes.max() <= 68
    assert sizes.size == 498
    # three-residue fragments of the 16-type spike composition average
    # in the upper half of the paper's 9-68 window
    assert 20 < sizes.mean() < 60
