import numpy as np
import pytest

from repro.constants import ANGSTROM_TO_BOHR
from repro.fragment.capping import cap_position, capped_residue_range
from repro.geometry import build_polypeptide


@pytest.fixture(scope="module")
def tetra():
    return build_polypeptide(["GLY", "ALA", "SER", "GLY"])


def test_cap_position_distance():
    host = np.zeros(3)
    toward = np.array([0.0, 0.0, 3.0])
    pos = cap_position(host, toward, 1.09)
    assert np.linalg.norm(pos - host) == pytest.approx(1.09 * ANGSTROM_TO_BOHR)
    assert pos[2] > 0  # along the cut bond


def test_cap_position_degenerate():
    with pytest.raises(ValueError):
        cap_position(np.zeros(3), np.zeros(3), 1.0)


def test_interior_range_gets_two_caps(tetra):
    protein, residues = tetra
    geom, amap = capped_residue_range(protein, residues, 1, 2)
    n_inner = sum(len(residues[r].atom_indices) for r in (1, 2))
    assert geom.natoms == n_inner + 2
    assert (amap == -1).sum() == 2
    assert geom.symbols[-1] == "H" and geom.symbols[-2] == "H"


def test_terminal_ranges_get_one_cap(tetra):
    protein, residues = tetra
    geom_n, amap_n = capped_residue_range(protein, residues, 0, 1)
    assert (amap_n == -1).sum() == 1
    geom_c, amap_c = capped_residue_range(protein, residues, 2, 3)
    assert (amap_c == -1).sum() == 1


def test_whole_chain_no_caps(tetra):
    protein, residues = tetra
    geom, amap = capped_residue_range(protein, residues, 0, 3)
    assert (amap == -1).sum() == 0
    assert geom.natoms == protein.natoms


def test_capped_pieces_closed_shell(tetra):
    protein, residues = tetra
    for first, last in ((0, 1), (1, 1), (1, 2), (2, 3)):
        geom, _ = capped_residue_range(protein, residues, first, last)
        assert geom.nelectrons % 2 == 0, (first, last)


def test_atom_map_points_at_original_atoms(tetra):
    protein, residues = tetra
    geom, amap = capped_residue_range(protein, residues, 1, 1)
    for k, g in enumerate(amap):
        if g >= 0:
            assert np.allclose(geom.coords[k], protein.coords[g])


def test_range_bounds_checked(tetra):
    protein, residues = tetra
    with pytest.raises(IndexError):
        capped_residue_range(protein, residues, 2, 99)
