"""End-to-end pipeline tests (kept at 2-3 waters for runtime)."""

import numpy as np
import pytest

from repro.geometry import water_box
from repro.pipeline import QFRamanPipeline


@pytest.fixture(scope="module")
def small_box_run():
    waters = water_box(3, seed=3)
    pipe = QFRamanPipeline(waters=waters)
    omega = np.linspace(100, 5000, 400)
    return pipe.run(omega_cm1=omega, sigma_cm1=30.0, solver="dense"), omega


def test_pipeline_requires_input():
    with pytest.raises(ValueError):
        QFRamanPipeline()


def test_decomposition_counts(small_box_run):
    res, _ = small_box_run
    assert res.decomposition.counts["water"] == 3
    assert res.natoms == 9


def test_dedupe_reuses_identical_waters(small_box_run):
    res, _ = small_box_run
    one_body = res.decomposition.counts["water"]
    # 3 identical waters -> 1 unique; dimers all unique
    dimers = res.decomposition.counts.get("gc_dimer", 0)
    assert res.unique_pieces == 1 + dimers


def test_spectrum_produced(small_box_run):
    res, omega = small_box_run
    assert res.spectrum is not None
    assert res.spectrum.intensity.shape == omega.shape
    assert res.spectrum.intensity.max() > 0


def test_spectrum_has_water_bands(small_box_run):
    res, _ = small_box_run
    sp = res.spectrum.normalized()
    from repro.analysis import find_peaks

    peaks = [p.position_cm1 for p in find_peaks(sp.omega_cm1, sp.intensity)]
    # O-H stretch region (unscaled RHF/STO-3G: 4100-4900)
    assert any(4000 < p < 5000 for p in peaks)
    # bend region (unscaled: ~2050)
    assert any(1800 < p < 2300 for p in peaks)


def test_lanczos_solver_matches_dense(small_box_run):
    res, omega = small_box_run
    waters = water_box(3, seed=3)
    pipe = QFRamanPipeline(waters=waters)
    res_l = pipe.run(omega_cm1=omega, sigma_cm1=30.0, solver="lanczos",
                     lanczos_k=40)
    scale = res.spectrum.intensity.max()
    assert np.abs(res.spectrum.intensity - res_l.spectrum.intensity).max() < 1e-6 * scale


def test_unknown_solver_rejected():
    waters = water_box(2, seed=0)
    pipe = QFRamanPipeline(waters=waters, compute_raman=True)
    with pytest.raises(ValueError, match="solver"):
        pipe.run(omega_cm1=np.linspace(0, 100, 5), solver="qr")


def test_workload_sizes(small_box_run):
    res, _ = small_box_run
    waters = water_box(3, seed=3)
    pipe = QFRamanPipeline(waters=waters)
    sizes = pipe.workload_sizes(res.decomposition)
    assert sizes.min() == 3
    assert (sizes == 6).sum() == res.decomposition.counts.get("gc_dimer", 0)
