import numpy as np
import pytest

from repro.dfpt.hessian import FragmentResponse
from repro.geometry import water_molecule
from repro.geometry.atoms import Geometry
from repro.geometry.water import random_rotation
from repro.pipeline.rigid import (
    geometry_signature,
    kabsch_rotation,
    rotate_response,
    snap_rigid_copies,
)


def test_kabsch_recovers_rotation():
    rng = np.random.default_rng(0)
    p = rng.normal(size=(6, 3))
    rot = random_rotation(rng)
    t = np.array([1.0, -2.0, 0.5])
    q = p @ rot.T + t
    r, t_found, rmsd = kabsch_rotation(p, q)
    assert np.allclose(r, rot, atol=1e-10)
    assert np.allclose(t_found, t, atol=1e-10)
    assert rmsd < 1e-10


def test_kabsch_proper_rotation_only():
    rng = np.random.default_rng(1)
    p = rng.normal(size=(5, 3))
    q = p.copy()
    q[:, 0] *= -1  # reflection
    r, _t, _rmsd = kabsch_rotation(p, q)
    assert np.linalg.det(r) == pytest.approx(1.0)


def test_kabsch_shape_mismatch():
    with pytest.raises(ValueError):
        kabsch_rotation(np.zeros((3, 3)), np.zeros((4, 3)))


def test_signature_invariant_under_motion():
    w = water_molecule()
    rng = np.random.default_rng(2)
    moved = Geometry(
        list(w.symbols), w.coords @ random_rotation(rng).T + 3.7
    )
    assert geometry_signature(w) == geometry_signature(moved)


def test_signature_differs_for_different_geometry():
    w = water_molecule()
    stretched = w.displaced(1, 0, 0.05)
    assert geometry_signature(w) != geometry_signature(stretched)


@pytest.fixture(scope="module")
def water_resp(water_optimized):
    from repro.dfpt import fragment_response

    return water_optimized.geometry, fragment_response(
        water_optimized.geometry, eri_mode="df"
    )


def test_rotated_response_preserves_frequencies(water_resp):
    geom, resp = water_resp
    rng = np.random.default_rng(3)
    rot = random_rotation(rng)
    target = Geometry(list(geom.symbols), geom.coords @ rot.T)
    rotated = rotate_response(resp, rot, target)
    e0 = np.sort(np.linalg.eigvalsh(resp.hessian))
    e1 = np.sort(np.linalg.eigvalsh(rotated.hessian))
    assert np.allclose(e0, e1, atol=1e-10)


def test_rotated_response_matches_recomputation(water_resp):
    """Gold test: rotating the reference response must equal computing
    the response of the rotated geometry from scratch."""
    from repro.dfpt import fragment_response

    geom, resp = water_resp
    rng = np.random.default_rng(4)
    rot = random_rotation(rng)
    target = Geometry(list(geom.symbols), geom.coords @ rot.T)
    rotated = rotate_response(resp, rot, target)
    direct = fragment_response(target, eri_mode="df")
    assert np.allclose(rotated.hessian, direct.hessian, atol=2e-4)
    assert np.allclose(rotated.dalpha_dr, direct.dalpha_dr, atol=2e-3)


def test_rotate_response_transforms_dmu_dr():
    """Regression: the dipole-derivative block must co-rotate with the
    geometry (it used to be silently dropped). Both the displacement
    index and the dipole component transform, so each atom's 3x3 block
    B maps to R B R^T."""
    w = water_molecule()
    n = w.natoms
    rng = np.random.default_rng(6)
    dmu = rng.standard_normal((3 * n, 3))
    resp = FragmentResponse(
        geometry=w, energy=0.0, hessian=np.zeros((3 * n, 3 * n)),
        dalpha_dr=None, alpha=None,
        gradient=np.zeros((n, 3)), dmu_dr=dmu,
    )
    rot = random_rotation(rng)
    target = Geometry(list(w.symbols), w.coords @ rot.T)
    rotated = rotate_response(resp, rot, target)
    assert rotated.dmu_dr is not None
    for i in range(n):
        block = dmu[3 * i: 3 * i + 3, :]
        np.testing.assert_allclose(
            rotated.dmu_dr[3 * i: 3 * i + 3, :],
            rot @ block @ rot.T, atol=1e-12,
        )
    # a response without dipole derivatives stays without them
    bare = FragmentResponse(
        geometry=w, energy=0.0, hessian=np.zeros((3 * n, 3 * n)),
        dalpha_dr=None, alpha=None, gradient=np.zeros((n, 3)),
    )
    assert rotate_response(bare, rot, target).dmu_dr is None


def test_snap_rigid_copies():
    w = water_molecule()
    rng = np.random.default_rng(5)
    copies = [
        Geometry(list(w.symbols),
                 w.displaced(1, 0, 0.03).coords @ random_rotation(rng).T + k)
        for k in range(3)
    ]
    snapped = snap_rigid_copies(copies, w)
    for orig, snap in zip(copies, snapped):
        # template internals restored...
        d01 = np.linalg.norm(snap.coords[1] - snap.coords[0])
        assert d01 == pytest.approx(
            np.linalg.norm(w.coords[1] - w.coords[0]), abs=1e-10
        )
        # ...near the copy's position
        assert np.linalg.norm(snap.coords[0] - orig.coords[0]) < 0.2


def test_snap_rejects_mismatched_elements():
    w = water_molecule()
    other = Geometry(["O", "H", "D" if False else "O"], w.coords)
    with pytest.raises(ValueError):
        snap_rigid_copies([other], w)
