import numpy as np
import pytest

from repro.dfpt import fragment_response
from repro.geometry import water_molecule
from repro.pipeline.cache import ResponseCache, response_key


def test_key_deterministic_and_sensitive():
    w = water_molecule()
    k1 = response_key(w, "sto-3g", 5e-3)
    k2 = response_key(w, "sto-3g", 5e-3)
    assert k1 == k2
    assert response_key(w.displaced(0, 0, 1e-6), "sto-3g", 5e-3) != k1
    assert response_key(w, "sto-3g", 1e-3) != k1


def test_miss_then_hit(tmp_path, water_optimized):
    cache = ResponseCache(tmp_path)
    geom = water_optimized.geometry
    assert cache.load(geom, "sto-3g", 5e-3) is None
    resp = fragment_response(geom, eri_mode="df", compute_ir=True)
    cache.store(resp, "sto-3g", 5e-3)
    back = cache.load(geom, "sto-3g", 5e-3)
    assert back is not None
    assert back.energy == pytest.approx(resp.energy)
    assert np.allclose(back.hessian, resp.hessian)
    assert np.allclose(back.dalpha_dr, resp.dalpha_dr)
    assert np.allclose(back.dmu_dr, resp.dmu_dr)
    assert back.meta["cached"]
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1


def test_pipeline_uses_cache(tmp_path):
    from repro.pipeline import QFRamanPipeline

    waters = [water_molecule()]
    omega = np.linspace(500, 5000, 50)
    p1 = QFRamanPipeline(waters=waters, cache_dir=tmp_path)
    r1 = p1.run(omega_cm1=omega)
    assert r1.unique_pieces == 1
    # a fresh pipeline over the same geometry computes nothing new
    p2 = QFRamanPipeline(waters=waters, cache_dir=tmp_path)
    r2 = p2.run(omega_cm1=omega)
    assert r2.unique_pieces == 0
    assert np.allclose(r1.spectrum.intensity, r2.spectrum.intensity)
