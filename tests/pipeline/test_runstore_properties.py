"""Property-based tests for the RunStore and its content-hash keys.

Two invariants carry the checkpoint/resume guarantee:

* any interleaving of writes, crashes (stray partial temp files), and
  reloads round-trips every stored response bit for bit — a reader
  never sees a half-written checkpoint;
* the content-hash key depends only on what determines the numerical
  result (geometry + computation config), never on bookkeeping such as
  fragment ordering, indices, attempt numbers, or dict insertion
  order — so a resumed run with reshuffled work still hits.
"""

import tempfile
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.pipeline.cache import task_key
from repro.pipeline.executor import FragmentTask
from repro.pipeline.resilience import RunStore

# -- strategies -----------------------------------------------------------

finite = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False,
                   allow_infinity=False, width=64)
coords3 = st.lists(st.tuples(finite, finite, finite),
                   min_size=1, max_size=3)


def _geometry(coords) -> Geometry:
    return Geometry(["H"] * len(coords), np.array(coords, dtype=float))


def _task(idx: int, coords) -> FragmentTask:
    return FragmentTask(index=idx, label=f"frag[{idx}]",
                        geometry=_geometry(coords))


def _response(task: FragmentTask, seed: int) -> FragmentResponse:
    """A synthetic but shape-correct response with arbitrary float64s."""
    rng = np.random.default_rng(seed)
    n = task.geometry.natoms
    h = rng.standard_normal((3 * n, 3 * n))
    return FragmentResponse(
        geometry=task.geometry,
        energy=float(rng.standard_normal()),
        hessian=0.5 * (h + h.T),
        dalpha_dr=rng.standard_normal((3 * n, 3, 3)),
        alpha=rng.standard_normal((3, 3)),
        gradient=rng.standard_normal((n, 3)),
    )


def _assert_identical(got: FragmentResponse, ref: FragmentResponse):
    assert got.energy == ref.energy
    assert np.array_equal(got.hessian, ref.hessian)
    assert np.array_equal(got.dalpha_dr, ref.dalpha_dr)
    assert np.array_equal(got.alpha, ref.alpha)
    assert np.array_equal(got.gradient, ref.gradient)


# -- write / crash / reload interleavings ---------------------------------

# an op is ("write", frag_id) | ("crash", frag_id) | ("reload",)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 3)),
        st.tuples(st.just("crash"), st.integers(0, 3)),
        st.just(("reload",)),
    ),
    min_size=1, max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(ops=_ops, coords=coords3)
def test_write_crash_reload_round_trips_exactly(ops, coords):
    """Whatever the interleaving, a (re)loaded store returns exactly
    the responses that were fully written — crash debris (partial temp
    files) is never visible."""
    tasks = {i: _task(i, [(c[0] + i, c[1], c[2]) for c in coords])
             for i in range(4)}
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(tmp)
        model: dict[int, FragmentResponse] = {}
        for op in ops:
            if op[0] == "write":
                i = op[1]
                resp = _response(tasks[i], seed=i)
                store.store(tasks[i], resp)
                model[i] = resp
            elif op[0] == "crash":
                # a killed writer leaves a partial temp file behind —
                # same prefix the atomic writer uses before rename
                i = op[1]
                key = store.key_for(tasks[i])
                stray = Path(tmp) / f"frag_{key}.tmp.npz"
                stray.write_bytes(b"\x00truncated checkpoint")
            else:
                store = RunStore(tmp)   # a fresh process opening the dir
            for i, task in tasks.items():
                loaded = store.load(task)
                if i in model:
                    assert loaded is not None
                    _assert_identical(loaded, model[i])
                else:
                    assert loaded is None
        assert len(store) == len(model)


@settings(max_examples=40, deadline=None)
@given(coords=coords3, seed=st.integers(0, 2**31))
def test_store_overwrite_keeps_latest(coords, seed):
    task = _task(0, coords)
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(tmp)
        store.store(task, _response(task, seed))
        newer = _response(task, seed + 1)
        store.store(task, newer)
        assert len(store) == 1
        _assert_identical(RunStore(tmp).load(task), newer)


# -- key invariance -------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(coords=coords3, perm_seed=st.integers(0, 2**31),
       index=st.integers(0, 100), attempt=st.integers(1, 10))
def test_task_key_ignores_bookkeeping(coords, perm_seed, index, attempt):
    """Keys are invariant to everything that cannot change the numbers:
    fragment order in the work list, the piece index, the attempt
    counter, and the label."""
    tasks = [_task(i, [(c[0] + i, c[1], c[2]) for c in coords])
             for i in range(3)]
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(tmp)
        baseline = [store.key_for(t) for t in tasks]
        rng = np.random.default_rng(perm_seed)
        order = rng.permutation(len(tasks))
        shuffled = {int(i): store.key_for(tasks[int(i)]) for i in order}
        assert all(shuffled[i] == baseline[i] for i in range(len(tasks)))
        t = tasks[0]
        assert store.key_for(
            replace(t, index=index, attempt=attempt, label="other")
        ) == baseline[0]
        # distinct geometries get distinct keys
        assert len(set(baseline)) == len(baseline)


@given(extra_items=st.lists(
    st.tuples(st.text("abcdef", min_size=1, max_size=6),
              st.integers(-5, 5)),
    min_size=1, max_size=5, unique_by=lambda kv: kv[0],
))
@settings(max_examples=60, deadline=None)
def test_task_key_ignores_dict_insertion_order(extra_items):
    geom = _geometry([(0.0, 0.0, 0.0), (0.0, 0.0, 1.4)])
    forward = dict(extra_items)
    backward = dict(reversed(extra_items))
    kw = dict(compute_raman=True, compute_ir=False, eri_mode="auto",
              schwarz_cutoff=1.0e-12)
    assert task_key(geom, "sto-3g", 5.0e-3, extra=forward, **kw) \
        == task_key(geom, "sto-3g", 5.0e-3, extra=backward, **kw)
    # and the extra config is not silently dropped
    changed = dict(forward)
    k0 = next(iter(changed))
    changed[k0] += 1
    assert task_key(geom, "sto-3g", 5.0e-3, extra=changed, **kw) \
        != task_key(geom, "sto-3g", 5.0e-3, extra=forward, **kw)


def test_task_key_sensitive_to_config():
    geom = _geometry([(0.0, 0.0, 0.0), (0.0, 0.0, 1.4)])
    kw = dict(compute_raman=True, compute_ir=False, eri_mode="auto",
              schwarz_cutoff=1.0e-12)
    base = task_key(geom, "sto-3g", 5.0e-3, **kw)
    assert task_key(geom, "6-31g", 5.0e-3, **kw) != base
    assert task_key(geom, "sto-3g", 1.0e-3, **kw) != base
    assert task_key(geom, "sto-3g", 5.0e-3,
                    **{**kw, "compute_raman": False}) != base
