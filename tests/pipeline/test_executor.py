"""Executor backends: numerical identity, error handling, reporting.

The parallel backends must be bit-compatible with the serial loop up to
1e-10 (same code path, same SCF seeds), and a worker failure must come
back as a labeled exception, not a hang.
"""

import numpy as np
import pytest

from repro.geometry import water_box, water_molecule
from repro.geometry.atoms import Geometry
from repro.pipeline import QFRamanPipeline
from repro.pipeline.executor import (
    DisplacementExecutor,
    FragmentExecutorError,
    FragmentTask,
    ProcessExecutor,
    SerialExecutor,
    largest_first,
    make_executor,
)

ATOL = 1e-10


def _water_tasks():
    w = water_molecule()
    shift = np.array([[0.02, 0.0, 0.0], [0.0, 0.01, 0.0], [0.0, 0.0, 0.015]])
    distorted = Geometry(list(w.symbols), w.coords + shift)
    return [
        FragmentTask(index=0, label="w0", geometry=w, eri_mode="exact"),
        FragmentTask(index=1, label="w1", geometry=distorted,
                     eri_mode="exact"),
    ]


@pytest.fixture(scope="module")
def serial_run():
    tasks = _water_tasks()
    with SerialExecutor() as ex:
        responses, report = ex.run(tasks)
    return tasks, responses, report


def _assert_matches(responses, reference):
    assert set(responses) == set(reference)
    for k, ref in reference.items():
        got = responses[k]
        assert np.allclose(got.hessian, ref.hessian, atol=ATOL)
        assert np.allclose(got.dalpha_dr, ref.dalpha_dr, atol=ATOL)
        assert np.allclose(got.alpha, ref.alpha, atol=ATOL)
        assert np.allclose(got.gradient, ref.gradient, atol=ATOL)
        assert got.energy == pytest.approx(ref.energy, abs=ATOL)


def test_serial_report(serial_run):
    tasks, responses, report = serial_run
    assert report.backend == "serial"
    assert report.max_workers == 1
    assert report.n_tasks == len(tasks) == len(report.tasks)
    assert report.wall_s > 0
    assert report.fragments_per_s > 0
    assert 0.0 < report.worker_utilization <= 1.0


def test_process_matches_serial(serial_run):
    tasks, reference, _ = serial_run
    with make_executor("process", max_workers=2) as ex:
        responses, report = ex.run(tasks)
    _assert_matches(responses, reference)
    assert report.backend == "process"
    assert report.n_tasks == len(tasks)
    # worker pids recorded for every task
    assert all(t["worker"] > 0 for t in report.tasks)


def test_displacement_matches_serial(serial_run):
    tasks, reference, _ = serial_run
    with make_executor("displacement", max_workers=2) as ex:
        responses, report = ex.run(tasks)
    _assert_matches(responses, reference)
    assert report.backend == "displacement"
    assert report.worker_utilization > 0.0


def test_largest_first_order():
    w = water_molecule()
    big = water_box(2, seed=0)
    merged = Geometry(
        list(big[0].symbols) + list(big[1].symbols),
        np.vstack([big[0].coords, big[1].coords]),
    )
    tasks = [
        FragmentTask(index=0, label="small", geometry=w),
        FragmentTask(index=1, label="big", geometry=merged),
        FragmentTask(index=2, label="small2", geometry=w),
    ]
    ordered = largest_first(tasks)
    assert [t.label for t in ordered] == ["big", "small", "small2"]


def test_make_executor_rejects_unknown():
    with pytest.raises(ValueError, match="unknown executor backend"):
        make_executor("threads")


def test_worker_exception_reraised_with_label():
    """A failing fragment (odd electron count -> RHF ValueError) must
    surface as FragmentExecutorError carrying the label — promptly."""
    bad = Geometry(["H"], np.zeros((1, 3)))
    task = FragmentTask(index=0, label="bad-fragment", geometry=bad)
    with make_executor("process", max_workers=1) as ex:
        with pytest.raises(FragmentExecutorError, match="bad-fragment"):
            ex.run([task])


def test_worker_death_attributed_to_fragment(monkeypatch):
    """A hard worker death (injected die fault) must surface as a
    labeled FragmentExecutorError naming the fragment and the phase —
    not as a bare BrokenProcessPool."""
    from concurrent.futures.process import BrokenProcessPool

    monkeypatch.setenv("QF_FAULTS", "die:doomed@*")
    h2 = Geometry(["H", "H"],
                  np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.4]]))
    task = FragmentTask(index=0, label="doomed", geometry=h2,
                        eri_mode="exact")
    with make_executor("process", max_workers=1) as ex:
        with pytest.raises(FragmentExecutorError,
                           match=r"doomed.*died.*phase=process") as err:
            ex.run([task])
    assert not isinstance(err.value, BrokenProcessPool)


def test_serial_executor_raises_with_label():
    bad = Geometry(["H"], np.zeros((1, 3)))
    task = FragmentTask(index=3, label="odd-electrons", geometry=bad)
    with pytest.raises(FragmentExecutorError, match="odd-electrons"):
        SerialExecutor().run([task])


def test_displacement_executor_raises_with_label():
    bad = Geometry(["H"], np.zeros((1, 3)))
    task = FragmentTask(index=0, label="odd-electrons", geometry=bad)
    with DisplacementExecutor(max_workers=1) as ex:
        with pytest.raises(FragmentExecutorError, match="odd-electrons"):
            ex.run([task])


@pytest.fixture(scope="module")
def serial_pipeline_run():
    w = water_molecule()
    far = Geometry(list(w.symbols), w.coords + np.array([15.0, 0.0, 0.0]))
    waters = [w, far]
    omega = np.linspace(100, 5000, 200)

    def run(executor):
        pipe = QFRamanPipeline(waters=waters, dedupe_rigid=False,
                               executor=executor, max_workers=2)
        return pipe.run(omega_cm1=omega, sigma_cm1=30.0, solver="dense")

    return run


def test_pipeline_process_backend_identical(serial_pipeline_run):
    ser = serial_pipeline_run("serial")
    par = serial_pipeline_run("process")
    assert par.unique_pieces == ser.unique_pieces == 2
    for a, b in zip(par.responses, ser.responses):
        assert np.allclose(a.hessian, b.hessian, atol=ATOL)
        assert np.allclose(a.dalpha_dr, b.dalpha_dr, atol=ATOL)
    assert np.allclose(par.spectrum.intensity, ser.spectrum.intensity,
                       atol=ATOL)
    assert ser.throughput is not None and ser.throughput.backend == "serial"
    assert par.throughput is not None and par.throughput.backend == "process"
    assert par.throughput.phase_wall_s.get("fragment_response", 0.0) > 0.0


@pytest.mark.slow
def test_pipeline_dipeptide_backends_identical():
    """Dipeptide workload (fragments + caps + dimers): process backend
    reproduces the serial responses exactly."""
    from repro.geometry import build_polypeptide

    geom, residues = build_polypeptide(["GLY", "GLY"])
    omega = np.linspace(100, 5000, 200)

    def run(executor):
        pipe = QFRamanPipeline(protein=geom, residues=residues,
                               executor=executor, max_workers=2)
        return pipe.run(omega_cm1=omega, sigma_cm1=20.0, solver="dense")

    ser = run("serial")
    par = run("process")
    for a, b in zip(par.responses, ser.responses):
        assert np.allclose(a.hessian, b.hessian, atol=ATOL)
        assert np.allclose(a.dalpha_dr, b.dalpha_dr, atol=ATOL)
    assert np.allclose(par.spectrum.intensity, ser.spectrum.intensity,
                       atol=ATOL)
