"""Integration of the canonical store with the existing cache layers.

The canonical store rides along three seams — `ResponseCache`,
`RunStore`, and the pipeline's own global store — and each seam has an
ordering contract worth pinning: exact entries always win over
canonical ones (`RunStore` resume stays bit-identical), and the mode
resolves from the explicit parameter first, then `QF_CANON`, then the
presence of a store directory.
"""

import numpy as np
import pytest

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.geometry.water import random_rotation
from repro.pipeline.cache import ResponseCache
from repro.pipeline.executor import FragmentTask
from repro.pipeline.resilience import RunStore


def _water(i: int = 0) -> Geometry:
    return Geometry(["O", "H", "H"],
                    np.array([[0.0, 0.0, 0.0],
                              [1.8 + 0.01 * i, 0.0, 0.0],
                              [-0.45, 1.75, 0.0]]))


def _rotated(g: Geometry, seed: int = 3) -> Geometry:
    rng = np.random.default_rng(seed)
    return Geometry(list(g.symbols),
                    g.coords @ random_rotation(rng).T
                    + rng.uniform(-4.0, 4.0, size=3))


def _response(g: Geometry, seed: int = 0) -> FragmentResponse:
    rng = np.random.default_rng(seed)
    h = rng.standard_normal((3 * g.natoms,) * 2)
    return FragmentResponse(
        geometry=g, energy=-74.9, hessian=0.5 * (h + h.T),
        dalpha_dr=rng.standard_normal((3 * g.natoms, 3, 3)),
        alpha=rng.standard_normal((3, 3)),
        gradient=rng.standard_normal((g.natoms, 3)),
        dmu_dr=rng.standard_normal((3 * g.natoms, 3)),
    )


def test_response_cache_rigid_fallback_hits_rotated_copy(tmp_path):
    cache = ResponseCache(tmp_path, canonical="rigid")
    g = _water()
    cache.store(_response(g), "sto-3g", 5.0e-3)
    copy = _rotated(g)
    got = cache.load(copy, "sto-3g", 5.0e-3)
    assert got is not None
    assert cache.hits == 1
    # sanity: the rotated-back Hessian has the same spectrum
    np.testing.assert_allclose(
        np.sort(np.linalg.eigvalsh(got.hessian)),
        np.sort(np.linalg.eigvalsh(_response(g).hessian)),
        atol=1.0e-10,
    )


def test_response_cache_off_mode_misses_rotated_copy(tmp_path):
    cache = ResponseCache(tmp_path, canonical="off")
    g = _water()
    cache.store(_response(g), "sto-3g", 5.0e-3)
    assert cache.load(_rotated(g), "sto-3g", 5.0e-3) is None
    assert cache.load(g, "sto-3g", 5.0e-3) is not None


def test_run_store_canonical_fallback_and_exact_first(tmp_path):
    store = RunStore(tmp_path, canonical="rigid")
    g = _water()
    task = FragmentTask(index=0, label="w0", geometry=g)
    resp = _response(g)
    store.store(task, resp)

    # a rotated copy (a different exact key) hits via the canonical
    # sidecar — this is what a re-oriented resume looks like
    moved = FragmentTask(index=1, label="w0'", geometry=_rotated(g))
    got = store.load(moved)
    assert got is not None
    assert store.canonical is not None
    assert store.canonical.hits == 1

    # the exact frag_ checkpoint wins over the canonical entry: poison
    # the canonical file and the identical-geometry load is unaffected
    for p in tmp_path.glob("canon_*.npz"):
        p.write_bytes(b"\x00poisoned")
    exact = store.load(task)
    assert exact is not None
    np.testing.assert_array_equal(exact.hessian, resp.hessian)


def test_run_store_off_by_default(tmp_path, monkeypatch):
    monkeypatch.delenv("QF_CANON", raising=False)
    store = RunStore(tmp_path)
    assert store.canonical is None
    g = _water()
    store.store(FragmentTask(index=0, label="w", geometry=g), _response(g))
    assert store.load(
        FragmentTask(index=1, label="w'", geometry=_rotated(g))
    ) is None


def test_run_store_mode_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("QF_CANON", "rigid")
    assert RunStore(tmp_path).canonical is not None
    monkeypatch.setenv("QF_CANON", "bogus")
    with pytest.raises(ValueError, match="QF_CANON"):
        RunStore(tmp_path)


def test_pipeline_mode_resolution(tmp_path, monkeypatch):
    from repro.pipeline import QFRamanPipeline

    monkeypatch.delenv("QF_CANON", raising=False)
    waters = [_water()]

    # no store directory, no env: off
    pipe = QFRamanPipeline(waters=waters)
    assert pipe.canonical_mode == "off" and pipe.canonical is None

    # a store directory implies rigid
    pipe = QFRamanPipeline(waters=waters,
                           canonical_cache=str(tmp_path / "a"))
    assert pipe.canonical_mode == "rigid" and pipe.canonical is not None

    # the env overrides the implied default...
    monkeypatch.setenv("QF_CANON", "exact")
    pipe = QFRamanPipeline(waters=waters,
                           canonical_cache=str(tmp_path / "b"))
    assert pipe.canonical_mode == "exact"

    # ...and the explicit parameter overrides the env
    pipe = QFRamanPipeline(waters=waters,
                           canonical_cache=str(tmp_path / "c"),
                           canonical_mode="rigid")
    assert pipe.canonical_mode == "rigid"

    # off with a directory: store stays disabled
    pipe = QFRamanPipeline(waters=waters,
                           canonical_cache=str(tmp_path / "d"),
                           canonical_mode="off")
    assert pipe.canonical is None


def test_cli_flags_parse_and_forward(monkeypatch):
    from repro.cli import _canonical_kwargs

    class Args:
        canonical_cache = "runs/canon"
        canonical = "rigid"

    assert _canonical_kwargs(Args()) == {
        "canonical_cache": "runs/canon", "canonical_mode": "rigid",
    }
    Args.canonical = None
    assert _canonical_kwargs(Args()) == {"canonical_cache": "runs/canon"}
    Args.canonical_cache = None
    assert _canonical_kwargs(Args()) == {}
