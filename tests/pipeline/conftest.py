"""Shared fixtures for the pipeline test suite.

The golden fixture systems (and the spectral grid they are computed
on) are defined once, in ``tests/data/golden/regenerate.py``; this
conftest loads that script as a module so the regeneration path and
the tests can never drift apart.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / "tests" / "data" / "golden"


def load_golden_module():
    spec = importlib.util.spec_from_file_location(
        "golden_regenerate", GOLDEN_DIR / "regenerate.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="session")
def golden():
    """The ``tests/data/golden/regenerate.py`` module."""
    return load_golden_module()


@pytest.fixture(scope="session")
def waterbox2_result(golden):
    """One uninterrupted serial run of the two-water fixture system.

    Shared by the golden-spectrum comparison, the fault-tolerance
    partial-spectrum test, and the kill-mid-run/resume test (which all
    need the same reference numbers), so the expensive pipeline runs
    once per session.
    """
    pipe = golden.build_pipeline("waterbox2")
    return pipe.run(omega_cm1=golden.OMEGA_CM1, sigma_cm1=golden.SIGMA_CM1,
                    solver="dense")
