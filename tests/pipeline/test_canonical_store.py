"""Durability tests for the shared canonical store.

The canonical store is *global*: several runs — possibly several
processes — share one directory across sessions. That only works if

* a reader racing a writer never sees a torn entry (the atomic
  tmp+rename protocol),
* a writer killed mid-write leaves nothing that a later run could
  mistake for a checkpoint — reloading after a kill returns exactly
  what an uninterrupted run would have stored,
* stray debris and corrupt files degrade to a miss (a recompute),
  never to an exception or a wrong tensor.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.pipeline.canonical import CanonicalStore, canonicalize

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _geometry(i: int) -> Geometry:
    return Geometry(["O", "H", "H"],
                    np.array([[0.0, 0.0, 0.0],
                              [1.8 + 0.01 * i, 0.0, 0.0],
                              [-0.45, 1.75, 0.0]]))


def _response(i: int) -> FragmentResponse:
    rng = np.random.default_rng(1000 + i)
    h = rng.standard_normal((9, 9))
    return FragmentResponse(
        geometry=_geometry(i),
        energy=float(rng.standard_normal()),
        hessian=0.5 * (h + h.T),
        dalpha_dr=rng.standard_normal((9, 3, 3)),
        alpha=rng.standard_normal((3, 3)),
        gradient=rng.standard_normal((3, 3)),
        dmu_dr=rng.standard_normal((9, 3)),
    )


_WRITER = """
import sys
import numpy as np
sys.path.insert(0, {src!r})
from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.pipeline.canonical import CanonicalStore


def _geometry(i):
    return Geometry(["O", "H", "H"],
                    np.array([[0.0, 0.0, 0.0],
                              [1.8 + 0.01 * i, 0.0, 0.0],
                              [-0.45, 1.75, 0.0]]))


def _response(i):
    rng = np.random.default_rng(1000 + i)
    h = rng.standard_normal((9, 9))
    return FragmentResponse(
        geometry=_geometry(i), energy=float(rng.standard_normal()),
        hessian=0.5 * (h + h.T),
        dalpha_dr=rng.standard_normal((9, 3, 3)),
        alpha=rng.standard_normal((3, 3)),
        gradient=rng.standard_normal((3, 3)),
        dmu_dr=rng.standard_normal((9, 3)),
    )


store = CanonicalStore(sys.argv[1], mode="rigid")
mode = sys.argv[2]
if mode == "sweep":
    for i in range(20):
        store.store(_geometry(i), _response(i), "sto-3g", 5.0e-3)
    print("done", flush=True)
else:   # hammer one entry forever (until killed)
    print("ready", flush=True)
    while True:
        store.store(_geometry(0), _response(0), "sto-3g", 5.0e-3)
""".format(src=SRC)


def _assert_entry_exact(store: CanonicalStore, i: int) -> None:
    """A loaded entry for the *identical* geometry must match the
    written response bit for bit (identity rotation, identity perm)."""
    got = store.load(_geometry(i), "sto-3g", 5.0e-3)
    assert got is not None
    ref = _response(i)
    np.testing.assert_allclose(got.hessian, ref.hessian,
                               rtol=0.0, atol=1.0e-12)
    np.testing.assert_allclose(got.dalpha_dr, ref.dalpha_dr,
                               rtol=0.0, atol=1.0e-12)
    np.testing.assert_allclose(got.dmu_dr, ref.dmu_dr,
                               rtol=0.0, atol=1.0e-12)
    assert got.energy == ref.energy


def test_reader_never_sees_torn_entries_while_writer_runs():
    """A second process sweeps 20 entries into the store while this
    process polls every entry: each load is either a clean miss or the
    complete, correct response — never a torn read."""
    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.Popen(
            [sys.executable, "-c", _WRITER, tmp, "sweep"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            store = CanonicalStore(tmp, mode="rigid")
            seen: set[int] = set()
            deadline = time.monotonic() + 120.0
            while len(seen) < 20 and time.monotonic() < deadline:
                for i in range(20):
                    got = store.load(_geometry(i), "sto-3g", 5.0e-3)
                    if got is not None:
                        np.testing.assert_allclose(
                            got.hessian, _response(i).hessian,
                            rtol=0.0, atol=1.0e-12,
                        )
                        seen.add(i)
            out, err = proc.communicate(timeout=60)
            assert "done" in out, err
            assert seen == set(range(20))
            assert store.rejects == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


def test_kill_mid_write_leaves_store_consistent():
    """SIGKILL a process hammering one entry, then reload: the store
    holds either nothing or exactly the uninterrupted entry — compared
    bitwise against a store written without interruption."""
    with tempfile.TemporaryDirectory() as tmp:
        shared = Path(tmp) / "shared"
        proc = subprocess.Popen(
            [sys.executable, "-c", _WRITER, str(shared), "hammer"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            # let some writes land, then kill at an arbitrary moment
            deadline = time.monotonic() + 60.0
            while not any(shared.glob("*.npz")) \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.05)
            os.kill(proc.pid, signal.SIGKILL)
            proc.communicate()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        # a fresh process opening the directory after the crash
        store = CanonicalStore(shared, mode="rigid")
        assert len(store) in (0, 1)
        if len(store) == 1:
            _assert_entry_exact(store, 0)
            # bitwise identical to what an uninterrupted writer stores
            clean_dir = Path(tmp) / "clean"
            clean = CanonicalStore(clean_dir, mode="rigid")
            clean.store(_geometry(0), _response(0), "sto-3g", 5.0e-3)
            (survivor,) = store._complete()
            (reference,) = clean._complete()
            with np.load(survivor) as a, np.load(reference) as b:
                assert sorted(a.files) == sorted(b.files)
                for name in a.files:
                    np.testing.assert_array_equal(a[name], b[name])


def test_tmp_debris_is_invisible(tmp_path):
    store = CanonicalStore(tmp_path, mode="rigid")
    store.store(_geometry(0), _response(0), "sto-3g", 5.0e-3)
    key = store.key(_geometry(1), "sto-3g", 5.0e-3)
    (tmp_path / f"canon_{key}.tmp.npz").write_bytes(b"\x00half a write")
    assert len(store) == 1
    assert store.load(_geometry(1), "sto-3g", 5.0e-3) is None
    _assert_entry_exact(store, 0)


def test_corrupt_entry_degrades_to_miss(tmp_path):
    store = CanonicalStore(tmp_path, mode="rigid")
    path = store.store(_geometry(0), _response(0), "sto-3g", 5.0e-3)
    path.write_bytes(path.read_bytes()[: 40])     # truncate the zip
    assert store.load(_geometry(0), "sto-3g", 5.0e-3) is None
    assert store.rejects == 1


def test_frame_mismatch_is_rejected_not_misrotated(tmp_path):
    """An entry whose stored canonical coordinates disagree with the
    target's (a key collision or tampering) must become a miss — the
    silent-wrong-answer guard."""
    store = CanonicalStore(tmp_path, mode="rigid")
    path = store.store(_geometry(0), _response(0), "sto-3g", 5.0e-3)
    with np.load(path) as data:
        payload = {k: data[k].copy() for k in data.files}
    payload["canon_coords"] = payload["canon_coords"] + 0.05
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(tmp, **payload)
    tmp.replace(path)
    assert store.load(_geometry(0), "sto-3g", 5.0e-3) is None
    assert store.rejects == 1


def test_off_mode_stores_and_loads_nothing(tmp_path):
    store = CanonicalStore(tmp_path / "store", mode="off")
    assert store.store(_geometry(0), _response(0), "sto-3g", 5.0e-3) is None
    assert store.load(_geometry(0), "sto-3g", 5.0e-3) is None
    assert not (tmp_path / "store").exists()


def test_exact_mode_hits_only_bit_equal_geometries(tmp_path):
    store = CanonicalStore(tmp_path, mode="exact")
    store.store(_geometry(0), _response(0), "sto-3g", 5.0e-3)
    _assert_entry_exact(store, 0)
    # a rotated copy misses in exact mode
    rot = np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
    g = _geometry(0)
    rotated = Geometry(list(g.symbols), g.coords @ rot.T)
    assert store.load(rotated, "sto-3g", 5.0e-3) is None
    assert store.rotations == 0


def test_invalid_mode_rejected(tmp_path):
    with pytest.raises(ValueError, match="mode"):
        CanonicalStore(tmp_path, mode="sloppy")


def test_stats_and_keys_accounting(tmp_path):
    store = CanonicalStore(tmp_path, mode="rigid")
    store.store(_geometry(0), _response(0), "sto-3g", 5.0e-3)
    store.load(_geometry(0), "sto-3g", 5.0e-3)
    store.load(_geometry(1), "sto-3g", 5.0e-3)
    stats = store.stats()
    assert stats["mode"] == "rigid"
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["writes"] == 1
    assert stats["hit_rate"] == 0.5
    assert store.keys() == {
        store.key(_geometry(0), "sto-3g", 5.0e-3)
    }
    assert canonicalize(_geometry(0)).key != canonicalize(_geometry(1)).key
