"""Degenerate-geometry regressions for the canonical fragment cache.

The classic failure mode of inertia-tensor canonicalization is
``np.linalg.eigh`` handing back arbitrary eigenvector signs (always)
and arbitrary degenerate-subspace bases (for linear molecules and
symmetric tops) — keys then flake across platforms, BLAS builds, or
even repeated calls. The atom-anchored construction never computes an
eigenbasis, and these tests pin that promise on exactly the geometries
that break the eigh approach:

* linear molecules (the whole inertia spectrum is degenerate),
* symmetric tops (water's C2v, a CH4-like Td cage),
* *near*-degenerate inertia tensors (a slightly squashed tetrahedron),
* mirror-image pairs (improper operations must not be absorbed).
"""

import numpy as np

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.geometry.water import random_rotation, water_molecule
from repro.pipeline.canonical import (
    CanonicalStore,
    canonicalize,
)

N_TRIALS = 40


def _keys_under_rigid_motion(geometry: Geometry, trials: int = N_TRIALS,
                             seed: int = 11) -> set[str]:
    """Canonical keys of ``trials`` random rotate+translate+permute
    copies (plus the original) — a stable scheme returns exactly one."""
    rng = np.random.default_rng(seed)
    keys = {canonicalize(geometry).key}
    for _ in range(trials):
        rot = random_rotation(rng)
        shift = rng.uniform(-20.0, 20.0, size=3)
        perm = rng.permutation(geometry.natoms)
        coords = (geometry.coords @ rot.T + shift)[perm]
        copy = Geometry([geometry.symbols[i] for i in perm], coords)
        keys.add(canonicalize(copy).key)
    return keys


# -- linear molecules -----------------------------------------------------

def test_linear_co2_like_key_is_stable():
    co2 = Geometry(["C", "O", "O"],
                   np.array([[0.0, 0.0, 0.0],
                             [2.2, 0.0, 0.0],
                             [-2.2, 0.0, 0.0]]))
    frame = canonicalize(co2)
    assert frame.linear
    assert len(_keys_under_rigid_motion(co2)) == 1


def test_linear_heteronuclear_diatomic_key_is_stable():
    oh = Geometry(["O", "H"], np.array([[0.0, 0.0, 0.0],
                                        [0.0, 0.0, 1.83]]))
    assert canonicalize(oh).linear
    assert len(_keys_under_rigid_motion(oh)) == 1


def test_asymmetric_linear_chain_key_is_stable():
    # O-C-S: linear but with no mirror symmetry along the axis
    ocs = Geometry(["O", "C", "S"],
                   np.array([[-2.19, 0.0, 0.0],
                             [0.0, 0.0, 0.0],
                             [2.95, 0.0, 0.0]]))
    assert canonicalize(ocs).linear
    assert len(_keys_under_rigid_motion(ocs)) == 1


def test_near_linear_is_not_treated_as_linear():
    """A fragment bent by well more than the axis tolerance keeps a
    genuine two-axis frame — and a stable key."""
    bent = Geometry(["C", "O", "O"],
                    np.array([[0.0, 1.3e-5, 0.0],
                              [2.2, 0.0, 0.0],
                              [-2.2, 0.0, 0.0]]))
    frame = canonicalize(bent)
    assert not frame.linear
    assert len(_keys_under_rigid_motion(bent)) == 1
    # and the bend is resolved: distinct from the exactly linear one
    linear = Geometry(list(bent.symbols),
                      np.array([[0.0, 0.0, 0.0],
                                [2.2, 0.0, 0.0],
                                [-2.2, 0.0, 0.0]]))
    assert canonicalize(linear).key != frame.key


# -- symmetric tops -------------------------------------------------------

def test_water_monomer_key_is_stable():
    assert len(_keys_under_rigid_motion(water_molecule())) == 1


def test_tetrahedral_cage_key_is_stable():
    """CH4-like Td symmetry: many candidate frames tie exactly; every
    tie must produce the identical encoding."""
    a = 1.2
    ch4 = Geometry(
        ["C", "H", "H", "H", "H"],
        np.array([[0.0, 0.0, 0.0],
                  [a, a, a], [a, -a, -a], [-a, a, -a], [-a, -a, a]]),
    )
    assert len(_keys_under_rigid_motion(ch4)) == 1


def test_near_degenerate_inertia_key_is_stable():
    """A tetrahedron squashed by one part in a thousand: the inertia
    eigenvalues nearly tie (the eigh failure regime), but the
    atom-anchored key neither flakes nor conflates it with the
    perfect cage."""
    a = 1.2
    perfect = np.array([[0.0, 0.0, 0.0],
                        [a, a, a], [a, -a, -a], [-a, a, -a], [-a, -a, a]])
    squashed = perfect * np.array([1.0, 1.0, 1.001])
    cage = Geometry(["C", "H", "H", "H", "H"], squashed)
    assert len(_keys_under_rigid_motion(cage)) == 1
    ref = Geometry(["C", "H", "H", "H", "H"], perfect)
    assert canonicalize(cage).key != canonicalize(ref).key


def test_single_atom_key_is_stable():
    atom = Geometry(["O"], np.array([[3.0, -1.0, 0.5]]))
    assert len(_keys_under_rigid_motion(atom, trials=10)) == 1


# -- chirality ------------------------------------------------------------

def test_mirror_images_get_distinct_stable_keys():
    """Enantiomers are *not* related by any proper rotation, and the
    stored tensors could not be reflected anyway: each hand keeps its
    own stable key."""
    left = Geometry(
        ["C", "H", "O", "N"],
        np.array([[0.0, 0.0, 0.0], [1.9, 0.0, 0.0],
                  [0.0, 2.0, 0.0], [0.0, 0.0, 2.1]]),
    )
    right = Geometry(list(left.symbols),
                     left.coords * np.array([1.0, 1.0, -1.0]))
    assert len(_keys_under_rigid_motion(left)) == 1
    assert len(_keys_under_rigid_motion(right)) == 1
    assert canonicalize(left).key != canonicalize(right).key


# -- determinism ----------------------------------------------------------

def test_repeated_canonicalization_is_bitwise_deterministic():
    geom = water_molecule()
    a = canonicalize(geom)
    for _ in range(10):
        b = canonicalize(geom)
        assert b.key == a.key
        np.testing.assert_array_equal(b.coords, a.coords)
        np.testing.assert_array_equal(b.perm, a.perm)
        np.testing.assert_array_equal(b.rotation, a.rotation)


# -- linear round trip (axially symmetric response) -----------------------

def _axially_symmetric_response(geometry: Geometry,
                                axis: np.ndarray) -> FragmentResponse:
    """A synthetic response with the full C-infinity-v symmetry of a
    physically linear system: every tensor is built from the axis
    projector and the transverse projector only, so it is invariant
    under any rotation about the molecular axis."""
    e = axis / np.linalg.norm(axis)
    par = np.outer(e, e)
    perp = np.eye(3) - par
    n = geometry.natoms
    rng = np.random.default_rng(5)
    blocks = rng.standard_normal((n, n, 2))
    hessian = np.zeros((3 * n, 3 * n))
    for i in range(n):
        for j in range(n):
            c = 0.5 * (blocks[i, j] + blocks[j, i])
            hessian[3 * i: 3 * i + 3, 3 * j: 3 * j + 3] = \
                c[0] * par + c[1] * perp
    coef = rng.standard_normal((n, 2))
    dalpha = np.zeros((3 * n, 3, 3))
    dmu = np.zeros((3 * n, 3))
    for i in range(n):
        for x in range(3):
            dalpha[3 * i + x] = e[x] * (coef[i, 0] * par
                                        + coef[i, 1] * perp)
            dmu[3 * i + x] = coef[i, 0] * e[x] * e
    grad = rng.standard_normal(n)[:, None] * e
    return FragmentResponse(
        geometry=geometry, energy=-1.5, hessian=hessian,
        dalpha_dr=dalpha, alpha=2.0 * par + 0.7 * perp,
        gradient=grad, dmu_dr=dmu,
    )


def test_linear_round_trip_with_physical_symmetry(tmp_path):
    """For a physically linear response (axially symmetric tensors)
    the rigid store round-trips a rotated copy to 1e-10 even though
    the azimuthal orientation is not encoded in the geometry."""
    co2 = Geometry(["C", "O", "O"],
                   np.array([[0.0, 0.0, 0.0],
                             [2.2, 0.0, 0.0],
                             [-2.2, 0.0, 0.0]]))
    resp = _axially_symmetric_response(co2, np.array([1.0, 0.0, 0.0]))
    store = CanonicalStore(tmp_path, mode="rigid")
    store.store(co2, resp, "sto-3g", 5.0e-3)

    rng = np.random.default_rng(23)
    rot = random_rotation(rng)
    shift = rng.uniform(-5.0, 5.0, size=3)
    perm = np.array([1, 0, 2])
    coords = (co2.coords @ rot.T + shift)[perm]
    copy = Geometry([co2.symbols[i] for i in perm], coords)
    got = store.load(copy, "sto-3g", 5.0e-3)
    assert got is not None

    from repro.pipeline.canonical import permute_response
    from repro.pipeline.rigid import rotate_response

    # reference: apply the same permutation and rotation directly
    expect = rotate_response(permute_response(resp, perm), rot, copy)
    for name in ("hessian", "dalpha_dr", "gradient", "dmu_dr", "alpha"):
        np.testing.assert_allclose(
            getattr(got, name), getattr(expect, name),
            rtol=0.0, atol=1.0e-10, err_msg=name,
        )
