"""Shared-memory task transport (repro.pipeline.shm).

The arena/wire-tuple protocol replaces whole-``FragmentTask`` pickles
on the process backend. The contracts: rebuilt tasks are bit-identical
to the originals (the transport may never touch the numbers), the wire
payload is an order of magnitude smaller than the pickled task, arenas
are cleaned up, and the executor produces identical responses with the
transport on and off.
"""

import os
import pickle

import numpy as np
import pytest

from repro.geometry import water_box
from repro.obs.counters import counters
from repro.pipeline.executor import FragmentTask, make_executor
from repro.pipeline.shm import (
    CONFIG_FIELDS,
    ShmTaskDescriptor,
    TaskArena,
    pack_tasks,
    rebuild_task,
    release_worker_arenas,
    shm_enabled,
)

PAYLOAD_TARGET = 10.0


def _tasks(n=4, **overrides):
    waters = water_box(n, seed=3)
    return [
        FragmentTask(index=k, label=f"water-{k}", geometry=w,
                     compute_raman=False, eri_mode="exact", **overrides)
        for k, w in enumerate(waters)
    ]


@pytest.fixture(autouse=True)
def _clean_worker_cache():
    yield
    release_worker_arenas()


def test_pack_rebuild_bit_identical():
    tasks = _tasks()
    arena, descs = pack_tasks(tasks)
    try:
        for task, desc in zip(tasks, descs):
            rebuilt = rebuild_task(desc.to_wire())
            assert rebuilt.index == task.index
            assert rebuilt.label == task.label
            assert rebuilt.attempt == task.attempt
            assert rebuilt.geometry.symbols == list(task.geometry.symbols)
            assert rebuilt.geometry.charge == task.geometry.charge
            # bitwise, not allclose: the transport may not perturb ULPs
            np.testing.assert_array_equal(
                rebuilt.geometry.coords, task.geometry.coords
            )
            assert rebuilt.geometry.coords.dtype == np.float64
            for f in CONFIG_FIELDS:
                assert getattr(rebuilt, f) == getattr(task, f), f
    finally:
        release_worker_arenas()
        arena.close()


def test_rebuilt_coords_survive_arena_close():
    tasks = _tasks(1)
    arena, descs = pack_tasks(tasks)
    rebuilt = rebuild_task(descs[0])
    release_worker_arenas()
    arena.close()
    # the copy must be independent of the (now unlinked) mapping
    np.testing.assert_array_equal(
        rebuilt.geometry.coords, tasks[0].geometry.coords
    )


def test_wire_payload_reduction():
    tasks = _tasks(8)
    arena, descs = pack_tasks(tasks)
    try:
        pickled = np.mean([len(pickle.dumps(t)) for t in tasks])
        wire = np.mean([len(pickle.dumps(d.to_wire())) for d in descs])
    finally:
        arena.close()
    assert pickled / wire >= PAYLOAD_TARGET, (
        f"shm wire payload only {pickled / wire:.1f}x smaller "
        f"({pickled:.0f} B -> {wire:.0f} B)"
    )


def test_configs_deduplicated():
    tasks = _tasks(6)
    arena, descs = pack_tasks(tasks)
    try:
        # every task shares one run config -> exactly one blob entry
        assert len(arena.configs) == 1
        assert all(d.cfg == 0 for d in descs)
    finally:
        arena.close()


def test_distinct_configs_kept_apart():
    tasks = _tasks(2) + _tasks(2, delta=1.0e-3)
    arena, descs = pack_tasks(tasks)
    try:
        assert len(arena.configs) == 2
        rebuilt = [rebuild_task(d.to_wire()) for d in descs]
        assert [t.delta for t in rebuilt] == [t.delta for t in tasks]
    finally:
        release_worker_arenas()
        arena.close()


def test_wire_tuple_roundtrip():
    tasks = _tasks(1)
    arena, descs = pack_tasks(tasks)
    try:
        wire = descs[0].to_wire()
        assert isinstance(wire, tuple)
        assert ShmTaskDescriptor.from_wire(wire) == descs[0]
    finally:
        arena.close()


def test_arena_unlinked_on_close():
    tasks = _tasks(1)
    arena, _ = pack_tasks(tasks)
    name = arena.name
    assert os.path.exists(f"/dev/shm/{name}")
    arena.close()
    assert not os.path.exists(f"/dev/shm/{name}")


def test_attach_does_not_steal_creator_registration():
    tasks = _tasks(1)
    arena, _ = pack_tasks(tasks)
    attached = TaskArena.attach(arena.name, arena.total_atoms)
    np.testing.assert_array_equal(attached.coords, arena.coords)
    attached.close()          # non-owner: close only, no unlink
    assert os.path.exists(f"/dev/shm/{arena.name}")
    arena.close()
    assert not os.path.exists(f"/dev/shm/{arena.name}")


def test_shm_enabled_env(monkeypatch):
    monkeypatch.delenv("QF_SHM", raising=False)
    assert shm_enabled()
    for off in ("0", "off", "false", "NO"):
        monkeypatch.setenv("QF_SHM", off)
        assert not shm_enabled()
    monkeypatch.setenv("QF_SHM", "1")
    assert shm_enabled()


def test_pack_counters():
    reg = counters()
    before = reg.get("executor.shm.tasks")
    tasks = _tasks(3)
    arena, _ = pack_tasks(tasks)
    arena.close()
    assert reg.get("executor.shm.tasks") == before + 3
    assert reg.get("executor.shm.payload_bytes") > 0
    assert reg.get("executor.shm.arena_bytes") > 0


@pytest.mark.slow
def test_executor_identical_with_and_without_shm(monkeypatch):
    tasks = _tasks(2)
    results = {}
    for mode in ("1", "0"):
        monkeypatch.setenv("QF_SHM", mode)
        with make_executor("process", max_workers=2) as ex:
            responses, _ = ex.run(tasks)
        results[mode] = responses
    for k in range(len(tasks)):
        np.testing.assert_array_equal(
            results["1"][k].hessian, results["0"][k].hessian
        )
