"""Property-based invariance tests for the canonical fragment cache.

Three invariants carry the correctness of rigid-motion reuse — a bug
in any of them is a *silent wrong answer* (a plausible spectrum built
from mis-rotated tensors), so they are pinned with hypothesis rather
than a handful of examples:

* the canonical key is invariant under proper rotations, translations,
  and atom-index permutations of the input geometry;
* geometries that differ by more than the quantization grid get
  *distinct* keys (no accidental collisions between different shapes);
* storing a response and loading it back for a rigidly transformed
  copy reproduces the directly transformed response to 1e-10 —
  rotate-back composed with the forward canonicalization is the
  identity up to floating-point noise.
"""

import tempfile

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dfpt.hessian import FragmentResponse
from repro.geometry.atoms import Geometry
from repro.geometry.water import random_rotation
from repro.pipeline.canonical import (
    CANON_DECIMALS,
    CanonicalStore,
    canonical_key,
    canonicalize,
    permute_response,
)
from repro.pipeline.rigid import kabsch_rotation, rotate_response

# -- strategies -----------------------------------------------------------

# a few bohr of spread, quantized to 1e-3 so pairwise separations stay
# far above the 1e-6 canonical grid
_coord = st.integers(-3000, 3000).map(lambda k: k / 1000.0)
_symbols = st.lists(st.sampled_from(["H", "C", "N", "O"]),
                    min_size=2, max_size=5)
_seed = st.integers(0, 2**31)


def _geometry(symbols, flat_coords) -> Geometry:
    coords = np.array(flat_coords, dtype=float).reshape(-1, 3)
    return Geometry(list(symbols), coords)


def _well_separated(coords: np.ndarray, min_dist: float = 0.5) -> bool:
    n = len(coords)
    for i in range(n):
        d = np.linalg.norm(coords[i + 1:] - coords[i], axis=1)
        if len(d) and d.min() < min_dist:
            return False
    return True


def _off_grid(frame, margin: float = 1.0e-4) -> bool:
    """True when no canonical coordinate sits at a quantization
    knife-edge (within ``margin`` grid units of a rounding boundary),
    so the float noise of a rigid transform cannot flip a digit."""
    scaled = frame.coords * 10.0 ** CANON_DECIMALS
    frac = np.abs(scaled - np.floor(scaled) - 0.5)
    return bool(frac.min() > margin)


def _transformed(geometry: Geometry, seed: int) -> Geometry:
    """A random proper-rigid-motion + permutation copy of ``geometry``."""
    rng = np.random.default_rng(seed)
    rot = random_rotation(rng)
    shift = rng.uniform(-10.0, 10.0, size=3)
    perm = rng.permutation(geometry.natoms)
    coords = geometry.coords @ rot.T + shift
    return Geometry([geometry.symbols[i] for i in perm], coords[perm])


def _geometry_strategy():
    return _symbols.flatmap(
        lambda syms: st.tuples(
            st.just(syms),
            st.lists(_coord, min_size=3 * len(syms),
                     max_size=3 * len(syms)),
        )
    )


# -- key invariance -------------------------------------------------------

def _check_key_invariance(geom_spec, seed):
    geometry = _geometry(*geom_spec)
    assume(_well_separated(geometry.coords))
    frame = canonicalize(geometry)
    assume(_off_grid(frame))
    copy = _transformed(geometry, seed)
    assert canonicalize(copy).key == frame.key
    # and the full config-qualified key agrees too
    assert canonical_key(copy, "sto-3g", 5.0e-3) \
        == canonical_key(geometry, "sto-3g", 5.0e-3)


@settings(max_examples=60, deadline=None)
@given(geom_spec=_geometry_strategy(), seed=_seed)
def test_key_invariant_under_rigid_motion(geom_spec, seed):
    """Rotating, translating, and renumbering the atoms never changes
    the canonical key."""
    _check_key_invariance(geom_spec, seed)


@pytest.mark.slow
@settings(max_examples=500, deadline=None)
@given(geom_spec=_geometry_strategy(), seed=_seed)
def test_key_invariance_exhaustive(geom_spec, seed):
    """The same invariant, hammered with ~10x the examples — run via
    ``make test-canonical`` (the slow split), not in tier-1 CI."""
    _check_key_invariance(geom_spec, seed)


@settings(max_examples=60, deadline=None)
@given(geom_spec=_geometry_strategy(), seed=_seed,
       atom=st.integers(0, 4), scale=st.floats(1.0e-3, 1.0))
def test_distinct_geometries_get_distinct_keys(geom_spec, seed, atom, scale):
    """Moving one atom by >= 1e-3 bohr (1000x the quantization grid)
    in a direction that changes the internal geometry must change the
    key — rigid-motion reuse never conflates different shapes."""
    geometry = _geometry(*geom_spec)
    assume(_well_separated(geometry.coords))
    rng = np.random.default_rng(seed)
    direction = rng.normal(size=3)
    direction *= scale / np.linalg.norm(direction)
    coords = geometry.coords.copy()
    coords[atom % geometry.natoms] += direction
    other = Geometry(list(geometry.symbols), coords)
    # the move must actually deform the shape (not be an accidental
    # rigid motion, possible when the untouched atoms are collinear)
    _r, _t, rmsd = kabsch_rotation(geometry.coords, other.coords)
    assume(rmsd > 1.0e-4)
    assert canonicalize(other).key != canonicalize(geometry).key


@settings(max_examples=30, deadline=None)
@given(geom_spec=_geometry_strategy())
def test_key_sensitive_to_config(geom_spec):
    geometry = _geometry(*geom_spec)
    assume(_well_separated(geometry.coords))
    base = canonical_key(geometry, "sto-3g", 5.0e-3)
    assert canonical_key(geometry, "6-31g", 5.0e-3) != base
    assert canonical_key(geometry, "sto-3g", 1.0e-3) != base
    assert canonical_key(geometry, "sto-3g", 5.0e-3,
                         compute_raman=False) != base


# -- rotate-back round trip -----------------------------------------------

def _response(geometry: Geometry, seed: int) -> FragmentResponse:
    """Synthetic but shape-correct response with arbitrary float64s."""
    rng = np.random.default_rng(seed)
    n = geometry.natoms
    h = rng.standard_normal((3 * n, 3 * n))
    return FragmentResponse(
        geometry=geometry,
        energy=float(rng.standard_normal()),
        hessian=0.5 * (h + h.T),
        dalpha_dr=rng.standard_normal((3 * n, 3, 3)),
        alpha=rng.standard_normal((3, 3)),
        gradient=rng.standard_normal((n, 3)),
        dmu_dr=rng.standard_normal((3 * n, 3)),
    )


@settings(max_examples=25, deadline=None)
@given(geom_spec=_geometry_strategy(), seed=_seed, resp_seed=_seed)
def test_store_load_round_trip_is_identity(geom_spec, seed, resp_seed):
    """store(G) then load(rigid copy of G) equals transforming the
    response directly with the Kabsch rotation, to 1e-10."""
    geometry = _geometry(*geom_spec)
    assume(_well_separated(geometry.coords))
    frame = canonicalize(geometry)
    # linear fragments restore up to a rotation about the molecular
    # axis (exact only for physically axially-symmetric responses, not
    # for arbitrary synthetic tensors) — covered separately in
    # test_canonical_degenerate.py
    assume(not frame.linear)
    assume(_off_grid(frame))
    response = _response(geometry, resp_seed)
    copy = _transformed(geometry, seed)

    with tempfile.TemporaryDirectory() as tmp:
        store = CanonicalStore(tmp, mode="rigid")
        store.store(geometry, response, "sto-3g", 5.0e-3)
        got = store.load(copy, "sto-3g", 5.0e-3)
    assert got is not None, "rigid copy must hit"

    # reference: replay _transformed's draws to recover the applied
    # permutation, then permute the source response into the copy's
    # atom order and rotate with the best-fit (here: exact) rotation
    rng = np.random.default_rng(seed)
    random_rotation(rng)
    rng.uniform(-10.0, 10.0, size=3)
    perm = rng.permutation(geometry.natoms)

    permuted = permute_response(response, perm)
    rot, _t, rmsd = kabsch_rotation(permuted.geometry.coords, copy.coords)
    assert rmsd < 1.0e-9
    expect = rotate_response(permuted, rot, copy)
    for name in ("hessian", "dalpha_dr", "gradient", "dmu_dr", "alpha"):
        np.testing.assert_allclose(
            getattr(got, name), getattr(expect, name),
            rtol=0.0, atol=1.0e-10, err_msg=name,
        )
    assert got.energy == response.energy
    # and the returned geometry is the copy's, untouched
    np.testing.assert_array_equal(got.geometry.coords, copy.coords)
    assert list(got.geometry.symbols) == list(copy.symbols)


@settings(max_examples=25, deadline=None)
@given(geom_spec=_geometry_strategy(), resp_seed=_seed,
       perm_seed=_seed)
def test_permute_response_round_trips(geom_spec, resp_seed, perm_seed):
    """permute then inverse-permute restores every tensor bit for bit."""
    geometry = _geometry(*geom_spec)
    response = _response(geometry, resp_seed)
    perm = np.random.default_rng(perm_seed).permutation(geometry.natoms)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm))
    back = permute_response(permute_response(response, perm), inv)
    np.testing.assert_array_equal(back.hessian, response.hessian)
    np.testing.assert_array_equal(back.dalpha_dr, response.dalpha_dr)
    np.testing.assert_array_equal(back.dmu_dr, response.dmu_dr)
    np.testing.assert_array_equal(back.gradient, response.gradient)
    assert list(back.geometry.symbols) == list(geometry.symbols)
