import numpy as np
import pytest

from repro.geometry import water_molecule
from repro.geometry.atoms import Geometry
from repro.pipeline.optimize import optimize_qf_geometry
from repro.scf.optimize import optimize_geometry


@pytest.mark.slow
def test_qf_optimization_single_water_matches_direct():
    """With one water (one piece), QF optimization must reduce to the
    plain optimizer."""
    out = optimize_qf_geometry(waters=[water_molecule()], gtol=5e-4,
                               eri_mode="exact")
    assert out.converged
    direct = optimize_geometry(water_molecule(), eri_mode="exact")
    assert out.energy == pytest.approx(direct.energy, abs=1e-5)


@pytest.mark.slow
def test_qf_optimization_water_pair_binds():
    """Two nearby waters: the QF surface (monomers + two-body piece)
    must relax into a bound arrangement with a lower QF energy."""
    w1 = water_molecule()
    w2 = water_molecule(center=(0.0, 0.0, 3.4))
    out = optimize_qf_geometry(waters=[w1, w2], gtol=1.5e-3, max_iter=40)
    e_isolated = 2 * optimize_geometry(water_molecule(), eri_mode="df").energy
    assert out.energy < e_isolated - 1e-4  # binding on the QF surface
    # oxygens stay at hydrogen-bonding distance, not collapsed or flown apart
    d_oo = np.linalg.norm(out.waters[1].coords[0] - out.waters[0].coords[0])
    assert 4.0 < d_oo < 7.5  # bohr (~2.1-4.0 A)
