"""End-to-end kernel-mode invariance: spectra are *bit-identical*.

docs/performance.md promises that ``QF_KERNELS=scalar`` and
``QF_KERNELS=batched`` change dispatch, never arithmetic. The golden
fixture systems make that checkable end to end: the full pipeline —
decomposition, SCF, DFPT, assembly, broadening — must produce byte-for-
byte equal arrays under both modes, and each must still match the
committed golden files within the standard tolerances.
"""

import numpy as np
import pytest

from tests.pipeline.test_golden_spectra import assert_spectrum_matches


def _spectrum(golden, name, mode, monkeypatch):
    monkeypatch.setenv("QF_KERNELS", mode)
    return golden.compute(name)


def test_water1_spectrum_bit_identical_across_kernel_modes(
        golden, monkeypatch):
    monkeypatch.setenv("QF_SANITIZE", "1")   # full contract checking on
    scalar = _spectrum(golden, "water1", "scalar", monkeypatch)
    batched = _spectrum(golden, "water1", "batched", monkeypatch)
    assert set(scalar) == set(batched)
    for key in scalar:
        np.testing.assert_array_equal(
            scalar[key], batched[key],
            err_msg=f"{key} differs between QF_KERNELS modes",
        )
    # and both still reproduce the committed golden
    with np.load(golden.golden_path("water1")) as ref:
        assert_spectrum_matches(batched, ref)


@pytest.mark.slow
def test_waterbox2_spectrum_bit_identical_across_kernel_modes(
        golden, monkeypatch):
    monkeypatch.setenv("QF_SANITIZE", "1")
    scalar = _spectrum(golden, "waterbox2", "scalar", monkeypatch)
    batched = _spectrum(golden, "waterbox2", "batched", monkeypatch)
    for key in scalar:
        np.testing.assert_array_equal(
            scalar[key], batched[key],
            err_msg=f"{key} differs between QF_KERNELS modes",
        )
    with np.load(golden.golden_path("waterbox2")) as ref:
        assert_spectrum_matches(batched, ref)


def test_batched_fragment_under_sanitizer(monkeypatch):
    """Tier-1 smoke: one tiny fragment end to end with the batched
    kernels and the runtime numerical sanitizer both on."""
    from repro.geometry import water_molecule
    from repro.pipeline.executor import FragmentTask, make_executor

    monkeypatch.setenv("QF_KERNELS", "batched")
    monkeypatch.setenv("QF_SANITIZE", "1")
    task = FragmentTask(index=0, label="smoke", geometry=water_molecule(),
                        compute_raman=True, eri_mode="exact")
    with make_executor("serial") as ex:
        responses, report = ex.run([task])
    resp = responses[0]
    assert report.n_tasks == 1
    assert np.isfinite(resp.hessian).all()
    assert np.isfinite(resp.dalpha_dr).all()
