"""Fault-tolerant fragment execution: the injection test harness.

Every recovery path of :mod:`repro.pipeline.resilience` is exercised
with deterministic injected faults (``QF_FAULTS``):

* crash-once-then-succeed → retried, bit-identical result;
* silently corrupted arrays → contract check catches, retry succeeds;
* hang beyond the wall-clock timeout → speculative reissue wins
  without waiting out the straggler;
* hard worker death → pool restart + retry;
* exhausted retries → labeled abort (``fail_fast``) or a flagged
  partial spectrum (``skip_and_report``);
* kill-mid-run (a ``die`` fault taking down the driver process) →
  resume from the RunStore, bit-identical to an uninterrupted run.

Cheap H2 tasks (~0.15 s each) keep the executor-level tests fast; the
pipeline-level tests share the two-water session fixture.
"""

import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.geometry.atoms import Geometry
from repro.obs.counters import counters
from repro.pipeline import (
    FAIL_FAST,
    SKIP_AND_REPORT,
    FaultPlan,
    FragmentExecutorError,
    FragmentTask,
    ResiliencePolicy,
    ResilientExecutor,
    RunStore,
    make_executor,
)
from repro.pipeline.executor import SerialExecutor
from repro.pipeline.faults import (
    DIE_EXIT_CODE,
    FaultSpecError,
    active_fault_plan,
)
from repro.utils.timing import Stopwatch

REPO_ROOT = Path(__file__).resolve().parents[2]

# ---------------------------------------------------------------- fixtures


def _h2(z: float) -> Geometry:
    return Geometry(["H", "H"], np.array([[0.0, 0.0, 0.0], [0.0, 0.0, z]]))


def _tasks() -> list[FragmentTask]:
    return [
        FragmentTask(index=0, label="a", geometry=_h2(1.40),
                     eri_mode="exact"),
        FragmentTask(index=1, label="b", geometry=_h2(1.45),
                     eri_mode="exact"),
    ]


@pytest.fixture(scope="module")
def reference():
    """Fault-free serial responses for the two H2 tasks."""
    with SerialExecutor() as ex:
        responses, _ = ex.run(_tasks())
    return responses


def _assert_bitwise(responses, reference):
    assert set(responses) == set(reference)
    for k, ref in reference.items():
        got = responses[k]
        assert np.array_equal(got.hessian, ref.hessian)
        assert np.array_equal(got.dalpha_dr, ref.dalpha_dr)
        assert got.energy == ref.energy


# ---------------------------------------------------- fault plan grammar


class TestFaultPlan:
    def test_parse_kinds_and_defaults(self):
        plan = FaultPlan.parse("crash:a;hang:b;corrupt:c;die:d")
        kinds = [f.kind for f in plan.faults]
        assert kinds == ["crash", "hang", "corrupt", "die"]
        # default attempt selector is "first attempt only"
        assert all(f.attempt_lo == f.attempt_hi == 1 for f in plan.faults)
        by_kind = {f.kind: f for f in plan.faults}
        assert by_kind["hang"].param == 30.0
        assert by_kind["die"].param == 0.0

    def test_parse_attempts_and_param(self):
        plan = FaultPlan.parse("hang:w[0]@2-3:0.75; crash:x@*")
        hang, crash = plan.faults
        assert (hang.attempt_lo, hang.attempt_hi, hang.param) == (2, 3, 0.75)
        assert (crash.attempt_lo, crash.attempt_hi) == (1, None)

    def test_labels_with_brackets_match_exactly(self):
        # fragment labels contain '[' and ']' — must not be treated as
        # fnmatch character classes
        plan = FaultPlan.parse("crash:ww[0,1]@1")
        assert plan.lookup("ww[0,1]", 1) is not None
        assert plan.lookup("ww0,1", 1) is None
        assert plan.lookup("ww[0,1]", 2) is None

    def test_glob_targets(self):
        plan = FaultPlan.parse("crash:water*@*")
        assert plan.lookup("water[3]", 5) is not None
        assert plan.lookup("ww[0,1]", 1) is None

    def test_first_match_wins(self):
        plan = FaultPlan.parse("hang:water[0]@*;crash:water*@*")
        assert plan.lookup("water[0]", 1).kind == "hang"
        assert plan.lookup("water[1]", 1).kind == "crash"

    @pytest.mark.parametrize("bad", [
        "explode:a",            # unknown kind
        "crash",                # missing target
        "crash:",               # empty target
        "crash:a@0",            # attempts are 1-based
        "crash:a@3-2",          # inverted range
        "crash:a@x",            # non-numeric attempts
        "hang:a@1:fast",        # non-numeric param
        "hang:a@1:-1",          # negative param
    ])
    def test_parse_errors(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_active_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("QF_FAULTS", raising=False)
        assert active_fault_plan() is None
        monkeypatch.setenv("QF_FAULTS", "  ")
        assert active_fault_plan() is None
        monkeypatch.setenv("QF_FAULTS", "crash:a@1")
        plan = active_fault_plan()
        assert plan is not None and plan.lookup("a", 1).kind == "crash"
        # parse-once cache returns the same object
        assert active_fault_plan() is plan


# ------------------------------------------------------- policy + backoff


class TestResiliencePolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ValueError, match="failure_policy"):
            ResiliencePolicy(failure_policy="ignore")
        with pytest.raises(ValueError, match="timeout_s"):
            ResiliencePolicy(timeout_s=0.0)
        with pytest.raises(ValueError, match="backoff"):
            ResiliencePolicy(backoff_factor=0.5)

    def test_backoff_deterministic_and_bounded(self):
        p = ResiliencePolicy(backoff_s=0.1, backoff_factor=2.0, jitter=0.25)
        assert p.backoff("frag", 1) == 0.0          # first attempt is free
        d2 = p.backoff("frag", 2)
        d3 = p.backoff("frag", 3)
        assert d2 == p.backoff("frag", 2)           # reproducible
        assert 0.1 <= d2 <= 0.1 * 1.25              # base * (1 + jitter)
        assert 0.2 <= d3 <= 0.2 * 1.25              # exponential growth
        # decorrelated across fragments, same bounds
        other = p.backoff("other", 2)
        assert other != d2
        assert 0.1 <= other <= 0.1 * 1.25

    def test_backoff_disabled(self):
        p = ResiliencePolicy(backoff_s=0.0)
        assert p.backoff("frag", 3) == 0.0


# ------------------------------------------------------ recovery paths


def test_crash_once_then_succeed(reference, monkeypatch):
    monkeypatch.setenv("QF_FAULTS", "crash:a@1")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0)
    with ResilientExecutor(base="serial", policy=policy) as ex:
        responses, report = ex.run(_tasks())
    _assert_bitwise(responses, reference)
    res = report.resilience
    assert res["retries"] == 1
    assert res["attempts"] == {"a": 2, "b": 1}
    assert any("injected crash" in why for why in res["failures"]["a"])


def test_corrupted_result_detected_and_retried(reference, monkeypatch):
    """A silently NaN-poisoned Hessian must be caught by the response
    contract (always on in resilient mode) and recomputed."""
    monkeypatch.setenv("QF_FAULTS", "corrupt:b@1")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0)
    with ResilientExecutor(base="serial", policy=policy) as ex:
        responses, report = ex.run(_tasks())
    _assert_bitwise(responses, reference)
    res = report.resilience
    assert res["corrupted"] == 1
    assert res["retries"] == 1
    assert not responses[1].meta.get("injected_corruption")


def test_hang_timeout_speculative_reissue(reference, monkeypatch):
    """A straggler hanging 6 s with a 0.8 s timeout: the reissued
    attempt must win well before the hang would have finished."""
    monkeypatch.setenv("QF_FAULTS", "hang:a@1:6.0")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0, timeout_s=0.8)
    sw = Stopwatch()
    with ResilientExecutor(base="process", max_workers=2,
                           policy=policy) as ex:
        responses, report = ex.run(_tasks())
    wall = sw.elapsed()
    _assert_bitwise(responses, reference)
    res = report.resilience
    assert res["timeouts"] == 1
    assert res["reissues"] == 1
    assert wall < 5.0, f"waited out the straggler ({wall:.1f}s)"


def test_worker_death_restarts_pool_and_retries(reference, monkeypatch):
    monkeypatch.setenv("QF_FAULTS", "die:a@1")
    policy = ResiliencePolicy(max_attempts=3, backoff_s=0.0)
    with ResilientExecutor(base="process", max_workers=2,
                           policy=policy) as ex:
        responses, report = ex.run(_tasks())
    _assert_bitwise(responses, reference)
    res = report.resilience
    assert res["pool_restarts"] >= 1
    assert res["attempts"]["a"] >= 2


def test_exhausted_retries_fail_fast(monkeypatch, tmp_path):
    # fault the *second* task in serial order, so the healthy sibling
    # completes (and is checkpointed) before the abort
    monkeypatch.setenv("QF_FAULTS", "crash:b@*")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0,
                              failure_policy=FAIL_FAST)
    store = RunStore(tmp_path / "store")
    with ResilientExecutor(base="serial", policy=policy, store=store) as ex:
        with pytest.raises(FragmentExecutorError, match="injected crash"):
            ex.run(_tasks())
    # the healthy sibling's work survived the abort
    assert len(store) == 1


def test_exhausted_retries_skip_and_report(reference, monkeypatch):
    monkeypatch.setenv("QF_FAULTS", "crash:a@*")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0,
                              failure_policy=SKIP_AND_REPORT)
    with ResilientExecutor(base="serial", policy=policy) as ex:
        responses, report = ex.run(_tasks())
    assert set(responses) == {1}
    assert np.array_equal(responses[1].hessian, reference[1].hessian)
    res = report.resilience
    assert [s["label"] for s in res["skipped"]] == ["a"]
    assert res["skipped"][0]["attempts"] == 2
    assert res["skipped"][0]["errors"]


def test_skip_and_report_under_pool_base(reference, monkeypatch):
    monkeypatch.setenv("QF_FAULTS", "crash:b@*")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0,
                              failure_policy=SKIP_AND_REPORT)
    with ResilientExecutor(base="process", max_workers=2,
                           policy=policy) as ex:
        responses, report = ex.run(_tasks())
    assert set(responses) == {0}
    assert np.array_equal(responses[0].hessian, reference[0].hessian)
    assert [s["label"] for s in report.resilience["skipped"]] == ["b"]


def test_posthoc_timeout_keeps_valid_result(reference, monkeypatch):
    """In-process backends cannot preempt a running attempt: an overrun
    is detected after the fact, counted, and the valid result kept."""
    # the hung attempt must overrun the timeout; the healthy H2 task
    # (~0.1-0.3 s) must stay under it even on a loaded machine
    monkeypatch.setenv("QF_FAULTS", "hang:a@1:1.5")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0, timeout_s=1.2)
    with ResilientExecutor(base="serial", policy=policy) as ex:
        responses, report = ex.run(_tasks())
    _assert_bitwise(responses, reference)
    res = report.resilience
    assert res["timeouts"] >= 1
    assert res["retries"] == 0


def test_faults_injected_counter(monkeypatch):
    monkeypatch.setenv("QF_FAULTS", "crash:a@*")
    before = counters().get("resilience.faults_injected")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0,
                              failure_policy=SKIP_AND_REPORT)
    with ResilientExecutor(base="serial", policy=policy) as ex:
        ex.run(_tasks()[:1])
    assert counters().get("resilience.faults_injected") == before + 2


# ---------------------------------------------------- checkpoint/resume


def test_run_store_resume_bit_identical(reference, tmp_path):
    store_dir = tmp_path / "store"
    policy = ResiliencePolicy(max_attempts=1)
    with ResilientExecutor(base="serial", policy=policy,
                           store=store_dir) as ex:
        first, report1 = ex.run(_tasks())
    assert report1.resilience["store_writes"] == 2
    assert len(RunStore(store_dir)) == 2

    # a "new run" — fresh executor, same store: nothing recomputed
    with ResilientExecutor(base="serial", policy=policy,
                           store=store_dir) as ex:
        second, report2 = ex.run(_tasks())
    res = report2.resilience
    assert res["store_hits"] == 2
    assert res["store_writes"] == 0
    _assert_bitwise(second, reference)
    for k in first:
        assert np.array_equal(first[k].hessian, second[k].hessian)


def test_run_store_key_ignores_index_and_attempt(tmp_path):
    store = RunStore(tmp_path)
    task = _tasks()[0]
    k = store.key_for(task)
    assert store.key_for(replace(task, index=7, attempt=3)) == k
    assert store.key_for(replace(task, label="renamed")) == k
    # content changes do change the key
    assert store.key_for(replace(task, delta=1.0e-3)) != k
    assert store.key_for(replace(task, basis_name="6-31g")) != k


def test_make_executor_wraps_resilient():
    ex = make_executor("serial", resilience=True)
    try:
        assert isinstance(ex, ResilientExecutor)
        assert ex.name == "resilient+serial"
        assert ex.policy == ResiliencePolicy()
    finally:
        ex.close()
    with pytest.raises(TypeError, match="resilience"):
        make_executor("serial", resilience="yes")


# ------------------------------------------------- pipeline-level faults


def test_pipeline_partial_spectrum_skip_and_report(
        golden, waterbox2_result, monkeypatch):
    """Killing one monomer representative for good must not abort the
    run: the partial Eq. (1) spectrum is assembled from what survived,
    and the missing pieces (including rigid copies that would have
    rotated off the dead representative) are flagged."""
    monkeypatch.setenv("QF_FAULTS", "crash:water[0]@*")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0,
                              failure_policy=SKIP_AND_REPORT)
    pipe = golden.build_pipeline("waterbox2", resilience=policy)
    result = pipe.run(omega_cm1=golden.OMEGA_CM1,
                      sigma_cm1=golden.SIGMA_CM1, solver="dense")

    assert result.is_partial
    assert "water[0]" in result.skipped_fragments
    # the rigid copies that rotate off water[0] are lost with it
    assert len(result.skipped_fragments) >= 2
    assert result.responses.count(None) == len(result.skipped_fragments)

    # still a spectrum — just not the full one
    assert result.spectrum is not None
    assert np.all(np.isfinite(result.spectrum.intensity))
    assert not np.array_equal(result.spectrum.intensity,
                              waterbox2_result.spectrum.intensity)

    res = result.throughput.resilience
    assert [s["label"] for s in res["skipped"]] == ["water[0]"]
    assert result.throughput.n_tasks >= 1


def test_pipeline_fail_fast_names_fragment(golden, monkeypatch):
    monkeypatch.setenv("QF_FAULTS", "crash:water[0]@*")
    policy = ResiliencePolicy(max_attempts=2, backoff_s=0.0)
    pipe = golden.build_pipeline("water1", resilience=policy)
    with pytest.raises(FragmentExecutorError, match=r"water\[0\]"):
        pipe.run(solver="dense")


# ------------------------------------------- kill-mid-run, then resume

_DRIVER = """\
import importlib.util
import sys

import numpy as np

golden_path, store, out = sys.argv[1:4]
spec = importlib.util.spec_from_file_location("golden", golden_path)
golden = importlib.util.module_from_spec(spec)
spec.loader.exec_module(golden)

from repro.pipeline import ResiliencePolicy

pipe = golden.build_pipeline(
    "waterbox2",
    resilience=ResiliencePolicy(max_attempts=1),
    run_store=store,
)
result = pipe.run(omega_cm1=golden.OMEGA_CM1, sigma_cm1=golden.SIGMA_CM1,
                  solver="dense")
np.save(out, result.spectrum.intensity)
print("STORE_HITS", result.throughput.resilience["store_hits"])
"""


def test_kill_mid_run_then_resume_bit_identical(
        golden, waterbox2_result, tmp_path):
    """The acceptance scenario: a run killed partway (die fault takes
    down the serial driver with exit code 23) leaves its finished
    fragments in the RunStore; rerunning with the same store resumes,
    recomputes only the unfinished work, and reproduces the
    uninterrupted run's spectrum bit for bit."""
    driver = tmp_path / "driver.py"
    driver.write_text(_DRIVER)
    store = tmp_path / "store"
    out = tmp_path / "intensity.npy"
    golden_py = str(Path(golden.__file__))
    argv = [sys.executable, str(driver), golden_py, str(store), str(out)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("QF_SANITIZE", None)

    # serial order is largest-first: the dimer ww[0,1] completes and is
    # checkpointed, then the die fault kills the driver on water[0]
    env["QF_FAULTS"] = "die:water[0]@*"
    first = subprocess.run(argv, env=env, cwd=REPO_ROOT,
                           capture_output=True, text=True, timeout=600)
    assert first.returncode == DIE_EXIT_CODE, first.stderr
    finished = list(store.glob("frag_*.npz"))
    assert finished, "no checkpoint survived the kill"
    assert not out.exists()

    env.pop("QF_FAULTS")
    second = subprocess.run(argv, env=env, cwd=REPO_ROOT,
                            capture_output=True, text=True, timeout=600)
    assert second.returncode == 0, second.stderr
    hits = int(second.stdout.split("STORE_HITS")[1].split()[0])
    assert hits == len(finished) >= 1

    resumed = np.load(out)
    assert np.array_equal(resumed, waterbox2_result.spectrum.intensity), (
        "resumed spectrum differs from the uninterrupted run"
    )
