"""Golden-spectrum regression tests.

Every run of the two fixture systems must reproduce the committed
reference spectra in ``tests/data/golden/`` within tight tolerances.
The goldens pin the *entire* chain — decomposition, DFPT responses,
Eq. (1) assembly, dense diagonalization, broadening — so any change
that silently shifts the physics fails here first.

Tolerances: mode frequencies to 0.05 cm^-1, activities and broadened
intensities to 1e-5 relative to the largest reference value. That is
loose enough to survive BLAS/compiler differences and tight enough to
catch a wrong sign, a dropped fragment, or a changed convention.

To regenerate after an *intentional* physics change::

    PYTHONPATH=src python tests/data/golden/regenerate.py

and commit the .npz files with an explanation of the shift.
"""

from pathlib import Path

import numpy as np
import pytest

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data" / "golden"


def assert_spectrum_matches(got: dict, ref, *, freq_atol=0.05, rel=1e-5):
    """Compare a computed spectrum against a golden npz mapping."""
    assert set(ref.keys()) <= set(got.keys()), (
        f"missing arrays: {set(ref.keys()) - set(got.keys())}"
    )
    np.testing.assert_array_equal(
        got["omega_cm1"], ref["omega_cm1"],
        err_msg="spectral grid changed — regenerate the goldens",
    )
    np.testing.assert_allclose(
        got["frequencies_cm1"], ref["frequencies_cm1"],
        rtol=0.0, atol=freq_atol, err_msg="mode frequencies moved",
    )
    for key in ("activities", "intensity"):
        scale = float(np.abs(ref[key]).max())
        np.testing.assert_allclose(
            got[key], ref[key], rtol=0.0, atol=rel * max(scale, 1e-30),
            err_msg=f"{key} moved beyond {rel:g} of peak",
        )


def test_golden_files_committed():
    for name in ("water1", "waterbox2"):
        assert (GOLDEN_DIR / f"{name}.npz").is_file(), (
            f"golden file {name}.npz missing — run "
            f"tests/data/golden/regenerate.py"
        )


def test_water1_matches_golden(golden):
    got = golden.compute("water1")
    with np.load(golden.golden_path("water1")) as ref:
        assert_spectrum_matches(got, ref)


def test_waterbox2_matches_golden(golden, waterbox2_result):
    got = golden.spectrum_arrays(waterbox2_result)
    with np.load(golden.golden_path("waterbox2")) as ref:
        assert_spectrum_matches(got, ref)


def test_comparator_detects_drift(golden):
    """The tolerance gate actually bites: a 0.1% intensity drift and a
    0.2 cm^-1 frequency shift must both fail."""
    with np.load(golden.golden_path("water1")) as ref:
        base = {k: ref[k].copy() for k in ref.keys()}

    drifted = dict(base)
    drifted["intensity"] = base["intensity"] * 1.001
    with pytest.raises(AssertionError, match="intensity"):
        assert_spectrum_matches(drifted, base)

    shifted = dict(base)
    shifted["frequencies_cm1"] = base["frequencies_cm1"] + 0.2
    with pytest.raises(AssertionError, match="frequencies"):
        assert_spectrum_matches(shifted, base)
