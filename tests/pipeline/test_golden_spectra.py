"""Golden-spectrum regression tests.

Every run of the two fixture systems must reproduce the committed
reference spectra in ``tests/data/golden/`` within tight tolerances.
The goldens pin the *entire* chain — decomposition, DFPT responses,
Eq. (1) assembly, dense diagonalization, broadening — so any change
that silently shifts the physics fails here first.

Tolerances: mode frequencies to 0.05 cm^-1, activities and broadened
intensities to 1e-5 relative to the largest reference value. That is
loose enough to survive BLAS/compiler differences and tight enough to
catch a wrong sign, a dropped fragment, or a changed convention.

To regenerate after an *intentional* physics change::

    PYTHONPATH=src python tests/data/golden/regenerate.py

and commit the .npz files with an explanation of the shift.
"""

from pathlib import Path

import numpy as np
import pytest

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data" / "golden"


def assert_spectrum_matches(got: dict, ref, *, freq_atol=0.05, rel=1e-5):
    """Compare a computed spectrum against a golden npz mapping."""
    assert set(ref.keys()) <= set(got.keys()), (
        f"missing arrays: {set(ref.keys()) - set(got.keys())}"
    )
    np.testing.assert_array_equal(
        got["omega_cm1"], ref["omega_cm1"],
        err_msg="spectral grid changed — regenerate the goldens",
    )
    np.testing.assert_allclose(
        got["frequencies_cm1"], ref["frequencies_cm1"],
        rtol=0.0, atol=freq_atol, err_msg="mode frequencies moved",
    )
    for key in ("activities", "intensity"):
        scale = float(np.abs(ref[key]).max())
        np.testing.assert_allclose(
            got[key], ref[key], rtol=0.0, atol=rel * max(scale, 1e-30),
            err_msg=f"{key} moved beyond {rel:g} of peak",
        )


def test_golden_files_committed():
    for name in ("water1", "waterbox2"):
        assert (GOLDEN_DIR / f"{name}.npz").is_file(), (
            f"golden file {name}.npz missing — run "
            f"tests/data/golden/regenerate.py"
        )


def test_water1_matches_golden(golden):
    got = golden.compute("water1")
    with np.load(golden.golden_path("water1")) as ref:
        assert_spectrum_matches(got, ref)


def test_waterbox2_matches_golden(golden, waterbox2_result):
    got = golden.spectrum_arrays(waterbox2_result)
    with np.load(golden.golden_path("waterbox2")) as ref:
        assert_spectrum_matches(got, ref)


def test_waterbox2_canonical_rigid_equivalent_to_off(golden, tmp_path):
    """The headline equivalence gate for the canonical cache: a cold
    ``rigid`` run reproduces the golden spectrum within the standard
    tolerances, and a *warm* rerun over a rigidly transformed copy of
    the whole box answers entirely from the store — 100% canonical hit
    rate, zero executed fragments, zero SCF iterations — and still
    lands on the golden spectrum (frequencies and Raman activities are
    rotation invariants)."""
    from repro.geometry.atoms import Geometry
    from repro.geometry.water import random_rotation, water_box
    from repro.obs.counters import counters, reset_counters
    from repro.pipeline import QFRamanPipeline

    store = tmp_path / "canonical"

    # cold run: no hits possible, spectrum must equal the plain one
    pipe = golden.build_pipeline("waterbox2", canonical_cache=str(store),
                                 canonical_mode="rigid")
    cold = pipe.run(omega_cm1=golden.OMEGA_CM1, sigma_cm1=golden.SIGMA_CM1,
                    solver="dense")
    with np.load(golden.golden_path("waterbox2")) as ref:
        assert_spectrum_matches(golden.spectrum_arrays(cold), ref)
    assert cold.canonical is not None
    assert cold.canonical["hits"] == 0
    assert cold.canonical["writes"] == cold.unique_pieces > 0

    # warm run: one proper rigid motion applied to the whole box
    rng = np.random.default_rng(17)
    rot = random_rotation(rng)
    shift = rng.uniform(-8.0, 8.0, size=3)
    moved = [
        Geometry(list(w.symbols), w.coords @ rot.T + shift, w.charge,
                 list(w.labels))
        for w in water_box(2, seed=3)
    ]
    reset_counters()
    warm = QFRamanPipeline(waters=moved, canonical_cache=str(store),
                           canonical_mode="rigid").run(
        omega_cm1=golden.OMEGA_CM1, sigma_cm1=golden.SIGMA_CM1,
        solver="dense",
    )
    assert warm.unique_pieces == 0, "warm run must not execute fragments"
    assert counters().get("scf.iterations") == 0
    assert warm.canonical is not None
    assert warm.canonical["misses"] == 0
    assert warm.canonical["hits"] > 0
    assert warm.canonical["hit_rate"] == 1.0
    assert warm.canonical["rotations"] == warm.canonical["hits"]
    with np.load(golden.golden_path("waterbox2")) as ref:
        assert_spectrum_matches(golden.spectrum_arrays(warm), ref)


def test_comparator_detects_drift(golden):
    """The tolerance gate actually bites: a 0.1% intensity drift and a
    0.2 cm^-1 frequency shift must both fail."""
    with np.load(golden.golden_path("water1")) as ref:
        base = {k: ref[k].copy() for k in ref.keys()}

    drifted = dict(base)
    drifted["intensity"] = base["intensity"] * 1.001
    with pytest.raises(AssertionError, match="intensity"):
        assert_spectrum_matches(drifted, base)

    shifted = dict(base)
    shifted["frequencies_cm1"] = base["frequencies_cm1"] + 0.2
    with pytest.raises(AssertionError, match="frequencies"):
        assert_spectrum_matches(shifted, base)
