import numpy as np
import pytest

from repro.basis import build_basis
from repro.basis.refit import as_registry, refit_basis_data
from repro.geometry import water_molecule
from repro.scf import RHF


def test_refit_registry_structure():
    reg = as_registry(refit_basis_data(2))
    assert set(reg) == {"H", "He", "C", "N", "O", "S"}
    for shells in reg.values():
        for (l, exps, coefs) in shells:
            assert len(exps) == 2
            assert len(coefs) == 2
            assert all(a > 0 for a in exps)


def test_refit_basis_same_shape():
    w = water_molecule()
    b3 = build_basis(w, "sto-3g")
    b2 = build_basis(w, "sto-2g-fit")
    assert b2.nbf == b3.nbf
    assert b2.nshells == b3.nshells


def test_refit_functions_normalized(water):
    b2 = build_basis(water, "sto-2g-fit")
    from repro.integrals.engine import IntegralEngine

    eng = IntegralEngine(b2, water.numbers.astype(float), water.coords)
    assert np.allclose(np.diag(eng.overlap()), 1.0, atol=1e-10)


def test_refit_scf_runs_and_is_above_sto3g(water, water_scf_exact):
    e2 = RHF(water, basis_name="sto-2g-fit", eri_mode="exact").run()
    assert e2.converged
    # the 2-Gaussian refit spans a subspace-quality description of the
    # same radial shapes: variationally above the K=3 original
    assert e2.energy > water_scf_exact.energy
    assert e2.energy == pytest.approx(water_scf_exact.energy, abs=6.0)


def test_refit_radial_shapes_close():
    from repro.basis.refit import _fit_k_gaussians, _radial_grid, _target_radial
    from repro.basis.sto3g import STO3G

    for (l, exps, coefs) in STO3G["C"]:
        a, c = _fit_k_gaussians(np.array(exps), np.array(coefs), l, 2)
        r, w = _radial_grid(l)
        t = _target_radial(np.array(exps), np.array(coefs), l, r)
        f = _target_radial(a, c, l, r)
        rel = np.sum(w * (t - f) ** 2) / np.sum(w * t ** 2)
        assert rel < 1e-3
