import numpy as np
import pytest

from repro.basis.gaussian import (
    CARTESIAN_COMPONENTS,
    BasisSet,
    build_basis,
    make_shell,
    primitive_norm,
)
from repro.geometry import water_molecule
from repro.geometry.atoms import Geometry


def test_cartesian_component_counts():
    assert len(CARTESIAN_COMPONENTS[0]) == 1
    assert len(CARTESIAN_COMPONENTS[1]) == 3
    assert len(CARTESIAN_COMPONENTS[2]) == 6


def test_primitive_norm_s_function():
    # <g|g> = N^2 (pi/2a)^{3/2} = 1 for s
    a = 0.7
    n = primitive_norm(a, (0, 0, 0))
    overlap = n * n * (np.pi / (2 * a)) ** 1.5
    assert overlap == pytest.approx(1.0)


def test_primitive_norm_p_function():
    a = 1.3
    n = primitive_norm(a, (1, 0, 0))
    # <x g|x g> = N^2 * (1/(2*2a)) * (pi/2a)^{3/2}
    overlap = n * n * (np.pi / (2 * a)) ** 1.5 / (4 * a)
    assert overlap == pytest.approx(1.0)


def test_make_shell_contraction_normalized(water_scf_exact):
    # diagonal of the overlap matrix must be exactly 1 for every
    # contracted function (checked via the SCF fixture's S)
    assert np.allclose(np.diag(water_scf_exact.overlap), 1.0, atol=1e-12)


def test_make_shell_rejects_mismatch():
    with pytest.raises(ValueError):
        make_shell(0, (0, 0, 0), [1.0, 2.0], [0.5])


def test_build_basis_water_counts():
    basis = build_basis(water_molecule())
    # O: 1s + 2s + 2p = 5 functions; H: 1 each
    assert basis.nbf == 7
    assert basis.nshells == 5
    amap = basis.function_atom_map()
    assert list(amap) == [0, 0, 0, 0, 0, 1, 2]


def test_build_basis_sulfur():
    g = Geometry(["S"], np.zeros((1, 3)))
    basis = build_basis(g)
    # S: 3 s-shells + 2 p-shells = 3 + 6 = 9 functions
    assert basis.nbf == 9


def test_build_basis_unknown_element():
    g = Geometry(["Fe"], np.zeros((1, 3)))
    with pytest.raises(KeyError, match="no STO-3G data"):
        build_basis(g)


def test_build_basis_unknown_name():
    with pytest.raises(ValueError, match="unknown basis"):
        build_basis(water_molecule(), name="cc-pvdz")


def test_basisset_offsets_consistent():
    basis = build_basis(water_molecule())
    total = 0
    for sh, off in zip(basis.shells, basis.offsets):
        assert off == total
        total += sh.nfuncs
    assert total == basis.nbf
