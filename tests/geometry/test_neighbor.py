import numpy as np
import pytest

from repro.geometry.neighbor import CellList, count_pairs_within, min_distance, pairs_within


def test_min_distance_brute():
    a = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    b = np.array([[0.0, 0.0, 5.0], [1.0, 0.0, 0.5]])
    assert min_distance(a, b) == pytest.approx(0.5)


def test_cell_list_neighbors_of_point():
    pts = np.array([[0.0, 0.0, 0.0], [3.9, 0.0, 0.0], [20.0, 0.0, 0.0]])
    cl = CellList(pts, cell_size=4.0)
    near = cl.neighbors_of_point(np.array([0.1, 0.0, 0.0]))
    assert 0 in near and 1 in near and 2 not in near


def test_cell_list_pairs_complete_vs_bruteforce():
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 12, size=(60, 3))
    cl = CellList(pts, cell_size=3.0)
    candidates = set(cl.pairs())
    # every actual pair within the cell size must appear as a candidate
    for i in range(60):
        for j in range(i + 1, 60):
            if np.linalg.norm(pts[i] - pts[j]) <= 3.0:
                assert (i, j) in candidates


def test_pairs_within_matches_bruteforce():
    rng = np.random.default_rng(1)
    groups = [rng.uniform(0, 10, size=(rng.integers(1, 4), 3)) for _ in range(25)]
    got = set(pairs_within(groups, 2.5))
    expect = set()
    for i in range(25):
        for j in range(i + 1, 25):
            if min_distance(groups[i], groups[j]) <= 2.5:
                expect.add((i, j))
    assert got == expect


def test_pairs_within_rejects_empty_group():
    with pytest.raises(ValueError, match="empty group"):
        pairs_within([np.zeros((0, 3)), np.zeros((1, 3))], 2.0)


def test_pairs_within_rejects_bad_threshold():
    with pytest.raises(ValueError, match="positive"):
        pairs_within([np.zeros((1, 3))], -1.0)


def test_count_pairs_within():
    groups = [
        np.array([[0.0, 0.0, 0.0]]),
        np.array([[1.0, 0.0, 0.0]]),
        np.array([[10.0, 0.0, 0.0]]),
    ]
    assert count_pairs_within(groups, 2.0) == 1


def test_negative_coordinates_handled():
    groups = [
        np.array([[-5.0, -5.0, -5.0]]),
        np.array([[-5.5, -5.0, -5.0]]),
    ]
    assert pairs_within(groups, 1.0) == [(0, 1)]
