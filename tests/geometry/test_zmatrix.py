import numpy as np
import pytest

from repro.geometry.zmatrix import bond_angle, dihedral_angle, place_atom


def test_place_atom_bond_length():
    a = np.array([0.0, 0.0, 1.0])
    b = np.array([0.0, 1.0, 0.0])
    c = np.array([0.0, 0.0, 0.0])
    d = place_atom(a, b, c, bond=1.5, angle_deg=109.5, dihedral_deg=60.0)
    assert np.linalg.norm(d - c) == pytest.approx(1.5)


def test_place_atom_angle():
    a = np.array([1.0, 1.0, 0.0])
    b = np.array([1.0, 0.0, 0.0])
    c = np.array([0.0, 0.0, 0.0])
    d = place_atom(a, b, c, bond=1.0, angle_deg=120.0, dihedral_deg=0.0)
    assert bond_angle(b, c, d) == pytest.approx(120.0, abs=1e-8)


@pytest.mark.parametrize("phi", [-170.0, -60.0, 0.0, 45.0, 120.0, 179.0])
def test_place_atom_dihedral_roundtrip(phi):
    a = np.array([1.0, 1.0, 0.3])
    b = np.array([1.0, 0.0, 0.0])
    c = np.array([0.0, 0.0, 0.0])
    d = place_atom(a, b, c, bond=1.2, angle_deg=100.0, dihedral_deg=phi)
    assert dihedral_angle(a, b, c, d) == pytest.approx(phi, abs=1e-8)


def test_place_atom_collinear_raises():
    a = np.array([0.0, 0.0, 2.0])
    b = np.array([0.0, 0.0, 1.0])
    c = np.array([0.0, 0.0, 0.0])
    with pytest.raises(ValueError, match="collinear"):
        place_atom(a, b, c, 1.0, 109.5, 0.0)


def test_bond_angle_right_angle():
    assert bond_angle([1, 0, 0], [0, 0, 0], [0, 1, 0]) == pytest.approx(90.0)


def test_dihedral_sign_convention():
    # standard test: +90 vs -90 must differ by handedness
    a = np.array([1.0, 0.0, 0.0])
    b = np.array([0.0, 0.0, 0.0])
    c = np.array([0.0, 1.0, 0.0])
    d_plus = place_atom(a, b, c, 1.0, 90.0, 90.0)
    d_minus = place_atom(a, b, c, 1.0, 90.0, -90.0)
    assert dihedral_angle(a, b, c, d_plus) == pytest.approx(90.0, abs=1e-8)
    assert dihedral_angle(a, b, c, d_minus) == pytest.approx(-90.0, abs=1e-8)
