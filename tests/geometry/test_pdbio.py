import numpy as np
import pytest

from repro.geometry import build_polypeptide, water_molecule
from repro.geometry.pdbio import read_pdb, write_pdb


def test_roundtrip_polypeptide(tmp_path):
    g, _res = build_polypeptide(["GLY", "ALA"])
    path = tmp_path / "pep.pdb"
    write_pdb(g, path)
    back = read_pdb(path)
    assert back.symbols == g.symbols
    # PDB stores 3 decimals in angstrom
    assert np.allclose(back.coords_angstrom(), g.coords_angstrom(), atol=2e-3)
    assert back.labels[0]["residue_index"] == 0


def test_roundtrip_water(tmp_path):
    w = water_molecule(center=(5.0, 5.0, 5.0))
    path = tmp_path / "w.pdb"
    write_pdb(w, path)
    back = read_pdb(path)
    assert back.symbols == ["O", "H", "H"]


def test_read_empty_raises(tmp_path):
    path = tmp_path / "empty.pdb"
    path.write_text("REMARK nothing here\nEND\n")
    with pytest.raises(ValueError, match="no ATOM records"):
        read_pdb(path)


def test_pdb_format_columns(tmp_path):
    g, _res = build_polypeptide(["GLY"])
    path = tmp_path / "cols.pdb"
    write_pdb(g, path)
    lines = [l for l in path.read_text().splitlines() if l.startswith("ATOM")]
    assert len(lines) == g.natoms
    for line in lines:
        float(line[30:38]), float(line[38:46]), float(line[46:54])
