import numpy as np
import pytest

from repro.geometry import build_polypeptide, solvate
from repro.geometry.neighbor import min_distance


def test_solvate_produces_waters_and_no_clashes():
    g, _res = build_polypeptide(["GLY"])
    waters = solvate(g, margin=4.0, clash_distance=2.4, seed=0)
    assert len(waters) > 5
    solute = g.coords_angstrom()
    for w in waters:
        assert w.natoms == 3
        assert min_distance(w.coords_angstrom(), solute) >= 2.4 - 1e-9


def test_solvate_margin_grows_count():
    g, _res = build_polypeptide(["GLY"])
    small = solvate(g, margin=3.0, seed=0)
    big = solvate(g, margin=6.0, seed=0)
    assert len(big) > len(small)


def test_solvate_validates_args():
    g, _res = build_polypeptide(["GLY"])
    with pytest.raises(ValueError):
        solvate(g, margin=-1.0)
    with pytest.raises(ValueError):
        solvate(g, clash_distance=0.0)


def test_solvate_waters_inside_box():
    g, _res = build_polypeptide(["GLY"])
    margin = 5.0
    waters = solvate(g, margin=margin, seed=1)
    solute = g.coords_angstrom()
    lo = solute.min(axis=0) - margin - 1.5
    hi = solute.max(axis=0) + margin + 1.5
    for w in waters:
        c = w.coords_angstrom()
        assert np.all(c >= lo - 1e-9) and np.all(c <= hi + 1e-9)
