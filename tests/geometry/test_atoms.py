import numpy as np
import pytest

from repro.constants import ANGSTROM_TO_BOHR
from repro.geometry.atoms import Atom, Geometry


def make_h2o():
    return Geometry(
        ["O", "H", "H"],
        np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 1.8], [1.8, 0.0, 0.0]]),
    )


def test_basic_properties():
    g = make_h2o()
    assert g.natoms == 3
    assert list(g.numbers) == [8, 1, 1]
    assert g.nelectrons == 10
    assert g.masses.shape == (3,)


def test_charge_changes_electrons():
    g = Geometry(["O", "H", "H"], np.zeros((3, 3)) + np.eye(3), charge=1)
    assert g.nelectrons == 9


def test_from_angstrom_converts():
    g = Geometry.from_angstrom(["H"], [[1.0, 0.0, 0.0]])
    assert g.coords[0, 0] == pytest.approx(ANGSTROM_TO_BOHR)
    assert np.allclose(g.coords_angstrom()[0], [1.0, 0.0, 0.0])


def test_from_atoms():
    g = Geometry.from_atoms([Atom("H", (0, 0, 0)), Atom("H", (0, 0, 1.4))])
    assert g.natoms == 2
    assert g.distance(0, 1) == pytest.approx(1.4)


def test_mismatched_lengths_raise():
    with pytest.raises(ValueError, match="mismatch"):
        Geometry(["H", "H"], np.zeros((3, 3)))


def test_labels_must_align():
    with pytest.raises(ValueError, match="labels"):
        Geometry(["H"], np.zeros((1, 3)), labels=[{}, {}])


def test_displaced_moves_one_coordinate():
    g = make_h2o()
    d = g.displaced(1, 2, 0.01)
    assert d.coords[1, 2] == pytest.approx(g.coords[1, 2] + 0.01)
    # everything else untouched
    mask = np.ones_like(g.coords, dtype=bool)
    mask[1, 2] = False
    assert np.array_equal(d.coords[mask], g.coords[mask])
    # original is not mutated
    assert g.coords[1, 2] == 1.8


def test_displaced_bounds():
    g = make_h2o()
    with pytest.raises(IndexError):
        g.displaced(5, 0, 0.1)
    with pytest.raises(IndexError):
        g.displaced(0, 3, 0.1)


def test_subset_preserves_labels():
    g = Geometry(
        ["O", "H", "H"],
        np.eye(3),
        labels=[{"name": "O"}, {"name": "H1"}, {"name": "H2"}],
    )
    s = g.subset([2, 0])
    assert s.symbols == ["H", "O"]
    assert s.labels[0]["name"] == "H2"


def test_merged_concatenates_and_adds_charge():
    a = Geometry(["H"], [[0.0, 0.0, 0.0]], charge=1)
    b = Geometry(["He"], [[0.0, 0.0, 2.0]])
    m = a.merged(b)
    assert m.symbols == ["H", "He"]
    assert m.charge == 1
    assert m.natoms == 2


def test_nuclear_repulsion_h2():
    g = Geometry(["H", "H"], np.array([[0, 0, 0], [0, 0, 1.4]]))
    assert g.nuclear_repulsion() == pytest.approx(1.0 / 1.4)


def test_nuclear_repulsion_coincident_raises():
    g = Geometry(["H", "H"], np.zeros((2, 3)))
    with pytest.raises(ValueError, match="coincident"):
        g.nuclear_repulsion()


def test_center_of_mass_weighted_towards_heavy():
    g = make_h2o()
    com = g.center_of_mass()
    # oxygen dominates: COM close to origin
    assert np.linalg.norm(com) < 0.3


def test_translated():
    g = make_h2o()
    t = g.translated([1.0, 2.0, 3.0])
    assert np.allclose(t.coords - g.coords, [1.0, 2.0, 3.0])
