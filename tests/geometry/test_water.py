import math

import numpy as np
import pytest

from repro.geometry.water import (
    HOH_ANGLE_DEG,
    OH_BOND_ANGSTROM,
    WATER_NUMBER_DENSITY,
    random_rotation,
    water_box,
    water_box_stats,
    water_dimer,
    water_molecule,
)
from repro.geometry.zmatrix import bond_angle


def test_water_molecule_geometry():
    w = water_molecule()
    c = w.coords_angstrom()
    assert w.symbols == ["O", "H", "H"]
    assert np.linalg.norm(c[1] - c[0]) == pytest.approx(OH_BOND_ANGSTROM, abs=1e-10)
    assert np.linalg.norm(c[2] - c[0]) == pytest.approx(OH_BOND_ANGSTROM, abs=1e-10)
    assert bond_angle(c[1], c[0], c[2]) == pytest.approx(HOH_ANGLE_DEG, abs=1e-8)


def test_water_molecule_center_and_rotation_preserve_shape():
    rng = np.random.default_rng(5)
    rot = random_rotation(rng)
    w = water_molecule(center=(3.0, -2.0, 1.0), rotation=rot)
    c = w.coords_angstrom()
    assert np.linalg.norm(c[1] - c[0]) == pytest.approx(OH_BOND_ANGSTROM)
    assert np.allclose(c[0], [3.0, -2.0, 1.0])


def test_random_rotation_is_orthogonal():
    rng = np.random.default_rng(0)
    for _ in range(5):
        r = random_rotation(rng)
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)


def test_water_dimer_separation():
    d = water_dimer(separation_angstrom=3.1)
    c = d.coords_angstrom()
    assert d.natoms == 6
    assert np.linalg.norm(c[3] - c[0]) == pytest.approx(3.1)


def test_water_box_count_and_no_overlap():
    waters = water_box(27, seed=2)
    assert len(waters) == 27
    centers = np.array([w.coords_angstrom()[0] for w in waters])
    d = np.linalg.norm(centers[:, None] - centers[None, :], axis=-1)
    np.fill_diagonal(d, 99.0)
    # jitter 0.25 around a ~3.1 A lattice: no two oxygens closer than ~2 A
    assert d.min() > 2.0


def test_water_box_density():
    n = 64
    waters = water_box(n, seed=0)
    centers = np.array([w.coords_angstrom()[0] for w in waters])
    span = centers.max(axis=0) - centers.min(axis=0)
    vol = float(np.prod(span + (1.0 / WATER_NUMBER_DENSITY) ** (1 / 3)))
    assert n / vol == pytest.approx(WATER_NUMBER_DENSITY, rel=0.2)


def test_water_box_invalid():
    with pytest.raises(ValueError):
        water_box(0)


def test_water_box_stats_scaling():
    s1 = water_box_stats(1000)
    s2 = water_box_stats(2000)
    assert s2["expected_ww_pairs"] == pytest.approx(2 * s1["expected_ww_pairs"])
    assert s1["n_atoms"] == 3000
    assert s2["box_side_angstrom"] > s1["box_side_angstrom"]


def test_water_box_stats_match_explicit_box():
    """The closed-form pair estimate should track the measured count."""
    from repro.geometry.neighbor import pairs_within

    n = 125
    waters = water_box(n, seed=7)
    measured = len(pairs_within([w.coords_angstrom() for w in waters], 4.0))
    expected = water_box_stats(n)["expected_ww_pairs"]
    # finite box: surface molecules have fewer neighbors, so the
    # homogeneous estimate overshoots by the surface fraction
    assert measured < expected
    assert measured > 0.35 * expected
