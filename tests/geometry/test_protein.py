import numpy as np
import pytest

from repro.geometry.protein import (
    RESIDUE_TEMPLATES,
    build_polypeptide,
    residue_atom_count,
    sample_sequence,
    spike_like_protein,
)


@pytest.mark.parametrize("name", sorted(RESIDUE_TEMPLATES))
def test_single_residue_builds_clean(name):
    g, res = build_polypeptide([name])
    c = g.coords_angstrom()
    d = np.linalg.norm(c[:, None, :] - c[None, :, :], axis=-1)
    np.fill_diagonal(d, 99.0)
    # shortest distance is an O-H or C-H bond; anything below 0.9 A is a clash
    assert d.min() > 0.9
    # closed shell
    assert g.nelectrons % 2 == 0
    assert len(res) == 1
    assert res[0].name == name


def test_atom_counts_match_templates():
    for name in RESIDUE_TEMPLATES:
        g, res = build_polypeptide([name])
        # terminal atoms: extra H on N, OXT + HXT on C
        assert g.natoms == residue_atom_count(name) + 3


def test_polypeptide_peptide_bond_length():
    g, res = build_polypeptide(["GLY", "GLY"])
    c_i = res[0].named("C")
    n_j = res[1].named("N")
    d = np.linalg.norm(g.coords_angstrom()[c_i] - g.coords_angstrom()[n_j])
    assert d == pytest.approx(1.329, abs=1e-6)


def test_polypeptide_no_clashes_long_chain():
    g, _res = build_polypeptide(["GLY", "ALA", "SER", "VAL", "LEU", "PHE"])
    c = g.coords_angstrom()
    d = np.linalg.norm(c[:, None, :] - c[None, :, :], axis=-1)
    np.fill_diagonal(d, 99.0)
    assert d.min() > 0.9


def test_polypeptide_residue_bookkeeping():
    g, res = build_polypeptide(["ALA", "GLY", "ALA"])
    seen = set()
    for r in res:
        for idx in r.atom_indices:
            assert idx not in seen
            seen.add(idx)
    assert len(seen) == g.natoms
    # labels carry residue indices
    for r in res:
        for idx in r.atom_indices:
            assert g.labels[idx]["residue_index"] == r.index


def test_unknown_residue_raises():
    with pytest.raises(KeyError, match="unsupported residue"):
        build_polypeptide(["XYZ"])


def test_empty_sequence_raises():
    with pytest.raises(ValueError):
        build_polypeptide([])


def test_sample_sequence_composition():
    from repro.geometry.protein import SPIKE_COMPOSITION

    seq = sample_sequence(4000, seed=0)
    assert len(seq) == 4000
    total = sum(SPIKE_COMPOSITION.values())
    for name, frac in SPIKE_COMPOSITION.items():
        target = frac / total
        got = seq.count(name) / 4000
        assert abs(got - target) < 0.03, name


def test_spike_like_protein_contacts():
    g, res = spike_like_protein(150, seed=4)
    assert len(res) == 150
    assert g.natoms == sum(len(r.atom_indices) for r in res)
    # serpentine packing: the structure must be compact, not a line
    span = g.coords_angstrom().max(axis=0) - g.coords_angstrom().min(axis=0)
    assert span.max() / span.min() < 8.0


def test_spike_like_protein_has_nonlocal_contacts():
    from repro.geometry.neighbor import pairs_within

    g, res = spike_like_protein(100, seed=1)
    coords = g.coords_angstrom()
    groups = [coords[r.atom_indices] for r in res]
    close = pairs_within(groups, 4.0)
    nonlocal_pairs = [p for p in close if abs(p[0] - p[1]) >= 3]
    assert len(nonlocal_pairs) > 20  # a folded chain touches itself a lot
