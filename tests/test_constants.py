import math

import pytest

from repro import constants as C


def test_bohr_angstrom_roundtrip():
    assert C.BOHR_TO_ANGSTROM * C.ANGSTROM_TO_BOHR == pytest.approx(1.0)


def test_hartree_conversions():
    assert C.HARTREE_TO_EV == pytest.approx(27.2114, abs=1e-3)
    assert C.HARTREE_TO_CM1 == pytest.approx(219474.6, abs=0.5)
    assert C.HARTREE_TO_KCALMOL == pytest.approx(627.509, abs=1e-2)


def test_hessian_to_cm1_consistency():
    # HESSIAN_TO_CM1 must equal HARTREE_TO_CM1 / sqrt(AMU_TO_AU)
    assert C.HESSIAN_TO_CM1 == pytest.approx(
        C.HARTREE_TO_CM1 / math.sqrt(C.AMU_TO_AU)
    )


def test_element_tables_aligned():
    for symbol, z in C.ELEMENT_NUMBERS.items():
        assert C.ELEMENT_SYMBOLS[z] == symbol
    for symbol in ("H", "C", "N", "O", "S"):
        assert symbol in C.ATOMIC_MASSES
        assert symbol in C.COVALENT_RADII


def test_mass_of_known():
    assert C.mass_of("C") == pytest.approx(12.0)
    assert C.mass_of("H") == pytest.approx(1.00783, abs=1e-4)


def test_mass_of_unknown_raises():
    with pytest.raises(KeyError, match="no tabulated mass"):
        C.mass_of("Xx")


def test_number_of_unknown_raises():
    with pytest.raises(KeyError, match="unknown element"):
        C.number_of("Qq")


def test_water_mass_sum():
    total = C.mass_of("O") + 2 * C.mass_of("H")
    assert total == pytest.approx(18.0106, abs=1e-3)
