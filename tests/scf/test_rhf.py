"""RHF against literature energies and physical invariants."""

import numpy as np
import pytest

from repro.geometry.atoms import Geometry
from repro.scf import RHF


def test_h2_literature_energy(h2):
    res = RHF(h2, eri_mode="exact").run()
    # Szabo & Ostlund: E(RHF/STO-3G, R = 1.4 a0) = -1.1167 Eh
    assert res.converged
    assert res.energy == pytest.approx(-1.1167, abs=2e-4)


def test_water_literature_energy(water_scf_exact):
    # standard value for RHF/STO-3G water near the experimental geometry
    assert water_scf_exact.energy == pytest.approx(-74.9629, abs=2e-3)


def test_df_close_to_exact(water_scf_exact, water_scf_df):
    err = abs(water_scf_df.energy - water_scf_exact.energy)
    assert err < 5e-3  # documented DF tolerance (hartree)


def test_density_trace_equals_electrons(water_scf_exact):
    res = water_scf_exact
    n = np.sum(res.density * res.overlap)
    assert n == pytest.approx(res.geometry.nelectrons, abs=1e-9)


def test_density_idempotent(water_scf_exact):
    res = water_scf_exact
    psp = res.density @ res.overlap @ res.density
    assert np.allclose(psp, 2.0 * res.density, atol=1e-7)


def test_fock_commutes_with_density(water_scf_exact):
    res = water_scf_exact
    comm = res.fock @ res.density @ res.overlap - res.overlap @ res.density @ res.fock
    assert np.abs(comm).max() < 1e-6


def test_mo_orthonormal(water_scf_exact):
    res = water_scf_exact
    ctsc = res.mo_coeff.T @ res.overlap @ res.mo_coeff
    assert np.allclose(ctsc, np.eye(ctsc.shape[0]), atol=1e-9)


def test_virial_ratio_reasonable(water_scf_exact):
    """-V/T should be near 2 at a reasonable geometry (1.9-2.1)."""
    res = water_scf_exact
    t = float(np.sum(res.density * res.engine.kinetic()))
    ratio = (t - res.energy) / t  # -V/T with V = E - T
    assert 1.9 < ratio < 2.2


def test_warm_start_converges_fast(water_scf_df, water):
    res2 = RHF(water, eri_mode="df").run(guess_density=water_scf_df.density)
    assert res2.converged
    assert res2.niter <= 4
    assert res2.energy == pytest.approx(water_scf_df.energy, abs=1e-8)


def test_charged_species():
    heh = Geometry(["He", "H"], np.array([[0, 0, 0], [0, 0, 1.4632]]), charge=1)
    res = RHF(heh, eri_mode="exact").run()
    assert res.converged
    # Szabo & Ostlund: HeH+ STO-3G total energy ~ -2.841 at R=1.4632
    assert res.energy == pytest.approx(-2.841, abs=5e-2)


def test_odd_electrons_rejected():
    g = Geometry(["H"], np.zeros((1, 3)))
    with pytest.raises(ValueError, match="even electron"):
        RHF(g)


def test_bad_eri_mode_rejected(water):
    with pytest.raises(ValueError, match="eri_mode"):
        RHF(water, eri_mode="magic")


def test_field_changes_energy_quadratically(water):
    e0 = RHF(water, eri_mode="exact").run().energy
    f = 2e-3
    ep = RHF(water, eri_mode="exact", field_vector=[0, 0, f]).run().energy
    em = RHF(water, eri_mode="exact", field_vector=[0, 0, -f]).run().energy
    # symmetric response: linear terms cancel only if dipole nonzero...
    # water has a dipole along its C2 axis -> first order dominates,
    # but e(+f)+e(-f)-2 e0 < 0 (polarizability is positive)
    assert ep + em - 2 * e0 < 0


def test_translation_invariance(water):
    e0 = RHF(water, eri_mode="exact").run().energy
    moved = water.translated([2.5, -1.0, 0.7])
    e1 = RHF(moved, eri_mode="exact").run().energy
    assert e1 == pytest.approx(e0, abs=1e-9)


def test_rotation_invariance(water):
    from repro.geometry.water import random_rotation

    rng = np.random.default_rng(11)
    rot = random_rotation(rng)
    rotated = Geometry(list(water.symbols), water.coords @ rot.T)
    e0 = RHF(water, eri_mode="exact").run().energy
    e1 = RHF(rotated, eri_mode="exact").run().energy
    assert e1 == pytest.approx(e0, abs=1e-9)
