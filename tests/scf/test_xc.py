import numpy as np
import pytest

from repro.scf.xc import lda_kernel, lda_xc, slater_exchange, vwn_correlation


def test_slater_exchange_scaling():
    """e_x ~ rho^{4/3}: doubling the density scales by 2^{4/3}."""
    rho = np.array([0.3])
    e1, _ = slater_exchange(rho)
    e2, _ = slater_exchange(2 * rho)
    assert e2[0] / e1[0] == pytest.approx(2.0 ** (4.0 / 3.0))


def test_slater_potential_is_derivative():
    rho = np.linspace(0.05, 2.0, 30)
    e, v = slater_exchange(rho)
    h = 1e-6
    ep, _ = slater_exchange(rho + h)
    em, _ = slater_exchange(rho - h)
    assert np.allclose((ep - em) / (2 * h), v, atol=1e-6)


def test_vwn_potential_is_derivative():
    rho = np.linspace(0.05, 2.0, 30)
    e, v = vwn_correlation(rho)
    h = 1e-7 * rho
    ep, _ = vwn_correlation(rho + h)
    em, _ = vwn_correlation(rho - h)
    assert np.allclose((ep - em) / (2 * h), v, rtol=1e-4)


def test_vwn_known_value():
    """eps_c at r_s = 1 for the paramagnetic electron gas: the
    Ceperley-Alder-fitted functionals agree on ~-0.060 Eh (PW92 gives
    -0.0602; VWN5 is within a millihartree of it)."""
    rs = 1.0
    rho = 3.0 / (4.0 * np.pi * rs ** 3)
    e, _v = vwn_correlation(np.array([rho]))
    eps = e[0] / rho
    assert eps == pytest.approx(-0.060, abs=2e-3)


def test_zero_density_is_safe():
    e, v = lda_xc(np.array([0.0, 1e-40]))
    assert np.all(np.isfinite(e))
    assert np.all(np.isfinite(v))


def test_lda_energies_negative():
    rho = np.linspace(0.01, 5.0, 20)
    e, v = lda_xc(rho)
    assert np.all(e < 0)
    assert np.all(v < 0)


def test_lda_kernel_positive_curvature():
    """f_xc = dv/drho < 0 for exchange-dominated LDA (v ~ -rho^{1/3})."""
    rho = np.linspace(0.1, 2.0, 10)
    f = lda_kernel(rho)
    assert np.all(f < 0)


def test_lda_kernel_matches_fd_of_potential():
    rho = np.array([0.5, 1.0, 2.0])
    f = lda_kernel(rho)
    h = 1e-5
    _, vp = lda_xc(rho + h)
    _, vm = lda_xc(rho - h)
    assert np.allclose(f, (vp - vm) / (2 * h), rtol=1e-3)
