import numpy as np
import pytest

from repro.scf.diis import DIIS


def test_diis_needs_two_vectors():
    with pytest.raises(ValueError):
        DIIS(max_vectors=1)


def test_push_returns_error_norm():
    d = DIIS()
    f = np.array([[1.0, 0.2], [0.2, -1.0]])
    p = np.eye(2)
    s = np.eye(2)
    err = d.push(f, p, s)
    # FPS - SPF = F - F = 0 for commuting case
    assert err == pytest.approx(0.0)


def test_extrapolate_single_returns_input():
    d = DIIS()
    f = np.array([[2.0, 0.0], [0.0, 3.0]])
    d.push(f, np.eye(2), np.eye(2))
    assert np.allclose(d.extrapolate(), f)


def test_extrapolate_empty_raises():
    with pytest.raises(RuntimeError):
        DIIS().extrapolate()


def test_history_bounded():
    d = DIIS(max_vectors=3)
    rng = np.random.default_rng(0)
    for _ in range(10):
        f = rng.normal(size=(4, 4))
        f = f + f.T
        p = rng.normal(size=(4, 4))
        p = p + p.T
        d.push(f, p, np.eye(4))
    assert d.nvec == 3


def test_extrapolation_coefficients_sum_to_one():
    """DIIS output must be an affine combination: feeding Focks with a
    common constant part preserves that part exactly."""
    d = DIIS()
    rng = np.random.default_rng(1)
    const = np.full((3, 3), 7.0)
    for _ in range(4):
        f = rng.normal(size=(3, 3))
        f = f + f.T + const
        p = rng.normal(size=(3, 3))
        p = p + p.T
        d.push(f, p, np.eye(3))
    out = d.extrapolate()
    # subtracting the mean-free parts cannot remove the constant
    assert out.mean() == pytest.approx(7.0, rel=0.5)


def test_reset():
    d = DIIS()
    d.push(np.eye(2), np.eye(2), np.eye(2))
    d.reset()
    assert d.nvec == 0
