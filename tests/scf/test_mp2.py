import numpy as np
import pytest

from repro.scf import RHF
from repro.scf.mp2 import mp2_energy, mp2_total_energy


def test_h2_mp2_literature(h2):
    """MP2/STO-3G for H2 at 1.4 a0: E_corr ~ -0.0131 Eh (a standard
    teaching value; the minimal basis has exactly one virtual)."""
    scf = RHF(h2, eri_mode="exact").run()
    e2 = mp2_energy(scf)
    assert e2 == pytest.approx(-0.0131, abs=1e-3)


def test_water_mp2_negative_and_sane(water_scf_exact):
    e2 = mp2_energy(water_scf_exact)
    # STO-3G water MP2 correlation: a few tens of millihartree
    assert -0.08 < e2 < -0.02


def test_df_matches_exact(water_scf_exact, water_scf_df):
    e_exact = mp2_energy(water_scf_exact)
    e_df = mp2_energy(water_scf_df)
    assert e_df == pytest.approx(e_exact, abs=2e-3)


def test_total_energy(water_scf_exact):
    assert mp2_total_energy(water_scf_exact) == pytest.approx(
        water_scf_exact.energy + mp2_energy(water_scf_exact)
    )


def test_requires_converged(water_scf_df):
    import dataclasses

    broken = dataclasses.replace(water_scf_df, converged=False)
    with pytest.raises(ValueError, match="converged"):
        mp2_energy(broken)


def test_mp2_size_consistency():
    """Two far-separated H2 molecules: E2(pair) = 2 E2(monomer)."""
    from repro.geometry.atoms import Geometry

    h2 = Geometry(["H", "H"], np.array([[0, 0, 0], [0, 0, 1.4]]))
    pair = Geometry(
        ["H", "H", "H", "H"],
        np.array([[0, 0, 0], [0, 0, 1.4], [60, 0, 0], [60, 0, 1.4]]),
    )
    e_mono = mp2_energy(RHF(h2, eri_mode="exact").run())
    e_pair = mp2_energy(RHF(pair, eri_mode="exact").run())
    assert e_pair == pytest.approx(2 * e_mono, abs=1e-6)
