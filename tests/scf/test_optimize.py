import numpy as np
import pytest

from repro.constants import BOHR_TO_ANGSTROM
from repro.dfpt.gradient import gradient
from repro.scf import RHF
from repro.scf.optimize import optimize_geometry


def test_water_optimization(water_optimized):
    opt = water_optimized
    assert opt.converged
    assert opt.grad_max < 3e-3
    # STO-3G RHF water: r(OH) ~ 0.989 A, angle ~ 100 deg
    c = opt.geometry.coords_angstrom()
    r1 = np.linalg.norm(c[1] - c[0])
    r2 = np.linalg.norm(c[2] - c[0])
    assert r1 == pytest.approx(0.989, abs=5e-3)
    assert r2 == pytest.approx(0.989, abs=5e-3)


def test_optimized_energy_below_start(water_optimized, water):
    e_start = RHF(water, eri_mode="df").run().energy
    assert water_optimized.energy < e_start


def test_gradient_small_at_minimum(water_optimized):
    res = RHF(water_optimized.geometry, eri_mode="df").run()
    g = gradient(res)
    assert np.abs(g).max() < 1e-3


def test_h2_bond_length():
    from repro.geometry.atoms import Geometry

    g = Geometry(["H", "H"], np.array([[0, 0, 0], [0, 0, 1.3]]))
    opt = optimize_geometry(g, eri_mode="exact")
    r = np.linalg.norm(opt.geometry.coords[1] - opt.geometry.coords[0])
    # STO-3G H2 equilibrium: 1.346 bohr (0.712 A)
    assert r == pytest.approx(1.346, abs=5e-3)
