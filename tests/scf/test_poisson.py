import numpy as np
import pytest

from repro.scf.poisson import (
    UniformGrid,
    gaussian_density,
    gaussian_potential_exact,
    grid_for_geometry,
    solve_poisson,
)


def test_grid_for_geometry_covers_molecule():
    coords = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 3.0]])
    g = grid_for_geometry(coords, n=16, margin=4.0)
    pts = g.points()
    assert pts.min() <= -3.5
    assert pts.max() >= 6.5
    assert pts.shape == (16 ** 3, 3)


def test_poisson_gaussian_vs_analytic():
    g = UniformGrid(origin=np.array([-8.0, -8.0, -8.0]), n=48, h=16.0 / 47)
    center = np.zeros(3)
    rho = gaussian_density(g, center, alpha=1.0)
    v = solve_poisson(rho, g.h)
    v_exact = gaussian_potential_exact(g, center, alpha=1.0)
    # compare in the interior where both charge and boundary effects are
    # controlled
    pts = g.points().reshape(g.shape + (3,))
    r = np.linalg.norm(pts - center, axis=-1)
    mask = (r > 0.5) & (r < 4.0)
    rel = np.abs(v[mask] - v_exact[mask]) / np.abs(v_exact[mask])
    assert np.median(rel) < 0.03


def test_poisson_total_charge_neutrality_of_field():
    """The spectral solve is zero-mean by construction (k=0 removed)."""
    g = UniformGrid(origin=np.array([-6.0, -6.0, -6.0]), n=24, h=0.5)
    rho = gaussian_density(g, np.zeros(3), alpha=2.0)
    v = solve_poisson(rho, g.h, pad_factor=2)
    assert np.isfinite(v).all()


def test_poisson_linearity():
    g = UniformGrid(origin=np.array([-6.0, -6.0, -6.0]), n=24, h=0.5)
    r1 = gaussian_density(g, np.array([-1.0, 0.0, 0.0]), alpha=1.5)
    r2 = gaussian_density(g, np.array([1.0, 0.0, 0.0]), alpha=0.8)
    v12 = solve_poisson(r1 + r2, g.h)
    v1 = solve_poisson(r1, g.h)
    v2 = solve_poisson(r2, g.h)
    assert np.allclose(v12, v1 + v2, atol=1e-10)


def test_poisson_rejects_non_cube():
    with pytest.raises(ValueError):
        solve_poisson(np.zeros((4, 4, 5)), 0.5)


def test_volume_element():
    g = UniformGrid(origin=np.zeros(3), n=10, h=0.25)
    assert g.volume_element == pytest.approx(0.25 ** 3)
