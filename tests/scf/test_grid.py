import numpy as np
import pytest

from repro.geometry import water_molecule
from repro.scf.grid import (
    build_grid,
    density_on_grid,
    evaluate_basis,
    gauss_chebyshev_radial,
    lebedev,
)


@pytest.mark.parametrize("order", [6, 26, 38])
def test_lebedev_weights_normalized(order):
    pts, wts = lebedev(order)
    assert wts.sum() == pytest.approx(1.0)
    assert np.allclose(np.linalg.norm(pts, axis=1), 1.0)


@pytest.mark.parametrize("order", [6, 26, 38])
def test_lebedev_second_moment(order):
    pts, wts = lebedev(order)
    assert np.sum(wts * pts[:, 0] ** 2) == pytest.approx(1.0 / 3.0)


@pytest.mark.parametrize("order", [26, 38])
def test_lebedev_fourth_moment(order):
    pts, wts = lebedev(order)
    # <x^4> over sphere = 1/5; only rules above order 3 integrate it
    assert np.sum(wts * pts[:, 0] ** 4) == pytest.approx(0.2, abs=1e-12)
    assert np.sum(wts * pts[:, 0] ** 2 * pts[:, 1] ** 2) == pytest.approx(
        1.0 / 15.0, abs=1e-12
    )


def test_radial_integrates_gaussian():
    # int_0^inf r^2 exp(-r^2) dr = sqrt(pi)/4
    r, w = gauss_chebyshev_radial(60, scale=1.0)
    val = np.sum(w * r ** 2 * np.exp(-(r ** 2)))
    assert val == pytest.approx(np.sqrt(np.pi) / 4.0, rel=1e-6)


def test_grid_integrates_electron_count(water_scf_df):
    geom = water_scf_df.geometry
    grid = build_grid(geom, radial_points=50, angular_order=26)
    chi = evaluate_basis(water_scf_df.basis, grid.points)
    n = density_on_grid(chi, water_scf_df.density)
    total = float(np.sum(grid.weights * n))
    assert total == pytest.approx(10.0, abs=0.05)


def test_grid_integrates_overlap(water_scf_df):
    """Quadrature of chi_m chi_n must reproduce the overlap matrix."""
    geom = water_scf_df.geometry
    grid = build_grid(geom, radial_points=60, angular_order=38)
    chi = evaluate_basis(water_scf_df.basis, grid.points)
    s_grid = (chi * grid.weights[:, None]).T @ chi
    assert np.allclose(s_grid, water_scf_df.overlap, atol=5e-3)


def test_basis_gradient_vs_fd(water_scf_df):
    rng = np.random.default_rng(0)
    pts = rng.normal(scale=1.5, size=(40, 3))
    chi, dchi = evaluate_basis(water_scf_df.basis, pts, derivative=True)
    eps = 1e-6
    for d in range(3):
        shift = np.zeros(3)
        shift[d] = eps
        cp = evaluate_basis(water_scf_df.basis, pts + shift)
        cm = evaluate_basis(water_scf_df.basis, pts - shift)
        assert np.allclose((cp - cm) / (2 * eps), dchi[d], atol=1e-6)


def test_density_nonnegative(water_scf_df):
    geom = water_scf_df.geometry
    grid = build_grid(geom, radial_points=30, angular_order=6)
    chi = evaluate_basis(water_scf_df.basis, grid.points)
    n = density_on_grid(chi, water_scf_df.density)
    assert n.min() > -1e-10
