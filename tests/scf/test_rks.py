import numpy as np
import pytest

from repro.scf import RHF
from repro.scf.rks import RKS


@pytest.fixture(scope="module")
def water_rks(water):
    res = RKS(water, radial_points=60).run()
    assert res.converged
    return res


def test_lda_water_energy(water_rks):
    # SVWN/STO-3G water sits near -74.73 Eh (grid-converged codes)
    assert water_rks.energy == pytest.approx(-74.73, abs=3e-2)


def test_lda_below_hf_exchange_correlation(water, water_rks, water_scf_df):
    """LDA total energy differs from HF by the XC treatment: it should
    be higher (less negative) for water in a minimal basis."""
    assert water_rks.energy > water_scf_df.energy


def test_rks_density_trace(water_rks):
    n = np.sum(water_rks.density * water_rks.overlap)
    assert n == pytest.approx(10.0, abs=1e-8)


def test_rks_extras_populated(water_rks):
    xc = water_rks.extras["xc"]
    assert xc["name"] == "lda"
    assert xc["rho"].ndim == 1
    assert xc["fxc"].shape == xc["rho"].shape
    assert xc["exc"] < 0


def test_cpks_matches_finite_field(water):
    from repro.dfpt.cphf import CPHF

    res = RKS(water, radial_points=60).run()
    alpha = CPHF(res).run().alpha
    f = 2e-3
    for x in (0, 2):
        fv = np.zeros(3)
        fv[x] = f
        ep = RKS(water, radial_points=60, field_vector=fv).run().energy
        em = RKS(water, radial_points=60, field_vector=-fv).run().energy
        a_ff = -(ep - 2 * res.energy + em) / f ** 2
        assert alpha[x, x] == pytest.approx(a_ff, rel=1e-3)


def test_rks_vs_rhf_polarizability_same_scale(water):
    """CPKS and CPHF polarizabilities must agree in scale (the LDA-
    vs-HF spread in a minimal basis is tens of percent, not factors);
    a kernel sign error would flip or blow up the response."""
    from repro.dfpt.cphf import CPHF

    a_ks = CPHF(RKS(water, radial_points=60).run()).run().alpha
    a_hf = CPHF(RHF(water, eri_mode="df").run()).run().alpha
    ratio = np.trace(a_ks) / np.trace(a_hf)
    assert 0.7 < ratio < 1.4
    assert np.all(np.linalg.eigvalsh(a_ks) > 0)
