"""Density fitting: tensors, Fock builds, accuracy."""

import numpy as np
import pytest

from repro.basis import build_basis
from repro.geometry import water_molecule
from repro.integrals.engine import IntegralEngine
from repro.scf.df import DensityFitting, _even_tempered, auto_aux_basis


@pytest.fixture(scope="module")
def water_df():
    w = water_molecule()
    basis = build_basis(w)
    eng = IntegralEngine(basis, w.numbers.astype(float), w.coords)
    aux = auto_aux_basis(w, basis)
    return w, basis, eng, DensityFitting(eng, aux)


def test_even_tempered_covers_range():
    exps = _even_tempered(0.5, 50.0, 3.0)
    assert exps[0] == pytest.approx(0.5)
    assert exps[-1] == pytest.approx(50.0)
    ratios = [exps[i + 1] / exps[i] for i in range(len(exps) - 1)]
    assert all(r == pytest.approx(ratios[0]) for r in ratios)


def test_even_tempered_single_point():
    exps = _even_tempered(2.0, 2.0, 3.0)
    assert len(exps) == 1
    assert exps[0] == pytest.approx(2.0)


def test_aux_basis_has_all_atoms(water_df):
    w, basis, _eng, df = water_df
    atoms = set(df.aux.function_atom_map())
    assert atoms == {0, 1, 2}


def test_metric_positive_definite(water_df):
    *_ , df = water_df
    evals = np.linalg.eigvalsh(df.v2c)
    assert evals.min() > 0


def test_j3c_symmetry(water_df):
    *_, df = water_df
    assert np.allclose(df.j3c, df.j3c.transpose(1, 0, 2), atol=1e-11)


def test_df_eri_close_to_exact(water_df):
    _w, _basis, eng, df = water_df
    exact = eng.eri()
    approx = df.eri_approx()
    # elementwise DF error on water stays below ~2 mHa
    assert np.abs(exact - approx).max() < 3e-3


def test_df_eri_positive_diagonal(water_df):
    *_, df = water_df
    approx = df.eri_approx()
    nbf = approx.shape[0]
    for i in range(nbf):
        for j in range(nbf):
            assert approx[i, j, i, j] >= -1e-12  # Cauchy-Schwarz diagonal


def test_coulomb_exchange_consistency(water_df):
    """exchange(c_occ) must equal exchange_density(2 C C^T)."""
    _w, basis, _eng, df = water_df
    rng = np.random.default_rng(0)
    c_occ = rng.normal(size=(basis.nbf, 3))
    p = 2.0 * c_occ @ c_occ.T
    k1 = df.exchange(c_occ)
    k2 = df.exchange_density(p)
    assert np.allclose(k1, k2, atol=1e-10)


def test_coulomb_matches_eri_contraction(water_df):
    _w, basis, _eng, df = water_df
    rng = np.random.default_rng(1)
    p = rng.normal(size=(basis.nbf, basis.nbf))
    p = p + p.T
    j_df = df.coulomb(p)
    j_ref = np.einsum("abcd,cd->ab", df.eri_approx(), p)
    assert np.allclose(j_df, j_ref, atol=1e-10)
