"""Quickstart: one water molecule end to end (~30 s on one core).

Covers the core API surface:
  geometry -> SCF -> polarizability (CPHF) -> geometry optimization ->
  Hessian + Raman tensor (the DFPT displacement loop) -> normal modes ->
  a broadened Raman spectrum, solved both dense and via Lanczos+GAGQ.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import RHF, fragment_response, water_molecule
from repro.dfpt.cphf import CPHF
from repro.scf.optimize import optimize_geometry
from repro.spectra import raman_spectrum_dense, raman_spectrum_lanczos
from repro.spectra.modes import normal_modes_projected


def main() -> None:
    water = water_molecule()
    print(f"water: {water.natoms} atoms, {water.nelectrons} electrons")

    # --- SCF ---------------------------------------------------------------
    scf = RHF(water, eri_mode="exact").run()
    print(f"RHF/STO-3G energy: {scf.energy:.6f} Eh "
          f"({scf.niter} iterations; literature -74.9629)")

    # --- response: polarizability -------------------------------------------
    alpha = CPHF(scf).run().alpha
    print(f"polarizability diagonal (a0^3): {np.round(np.diag(alpha), 3)}")

    # --- relax, then the DFPT displacement loop -----------------------------
    opt = optimize_geometry(water, eri_mode="df")
    print(f"optimized: E = {opt.energy:.6f} Eh, |grad| = {opt.grad_max:.1e}")
    response = fragment_response(opt.geometry, eri_mode="df")

    modes = normal_modes_projected(
        response.hessian, opt.geometry.masses, opt.geometry.coords
    )
    vib = modes.frequencies_cm1[np.abs(modes.frequencies_cm1) > 50]
    print(f"harmonic frequencies (cm^-1): {np.round(vib, 1)} "
          "(literature STO-3G RHF: 2170, 4140, 4391)")

    # --- Raman spectrum: dense baseline vs the paper's solver ---------------
    omega = np.linspace(500, 5000, 800)
    dense = raman_spectrum_dense(
        response.hessian, response.dalpha_dr, opt.geometry.masses,
        omega, sigma_cm1=20.0,
    )
    lanczos = raman_spectrum_lanczos(
        response.hessian, response.dalpha_dr, opt.geometry.masses,
        omega, sigma_cm1=20.0, k=12,
    )
    err = np.abs(dense.intensity - lanczos.intensity).max() / dense.intensity.max()
    print(f"Lanczos+GAGQ vs dense solver: max rel deviation {err:.2e}")
    print("stick spectrum (cm^-1 -> activity):")
    for f, a in zip(dense.frequencies_cm1, dense.activities):
        print(f"  {f:8.1f}  {a:10.3f}")


if __name__ == "__main__":
    main()
