"""Gas-phase peptide Raman spectrum (paper Fig. 12a, scaled down).

Builds a polypeptide, optimizes it, runs the QF decomposition (for
chains of >= 3 residues this exercises the full MFCC machinery:
capped fragments, conjugate caps, generalized concaps), computes every
piece's Hessian + Raman tensor and assembles the spectrum.

Run:  python examples/peptide_raman.py [RES1 RES2 ...]
      default: GLY             (~5 min on one core)
      e.g.:    GLY PHE GLY     (~1-2 h — the Phe ring adds the
                                1030 cm^-1 band the paper highlights)
"""

import sys
import time

import numpy as np

from repro import QFRamanPipeline, build_polypeptide
from repro.analysis import PROTEIN_BANDS, band_assignment, find_peaks
from repro.analysis.reference import RHF_STO3G_FREQUENCY_SCALE
from repro.scf.optimize import optimize_geometry


def main(sequence: list[str]) -> None:
    geom, residues = build_polypeptide(sequence)
    print(f"{'-'.join(sequence)}: {geom.natoms} atoms")
    t0 = time.time()
    opt = optimize_geometry(geom, eri_mode="df")
    print(f"optimized in {time.time() - t0:.0f}s "
          f"(E = {opt.energy:.4f} Eh, |grad| = {opt.grad_max:.1e})")

    pipe = QFRamanPipeline(protein=opt.geometry, residues=residues,
                           verbose=True)
    omega = np.linspace(200, 5200, 1200)
    t0 = time.time()
    result = pipe.run(omega_cm1=omega, sigma_cm1=5.0, solver="dense")
    print(f"responses + assembly in {time.time() - t0:.0f}s "
          f"({len(result.decomposition.pieces)} pieces)")

    spectrum = result.spectrum.normalized()
    scale = RHF_STO3G_FREQUENCY_SCALE
    print(f"\npeaks (scaled by {scale}):",
          [round(p.position_cm1 * scale)
           for p in find_peaks(spectrum.omega_cm1, spectrum.intensity)])
    assignment = band_assignment(spectrum.omega_cm1, spectrum.intensity,
                                 PROTEIN_BANDS, frequency_scale=scale)
    print("named protein bands (paper Fig. 12a):")
    for name, info in assignment.items():
        found = info["found_cm1"]
        print(f"  {name:<20} expected {info['expected_cm1']:6.0f}  "
              + (f"found {found:6.0f} ({info['error_cm1']:+4.0f})"
                 if found else "not found"))


if __name__ == "__main__":
    main(sys.argv[1:] or ["GLY"])
