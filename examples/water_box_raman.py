"""Raman spectrum of liquid-like water (paper Fig. 12b, scaled down).

Builds an N-molecule water box at liquid density, decomposes it QF-style
(one fragment per molecule + two-body pieces within λ = 4 Å), runs the
DFPT displacement loop for every *unique* piece (identical monomers are
reused by rigid rotation), assembles the global Hessian/Raman tensor
per Eq. (1), and solves the spectrum with the Lanczos+GAGQ solver.

Run:  python examples/water_box_raman.py [n_waters] [workers]
      (default 4 waters; ~4 min on one core — two-body pieces dominate.
      Pass workers > 1 to run fragments in parallel processes, e.g.
      ``python examples/water_box_raman.py 4 4``.)
"""

import sys
import time

import numpy as np

from repro import QFRamanPipeline, water_box
from repro.analysis import WATER_BANDS, band_assignment
from repro.analysis.reference import RHF_STO3G_FREQUENCY_SCALE


def main(n_waters: int = 4, workers: int | None = None) -> None:
    waters = water_box(n_waters, seed=3)
    pipe = QFRamanPipeline(
        waters=waters, relax_waters=True, verbose=True,
        executor="process" if workers and workers > 1 else "serial",
        max_workers=workers,
    )

    omega = np.linspace(200, 5200, 1000)
    t0 = time.time()
    result = pipe.run(omega_cm1=omega, sigma_cm1=20.0, solver="lanczos",
                      lanczos_k=80)
    print(f"\npipeline finished in {time.time() - t0:.0f}s")
    print(f"pieces: {result.decomposition.counts} "
          f"(unique QM runs: {result.unique_pieces})")
    if result.throughput is not None:
        print(result.throughput.summary())

    spectrum = result.spectrum.normalized()
    assignment = band_assignment(
        spectrum.omega_cm1, spectrum.intensity, WATER_BANDS,
        frequency_scale=RHF_STO3G_FREQUENCY_SCALE,
    )
    print("\nband assignment (frequencies scaled by "
          f"{RHF_STO3G_FREQUENCY_SCALE}):")
    for name, info in assignment.items():
        found = info["found_cm1"]
        print(f"  {name:<12} expected {info['expected_cm1']:6.0f} cm^-1  "
              + (f"found {found:6.0f}" if found else "not found"))

    # simple terminal plot
    print("\nspectrum (scaled axis):")
    scaled = spectrum.omega_cm1 * RHF_STO3G_FREQUENCY_SCALE
    for lo in range(400, 4400, 200):
        sel = (scaled >= lo) & (scaled < lo + 200)
        bar = "#" * int(40 * spectrum.intensity[sel].max())
        print(f"  {lo:>5}-{lo + 200:<5} |{bar}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4,
         int(sys.argv[2]) if len(sys.argv) > 2 else None)
