"""Solvated peptide end to end (paper Fig. 12c, scaled down).

The complete QF-RAMAN workflow on a protein-plus-water system:

1. build + optimize a peptide,
2. solvate it (waters at liquid density, clash-filtered),
3. decompose: capped peptide fragments + water fragments + the
   residue-water and water-water two-body pieces within λ = 4 Å,
4. per-piece DFPT responses (cached to disk — re-running resumes),
5. assemble Eq. (1), solve the spectrum both dense and Lanczos+GAGQ,
6. compare against the named water/protein bands,
7. replay the same decomposition on the simulated ORISE to estimate
   what the run would cost at the paper's scale.

Run:  python examples/solvated_peptide.py   (~15-25 min on one core;
      instant on re-runs thanks to the response cache)
"""

import time

import numpy as np

from repro import QFRamanPipeline, build_polypeptide
from repro.analysis import PROTEIN_BANDS, WATER_BANDS, band_assignment
from repro.analysis.reference import RHF_STO3G_FREQUENCY_SCALE
from repro.geometry import solvate
from repro.hpc import ORISE, simulate_qf_run
from repro.hpc.costmodel import paper_calibrated_cost_model
from repro.scf.optimize import optimize_geometry


def main() -> None:
    geom, residues = build_polypeptide(["GLY"])
    opt = optimize_geometry(geom, eri_mode="df")
    waters = solvate(opt.geometry, margin=3.0, clash_distance=2.4, seed=1)[:3]
    print(f"peptide ({opt.geometry.natoms} atoms) + {len(waters)} waters")

    pipe = QFRamanPipeline(
        protein=opt.geometry, residues=residues, waters=waters,
        relax_waters=True, cache_dir=".qf_cache", verbose=True,
    )
    omega = np.linspace(200, 5200, 1000)
    t0 = time.time()
    result = pipe.run(omega_cm1=omega, sigma_cm1=20.0, solver="dense")
    print(f"\nresponses + spectrum in {time.time() - t0:.0f}s; "
          f"pieces: {result.decomposition.counts} "
          f"(unique QM: {result.unique_pieces})")

    sp = result.spectrum.normalized()
    scale = RHF_STO3G_FREQUENCY_SCALE
    print("\nband assignment (water + protein bands):")
    for bands in (WATER_BANDS, PROTEIN_BANDS):
        for name, info in band_assignment(sp.omega_cm1, sp.intensity, bands,
                                          frequency_scale=scale).items():
            found = info["found_cm1"]
            print(f"  {name:<20} expect {info['expected_cm1']:6.0f}  "
                  + (f"found {found:6.0f}" if found else "not found"))

    # what would this decomposition cost on ORISE?
    sizes = pipe.workload_sizes(result.decomposition)
    big = np.tile(sizes, 4000)   # pretend the paper-scale piece count
    cm = paper_calibrated_cost_model("protein", "ORISE")
    rep = simulate_qf_run(ORISE, 750, big, cm, seed=0)
    print(f"\nsimulated ORISE run of {big.size:,} such pieces on 750 nodes: "
          f"{rep.makespan / 60:.1f} virtual minutes "
          f"({rep.throughput:.0f} pieces/s)")


if __name__ == "__main__":
    main()
