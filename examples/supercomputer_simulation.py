"""Simulated production run on ORISE and the new Sunway (~1 min).

Builds the full 3,180-residue spike stand-in, decomposes it into the
QF piece list (the same statistics as the paper's §VI-A), then replays
the paper's scaling study: the master/leader/worker scheduler with the
size-sensitive balancer at increasing node counts, load-balance
variation (Fig. 8), strong scaling (Fig. 10), and the projected FP64
rates of Table I.

Run:  python examples/supercomputer_simulation.py
"""

import numpy as np

from repro.fragment.bookkeeping import (
    spike_paper_reference,
    system_statistics,
    synthetic_fragment_size_distribution,
)
from repro.geometry import spike_like_protein
from repro.hpc import ORISE, SUNWAY, simulate_qf_run
from repro.hpc.costmodel import calibrate_to_throughput
from repro.hpc.offload import OffloadModel


def main() -> None:
    # --- the workload: full-residue-count spike stand-in ---------------------
    print("building the 3,180-residue spike stand-in...")
    protein, residues = spike_like_protein(3180, seed=0)
    # the spike is a homotrimer: 3 chains of 1,060 residues
    stats = system_statistics(protein, residues,
                              n_waters=(101_299_008 - 49_008) // 3,
                              n_chains=3)
    ref = spike_paper_reference()
    print(f"  atoms in protein model: {protein.natoms:,} (paper: 49,008)")
    print(f"  fragments {stats.n_fragments:,} / caps {stats.n_conjugate_caps:,}"
          f" / generalized concaps {stats.n_generalized_concaps:,}"
          f" (paper: {ref['generalized_concaps']:,})")
    print(f"  water-water pairs (closed form): "
          f"{stats.n_water_water_pairs:,.0f} (paper {ref['water_water_pairs']:,})")

    # --- strong scaling on ORISE (Fig. 10) ----------------------------------
    rng = np.random.default_rng(3)
    frag = np.clip(synthetic_fragment_size_distribution(3180, seed=1), 9, 35)
    caps = np.clip((frag * 0.55).astype(int), 9, 28)
    gcs = rng.integers(12, 30, size=stats.n_generalized_concaps)
    sizes = np.concatenate([frag, caps, gcs])
    cm = calibrate_to_throughput(sizes, 93.2, 750, 31)

    print("\nORISE strong scaling (protein; paper eff: 96.7/95.4/91.1):")
    base = simulate_qf_run(ORISE, 750, sizes, cm, seed=0, job_noise=0.02)
    print(f"  750 nodes: {base.throughput:6.1f} frag/s "
          f"var ({base.time_variation()[0]:+.1f}, {base.time_variation()[1]:+.1f})%")
    for n in (1500, 3000, 6000):
        rep = simulate_qf_run(ORISE, n, sizes, cm, seed=0, job_noise=0.02)
        eff = 100 * base.makespan * 750 / (rep.makespan * n)
        lo, hi = rep.time_variation()
        print(f"  {n:>4} nodes: eff {eff:5.1f}%  var ({lo:+.1f}, {hi:+.1f})%")

    # --- Table I: projected accelerator rates --------------------------------
    print("\nprojected per-accelerator FP64 rates (Table I):")
    for machine in (ORISE, SUNWAY):
        model = OffloadModel.for_machine(machine)
        rates = [model.achieved_tflops(((int(2.9 * n) + 31) // 32) * 32,
                                       ((int(2.9 * n) + 31) // 32) * 32,
                                       150 * n, 64)
                 for n in (9, 35, 68)]
        print(f"  {machine.name:<7}: {rates[0]:.2f} / {rates[1]:.2f} / "
              f"{rates[2]:.2f} TFLOPS at 9/35/68 atoms")


if __name__ == "__main__":
    main()
