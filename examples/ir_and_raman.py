"""IR + Raman together (extension; ~1 min).

The displacement loop produces the dipole derivative dμ/dR alongside
dα/dR at negligible extra cost, so both spectra come from one pass —
with depolarization ratios as the third observable. Water's three
modes illustrate the complementarity: the bend is the strongest IR
band, the symmetric stretch dominates the Raman spectrum.

Run:  python examples/ir_and_raman.py
"""

import numpy as np

from repro import fragment_response, water_molecule
from repro.scf.optimize import optimize_geometry
from repro.spectra.ir import ir_spectrum_dense
from repro.spectra.modes import normal_modes_projected
from repro.spectra.raman import (
    depolarization_ratios,
    mass_weighted_dalpha,
    raman_spectrum_dense,
)


def main() -> None:
    opt = optimize_geometry(water_molecule(), eri_mode="df")
    resp = fragment_response(opt.geometry, eri_mode="df",
                             compute_raman=True, compute_ir=True)
    masses = opt.geometry.masses
    omega = np.linspace(500, 5000, 900)

    raman = raman_spectrum_dense(resp.hessian, resp.dalpha_dr, masses, omega,
                                 sigma_cm1=20.0)
    ir = ir_spectrum_dense(resp.hessian, resp.dmu_dr, masses, omega,
                           sigma_cm1=20.0)

    # per-mode table with depolarization ratios
    modes = normal_modes_projected(resp.hessian, masses, opt.geometry.coords)
    d_xi = mass_weighted_dalpha(resp.dalpha_dr, masses)
    dq = np.einsum("cij,cp->pij", d_xi, modes.eigenvectors)
    rho = depolarization_ratios(dq)

    print("mode   freq/cm^-1   Raman act.   IR int.   depol. ratio")
    vib = modes.vibrational()
    r_act = dict(zip(np.round(raman.frequencies_cm1, 1), raman.activities))
    i_act = dict(zip(np.round(ir.frequencies_cm1, 1), ir.activities))
    for p in vib:
        f = round(float(modes.frequencies_cm1[p]), 1)
        print(f"{p:>4}   {f:>9.1f}   {r_act.get(f, 0.0):>9.3f}"
              f"   {i_act.get(f, 0.0):>8.4f}   {rho[p]:>7.3f}")

    print("\nstrongest IR band:   "
          f"{ir.frequencies_cm1[np.argmax(ir.activities)]:.0f} cm^-1 (bend)")
    print("strongest Raman band: "
          f"{raman.frequencies_cm1[np.argmax(raman.activities)]:.0f} cm^-1 "
          "(symmetric stretch)")


if __name__ == "__main__":
    main()
