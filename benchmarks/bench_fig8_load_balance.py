"""Fig. 8 — execution-time variation across computing nodes.

Paper values (per-node execution time relative to the mean):
  ORISE protein:     ±1.5% @750 → -2.1/+3.2 @1500 → -4.3/+6.2 @3000
                     → -9.2/+12.7 @6000
  ORISE water dimer: larger variation than protein (prefetch disabled
                     "for the purpose of showcasing its effects")
  Sunway mixed:      ±0.4% @12000, worst -2.3/+3.2 up to 96000

The variation emerges from fragment-size quantization at high node
counts — exactly the paper's narrative that load balance becomes the
scaling bottleneck under divide-and-conquer.
"""

import numpy as np

from repro.hpc import ORISE, SUNWAY, simulate_qf_run
from repro.hpc.costmodel import paper_calibrated_cost_model

from conftest import save_result

PAPER_ORISE_PROTEIN = {
    750: (-1.0, 1.5), 1500: (-2.1, 3.2), 3000: (-4.3, 6.2), 6000: (-9.2, 12.7)
}


def test_fig8_orise_protein_variation(
    benchmark, spike_strong_scaling_workload, orise_protein_cost
):
    sizes = spike_strong_scaling_workload
    cm = orise_protein_cost

    def run():
        out = {}
        for n in (750, 1500, 3000, 6000):
            rep = simulate_qf_run(ORISE, n, sizes, cm, seed=0, job_noise=0.02)
            out[n] = rep.time_variation()
        return out

    var = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    print("\nFig8 ORISE protein time variation (min%, max%):")
    for n, (lo, hi) in var.items():
        p = PAPER_ORISE_PROTEIN[n]
        rows.append({"nodes": n, "measured": [lo, hi], "paper": list(p)})
        print(f"  {n:>5}: measured ({lo:+.1f}, {hi:+.1f})  paper ({p[0]:+.1f}, {p[1]:+.1f})")
    save_result("fig8_orise_protein", {"rows": rows})
    spans = [v[1] - v[0] for v in var.values()]
    # variation grows with node count (quantization), paper's key trend
    assert spans[-1] > spans[0]
    assert abs(var[750][1]) < 5.0


def test_fig8_water_dimer_prefetch_ablation(benchmark):
    """Uniform 6-atom fragments; the paper disables prefetch here to
    showcase its effect — we run both and report the difference."""
    sizes = np.full(150_000, 6)
    cm = paper_calibrated_cost_model("water_dimer", "ORISE")

    def run():
        out = {}
        for prefetch in (True, False):
            rep = simulate_qf_run(ORISE, 1500, sizes, cm, seed=1,
                                  prefetch=prefetch)
            out[prefetch] = (rep.time_variation(), rep.makespan)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFig8 water dimer (uniform fragments), prefetch ablation:")
    for prefetch, (var, mk) in res.items():
        print(f"  prefetch={prefetch}: variation ({var[0]:+.2f}, {var[1]:+.2f})%"
              f" makespan {mk:.1f}s")
    save_result("fig8_water_prefetch", {
        str(k): {"variation": list(v[0]), "makespan": v[1]}
        for k, v in res.items()
    })
    assert res[True][1] <= res[False][1] * 1.001


def test_fig8_sunway_mixed_variation(benchmark):
    rng = np.random.default_rng(5)
    protein = rng.integers(9, 36, size=8000)
    waters = np.full(250_000, 6)
    sizes = np.concatenate([protein, waters])
    workers = SUNWAY.workers_per_leader
    cm_p = paper_calibrated_cost_model("protein", "Sunway")
    cm_w = paper_calibrated_cost_model("water_dimer", "Sunway")
    costs = np.concatenate(
        [cm_p.leader_time(protein, workers), cm_w.leader_time(waters, workers)]
    )

    def run():
        out = {}
        for n in (750, 1500, 3000, 6000):  # 1/16 of the paper's node counts
            rep = simulate_qf_run(SUNWAY, n, sizes, leader_costs=costs, seed=2)
            out[n * 16] = rep.time_variation()
        return out

    var = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFig8 Sunway mixed variation (1/16 scale; paper ±0.4% @12k,"
          " worst -2.3/+3.2):")
    for n, (lo, hi) in var.items():
        print(f"  {n:>6}: measured ({lo:+.2f}, {hi:+.2f})")
    save_result("fig8_sunway_mixed", {str(k): list(v) for k, v in var.items()})
    # co-located small fragments keep the balance tight at the base count
    assert var[12000][1] - var[12000][0] < 8.0
