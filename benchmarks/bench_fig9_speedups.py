"""Fig. 9 — step-by-step speedups: symmetry-aware strength reduction,
then elastic workload offloading, across fragment sizes.

Paper values:
  ORISE : sym 3.0-4.4x (avg 3.7), +offload 6.3-11.6x (avg 8.2)
  Sunway: sym up to 6.0x (avg 3.7), +offload up to 16.2x (avg 11.2)

Two layers here are *measured*, not asserted: the FLOP reductions of
the two Fig. 6 kernels come from running the actual strength-reduced
implementations (3 GEMM → 1, 2 GEMM + 2 GEMV → 1 + 1) and verifying
bit-level equality; the accelerator layer uses the calibrated offload
model (DESIGN.md substitutions — we have no GPU).
"""

import numpy as np

from repro.hpc.machine import ORISE, SUNWAY
from repro.hpc.offload import OffloadModel, dfpt_cycle_speedups
from repro.kernels.strength_reduction import (
    h1_integration_naive,
    h1_integration_symmetric,
    rho1_gradient_naive,
    rho1_gradient_symmetric,
)
from repro.utils.flops import FlopCounter

from conftest import save_result

PAPER = {
    "ORISE": {"sym": (3.0, 4.4, 3.7), "off": (6.3, 11.6, 8.2)},
    "Sunway": {"sym": (3.0, 6.0, 3.7), "off": (6.3, 16.2, 11.2)},
}
FRAGMENT_SIZES = (9, 20, 35, 50, 68)


def _measured_sym_factors(nbf: int) -> dict[str, float]:
    """Run both kernel variants on real-shaped data; return the
    *measured* FLOP-reduction factors (and check equality)."""
    rng = np.random.default_rng(0)
    npts = 400
    chi = rng.normal(size=(npts, nbf))
    dchi = rng.normal(size=(npts, nbf))
    p1 = rng.normal(size=(nbf, nbf))
    p1 = p1 + p1.T
    f_naive, f_sym = FlopCounter(), FlopCounter()
    a = h1_integration_naive(chi, dchi, f_naive)
    b = h1_integration_symmetric(chi, dchi, f_sym)
    assert np.allclose(a, b, atol=1e-9)
    h1_factor = f_naive.total("h1") / f_sym.total("h1")
    f_naive2, f_sym2 = FlopCounter(), FlopCounter()
    a = rho1_gradient_naive(chi, dchi, p1, f_naive2)
    b = rho1_gradient_symmetric(chi, dchi, p1, f_sym2)
    assert np.allclose(a, b, atol=1e-9)
    rho_factor = f_naive2.total("rho1_grad") / f_sym2.total("rho1_grad")
    return {"h1": h1_factor, "n1r": rho_factor}


def test_fig9_speedups(benchmark):
    def run():
        results = {}
        for machine in (ORISE, SUNWAY):
            model = OffloadModel.for_machine(machine)
            rows = []
            for natoms in FRAGMENT_SIZES:
                nbf = int(natoms * 2.9)
                dim = ((nbf + 31) // 32) * 32
                sym = _measured_sym_factors(nbf)
                flops = {
                    "n1r": natoms * nbf * nbf * 1000,
                    "h1": 3 * natoms * nbf * nbf * 1000,
                }
                frac = min(0.88, 0.88 - 1.6 / natoms + 1.6 / 68)
                r = dfpt_cycle_speedups(
                    model, flops, gemm_dim=dim, n_gemms=60 * natoms,
                    sym_reduction=sym, gemm_time_fraction=frac,
                    grid_batch=150 * natoms,
                )
                rows.append(
                    {"natoms": natoms, "sym": r["sym"],
                     "sym_offload": r["sym+offload"]}
                )
            results[machine.name] = rows
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, rows in results.items():
        p = PAPER[name]
        syms = [r["sym"] for r in rows]
        offs = [r["sym_offload"] for r in rows]
        print(f"\nFig9 {name} step-by-step speedups:")
        for r in rows:
            print(f"  {r['natoms']:>3} atoms: sym {r['sym']:.1f}x"
                  f"  +offload {r['sym_offload']:.1f}x")
        print(f"  measured sym range {min(syms):.1f}-{max(syms):.1f}"
              f" (paper {p['sym'][0]}-{p['sym'][1]}, avg {p['sym'][2]})")
        print(f"  measured +off range {min(offs):.1f}-{max(offs):.1f}"
              f" (paper {p['off'][0]}-{p['off'][1]}, avg {p['off'][2]})")
        # qualitative reproduction assertions
        assert min(syms) > 2.0
        assert min(offs) > 1.5 * max(syms) * 0.8
        assert offs[-1] > offs[0]  # larger fragments benefit more
    save_result("fig9_speedups", results)
