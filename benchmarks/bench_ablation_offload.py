"""Ablation — elastic batching parameters (§V-C, §VII-A.3).

The paper packs >=64 GEMMs per workload with a stride of 32. This
bench sweeps both knobs on the *real* batched executor (wall time of
stacked numpy matmuls — the same pack-for-throughput effect the
accelerators rely on) and on the offload model (padding overhead vs
batch uniformity).
"""

import time

import numpy as np

from repro.kernels.batched import BatchedGemmExecutor

from conftest import save_result


def _workload(rng, n=512):
    """Scattered small GEMMs with the paper's size spread."""
    mats = []
    for _ in range(n):
        m = int(rng.integers(20, 70))
        k = int(rng.integers(20, 70))
        mats.append((rng.normal(size=(m, k)), rng.normal(size=(k, 24))))
    return mats


def test_offload_batching_sweep(benchmark):
    rng = np.random.default_rng(0)
    mats = _workload(rng)

    def run():
        out = {}
        for stride in (8, 32, 64):
            for min_batch in (4, 64, 10_000):
                ex = BatchedGemmExecutor(stride=stride, min_batch=min_batch)
                for a, b in mats:
                    ex.submit(a, b)
                t0 = time.perf_counter()
                ex.flush()
                dt = time.perf_counter() - t0
                out[(stride, min_batch)] = {
                    "seconds": dt,
                    "batches": ex.batches_executed,
                    "singles": ex.singles_executed,
                    "padding": ex.padding_overhead(),
                }
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nelastic batching sweep (512 scattered GEMMs):")
    for (stride, mb), r in sorted(res.items()):
        print(f"  stride={stride:<3} min_batch={mb:<6}: {r['seconds'] * 1e3:7.1f} ms"
              f"  batches={r['batches']:<3} singles={r['singles']:<4}"
              f"  padding x{r['padding']:.2f}")
    save_result("ablation_offload", {
        f"{s}_{m}": r for (s, m), r in res.items()
    })
    # stride 32 groups far more calls than stride 8 (fewer shape classes)
    assert res[(32, 4)]["batches"] <= res[(8, 4)]["batches"]
    # padding grows with stride
    assert res[(64, 4)]["padding"] >= res[(32, 4)]["padding"] - 1e-9
    # never-batch mode runs every GEMM individually
    assert res[(32, 10_000)]["singles"] == 512
