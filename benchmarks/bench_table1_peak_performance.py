"""Table I — double-precision performance of the two dominant DFPT
kernels (response density n(1)(r) and response Hamiltonian H(1)).

Paper values (per accelerator / full system):
  ORISE : n(1) 1.11-3.93 TFLOPS → 85.27 PFLOPS (53.8% of peak)
          H(1) 0.95-3.27 TFLOPS → 71.56 PFLOPS (45.2%)
  Sunway: n(1) 2.10-4.82 TFLOPS → 311.17 PFLOPS (23.2%)
          H(1) 2.44-4.87 TFLOPS → 399.90 PFLOPS (29.5%)

Measurement mechanism mirrors the paper ("timer and FLOP count"):
kernel FLOPs are counted exactly by running the instrumented
four-phase worker cycle on real fragments; per-accelerator rates come
from the calibrated offload model (no GPU available — DESIGN.md);
full-system numbers are rate x accelerator count weighted over the
spike fragment-size distribution.
"""

import numpy as np

from repro.fragment.bookkeeping import synthetic_fragment_size_distribution
from repro.geometry import water_dimer, water_molecule
from repro.hpc.machine import ORISE, SUNWAY
from repro.hpc.offload import OffloadModel
from repro.kernels.worker import run_dfpt_cycle

from conftest import save_result

PAPER = {
    ("ORISE", "n1r"): (1.11, 3.93, 85.27, 53.8),
    ("ORISE", "h1"): (0.95, 3.27, 71.56, 45.2),
    ("Sunway", "n1r"): (2.10, 4.82, 311.17, 23.2),
    ("Sunway", "h1"): (2.44, 4.87, 399.90, 29.5),
}


def test_table1_kernel_flops_measured(benchmark):
    """Count the real per-cycle FLOPs of the two kernels on actual
    molecules (this also exercises the grid + Poisson phases)."""

    def run():
        out = {}
        for name, geom in (("water", water_molecule()), ("dimer", water_dimer())):
            cyc = run_dfpt_cycle(geom, uniform_n=32, radial_points=24)
            out[name] = {"flops": cyc.flops, "seconds": cyc.seconds,
                         "nbf": cyc.nbf}
        return out

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nTable1 measured kernel FLOPs per DFPT cycle (host):")
    for name, c in cycles.items():
        print(f"  {name}: nbf={c['nbf']} " + "  ".join(
            f"{k}={v:.2e}" for k, v in c["flops"].items()))
    save_result("table1_kernel_flops", cycles)
    for c in cycles.values():
        assert c["flops"]["n1r"] > 0 and c["flops"]["h1"] > 0


def test_table1_projected_rates(benchmark):
    """Per-accelerator TFLOPS across the spike size range and the
    full-system PFLOPS projection."""
    sizes = synthetic_fragment_size_distribution(3180, seed=0)

    def run():
        results = {}
        for machine in (ORISE, SUNWAY):
            model = OffloadModel.for_machine(machine)
            for part, k_mult in (("n1r", 1.0), ("h1", 0.85)):
                rates = []
                for natoms in (9, 22, 35, 50, 68):
                    nbf = int(natoms * 2.9)
                    dim = ((nbf + 31) // 32) * 32
                    k = int(150 * natoms * k_mult)
                    rates.append(model.achieved_tflops(dim, dim, k, 64))
                # full system: size-distribution-weighted mean rate
                weights = np.histogram(sizes, bins=[0, 15, 28, 42, 58, 100])[0]
                weights = weights / weights.sum()
                mean_rate = float(np.dot(weights, rates))
                n_accel = machine.total_nodes * machine.accelerators_per_node
                pflops = mean_rate * n_accel / 1000.0
                pct = 100.0 * pflops / machine.peak_pflops(machine.total_nodes)
                results[(machine.name, part)] = {
                    "range": (min(rates), max(rates)),
                    "pflops": pflops,
                    "pct_peak": pct,
                }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nTable1 projected FP64 performance:")
    rows = []
    for (mach, part), r in results.items():
        p = PAPER[(mach, part)]
        lo, hi = r["range"]
        print(f"  {mach:<7} {part}: {lo:.2f}-{hi:.2f} TFLOPS/accel "
              f"(paper {p[0]}-{p[1]});  {r['pflops']:.1f} PFLOPS "
              f"{r['pct_peak']:.1f}% (paper {p[2]} / {p[3]}%)")
        rows.append({"machine": mach, "part": part, "lo": lo, "hi": hi,
                     "pflops": r["pflops"], "pct": r["pct_peak"],
                     "paper": list(p)})
        # the measured windows must overlap the paper's windows
        assert lo < p[1] and hi > p[0]
    save_result("table1_projected", {"rows": rows})
