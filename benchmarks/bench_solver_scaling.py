"""§V-E / Fig. 2 context — the Lanczos+GAGQ solver versus dense
diagonalization.

The paper's point: full diagonalization of the 3N x 3N mass-weighted
Hessian is infeasible beyond ~10^5 DoF, while the matrix-functional
route costs k sparse matvecs per spectrum component. We demonstrate on
block-sparse Hessians of growing size (the exact structure Eq. (1)
assembly produces) that (a) the Lanczos spectrum matches dense where
dense is possible, and (b) the solver reaches sizes where dense is
out of reach, with near-linear time in nnz.
"""

import time

import numpy as np
import scipy.sparse

from repro.constants import HESSIAN_TO_CM1
from repro.spectra.gagq import quadrature_nodes_weights
from repro.spectra.lanczos import lanczos
from repro.spectra.raman import gaussian_lineshape

from conftest import save_result


def _block_sparse_hessian(n_blocks: int, block_atoms: int = 6, seed: int = 0):
    """Assembled-style Hessian: positive semidefinite blocks on the
    diagonal with weak random couplings between neighbors."""
    rng = np.random.default_rng(seed)
    size = 3 * block_atoms
    blocks = []
    for _ in range(n_blocks):
        a = rng.normal(size=(size, size))
        # the small diagonal shift keeps the weak inter-block couplings
        # from driving eigenvalues negative: a physical Hessian at a
        # minimum is PSD, and the sqrt(lambda) frequency map is only
        # smooth (quadrature-friendly) away from lambda = 0
        blocks.append(a @ a.T * 0.01 + 0.004 * np.eye(size))
    h = scipy.sparse.block_diag(blocks, format="lil")
    n = h.shape[0]
    for b in range(n_blocks - 1):
        i0 = b * size
        c = rng.normal(size=(size, size)) * 0.0005
        h[i0: i0 + size, i0 + size: i0 + 2 * size] = c
        h[i0 + size: i0 + 2 * size, i0: i0 + size] = c.T
    return h.tocsr()


def test_solver_matches_dense_small(benchmark):
    h = _block_sparse_hessian(40)  # 720 DoF
    rng = np.random.default_rng(1)
    d = rng.normal(size=h.shape[0])
    # window covering the full vibrational span of this Hessian; the
    # quadrature concentrates nodes where the d-weighted spectral mass
    # lives, so a window excluding most of it would see only the tails
    omega = np.linspace(0, 3500, 400)

    def f_of(theta):
        freq = np.sqrt(np.clip(theta, 0, None)) * HESSIAN_TO_CM1
        return gaussian_lineshape(omega[None, :], freq[:, None], 25.0)

    def run():
        out = {}
        for k in (40, 80, 160):
            res = lanczos(h, d, k=k)
            theta, w = quadrature_nodes_weights(res)
            out[k] = np.tensordot(w, f_of(theta), axes=(0, 0))
        return out

    specs = benchmark.pedantic(run, rounds=1, iterations=1)
    hd = h.toarray()
    evals, vecs = np.linalg.eigh(hd)
    proj = (vecs.T @ d) ** 2
    exact = np.tensordot(proj, f_of(evals), axes=(0, 0))
    errs = {
        k: float(np.abs(s - exact).max() / exact.max())
        for k, s in specs.items()
    }
    print("\nsolver vs dense (720 DoF), rel err by Lanczos order:")
    for k, e in errs.items():
        print(f"  k={k:>4}: {e:.2e}")
    # error decreases with k and reaches broadening-level agreement
    assert errs[160] < errs[40]
    assert errs[160] < 0.05
    save_result("solver_accuracy", {"rel_err_by_k": errs})


def test_solver_scaling_beyond_dense(benchmark):
    """Time the solver at sizes where dense O(N^3) diagonalization
    would take hours; verify near-linear scaling in nnz."""
    sizes = [2_000, 8_000, 32_000]  # blocks -> 36k..576k DoF
    times = {}

    def run():
        for n_blocks in sizes:
            h = _block_sparse_hessian(n_blocks, seed=2)
            rng = np.random.default_rng(3)
            d = rng.normal(size=h.shape[0])
            t0 = time.perf_counter()
            res = lanczos(h, d, k=60)
            quadrature_nodes_weights(res)
            times[h.shape[0]] = time.perf_counter() - t0
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nLanczos+GAGQ solver scaling (k=60):")
    dofs = sorted(times)
    for n in dofs:
        print(f"  {n:>8,} DoF: {times[n]:.2f}s")
    est_dense = (dofs[-1] / 1000) ** 3 * 1.0  # ~1s per 1000^3 eigh
    print(f"  (dense eigh at {dofs[-1]:,} DoF would need ~{est_dense/3600:.0f}h)")
    save_result("solver_scaling", {str(k): v for k, v in times.items()})
    # near-linear: 16x the DoF costs < 60x the time (reorthogonalization
    # adds an O(k^2 n) term, still linear in n)
    assert times[dofs[-1]] / max(times[dofs[0]], 1e-9) < 60.0
