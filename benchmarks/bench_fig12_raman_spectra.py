"""Fig. 12 — Raman spectra: gas-phase protein, water, protein + water.

The paper computes the 49,008-atom spike in gas phase and the
101,299,008-atom solvated system with PBE/"light" in FHI-aims; our
substitution (DESIGN.md) runs the same QF pipeline end-to-end with
RHF/STO-3G on laptop-scale stand-ins:

  (a) gas-phase protein  → an optimized glycine peptide (the amide,
      CH2 and C-H chromophores the paper's band discussion names),
  (b) water              → a small water box (one unique monomer
      response reused by rigid rotation + explicit two-body pieces),
  (c) protein + water    → the peptide solvated by nearby waters.

Frequencies carry the standard minimal-basis HF scale factor 0.84;
the checks are the paper's own qualitative ones: named bands appear in
the right regions, water obscures the protein except the C-H stretch,
and the solvated spectrum is water-dominated.

Runtime note: this is the only benchmark doing real QM displacement
loops (~2,500 SCF+gradient+CPHF solves on one core); expect minutes.
"""

import os

import numpy as np

from repro.analysis import PROTEIN_BANDS, WATER_BANDS, band_assignment, find_peaks
from repro.analysis.compare import spectral_overlap
from repro.analysis.reference import RHF_STO3G_FREQUENCY_SCALE, reference_spectrum
from repro.geometry import build_polypeptide, water_box
from repro.pipeline import QFRamanPipeline
from repro.scf.optimize import optimize_geometry

from conftest import save_result

OMEGA = np.linspace(200.0, 5200.0, 1200)
SCALE = RHF_STO3G_FREQUENCY_SCALE
# responses cache here so repeated benchmark runs (and the final
# recorded run) reuse the QM displacement loops
CACHE_DIR = ".qf_cache_bench"

# execution backend is env-driven so the same benchmark can be timed
# serial or parallel: QF_EXECUTOR=process QF_WORKERS=4 pytest ...
EXECUTOR = os.environ.get("QF_EXECUTOR", "serial")
WORKERS = int(os.environ["QF_WORKERS"]) if "QF_WORKERS" in os.environ else None


def make_pipeline(**kwargs):
    return QFRamanPipeline(executor=EXECUTOR, max_workers=WORKERS, **kwargs)


def _band_report(tag, spectrum, bands):
    sp = spectrum.normalized()
    out = band_assignment(sp.omega_cm1, sp.intensity, bands,
                          frequency_scale=SCALE)
    print(f"\nFig12 {tag}: band assignment (scaled axis, x{SCALE}):")
    for name, info in out.items():
        found = info["found_cm1"]
        msg = f"{found:7.0f} (err {info['error_cm1']:+5.0f})" if found else "  not found"
        print(f"  {name:<20} expect {info['expected_cm1']:6.0f}  found {msg}")
    return out


def test_fig12a_gas_phase_peptide(benchmark):
    def run():
        geom, residues = build_polypeptide(["GLY"])
        opt = optimize_geometry(geom, eri_mode="df")
        assert opt.converged
        pipe = make_pipeline(protein=opt.geometry, residues=residues,
                             cache_dir=CACHE_DIR)
        return pipe.run(omega_cm1=OMEGA, sigma_cm1=5.0, solver="dense"), opt

    result, _opt = benchmark.pedantic(run, rounds=1, iterations=1)
    sp = result.spectrum.normalized()
    bands = _band_report("(a) gas-phase peptide", result.spectrum, PROTEIN_BANDS)
    ref = reference_spectrum(OMEGA * SCALE, PROTEIN_BANDS)
    overlap = spectral_overlap(sp.intensity, ref)
    print(f"  spectral overlap with reference bands: {overlap:.2f}")
    save_result("fig12a_peptide", {
        "omega": OMEGA, "intensity": sp.intensity,
        "bands": {k: v for k, v in bands.items()}, "overlap": overlap,
    })
    # glycine has no Phe ring: every *other* named chromophore must show
    for name in ("ch2_bending", "ch_stretch"):
        assert bands[name]["found_cm1"] is not None, name
    assert overlap > 0.15


def test_fig12b_water_box(benchmark):
    def run():
        waters = water_box(4, seed=3)
        pipe = make_pipeline(waters=waters, relax_waters=True,
                             cache_dir=CACHE_DIR)
        return pipe.run(omega_cm1=OMEGA, sigma_cm1=20.0, solver="lanczos",
                        lanczos_k=80)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    bands = _band_report("(b) water box", result.spectrum, WATER_BANDS)
    sp = result.spectrum.normalized()
    save_result("fig12b_water", {
        "omega": OMEGA, "intensity": sp.intensity,
        "bands": bands,
        "unique_pieces": result.unique_pieces,
        "total_pieces": len(result.decomposition.pieces),
    })
    assert bands["oh_bending"]["found_cm1"] is not None
    assert bands["oh_stretch"]["found_cm1"] is not None
    # rigid reuse: 4 identical monomers -> 1 unique monomer response
    assert result.unique_pieces < len(result.decomposition.pieces)


def test_fig12c_peptide_in_water(benchmark):
    def run():
        geom, residues = build_polypeptide(["GLY"])
        opt = optimize_geometry(geom, eri_mode="df")
        from repro.geometry import solvate

        waters = solvate(opt.geometry, margin=3.0, clash_distance=2.4, seed=1)
        assert len(waters) >= 3, "solvation shell unexpectedly empty"
        waters = waters[:3]
        pipe = make_pipeline(protein=opt.geometry, residues=residues,
                             waters=waters, relax_waters=True,
                             cache_dir=CACHE_DIR)
        return pipe.run(omega_cm1=OMEGA, sigma_cm1=20.0, solver="dense")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    sp = result.spectrum.normalized()
    print("\nFig12 (c) peptide + water: peaks:",
          [round(p.position_cm1) for p in find_peaks(sp.omega_cm1, sp.intensity)])
    save_result("fig12c_solvated", {
        "omega": OMEGA, "intensity": sp.intensity,
        "counts": result.decomposition.counts,
    })
    # the paper's observation: in solution the O-H stretch dominates but
    # the C-H stretch region remains discernible (scaled ~2900 sits
    # below the O-H band at ~3470)
    scaled = OMEGA * SCALE
    ch_region = sp.intensity[(scaled > 2800) & (scaled < 3050)]
    oh_region = sp.intensity[(scaled > 3300) & (scaled < 3600)]
    assert oh_region.max() > ch_region.max()  # water dominates
    assert ch_region.max() > 0.01 * sp.intensity.max()  # C-H discernible
    kinds = result.decomposition.counts
    assert kinds.get("water", 0) == 3
