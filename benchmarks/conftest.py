"""Shared benchmark helpers.

Every benchmark regenerates one table/figure of the paper and prints a
paper-vs-measured comparison; the rows are also dumped as JSON under
``benchmarks/output/`` so EXPERIMENTS.md can cite exact numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


def save_result(name: str, payload: dict) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)

    def default(o):
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        raise TypeError(type(o))

    (OUTPUT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, default=default)
    )


@pytest.fixture(scope="session")
def spike_strong_scaling_workload():
    """The ~18k-piece spike decomposition used by Fig. 8/10 (sizes 9-35
    as stated for the ORISE protein runs)."""
    from repro.fragment.bookkeeping import synthetic_fragment_size_distribution

    rng = np.random.default_rng(3)
    frag = np.clip(synthetic_fragment_size_distribution(3180, seed=1), 9, 35)
    caps = np.clip((frag * 0.55).astype(int), 9, 28)
    gcs = rng.integers(12, 30, size=11394)
    return np.concatenate([frag, caps, gcs])


@pytest.fixture(scope="session")
def orise_protein_cost(spike_strong_scaling_workload):
    """Cost model anchored so 750 ORISE nodes hit the paper's 93.2
    fragments/s on the spike workload."""
    from repro.hpc.costmodel import calibrate_to_throughput

    return calibrate_to_throughput(
        spike_strong_scaling_workload, 93.2, 750, 31
    )
