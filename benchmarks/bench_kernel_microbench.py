"""Integral kernel micro-benchmark: scalar vs batched dispatch by class.

For each angular-momentum shape class (ss, pp, dd, sp-mixed) this times

* pair-block construction (python loop vs vectorized class grouping),
* the one-electron matrix build (S + T + V) per shell pair,
* the ERI tensor build per shell-pair^2 (small classes only),

under ``QF_KERNELS=scalar`` and ``QF_KERNELS=batched``, asserting the
two modes agree bit-identically on every matrix they build. It also
records the per-task dispatch payload (pickled ``FragmentTask`` vs the
shm wire tuples of :mod:`repro.pipeline.shm`).

Times are best-of-``REPEATS`` wall clock, reported as ns per shell
pair so classes of different size are comparable.

Run standalone:  python benchmarks/bench_kernel_microbench.py
Under pytest:    pytest benchmarks/bench_kernel_microbench.py -m slow
Via make:        make bench-kernels
"""

import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))
from conftest import save_result  # noqa: E402

REPEATS = 3

#: shape classes: label -> (angular momenta laid on a center grid, grid
#: points, run the nbf^4 ERI build too?)
CLASSES = {
    "ss": ((0, 0), 6, True),
    "sp": ((0, 1), 5, True),
    "pp": ((1, 1), 4, True),
    "dd": ((2, 2), 3, False),
}

#: STO-3G-like contraction (K=3) so every pair class has 9 primitive pairs
EXPS = [3.425, 0.624, 0.169]
COEFS = [0.154, 0.535, 0.445]


def _class_system(ls, npts):
    """npts centers on a jittered line, one shell per (center, l)."""
    from repro.basis.gaussian import BasisSet, make_shell

    rng = np.random.default_rng(7)
    coords = np.stack([
        np.arange(npts) * 1.8,
        0.1 * rng.standard_normal(npts),
        0.1 * rng.standard_normal(npts),
    ], axis=1)
    shells = [
        make_shell(l, coords[i], EXPS, COEFS, atom_index=i)
        for i in range(npts) for l in ls
    ]
    return BasisSet(shells), np.ones(npts), coords


def _best_of(fn, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_class(label, ls, npts, with_eri) -> dict:
    from repro.integrals.batched import build_pair_blocks_batched
    from repro.integrals.engine import IntegralEngine, build_pair_blocks

    basis, charges, coords = _class_system(ls, npts)
    shells, offsets = basis.shells, basis.offsets
    engines = {
        mode: IntegralEngine(basis, charges, coords, kernels=mode)
        for mode in ("scalar", "batched")
    }
    npairs = sum(blk.npair for blk in engines["scalar"].blocks)

    row = {"nshell": len(shells), "npairs": npairs}
    row["build_scalar_us"] = 1e6 * _best_of(
        lambda: build_pair_blocks(shells, offsets)
    )
    row["build_batched_us"] = 1e6 * _best_of(
        lambda: build_pair_blocks_batched(shells, offsets)
    )

    mats = {}
    for mode, eng in engines.items():
        def one_electron(eng=eng):
            return eng.overlap() + eng.kinetic() + eng.nuclear()
        row[f"one_electron_{mode}_ns_per_pair"] = (
            1e9 * _best_of(one_electron) / npairs
        )
        mats[mode] = [eng.overlap(), eng.kinetic(), eng.nuclear()]
        if with_eri:
            row[f"eri_{mode}_ns_per_pair2"] = (
                1e9 * _best_of(eng.eri) / npairs ** 2
            )
            mats[mode].append(eng.eri())

    dev = max(
        float(np.abs(a - b).max())
        for a, b in zip(mats["scalar"], mats["batched"])
    )
    row["max_abs_deviation"] = dev
    speed = (row["one_electron_scalar_ns_per_pair"]
             / row["one_electron_batched_ns_per_pair"])
    print(f"  {label}: {npairs} pairs, 1e scalar "
          f"{row['one_electron_scalar_ns_per_pair']:.0f} ns/pair vs batched "
          f"{row['one_electron_batched_ns_per_pair']:.0f} ns/pair "
          f"(x{speed:.2f}), |dev| = {dev:.1e}")
    return row


def _payload() -> dict:
    import pickle

    from repro.geometry import water_box
    from repro.pipeline.executor import FragmentTask
    from repro.pipeline.shm import pack_tasks

    tasks = [
        FragmentTask(index=k, label=f"water-{k}", geometry=w,
                     compute_raman=False, eri_mode="exact")
        for k, w in enumerate(water_box(8, seed=3))
    ]
    pickled = float(np.mean([len(pickle.dumps(t)) for t in tasks]))
    arena, descs = pack_tasks(tasks)
    try:
        wire = float(np.mean([len(pickle.dumps(d.to_wire())) for d in descs]))
    finally:
        arena.close()
    print(f"  payload/task: {pickled:.0f} B pickled -> {wire:.0f} B shm wire "
          f"(x{pickled / wire:.1f} smaller)")
    return {
        "pickled_bytes_per_task": pickled,
        "shm_wire_bytes_per_task": wire,
        "payload_reduction": pickled / wire,
    }


def run_microbench() -> dict:
    rows = {
        label: _bench_class(label, ls, npts, with_eri)
        for label, (ls, npts, with_eri) in CLASSES.items()
    }
    payload = {"classes": rows, "task_payload": _payload()}
    save_result("bench_kernel_microbench", payload)
    return payload


@pytest.mark.slow
def test_kernel_microbench():
    payload = run_microbench()
    for label, row in payload["classes"].items():
        # bit-identity between dispatch modes is the hard contract
        assert row["max_abs_deviation"] == 0.0, label  # qf: exact-zero
    assert payload["task_payload"]["payload_reduction"] >= 10.0


if __name__ == "__main__":
    run_microbench()
