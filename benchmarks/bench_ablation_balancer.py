"""Ablation — load-balancing policy (DESIGN.md ablation index).

Compares the paper's system-size-sensitive packing against static
round-robin and fixed-count packing on the heterogeneous spike
workload: makespan and per-node variation quantify how much of Fig. 8
and Fig. 10's quality comes from the policy itself.
"""

from repro.hpc import ORISE, simulate_qf_run
from repro.hpc.balancer import (
    FixedPackPolicy,
    RoundRobinPolicy,
    SystemSizeSensitivePolicy,
)

from conftest import save_result


def test_balancer_policy_ablation(
    benchmark, spike_strong_scaling_workload, orise_protein_cost
):
    sizes = spike_strong_scaling_workload
    cm = orise_protein_cost
    n_nodes = 750  # ~24 pieces/leader: packing and end-game decay both active
    policies = {
        "size_sensitive(waves=4)": SystemSizeSensitivePolicy(waves=4.0),
        "size_sensitive(waves=1.5)": SystemSizeSensitivePolicy(waves=1.5),
        "fixed_pack(8)": FixedPackPolicy(count=8),
        "fixed_pack(1)": FixedPackPolicy(count=1),
        "round_robin_static": RoundRobinPolicy(),
    }

    def run():
        out = {}
        for name, policy in policies.items():
            rep = simulate_qf_run(ORISE, n_nodes, sizes, cm, policy=policy,
                                  seed=0, job_noise=0.02)
            out[name] = {
                "makespan": rep.makespan,
                "variation": rep.time_variation(),
                "events": rep.events,
            }
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    base = res["size_sensitive(waves=4)"]["makespan"]
    print(f"\nbalancer ablation on {n_nodes} nodes (relative makespan):")
    for name, r in res.items():
        lo, hi = r["variation"]
        print(f"  {name:<26} {r['makespan'] / base:6.3f}x"
              f"  var ({lo:+.1f}, {hi:+.1f})%  events {r['events']}")
    save_result("ablation_balancer", {
        k: {"makespan": v["makespan"], "variation": list(v["variation"])}
        for k, v in res.items()
    })
    # the paper's policy must beat the static baseline
    assert base <= res["round_robin_static"]["makespan"]
    # and packing must cut master traffic versus one-fragment tasks
    assert res["size_sensitive(waves=4)"]["events"] < res["fixed_pack(1)"]["events"]
