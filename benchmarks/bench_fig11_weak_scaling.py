"""Fig. 11 — weak scaling: workload doubles with node count.

Paper values:
  ORISE water dimer: 2,406.3 → 4,772.2 → 9,546.6 → 18,445.1 frag/s
                     (efficiencies 99.1 / 99.1 / 99.0 %)
  ORISE protein:     93.2 frag/s base; efficiencies 99.8 / 99.4 / 99.3 %
  Sunway mixed:      1,661.3 → 3,324.3 → 6,626.9 → 13,239.8 frag/s
                     (100.0 / 99.7 / 99.6 %)

Fragment counts are scaled down 16x (the per-leader load — which sets
the efficiency — is preserved by scaling nodes and fragments together
at the paper's ratio).
"""

import numpy as np

from repro.hpc import ORISE, SUNWAY, simulate_qf_run
from repro.hpc.costmodel import calibrate_to_throughput, paper_calibrated_cost_model

from conftest import save_result

SCALE = 16
PAPER_WATER_TPUT = {750: 2406.3, 1500: 4772.2, 3000: 9546.6, 6000: 18445.1}
PAPER_PROTEIN_EFF = {1500: 99.8, 3000: 99.4, 6000: 99.3}
PAPER_SUNWAY_TPUT = {12000: 1661.3, 24000: 3324.3, 48000: 6626.9, 96000: 13239.8}


def _weak_run(machine, node_counts, base_sizes, cm=None, costs_fn=None, seed=0):
    out = {}
    for i, n in enumerate(node_counts):
        reps = 2 ** i
        sizes = np.tile(base_sizes, reps)
        kwargs = {}
        if costs_fn is not None:
            kwargs["leader_costs"] = costs_fn(sizes)
        else:
            kwargs["cost_model"] = cm
        rep = simulate_qf_run(machine, n // SCALE, sizes, seed=seed, **kwargs)
        # rescale throughput back to paper node counts
        out[n] = rep.throughput * SCALE
    return out


def test_fig11_orise_water(benchmark):
    base = np.full(3_343_536 // SCALE, 6)
    cm = paper_calibrated_cost_model("water_dimer", "ORISE")
    tput = benchmark.pedantic(
        lambda: _weak_run(ORISE, [750, 1500, 3000, 6000], base, cm=cm),
        rounds=1, iterations=1,
    )
    rows = []
    print("\nFig11 ORISE water-dimer weak scaling (fragments/s):")
    base_eff = tput[750] / PAPER_WATER_TPUT[750]
    for n, t in tput.items():
        eff = 100.0 * t / (tput[750] * n / 750)
        rows.append({"nodes": n, "measured": t, "paper": PAPER_WATER_TPUT[n],
                     "efficiency": eff})
        print(f"  {n:>5}: measured {t:9.1f}  paper {PAPER_WATER_TPUT[n]:9.1f}"
              f"  eff {eff:6.1f}%")
    save_result("fig11_orise_water", {"rows": rows})
    assert abs(tput[750] - PAPER_WATER_TPUT[750]) / PAPER_WATER_TPUT[750] < 0.10
    for n in (1500, 3000, 6000):
        eff = 100.0 * tput[n] / (tput[750] * n / 750)
        assert eff > 95.0


def test_fig11_orise_protein(benchmark, spike_strong_scaling_workload):
    rng = np.random.default_rng(11)
    base = rng.choice(spike_strong_scaling_workload, size=88_800 // SCALE)
    cm = calibrate_to_throughput(base, 93.2, 750, 31)
    tput = benchmark.pedantic(
        lambda: _weak_run(ORISE, [750, 1500, 3000, 6000], base, cm=cm),
        rounds=1, iterations=1,
    )
    rows = []
    print("\nFig11 ORISE protein weak scaling (paper base 93.2 frag/s):")
    for n, t in tput.items():
        eff = 100.0 * t / (tput[750] * n / 750)
        rows.append({"nodes": n, "measured": t, "efficiency": eff,
                     "paper_eff": PAPER_PROTEIN_EFF.get(n)})
        print(f"  {n:>5}: {t:8.1f} frag/s  eff {eff:6.1f}%"
              f"  (paper eff {PAPER_PROTEIN_EFF.get(n, '—')})")
    save_result("fig11_orise_protein", {"rows": rows})
    assert abs(tput[750] - 93.2) / 93.2 < 0.10
    for n in (1500, 3000, 6000):
        eff = 100.0 * tput[n] / (tput[750] * n / 750)
        assert eff > 95.0


def test_fig11_sunway_mixed(benchmark):
    rng = np.random.default_rng(12)
    n_base = 4_151_294 // SCALE
    protein = rng.integers(9, 36, size=n_base // 20)
    waters = np.full(n_base - protein.size, 6)
    base = np.concatenate([protein, waters])
    workers = SUNWAY.workers_per_leader
    cm_p = paper_calibrated_cost_model("protein", "Sunway")
    cm_w = paper_calibrated_cost_model("water_dimer", "Sunway")

    def costs_fn(sizes):
        return np.where(
            sizes > 6,
            cm_p.leader_time(sizes, workers),
            cm_w.leader_time(sizes, workers),
        )

    # anchor the mixed run so 12,000 nodes give the paper's 1,661.3 frag/s
    factor = (12000.0 / 1661.3) / costs_fn(base).mean()

    tput = benchmark.pedantic(
        lambda: _weak_run(
            SUNWAY, [12000, 24000, 48000, 96000], base,
            costs_fn=lambda s: costs_fn(s) * factor,
        ),
        rounds=1, iterations=1,
    )
    rows = []
    print("\nFig11 Sunway mixed weak scaling (fragments/s):")
    for n, t in tput.items():
        eff = 100.0 * t / (tput[12000] * n / 12000)
        rows.append({"nodes": n, "measured": t, "paper": PAPER_SUNWAY_TPUT[n],
                     "efficiency": eff})
        print(f"  {n:>6}: measured {t:9.1f}  paper {PAPER_SUNWAY_TPUT[n]:9.1f}"
              f"  eff {eff:6.1f}%")
    save_result("fig11_sunway_mixed", {"rows": rows})
    assert abs(tput[12000] - PAPER_SUNWAY_TPUT[12000]) / PAPER_SUNWAY_TPUT[12000] < 0.10
    for n in (24000, 48000, 96000):
        eff = 100.0 * tput[n] / (tput[12000] * n / 12000)
        assert eff > 95.0
