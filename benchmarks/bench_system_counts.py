"""§VI-A — decomposition statistics of the 101,299,008-atom system.

Paper values for the solvated spike protein at λ = 4 Å:
  3,180 residues; 101,299,008 atoms; 3,171 conjugate caps;
  11,394 generalized concaps; 3,088 residue-water pairs;
  128,341,476 water-water pairs.

We build the synthetic spike stand-in at full residue count (3,180 —
all-atom, ~50k atoms), run the real λ-threshold pair enumeration on it,
and score the 33.75M-molecule water box with the closed-form liquid
estimate plus an explicit finite-box measurement for validation.
"""

import numpy as np

from repro.fragment.bookkeeping import (
    spike_paper_reference,
    system_statistics,
)
from repro.geometry import spike_like_protein, water_box
from repro.geometry.neighbor import pairs_within

from conftest import save_result


def test_system_counts_vs_paper(benchmark):
    ref = spike_paper_reference()
    n_waters_paper = (ref["atoms"] - 49_008) // 3

    def run():
        protein, residues = spike_like_protein(3180, seed=0)
        # the spike is a homotrimer: 3 chains of 1,060 residues
        stats = system_statistics(
            protein, residues, n_waters=n_waters_paper,
            lambda_angstrom=4.0, n_chains=3,
        )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n§VI-A system statistics (measured vs paper):")
    print(f"  residues:            {stats.n_residues:>12,}  / {ref['residues']:,}")
    print(f"  total atoms:         {stats.n_atoms:>12,}  / {ref['atoms']:,}")
    print(f"  fragments:           {stats.n_fragments:>12,}  / {ref['residues'] - 2:,}")
    print(f"  conjugate caps:      {stats.n_conjugate_caps:>12,}  / {ref['conjugate_caps']:,}")
    print(f"  generalized concaps: {stats.n_generalized_concaps:>12,}  / {ref['generalized_concaps']:,}")
    print(f"  water-water pairs:   {stats.n_water_water_pairs:>12,.0f}  / {ref['water_water_pairs']:,}")
    print(f"  fragment sizes:      {stats.fragment_sizes.min()}-{stats.fragment_sizes.max()}"
          f" atoms (paper: 9-68)")
    save_result("system_counts", {
        "measured": stats.as_dict(),
        "paper": ref,
        "fragment_size_range": [int(stats.fragment_sizes.min()),
                                int(stats.fragment_sizes.max())],
    })
    # trimer counting reproduces the paper exactly
    assert stats.n_conjugate_caps == ref["conjugate_caps"]
    assert stats.n_fragments == ref["residues"] - 6
    # generalized concaps: same order of magnitude per residue as the
    # real fold (ours is a synthetic serpentine, not the cryo-EM fold)
    assert 0.3 < (stats.n_generalized_concaps / ref["generalized_concaps"]) < 3.0
    # water-water pairs per molecule: paper reports 128.3M / 33.75M =
    # 3.80; the minimal-atom-distance criterion on our box gives more
    # (the paper's pair criterion is not fully specified — see
    # EXPERIMENTS.md); same order of magnitude is the reproducible claim
    ours_per_mol = stats.n_water_water_pairs / n_waters_paper
    assert 2.0 < ours_per_mol < 25.0


def test_water_pair_estimate_validated_by_explicit_box(benchmark):
    """The closed-form estimate used for the 33.75M-molecule box must
    track explicit neighbor-search counts on finite boxes."""

    def run():
        out = {}
        for n in (125, 343):
            waters = water_box(n, seed=3)
            measured = len(pairs_within([w.coords_angstrom() for w in waters], 4.0))
            est = system_statistics(None, None, n_waters=n).n_water_water_pairs
            out[n] = (measured, est)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nwater-water pair counts, explicit vs closed form:")
    for n, (m, e) in res.items():
        print(f"  {n:>4} molecules: measured {m}  estimate {e:.0f}"
              f"  ratio {m / e:.2f} (surface deficit)")
    save_result("water_pairs_validation",
                {str(k): list(v) for k, v in res.items()})
    # the bulk estimate bounds the finite box from above; the ratio
    # approaches 1 as the box grows
    r125 = res[125][0] / res[125][1]
    r343 = res[343][0] / res[343][1]
    assert r125 < 1.0 and r343 < 1.0
    assert r343 > r125  # surface fraction shrinks
