"""Fig. 10 — strong scaling on both simulated supercomputers.

Paper values:
  ORISE  protein:     96.7 / 95.4 / 91.1 % at 1500 / 3000 / 6000 nodes
  ORISE  water dimer: ~99.1 % maintained (uniform fragments)
  Sunway mixed:       99.9 / 98.7 / 96.2 % at 24k / 48k / 96k nodes

The simulation runs the actual master/leader/worker protocol with the
size-sensitive balancer; Sunway runs are scaled down 16x in fragment
count and node count (the dimensionless load per leader is preserved,
which is what the efficiency depends on).
"""

import numpy as np

from repro.hpc import ORISE, SUNWAY, simulate_qf_run
from repro.hpc.costmodel import calibrate_to_throughput, paper_calibrated_cost_model

from conftest import save_result

PAPER_ORISE_PROTEIN = {1500: 96.7, 3000: 95.4, 6000: 91.1}
PAPER_SUNWAY = {24000: 99.9, 48000: 98.7, 96000: 96.2}
SUNWAY_SCALE = 16


def test_fig10_strong_scaling_orise_protein(
    benchmark, spike_strong_scaling_workload, orise_protein_cost
):
    sizes = spike_strong_scaling_workload
    cm = orise_protein_cost

    def run():
        out = {}
        base = simulate_qf_run(ORISE, 750, sizes, cm, seed=0, job_noise=0.02)
        for n in (1500, 3000, 6000):
            rep = simulate_qf_run(ORISE, n, sizes, cm, seed=0, job_noise=0.02)
            out[n] = 100.0 * base.makespan * 750 / (rep.makespan * n)
        return out, base.throughput

    (eff, tput) = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    print("\nFig10 ORISE protein strong scaling (efficiency %):")
    for n, e in eff.items():
        rows.append({"nodes": n, "measured": e, "paper": PAPER_ORISE_PROTEIN[n]})
        print(f"  {n:>5} nodes: measured {e:6.1f}  paper {PAPER_ORISE_PROTEIN[n]}")
    print(f"  750-node throughput: {tput:.1f} frag/s (paper 93.2)")
    save_result("fig10_orise_protein", {"rows": rows, "throughput750": tput})
    assert all(r["measured"] > 80.0 for r in rows)
    # efficiency decreases with node count (the paper's qualitative law)
    vals = [r["measured"] for r in rows]
    assert vals[0] >= vals[-1]


def test_fig10_strong_scaling_orise_water(benchmark):
    sizes = np.full(200_000, 6)
    cm = paper_calibrated_cost_model("water_dimer", "ORISE")

    def run():
        out = {}
        base = simulate_qf_run(ORISE, 750, sizes, cm, seed=0, prefetch=True)
        for n in (1500, 3000, 6000):
            rep = simulate_qf_run(ORISE, n, sizes, cm, seed=0, prefetch=True)
            out[n] = 100.0 * base.makespan * 750 / (rep.makespan * n)
        return out

    eff = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nFig10 ORISE water-dimer strong scaling (paper ~99.1% @1500):")
    for n, e in eff.items():
        print(f"  {n:>5} nodes: measured {e:6.1f}")
    save_result("fig10_orise_water", {"efficiency": eff})
    assert eff[1500] > 95.0


def test_fig10_strong_scaling_sunway_mixed(benchmark):
    rng = np.random.default_rng(7)
    n_protein = 17_750 // 2
    protein = rng.integers(9, 36, size=n_protein)
    waters = np.full(4_151_294 // SUNWAY_SCALE, 6)
    sizes = np.concatenate([protein, waters])
    workers = SUNWAY.workers_per_leader
    cm_p = paper_calibrated_cost_model("protein", "Sunway")
    cm_w = paper_calibrated_cost_model("water_dimer", "Sunway")
    costs = np.concatenate(
        [cm_p.leader_time(protein, workers), cm_w.leader_time(waters, workers)]
    )

    def run():
        out = {}
        base = simulate_qf_run(
            SUNWAY, 12000 // SUNWAY_SCALE, sizes, leader_costs=costs, seed=0
        )
        for n_paper in (24000, 48000, 96000):
            rep = simulate_qf_run(
                SUNWAY, n_paper // SUNWAY_SCALE, sizes, leader_costs=costs,
                seed=0,
            )
            out[n_paper] = (
                100.0 * base.makespan * (12000 // SUNWAY_SCALE)
                / (rep.makespan * (n_paper // SUNWAY_SCALE))
            )
        return out

    eff = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    print(f"\nFig10 Sunway mixed strong scaling (1/{SUNWAY_SCALE} scale):")
    for n, e in eff.items():
        rows.append({"nodes": n, "measured": e, "paper": PAPER_SUNWAY[n]})
        print(f"  {n:>6} nodes: measured {e:6.1f}  paper {PAPER_SUNWAY[n]}")
    save_result("fig10_sunway_mixed", {"rows": rows, "scale": SUNWAY_SCALE})
    assert all(r["measured"] > 85.0 for r in rows)
