"""Parallel fragment execution: serial vs process-pool throughput.

Times the same >= 8-fragment workload (a box of rigid water copies —
dedupe is bypassed so every fragment is a genuine QM run) through the
``serial`` and ``process`` executor backends and records wall-clock,
speedup, fragments/s, and worker utilization. Per-fragment responses
must agree to 1e-10 — parallelism may never change the numbers.

The recorded JSON includes the cores the process is actually allowed
to run on (``visible_cores``, from the scheduler affinity mask — a
container can expose fewer cores than ``os.cpu_count`` reports) and a
``verdict`` field: on a single visible core the pool can only add IPC
overhead, so the run is recorded as ``inconclusive_single_core``
instead of pretending the speedup number means anything.

Also records the per-task dispatch payload: bytes pickled per task by
the legacy whole-``FragmentTask`` transport vs the shared-memory wire
tuples of :mod:`repro.pipeline.shm` (``payload_reduction`` is the
ratio; the shm transport targets >= 10x).

Run standalone:  python benchmarks/bench_parallel_pipeline.py
Under pytest:    pytest benchmarks/bench_parallel_pipeline.py -m slow
"""

import os
import pickle
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))
from conftest import save_result  # noqa: E402

WORKERS = 4
N_FRAGMENTS = 8
ATOL = 1e-10
SPEEDUP_TARGET = 2.0
PAYLOAD_TARGET = 10.0


def visible_cores() -> int:
    """Cores this process may run on (affinity mask, not hardware count)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload():
    from repro.geometry import water_box
    from repro.pipeline.executor import FragmentTask

    waters = water_box(N_FRAGMENTS, seed=3)
    return [
        FragmentTask(index=k, label=f"water-{k}", geometry=w,
                     compute_raman=False, eri_mode="exact")
        for k, w in enumerate(waters)
    ]


def payload_comparison(tasks) -> dict:
    """Bytes shipped per task: pickled FragmentTask vs shm wire tuple."""
    from repro.pipeline.shm import pack_tasks

    pickled = [len(pickle.dumps(t)) for t in tasks]
    arena, descs = pack_tasks(tasks)
    try:
        wire = [len(pickle.dumps(d.to_wire())) for d in descs]
        arena_bytes = arena.nbytes
    finally:
        arena.close()
    mean_pickled = float(np.mean(pickled))
    mean_wire = float(np.mean(wire))
    return {
        "pickled_bytes_per_task": mean_pickled,
        "shm_wire_bytes_per_task": mean_wire,
        "shm_arena_bytes": arena_bytes,
        "payload_reduction": mean_pickled / mean_wire,
    }


def canonical_comparison(tasks, responses) -> dict:
    """Canonical-cache effectiveness on the rigid-copy workload.

    Stores one representative response, then looks up every fragment:
    all copies are the same water under rigid motions, so the rigid
    store must answer each from the single entry (hit rate 1.0). The
    per-hit wall clock is the full load + validate + rotate-back path
    — the cost that replaces a QM fragment run."""
    import tempfile

    from repro.pipeline.canonical import CanonicalStore

    with tempfile.TemporaryDirectory() as tmp:
        store = CanonicalStore(tmp, mode="rigid")
        t0 = time.perf_counter()
        store.store_task(tasks[0], responses[0])
        store_wall = time.perf_counter() - t0
        t0 = time.perf_counter()
        for task in tasks:
            store.load_task(task)
        load_wall = time.perf_counter() - t0
        stats = store.stats()
    return {
        **stats,
        "store_wall_s": store_wall,
        "load_wall_s": load_wall,
        "rotate_back_ms_per_hit": 1e3 * load_wall / max(stats["hits"], 1),
    }


def run_comparison() -> dict:
    from repro.pipeline.executor import make_executor

    tasks = _workload()
    runs = {}
    for backend in ("serial", "process"):
        with make_executor(backend, max_workers=WORKERS) as ex:
            t0 = time.perf_counter()
            responses, report = ex.run(tasks)
            wall = time.perf_counter() - t0
        runs[backend] = (responses, report, wall)
        print(f"  {report.summary()}")

    ser, ser_report, ser_wall = runs["serial"]
    par, par_report, par_wall = runs["process"]
    max_dev = max(
        float(np.abs(par[k].hessian - ser[k].hessian).max())
        for k in range(len(tasks))
    )
    speedup = ser_wall / par_wall
    cores = visible_cores()
    if cores <= 1:
        verdict = "inconclusive_single_core"
    elif speedup >= SPEEDUP_TARGET:
        verdict = "speedup_ok"
    else:
        verdict = "speedup_below_target"
    payload = {
        "n_fragments": len(tasks),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "visible_cores": cores,
        "verdict": verdict,
        "speedup_target": SPEEDUP_TARGET,
        "serial_wall_s": ser_wall,
        "process_wall_s": par_wall,
        "speedup": speedup,
        "serial_fragments_per_s": ser_report.fragments_per_s,
        "process_fragments_per_s": par_report.fragments_per_s,
        "process_worker_utilization": par_report.worker_utilization,
        "max_hessian_deviation": max_dev,
        "task_payload": payload_comparison(tasks),
        "canonical_cache": canonical_comparison(tasks, ser),
        "serial_report": ser_report.as_dict(),
        "process_report": par_report.as_dict(),
    }
    print(f"  speedup x{speedup:.2f} on {cores} visible cores "
          f"(of {os.cpu_count()} reported) -> {verdict} "
          f"(max |dH| = {max_dev:.2e})")
    tp = payload["task_payload"]
    print(f"  payload/task: {tp['pickled_bytes_per_task']:.0f} B pickled -> "
          f"{tp['shm_wire_bytes_per_task']:.0f} B shm wire "
          f"(x{tp['payload_reduction']:.1f} smaller)")
    cc = payload["canonical_cache"]
    print(f"  canonical cache: {cc['hits']}/{cc['hits'] + cc['misses']} "
          f"hits (rate {cc['hit_rate']:.2f}), "
          f"{cc['rotate_back_ms_per_hit']:.1f} ms per rotate-back hit")
    # canonical artifact name: lowercase bench_*, matching every other
    # benchmark output in benchmarks/output/
    save_result("bench_parallel_pipeline", payload)
    return payload


@pytest.mark.slow
def test_parallel_pipeline_benchmark():
    payload = run_comparison()
    assert payload["max_hessian_deviation"] <= ATOL
    assert payload["serial_fragments_per_s"] > 0
    assert payload["process_fragments_per_s"] > 0
    # the shm transport must beat whole-task pickling by an order of
    # magnitude regardless of core count
    assert payload["task_payload"]["payload_reduction"] >= PAYLOAD_TARGET
    # the rigid canonical store must collapse the whole rigid-copy
    # workload onto its single stored entry
    assert payload["canonical_cache"]["hit_rate"] == 1.0
    assert payload["canonical_cache"]["writes"] == 1
    # the >= 2x target needs real cores; on a single visible core the
    # pool can only add overhead, so the verdict gates on the hardware
    if payload["visible_cores"] >= WORKERS:
        assert payload["verdict"] == "speedup_ok"
        assert payload["speedup"] >= SPEEDUP_TARGET
    else:
        assert payload["verdict"] in (
            "inconclusive_single_core", "speedup_ok", "speedup_below_target",
        )


if __name__ == "__main__":
    run_comparison()
