"""Parallel fragment execution: serial vs process-pool throughput.

Times the same >= 8-fragment workload (a box of rigid water copies —
dedupe is bypassed so every fragment is a genuine QM run) through the
``serial`` and ``process`` executor backends and records wall-clock,
speedup, fragments/s, and worker utilization. Per-fragment responses
must agree to 1e-10 — parallelism may never change the numbers.

The recorded JSON includes ``cpu_count``: the measured speedup is only
meaningful relative to the cores actually available (on a single-core
container the process pool pays IPC overhead for no gain).

Run standalone:  python benchmarks/bench_parallel_pipeline.py
Under pytest:    pytest benchmarks/bench_parallel_pipeline.py -m slow
"""

import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))
from conftest import save_result  # noqa: E402

WORKERS = 4
N_FRAGMENTS = 8
ATOL = 1e-10


def _workload():
    from repro.geometry import water_box
    from repro.pipeline.executor import FragmentTask

    waters = water_box(N_FRAGMENTS, seed=3)
    return [
        FragmentTask(index=k, label=f"water-{k}", geometry=w,
                     compute_raman=False, eri_mode="exact")
        for k, w in enumerate(waters)
    ]


def run_comparison() -> dict:
    from repro.pipeline.executor import make_executor

    tasks = _workload()
    runs = {}
    for backend in ("serial", "process"):
        with make_executor(backend, max_workers=WORKERS) as ex:
            t0 = time.perf_counter()
            responses, report = ex.run(tasks)
            wall = time.perf_counter() - t0
        runs[backend] = (responses, report, wall)
        print(f"  {report.summary()}")

    ser, ser_report, ser_wall = runs["serial"]
    par, par_report, par_wall = runs["process"]
    max_dev = max(
        float(np.abs(par[k].hessian - ser[k].hessian).max())
        for k in range(len(tasks))
    )
    speedup = ser_wall / par_wall
    payload = {
        "n_fragments": len(tasks),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "serial_wall_s": ser_wall,
        "process_wall_s": par_wall,
        "speedup": speedup,
        "serial_fragments_per_s": ser_report.fragments_per_s,
        "process_fragments_per_s": par_report.fragments_per_s,
        "process_worker_utilization": par_report.worker_utilization,
        "max_hessian_deviation": max_dev,
        "serial_report": ser_report.as_dict(),
        "process_report": par_report.as_dict(),
    }
    print(f"  speedup x{speedup:.2f} on {os.cpu_count()} cores "
          f"(max |dH| = {max_dev:.2e})")
    # canonical artifact name: lowercase bench_*, matching every other
    # benchmark output in benchmarks/output/
    save_result("bench_parallel_pipeline", payload)
    return payload


@pytest.mark.slow
def test_parallel_pipeline_benchmark():
    payload = run_comparison()
    assert payload["max_hessian_deviation"] <= ATOL
    assert payload["serial_fragments_per_s"] > 0
    assert payload["process_fragments_per_s"] > 0
    # the >= 2x target needs real cores; on a 1-core container the
    # pool can only add overhead, so gate on the hardware
    if (os.cpu_count() or 1) >= WORKERS:
        assert payload["speedup"] >= 2.0


if __name__ == "__main__":
    run_comparison()
