"""Ablation — GAGQ versus plain Gauss-Lanczos quadrature (§V-E).

The paper: "The Lanczos algorithm with GAGQ is more accurate than the
standard Lanczos algorithm, with negligible additional cost." Both
claims are measured here on spectrum functionals of block-sparse
Hessians.
"""

import time

import numpy as np
import scipy.sparse

from repro.constants import HESSIAN_TO_CM1
from repro.spectra.gagq import quadrature_nodes_weights
from repro.spectra.lanczos import lanczos
from repro.spectra.raman import gaussian_lineshape

from conftest import save_result


def _hessian(n_blocks=60, seed=0):
    rng = np.random.default_rng(seed)
    blocks = []
    for _ in range(n_blocks):
        a = rng.normal(size=(18, 18))
        blocks.append(a @ a.T * 0.01)
    return scipy.sparse.block_diag(blocks, format="csr")


def test_gagq_accuracy_and_cost(benchmark):
    h = _hessian()
    rng = np.random.default_rng(1)
    d = rng.normal(size=h.shape[0])
    omega = np.linspace(0, 900, 300)

    def f_of(theta):
        freq = np.sqrt(np.clip(theta, 0, None)) * HESSIAN_TO_CM1
        return gaussian_lineshape(omega[None, :], freq[:, None], 15.0)

    hd = h.toarray()
    evals, vecs = np.linalg.eigh(hd)
    exact = np.tensordot((vecs.T @ d) ** 2, f_of(evals), axes=(0, 0))

    def run():
        out = {}
        for k in (8, 16, 32, 64):
            res = lanczos(h, d, k=k)
            row = {}
            for averaged in (False, True):
                t0 = time.perf_counter()
                theta, w = quadrature_nodes_weights(res, averaged=averaged)
                spec = np.tensordot(w, f_of(theta), axes=(0, 0))
                dt = time.perf_counter() - t0
                row["gagq" if averaged else "gauss"] = (
                    float(np.abs(spec - exact).max() / exact.max()), dt
                )
            out[k] = row
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nGAGQ vs plain Gauss (max rel error of the spectrum):")
    wins = 0
    for k, row in res.items():
        g_err, g_t = row["gauss"]
        a_err, a_t = row["gagq"]
        marker = "<" if a_err < g_err else ">"
        wins += a_err <= g_err
        print(f"  k={k:>3}: gauss {g_err:.2e}  gagq {a_err:.2e} {marker}"
              f"  (overhead {a_t - g_t:+.4f}s)")
    save_result("ablation_gagq", {
        str(k): {m: list(v) for m, v in row.items()} for k, row in res.items()
    })
    # GAGQ at least as accurate at most tested orders, at negligible cost
    assert wins >= 3
    worst_overhead = max(r["gagq"][1] - r["gauss"][1] for r in res.values())
    assert worst_overhead < 0.1
