# Repo-root convenience targets. The package runs from source with
# PYTHONPATH=src — no build step (see .claude/skills/verify/SKILL.md).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test test-all sanitize-smoke trace-demo

# QF physics-aware linter (docs/static_analysis.md); fails on any new
# unsuppressed finding — the same zero-findings bar the tier-1 test
# tests/devtools/test_lint_src_clean.py enforces.
lint:
	$(PYTHON) -m repro.devtools.lint src

# tier-1 suite (slow end-to-end tests deselected, per pyproject)
test:
	$(PYTHON) -m pytest -x -q

# everything, including @pytest.mark.slow end-to-end runs
test-all:
	$(PYTHON) -m pytest -q -m ""

# quick end-to-end proof that the runtime sanitizer is wired through
sanitize-smoke:
	QF_SANITIZE=1 $(PYTHON) -m repro water-raman --n 1 --verbose

# Perfetto-loadable span trace of a small water-cluster run, plus the
# terminal view of the same file (docs/observability.md)
trace-demo:
	$(PYTHON) -m repro water-raman --n 2 --solver dense \
		--trace trace-demo.json --metrics trace-demo.prom \
		--manifest trace-demo.manifest.json
	$(PYTHON) -m repro obs view trace-demo.json
	@echo "open https://ui.perfetto.dev and load trace-demo.json"
