# Repo-root convenience targets. The package runs from source with
# PYTHONPATH=src — no build step (see .claude/skills/verify/SKILL.md).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: lint test test-all sanitize-smoke trace-demo faults-demo \
	test-faults test-canonical coverage-gate bench-kernels

# QF physics-aware linter (docs/static_analysis.md); fails on any new
# unsuppressed finding — the same zero-findings bar the tier-1 test
# tests/devtools/test_lint_src_clean.py enforces.
lint:
	$(PYTHON) -m repro.devtools.lint src

# tier-1 suite (slow end-to-end tests deselected, per pyproject)
test:
	$(PYTHON) -m pytest -x -q

# everything, including @pytest.mark.slow end-to-end runs
test-all:
	$(PYTHON) -m pytest -q -m ""

# quick end-to-end proof that the runtime sanitizer is wired through
sanitize-smoke:
	QF_SANITIZE=1 $(PYTHON) -m repro water-raman --n 1 --verbose

# Perfetto-loadable span trace of a small water-cluster run, plus the
# terminal view of the same file (docs/observability.md)
trace-demo:
	$(PYTHON) -m repro water-raman --n 2 --solver dense \
		--trace trace-demo.json --metrics trace-demo.prom \
		--manifest trace-demo.manifest.json
	$(PYTHON) -m repro obs view trace-demo.json
	@echo "open https://ui.perfetto.dev and load trace-demo.json"

# fault tolerance end to end (docs/resilience.md): crash one monomer
# for good and straggle the dimer — the run retries, reissues, skips
# the dead fragment, and still delivers a (flagged) partial spectrum
# plus a resumable checkpoint store and a manifest with the accounting
faults-demo:
	rm -rf faults-demo.store
	$(PYTHON) -m repro water-raman --n 2 --solver dense \
		--inject-faults 'crash:water[0]@*;hang:ww[0,1]@1:0.5' \
		--retries 2 --timeout-s 60 --failure-policy skip_and_report \
		--run-store faults-demo.store \
		--manifest faults-demo.manifest.json
	@echo "resuming from faults-demo.store with faults off:"
	$(PYTHON) -m repro water-raman --n 2 --solver dense \
		--retries 2 --run-store faults-demo.store

# the fault-injection suite with the numerical sanitizer on — every
# recovery path (retry, reissue, pool restart, skip, resume) under
# full contract checking
test-faults:
	QF_SANITIZE=1 $(PYTHON) -m pytest -x -q \
		tests/pipeline/test_resilience.py \
		tests/pipeline/test_runstore_properties.py

# the canonical-cache invariance harness with the sanitizer on,
# INCLUDING the slow split (-m "" re-selects @pytest.mark.slow, e.g.
# the 500-example exhaustive key-invariance property) and the golden
# rigid-vs-off equivalence gate (docs/caching.md)
test-canonical:
	QF_SANITIZE=1 $(PYTHON) -m pytest -x -q -m "" \
		tests/pipeline/test_canonical_properties.py \
		tests/pipeline/test_canonical_degenerate.py \
		tests/pipeline/test_canonical_store.py \
		tests/pipeline/test_golden_spectra.py

# scalar-vs-batched integral kernel timings by angular class + the
# per-task dispatch payload comparison; writes
# benchmarks/output/bench_kernel_microbench.json (docs/performance.md)
bench-kernels:
	$(PYTHON) benchmarks/bench_kernel_microbench.py

# line-coverage gate over src/repro/pipeline on the tier-1 suite
# (stdlib tracer, no coverage.py needed — repro.devtools.covgate)
coverage-gate:
	$(PYTHON) -m repro.devtools.covgate \
		--target src/repro/pipeline --fail-under 85 -- -x -q
